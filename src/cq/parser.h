#ifndef PQE_CQ_PARSER_H_
#define PQE_CQ_PARSER_H_

#include <string>

#include "cq/query.h"
#include "pdb/schema.h"
#include "util/result.h"

namespace pqe {

/// Parses a Boolean conjunctive query in the textual form used throughout the
/// paper, e.g. "R1(x1,x2), R2(x2,x3)". Identifiers are [A-Za-z_][A-Za-z0-9_]*;
/// whitespace is insignificant. All relations must exist in `schema` with
/// matching arity.
Result<ConjunctiveQuery> ParseQuery(const Schema& schema,
                                    const std::string& text);

/// Like ParseQuery, but *extends* `schema` with any relation it does not yet
/// contain, inferring the arity from the first atom that mentions it.
Result<ConjunctiveQuery> ParseQueryExtendingSchema(Schema* schema,
                                                   const std::string& text);

}  // namespace pqe

#endif  // PQE_CQ_PARSER_H_
