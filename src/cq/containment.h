#ifndef PQE_CQ_CONTAINMENT_H_
#define PQE_CQ_CONTAINMENT_H_

#include "cq/query.h"
#include "pdb/database.h"
#include "util/result.h"

namespace pqe {

/// The canonical (frozen) database of a Boolean CQ: one fact per atom, with
/// each variable frozen to a distinct constant. The classical
/// Chandra–Merlin / Kolaitis–Vardi device: homomorphisms into Q correspond
/// to satisfaction over its canonical database — the same connection the
/// paper's "Key Ideas" section builds on.
Result<Database> CanonicalDatabase(const Schema& schema,
                                   const ConjunctiveQuery& query);

/// Containment of Boolean CQs over a shared schema: `sub` ⊑ `super` iff
/// every database satisfying `sub` satisfies `super` — decided by the
/// Chandra–Merlin test (a homomorphism from `super` into `sub`, i.e.
/// canonical(sub) ⊨ super). NP-complete in general; fine at query scale.
Result<bool> IsContainedIn(const Schema& schema, const ConjunctiveQuery& sub,
                           const ConjunctiveQuery& super);

/// Logical equivalence: mutual containment.
Result<bool> AreEquivalent(const Schema& schema, const ConjunctiveQuery& a,
                           const ConjunctiveQuery& b);

/// Computes the core of a Boolean CQ: greedily drops atoms whose removal
/// keeps the query equivalent, until no atom is redundant. Self-join-free
/// queries are already cores; minimization matters before feeding queries
/// with redundancy into the (length-sensitive) evaluation pipeline.
Result<ConjunctiveQuery> MinimizeQuery(const Schema& schema,
                                       const ConjunctiveQuery& query);

}  // namespace pqe

#endif  // PQE_CQ_CONTAINMENT_H_
