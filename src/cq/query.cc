#include "cq/query.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace pqe {

namespace {

// Interns `name` in the query's variable table.
VarId InternVar(std::vector<std::string>* names,
                std::unordered_map<std::string, VarId>* by_name,
                const std::string& name) {
  auto it = by_name->find(name);
  if (it != by_name->end()) return it->second;
  VarId id = static_cast<VarId>(names->size());
  names->push_back(name);
  by_name->emplace(name, id);
  return id;
}

}  // namespace

Status ConjunctiveQuery::Builder::AddAtom(
    const std::string& relation, const std::vector<std::string>& vars) {
  auto rel = schema_->FindRelation(relation);
  if (!rel.ok()) {
    failed_ = true;
    if (first_error_.ok()) first_error_ = rel.status();
    return rel.status();
  }
  return AddAtom(rel.value(), vars);
}

Status ConjunctiveQuery::Builder::AddAtom(
    RelationId relation, const std::vector<std::string>& vars) {
  auto fail = [&](Status s) {
    failed_ = true;
    if (first_error_.ok()) first_error_ = s;
    return s;
  };
  if (relation >= schema_->NumRelations()) {
    return fail(Status::InvalidArgument("unknown relation id in atom"));
  }
  if (vars.size() != schema_->Arity(relation)) {
    std::ostringstream msg;
    msg << "arity mismatch for atom over " << schema_->Name(relation)
        << ": expected " << schema_->Arity(relation) << " variables, got "
        << vars.size();
    return fail(Status::InvalidArgument(msg.str()));
  }
  for (const std::string& v : vars) {
    if (v.empty()) {
      return fail(Status::InvalidArgument("empty variable name in atom"));
    }
  }
  Atom atom;
  atom.relation = relation;
  std::unordered_map<std::string, VarId> by_name;
  for (VarId i = 0; i < var_names_.size(); ++i) {
    by_name.emplace(var_names_[i], i);
  }
  for (const std::string& v : vars) {
    atom.vars.push_back(InternVar(&var_names_, &by_name, v));
  }
  atoms_.push_back(std::move(atom));
  return Status::OK();
}

Result<ConjunctiveQuery> ConjunctiveQuery::Builder::Build() {
  if (failed_) return first_error_;
  if (atoms_.empty()) {
    return Status::InvalidArgument("conjunctive query must have >= 1 atom");
  }
  ConjunctiveQuery query;
  query.atoms_ = std::move(atoms_);
  query.var_names_ = std::move(var_names_);
  query.atoms_of_var_.assign(query.var_names_.size(), {});
  for (uint32_t a = 0; a < query.atoms_.size(); ++a) {
    std::unordered_set<VarId> seen;
    for (VarId v : query.atoms_[a].vars) {
      if (seen.insert(v).second) query.atoms_of_var_[v].push_back(a);
    }
  }
  return query;
}

bool ConjunctiveQuery::IsSelfJoinFree() const {
  std::unordered_set<RelationId> seen;
  for (const Atom& a : atoms_) {
    if (!seen.insert(a.relation).second) return false;
  }
  return true;
}

bool ConjunctiveQuery::IsHierarchical() const {
  for (VarId x = 0; x < var_names_.size(); ++x) {
    for (VarId y = x + 1; y < var_names_.size(); ++y) {
      const auto& ax = atoms_of_var_[x];
      const auto& ay = atoms_of_var_[y];
      std::vector<uint32_t> inter;
      std::set_intersection(ax.begin(), ax.end(), ay.begin(), ay.end(),
                            std::back_inserter(inter));
      if (inter.empty()) continue;
      if (inter.size() == ax.size() || inter.size() == ay.size()) continue;
      return false;
    }
  }
  return true;
}

bool ConjunctiveQuery::IsPathQuery() const {
  if (atoms_.empty()) return false;
  for (const Atom& a : atoms_) {
    if (a.vars.size() != 2) return false;
    if (a.vars[0] == a.vars[1]) return false;
  }
  // Chained: atom i ends where atom i+1 begins, and the x_i are distinct
  // (n atoms require exactly n+1 distinct variables).
  for (size_t i = 0; i + 1 < atoms_.size(); ++i) {
    if (atoms_[i].vars[1] != atoms_[i + 1].vars[0]) return false;
  }
  std::unordered_set<VarId> distinct;
  distinct.insert(atoms_[0].vars[0]);
  for (const Atom& a : atoms_) distinct.insert(a.vars[1]);
  return distinct.size() == atoms_.size() + 1;
}

std::string ConjunctiveQuery::ToString(const Schema& schema) const {
  std::ostringstream out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out << ", ";
    out << schema.Name(atoms_[i].relation) << "(";
    for (size_t j = 0; j < atoms_[i].vars.size(); ++j) {
      if (j > 0) out << ",";
      out << var_names_[atoms_[i].vars[j]];
    }
    out << ")";
  }
  return out.str();
}

}  // namespace pqe
