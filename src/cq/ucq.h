#ifndef PQE_CQ_UCQ_H_
#define PQE_CQ_UCQ_H_

#include <cstddef>
#include <string>
#include <vector>

#include "cq/query.h"
#include "pdb/schema.h"
#include "util/result.h"

namespace pqe {

/// A union of Boolean conjunctive queries Q = Q₁ ∨ ... ∨ Q_m — the query
/// class of the Dalvi–Suciu dichotomy the paper builds on (Table 1 cites the
/// UCQ dichotomy for the self-join row). The paper's FPRAS targets a single
/// self-join-free CQ; this library evaluates UCQs through the lineage-based
/// and enumeration baselines (see eval/ucq_eval.h), and per-disjunct
/// bounds through the CQ pipeline.
class UnionQuery {
 public:
  /// Builds a union from at least one disjunct.
  static Result<UnionQuery> Make(std::vector<ConjunctiveQuery> disjuncts);

  size_t NumDisjuncts() const { return disjuncts_.size(); }
  const ConjunctiveQuery& disjunct(size_t i) const {
    return disjuncts_.at(i);
  }
  const std::vector<ConjunctiveQuery>& disjuncts() const {
    return disjuncts_;
  }

  /// True iff every disjunct is self-join-free (atoms may repeat relations
  /// *across* disjuncts; that is still fine for the baselines).
  bool AllDisjunctsSelfJoinFree() const;

  /// "Q1 v Q2 v ..." rendering.
  std::string ToString(const Schema& schema) const;

 private:
  explicit UnionQuery(std::vector<ConjunctiveQuery> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  std::vector<ConjunctiveQuery> disjuncts_;
};

/// Parses "R(x,y), S(y,z) | T(u)" — disjuncts separated by '|', each in the
/// ParseQuery syntax.
Result<UnionQuery> ParseUnionQuery(const Schema& schema,
                                   const std::string& text);

}  // namespace pqe

#endif  // PQE_CQ_UCQ_H_
