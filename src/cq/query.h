#ifndef PQE_CQ_QUERY_H_
#define PQE_CQ_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdb/schema.h"
#include "util/result.h"

namespace pqe {

/// Identifier of a variable within one ConjunctiveQuery.
using VarId = uint32_t;

/// An atom R(x1, ..., xk) of a conjunctive query. Queries in the paper are
/// constant-free, so arguments are variables only.
struct Atom {
  RelationId relation = 0;
  std::vector<VarId> vars;

  bool operator==(const Atom& o) const {
    return relation == o.relation && vars == o.vars;
  }
};

/// A Boolean conjunctive query Q = R1(x̄1), ..., Rn(x̄n) (Section 2):
/// an existentially quantified conjunction of atoms. |Q| is the number of
/// atoms. Construct via Builder, MakePathQuery (builders.h), or ParseQuery
/// (parser.h).
class ConjunctiveQuery {
 public:
  /// Incremental construction helper; variables are interned by name.
  class Builder {
   public:
    explicit Builder(const Schema* schema) : schema_(schema) {}

    /// Adds atom `relation(vars...)`; variables are created on first use.
    Status AddAtom(const std::string& relation,
                   const std::vector<std::string>& vars);
    Status AddAtom(RelationId relation, const std::vector<std::string>& vars);

    /// Finalizes; fails if no atom was added.
    Result<ConjunctiveQuery> Build();

   private:
    const Schema* schema_;
    std::vector<Atom> atoms_;
    std::vector<std::string> var_names_;
    bool failed_ = false;
    Status first_error_;
  };

  ConjunctiveQuery(const ConjunctiveQuery&) = default;
  ConjunctiveQuery& operator=(const ConjunctiveQuery&) = default;
  ConjunctiveQuery(ConjunctiveQuery&&) = default;
  ConjunctiveQuery& operator=(ConjunctiveQuery&&) = default;

  /// Query length |Q| = number of atoms.
  size_t NumAtoms() const { return atoms_.size(); }
  const Atom& atom(size_t i) const { return atoms_.at(i); }
  const std::vector<Atom>& atoms() const { return atoms_; }

  size_t NumVars() const { return var_names_.size(); }
  const std::string& VarName(VarId v) const { return var_names_.at(v); }

  /// Atoms (by index) in which variable v occurs — at(v) in the
  /// Dalvi–Suciu hierarchy test.
  const std::vector<uint32_t>& AtomsOfVar(VarId v) const {
    return atoms_of_var_.at(v);
  }

  /// True iff no relation name repeats (Section 2, "self-join-free").
  bool IsSelfJoinFree() const;

  /// True iff the query is hierarchical: for all variables x, y, the atom
  /// sets at(x), at(y) are nested or disjoint. For self-join-free CQs this is
  /// exactly the safe/#P-hard boundary of Dalvi–Suciu (Table 1's "Safe?").
  bool IsHierarchical() const;

  /// True iff the query is a path query R1(x1,x2), ..., Rn(xn,xn+1)
  /// (Section 2) — atoms binary, consecutively chained, variables distinct.
  bool IsPathQuery() const;

  /// Renders "R(x,y), S(y,z)" against `schema`.
  std::string ToString(const Schema& schema) const;

 private:
  ConjunctiveQuery() = default;
  friend class Builder;

  std::vector<Atom> atoms_;
  std::vector<std::string> var_names_;
  std::vector<std::vector<uint32_t>> atoms_of_var_;
};

}  // namespace pqe

#endif  // PQE_CQ_QUERY_H_
