#include "cq/builders.h"

#include <string>
#include <vector>

namespace pqe {

namespace {

std::string Var(uint32_t i) { return "x" + std::to_string(i); }

}  // namespace

Result<QueryInstance> MakePathQuery(uint32_t n) {
  if (n < 1) return Status::InvalidArgument("path query needs n >= 1");
  Schema schema;
  for (uint32_t i = 1; i <= n; ++i) {
    PQE_RETURN_IF_ERROR(
        schema.AddRelation("R" + std::to_string(i), 2).status());
  }
  ConjunctiveQuery::Builder builder(&schema);
  for (uint32_t i = 1; i <= n; ++i) {
    PQE_RETURN_IF_ERROR(
        builder.AddAtom("R" + std::to_string(i), {Var(i), Var(i + 1)}));
  }
  PQE_ASSIGN_OR_RETURN(ConjunctiveQuery q, builder.Build());
  return QueryInstance{std::move(schema), std::move(q)};
}

Result<QueryInstance> MakeStarQuery(uint32_t n) {
  if (n < 1) return Status::InvalidArgument("star query needs n >= 1");
  Schema schema;
  for (uint32_t i = 1; i <= n; ++i) {
    PQE_RETURN_IF_ERROR(
        schema.AddRelation("R" + std::to_string(i), 2).status());
  }
  ConjunctiveQuery::Builder builder(&schema);
  for (uint32_t i = 1; i <= n; ++i) {
    PQE_RETURN_IF_ERROR(
        builder.AddAtom("R" + std::to_string(i), {Var(0), Var(i)}));
  }
  PQE_ASSIGN_OR_RETURN(ConjunctiveQuery q, builder.Build());
  return QueryInstance{std::move(schema), std::move(q)};
}

Result<QueryInstance> MakeCycleQuery(uint32_t n) {
  if (n < 2) return Status::InvalidArgument("cycle query needs n >= 2");
  Schema schema;
  for (uint32_t i = 1; i <= n; ++i) {
    PQE_RETURN_IF_ERROR(
        schema.AddRelation("R" + std::to_string(i), 2).status());
  }
  ConjunctiveQuery::Builder builder(&schema);
  for (uint32_t i = 1; i <= n; ++i) {
    uint32_t next = (i == n) ? 1 : i + 1;
    PQE_RETURN_IF_ERROR(
        builder.AddAtom("R" + std::to_string(i), {Var(i), Var(next)}));
  }
  PQE_ASSIGN_OR_RETURN(ConjunctiveQuery q, builder.Build());
  return QueryInstance{std::move(schema), std::move(q)};
}

Result<QueryInstance> MakeH0Query() {
  Schema schema;
  PQE_RETURN_IF_ERROR(schema.AddRelation("R", 1).status());
  PQE_RETURN_IF_ERROR(schema.AddRelation("S", 2).status());
  PQE_RETURN_IF_ERROR(schema.AddRelation("T", 1).status());
  ConjunctiveQuery::Builder builder(&schema);
  PQE_RETURN_IF_ERROR(builder.AddAtom("R", {"x"}));
  PQE_RETURN_IF_ERROR(builder.AddAtom("S", {"x", "y"}));
  PQE_RETURN_IF_ERROR(builder.AddAtom("T", {"y"}));
  PQE_ASSIGN_OR_RETURN(ConjunctiveQuery q, builder.Build());
  return QueryInstance{std::move(schema), std::move(q)};
}

Result<QueryInstance> MakeSelfJoinPathQuery(uint32_t n) {
  if (n < 2) return Status::InvalidArgument("self-join path needs n >= 2");
  Schema schema;
  PQE_RETURN_IF_ERROR(schema.AddRelation("R", 2).status());
  ConjunctiveQuery::Builder builder(&schema);
  for (uint32_t i = 1; i <= n; ++i) {
    PQE_RETURN_IF_ERROR(builder.AddAtom("R", {Var(i), Var(i + 1)}));
  }
  PQE_ASSIGN_OR_RETURN(ConjunctiveQuery q, builder.Build());
  return QueryInstance{std::move(schema), std::move(q)};
}

Result<QueryInstance> MakeCaterpillarQuery(uint32_t n) {
  if (n < 2) return Status::InvalidArgument("caterpillar query needs n >= 2");
  Schema schema;
  for (uint32_t i = 1; i <= n; ++i) {
    PQE_RETURN_IF_ERROR(
        schema.AddRelation("R" + std::to_string(i), 2).status());
  }
  for (uint32_t i = 2; i <= n; ++i) {
    PQE_RETURN_IF_ERROR(
        schema.AddRelation("L" + std::to_string(i), 1).status());
  }
  ConjunctiveQuery::Builder builder(&schema);
  for (uint32_t i = 1; i <= n; ++i) {
    PQE_RETURN_IF_ERROR(
        builder.AddAtom("R" + std::to_string(i), {Var(i), Var(i + 1)}));
    if (i >= 2) {
      PQE_RETURN_IF_ERROR(
          builder.AddAtom("L" + std::to_string(i), {Var(i)}));
    }
  }
  PQE_ASSIGN_OR_RETURN(ConjunctiveQuery q, builder.Build());
  return QueryInstance{std::move(schema), std::move(q)};
}

Result<QueryInstance> MakeSnowflakeQuery(uint32_t arms, uint32_t depth) {
  if (arms < 1 || depth < 1) {
    return Status::InvalidArgument("snowflake query needs arms, depth >= 1");
  }
  Schema schema;
  for (uint32_t a = 1; a <= arms; ++a) {
    for (uint32_t d = 1; d <= depth; ++d) {
      PQE_RETURN_IF_ERROR(schema
                              .AddRelation("R" + std::to_string(a) + "_" +
                                               std::to_string(d),
                                           2)
                              .status());
    }
  }
  ConjunctiveQuery::Builder builder(&schema);
  for (uint32_t a = 1; a <= arms; ++a) {
    std::string prev = "x0";
    for (uint32_t d = 1; d <= depth; ++d) {
      std::string next =
          "y" + std::to_string(a) + "_" + std::to_string(d);
      PQE_RETURN_IF_ERROR(builder.AddAtom(
          "R" + std::to_string(a) + "_" + std::to_string(d), {prev, next}));
      prev = next;
    }
  }
  PQE_ASSIGN_OR_RETURN(ConjunctiveQuery q, builder.Build());
  return QueryInstance{std::move(schema), std::move(q)};
}

}  // namespace pqe
