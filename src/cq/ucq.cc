#include "cq/ucq.h"

#include <sstream>

#include "cq/parser.h"

namespace pqe {

Result<UnionQuery> UnionQuery::Make(
    std::vector<ConjunctiveQuery> disjuncts) {
  if (disjuncts.empty()) {
    return Status::InvalidArgument("a union query needs >= 1 disjunct");
  }
  return UnionQuery(std::move(disjuncts));
}

bool UnionQuery::AllDisjunctsSelfJoinFree() const {
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (!q.IsSelfJoinFree()) return false;
  }
  return true;
}

std::string UnionQuery::ToString(const Schema& schema) const {
  std::ostringstream out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out << " | ";
    out << disjuncts_[i].ToString(schema);
  }
  return out.str();
}

Result<UnionQuery> ParseUnionQuery(const Schema& schema,
                                   const std::string& text) {
  std::vector<ConjunctiveQuery> disjuncts;
  size_t start = 0;
  for (;;) {
    const size_t bar = text.find('|', start);
    const std::string part = bar == std::string::npos
                                 ? text.substr(start)
                                 : text.substr(start, bar - start);
    PQE_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseQuery(schema, part));
    disjuncts.push_back(std::move(q));
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return UnionQuery::Make(std::move(disjuncts));
}

}  // namespace pqe
