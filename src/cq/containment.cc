#include "cq/containment.h"

#include <string>
#include <vector>

#include "eval/eval.h"

namespace pqe {

Result<Database> CanonicalDatabase(const Schema& schema,
                                   const ConjunctiveQuery& query) {
  Database db(schema);
  for (const Atom& atom : query.atoms()) {
    if (atom.relation >= schema.NumRelations()) {
      return Status::InvalidArgument("query relation outside schema");
    }
    std::vector<ValueId> args;
    args.reserve(atom.vars.size());
    for (VarId v : atom.vars) {
      // Freeze each variable to a distinct constant named after it.
      args.push_back(db.InternValue("~" + query.VarName(v)));
    }
    PQE_RETURN_IF_ERROR(db.AddFact(atom.relation, std::move(args)).status());
  }
  return db;
}

Result<bool> IsContainedIn(const Schema& schema, const ConjunctiveQuery& sub,
                           const ConjunctiveQuery& super) {
  // Chandra–Merlin: sub ⊑ super ⟺ canonical(sub) ⊨ super.
  PQE_ASSIGN_OR_RETURN(Database canonical, CanonicalDatabase(schema, sub));
  return Satisfies(canonical, super);
}

Result<bool> AreEquivalent(const Schema& schema, const ConjunctiveQuery& a,
                           const ConjunctiveQuery& b) {
  PQE_ASSIGN_OR_RETURN(bool ab, IsContainedIn(schema, a, b));
  if (!ab) return false;
  return IsContainedIn(schema, b, a);
}

Result<ConjunctiveQuery> MinimizeQuery(const Schema& schema,
                                       const ConjunctiveQuery& query) {
  // Working copy as an atom list; rebuild queries via the Builder.
  std::vector<Atom> atoms = query.atoms();
  auto rebuild = [&](const std::vector<Atom>& list)
      -> Result<ConjunctiveQuery> {
    ConjunctiveQuery::Builder builder(&schema);
    for (const Atom& a : list) {
      std::vector<std::string> vars;
      vars.reserve(a.vars.size());
      for (VarId v : a.vars) vars.push_back(query.VarName(v));
      PQE_RETURN_IF_ERROR(builder.AddAtom(a.relation, vars));
    }
    return builder.Build();
  };

  bool changed = true;
  while (changed && atoms.size() > 1) {
    changed = false;
    for (size_t drop = 0; drop < atoms.size(); ++drop) {
      std::vector<Atom> candidate;
      candidate.reserve(atoms.size() - 1);
      for (size_t i = 0; i < atoms.size(); ++i) {
        if (i != drop) candidate.push_back(atoms[i]);
      }
      PQE_ASSIGN_OR_RETURN(ConjunctiveQuery full, rebuild(atoms));
      PQE_ASSIGN_OR_RETURN(ConjunctiveQuery smaller, rebuild(candidate));
      // Dropping an atom weakens the query (full ⊑ smaller holds always);
      // the atom is redundant iff smaller ⊑ full too.
      PQE_ASSIGN_OR_RETURN(bool redundant,
                           IsContainedIn(schema, smaller, full));
      if (redundant) {
        atoms = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return rebuild(atoms);
}

}  // namespace pqe
