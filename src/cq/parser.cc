#include "cq/parser.h"

#include <cctype>
#include <vector>

namespace pqe {

namespace {

struct ParsedAtom {
  std::string relation;
  std::vector<std::string> vars;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> Identifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
      if (pos_ == start) {
        ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_';
      }
      if (!ok) break;
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected identifier at position " +
                                     std::to_string(start) + " in query");
    }
    return text_.substr(start, pos_ - start);
  }

  size_t pos() const { return pos_; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

Result<std::vector<ParsedAtom>> ParseAtoms(const std::string& text) {
  Lexer lex(text);
  std::vector<ParsedAtom> atoms;
  if (lex.AtEnd()) return Status::InvalidArgument("empty query text");
  for (;;) {
    ParsedAtom atom;
    PQE_ASSIGN_OR_RETURN(atom.relation, lex.Identifier());
    if (!lex.Consume('(')) {
      return Status::InvalidArgument("expected '(' after relation name '" +
                                     atom.relation + "'");
    }
    for (;;) {
      PQE_ASSIGN_OR_RETURN(std::string var, lex.Identifier());
      atom.vars.push_back(std::move(var));
      if (lex.Consume(')')) break;
      if (!lex.Consume(',')) {
        return Status::InvalidArgument("expected ',' or ')' in atom over '" +
                                       atom.relation + "'");
      }
    }
    atoms.push_back(std::move(atom));
    if (lex.AtEnd()) break;
    if (!lex.Consume(',')) {
      return Status::InvalidArgument("expected ',' between atoms at position " +
                                     std::to_string(lex.pos()));
    }
    if (lex.AtEnd()) {
      return Status::InvalidArgument("trailing ',' in query text");
    }
  }
  return atoms;
}

}  // namespace

Result<ConjunctiveQuery> ParseQuery(const Schema& schema,
                                    const std::string& text) {
  PQE_ASSIGN_OR_RETURN(std::vector<ParsedAtom> atoms, ParseAtoms(text));
  ConjunctiveQuery::Builder builder(&schema);
  for (const ParsedAtom& a : atoms) {
    PQE_RETURN_IF_ERROR(builder.AddAtom(a.relation, a.vars));
  }
  return builder.Build();
}

Result<ConjunctiveQuery> ParseQueryExtendingSchema(Schema* schema,
                                                   const std::string& text) {
  PQE_ASSIGN_OR_RETURN(std::vector<ParsedAtom> atoms, ParseAtoms(text));
  for (const ParsedAtom& a : atoms) {
    if (!schema->HasRelation(a.relation)) {
      PQE_RETURN_IF_ERROR(
          schema->AddRelation(a.relation, static_cast<uint32_t>(a.vars.size()))
              .status());
    }
  }
  ConjunctiveQuery::Builder builder(schema);
  for (const ParsedAtom& a : atoms) {
    PQE_RETURN_IF_ERROR(builder.AddAtom(a.relation, a.vars));
  }
  return builder.Build();
}

}  // namespace pqe
