#ifndef PQE_CQ_BUILDERS_H_
#define PQE_CQ_BUILDERS_H_

#include <cstdint>

#include "cq/query.h"
#include "pdb/schema.h"
#include "util/result.h"

namespace pqe {

/// A query bundled with the schema it is defined over. The builders below
/// generate the query families used throughout the paper and its benchmarks.
struct QueryInstance {
  Schema schema;
  ConjunctiveQuery query;
};

/// The class 3Path's member Q_n (Section 1.1): the self-join-free path query
///   Q_n = R1(x1,x2), R2(x2,x3), ..., Rn(xn,xn+1).
/// For n >= 3 the query is non-hierarchical, hence #P-hard in data
/// complexity, yet has hypertree width 1. Requires n >= 1.
Result<QueryInstance> MakePathQuery(uint32_t n);

/// Star query R1(x0,x1), R2(x0,x2), ..., Rn(x0,xn): hierarchical (safe),
/// self-join-free, acyclic. The FP representative for Table 1 row 1.
/// Requires n >= 1.
Result<QueryInstance> MakeStarQuery(uint32_t n);

/// Cycle query R1(x1,x2), ..., Rn(xn,x1): self-join-free, hypertree width 2
/// for n >= 3 (width 1 for n <= 2). Exercises the width-2 decomposer.
/// Requires n >= 2.
Result<QueryInstance> MakeCycleQuery(uint32_t n);

/// The canonical unsafe acyclic query H0 = R(x), S(x,y), T(y): self-join-free,
/// hypertree width 1, non-hierarchical (hence #P-hard in data complexity).
/// Table 1 row 2's smallest representative.
Result<QueryInstance> MakeH0Query();

/// A self-join path query R(x1,x2), R(x2,x3), ..., R(xn,xn+1) over a single
/// relation: *not* self-join-free. Used to exercise the NotSupported paths
/// of the FPRAS and the Table 1 row 4 discussion. Requires n >= 2.
Result<QueryInstance> MakeSelfJoinPathQuery(uint32_t n);

/// Chain-of-stars ("caterpillar") query: a path R1(x1,x2)...Rn(xn,xn+1) where
/// each joint variable x2..xn additionally carries a unary label atom
/// L_i(x_i). Acyclic, self-join-free, non-hierarchical for n >= 3; a larger
/// width-1 family with |Q| = 2n - 1 atoms. Requires n >= 2.
Result<QueryInstance> MakeCaterpillarQuery(uint32_t n);

/// Snowflake query: a central variable x0 with `arms` chains of `depth`
/// binary atoms each: R_{a,1}(x0, y_{a,1}), R_{a,2}(y_{a,1}, y_{a,2}), ...
/// Acyclic (width 1), self-join-free; non-hierarchical once arms >= 2 and
/// depth >= 2 (interior chain variables break the nesting). A star query is
/// the depth-1 special case. Requires arms >= 1, depth >= 1.
Result<QueryInstance> MakeSnowflakeQuery(uint32_t arms, uint32_t depth);

}  // namespace pqe

#endif  // PQE_CQ_BUILDERS_H_
