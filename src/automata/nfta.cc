#include "automata/nfta.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <sstream>

#include "obs/trace.h"
#include "util/check.h"

namespace pqe {

StateId Nfta::AddState() {
  StateId id = static_cast<StateId>(num_states_);
  ++num_states_;
  out_transitions_.emplace_back();
  return id;
}

void Nfta::EnsureAlphabetSize(size_t size) {
  alphabet_size_ = std::max(alphabet_size_, size);
}

void Nfta::SetInitialState(StateId s) {
  PQE_CHECK(s < num_states_);
  initial_ = s;
}

void Nfta::AddTransition(StateId from, SymbolId symbol,
                         std::vector<StateId> children) {
  PQE_CHECK(from < num_states_);
  for (StateId c : children) PQE_CHECK(c < num_states_);
  if (symbol != kLambdaSymbol) {
    EnsureAlphabetSize(static_cast<size_t>(symbol) + 1);
  }
  uint32_t idx = static_cast<uint32_t>(transitions_.size());
  transitions_.push_back(Transition{from, symbol, std::move(children)});
  out_transitions_[from].push_back(idx);
  if (symbol != kLambdaSymbol) {
    if (by_symbol_.size() < alphabet_size_) by_symbol_.resize(alphabet_size_);
    by_symbol_[symbol].push_back(idx);
  }
  run_index_valid_ = false;
}

const std::vector<uint32_t>& Nfta::TransitionsWithSymbol(
    SymbolId symbol) const {
  if (symbol >= by_symbol_.size()) return empty_;
  return by_symbol_[symbol];
}

const std::vector<uint32_t>& Nfta::OutTransitions(StateId s) const {
  return out_transitions_.at(s);
}

size_t Nfta::SizeMeasure() const {
  size_t size = 0;
  for (const Transition& t : transitions_) size += 2 + t.children.size();
  return size;
}

bool Nfta::HasLambdaTransitions() const {
  for (const Transition& t : transitions_) {
    if (t.symbol == kLambdaSymbol) return true;
  }
  return false;
}

Status Nfta::EliminateLambda(size_t max_transitions) {
  if (!HasLambdaTransitions()) return Status::OK();

  // λ-rules per state.
  std::vector<std::vector<std::vector<StateId>>> lambda_rules(num_states_);
  for (const Transition& t : transitions_) {
    if (t.symbol == kLambdaSymbol) lambda_rules[t.from].push_back(t.children);
  }

  // Worklist over non-λ transitions; dedup by (from, symbol, children).
  using Key = std::tuple<StateId, SymbolId, std::vector<StateId>>;
  std::set<Key> seen;
  std::vector<Transition> work;
  for (const Transition& t : transitions_) {
    if (t.symbol == kLambdaSymbol) continue;
    Key key{t.from, t.symbol, t.children};
    if (seen.insert(key).second) work.push_back(t);
  }

  for (size_t i = 0; i < work.size(); ++i) {
    if (work.size() > max_transitions) {
      return Status::ResourceExhausted(
          "λ-elimination exceeded transition budget");
    }
    // Copy: `work` may reallocate as we append.
    const Transition t = work[i];
    for (size_t pos = 0; pos < t.children.size(); ++pos) {
      StateId c = t.children[pos];
      for (const std::vector<StateId>& rhs : lambda_rules[c]) {
        std::vector<StateId> spliced;
        spliced.reserve(t.children.size() + rhs.size());
        spliced.insert(spliced.end(), t.children.begin(),
                       t.children.begin() + pos);
        spliced.insert(spliced.end(), rhs.begin(), rhs.end());
        spliced.insert(spliced.end(), t.children.begin() + pos + 1,
                       t.children.end());
        Key key{t.from, t.symbol, spliced};
        if (seen.insert(key).second) {
          work.push_back(Transition{t.from, t.symbol, std::move(spliced)});
        }
      }
    }
  }

  // The initial state absorbs rules through single-state λ-chains:
  // (s, λ, [r]) lets s generate whatever tree r generates.
  std::vector<bool> init_closure(num_states_, false);
  std::vector<StateId> stack = {initial_};
  init_closure[initial_] = true;
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (const std::vector<StateId>& rhs : lambda_rules[s]) {
      if (rhs.size() == 1 && !init_closure[rhs[0]]) {
        init_closure[rhs[0]] = true;
        stack.push_back(rhs[0]);
      }
    }
  }
  const size_t base_count = work.size();
  for (size_t i = 0; i < base_count; ++i) {
    const Transition& t = work[i];
    if (t.from != initial_ && init_closure[t.from]) {
      Key key{initial_, t.symbol, t.children};
      if (seen.insert(key).second) {
        work.push_back(Transition{initial_, t.symbol, t.children});
      }
    }
  }

  // Rebuild.
  transitions_.clear();
  for (auto& v : out_transitions_) v.clear();
  for (auto& v : by_symbol_) v.clear();
  for (Transition& t : work) {
    AddTransition(t.from, t.symbol, std::move(t.children));
  }
  return Status::OK();
}

void Nfta::EnsureRunIndex() const {
  if (run_index_valid_) return;
  leaf_by_symbol_.clear();
  by_symbol_child0_.clear();
  for (uint32_t idx = 0; idx < transitions_.size(); ++idx) {
    const Transition& t = transitions_[idx];
    if (t.symbol == kLambdaSymbol) continue;
    if (t.children.empty()) {
      leaf_by_symbol_[t.symbol].push_back(idx);
    } else {
      const uint64_t key =
          (static_cast<uint64_t>(t.symbol) << 32) | t.children[0];
      by_symbol_child0_[key].push_back(idx);
    }
  }
  run_index_valid_ = true;
}

std::vector<std::vector<StateId>> Nfta::RunStates(
    const LabeledTree& t) const {
  PQE_CHECK(!HasLambdaTransitions());
  EnsureRunIndex();
  std::vector<std::vector<StateId>> states(t.size());
  // LabeledTree node ids are topologically ordered (children after parents),
  // so a descending sweep is bottom-up. Candidate transitions are found via
  // the (symbol, first-child-state) index, so cost scales with the node's
  // sparse run-state sets rather than the automaton size.
  for (uint32_t node = static_cast<uint32_t>(t.size()); node-- > 0;) {
    const SymbolId label = t.label(node);
    const auto& kids = t.children(node);
    std::vector<StateId>& out = states[node];
    if (kids.empty()) {
      auto it = leaf_by_symbol_.find(label);
      if (it != leaf_by_symbol_.end()) {
        for (uint32_t idx : it->second) {
          out.push_back(transitions_[idx].from);
        }
      }
    } else {
      for (StateId first_child_state : states[kids[0]]) {
        const uint64_t key =
            (static_cast<uint64_t>(label) << 32) | first_child_state;
        auto it = by_symbol_child0_.find(key);
        if (it == by_symbol_child0_.end()) continue;
        for (uint32_t idx : it->second) {
          const Transition& tr = transitions_[idx];
          if (tr.children.size() != kids.size()) continue;
          bool ok = true;
          for (size_t i = 1; i < kids.size() && ok; ++i) {
            const auto& child_states = states[kids[i]];
            ok = std::binary_search(child_states.begin(), child_states.end(),
                                    tr.children[i]);
          }
          if (ok) out.push_back(tr.from);
        }
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return states;
}

bool Nfta::Accepts(const LabeledTree& t) const {
  const auto root_states = RunStates(t)[t.root()];
  return std::binary_search(root_states.begin(), root_states.end(),
                            initial_);
}

bool Nfta::AcceptsFrom(StateId state, const LabeledTree& t) const {
  const auto root_states = RunStates(t)[t.root()];
  return std::binary_search(root_states.begin(), root_states.end(), state);
}

void Nfta::Trim() {
  PQE_CHECK(!HasLambdaTransitions());
  PQE_TRACE_SPAN_VAR(span, "nfta.trim");
  span.AttrUint("states_before", num_states_);
  span.AttrUint("transitions_before", transitions_.size());
  // Productive states: can generate some finite tree.
  std::vector<bool> productive(num_states_, false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& t : transitions_) {
      if (productive[t.from]) continue;
      bool ok = true;
      for (StateId c : t.children) ok = ok && productive[c];
      if (ok) {
        productive[t.from] = true;
        changed = true;
      }
    }
  }
  // Reachable states from the initial state, moving only through transitions
  // with all-productive children (others can never occur in a run).
  std::vector<bool> reachable(num_states_, false);
  std::vector<StateId> stack = {initial_};
  reachable[initial_] = true;
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (uint32_t idx : out_transitions_[s]) {
      const Transition& t = transitions_[idx];
      bool ok = true;
      for (StateId c : t.children) ok = ok && productive[c];
      if (!ok) continue;
      for (StateId c : t.children) {
        if (!reachable[c]) {
          reachable[c] = true;
          stack.push_back(c);
        }
      }
    }
  }
  // Rebuild (always keep the initial state so the automaton stays valid even
  // when the language is empty).
  std::vector<int64_t> remap(num_states_, -1);
  Nfta trimmed;
  trimmed.EnsureAlphabetSize(alphabet_size_);
  for (StateId s = 0; s < num_states_; ++s) {
    if ((reachable[s] && productive[s]) || s == initial_) {
      remap[s] = trimmed.AddState();
    }
  }
  trimmed.SetInitialState(static_cast<StateId>(remap[initial_]));
  for (const Transition& t : transitions_) {
    if (remap[t.from] < 0) continue;
    bool ok = true;
    for (StateId c : t.children) ok = ok && remap[c] >= 0;
    if (!ok) continue;
    std::vector<StateId> children;
    children.reserve(t.children.size());
    for (StateId c : t.children) {
      children.push_back(static_cast<StateId>(remap[c]));
    }
    trimmed.AddTransition(static_cast<StateId>(remap[t.from]), t.symbol,
                          std::move(children));
  }
  *this = std::move(trimmed);
  span.AttrUint("states_after", num_states_);
  span.AttrUint("transitions_after", transitions_.size());
}

std::string Nfta::DebugString() const {
  std::ostringstream out;
  out << "NFTA states=" << num_states_ << " transitions="
      << transitions_.size() << " alphabet=" << alphabet_size_
      << " initial=" << initial_ << "\n";
  for (const Transition& t : transitions_) {
    out << "  " << t.from << " --";
    if (t.symbol == kLambdaSymbol) {
      out << "λ";
    } else {
      out << t.symbol;
    }
    out << "--> (";
    for (size_t i = 0; i < t.children.size(); ++i) {
      if (i > 0) out << " ";
      out << t.children[i];
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace pqe
