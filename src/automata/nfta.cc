#include "automata/nfta.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <sstream>

#include "obs/trace.h"
#include "util/check.h"

namespace pqe {

namespace {

uint64_t SymbolChild0Key(SymbolId symbol, StateId child0) {
  return (static_cast<uint64_t>(symbol) << 32) | child0;
}

}  // namespace

Nfta& Nfta::operator=(const Nfta& o) {
  if (this == &o) return *this;
  num_states_ = o.num_states_;
  alphabet_size_ = o.alphabet_size_;
  initial_ = o.initial_;
  transitions_ = o.transitions_;
  child_arena_ = o.child_arena_;
  child_capacity_ = o.child_capacity_;
  adjacency_valid_ = o.adjacency_valid_;
  out_offsets_ = o.out_offsets_;
  out_idx_ = o.out_idx_;
  sym_offsets_ = o.sym_offsets_;
  sym_idx_ = o.sym_idx_;
  run_index_valid_ = o.run_index_valid_;
  leaf_offsets_ = o.leaf_offsets_;
  leaf_idx_ = o.leaf_idx_;
  nonleaf_keys_ = o.nonleaf_keys_;
  nonleaf_offsets_ = o.nonleaf_offsets_;
  nonleaf_idx_ = o.nonleaf_idx_;
  // The copied spans still point into o's arena; repoint them into ours.
  RebaseChildren(o.child_arena_.data());
  return *this;
}

void Nfta::RebaseChildren(const StateId* old_base) {
  const StateId* new_base = child_arena_.data();
  if (new_base == old_base) return;
  for (Transition& t : transitions_) {
    if (t.children.data() == nullptr) continue;
    t.children = Span<StateId>(new_base + (t.children.data() - old_base),
                               t.children.size());
  }
}

StateId Nfta::AddState() {
  StateId id = static_cast<StateId>(num_states_);
  ++num_states_;
  adjacency_valid_ = false;
  return id;
}

void Nfta::EnsureAlphabetSize(size_t size) {
  alphabet_size_ = std::max(alphabet_size_, size);
}

void Nfta::SetInitialState(StateId s) {
  PQE_CHECK(s < num_states_);
  initial_ = s;
}

void Nfta::AddTransition(StateId from, SymbolId symbol,
                         std::vector<StateId> children) {
  AddTransitionView(from, symbol, Span<StateId>(children));
}

void Nfta::AddTransitionView(StateId from, SymbolId symbol,
                             Span<StateId> children) {
  PQE_CHECK(from < num_states_);
  for (StateId c : children) PQE_CHECK(c < num_states_);
  if (symbol != kLambdaSymbol) {
    EnsureAlphabetSize(static_cast<size_t>(symbol) + 1);
  }
  // A span can view this automaton's own arena (e.g. re-adding an existing
  // transition's children); appending may then reallocate under the view,
  // so detour through an owned copy.
  const StateId* arena_begin = child_arena_.data();
  const StateId* arena_end = arena_begin + child_arena_.size();
  std::vector<StateId> self_copy;
  if (!children.empty() && children.data() >= arena_begin &&
      children.data() < arena_end) {
    self_copy = children.ToVector();
    children = Span<StateId>(self_copy);
  }
  const size_t offset = child_arena_.size();
  const StateId* old_base = child_arena_.data();
  child_arena_.insert(child_arena_.end(), children.begin(), children.end());
  RebaseChildren(old_base);
  transitions_.push_back(Transition{
      from, symbol,
      Span<StateId>(children.empty() ? nullptr : child_arena_.data() + offset,
                    children.size())});
  child_capacity_.push_back(static_cast<uint32_t>(children.size()));
  adjacency_valid_ = false;
  run_index_valid_ = false;
}

void Nfta::AddTransitionPadded(StateId from, SymbolId symbol,
                               Span<StateId> children, size_t reserve) {
  PQE_CHECK(from < num_states_);
  for (StateId c : children) PQE_CHECK(c < num_states_);
  if (symbol != kLambdaSymbol) {
    EnsureAlphabetSize(static_cast<size_t>(symbol) + 1);
  }
  reserve = std::max(reserve, std::max<size_t>(children.size(), 1));
  // Same self-alias detour as AddTransitionView: the resize below may
  // reallocate the arena under the view.
  const StateId* arena_begin = child_arena_.data();
  const StateId* arena_end = arena_begin + child_arena_.size();
  std::vector<StateId> self_copy;
  if (!children.empty() && children.data() >= arena_begin &&
      children.data() < arena_end) {
    self_copy = children.ToVector();
    children = Span<StateId>(self_copy);
  }
  const size_t offset = child_arena_.size();
  const StateId* old_base = child_arena_.data();
  child_arena_.resize(offset + reserve, 0);
  std::copy(children.begin(), children.end(), child_arena_.begin() + offset);
  RebaseChildren(old_base);
  transitions_.push_back(Transition{
      from, symbol,
      Span<StateId>(child_arena_.data() + offset, children.size())});
  child_capacity_.push_back(static_cast<uint32_t>(reserve));
  adjacency_valid_ = false;
  run_index_valid_ = false;
}

void Nfta::RewriteChildrenInPlace(uint32_t idx, Span<StateId> children) {
  PQE_CHECK(idx < transitions_.size());
  Transition& t = transitions_[idx];
  PQE_CHECK(children.size() <= child_capacity_[idx]);
  PQE_CHECK(t.children.data() != nullptr);
  for (StateId c : children) PQE_CHECK(c < num_states_);
  const size_t offset =
      static_cast<size_t>(t.children.data() - child_arena_.data());
  std::copy(children.begin(), children.end(), child_arena_.begin() + offset);
  t.children = Span<StateId>(child_arena_.data() + offset, children.size());
  // (from, symbol) are untouched, so the out/by-symbol CSR stays valid; the
  // run-state index keys on arity and first child and must be rebuilt.
  run_index_valid_ = false;
}

void Nfta::EnsureAdjacency() const {
  if (adjacency_valid_) return;
  const size_t S = num_states_;
  const size_t T = transitions_.size();
  // Counting sort, stable in transition order: per-state / per-symbol lists
  // come out in insertion order, matching the old vector-of-vectors layout
  // (canonical-witness tie-breaking iterates OutTransitions in order).
  out_offsets_.assign(S + 1, 0);
  sym_offsets_.assign(alphabet_size_ + 1, 0);
  for (const Transition& t : transitions_) {
    ++out_offsets_[t.from + 1];
    if (t.symbol != kLambdaSymbol) ++sym_offsets_[t.symbol + 1];
  }
  for (size_t s = 0; s < S; ++s) out_offsets_[s + 1] += out_offsets_[s];
  for (size_t a = 0; a < alphabet_size_; ++a) {
    sym_offsets_[a + 1] += sym_offsets_[a];
  }
  out_idx_.resize(T);
  sym_idx_.resize(sym_offsets_.back());
  std::vector<uint32_t> out_cursor(out_offsets_.begin(),
                                   out_offsets_.end() - 1);
  std::vector<uint32_t> sym_cursor(sym_offsets_.begin(),
                                   sym_offsets_.end() - 1);
  for (uint32_t idx = 0; idx < T; ++idx) {
    const Transition& t = transitions_[idx];
    out_idx_[out_cursor[t.from]++] = idx;
    if (t.symbol != kLambdaSymbol) sym_idx_[sym_cursor[t.symbol]++] = idx;
  }
  adjacency_valid_ = true;
}

Span<uint32_t> Nfta::OutTransitions(StateId s) const {
  PQE_CHECK(s < num_states_);
  EnsureAdjacency();
  return Span<uint32_t>(out_idx_.data() + out_offsets_[s],
                        out_offsets_[s + 1] - out_offsets_[s]);
}

Span<uint32_t> Nfta::TransitionsWithSymbol(SymbolId symbol) const {
  EnsureAdjacency();
  if (static_cast<size_t>(symbol) + 1 >= sym_offsets_.size()) return {};
  return Span<uint32_t>(sym_idx_.data() + sym_offsets_[symbol],
                        sym_offsets_[symbol + 1] - sym_offsets_[symbol]);
}

size_t Nfta::SizeMeasure() const {
  size_t size = 0;
  for (const Transition& t : transitions_) size += 2 + t.children.size();
  return size;
}

bool Nfta::HasLambdaTransitions() const {
  for (const Transition& t : transitions_) {
    if (t.symbol == kLambdaSymbol) return true;
  }
  return false;
}

Status Nfta::EliminateLambda(size_t max_transitions) {
  if (!HasLambdaTransitions()) return Status::OK();

  // Owned (from, symbol, children) triples: the worklist below outlives any
  // arena view, so materialize children as vectors here.
  struct Rule {
    StateId from;
    SymbolId symbol;
    std::vector<StateId> children;
  };

  // λ-rules per state.
  std::vector<std::vector<std::vector<StateId>>> lambda_rules(num_states_);
  for (const Transition& t : transitions_) {
    if (t.symbol == kLambdaSymbol) {
      lambda_rules[t.from].push_back(t.children.ToVector());
    }
  }

  // Worklist over non-λ transitions; dedup by (from, symbol, children).
  using Key = std::tuple<StateId, SymbolId, std::vector<StateId>>;
  std::set<Key> seen;
  std::vector<Rule> work;
  for (const Transition& t : transitions_) {
    if (t.symbol == kLambdaSymbol) continue;
    std::vector<StateId> children = t.children.ToVector();
    Key key{t.from, t.symbol, children};
    if (seen.insert(key).second) {
      work.push_back(Rule{t.from, t.symbol, std::move(children)});
    }
  }

  for (size_t i = 0; i < work.size(); ++i) {
    if (work.size() > max_transitions) {
      return Status::ResourceExhausted(
          "λ-elimination exceeded transition budget");
    }
    // Copy: `work` may reallocate as we append.
    const Rule t = work[i];
    for (size_t pos = 0; pos < t.children.size(); ++pos) {
      StateId c = t.children[pos];
      for (const std::vector<StateId>& rhs : lambda_rules[c]) {
        std::vector<StateId> spliced;
        spliced.reserve(t.children.size() + rhs.size());
        spliced.insert(spliced.end(), t.children.begin(),
                       t.children.begin() + pos);
        spliced.insert(spliced.end(), rhs.begin(), rhs.end());
        spliced.insert(spliced.end(), t.children.begin() + pos + 1,
                       t.children.end());
        Key key{t.from, t.symbol, spliced};
        if (seen.insert(key).second) {
          work.push_back(Rule{t.from, t.symbol, std::move(spliced)});
        }
      }
    }
  }

  // The initial state absorbs rules through single-state λ-chains:
  // (s, λ, [r]) lets s generate whatever tree r generates.
  std::vector<bool> init_closure(num_states_, false);
  std::vector<StateId> stack = {initial_};
  init_closure[initial_] = true;
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (const std::vector<StateId>& rhs : lambda_rules[s]) {
      if (rhs.size() == 1 && !init_closure[rhs[0]]) {
        init_closure[rhs[0]] = true;
        stack.push_back(rhs[0]);
      }
    }
  }
  const size_t base_count = work.size();
  for (size_t i = 0; i < base_count; ++i) {
    const Rule& t = work[i];
    if (t.from != initial_ && init_closure[t.from]) {
      Key key{initial_, t.symbol, t.children};
      if (seen.insert(key).second) {
        work.push_back(Rule{initial_, t.symbol, t.children});
      }
    }
  }

  // Rebuild.
  transitions_.clear();
  child_arena_.clear();
  child_capacity_.clear();
  adjacency_valid_ = false;
  run_index_valid_ = false;
  for (Rule& t : work) {
    AddTransition(t.from, t.symbol, std::move(t.children));
  }
  return Status::OK();
}

void Nfta::EnsureRunIndex() const {
  if (run_index_valid_) return;
  // Leaf transitions: CSR by symbol (dense offsets over the alphabet).
  leaf_offsets_.assign(alphabet_size_ + 1, 0);
  std::vector<std::pair<uint64_t, uint32_t>> nonleaf;  // (key, idx)
  size_t leaf_count = 0;
  for (uint32_t idx = 0; idx < transitions_.size(); ++idx) {
    const Transition& t = transitions_[idx];
    if (t.symbol == kLambdaSymbol) continue;
    if (t.children.empty()) {
      ++leaf_offsets_[t.symbol + 1];
      ++leaf_count;
    } else {
      nonleaf.emplace_back(SymbolChild0Key(t.symbol, t.children[0]), idx);
    }
  }
  for (size_t a = 0; a < alphabet_size_; ++a) {
    leaf_offsets_[a + 1] += leaf_offsets_[a];
  }
  leaf_idx_.resize(leaf_count);
  std::vector<uint32_t> leaf_cursor(leaf_offsets_.begin(),
                                    leaf_offsets_.end() - 1);
  for (uint32_t idx = 0; idx < transitions_.size(); ++idx) {
    const Transition& t = transitions_[idx];
    if (t.symbol == kLambdaSymbol || !t.children.empty()) continue;
    leaf_idx_[leaf_cursor[t.symbol]++] = idx;
  }
  // Non-leaf transitions: sorted unique (symbol, first-child) keys + CSR
  // groups, binary-searched at query time. stable_sort keeps transition
  // indices ascending within a key.
  std::stable_sort(nonleaf.begin(), nonleaf.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  nonleaf_keys_.clear();
  nonleaf_offsets_.clear();
  nonleaf_idx_.resize(nonleaf.size());
  for (size_t i = 0; i < nonleaf.size(); ++i) {
    if (i == 0 || nonleaf[i].first != nonleaf[i - 1].first) {
      nonleaf_keys_.push_back(nonleaf[i].first);
      nonleaf_offsets_.push_back(static_cast<uint32_t>(i));
    }
    nonleaf_idx_[i] = nonleaf[i].second;
  }
  nonleaf_offsets_.push_back(static_cast<uint32_t>(nonleaf.size()));
  run_index_valid_ = true;
}

Span<uint32_t> Nfta::LeafTransitions(SymbolId symbol) const {
  EnsureRunIndex();
  if (static_cast<size_t>(symbol) + 1 >= leaf_offsets_.size()) return {};
  return Span<uint32_t>(leaf_idx_.data() + leaf_offsets_[symbol],
                        leaf_offsets_[symbol + 1] - leaf_offsets_[symbol]);
}

Span<uint32_t> Nfta::TransitionsWithSymbolChild0(SymbolId symbol,
                                                 StateId child0) const {
  EnsureRunIndex();
  const uint64_t key = SymbolChild0Key(symbol, child0);
  const auto it =
      std::lower_bound(nonleaf_keys_.begin(), nonleaf_keys_.end(), key);
  if (it == nonleaf_keys_.end() || *it != key) return {};
  const size_t pos = static_cast<size_t>(it - nonleaf_keys_.begin());
  return Span<uint32_t>(nonleaf_idx_.data() + nonleaf_offsets_[pos],
                        nonleaf_offsets_[pos + 1] - nonleaf_offsets_[pos]);
}

std::vector<std::vector<StateId>> Nfta::RunStates(
    const LabeledTree& t) const {
  PQE_CHECK(!HasLambdaTransitions());
  EnsureRunIndex();
  const Transition* trans = transitions_.data();
  std::vector<std::vector<StateId>> states(t.size());
  // LabeledTree node ids are topologically ordered (children after parents),
  // so a descending sweep is bottom-up. Candidate transitions are found via
  // the (symbol, first-child-state) index, so cost scales with the node's
  // sparse run-state sets rather than the automaton size.
  for (uint32_t node = static_cast<uint32_t>(t.size()); node-- > 0;) {
    const SymbolId label = t.label(node);
    const auto& kids = t.children(node);
    std::vector<StateId>& out = states[node];
    if (kids.empty()) {
      for (uint32_t idx : LeafTransitions(label)) {
        out.push_back(trans[idx].from);
      }
    } else {
      for (StateId first_child_state : states[kids[0]]) {
        for (uint32_t idx :
             TransitionsWithSymbolChild0(label, first_child_state)) {
          const Transition& tr = trans[idx];
          if (tr.children.size() != kids.size()) continue;
          bool ok = true;
          for (size_t i = 1; i < kids.size() && ok; ++i) {
            const auto& child_states = states[kids[i]];
            ok = std::binary_search(child_states.begin(), child_states.end(),
                                    tr.children[i]);
          }
          if (ok) out.push_back(tr.from);
        }
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return states;
}

bool Nfta::Accepts(const LabeledTree& t) const {
  const auto root_states = RunStates(t)[t.root()];
  return std::binary_search(root_states.begin(), root_states.end(),
                            initial_);
}

bool Nfta::AcceptsFrom(StateId state, const LabeledTree& t) const {
  const auto root_states = RunStates(t)[t.root()];
  return std::binary_search(root_states.begin(), root_states.end(), state);
}

void Nfta::Trim() {
  PQE_CHECK(!HasLambdaTransitions());
  PQE_TRACE_SPAN_VAR(span, "nfta.trim");
  span.AttrUint("states_before", num_states_);
  span.AttrUint("transitions_before", transitions_.size());
  // Productive states: can generate some finite tree.
  std::vector<bool> productive(num_states_, false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& t : transitions_) {
      if (productive[t.from]) continue;
      bool ok = true;
      for (StateId c : t.children) ok = ok && productive[c];
      if (ok) {
        productive[t.from] = true;
        changed = true;
      }
    }
  }
  // Reachable states from the initial state, moving only through transitions
  // with all-productive children (others can never occur in a run).
  std::vector<bool> reachable(num_states_, false);
  std::vector<StateId> stack = {initial_};
  reachable[initial_] = true;
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (uint32_t idx : OutTransitions(s)) {
      const Transition& t = transitions_[idx];
      bool ok = true;
      for (StateId c : t.children) ok = ok && productive[c];
      if (!ok) continue;
      for (StateId c : t.children) {
        if (!reachable[c]) {
          reachable[c] = true;
          stack.push_back(c);
        }
      }
    }
  }
  // Rebuild (always keep the initial state so the automaton stays valid even
  // when the language is empty).
  std::vector<int64_t> remap(num_states_, -1);
  Nfta trimmed;
  trimmed.EnsureAlphabetSize(alphabet_size_);
  for (StateId s = 0; s < num_states_; ++s) {
    if ((reachable[s] && productive[s]) || s == initial_) {
      remap[s] = trimmed.AddState();
    }
  }
  trimmed.SetInitialState(static_cast<StateId>(remap[initial_]));
  for (const Transition& t : transitions_) {
    if (remap[t.from] < 0) continue;
    bool ok = true;
    for (StateId c : t.children) ok = ok && remap[c] >= 0;
    if (!ok) continue;
    std::vector<StateId> children;
    children.reserve(t.children.size());
    for (StateId c : t.children) {
      children.push_back(static_cast<StateId>(remap[c]));
    }
    trimmed.AddTransition(static_cast<StateId>(remap[t.from]), t.symbol,
                          std::move(children));
  }
  *this = std::move(trimmed);
  span.AttrUint("states_after", num_states_);
  span.AttrUint("transitions_after", transitions_.size());
}

std::string Nfta::DebugString() const {
  std::ostringstream out;
  out << "NFTA states=" << num_states_ << " transitions="
      << transitions_.size() << " alphabet=" << alphabet_size_
      << " initial=" << initial_ << "\n";
  for (const Transition& t : transitions_) {
    out << "  " << t.from << " --";
    if (t.symbol == kLambdaSymbol) {
      out << "λ";
    } else {
      out << t.symbol;
    }
    out << "--> (";
    for (size_t i = 0; i < t.children.size(); ++i) {
      if (i > 0) out << " ";
      out << t.children[i];
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace pqe
