#ifndef PQE_AUTOMATA_MULTIPLIER_NFTA_H_
#define PQE_AUTOMATA_MULTIPLIER_NFTA_H_

#include <cstdint>
#include <vector>

#include "automata/nfta.h"
#include "util/result.h"

namespace pqe {

/// The value-stable ("slotted") translation layout produced by
/// MultiplierNfta::ToNftaStable. The translated automaton's shape — states,
/// rule count, per-rule (from, symbol) and arena reserves — depends only on
/// the slot widths, never on the multiplier values; the values live purely
/// in rule targets that PatchStableNftaSlot can rewrite in place. This is
/// what lets a probability bind be patched per-fact instead of recompiled
/// (core/pqe.h delta rebinds).
struct StableNftaLayout {
  SymbolId bit0 = 0;
  SymbolId bit1 = 0;
  /// Global dead state: comparator branches that would exceed the bound (and
  /// entry rules of multiplier-0 slots) target it. It has no rules, so the
  /// counting layers' forward/backward liveness pruning discards those
  /// branches — stable automata must not be Trim()ed.
  StateId sink = 0;
  struct Slot {
    uint32_t entry_idx = 0;  ///< transition index of the slot's entry rule
    uint32_t width = 0;      ///< comparator width k in bits
    StateId eq0 = 0;         ///< eq[i] = eq0 + i (valid when k > 0)
    StateId lt1 = 0;         ///< lt[i] = lt1 + (i - 1) (valid when k > 1)
    uint32_t exit_off = 0;   ///< offset into exit_children
    uint32_t exit_len = 0;   ///< arity of the original transition
  };
  std::vector<Slot> slots;  ///< one per multiplier transition, in order
  std::vector<StateId> exit_children;  ///< concatenated original children
};

/// Rewrites slot `slot_idx` of a ToNftaStable-produced automaton so that it
/// encodes `multiplier` (requires GadgetDepth(max(multiplier, 1)) <= the
/// slot's width). This is the canonical writer of value-dependent targets —
/// ToNftaStable itself calls it with the build-time multipliers — so a
/// patched automaton is bit-identical to a fresh translation by
/// construction. Only the run-state index is invalidated (structure keyed on
/// (from, symbol) never changes), so warm CSR adjacency survives the patch.
void PatchStableNftaSlot(Nfta* nfta, const StableNftaLayout& layout,
                         size_t slot_idx, uint64_t multiplier);

/// A (top-down) NFTA with multipliers T^c (Definition 2): each transition
/// carries a positive integer n ("multiplier"); taking the transition must
/// multiply the number of accepted trees by n. Semantics are defined by
/// translation to an ordinary NFTA (ToNfta) via the binary-comparator gadget
/// of Section 5.1: below the transition's node a unary path of
/// k = ⌊log₂(n−1)⌋ + 1 bit-labelled nodes spells a binary string, and the
/// gadget accepts exactly the n strings with value ≤ n − 1.
class MultiplierNfta {
 public:
  struct Transition {
    StateId from;
    SymbolId symbol;
    // n ∈ N. 0 means the transition is impossible (contributes no trees);
    // only the stable translation (ToNftaStable) can express it — the
    // minimal ToNfta rejects it, since dropping the transition is the
    // minimal encoding.
    uint64_t multiplier = 1;
    // Comparator width in bits; >= GadgetDepth(max(multiplier, 1)). Widths
    // beyond the minimum pad with leading zeros (the comparator still
    // accepts exactly `multiplier` strings) so that callers can equalize the
    // tree-size contribution across transitions — the PQE reduction needs
    // the positive and negative branch of a fact to add the same number of
    // nodes.
    uint64_t width = 0;
    std::vector<StateId> children;
  };

  MultiplierNfta() = default;

  /// Initializes states/alphabet/initial state from an ordinary NFTA's
  /// shape; transitions are added separately (with multipliers).
  static MultiplierNfta FromSkeleton(const Nfta& base);

  StateId AddState();
  void EnsureAlphabetSize(size_t size);
  void SetInitialState(StateId s);
  /// multiplier 0 means the transition is impossible (stable translation
  /// only; see Transition::multiplier). `width` is the comparator width in
  /// bits: 0 = use the minimal GadgetDepth(max(multiplier, 1)); otherwise
  /// must be >= that. A width of w adds exactly w unary nodes below the
  /// transition's node.
  Status AddTransition(StateId from, SymbolId symbol, uint64_t multiplier,
                       std::vector<StateId> children, uint64_t width = 0);

  size_t NumStates() const { return num_states_; }
  size_t NumTransitions() const { return transitions_.size(); }
  size_t AlphabetSize() const { return alphabet_size_; }
  StateId initial_state() const { return initial_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// SymbolIds of the two bit symbols appended by the translation.
  SymbolId BitSymbol(int bit) const;

  /// Extra tree nodes induced by a multiplier n: u(n) = 0 if n == 1, else
  /// ⌊log₂(n−1)⌋ + 1 (Section 5.2's u(w_i)).
  static uint64_t GadgetDepth(uint64_t multiplier);

  /// The translation of Section 5.1 to an ordinary NFTA over the alphabet
  /// Σ ∪ {0, 1} (see BitSymbol). Per Remark 2 this is polynomial in |T^c|;
  /// the per-transition gadget adds O(log n) states. Rejects multiplier-0
  /// transitions (their minimal encoding is absence; use ToNftaStable).
  Result<Nfta> ToNfta() const;

  /// Value-stable variant of ToNfta: every transition — multiplier 0
  /// included — compiles to a fixed-shape slot (entry rule + width-k
  /// comparator with a fixed per-level rule order, dead branches kept as
  /// rules into a shared sink) whose targets alone encode the multiplier.
  /// `*layout` records where each slot lives so PatchStableNftaSlot can
  /// later re-encode it for a new multiplier in place. The result must not
  /// be Trim()ed (see StableNftaLayout::sink).
  Result<Nfta> ToNftaStable(StableNftaLayout* layout) const;

 private:
  size_t num_states_ = 0;
  size_t alphabet_size_ = 0;
  StateId initial_ = 0;
  std::vector<Transition> transitions_;
};

}  // namespace pqe

#endif  // PQE_AUTOMATA_MULTIPLIER_NFTA_H_
