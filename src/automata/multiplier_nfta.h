#ifndef PQE_AUTOMATA_MULTIPLIER_NFTA_H_
#define PQE_AUTOMATA_MULTIPLIER_NFTA_H_

#include <cstdint>
#include <vector>

#include "automata/nfta.h"
#include "util/result.h"

namespace pqe {

/// A (top-down) NFTA with multipliers T^c (Definition 2): each transition
/// carries a positive integer n ("multiplier"); taking the transition must
/// multiply the number of accepted trees by n. Semantics are defined by
/// translation to an ordinary NFTA (ToNfta) via the binary-comparator gadget
/// of Section 5.1: below the transition's node a unary path of
/// k = ⌊log₂(n−1)⌋ + 1 bit-labelled nodes spells a binary string, and the
/// gadget accepts exactly the n strings with value ≤ n − 1.
class MultiplierNfta {
 public:
  struct Transition {
    StateId from;
    SymbolId symbol;
    uint64_t multiplier = 1;  // n ∈ N, n >= 1
    // Comparator width in bits; >= GadgetDepth(multiplier). Widths beyond the
    // minimum pad with leading zeros (the comparator still accepts exactly
    // `multiplier` strings) so that callers can equalize the tree-size
    // contribution across transitions — the PQE reduction needs the positive
    // and negative branch of a fact to add the same number of nodes.
    uint64_t width = 0;
    std::vector<StateId> children;
  };

  MultiplierNfta() = default;

  /// Initializes states/alphabet/initial state from an ordinary NFTA's
  /// shape; transitions are added separately (with multipliers).
  static MultiplierNfta FromSkeleton(const Nfta& base);

  StateId AddState();
  void EnsureAlphabetSize(size_t size);
  void SetInitialState(StateId s);
  /// multiplier must be >= 1 (a multiplier of 0 means the transition is
  /// impossible — simply do not add it). `width` is the comparator width in
  /// bits: 0 = use the minimal GadgetDepth(multiplier); otherwise must be
  /// >= GadgetDepth(multiplier). A width of w adds exactly w unary nodes
  /// below the transition's node.
  Status AddTransition(StateId from, SymbolId symbol, uint64_t multiplier,
                       std::vector<StateId> children, uint64_t width = 0);

  size_t NumStates() const { return num_states_; }
  size_t NumTransitions() const { return transitions_.size(); }
  size_t AlphabetSize() const { return alphabet_size_; }
  StateId initial_state() const { return initial_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// SymbolIds of the two bit symbols appended by the translation.
  SymbolId BitSymbol(int bit) const;

  /// Extra tree nodes induced by a multiplier n: u(n) = 0 if n == 1, else
  /// ⌊log₂(n−1)⌋ + 1 (Section 5.2's u(w_i)).
  static uint64_t GadgetDepth(uint64_t multiplier);

  /// The translation of Section 5.1 to an ordinary NFTA over the alphabet
  /// Σ ∪ {0, 1} (see BitSymbol). Per Remark 2 this is polynomial in |T^c|;
  /// the per-transition gadget adds O(log n) states.
  Result<Nfta> ToNfta() const;

 private:
  size_t num_states_ = 0;
  size_t alphabet_size_ = 0;
  StateId initial_ = 0;
  std::vector<Transition> transitions_;
};

}  // namespace pqe

#endif  // PQE_AUTOMATA_MULTIPLIER_NFTA_H_
