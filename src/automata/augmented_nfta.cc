#include "automata/augmented_nfta.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace pqe {

StateId AugmentedNfta::AddState() {
  return static_cast<StateId>(num_states_++);
}

void AugmentedNfta::EnsureAlphabetSize(size_t size) {
  alphabet_size_ = std::max(alphabet_size_, size);
}

void AugmentedNfta::SetInitialState(StateId s) {
  PQE_CHECK(s < num_states_);
  initial_ = s;
}

void AugmentedNfta::AddTransition(StateId from,
                                  std::vector<AnnotatedSymbol> annotation,
                                  std::vector<StateId> children) {
  PQE_CHECK(from < num_states_);
  for (StateId c : children) PQE_CHECK(c < num_states_);
  for (const AnnotatedSymbol& a : annotation) {
    EnsureAlphabetSize(static_cast<size_t>(a.symbol) + 1);
  }
  transitions_.push_back(
      Transition{from, std::move(annotation), std::move(children)});
}

size_t AugmentedNfta::SizeMeasure() const {
  size_t size = 0;
  for (const Transition& t : transitions_) {
    size += 2 + t.annotation.size() + t.children.size();
  }
  return size;
}

Result<Nfta> AugmentedNfta::ToNfta(bool eliminate_lambda) const {
  PQE_TRACE_SPAN_VAR(span, "nfta.translate");
  span.AttrUint("augmented_states", num_states_);
  span.AttrUint("augmented_transitions", transitions_.size());
  Nfta out;
  out.EnsureAlphabetSize(2 * alphabet_size_);
  for (size_t s = 0; s < num_states_; ++s) out.AddState();
  out.SetInitialState(initial_);

  for (const Transition& t : transitions_) {
    if (t.annotation.empty()) {
      // λ-transition: carried over as-is; eliminated below.
      out.AddTransition(t.from, Nfta::kLambdaSymbol, t.children);
      continue;
    }
    // Stage 1: thread fresh states r1..r_{j-1} along the annotation string.
    // Stage 2 (fused): each symbol emits its positive literal, plus the
    // negative literal when ?-annotated.
    StateId current = t.from;
    for (size_t i = 0; i < t.annotation.size(); ++i) {
      const AnnotatedSymbol& a = t.annotation[i];
      const bool last = (i + 1 == t.annotation.size());
      std::vector<StateId> next_children;
      if (last) {
        next_children = t.children;
      } else {
        next_children = {out.AddState()};
      }
      out.AddTransition(current, PositiveLiteral(a.symbol), next_children);
      if (a.optional) {
        out.AddTransition(current, NegativeLiteral(a.symbol), next_children);
      }
      if (!last) current = next_children[0];
    }
  }

  if (eliminate_lambda) {
    PQE_RETURN_IF_ERROR(out.EliminateLambda());
  }
  span.AttrUint("nfta_states", out.NumStates());
  span.AttrUint("nfta_transitions", out.NumTransitions());
  return out;
}

}  // namespace pqe
