#include "automata/ops.h"

#include <map>
#include <utility>
#include <vector>

namespace pqe {

Nfa UnionNfa(const Nfa& a, const Nfa& b) {
  Nfa out;
  out.EnsureAlphabetSize(std::max(a.AlphabetSize(), b.AlphabetSize()));
  std::vector<StateId> map_a(a.NumStates());
  std::vector<StateId> map_b(b.NumStates());
  for (StateId s = 0; s < a.NumStates(); ++s) map_a[s] = out.AddState();
  for (StateId s = 0; s < b.NumStates(); ++s) map_b[s] = out.AddState();
  for (const Nfa::Transition& t : a.transitions()) {
    out.AddTransition(map_a[t.from], t.symbol, map_a[t.to]);
  }
  for (const Nfa::Transition& t : b.transitions()) {
    out.AddTransition(map_b[t.from], t.symbol, map_b[t.to]);
  }
  for (StateId s = 0; s < a.NumStates(); ++s) {
    if (a.IsInitial(s)) out.MarkInitial(map_a[s]);
    if (a.IsAccepting(s)) out.MarkAccepting(map_a[s]);
  }
  for (StateId s = 0; s < b.NumStates(); ++s) {
    if (b.IsInitial(s)) out.MarkInitial(map_b[s]);
    if (b.IsAccepting(s)) out.MarkAccepting(map_b[s]);
  }
  return out;
}

Nfa IntersectNfa(const Nfa& a, const Nfa& b) {
  Nfa out;
  out.EnsureAlphabetSize(std::max(a.AlphabetSize(), b.AlphabetSize()));
  std::map<std::pair<StateId, StateId>, StateId> states;
  std::vector<std::pair<StateId, StateId>> worklist;
  auto intern = [&](StateId qa, StateId qb) {
    auto [it, inserted] = states.emplace(std::make_pair(qa, qb), 0);
    if (inserted) {
      it->second = out.AddState();
      if (a.IsAccepting(qa) && b.IsAccepting(qb)) {
        out.MarkAccepting(it->second);
      }
      worklist.emplace_back(qa, qb);
    }
    return it->second;
  };
  for (StateId qa : a.initial_states()) {
    for (StateId qb : b.initial_states()) {
      out.MarkInitial(intern(qa, qb));
    }
  }
  while (!worklist.empty()) {
    auto [qa, qb] = worklist.back();
    worklist.pop_back();
    const StateId from = states.at({qa, qb});
    for (uint32_t ia : a.OutTransitions(qa)) {
      const Nfa::Transition& ta = a.transitions()[ia];
      for (uint32_t ib : b.OutTransitions(qb)) {
        const Nfa::Transition& tb = b.transitions()[ib];
        if (ta.symbol != tb.symbol) continue;
        out.AddTransition(from, ta.symbol, intern(ta.to, tb.to));
      }
    }
  }
  return out;
}

Nfa ReverseNfa(const Nfa& a) {
  Nfa out;
  out.EnsureAlphabetSize(a.AlphabetSize());
  for (StateId s = 0; s < a.NumStates(); ++s) out.AddState();
  for (const Nfa::Transition& t : a.transitions()) {
    out.AddTransition(t.to, t.symbol, t.from);
  }
  for (StateId s = 0; s < a.NumStates(); ++s) {
    if (a.IsAccepting(s)) out.MarkInitial(s);
    if (a.IsInitial(s)) out.MarkAccepting(s);
  }
  return out;
}

Result<Nfta> UnionNfta(const Nfta& a, const Nfta& b) {
  if (a.HasLambdaTransitions() || b.HasLambdaTransitions()) {
    return Status::InvalidArgument("UnionNfta requires λ-free inputs");
  }
  Nfta out;
  out.EnsureAlphabetSize(std::max(a.AlphabetSize(), b.AlphabetSize()));
  std::vector<StateId> map_a(a.NumStates());
  std::vector<StateId> map_b(b.NumStates());
  for (StateId s = 0; s < a.NumStates(); ++s) map_a[s] = out.AddState();
  for (StateId s = 0; s < b.NumStates(); ++s) map_b[s] = out.AddState();
  const StateId init = out.AddState();
  out.SetInitialState(init);
  auto copy = [&](const Nfta& src, const std::vector<StateId>& map) {
    for (const Nfta::Transition& t : src.transitions()) {
      std::vector<StateId> children;
      children.reserve(t.children.size());
      for (StateId c : t.children) children.push_back(map[c]);
      out.AddTransition(map[t.from], t.symbol, children);
      if (t.from == src.initial_state()) {
        out.AddTransition(init, t.symbol, std::move(children));
      }
    }
  };
  copy(a, map_a);
  copy(b, map_b);
  return out;
}

}  // namespace pqe
