#ifndef PQE_AUTOMATA_NFA_H_
#define PQE_AUTOMATA_NFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace pqe {

/// State index within an automaton.
using StateId = uint32_t;
/// Input symbol. Symbol meaning is owned by the construction that builds the
/// automaton (e.g. fact literals for the Section 3 reduction).
using SymbolId = uint32_t;

/// A non-deterministic finite string automaton (S, Σ, δ, I, F) (Section 2).
/// Supports multiple initial states, as used by the path-query construction.
class Nfa {
 public:
  struct Transition {
    StateId from;
    SymbolId symbol;
    StateId to;
  };

  Nfa() = default;

  /// Adds a fresh state and returns its id.
  StateId AddState();
  /// Declares the alphabet size; symbols must be < alphabet_size. Growing is
  /// implicit when AddTransition sees a larger symbol.
  void EnsureAlphabetSize(size_t size);

  void AddTransition(StateId from, SymbolId symbol, StateId to);
  void MarkInitial(StateId s);
  void MarkAccepting(StateId s);

  size_t NumStates() const { return num_states_; }
  size_t NumTransitions() const { return transitions_.size(); }
  size_t AlphabetSize() const { return alphabet_size_; }
  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::vector<StateId>& initial_states() const { return initial_; }
  bool IsInitial(StateId s) const { return is_initial_.at(s); }
  bool IsAccepting(StateId s) const { return is_accepting_.at(s); }

  /// Outgoing transitions of a state (indices into transitions()).
  const std::vector<uint32_t>& OutTransitions(StateId s) const;
  /// Incoming transitions of a state (indices into transitions()).
  const std::vector<uint32_t>& InTransitions(StateId s) const;

  /// Subset simulation: the set of states reachable from the initial states
  /// by reading `word`, as a bitvector indexed by StateId.
  std::vector<bool> StatesAfter(const std::vector<SymbolId>& word) const;

  /// Sparse subset simulation: the same reachable set as a sorted state
  /// list. Cost tracks the active-set size times out-degree per step rather
  /// than the automaton size — the membership oracle the counting estimator
  /// leans on.
  std::vector<StateId> ActiveStatesAfter(
      const std::vector<SymbolId>& word) const;

  /// Standard acceptance test.
  bool Accepts(const std::vector<SymbolId>& word) const;

  /// The paper's |M| measure: a proxy for the encoding size of δ
  /// (one entry = from + symbol + to).
  size_t SizeMeasure() const { return 3 * transitions_.size(); }

  /// Removes states that are not both reachable from an initial state and
  /// co-reachable to an accepting state. Counting algorithms assume trimmed
  /// automata so that every stratum is "useful".
  void Trim();

  std::string DebugString() const;

 private:
  void EnsureState(StateId s);

  size_t num_states_ = 0;
  size_t alphabet_size_ = 0;
  std::vector<Transition> transitions_;
  std::vector<std::vector<uint32_t>> out_transitions_;
  std::vector<std::vector<uint32_t>> in_transitions_;
  std::vector<StateId> initial_;
  std::vector<bool> is_initial_;
  std::vector<bool> is_accepting_;
};

}  // namespace pqe

#endif  // PQE_AUTOMATA_NFA_H_
