#ifndef PQE_AUTOMATA_NFA_H_
#define PQE_AUTOMATA_NFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/span.h"

namespace pqe {

/// State index within an automaton.
using StateId = uint32_t;
/// Input symbol. Symbol meaning is owned by the construction that builds the
/// automaton (e.g. fact literals for the Section 3 reduction).
using SymbolId = uint32_t;

/// A non-deterministic finite string automaton (S, Σ, δ, I, F) (Section 2).
/// Supports multiple initial states, as used by the path-query construction.
///
/// Storage is hot-path oriented: transitions live in one contiguous vector
/// and the per-state adjacency (out/in transition indices) is a CSR layout —
/// one flat index arena plus per-state (offset, length) — built lazily on
/// first access and invalidated by AddTransition. Accessors hand out
/// Span<uint32_t> views into the arena, so the inner simulation loops touch
/// no per-state heap blocks.
class Nfa {
 public:
  struct Transition {
    StateId from;
    SymbolId symbol;
    StateId to;
  };

  Nfa() = default;

  /// Adds a fresh state and returns its id.
  StateId AddState();
  /// Declares the alphabet size; symbols must be < alphabet_size. Growing is
  /// implicit when AddTransition sees a larger symbol.
  void EnsureAlphabetSize(size_t size);

  void AddTransition(StateId from, SymbolId symbol, StateId to);
  void MarkInitial(StateId s);
  void MarkAccepting(StateId s);

  /// Retargets an existing transition in place. The structural indexes keyed
  /// on `from` and `symbol` (the out-CSR) stay valid — only the in-CSR is
  /// invalidated and lazily rebuilt on the next InTransitions/WarmAdjacency.
  /// This is the primitive the delta-rebind path (core/path_pqe.h) uses to
  /// patch multiplier-gadget targets without recompiling the bind.
  void SetTransitionTarget(uint32_t idx, StateId to);

  size_t NumStates() const { return num_states_; }
  size_t NumTransitions() const { return transitions_.size(); }
  size_t AlphabetSize() const { return alphabet_size_; }
  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::vector<StateId>& initial_states() const { return initial_; }
  bool IsInitial(StateId s) const { return is_initial_.at(s); }
  bool IsAccepting(StateId s) const { return is_accepting_.at(s); }

  /// Outgoing transitions of a state (indices into transitions()), in
  /// insertion order. The view is invalidated by AddTransition.
  Span<uint32_t> OutTransitions(StateId s) const;
  /// Incoming transitions of a state (indices into transitions()), in
  /// insertion order. The view is invalidated by AddTransition.
  Span<uint32_t> InTransitions(StateId s) const;

  /// Builds the lazy CSR adjacency now. The accessors build it on first use,
  /// which mutates `mutable` members — call this before sharing a const Nfa
  /// across threads (the parallel median-of-R reps do), after which
  /// concurrent accessor calls are read-only and race-free. After
  /// SetTransitionTarget only the in-CSR is rebuilt; the out-CSR is reused.
  void WarmAdjacency() const {
    EnsureAdjacency();
    EnsureInAdjacency();
  }

  /// Subset simulation: the set of states reachable from the initial states
  /// by reading `word`, as a bitvector indexed by StateId.
  std::vector<bool> StatesAfter(const std::vector<SymbolId>& word) const;

  /// Sparse subset simulation: the same reachable set as a sorted state
  /// list. Cost tracks the active-set size times out-degree per step rather
  /// than the automaton size — the membership oracle the counting estimator
  /// leans on.
  std::vector<StateId> ActiveStatesAfter(
      const std::vector<SymbolId>& word) const;

  /// One step of the sparse subset simulation: the sorted successor set of
  /// the sorted state set `current` under `symbol`, written into `*next`
  /// (scratch-friendly: reuses next's capacity). Exposed for the counting
  /// layer's memoized membership oracle.
  void ActiveStep(const std::vector<StateId>& current, SymbolId symbol,
                  std::vector<StateId>* next) const;

  /// Standard acceptance test.
  bool Accepts(const std::vector<SymbolId>& word) const;

  /// The paper's |M| measure: a proxy for the encoding size of δ
  /// (one entry = from + symbol + to).
  size_t SizeMeasure() const { return 3 * transitions_.size(); }

  /// Removes states that are not both reachable from an initial state and
  /// co-reachable to an accepting state. Counting algorithms assume trimmed
  /// automata so that every stratum is "useful".
  void Trim();

  std::string DebugString() const;

 private:
  void EnsureState(StateId s);
  void EnsureAdjacency() const;
  void EnsureInAdjacency() const;

  size_t num_states_ = 0;
  size_t alphabet_size_ = 0;
  std::vector<Transition> transitions_;
  std::vector<StateId> initial_;
  std::vector<bool> is_initial_;
  std::vector<bool> is_accepting_;

  // Lazy CSR adjacency: out_idx_/in_idx_ hold transition indices grouped by
  // state; offsets have num_states_ + 1 entries. Rebuilt (counting sort,
  // stable in transition order) whenever a transition was added. The two
  // directions carry separate validity so a target-only rewrite
  // (SetTransitionTarget) invalidates just the in-CSR.
  mutable bool adjacency_valid_ = false;
  mutable bool in_valid_ = false;
  mutable std::vector<uint32_t> out_offsets_;
  mutable std::vector<uint32_t> out_idx_;
  mutable std::vector<uint32_t> in_offsets_;
  mutable std::vector<uint32_t> in_idx_;
};

}  // namespace pqe

#endif  // PQE_AUTOMATA_NFA_H_
