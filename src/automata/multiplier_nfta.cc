#include "automata/multiplier_nfta.h"

#include <algorithm>

#include "util/check.h"

namespace pqe {

MultiplierNfta MultiplierNfta::FromSkeleton(const Nfta& base) {
  MultiplierNfta out;
  out.num_states_ = base.NumStates();
  out.alphabet_size_ = base.AlphabetSize();
  out.initial_ = base.initial_state();
  return out;
}

StateId MultiplierNfta::AddState() {
  return static_cast<StateId>(num_states_++);
}

void MultiplierNfta::EnsureAlphabetSize(size_t size) {
  alphabet_size_ = std::max(alphabet_size_, size);
}

void MultiplierNfta::SetInitialState(StateId s) {
  PQE_CHECK(s < num_states_);
  initial_ = s;
}

Status MultiplierNfta::AddTransition(StateId from, SymbolId symbol,
                                     uint64_t multiplier,
                                     std::vector<StateId> children,
                                     uint64_t width) {
  if (from >= num_states_) {
    return Status::InvalidArgument("transition from unknown state");
  }
  for (StateId c : children) {
    if (c >= num_states_) {
      return Status::InvalidArgument("transition to unknown state");
    }
  }
  const uint64_t min_width = GadgetDepth(std::max<uint64_t>(multiplier, 1));
  if (width == 0) width = min_width;
  if (width < min_width) {
    return Status::InvalidArgument(
        "comparator width too small for multiplier");
  }
  EnsureAlphabetSize(static_cast<size_t>(symbol) + 1);
  transitions_.push_back(
      Transition{from, symbol, multiplier, width, std::move(children)});
  return Status::OK();
}

SymbolId MultiplierNfta::BitSymbol(int bit) const {
  PQE_CHECK(bit == 0 || bit == 1);
  return static_cast<SymbolId>(alphabet_size_ + static_cast<size_t>(bit));
}

uint64_t MultiplierNfta::GadgetDepth(uint64_t multiplier) {
  PQE_CHECK(multiplier >= 1);
  if (multiplier == 1) return 0;
  uint64_t bound = multiplier - 1;
  uint64_t k = 0;
  while (bound) {
    ++k;
    bound >>= 1;
  }
  return k;  // ⌊log₂(n−1)⌋ + 1
}

Result<Nfta> MultiplierNfta::ToNfta() const {
  Nfta out;
  // Σ' = Σ ∪ {0, 1}; bit symbols take the next two ids.
  const SymbolId bit0 = BitSymbol(0);
  const SymbolId bit1 = BitSymbol(1);
  out.EnsureAlphabetSize(alphabet_size_ + 2);
  for (size_t s = 0; s < num_states_; ++s) out.AddState();
  out.SetInitialState(initial_);

  for (const Transition& t : transitions_) {
    if (t.multiplier == 0) {
      return Status::InvalidArgument(
          "multiplier 0 requires the stable translation (ToNftaStable); its "
          "minimal encoding is omitting the transition");
    }
    if (t.width == 0) {
      out.AddTransition(t.from, t.symbol, t.children);
      continue;
    }
    // Binary comparator: accept exactly the k-bit strings with value
    // <= B = n − 1 (leading zeros pad when k exceeds the minimal width),
    // spelled on a unary path below the t.symbol node.
    // States: eq_i = "first i bits equal B's prefix" (i = 0..k−1),
    //         lt_i = "already strictly below" (i = 1..k−1).
    const uint64_t bound = t.multiplier - 1;
    const uint64_t k = t.width;
    std::vector<StateId> eq(k);  // eq[i] = state before reading bit i+1
    std::vector<StateId> lt(k);  // lt[i] = state before reading bit i+1 (i>=1)
    for (uint64_t i = 0; i < k; ++i) eq[i] = out.AddState();
    for (uint64_t i = 1; i < k; ++i) lt[i] = out.AddState();

    out.AddTransition(t.from, t.symbol, {eq[0]});
    for (uint64_t i = 0; i < k; ++i) {
      const bool last = (i + 1 == k);
      const uint64_t pos = k - 1 - i;  // bit position, MSB first
      const int b = pos >= 64 ? 0 : static_cast<int>((bound >> pos) & 1);
      // Successor helper: the node after bit i+1 is either the next gadget
      // state (unary path continues) or the original children (path ends).
      auto eq_next = [&]() -> std::vector<StateId> {
        return last ? t.children : std::vector<StateId>{eq[i + 1]};
      };
      auto lt_next = [&]() -> std::vector<StateId> {
        return last ? t.children : std::vector<StateId>{lt[i + 1]};
      };
      if (b == 1) {
        out.AddTransition(eq[i], bit1, eq_next());
        out.AddTransition(eq[i], bit0, lt_next());
      } else {
        out.AddTransition(eq[i], bit0, eq_next());
        // reading 1 from eq with b == 0 would exceed the bound: no rule.
      }
      if (i >= 1) {
        out.AddTransition(lt[i], bit0, lt_next());
        out.AddTransition(lt[i], bit1, lt_next());
      }
    }
  }
  return out;
}

Result<Nfta> MultiplierNfta::ToNftaStable(StableNftaLayout* layout) const {
  PQE_CHECK(layout != nullptr);
  *layout = StableNftaLayout{};
  Nfta out;
  const SymbolId bit0 = BitSymbol(0);
  const SymbolId bit1 = BitSymbol(1);
  out.EnsureAlphabetSize(alphabet_size_ + 2);
  for (size_t s = 0; s < num_states_; ++s) out.AddState();
  out.SetInitialState(initial_);
  layout->bit0 = bit0;
  layout->bit1 = bit1;
  layout->sink = out.AddState();

  layout->slots.reserve(transitions_.size());
  for (const Transition& t : transitions_) {
    StableNftaLayout::Slot slot;
    slot.width = static_cast<uint32_t>(t.width);
    slot.exit_off = static_cast<uint32_t>(layout->exit_children.size());
    slot.exit_len = static_cast<uint32_t>(t.children.size());
    layout->exit_children.insert(layout->exit_children.end(),
                                 t.children.begin(), t.children.end());
    const uint64_t k = t.width;
    if (k > 0) {
      slot.eq0 = out.AddState();
      for (uint64_t i = 1; i < k; ++i) out.AddState();  // eq[1..k)
      if (k > 1) {
        slot.lt1 = out.AddState();
        for (uint64_t i = 2; i < k; ++i) out.AddState();  // lt[2..k)
      }
    }
    const StateId sink = layout->sink;
    const Span<StateId> hole(&sink, 1);
    // Reserves cover every value the slot can later encode: rules that may
    // be patched to the exit children need the exit arity (clamped to 1 so
    // the {sink} placeholder fits).
    const size_t exit_reserve = std::max<size_t>(slot.exit_len, 1);
    slot.entry_idx = static_cast<uint32_t>(out.NumTransitions());
    out.AddTransitionPadded(t.from, t.symbol, hole,
                            k == 0 ? exit_reserve : 1);
    for (uint64_t i = 0; i < k; ++i) {
      const bool last = (i + 1 == k);
      const size_t eq_reserve = last ? exit_reserve : 1;
      const StateId eqi = static_cast<StateId>(slot.eq0 + i);
      // eq rules are value-dependent (patched below); the bit1-then-bit0
      // order is fixed regardless of the bound's bit at this level.
      out.AddTransitionPadded(eqi, bit1, hole, eq_reserve);
      out.AddTransitionPadded(eqi, bit0, hole, eq_reserve);
      if (i >= 1) {
        // lt rules ("already strictly below" accepts both bits) are
        // value-independent: written once with final targets, never patched.
        const StateId lti = static_cast<StateId>(slot.lt1 + (i - 1));
        if (last) {
          const Span<StateId> exit(
              layout->exit_children.data() + slot.exit_off, slot.exit_len);
          out.AddTransitionPadded(lti, bit0, exit, exit_reserve);
          out.AddTransitionPadded(lti, bit1, exit, exit_reserve);
        } else {
          const StateId lt_next = static_cast<StateId>(slot.lt1 + i);
          const Span<StateId> next(&lt_next, 1);
          out.AddTransitionPadded(lti, bit0, next, 1);
          out.AddTransitionPadded(lti, bit1, next, 1);
        }
      }
    }
    layout->slots.push_back(slot);
  }
  // Write the value-dependent targets through the canonical writer so that
  // freshly translated and patched automata are identical by construction.
  for (size_t i = 0; i < transitions_.size(); ++i) {
    PatchStableNftaSlot(&out, *layout, i, transitions_[i].multiplier);
  }
  return out;
}

void PatchStableNftaSlot(Nfta* nfta, const StableNftaLayout& layout,
                         size_t slot_idx, uint64_t multiplier) {
  PQE_CHECK(nfta != nullptr);
  PQE_CHECK(slot_idx < layout.slots.size());
  const StableNftaLayout::Slot& slot = layout.slots[slot_idx];
  const uint64_t k = slot.width;
  PQE_CHECK(MultiplierNfta::GadgetDepth(std::max<uint64_t>(multiplier, 1)) <=
            k);
  const StateId sink = layout.sink;
  const Span<StateId> hole(&sink, 1);
  const Span<StateId> exit(layout.exit_children.data() + slot.exit_off,
                           slot.exit_len);
  // Entry: a multiplier of 0 accepts nothing — route into the dead sink.
  // Width-0 slots (denominator 1) exit straight from the entry rule.
  if (multiplier == 0) {
    nfta->RewriteChildrenInPlace(slot.entry_idx, hole);
  } else if (k == 0) {
    nfta->RewriteChildrenInPlace(slot.entry_idx, exit);
  } else {
    const StateId eq0 = slot.eq0;
    nfta->RewriteChildrenInPlace(slot.entry_idx, Span<StateId>(&eq0, 1));
  }
  // Comparator targets for bound B = multiplier − 1. For multiplier 0 the
  // gadget is unreachable; its targets are still written for B = 0 so the
  // encoding of every multiplier value is unique and canonical.
  const uint64_t bound = multiplier == 0 ? 0 : multiplier - 1;
  for (uint64_t i = 0; i < k; ++i) {
    const bool last = (i + 1 == k);
    const uint64_t pos = k - 1 - i;
    const int b = pos >= 64 ? 0 : static_cast<int>((bound >> pos) & 1);
    // Per-slot rule order: entry, then 2 eq rules at level 0, then 4 rules
    // (2 eq + 2 lt) per later level.
    const uint32_t eq_bit1 =
        slot.entry_idx + 1 +
        (i == 0 ? 0u : 2u + 4u * (static_cast<uint32_t>(i) - 1));
    const uint32_t eq_bit0 = eq_bit1 + 1;
    const StateId eq_next_s = static_cast<StateId>(slot.eq0 + i + 1);
    const StateId lt_next_s = static_cast<StateId>(slot.lt1 + i);
    const Span<StateId> eq_next =
        last ? exit : Span<StateId>(&eq_next_s, 1);
    const Span<StateId> lt_next =
        last ? exit : Span<StateId>(&lt_next_s, 1);
    if (b == 1) {
      nfta->RewriteChildrenInPlace(eq_bit1, eq_next);
      nfta->RewriteChildrenInPlace(eq_bit0, lt_next);
    } else {
      // Reading 1 from the eq track would exceed the bound: dead branch.
      nfta->RewriteChildrenInPlace(eq_bit1, hole);
      nfta->RewriteChildrenInPlace(eq_bit0, eq_next);
    }
  }
}

}  // namespace pqe
