#include "automata/multiplier_nfta.h"

#include <algorithm>

#include "util/check.h"

namespace pqe {

MultiplierNfta MultiplierNfta::FromSkeleton(const Nfta& base) {
  MultiplierNfta out;
  out.num_states_ = base.NumStates();
  out.alphabet_size_ = base.AlphabetSize();
  out.initial_ = base.initial_state();
  return out;
}

StateId MultiplierNfta::AddState() {
  return static_cast<StateId>(num_states_++);
}

void MultiplierNfta::EnsureAlphabetSize(size_t size) {
  alphabet_size_ = std::max(alphabet_size_, size);
}

void MultiplierNfta::SetInitialState(StateId s) {
  PQE_CHECK(s < num_states_);
  initial_ = s;
}

Status MultiplierNfta::AddTransition(StateId from, SymbolId symbol,
                                     uint64_t multiplier,
                                     std::vector<StateId> children,
                                     uint64_t width) {
  if (from >= num_states_) {
    return Status::InvalidArgument("transition from unknown state");
  }
  for (StateId c : children) {
    if (c >= num_states_) {
      return Status::InvalidArgument("transition to unknown state");
    }
  }
  if (multiplier == 0) {
    return Status::InvalidArgument(
        "multiplier must be >= 1; omit the transition to model multiplier 0");
  }
  const uint64_t min_width = GadgetDepth(multiplier);
  if (width == 0) width = min_width;
  if (width < min_width) {
    return Status::InvalidArgument(
        "comparator width too small for multiplier");
  }
  EnsureAlphabetSize(static_cast<size_t>(symbol) + 1);
  transitions_.push_back(
      Transition{from, symbol, multiplier, width, std::move(children)});
  return Status::OK();
}

SymbolId MultiplierNfta::BitSymbol(int bit) const {
  PQE_CHECK(bit == 0 || bit == 1);
  return static_cast<SymbolId>(alphabet_size_ + static_cast<size_t>(bit));
}

uint64_t MultiplierNfta::GadgetDepth(uint64_t multiplier) {
  PQE_CHECK(multiplier >= 1);
  if (multiplier == 1) return 0;
  uint64_t bound = multiplier - 1;
  uint64_t k = 0;
  while (bound) {
    ++k;
    bound >>= 1;
  }
  return k;  // ⌊log₂(n−1)⌋ + 1
}

Result<Nfta> MultiplierNfta::ToNfta() const {
  Nfta out;
  // Σ' = Σ ∪ {0, 1}; bit symbols take the next two ids.
  const SymbolId bit0 = BitSymbol(0);
  const SymbolId bit1 = BitSymbol(1);
  out.EnsureAlphabetSize(alphabet_size_ + 2);
  for (size_t s = 0; s < num_states_; ++s) out.AddState();
  out.SetInitialState(initial_);

  for (const Transition& t : transitions_) {
    if (t.width == 0) {
      out.AddTransition(t.from, t.symbol, t.children);
      continue;
    }
    // Binary comparator: accept exactly the k-bit strings with value
    // <= B = n − 1 (leading zeros pad when k exceeds the minimal width),
    // spelled on a unary path below the t.symbol node.
    // States: eq_i = "first i bits equal B's prefix" (i = 0..k−1),
    //         lt_i = "already strictly below" (i = 1..k−1).
    const uint64_t bound = t.multiplier - 1;
    const uint64_t k = t.width;
    std::vector<StateId> eq(k);  // eq[i] = state before reading bit i+1
    std::vector<StateId> lt(k);  // lt[i] = state before reading bit i+1 (i>=1)
    for (uint64_t i = 0; i < k; ++i) eq[i] = out.AddState();
    for (uint64_t i = 1; i < k; ++i) lt[i] = out.AddState();

    out.AddTransition(t.from, t.symbol, {eq[0]});
    for (uint64_t i = 0; i < k; ++i) {
      const bool last = (i + 1 == k);
      const uint64_t pos = k - 1 - i;  // bit position, MSB first
      const int b = pos >= 64 ? 0 : static_cast<int>((bound >> pos) & 1);
      // Successor helper: the node after bit i+1 is either the next gadget
      // state (unary path continues) or the original children (path ends).
      auto eq_next = [&]() -> std::vector<StateId> {
        return last ? t.children : std::vector<StateId>{eq[i + 1]};
      };
      auto lt_next = [&]() -> std::vector<StateId> {
        return last ? t.children : std::vector<StateId>{lt[i + 1]};
      };
      if (b == 1) {
        out.AddTransition(eq[i], bit1, eq_next());
        out.AddTransition(eq[i], bit0, lt_next());
      } else {
        out.AddTransition(eq[i], bit0, eq_next());
        // reading 1 from eq with b == 0 would exceed the bound: no rule.
      }
      if (i >= 1) {
        out.AddTransition(lt[i], bit0, lt_next());
        out.AddTransition(lt[i], bit1, lt_next());
      }
    }
  }
  return out;
}

}  // namespace pqe
