#ifndef PQE_AUTOMATA_TREE_H_
#define PQE_AUTOMATA_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/nfa.h"  // StateId / SymbolId

namespace pqe {

/// An ordered, labelled k-tree t ∈ Trees_k[Σ] (Section 2). Nodes are stored
/// in a flat pool; node 0 is always the root. Children are ordered, matching
/// the paper's prefix-closed-subset-of-[k]* definition.
class LabeledTree {
 public:
  struct Node {
    SymbolId label = 0;
    std::vector<uint32_t> children;
  };

  /// Creates a single-node tree with the given root label.
  explicit LabeledTree(SymbolId root_label);

  LabeledTree(const LabeledTree&) = default;
  LabeledTree& operator=(const LabeledTree&) = default;
  LabeledTree(LabeledTree&&) = default;
  LabeledTree& operator=(LabeledTree&&) = default;

  /// Appends a child with `label` under `parent`; returns the new node id.
  uint32_t AddChild(uint32_t parent, SymbolId label);

  /// Grafts a whole subtree (copy of `sub`) as the last child of `parent`;
  /// returns the id of the grafted root.
  uint32_t GraftChild(uint32_t parent, const LabeledTree& sub);

  uint32_t root() const { return 0; }
  size_t size() const { return nodes_.size(); }
  const Node& node(uint32_t id) const { return nodes_.at(id); }
  SymbolId label(uint32_t id) const { return nodes_.at(id).label; }
  const std::vector<uint32_t>& children(uint32_t id) const {
    return nodes_.at(id).children;
  }

  /// Canonical serialization: "(label child1 child2 ...)". Equal trees have
  /// equal serializations; used for hashing and sample identity in the
  /// counting algorithms.
  std::string Serialize() const;

  /// Structural equality.
  bool operator==(const LabeledTree& o) const;

 private:
  void SerializeNode(uint32_t id, std::string* out) const;

  std::vector<Node> nodes_;
};

/// Hash functor over canonical serialization.
struct LabeledTreeHash {
  size_t operator()(const LabeledTree& t) const {
    return std::hash<std::string>()(t.Serialize());
  }
};

}  // namespace pqe

#endif  // PQE_AUTOMATA_TREE_H_
