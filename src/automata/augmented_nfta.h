#ifndef PQE_AUTOMATA_AUGMENTED_NFTA_H_
#define PQE_AUTOMATA_AUGMENTED_NFTA_H_

#include <cstdint>
#include <vector>

#include "automata/nfta.h"
#include "util/result.h"

namespace pqe {

/// One symbol of an augmented-NFTA transition string: a base-alphabet symbol
/// optionally annotated with "?" (Section 4.1), meaning "accept either the
/// symbol or its negation".
struct AnnotatedSymbol {
  SymbolId symbol = 0;
  bool optional = false;  // true = carries the ? annotation
};

/// Literal encoding used by augmented-NFTA translation: the ordinary NFTA's
/// alphabet is Σ' = {α, ¬α | α ∈ Σ}, encoded as 2·α (positive literal) and
/// 2·α + 1 (negative literal).
inline SymbolId PositiveLiteral(SymbolId base) { return 2 * base; }
inline SymbolId NegativeLiteral(SymbolId base) { return 2 * base + 1; }
inline bool IsNegativeLiteral(SymbolId literal) { return literal % 2 == 1; }
inline SymbolId LiteralBase(SymbolId literal) { return literal / 2; }

/// An augmented (top-down) NFTA T⁺ (Definition 1): transitions carry a
/// possibly-empty string of ?-annotatable symbols instead of a single symbol.
/// Semantics are defined by translation to an ordinary NFTA (ToNfta), which
/// (1) threads fresh intermediate states along each annotation string, and
/// (2) expands each ?-annotated symbol into its positive and negative
/// literal.
class AugmentedNfta {
 public:
  struct Transition {
    StateId from;
    std::vector<AnnotatedSymbol> annotation;  // empty = λ-transition
    std::vector<StateId> children;
  };

  AugmentedNfta() = default;

  StateId AddState();
  void EnsureAlphabetSize(size_t size);
  void SetInitialState(StateId s);
  void AddTransition(StateId from, std::vector<AnnotatedSymbol> annotation,
                     std::vector<StateId> children);

  size_t NumStates() const { return num_states_; }
  size_t NumTransitions() const { return transitions_.size(); }
  size_t AlphabetSize() const { return alphabet_size_; }
  StateId initial_state() const { return initial_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// The size measure |T⁺|: Σ over transitions of (2 + |annotation| +
  /// #children).
  size_t SizeMeasure() const;

  /// The two-stage translation of Section 4.1 to an ordinary NFTA over the
  /// literal alphabet (see PositiveLiteral/NegativeLiteral). Per Remark 1
  /// this is polynomial in |T⁺|. λ-transitions in the result (from empty
  /// annotations) are eliminated; `eliminate_lambda` can be disabled for
  /// inspection/testing of the raw translation.
  Result<Nfta> ToNfta(bool eliminate_lambda = true) const;

 private:
  size_t num_states_ = 0;
  size_t alphabet_size_ = 0;
  StateId initial_ = 0;
  std::vector<Transition> transitions_;
};

}  // namespace pqe

#endif  // PQE_AUTOMATA_AUGMENTED_NFTA_H_
