#include "automata/tree.h"

#include <functional>

#include "util/check.h"

namespace pqe {

LabeledTree::LabeledTree(SymbolId root_label) {
  nodes_.push_back(Node{root_label, {}});
}

uint32_t LabeledTree::AddChild(uint32_t parent, SymbolId label) {
  PQE_CHECK(parent < nodes_.size());
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{label, {}});
  nodes_[parent].children.push_back(id);
  return id;
}

uint32_t LabeledTree::GraftChild(uint32_t parent, const LabeledTree& sub) {
  PQE_CHECK(parent < nodes_.size());
  // Copy nodes of `sub` into this pool, remapping child indices.
  const uint32_t offset = static_cast<uint32_t>(nodes_.size());
  for (const Node& n : sub.nodes_) {
    Node copy;
    copy.label = n.label;
    copy.children.reserve(n.children.size());
    for (uint32_t c : n.children) copy.children.push_back(c + offset);
    nodes_.push_back(std::move(copy));
  }
  nodes_[parent].children.push_back(offset);
  return offset;
}

void LabeledTree::SerializeNode(uint32_t id, std::string* out) const {
  const Node& n = nodes_[id];
  out->push_back('(');
  out->append(std::to_string(n.label));
  for (uint32_t c : n.children) {
    out->push_back(' ');
    SerializeNode(c, out);
  }
  out->push_back(')');
}

std::string LabeledTree::Serialize() const {
  std::string out;
  out.reserve(nodes_.size() * 6);
  SerializeNode(0, &out);
  return out;
}

bool LabeledTree::operator==(const LabeledTree& o) const {
  if (nodes_.size() != o.nodes_.size()) return false;
  return Serialize() == o.Serialize();
}

}  // namespace pqe
