#ifndef PQE_AUTOMATA_OPS_H_
#define PQE_AUTOMATA_OPS_H_

#include "automata/nfa.h"
#include "automata/nfta.h"
#include "util/result.h"

namespace pqe {

/// Language union of two NFAs: disjoint state union, both initial/accepting
/// sets kept. Alphabets are identified by symbol id.
Nfa UnionNfa(const Nfa& a, const Nfa& b);

/// Language intersection via the product construction, restricted to pairs
/// reachable from the initial pairs. Useful for cross-checking constructions
/// (e.g. emptiness of L(M) ∩ L(M') witnesses disjointness).
Nfa IntersectNfa(const Nfa& a, const Nfa& b);

/// Language reversal: transitions flipped, initial and accepting swapped.
/// |L_n| is preserved for every n (reversal is a bijection on strings).
Nfa ReverseNfa(const Nfa& a);

/// Language union of two λ-free NFTAs: disjoint state union plus a fresh
/// initial state carrying copies of both automata's initial-state
/// transitions. Fails if either automaton still has λ-transitions.
Result<Nfta> UnionNfta(const Nfta& a, const Nfta& b);

}  // namespace pqe

#endif  // PQE_AUTOMATA_OPS_H_
