#include "automata/dot_export.h"

#include <sstream>

namespace pqe {

namespace {

std::string Symbol(const SymbolNamer& namer, SymbolId s) {
  if (namer) return namer(s);
  return std::to_string(s);
}

// Escapes double quotes for DOT labels.
std::string Escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string NfaToDot(const Nfa& nfa, const SymbolNamer& namer) {
  std::ostringstream out;
  out << "digraph nfa {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (StateId s = 0; s < nfa.NumStates(); ++s) {
    out << "  q" << s << " [";
    if (nfa.IsInitial(s)) out << "shape=diamond,";
    if (nfa.IsAccepting(s)) out << "peripheries=2,";
    out << "label=\"" << s << "\"];\n";
  }
  for (const Nfa::Transition& t : nfa.transitions()) {
    out << "  q" << t.from << " -> q" << t.to << " [label=\""
        << Escape(Symbol(namer, t.symbol)) << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string NftaToDot(const Nfta& nfta, const SymbolNamer& namer) {
  std::ostringstream out;
  out << "digraph nfta {\n  node [shape=circle];\n";
  for (StateId s = 0; s < nfta.NumStates(); ++s) {
    out << "  q" << s << " [";
    if (s == nfta.initial_state()) out << "shape=diamond,";
    out << "label=\"" << s << "\"];\n";
  }
  for (uint32_t i = 0; i < nfta.NumTransitions(); ++i) {
    const Nfta::Transition& t = nfta.transition(i);
    const std::string label = t.symbol == Nfta::kLambdaSymbol
                                  ? std::string("λ")
                                  : Symbol(namer, t.symbol);
    if (t.children.empty()) {
      out << "  leaf" << i << " [shape=point];\n";
      out << "  q" << t.from << " -> leaf" << i << " [label=\""
          << Escape(label) << "\"];\n";
      continue;
    }
    if (t.children.size() == 1) {
      out << "  q" << t.from << " -> q" << t.children[0] << " [label=\""
          << Escape(label) << "\"];\n";
      continue;
    }
    out << "  h" << i << " [shape=point,label=\"\"];\n";
    out << "  q" << t.from << " -> h" << i << " [label=\"" << Escape(label)
        << "\"];\n";
    for (size_t c = 0; c < t.children.size(); ++c) {
      out << "  h" << i << " -> q" << t.children[c] << " [label=\"" << c
          << "\",style=dashed];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string DecompositionToDot(const HypertreeDecomposition& hd,
                               const ConjunctiveQuery& query,
                               const Schema& schema) {
  std::ostringstream out;
  out << "digraph hd {\n  node [shape=box];\n";
  for (uint32_t p = 0; p < hd.NumNodes(); ++p) {
    const auto& node = hd.node(p);
    out << "  n" << p << " [label=\"χ={";
    for (size_t i = 0; i < node.chi.size(); ++i) {
      if (i > 0) out << ",";
      out << Escape(query.VarName(node.chi[i]));
    }
    out << "}\\nξ={";
    for (size_t i = 0; i < node.xi.size(); ++i) {
      if (i > 0) out << ",";
      out << Escape(schema.Name(query.atom(node.xi[i]).relation));
    }
    out << "}\"];\n";
  }
  for (uint32_t p = 0; p < hd.NumNodes(); ++p) {
    for (uint32_t c : hd.node(p).children) {
      out << "  n" << p << " -> n" << c << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace pqe
