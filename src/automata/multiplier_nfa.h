#ifndef PQE_AUTOMATA_MULTIPLIER_NFA_H_
#define PQE_AUTOMATA_MULTIPLIER_NFA_H_

#include <cstdint>
#include <vector>

#include "automata/nfa.h"
#include "util/result.h"

namespace pqe {

/// The string-automaton counterpart of MultiplierNfta. The paper's footnote
/// 2 observes that the Section 5.1 gadget is "a degenerate NFTA accepting
/// only paths", i.e. really a string construction; for path queries the
/// whole Theorem 1 pipeline can therefore stay in string automata (Section 3
/// construction + these gadgets + CountNFA), avoiding trees entirely.
///
/// Each transition carries a multiplier n ≥ 1 and a comparator width (bits);
/// the translation splices a binary comparator accepting exactly the n
/// width-bit strings with value ≤ n − 1 *after* the transition's symbol.
/// Accepted strings lengthen by `width` per traversed transition, so as in
/// the tree case callers must pad widths so every accepted string lands in a
/// single length stratum.
/// String counterpart of StableNftaLayout (automata/multiplier_nfta.h): the
/// per-slot record MultiplierNfa::ToNfaStable emits so PatchStableNfaSlot
/// can re-encode a slot's multiplier by retargeting transitions in place.
struct StableNfaLayout {
  SymbolId bit0 = 0;
  SymbolId bit1 = 0;
  /// Dead state (no outgoing transitions, not accepting) absorbing
  /// over-the-bound comparator branches and multiplier-0 entries. Stable
  /// automata must not be Trim()ed; counting relies on liveness pruning.
  StateId sink = 0;
  struct Slot {
    uint32_t entry_idx = 0;  ///< transition index of the slot's entry edge
    uint32_t width = 0;      ///< comparator width k in bits
    StateId eq0 = 0;         ///< eq[i] = eq0 + i (valid when k > 0)
    StateId lt1 = 0;         ///< lt[i] = lt1 + (i - 1) (valid when k > 1)
    StateId exit = 0;        ///< the original transition's target state
  };
  std::vector<Slot> slots;  ///< one per multiplier transition, in order
};

/// Rewrites slot `slot_idx` of a ToNfaStable-produced automaton to encode
/// `multiplier` (requires GadgetDepth(max(multiplier, 1)) <= slot width).
/// Canonical writer of value-dependent targets — ToNfaStable calls it with
/// the build-time multipliers, so patched ≡ freshly translated. Only the
/// in-CSR is invalidated (Nfa::SetTransitionTarget); the out-CSR survives.
void PatchStableNfaSlot(Nfa* nfa, const StableNfaLayout& layout,
                        size_t slot_idx, uint64_t multiplier);

class MultiplierNfa {
 public:
  struct Transition {
    StateId from;
    SymbolId symbol;
    /// 0 = impossible transition (stable translation only; ToNfa rejects).
    uint64_t multiplier = 1;
    uint64_t width = 0;  // comparator bits; >= GadgetDepth(max(mult, 1))
    StateId to;
  };

  MultiplierNfa() = default;

  /// Copies the state/alphabet/initial/accepting shape of `base`;
  /// transitions are added separately.
  static MultiplierNfa FromSkeleton(const Nfa& base);

  StateId AddState();
  void EnsureAlphabetSize(size_t size);
  void MarkInitial(StateId s);
  void MarkAccepting(StateId s);

  /// multiplier 0 allowed (see Transition::multiplier); width 0 = minimal
  /// (GadgetDepth(max(multiplier, 1))).
  Status AddTransition(StateId from, SymbolId symbol, uint64_t multiplier,
                       StateId to, uint64_t width = 0);

  size_t NumStates() const { return num_states_; }
  size_t NumTransitions() const { return transitions_.size(); }
  size_t AlphabetSize() const { return alphabet_size_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// SymbolIds of the appended bit symbols.
  SymbolId BitSymbol(int bit) const;

  /// Extra string symbols induced by a multiplier at a given width (0 when
  /// multiplier == 1 and width == 0).
  static uint64_t GadgetDepth(uint64_t multiplier);

  /// Translation to an ordinary NFA over Σ ∪ {0, 1}. Rejects multiplier-0
  /// transitions (their minimal encoding is absence; use ToNfaStable).
  Result<Nfa> ToNfa() const;

  /// Value-stable variant of ToNfa: fixed-shape slots whose transition
  /// targets alone encode the multipliers, recorded in `*layout` for
  /// in-place re-encoding via PatchStableNfaSlot. Must not be Trim()ed.
  Result<Nfa> ToNfaStable(StableNfaLayout* layout) const;

 private:
  size_t num_states_ = 0;
  size_t alphabet_size_ = 0;
  std::vector<Transition> transitions_;
  std::vector<StateId> initial_;
  std::vector<StateId> accepting_;
};

}  // namespace pqe

#endif  // PQE_AUTOMATA_MULTIPLIER_NFA_H_
