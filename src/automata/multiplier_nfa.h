#ifndef PQE_AUTOMATA_MULTIPLIER_NFA_H_
#define PQE_AUTOMATA_MULTIPLIER_NFA_H_

#include <cstdint>
#include <vector>

#include "automata/nfa.h"
#include "util/result.h"

namespace pqe {

/// The string-automaton counterpart of MultiplierNfta. The paper's footnote
/// 2 observes that the Section 5.1 gadget is "a degenerate NFTA accepting
/// only paths", i.e. really a string construction; for path queries the
/// whole Theorem 1 pipeline can therefore stay in string automata (Section 3
/// construction + these gadgets + CountNFA), avoiding trees entirely.
///
/// Each transition carries a multiplier n ≥ 1 and a comparator width (bits);
/// the translation splices a binary comparator accepting exactly the n
/// width-bit strings with value ≤ n − 1 *after* the transition's symbol.
/// Accepted strings lengthen by `width` per traversed transition, so as in
/// the tree case callers must pad widths so every accepted string lands in a
/// single length stratum.
class MultiplierNfa {
 public:
  struct Transition {
    StateId from;
    SymbolId symbol;
    uint64_t multiplier = 1;
    uint64_t width = 0;  // comparator bits; >= GadgetDepth(multiplier)
    StateId to;
  };

  MultiplierNfa() = default;

  /// Copies the state/alphabet/initial/accepting shape of `base`;
  /// transitions are added separately.
  static MultiplierNfa FromSkeleton(const Nfa& base);

  StateId AddState();
  void EnsureAlphabetSize(size_t size);
  void MarkInitial(StateId s);
  void MarkAccepting(StateId s);

  /// multiplier must be >= 1; width 0 = minimal (GadgetDepth(multiplier)).
  Status AddTransition(StateId from, SymbolId symbol, uint64_t multiplier,
                       StateId to, uint64_t width = 0);

  size_t NumStates() const { return num_states_; }
  size_t NumTransitions() const { return transitions_.size(); }
  size_t AlphabetSize() const { return alphabet_size_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// SymbolIds of the appended bit symbols.
  SymbolId BitSymbol(int bit) const;

  /// Extra string symbols induced by a multiplier at a given width (0 when
  /// multiplier == 1 and width == 0).
  static uint64_t GadgetDepth(uint64_t multiplier);

  /// Translation to an ordinary NFA over Σ ∪ {0, 1}.
  Result<Nfa> ToNfa() const;

 private:
  size_t num_states_ = 0;
  size_t alphabet_size_ = 0;
  std::vector<Transition> transitions_;
  std::vector<StateId> initial_;
  std::vector<StateId> accepting_;
};

}  // namespace pqe

#endif  // PQE_AUTOMATA_MULTIPLIER_NFA_H_
