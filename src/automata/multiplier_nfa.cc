#include "automata/multiplier_nfa.h"

#include <algorithm>

#include "automata/multiplier_nfta.h"  // shared GadgetDepth semantics
#include "util/check.h"

namespace pqe {

MultiplierNfa MultiplierNfa::FromSkeleton(const Nfa& base) {
  MultiplierNfa out;
  out.num_states_ = base.NumStates();
  out.alphabet_size_ = base.AlphabetSize();
  for (StateId s = 0; s < base.NumStates(); ++s) {
    if (base.IsInitial(s)) out.initial_.push_back(s);
    if (base.IsAccepting(s)) out.accepting_.push_back(s);
  }
  return out;
}

StateId MultiplierNfa::AddState() {
  return static_cast<StateId>(num_states_++);
}

void MultiplierNfa::EnsureAlphabetSize(size_t size) {
  alphabet_size_ = std::max(alphabet_size_, size);
}

void MultiplierNfa::MarkInitial(StateId s) {
  PQE_CHECK(s < num_states_);
  initial_.push_back(s);
}

void MultiplierNfa::MarkAccepting(StateId s) {
  PQE_CHECK(s < num_states_);
  accepting_.push_back(s);
}

Status MultiplierNfa::AddTransition(StateId from, SymbolId symbol,
                                    uint64_t multiplier, StateId to,
                                    uint64_t width) {
  if (from >= num_states_ || to >= num_states_) {
    return Status::InvalidArgument("transition endpoint unknown");
  }
  const uint64_t min_width = GadgetDepth(std::max<uint64_t>(multiplier, 1));
  if (width == 0) width = min_width;
  if (width < min_width) {
    return Status::InvalidArgument("comparator width too small");
  }
  EnsureAlphabetSize(static_cast<size_t>(symbol) + 1);
  transitions_.push_back(Transition{from, symbol, multiplier, width, to});
  return Status::OK();
}

SymbolId MultiplierNfa::BitSymbol(int bit) const {
  PQE_CHECK(bit == 0 || bit == 1);
  return static_cast<SymbolId>(alphabet_size_ + static_cast<size_t>(bit));
}

uint64_t MultiplierNfa::GadgetDepth(uint64_t multiplier) {
  return MultiplierNfta::GadgetDepth(multiplier);
}

Result<Nfa> MultiplierNfa::ToNfa() const {
  Nfa out;
  const SymbolId bit0 = BitSymbol(0);
  const SymbolId bit1 = BitSymbol(1);
  out.EnsureAlphabetSize(alphabet_size_ + 2);
  for (size_t s = 0; s < num_states_; ++s) out.AddState();
  for (StateId s : initial_) out.MarkInitial(s);
  for (StateId s : accepting_) out.MarkAccepting(s);

  for (const Transition& t : transitions_) {
    if (t.multiplier == 0) {
      return Status::InvalidArgument(
          "multiplier 0 requires the stable translation (ToNfaStable); its "
          "minimal encoding is omitting the transition");
    }
    if (t.width == 0) {
      out.AddTransition(t.from, t.symbol, t.to);
      continue;
    }
    // Binary comparator: after t.symbol, spell a width-bit string with
    // value <= bound; eq-track follows the bound's bits, lt-track is free.
    const uint64_t bound = t.multiplier - 1;
    const uint64_t k = t.width;
    std::vector<StateId> eq(k);
    std::vector<StateId> lt(k);
    for (uint64_t i = 0; i < k; ++i) eq[i] = out.AddState();
    for (uint64_t i = 1; i < k; ++i) lt[i] = out.AddState();
    out.AddTransition(t.from, t.symbol, eq[0]);
    for (uint64_t i = 0; i < k; ++i) {
      const bool last = (i + 1 == k);
      const uint64_t pos = k - 1 - i;
      const int b = pos >= 64 ? 0 : static_cast<int>((bound >> pos) & 1);
      const StateId eq_next = last ? t.to : eq[i + 1];
      const StateId lt_next = last ? t.to : lt[i + 1];
      if (b == 1) {
        out.AddTransition(eq[i], bit1, eq_next);
        out.AddTransition(eq[i], bit0, lt_next);
      } else {
        out.AddTransition(eq[i], bit0, eq_next);
      }
      if (i >= 1) {
        out.AddTransition(lt[i], bit0, lt_next);
        out.AddTransition(lt[i], bit1, lt_next);
      }
    }
  }
  return out;
}

Result<Nfa> MultiplierNfa::ToNfaStable(StableNfaLayout* layout) const {
  PQE_CHECK(layout != nullptr);
  *layout = StableNfaLayout{};
  Nfa out;
  const SymbolId bit0 = BitSymbol(0);
  const SymbolId bit1 = BitSymbol(1);
  out.EnsureAlphabetSize(alphabet_size_ + 2);
  for (size_t s = 0; s < num_states_; ++s) out.AddState();
  for (StateId s : initial_) out.MarkInitial(s);
  for (StateId s : accepting_) out.MarkAccepting(s);
  layout->bit0 = bit0;
  layout->bit1 = bit1;
  layout->sink = out.AddState();

  layout->slots.reserve(transitions_.size());
  for (const Transition& t : transitions_) {
    StableNfaLayout::Slot slot;
    slot.width = static_cast<uint32_t>(t.width);
    slot.exit = t.to;
    const uint64_t k = t.width;
    if (k > 0) {
      slot.eq0 = out.AddState();
      for (uint64_t i = 1; i < k; ++i) out.AddState();  // eq[1..k)
      if (k > 1) {
        slot.lt1 = out.AddState();
        for (uint64_t i = 2; i < k; ++i) out.AddState();  // lt[2..k)
      }
    }
    slot.entry_idx = static_cast<uint32_t>(out.NumTransitions());
    // Value-dependent targets are placeholders (the sink) until the
    // canonical writer below patches them; value-independent lt edges get
    // their final targets immediately and are never touched again.
    out.AddTransition(t.from, t.symbol, layout->sink);
    for (uint64_t i = 0; i < k; ++i) {
      const bool last = (i + 1 == k);
      const StateId eqi = static_cast<StateId>(slot.eq0 + i);
      out.AddTransition(eqi, bit1, layout->sink);
      out.AddTransition(eqi, bit0, layout->sink);
      if (i >= 1) {
        const StateId lti = static_cast<StateId>(slot.lt1 + (i - 1));
        const StateId lt_next =
            last ? t.to : static_cast<StateId>(slot.lt1 + i);
        out.AddTransition(lti, bit0, lt_next);
        out.AddTransition(lti, bit1, lt_next);
      }
    }
    layout->slots.push_back(slot);
  }
  for (size_t i = 0; i < transitions_.size(); ++i) {
    PatchStableNfaSlot(&out, *layout, i, transitions_[i].multiplier);
  }
  return out;
}

void PatchStableNfaSlot(Nfa* nfa, const StableNfaLayout& layout,
                        size_t slot_idx, uint64_t multiplier) {
  PQE_CHECK(nfa != nullptr);
  PQE_CHECK(slot_idx < layout.slots.size());
  const StableNfaLayout::Slot& slot = layout.slots[slot_idx];
  const uint64_t k = slot.width;
  PQE_CHECK(MultiplierNfa::GadgetDepth(std::max<uint64_t>(multiplier, 1)) <=
            k);
  if (multiplier == 0) {
    nfa->SetTransitionTarget(slot.entry_idx, layout.sink);
  } else if (k == 0) {
    nfa->SetTransitionTarget(slot.entry_idx, slot.exit);
  } else {
    nfa->SetTransitionTarget(slot.entry_idx, slot.eq0);
  }
  // Comparator targets for bound B = multiplier − 1 (B = 0 for multiplier 0,
  // whose gadget is unreachable but stays canonically encoded).
  const uint64_t bound = multiplier == 0 ? 0 : multiplier - 1;
  for (uint64_t i = 0; i < k; ++i) {
    const bool last = (i + 1 == k);
    const uint64_t pos = k - 1 - i;
    const int b = pos >= 64 ? 0 : static_cast<int>((bound >> pos) & 1);
    // Per-slot edge order: entry, then 2 eq edges at level 0, then 4 edges
    // (2 eq + 2 lt) per later level.
    const uint32_t eq_bit1 =
        slot.entry_idx + 1 +
        (i == 0 ? 0u : 2u + 4u * (static_cast<uint32_t>(i) - 1));
    const uint32_t eq_bit0 = eq_bit1 + 1;
    const StateId eq_next =
        last ? slot.exit : static_cast<StateId>(slot.eq0 + i + 1);
    const StateId lt_next =
        last ? slot.exit : static_cast<StateId>(slot.lt1 + i);
    if (b == 1) {
      nfa->SetTransitionTarget(eq_bit1, eq_next);
      nfa->SetTransitionTarget(eq_bit0, lt_next);
    } else {
      // Reading 1 from the eq track would exceed the bound: dead branch.
      nfa->SetTransitionTarget(eq_bit1, layout.sink);
      nfa->SetTransitionTarget(eq_bit0, eq_next);
    }
  }
}

}  // namespace pqe
