#include "automata/multiplier_nfa.h"

#include <algorithm>

#include "automata/multiplier_nfta.h"  // shared GadgetDepth semantics
#include "util/check.h"

namespace pqe {

MultiplierNfa MultiplierNfa::FromSkeleton(const Nfa& base) {
  MultiplierNfa out;
  out.num_states_ = base.NumStates();
  out.alphabet_size_ = base.AlphabetSize();
  for (StateId s = 0; s < base.NumStates(); ++s) {
    if (base.IsInitial(s)) out.initial_.push_back(s);
    if (base.IsAccepting(s)) out.accepting_.push_back(s);
  }
  return out;
}

StateId MultiplierNfa::AddState() {
  return static_cast<StateId>(num_states_++);
}

void MultiplierNfa::EnsureAlphabetSize(size_t size) {
  alphabet_size_ = std::max(alphabet_size_, size);
}

void MultiplierNfa::MarkInitial(StateId s) {
  PQE_CHECK(s < num_states_);
  initial_.push_back(s);
}

void MultiplierNfa::MarkAccepting(StateId s) {
  PQE_CHECK(s < num_states_);
  accepting_.push_back(s);
}

Status MultiplierNfa::AddTransition(StateId from, SymbolId symbol,
                                    uint64_t multiplier, StateId to,
                                    uint64_t width) {
  if (from >= num_states_ || to >= num_states_) {
    return Status::InvalidArgument("transition endpoint unknown");
  }
  if (multiplier == 0) {
    return Status::InvalidArgument(
        "multiplier must be >= 1; omit the transition to model multiplier 0");
  }
  const uint64_t min_width = GadgetDepth(multiplier);
  if (width == 0) width = min_width;
  if (width < min_width) {
    return Status::InvalidArgument("comparator width too small");
  }
  EnsureAlphabetSize(static_cast<size_t>(symbol) + 1);
  transitions_.push_back(Transition{from, symbol, multiplier, width, to});
  return Status::OK();
}

SymbolId MultiplierNfa::BitSymbol(int bit) const {
  PQE_CHECK(bit == 0 || bit == 1);
  return static_cast<SymbolId>(alphabet_size_ + static_cast<size_t>(bit));
}

uint64_t MultiplierNfa::GadgetDepth(uint64_t multiplier) {
  return MultiplierNfta::GadgetDepth(multiplier);
}

Result<Nfa> MultiplierNfa::ToNfa() const {
  Nfa out;
  const SymbolId bit0 = BitSymbol(0);
  const SymbolId bit1 = BitSymbol(1);
  out.EnsureAlphabetSize(alphabet_size_ + 2);
  for (size_t s = 0; s < num_states_; ++s) out.AddState();
  for (StateId s : initial_) out.MarkInitial(s);
  for (StateId s : accepting_) out.MarkAccepting(s);

  for (const Transition& t : transitions_) {
    if (t.width == 0) {
      out.AddTransition(t.from, t.symbol, t.to);
      continue;
    }
    // Binary comparator: after t.symbol, spell a width-bit string with
    // value <= bound; eq-track follows the bound's bits, lt-track is free.
    const uint64_t bound = t.multiplier - 1;
    const uint64_t k = t.width;
    std::vector<StateId> eq(k);
    std::vector<StateId> lt(k);
    for (uint64_t i = 0; i < k; ++i) eq[i] = out.AddState();
    for (uint64_t i = 1; i < k; ++i) lt[i] = out.AddState();
    out.AddTransition(t.from, t.symbol, eq[0]);
    for (uint64_t i = 0; i < k; ++i) {
      const bool last = (i + 1 == k);
      const uint64_t pos = k - 1 - i;
      const int b = pos >= 64 ? 0 : static_cast<int>((bound >> pos) & 1);
      const StateId eq_next = last ? t.to : eq[i + 1];
      const StateId lt_next = last ? t.to : lt[i + 1];
      if (b == 1) {
        out.AddTransition(eq[i], bit1, eq_next);
        out.AddTransition(eq[i], bit0, lt_next);
      } else {
        out.AddTransition(eq[i], bit0, eq_next);
      }
      if (i >= 1) {
        out.AddTransition(lt[i], bit0, lt_next);
        out.AddTransition(lt[i], bit1, lt_next);
      }
    }
  }
  return out;
}

}  // namespace pqe
