#ifndef PQE_AUTOMATA_DOT_EXPORT_H_
#define PQE_AUTOMATA_DOT_EXPORT_H_

#include <functional>
#include <string>

#include "automata/nfa.h"
#include "automata/nfta.h"
#include "hypertree/decomposition.h"

namespace pqe {

/// Callback rendering a symbol id as a label ("R1(a,b)", "¬R1(a,b)", "0"...).
/// Defaults to the numeric id when unset.
using SymbolNamer = std::function<std::string(SymbolId)>;

/// Graphviz rendering of a string automaton: states as nodes (initial =
/// diamond, accepting = double circle), transitions as labelled edges.
std::string NfaToDot(const Nfa& nfa, const SymbolNamer& namer = nullptr);

/// Graphviz rendering of a tree automaton. Hyperedge transitions are drawn
/// through small intermediate points carrying the symbol label, with ordered
/// child edges labelled by position.
std::string NftaToDot(const Nfta& nfta, const SymbolNamer& namer = nullptr);

/// Graphviz rendering of a hypertree decomposition: each node shows χ and ξ.
std::string DecompositionToDot(const HypertreeDecomposition& hd,
                               const ConjunctiveQuery& query,
                               const Schema& schema);

}  // namespace pqe

#endif  // PQE_AUTOMATA_DOT_EXPORT_H_
