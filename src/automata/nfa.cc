#include "automata/nfa.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace pqe {

StateId Nfa::AddState() {
  StateId id = static_cast<StateId>(num_states_);
  ++num_states_;
  is_initial_.push_back(false);
  is_accepting_.push_back(false);
  adjacency_valid_ = false;
  return id;
}

void Nfa::EnsureAlphabetSize(size_t size) {
  alphabet_size_ = std::max(alphabet_size_, size);
}

void Nfa::EnsureState(StateId s) { PQE_CHECK(s < num_states_); }

void Nfa::AddTransition(StateId from, SymbolId symbol, StateId to) {
  EnsureState(from);
  EnsureState(to);
  EnsureAlphabetSize(static_cast<size_t>(symbol) + 1);
  transitions_.push_back(Transition{from, symbol, to});
  adjacency_valid_ = false;
  in_valid_ = false;
}

void Nfa::SetTransitionTarget(uint32_t idx, StateId to) {
  PQE_CHECK(idx < transitions_.size());
  EnsureState(to);
  transitions_[idx].to = to;
  // from/symbol are untouched, so the out-CSR stays valid; only the index
  // keyed on the target has to be rebuilt.
  in_valid_ = false;
}

void Nfa::MarkInitial(StateId s) {
  EnsureState(s);
  if (!is_initial_[s]) {
    is_initial_[s] = true;
    initial_.push_back(s);
  }
}

void Nfa::MarkAccepting(StateId s) {
  EnsureState(s);
  is_accepting_[s] = true;
}

void Nfa::EnsureAdjacency() const {
  if (adjacency_valid_) return;
  const size_t S = num_states_;
  const size_t T = transitions_.size();
  // Counting sort by endpoint, stable in transition order, so per-state
  // lists keep the same (insertion) order the old vector-of-vectors layout
  // had — canonical-witness tie-breaking depends on it.
  out_offsets_.assign(S + 1, 0);
  for (const Transition& t : transitions_) ++out_offsets_[t.from + 1];
  for (size_t s = 0; s < S; ++s) out_offsets_[s + 1] += out_offsets_[s];
  out_idx_.resize(T);
  std::vector<uint32_t> out_cursor(out_offsets_.begin(),
                                   out_offsets_.end() - 1);
  for (uint32_t idx = 0; idx < T; ++idx) {
    out_idx_[out_cursor[transitions_[idx].from]++] = idx;
  }
  adjacency_valid_ = true;
}

void Nfa::EnsureInAdjacency() const {
  if (in_valid_) return;
  const size_t S = num_states_;
  const size_t T = transitions_.size();
  in_offsets_.assign(S + 1, 0);
  for (const Transition& t : transitions_) ++in_offsets_[t.to + 1];
  for (size_t s = 0; s < S; ++s) in_offsets_[s + 1] += in_offsets_[s];
  in_idx_.resize(T);
  std::vector<uint32_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (uint32_t idx = 0; idx < T; ++idx) {
    in_idx_[in_cursor[transitions_[idx].to]++] = idx;
  }
  in_valid_ = true;
}

Span<uint32_t> Nfa::OutTransitions(StateId s) const {
  PQE_CHECK(s < num_states_);
  EnsureAdjacency();
  return Span<uint32_t>(out_idx_.data() + out_offsets_[s],
                        out_offsets_[s + 1] - out_offsets_[s]);
}

Span<uint32_t> Nfa::InTransitions(StateId s) const {
  PQE_CHECK(s < num_states_);
  EnsureInAdjacency();
  return Span<uint32_t>(in_idx_.data() + in_offsets_[s],
                        in_offsets_[s + 1] - in_offsets_[s]);
}

std::vector<bool> Nfa::StatesAfter(const std::vector<SymbolId>& word) const {
  std::vector<bool> current = is_initial_;
  std::vector<bool> next(num_states_, false);
  for (SymbolId symbol : word) {
    std::fill(next.begin(), next.end(), false);
    for (const Transition& t : transitions_) {
      if (t.symbol == symbol && current[t.from]) next[t.to] = true;
    }
    std::swap(current, next);
  }
  return current;
}

void Nfa::ActiveStep(const std::vector<StateId>& current, SymbolId symbol,
                     std::vector<StateId>* next) const {
  EnsureAdjacency();
  next->clear();
  const uint32_t* idx = out_idx_.data();
  const Transition* trans = transitions_.data();
  for (StateId s : current) {
    const uint32_t begin = out_offsets_[s];
    const uint32_t end = out_offsets_[s + 1];
    for (uint32_t i = begin; i < end; ++i) {
      const Transition& t = trans[idx[i]];
      if (t.symbol == symbol) next->push_back(t.to);
    }
  }
  std::sort(next->begin(), next->end());
  next->erase(std::unique(next->begin(), next->end()), next->end());
}

std::vector<StateId> Nfa::ActiveStatesAfter(
    const std::vector<SymbolId>& word) const {
  std::vector<StateId> current = initial_;
  std::sort(current.begin(), current.end());
  std::vector<StateId> next;
  for (SymbolId symbol : word) {
    ActiveStep(current, symbol, &next);
    std::swap(current, next);
    if (current.empty()) break;
  }
  return current;
}

bool Nfa::Accepts(const std::vector<SymbolId>& word) const {
  std::vector<bool> states = StatesAfter(word);
  for (StateId s = 0; s < num_states_; ++s) {
    if (states[s] && is_accepting_[s]) return true;
  }
  return false;
}

void Nfa::Trim() {
  EnsureAdjacency();
  // Forward reachability from initial states.
  std::vector<bool> fwd(num_states_, false);
  std::vector<StateId> stack;
  for (StateId s : initial_) {
    fwd[s] = true;
    stack.push_back(s);
  }
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (uint32_t idx : OutTransitions(s)) {
      StateId to = transitions_[idx].to;
      if (!fwd[to]) {
        fwd[to] = true;
        stack.push_back(to);
      }
    }
  }
  // Backward reachability from accepting states.
  std::vector<bool> bwd(num_states_, false);
  for (StateId s = 0; s < num_states_; ++s) {
    if (is_accepting_[s]) {
      bwd[s] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (uint32_t idx : InTransitions(s)) {
      StateId from = transitions_[idx].from;
      if (!bwd[from]) {
        bwd[from] = true;
        stack.push_back(from);
      }
    }
  }
  // Rebuild with only useful states.
  std::vector<int64_t> remap(num_states_, -1);
  Nfa trimmed;
  trimmed.EnsureAlphabetSize(alphabet_size_);
  for (StateId s = 0; s < num_states_; ++s) {
    if (fwd[s] && bwd[s]) {
      remap[s] = trimmed.AddState();
      if (is_initial_[s]) trimmed.MarkInitial(static_cast<StateId>(remap[s]));
      if (is_accepting_[s]) {
        trimmed.MarkAccepting(static_cast<StateId>(remap[s]));
      }
    }
  }
  for (const Transition& t : transitions_) {
    if (remap[t.from] >= 0 && remap[t.to] >= 0) {
      trimmed.AddTransition(static_cast<StateId>(remap[t.from]), t.symbol,
                            static_cast<StateId>(remap[t.to]));
    }
  }
  *this = std::move(trimmed);
}

std::string Nfa::DebugString() const {
  std::ostringstream out;
  out << "NFA states=" << num_states_ << " transitions="
      << transitions_.size() << " alphabet=" << alphabet_size_ << "\n";
  for (const Transition& t : transitions_) {
    out << "  " << t.from << " --" << t.symbol << "--> " << t.to << "\n";
  }
  out << "  initial:";
  for (StateId s : initial_) out << " " << s;
  out << "\n  accepting:";
  for (StateId s = 0; s < num_states_; ++s) {
    if (is_accepting_[s]) out << " " << s;
  }
  out << "\n";
  return out.str();
}

}  // namespace pqe
