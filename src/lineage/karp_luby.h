#ifndef PQE_LINEAGE_KARP_LUBY_H_
#define PQE_LINEAGE_KARP_LUBY_H_

#include <cstddef>
#include <cstdint>

#include "counting/config.h"
#include "lineage/lineage.h"
#include "pdb/probabilistic_database.h"
#include "util/cancel.h"
#include "util/result.h"

namespace pqe {

/// Tuning for the Karp–Luby DNF probability estimator.
struct KarpLubyConfig {
  double epsilon = 0.2;
  double confidence = 0.9;
  uint64_t seed = 0x5eed;
  /// 0 = auto: ceil(8 · m / ε²) coverage samples for m clauses, clamped.
  size_t num_samples = 0;
  size_t min_samples = 256;
  size_t max_samples = 0;  // 0 = uncapped
  /// Worker threads for the sample loop. 0 = auto: $PQE_THREADS when set,
  /// else 1 (serial). The estimate is bit-identical for every value.
  size_t num_threads = 0;
  /// Sample-loop shards (0 = default 64, clamped to the sample count). Each
  /// shard covers a fixed contiguous block of samples and seeds its own Rng
  /// from (seed, shard); shard hits are summed in shard order, so results
  /// depend on (seed, num_shards) only — never on num_threads or
  /// scheduling. Changing num_shards changes the sample streams (like
  /// changing the seed), not the estimator's guarantee.
  size_t num_shards = 0;
  /// Sampling-kernel tier (see counting/config.h). kExact draws one clause
  /// pick plus one Bernoulli per fact through the scalar Rng calls —
  /// bit-identical across thread counts and versions. kFast consumes
  /// block-generated RNG words through an alias table and a branchless
  /// world-fill over a contiguous byte arena — statistically equivalent,
  /// fixed-seed reproducible within a build.
  KernelMode kernel_mode = KernelMode::kExact;
  /// Cooperative cancellation (optional, not owned; must outlive the run).
  /// Each shard polls the token every few hundred samples and stops early
  /// when it expires; the run then returns StatusCode::kDeadlineExceeded
  /// instead of a result, after recording per-block progress on the token
  /// (see util/cancel.h). nullptr (the default) never cancels.
  const CancelToken* cancel = nullptr;
};

/// Result of a Karp–Luby run.
struct KarpLubyResult {
  double probability = 0.0;
  size_t samples = 0;
  size_t clauses = 0;
  size_t hits = 0;  // canonical (first-satisfied-clause) draws
};

/// The classical intensional baseline: (1±ε)-approximates Pr_H(Q) given the
/// DNF lineage, using the Karp–Luby coverage estimator. Sample a clause
/// proportional to its marginal probability, draw a world conditioned on the
/// clause being true, and count the draw iff the clause is the first
/// satisfied one; Pr = (Σ_j Pr(C_j)) · acceptance rate. Runtime is linear in
/// the lineage size per sample — and the lineage itself is exponential in
/// |Q|, which is the paper's core complaint.
Result<KarpLubyResult> KarpLubyEstimate(const DnfLineage& lineage,
                                        const ProbabilisticDatabase& pdb,
                                        const KarpLubyConfig& config);

/// Convenience: builds the lineage and runs Karp–Luby.
Result<KarpLubyResult> KarpLubyPqe(const ConjunctiveQuery& query,
                                   const ProbabilisticDatabase& pdb,
                                   const KarpLubyConfig& config,
                                   size_t max_clauses = 5'000'000);

/// Exact weighted model count of the DNF by Shannon expansion with
/// memoization on the residual clause set. Exponential worst case; exact
/// oracle for mid-sized instances where 2^|D| enumeration is hopeless.
Result<BigRational> ExactDnfProbability(const DnfLineage& lineage,
                                        const ProbabilisticDatabase& pdb,
                                        size_t max_memo_entries = 4'000'000);

}  // namespace pqe

#endif  // PQE_LINEAGE_KARP_LUBY_H_
