#ifndef PQE_LINEAGE_COMPILED_WMC_H_
#define PQE_LINEAGE_COMPILED_WMC_H_

#include <cstddef>

#include "lineage/lineage.h"
#include "pdb/probabilistic_database.h"
#include "util/result.h"

namespace pqe {

/// Statistics from a decomposition-based exact model count.
struct WmcStats {
  size_t shannon_splits = 0;     // variable branchings
  size_t component_splits = 0;   // independent-component factorizations
  size_t cache_hits = 0;
  size_t cache_entries = 0;
};

/// Exact Pr[lineage] via knowledge-compilation-style counting: DPLL over the
/// positive DNF with
///   (1) independent-component decomposition — clause sets sharing no facts
///       multiply as 1 − Π(1 − P_c),
///   (2) Shannon expansion on the most-frequent fact otherwise,
///   (3) clause subsumption/absorption,
///   (4) caching keyed on the residual clause set.
/// This is the standard d-DNNF-style upgrade of plain Shannon expansion
/// (ExactDnfProbability) and handles substantially larger lineages; still
/// exponential in the worst case (#P-hardness is real). Arithmetic is exact
/// rational.
struct CompiledWmcResult {
  BigRational probability;
  WmcStats stats;
};
Result<CompiledWmcResult> ExactDnfProbabilityDecomposed(
    const DnfLineage& lineage, const ProbabilisticDatabase& pdb,
    size_t max_cache_entries = 4'000'000);

}  // namespace pqe

#endif  // PQE_LINEAGE_COMPILED_WMC_H_
