#include "lineage/monte_carlo.h"

#include <vector>

#include "eval/eval.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace pqe {

Result<MonteCarloResult> MonteCarloPqe(const ConjunctiveQuery& query,
                                       const ProbabilisticDatabase& pdb,
                                       const MonteCarloConfig& config) {
  if (config.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  const Database& db = pdb.database();
  // Validate once; SatisfiesSubinstance would re-validate per sample.
  PQE_RETURN_IF_ERROR(Satisfies(db, query).status());
  PQE_TRACE_SPAN_VAR(span, "monte_carlo.estimate");
  span.AttrUint("facts", pdb.NumFacts());
  span.AttrUint("samples", config.num_samples);

  Rng rng(config.seed);
  std::vector<double> marginals(pdb.NumFacts());
  for (FactId f = 0; f < pdb.NumFacts(); ++f) {
    marginals[f] = pdb.probability(f).ToDouble();
  }
  MonteCarloResult out;
  out.samples = config.num_samples;
  std::vector<bool> world(pdb.NumFacts(), false);
  for (size_t s = 0; s < config.num_samples; ++s) {
    for (FactId f = 0; f < pdb.NumFacts(); ++f) {
      world[f] = rng.NextBernoulli(marginals[f]);
    }
    PQE_ASSIGN_OR_RETURN(bool sat, SatisfiesSubinstance(db, query, world));
    if (sat) ++out.hits;
  }
  out.probability = static_cast<double>(out.hits) /
                    static_cast<double>(out.samples);
  return out;
}

}  // namespace pqe
