#include "lineage/monte_carlo.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "eval/eval.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pqe {

Result<MonteCarloResult> MonteCarloPqe(const ConjunctiveQuery& query,
                                       const ProbabilisticDatabase& pdb,
                                       const MonteCarloConfig& config) {
  if (config.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be >= 1");
  }
  const Database& db = pdb.database();
  // Validate once; SatisfiesSubinstance would re-validate per sample.
  PQE_RETURN_IF_ERROR(Satisfies(db, query).status());
  PQE_TRACE_SPAN_VAR(span, "monte_carlo.estimate");
  span.AttrUint("facts", pdb.NumFacts());
  span.AttrUint("samples", config.num_samples);

  const size_t num_facts = pdb.NumFacts();
  std::vector<double> marginals(num_facts);
  for (FactId f = 0; f < num_facts; ++f) {
    marginals[f] = pdb.probability(f).ToDouble();
  }
  MonteCarloResult out;
  out.samples = config.num_samples;

  // Sharded i.i.d. world draws; same determinism scheme as Karp–Luby:
  // fixed shard boundaries, per-shard Rng seeded from (seed, shard), hits
  // summed in shard order — bit-identical for every num_threads.
  const size_t samples = config.num_samples;
  const size_t threads = ThreadPool::ResolveNumThreads(config.num_threads);
  const size_t shards = std::min(
      config.num_shards > 0 ? config.num_shards : size_t{64}, samples);
  span.AttrUint("threads", threads);
  span.AttrUint("shards", shards);
  std::vector<uint64_t> shard_hits(shards, 0);
  std::vector<Status> shard_status(shards, Status::OK());
  auto& shard_hist =
      obs::MetricRegistry::Global().GetHistogram("pqe.monte_carlo.shard_ns");
  const bool fast = config.kernel_mode == KernelMode::kFast;
  span.AttrText("kernels", KernelModeToString(config.kernel_mode));
  ParallelFor(threads, shards, [&](size_t shard) {
    const auto start = std::chrono::steady_clock::now();
    Rng rng(Rng::DeriveSeed(config.seed, shard));
    std::vector<bool> world(num_facts, false);
    // Fast tier: one raw word per fact, generated block-at-a-time; the
    // world stays a vector<bool> (SatisfiesSubinstance's interface), only
    // the randomness is batched.
    std::vector<uint64_t> words;
    if (fast) words.resize(num_facts);
    uint64_t hits = 0;
    const size_t begin = shard * samples / shards;
    const size_t end = (shard + 1) * samples / shards;
    for (size_t s = begin; s < end; ++s) {
      if (fast) {
        rng.FillBlock(words.data(), num_facts);
        for (FactId f = 0; f < num_facts; ++f) {
          world[f] = Rng::DoubleFromWord(words[f]) < marginals[f];
        }
      } else {
        for (FactId f = 0; f < num_facts; ++f) {
          world[f] = rng.NextBernoulli(marginals[f]);
        }
      }
      Result<bool> sat = SatisfiesSubinstance(db, query, world);
      if (!sat.ok()) {
        shard_status[shard] = sat.status();
        return;
      }
      if (*sat) ++hits;
    }
    shard_hits[shard] = hits;
    shard_hist.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  });
  for (const Status& st : shard_status) PQE_RETURN_IF_ERROR(st);
  for (uint64_t h : shard_hits) out.hits += h;
  out.probability = static_cast<double>(out.hits) /
                    static_cast<double>(out.samples);
  return out;
}

}  // namespace pqe
