#include "lineage/compiled_wmc.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "util/check.h"

namespace pqe {

namespace {

using Clause = std::vector<FactId>;
using ClauseSet = std::vector<Clause>;

Status ValidateLineage(const DnfLineage& lineage,
                       const ProbabilisticDatabase& pdb) {
  if (lineage.num_facts != pdb.NumFacts()) {
    return Status::InvalidArgument(
        "lineage and probabilistic database disagree on |D|");
  }
  for (const auto& clause : lineage.clauses) {
    for (FactId f : clause) {
      if (f >= pdb.NumFacts()) {
        return Status::InvalidArgument("lineage mentions unknown fact");
      }
    }
  }
  return Status::OK();
}

// Removes subsumed clauses: if clause a ⊆ clause b, b is redundant in a
// positive DNF (absorption). Input clauses must be sorted; output is sorted
// and deduplicated.
ClauseSet Absorb(ClauseSet clauses) {
  std::sort(clauses.begin(), clauses.end(),
            [](const Clause& a, const Clause& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  ClauseSet kept;
  for (const Clause& c : clauses) {
    bool subsumed = false;
    for (const Clause& k : kept) {
      if (std::includes(c.begin(), c.end(), k.begin(), k.end())) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(c);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  return kept;
}

class WmcSolver {
 public:
  WmcSolver(const ProbabilisticDatabase& pdb, size_t max_cache_entries)
      : pdb_(pdb), max_cache_entries_(max_cache_entries) {}

  Result<BigRational> Solve(const ClauseSet& clauses) {
    if (clauses.empty()) return BigRational::Zero();
    for (const Clause& c : clauses) {
      if (c.empty()) return BigRational::One();
    }
    auto it = cache_.find(clauses);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
    if (cache_.size() > max_cache_entries_) {
      return Status::ResourceExhausted("WMC cache budget exceeded");
    }

    // (1) Independent components: clauses connected via shared facts.
    std::vector<ClauseSet> components = SplitComponents(clauses);
    BigRational value;
    if (components.size() > 1) {
      ++stats_.component_splits;
      // P(∨ comps) = 1 − Π(1 − P_c); components touch disjoint facts.
      BigRational none = BigRational::One();
      for (const ClauseSet& comp : components) {
        PQE_ASSIGN_OR_RETURN(BigRational pc, Solve(comp));
        none = none.Mul(BigRational::One().Sub(pc)).Normalized();
      }
      value = BigRational::One().Sub(none).Normalized();
    } else {
      // (2) Shannon split on the most frequent fact.
      ++stats_.shannon_splits;
      const FactId v = MostFrequentFact(clauses);
      ClauseSet on_true;
      on_true.reserve(clauses.size());
      for (const Clause& c : clauses) {
        Clause reduced;
        reduced.reserve(c.size());
        for (FactId f : c) {
          if (f != v) reduced.push_back(f);
        }
        on_true.push_back(std::move(reduced));
      }
      on_true = Absorb(std::move(on_true));
      ClauseSet on_false;
      for (const Clause& c : clauses) {
        if (!std::binary_search(c.begin(), c.end(), v)) on_false.push_back(c);
      }
      PQE_ASSIGN_OR_RETURN(BigRational pt, Solve(on_true));
      PQE_ASSIGN_OR_RETURN(BigRational pf, Solve(on_false));
      const Probability pv = pdb_.probability(v);
      BigRational p(pv.num, pv.den);
      BigRational q(pv.den - pv.num, pv.den);
      value = p.Mul(pt).Add(q.Mul(pf)).Normalized();
    }
    cache_.emplace(clauses, value);
    stats_.cache_entries = cache_.size();
    return value;
  }

  const WmcStats& stats() const { return stats_; }

 private:
  static std::vector<ClauseSet> SplitComponents(const ClauseSet& clauses) {
    // Union-find over clause indices through shared facts.
    std::vector<size_t> parent(clauses.size());
    for (size_t i = 0; i < clauses.size(); ++i) parent[i] = i;
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    std::unordered_map<FactId, size_t> first_owner;
    for (size_t i = 0; i < clauses.size(); ++i) {
      for (FactId f : clauses[i]) {
        auto [it, inserted] = first_owner.emplace(f, i);
        if (!inserted) parent[find(i)] = find(it->second);
      }
    }
    std::map<size_t, ClauseSet> by_root;
    for (size_t i = 0; i < clauses.size(); ++i) {
      by_root[find(i)].push_back(clauses[i]);
    }
    std::vector<ClauseSet> out;
    out.reserve(by_root.size());
    for (auto& [root, comp] : by_root) {
      (void)root;
      std::sort(comp.begin(), comp.end());
      out.push_back(std::move(comp));
    }
    return out;
  }

  static FactId MostFrequentFact(const ClauseSet& clauses) {
    std::unordered_map<FactId, size_t> counts;
    for (const Clause& c : clauses) {
      for (FactId f : c) ++counts[f];
    }
    FactId best = clauses[0][0];
    size_t best_count = 0;
    for (const auto& [f, n] : counts) {
      if (n > best_count || (n == best_count && f < best)) {
        best = f;
        best_count = n;
      }
    }
    return best;
  }

  const ProbabilisticDatabase& pdb_;
  const size_t max_cache_entries_;
  std::map<ClauseSet, BigRational> cache_;
  WmcStats stats_;
};

}  // namespace

Result<CompiledWmcResult> ExactDnfProbabilityDecomposed(
    const DnfLineage& lineage, const ProbabilisticDatabase& pdb,
    size_t max_cache_entries) {
  PQE_RETURN_IF_ERROR(ValidateLineage(lineage, pdb));
  PQE_TRACE_SPAN_VAR(span, "wmc.exact");
  span.AttrUint("clauses", lineage.NumClauses());
  ClauseSet normalized = Absorb(lineage.clauses);
  WmcSolver solver(pdb, max_cache_entries);
  CompiledWmcResult out;
  PQE_ASSIGN_OR_RETURN(out.probability, solver.Solve(normalized));
  out.stats = solver.stats();
  span.AttrUint("shannon_splits", out.stats.shannon_splits);
  span.AttrUint("component_splits", out.stats.component_splits);
  return out;
}

}  // namespace pqe
