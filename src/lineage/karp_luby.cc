#include "lineage/karp_luby.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <map>
#include <vector>

#include "counting/weighted_pick.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/extfloat.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pqe {

namespace {

Status ValidateLineage(const DnfLineage& lineage,
                       const ProbabilisticDatabase& pdb) {
  if (lineage.num_facts != pdb.NumFacts()) {
    return Status::InvalidArgument(
        "lineage and probabilistic database disagree on |D|");
  }
  for (const auto& clause : lineage.clauses) {
    for (FactId f : clause) {
      if (f >= pdb.NumFacts()) {
        return Status::InvalidArgument("lineage mentions unknown fact");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<KarpLubyResult> KarpLubyEstimate(const DnfLineage& lineage,
                                        const ProbabilisticDatabase& pdb,
                                        const KarpLubyConfig& config) {
  PQE_RETURN_IF_ERROR(ValidateLineage(lineage, pdb));
  if (config.epsilon <= 0.0 || config.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  PQE_TRACE_SPAN_VAR(span, "karp_luby.estimate");
  KarpLubyResult out;
  out.clauses = lineage.NumClauses();
  span.AttrUint("clauses", out.clauses);
  span.AttrUint("facts", pdb.NumFacts());
  if (lineage.clauses.empty()) return out;

  // Clause marginals Pr(C_j) = Π_{i ∈ C_j} p_i, in extended range.
  std::vector<ExtFloat> weights;
  weights.reserve(lineage.clauses.size());
  ExtFloat total;
  for (const auto& clause : lineage.clauses) {
    ExtFloat w = ExtFloat::FromUint64(1);
    for (FactId f : clause) {
      w = w.Scale(pdb.probability(f).ToDouble());
    }
    weights.push_back(w);
    total = total.Add(w);
  }
  if (total.IsZero()) return out;

  size_t samples = config.num_samples;
  if (samples == 0) {
    const double eps = std::max(config.epsilon, 1e-3);
    samples = static_cast<size_t>(
        std::ceil(8.0 * static_cast<double>(lineage.NumClauses()) /
                  (eps * eps)));
    samples = std::max(samples, config.min_samples);
    if (config.max_samples > 0) samples = std::min(samples,
                                                   config.max_samples);
  }
  out.samples = samples;

  // Fact marginals as plain doubles, hoisted out of the sample loop (shared
  // read-only across shards; the per-sample probability(f).ToDouble() calls
  // used to dominate the world draw).
  const size_t num_facts = pdb.NumFacts();
  std::vector<double> marginals(num_facts);
  for (FactId f = 0; f < num_facts; ++f) {
    marginals[f] = pdb.probability(f).ToDouble();
  }

  const bool fast = config.kernel_mode == KernelMode::kFast;
  span.AttrText("kernels", KernelModeToString(config.kernel_mode));

  // Clause picker built once and shared read-only across shards (picks are
  // const): the legacy per-sample PickWeightedIndex rescanned and rescaled
  // all clause weights on every draw. The exact tier's cumulative picker is
  // draw-identical to it by construction, so estimates are unchanged; the
  // fast tier uses the O(1) alias table instead (statistically equivalent).
  WeightedPicker clause_picker;
  AliasPicker clause_alias;
  if (fast) {
    clause_alias.Build(weights, "karp_luby clause table");
    obs::MetricRegistry::Global().GetCounter("counting.alias_builds")
        .Increment();
  } else {
    clause_picker.Build(weights, "karp_luby clause table");
    obs::MetricRegistry::Global().GetCounter("counting.picker_builds")
        .Increment();
  }

  // The i.i.d. sample loop, sharded. Shard boundaries are fixed by the
  // config alone (never by thread count or scheduling): shard i covers
  // samples [i·N/S, (i+1)·N/S) with its own Rng seeded from (seed, i) and
  // its own scratch world bitmap; hits — an order-independent integer sum —
  // are merged in shard order. Bit-identical for every num_threads.
  const size_t threads = ThreadPool::ResolveNumThreads(config.num_threads);
  const size_t shards = std::min(
      config.num_shards > 0 ? config.num_shards : size_t{64}, samples);
  std::vector<uint64_t> shard_hits(shards, 0);
  std::vector<uint64_t> shard_batches(shards, 0);
  auto& shard_hist =
      obs::MetricRegistry::Global().GetHistogram("pqe.karp_luby.shard_ns");
  auto& batch_hist =
      obs::MetricRegistry::Global().GetHistogram("counting.batch_size_hist");
  ParallelFor(threads, shards, [&](size_t shard) {
    const auto start = std::chrono::steady_clock::now();
    Rng rng(Rng::DeriveSeed(config.seed, shard));
    uint64_t hits = 0;
    const size_t begin = shard * samples / shards;
    const size_t end = (shard + 1) * samples / shards;
    if (fast) {
      // Batched SoA kernel: each trial consumes one clause-pick word plus
      // one word per fact, generated block-at-a-time; several trials share
      // one contiguous block so the RNG stays out of the inner loop. The
      // world is a byte arena filled by a branchless compare the compiler
      // can vectorize (NextBernoulli's p<=0 / p>=1 clamps fall out of
      // `u < p` for u in [0,1)).
      const size_t words_per_trial = num_facts + 1;
      const size_t trials_per_block =
          std::max<size_t>(1, 4096 / words_per_trial);
      std::vector<uint64_t> words;
      std::vector<uint8_t> world(num_facts, 0);
      uint64_t batches = 0;
      size_t s = begin;
      while (s < end) {
        if (config.cancel != nullptr) {
          if (config.cancel->Expired()) break;
          if (s > begin) config.cancel->AddProgress(trials_per_block);
        }
        const size_t trials = std::min(trials_per_block, end - s);
        words.resize(trials * words_per_trial);
        rng.FillBlock(words.data(), words.size());
        ++batches;
        batch_hist.Observe(trials);
        for (size_t t = 0; t < trials; ++t) {
          const uint64_t* w = words.data() + t * words_per_trial;
          const size_t j =
              clause_alias.PickFromDouble(Rng::DoubleFromWord(w[0]));
          for (FactId f = 0; f < num_facts; ++f) {
            world[f] = Rng::DoubleFromWord(w[f + 1]) < marginals[f] ? 1 : 0;
          }
          for (FactId f : lineage.clauses[j]) world[f] = 1;
          bool canonical = true;
          for (size_t k = 0; k < j && canonical; ++k) {
            bool sat = true;
            for (FactId f : lineage.clauses[k]) sat = sat && world[f] != 0;
            if (sat) canonical = false;
          }
          if (canonical) ++hits;
        }
        s += trials;
      }
      shard_batches[shard] = batches;
    } else {
      std::vector<bool> world(num_facts, false);
      for (size_t s = begin; s < end; ++s) {
        // Cooperative cancellation: poll every 512 samples. When the token
        // expires the whole run is discarded below, so stopping mid-shard
        // cannot bias anything.
        if (((s - begin) & 511u) == 0 && config.cancel != nullptr) {
          if (config.cancel->Expired()) break;
          if (s > begin) config.cancel->AddProgress(512);
        }
        const size_t j = clause_picker.Pick(&rng);
        // Draw a world conditioned on clause j being satisfied.
        for (FactId f = 0; f < num_facts; ++f) {
          world[f] = rng.NextBernoulli(marginals[f]);
        }
        for (FactId f : lineage.clauses[j]) world[f] = true;
        // Coverage estimator: count iff j is the first satisfied clause.
        bool canonical = true;
        for (size_t k = 0; k < j && canonical; ++k) {
          bool sat = true;
          for (FactId f : lineage.clauses[k]) sat = sat && world[f];
          if (sat) canonical = false;
        }
        if (canonical) ++hits;
      }
    }
    shard_hits[shard] = hits;
    shard_hist.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  });
  if (config.cancel != nullptr && config.cancel->Expired()) {
    return Status::DeadlineExceeded(
        "karp_luby: cancelled after " +
        std::to_string(config.cancel->progress()) + " recorded samples of " +
        std::to_string(samples));
  }
  size_t hits = 0;
  for (uint64_t h : shard_hits) hits += h;
  uint64_t batches = 0;
  for (uint64_t b : shard_batches) batches += b;
  if (batches > 0) {
    obs::MetricRegistry::Global().GetCounter("counting.batch_draws")
        .Add(batches);
  }
  out.hits = hits;
  out.probability = total.Scale(static_cast<double>(hits) /
                                static_cast<double>(samples))
                        .ToDouble();
  span.AttrUint("samples", out.samples);
  span.AttrUint("hits", out.hits);
  span.AttrUint("threads", threads);
  span.AttrUint("shards", shards);
  {
    auto& metrics = obs::MetricRegistry::Global();
    metrics.GetCounter("pqe.karp_luby.runs").Increment();
    metrics.GetCounter("pqe.karp_luby.samples").Add(out.samples);
    metrics.GetCounter("pqe.karp_luby.hits").Add(out.hits);
    metrics.GetHistogram("pqe.karp_luby.clauses").Observe(out.clauses);
    metrics.GetGauge("pqe.karp_luby.threads").Set(
        static_cast<double>(threads));
  }
  return out;
}

Result<KarpLubyResult> KarpLubyPqe(const ConjunctiveQuery& query,
                                   const ProbabilisticDatabase& pdb,
                                   const KarpLubyConfig& config,
                                   size_t max_clauses) {
  PQE_ASSIGN_OR_RETURN(DnfLineage lineage,
                       BuildLineage(query, pdb.database(), max_clauses));
  return KarpLubyEstimate(lineage, pdb, config);
}

Result<BigRational> ExactDnfProbability(const DnfLineage& lineage,
                                        const ProbabilisticDatabase& pdb,
                                        size_t max_memo_entries) {
  PQE_RETURN_IF_ERROR(ValidateLineage(lineage, pdb));
  if (lineage.clauses.empty()) return BigRational::Zero();

  using ClauseSet = std::vector<std::vector<FactId>>;
  std::map<ClauseSet, BigRational> memo;

  // Shannon expansion, always splitting on the smallest fact mentioned:
  // the residual probability then depends on the residual clause set alone.
  std::function<Result<BigRational>(const ClauseSet&)> eval =
      [&](const ClauseSet& clauses) -> Result<BigRational> {
    if (clauses.empty()) return BigRational::Zero();
    for (const auto& c : clauses) {
      if (c.empty()) return BigRational::One();
    }
    auto it = memo.find(clauses);
    if (it != memo.end()) return it->second;
    if (memo.size() > max_memo_entries) {
      return Status::ResourceExhausted(
          "Shannon expansion exceeded memo budget");
    }
    FactId v = clauses[0][0];
    for (const auto& c : clauses) v = std::min(v, c[0]);
    // v := true — drop v from clauses (clauses without v keep all literals).
    ClauseSet on_true;
    for (const auto& c : clauses) {
      std::vector<FactId> reduced;
      for (FactId f : c) {
        if (f != v) reduced.push_back(f);
      }
      on_true.push_back(std::move(reduced));
    }
    std::sort(on_true.begin(), on_true.end());
    on_true.erase(std::unique(on_true.begin(), on_true.end()),
                  on_true.end());
    // Absorption: a clause that became empty makes the branch certain.
    // v := false — delete clauses containing v.
    ClauseSet on_false;
    for (const auto& c : clauses) {
      if (!std::binary_search(c.begin(), c.end(), v)) on_false.push_back(c);
    }
    PQE_ASSIGN_OR_RETURN(BigRational pt, eval(on_true));
    PQE_ASSIGN_OR_RETURN(BigRational pf, eval(on_false));
    const Probability pv = pdb.probability(v);
    BigRational p(pv.num, pv.den);
    BigRational q(pv.den - pv.num, pv.den);
    BigRational value = p.Mul(pt).Add(q.Mul(pf)).Normalized();
    memo.emplace(clauses, value);
    return value;
  };

  ClauseSet normalized = lineage.clauses;
  std::sort(normalized.begin(), normalized.end());
  normalized.erase(std::unique(normalized.begin(), normalized.end()),
                   normalized.end());
  return eval(normalized);
}

}  // namespace pqe
