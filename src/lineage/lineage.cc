#include "lineage/lineage.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "eval/eval.h"
#include "obs/trace.h"

namespace pqe {

size_t DnfLineage::NumLiterals() const {
  size_t total = 0;
  for (const auto& c : clauses) total += c.size();
  return total;
}

std::string DnfLineage::ToString(const Database& db) const {
  std::ostringstream out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out << " v ";
    out << "(";
    for (size_t j = 0; j < clauses[i].size(); ++j) {
      if (j > 0) out << " ^ ";
      out << db.FactToString(clauses[i][j]);
    }
    out << ")";
  }
  return out.str();
}

Result<DnfLineage> BuildLineage(const ConjunctiveQuery& query,
                                const Database& db, size_t max_clauses) {
  PQE_TRACE_SPAN_VAR(span, "lineage.build");
  span.AttrUint("facts", db.NumFacts());
  PQE_ASSIGN_OR_RETURN(std::vector<Assignment> witnesses,
                       AllWitnesses(db, query));
  span.AttrUint("witnesses", witnesses.size());
  DnfLineage out;
  out.num_facts = db.NumFacts();
  std::set<std::vector<FactId>> seen;
  for (const Assignment& w : witnesses) {
    std::vector<FactId> clause;
    clause.reserve(query.NumAtoms());
    bool valid = true;
    for (const Atom& atom : query.atoms()) {
      Fact f;
      f.relation = atom.relation;
      f.args.reserve(atom.vars.size());
      for (VarId v : atom.vars) {
        if (w[v] < 0) {
          valid = false;
          break;
        }
        f.args.push_back(static_cast<ValueId>(w[v]));
      }
      if (!valid) break;
      // A witness assignment always maps to existing facts; resolve the id.
      const int64_t fid = db.FindFact(f);
      if (fid < 0) {
        valid = false;
        break;
      }
      clause.push_back(static_cast<FactId>(fid));
    }
    if (!valid) continue;
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    if (seen.insert(clause).second) {
      if (seen.size() > max_clauses) {
        return Status::ResourceExhausted(
            "lineage exceeds " + std::to_string(max_clauses) + " clauses");
      }
      out.clauses.push_back(std::move(clause));
    }
  }
  return out;
}

Result<size_t> CountWitnesses(const ConjunctiveQuery& query,
                              const Database& db, size_t cap) {
  PQE_ASSIGN_OR_RETURN(std::vector<Assignment> witnesses,
                       AllWitnesses(db, query));
  if (witnesses.size() > cap) {
    return Status::ResourceExhausted("witness count exceeds cap");
  }
  return witnesses.size();
}

}  // namespace pqe
