#ifndef PQE_LINEAGE_MONTE_CARLO_H_
#define PQE_LINEAGE_MONTE_CARLO_H_

#include <cstddef>
#include <cstdint>

#include "counting/config.h"
#include "cq/query.h"
#include "pdb/probabilistic_database.h"
#include "util/result.h"

namespace pqe {

/// Tuning for the naive Monte-Carlo baseline.
struct MonteCarloConfig {
  uint64_t seed = 0x5eed;
  size_t num_samples = 10'000;
  /// Worker threads for the sample loop. 0 = auto: $PQE_THREADS when set,
  /// else 1 (serial). The estimate is bit-identical for every value.
  size_t num_threads = 0;
  /// Sample-loop shards (0 = default 64, clamped to the sample count); same
  /// determinism contract as KarpLubyConfig::num_shards.
  size_t num_shards = 0;
  /// Sampling-kernel tier: kExact draws each world one scalar Bernoulli at
  /// a time (bit-identical across versions); kFast fills worlds from
  /// block-generated RNG words (statistically equivalent, fixed-seed
  /// reproducible within a build). See counting/config.h.
  KernelMode kernel_mode = KernelMode::kExact;
};

/// Result of a naive Monte-Carlo run.
struct MonteCarloResult {
  double probability = 0.0;
  size_t samples = 0;
  size_t hits = 0;
};

/// The simplest baseline: sample worlds from the tuple-independent
/// distribution and count how many satisfy Q. Unbiased, and each sample
/// costs one query evaluation — but the relative error explodes as Pr_H(Q)
/// shrinks (additive ±1/√N accuracy only), which is why it is *not* an
/// FPRAS. Included as the classical contrast to both Karp–Luby and the
/// paper's combined FPRAS.
Result<MonteCarloResult> MonteCarloPqe(const ConjunctiveQuery& query,
                                       const ProbabilisticDatabase& pdb,
                                       const MonteCarloConfig& config);

}  // namespace pqe

#endif  // PQE_LINEAGE_MONTE_CARLO_H_
