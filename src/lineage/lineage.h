#ifndef PQE_LINEAGE_LINEAGE_H_
#define PQE_LINEAGE_LINEAGE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "cq/query.h"
#include "pdb/database.h"
#include "util/result.h"

namespace pqe {

/// The lineage of a Boolean CQ over a database as a positive DNF over fact
/// variables: one clause (set of FactIds) per witness of Q on D. This is the
/// classical "intensional" object the paper's introduction argues against:
/// its size is Θ(|D|^|Q|) for path queries (one clause per witnessing fact
/// sequence), exponential in the query length.
struct DnfLineage {
  size_t num_facts = 0;                    // variables are FactIds < this
  std::vector<std::vector<FactId>> clauses;  // each sorted, deduplicated

  size_t NumClauses() const { return clauses.size(); }
  /// Total number of literal occurrences.
  size_t NumLiterals() const;
  std::string ToString(const Database& db) const;
};

/// Computes the DNF lineage by witness enumeration. Fails with
/// ResourceExhausted once more than `max_clauses` distinct clauses arise
/// (the blowup the benchmarks measure).
Result<DnfLineage> BuildLineage(const ConjunctiveQuery& query,
                                const Database& db,
                                size_t max_clauses = 5'000'000);

/// Number of witnesses of Q on D — the clause count of the lineage before
/// deduplication; cheap lower-bound diagnostic for the blowup benchmarks.
Result<size_t> CountWitnesses(const ConjunctiveQuery& query,
                              const Database& db, size_t cap = SIZE_MAX);

}  // namespace pqe

#endif  // PQE_LINEAGE_LINEAGE_H_
