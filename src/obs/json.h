#ifndef PQE_OBS_JSON_H_
#define PQE_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace pqe {
namespace obs {

/// A parsed JSON document node (RFC 8259 subset; the library takes no
/// third-party dependencies). The reader side of obs/export.h's JsonWriter:
/// bench_compare diffs metrics files with it, and the workload replay driver
/// parses captured JSONL records. Numbers are stored as double — exact for
/// every value the writer emits, since Double() serializes with
/// max_digits10 and uint64 counters round-trip through the Uint/strtod pair
/// up to 2^53 (metric values beyond that lose low bits, as JSON itself
/// guarantees nothing better across readers).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Typed accessors; the caller checks kind() first (wrong-kind access
  /// returns the type's zero value rather than crashing).
  bool AsBool() const { return boolean_; }
  double AsNumber() const { return number_; }
  /// The number reinterpreted as uint64 (for ids, seeds, hashes). Values
  /// are serialized in decimal; anything ≤ 2^53 round-trips exactly, and
  /// larger hashes are recorded in hex strings by the workload layer.
  uint64_t AsUint() const { return static_cast<uint64_t>(number_); }
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& Items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& Members() const {
    return members_;
  }

  /// First member with this key, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool boolean_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document; trailing non-whitespace is an error. Strings
/// decode the standard escapes; \uXXXX escapes decode to UTF-8 (surrogate
/// pairs combined, lone surrogates rejected).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace obs
}  // namespace pqe

#endif  // PQE_OBS_JSON_H_
