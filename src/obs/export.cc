#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

namespace pqe {
namespace obs {

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!needs_comma_.empty() && needs_comma_.back()) out_.push_back(',');
  if (!needs_comma_.empty()) needs_comma_.back() = true;
  out_.push_back('"');
  JsonEscape(key, &out_);
  out_.append("\":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  JsonEscape(value, &out_);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_.append("null");
    return *this;
  }
  // max_digits10 precision: a correctly-rounding reader (strtod, ParseJson)
  // recovers the exact bit pattern, which the workload replay oracle and
  // bench_compare rely on.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, value);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
  return *this;
}

std::string JsonWriter::Take() {
  std::string result = std::move(out_);
  out_.clear();
  needs_comma_.clear();
  pending_key_ = false;
  return result;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // comma was handled by Key()
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
}

void JsonEscape(std::string_view text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void WriteSpanJson(const TraceSpan& span, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("name").String(span.name);
  writer->Key("start_ns").Uint(span.start_ns);
  writer->Key("dur_ns").Uint(span.duration_ns);
  if (!span.attrs.empty()) {
    writer->Key("attrs").BeginObject();
    for (const TraceAttr& attr : span.attrs) {
      writer->Key(attr.key);
      switch (attr.kind) {
        case TraceAttr::Kind::kUint:
          writer->Uint(attr.u);
          break;
        case TraceAttr::Kind::kInt:
          writer->Int(attr.i);
          break;
        case TraceAttr::Kind::kFloat:
          writer->Double(attr.f);
          break;
        case TraceAttr::Kind::kText:
          writer->String(attr.text);
          break;
      }
    }
    writer->EndObject();
  }
  if (!span.children.empty()) {
    writer->Key("spans").BeginArray();
    for (const TraceSpan& child : span.children) {
      WriteSpanJson(child, writer);
    }
    writer->EndArray();
  }
  writer->EndObject();
}

std::string TraceToJson(const RunTrace& trace) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("trace");
  WriteSpanJson(trace.root, &writer);
  writer.EndObject();
  return writer.Take();
}

namespace {

void RenderSpanText(const TraceSpan& span, size_t depth, std::string* out) {
  out->append(2 * depth, ' ');
  out->append(span.name);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  %.3f ms",
                static_cast<double>(span.duration_ns) / 1e6);
  out->append(buf);
  for (const TraceAttr& attr : span.attrs) {
    out->push_back(' ');
    out->append(attr.key);
    out->push_back('=');
    switch (attr.kind) {
      case TraceAttr::Kind::kUint:
        out->append(std::to_string(attr.u));
        break;
      case TraceAttr::Kind::kInt:
        out->append(std::to_string(attr.i));
        break;
      case TraceAttr::Kind::kFloat:
        std::snprintf(buf, sizeof(buf), "%g", attr.f);
        out->append(buf);
        break;
      case TraceAttr::Kind::kText:
        out->append(attr.text);
        break;
    }
  }
  out->push_back('\n');
  for (const TraceSpan& child : span.children) {
    RenderSpanText(child, depth + 1, out);
  }
}

}  // namespace

std::string RenderTraceText(const RunTrace& trace) {
  std::string out;
  RenderSpanText(trace.root, 0, &out);
  return out;
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("metrics").BeginObject();
  writer.Key("counters").BeginObject();
  for (const auto& e : snapshot.counters) {
    writer.Key(e.name).Uint(e.value);
  }
  writer.EndObject();
  writer.Key("gauges").BeginObject();
  for (const auto& e : snapshot.gauges) {
    writer.Key(e.name).Double(e.value);
  }
  writer.EndObject();
  writer.Key("histograms").BeginObject();
  for (const auto& e : snapshot.histograms) {
    writer.Key(e.name).BeginObject();
    writer.Key("count").Uint(e.count);
    writer.Key("sum").Uint(e.sum);
    writer.Key("buckets").BeginArray();
    for (const auto& [le, count] : e.buckets) {
      writer.BeginObject();
      writer.Key("le").Uint(le);
      writer.Key("count").Uint(count);
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
  writer.EndObject();
  return writer.Take();
}

std::string OpenMetricsName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

namespace {

// One "%.*g" double in OpenMetrics sample syntax (no JSON null fallback:
// exposition uses literal NaN/Inf spellings, though our metrics never emit
// them in practice).
void AppendOmDouble(double value, std::string* out) {
  if (std::isnan(value)) {
    out->append("NaN");
    return;
  }
  if (std::isinf(value)) {
    out->append(value > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, value);
  out->append(buf);
}

}  // namespace

std::string MetricsToOpenMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& e : snapshot.counters) {
    std::string name = OpenMetricsName(e.name);
    // OpenMetrics: the counter sample is <family>_total, and the family name
    // itself must not end in _total — strip one if the source name has it.
    constexpr std::string_view kTotal = "_total";
    if (name.size() > kTotal.size() &&
        name.compare(name.size() - kTotal.size(), kTotal.size(), kTotal) ==
            0) {
      name.resize(name.size() - kTotal.size());
    }
    out.append("# TYPE ").append(name).append(" counter\n");
    out.append(name).append("_total ").append(std::to_string(e.value));
    out.push_back('\n');
  }
  for (const auto& e : snapshot.gauges) {
    const std::string name = OpenMetricsName(e.name);
    out.append("# TYPE ").append(name).append(" gauge\n");
    out.append(name).push_back(' ');
    AppendOmDouble(e.value, &out);
    out.push_back('\n');
  }
  for (const auto& e : snapshot.histograms) {
    const std::string name = OpenMetricsName(e.name);
    out.append("# TYPE ").append(name).append(" histogram\n");
    uint64_t cumulative = 0;
    for (const auto& [le, count] : e.buckets) {
      cumulative += count;
      out.append(name).append("_bucket{le=\"");
      out.append(std::to_string(le));
      out.append("\"} ").append(std::to_string(cumulative));
      out.push_back('\n');
    }
    out.append(name).append("_bucket{le=\"+Inf\"} ");
    out.append(std::to_string(e.count));
    out.push_back('\n');
    out.append(name).append("_sum ").append(std::to_string(e.sum));
    out.push_back('\n');
    out.append(name).append("_count ").append(std::to_string(e.count));
    out.push_back('\n');
  }
  out.append("# EOF\n");
  return out;
}

std::string ConsumeMetricsOutFlag(int* argc, char** argv) {
  static constexpr char kPrefix[] = "--metrics_out=";
  std::string path;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strncmp(argv[r], kPrefix, sizeof(kPrefix) - 1) == 0) {
      path = argv[r] + sizeof(kPrefix) - 1;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  argv[w] = nullptr;
  return path;
}

Status WriteMetricsJsonFile(const std::string& path,
                            const MetricRegistry& registry) {
  const std::string json = MetricsToJson(registry.Snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open metrics output file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool newline_ok = std::fputc('\n', f) != EOF;
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !newline_ok || !close_ok) {
    return Status::Internal("short write to metrics output file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace pqe
