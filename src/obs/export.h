#ifndef PQE_OBS_EXPORT_H_
#define PQE_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace pqe {
namespace obs {

/// A minimal streaming JSON writer (hand-rolled; the library takes no
/// third-party dependencies). Tracks nesting and comma placement; the caller
/// supplies a well-formed Begin/End/Key sequence. Strings are escaped per
/// RFC 8259; non-finite doubles serialize as null (JSON has no NaN/Inf).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document built so far; resets the writer.
  std::string Take();

 private:
  void BeforeValue();
  std::string out_;
  // One entry per open container: true once a child was emitted (a comma is
  // needed before the next one).
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// Appends `text` to `out` with JSON string escaping (no surrounding quotes).
void JsonEscape(std::string_view text, std::string* out);

/// Serializes a trace as {"trace": {span}} where each span object is
/// {"name", "start_ns", "dur_ns", "attrs": {...}, "spans": [...]}.
/// Schema documented in docs/observability.md.
std::string TraceToJson(const RunTrace& trace);

/// Serializes just the span tree (the value of the "trace" key above).
void WriteSpanJson(const TraceSpan& span, JsonWriter* writer);

/// Human-readable indented rendering of a trace for terminal output.
std::string RenderTraceText(const RunTrace& trace);

/// Serializes a metrics snapshot as
/// {"metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}}.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Serializes a metrics snapshot in OpenMetrics text exposition format
/// (Prometheus-compatible): dotted metric names are sanitized to
/// [a-zA-Z0-9_:], counters get the `_total` suffix, histograms emit
/// cumulative `_bucket{le="..."}` samples ending in `le="+Inf"` plus `_sum`
/// and `_count`, and the document terminates with `# EOF`.
std::string MetricsToOpenMetrics(const MetricsSnapshot& snapshot);

/// Sanitizes a dotted metric name into an OpenMetrics identifier: every
/// character outside [a-zA-Z0-9_:] becomes '_', and a leading digit gets a
/// '_' prefix.
std::string OpenMetricsName(std::string_view name);

/// Serializes any stats struct exposing
/// `ForEachField(fn(const char* name, uint64-convertible value))` as a flat
/// JSON object — the single serialization point that keeps exports in sync
/// with the struct definition (see CountStats in counting/config.h).
template <typename Stats>
std::string StatsToJson(const Stats& stats) {
  JsonWriter writer;
  writer.BeginObject();
  stats.ForEachField([&writer](const char* name, uint64_t value) {
    writer.Key(name).Uint(value);
  });
  writer.EndObject();
  return writer.Take();
}

/// Removes a `--metrics_out=FILE` argument from argv (if present) and
/// returns FILE ("" when absent). Call before any other flag parsing; pairs
/// with WriteMetricsJsonFile at exit. Shared by the bench binaries.
std::string ConsumeMetricsOutFlag(int* argc, char** argv);

/// Writes the registry's snapshot as JSON to `path` (atomically enough for
/// bench consumption: truncate + write + close).
Status WriteMetricsJsonFile(const std::string& path,
                            const MetricRegistry& registry =
                                MetricRegistry::Global());

}  // namespace obs
}  // namespace pqe

#endif  // PQE_OBS_EXPORT_H_
