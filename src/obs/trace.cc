#include "obs/trace.h"

#include <chrono>
#include <utility>

namespace pqe {
namespace obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-thread collection state. `stack` holds the chain of open spans,
// innermost last; new spans attach to stack.back(), so a parent's children
// vector can only grow while no descendant pointer into it is live (the
// stack discipline makes sibling insertion under an open span impossible),
// keeping the raw pointers stable.
struct ThreadTraceContext {
  RunTrace* trace = nullptr;
  uint64_t t0_ns = 0;
  std::vector<TraceSpan*> stack;
};

thread_local ThreadTraceContext g_ctx;

}  // namespace

TraceAttr TraceAttr::Uint(std::string key, uint64_t value) {
  TraceAttr a;
  a.key = std::move(key);
  a.kind = Kind::kUint;
  a.u = value;
  return a;
}

TraceAttr TraceAttr::Int(std::string key, int64_t value) {
  TraceAttr a;
  a.key = std::move(key);
  a.kind = Kind::kInt;
  a.i = value;
  return a;
}

TraceAttr TraceAttr::Float(std::string key, double value) {
  TraceAttr a;
  a.key = std::move(key);
  a.kind = Kind::kFloat;
  a.f = value;
  return a;
}

TraceAttr TraceAttr::Text(std::string key, std::string value) {
  TraceAttr a;
  a.key = std::move(key);
  a.kind = Kind::kText;
  a.text = std::move(value);
  return a;
}

const TraceSpan* TraceSpan::Find(std::string_view span_name) const {
  if (name == span_name) return this;
  for (const TraceSpan& child : children) {
    if (const TraceSpan* hit = child.Find(span_name)) return hit;
  }
  return nullptr;
}

const TraceAttr* TraceSpan::FindAttr(std::string_view attr_key) const {
  for (const TraceAttr& a : attrs) {
    if (a.key == attr_key) return &a;
  }
  return nullptr;
}

size_t TraceSpan::TreeSize() const {
  size_t total = 1;
  for (const TraceSpan& child : children) total += child.TreeSize();
  return total;
}

TraceSession::TraceSession(std::string root_name) {
  trace_.root.name = std::move(root_name);
  t0_ns_ = NowNs();
  if (g_ctx.trace == nullptr) {
    active_ = true;
    g_ctx.trace = &trace_;
    g_ctx.t0_ns = t0_ns_;
    g_ctx.stack.clear();
    g_ctx.stack.push_back(&trace_.root);
  }
}

TraceSession::~TraceSession() {
  if (active_ && g_ctx.trace == &trace_) {
    g_ctx.trace = nullptr;
    g_ctx.stack.clear();
  }
}

RunTrace TraceSession::Finish() {
  if (finished_) return RunTrace{};
  finished_ = true;
  trace_.root.duration_ns = NowNs() - t0_ns_;
  if (active_ && g_ctx.trace == &trace_) {
    g_ctx.trace = nullptr;
    g_ctx.stack.clear();
  }
  active_ = false;
  return std::move(trace_);
}

#if PQE_ENABLE_TRACING

ScopedSpan::ScopedSpan(const char* name) {
  if (g_ctx.trace == nullptr) return;
  TraceSpan* parent = g_ctx.stack.back();
  parent->children.emplace_back();
  node_ = &parent->children.back();
  node_->name = name;
  open_ns_ = NowNs();
  node_->start_ns = open_ns_ - g_ctx.t0_ns;
  g_ctx.stack.push_back(node_);
}

ScopedSpan::~ScopedSpan() {
  if (node_ == nullptr) return;
  // The session may have been finished (or destroyed) while this span was
  // open, which moves/frees the node storage; touch it only while the
  // thread's stack still tracks this span.
  if (!g_ctx.stack.empty() && g_ctx.stack.back() == node_) {
    node_->duration_ns = NowNs() - open_ns_;
    g_ctx.stack.pop_back();
  }
}

void ScopedSpan::AttrUint(const char* key, uint64_t value) {
  if (node_) node_->attrs.push_back(TraceAttr::Uint(key, value));
}

void ScopedSpan::AttrInt(const char* key, int64_t value) {
  if (node_) node_->attrs.push_back(TraceAttr::Int(key, value));
}

void ScopedSpan::AttrFloat(const char* key, double value) {
  if (node_) node_->attrs.push_back(TraceAttr::Float(key, value));
}

void ScopedSpan::AttrText(const char* key, std::string value) {
  if (node_) node_->attrs.push_back(TraceAttr::Text(key, std::move(value)));
}

void SpanAttrUint(const char* key, uint64_t value) {
  if (g_ctx.trace) g_ctx.stack.back()->attrs.push_back(
      TraceAttr::Uint(key, value));
}

void SpanAttrInt(const char* key, int64_t value) {
  if (g_ctx.trace) g_ctx.stack.back()->attrs.push_back(
      TraceAttr::Int(key, value));
}

void SpanAttrFloat(const char* key, double value) {
  if (g_ctx.trace) g_ctx.stack.back()->attrs.push_back(
      TraceAttr::Float(key, value));
}

void SpanAttrText(const char* key, std::string value) {
  if (g_ctx.trace) g_ctx.stack.back()->attrs.push_back(
      TraceAttr::Text(key, std::move(value)));
}

#endif  // PQE_ENABLE_TRACING

}  // namespace obs
}  // namespace pqe
