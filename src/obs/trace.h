#ifndef PQE_OBS_TRACE_H_
#define PQE_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// Compile-time switch for the span instrumentation. The build sets it via
/// the PQE_ENABLE_TRACING CMake option (default ON); when 0, PQE_TRACE_SPAN
/// and the attribute calls compile to empty inline bodies and the library
/// carries no per-call-site cost. TraceSession itself keeps working either
/// way (it still produces a root span with wall time), so callers never need
/// to #ifdef.
#if !defined(PQE_ENABLE_TRACING)
#define PQE_ENABLE_TRACING 1
#endif

namespace pqe {
namespace obs {

/// True iff span instrumentation is compiled into this build.
constexpr bool TracingCompiledIn() { return PQE_ENABLE_TRACING != 0; }

/// One key/value attribute attached to a span (states, strata, pool sizes,
/// method names, ...). A small tagged value; no std::variant so the JSON
/// writer and the hot path stay trivial.
struct TraceAttr {
  enum class Kind { kUint, kInt, kFloat, kText };

  std::string key;
  Kind kind = Kind::kUint;
  uint64_t u = 0;
  int64_t i = 0;
  double f = 0.0;
  std::string text;

  static TraceAttr Uint(std::string key, uint64_t value);
  static TraceAttr Int(std::string key, int64_t value);
  static TraceAttr Float(std::string key, double value);
  static TraceAttr Text(std::string key, std::string value);
};

/// One node of the trace tree: a named region of the pipeline with wall
/// time, attributes, and child spans in execution order.
struct TraceSpan {
  std::string name;
  uint64_t start_ns = 0;     // relative to the session start
  uint64_t duration_ns = 0;  // 0 while the span is still open
  std::vector<TraceAttr> attrs;
  std::vector<TraceSpan> children;

  /// Depth-first search for the first span with this name (this node
  /// included). Returns nullptr if absent.
  const TraceSpan* Find(std::string_view span_name) const;

  /// The attribute with this key, or nullptr.
  const TraceAttr* FindAttr(std::string_view attr_key) const;

  /// Total number of spans in this subtree (this node included).
  size_t TreeSize() const;
};

/// A finished trace: the root span covers the whole traced region.
struct RunTrace {
  TraceSpan root;
};

/// Starts trace collection on the calling thread (RAII). While a session is
/// active, PQE_TRACE_SPAN call sites attach spans to it; without one they
/// are a thread-local null check. At most one session per thread is active:
/// a nested session is inert (active() == false) and spans keep attaching
/// to the outer one, so library code can be composed freely.
///
/// Traces are per-thread by design — construct one engine (and one session)
/// per thread, matching PqeEngine's thread-compatibility contract.
class TraceSession {
 public:
  explicit TraceSession(std::string root_name);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// True iff this session owns collection on this thread.
  bool active() const { return active_; }

  /// Closes the root span and returns the finished trace. Collection stops;
  /// further Finish() calls return an empty trace. On an inert (nested)
  /// session, returns a trace with only the named root.
  RunTrace Finish();

 private:
  bool active_ = false;
  bool finished_ = false;
  RunTrace trace_;
  uint64_t t0_ns_ = 0;  // absolute steady-clock origin of the session
};

/// RAII span guard. Construct via PQE_TRACE_SPAN (anonymous) or
/// PQE_TRACE_SPAN_VAR (named, for attaching attributes). All methods are
/// no-ops when no session is active on this thread or when tracing is
/// compiled out.
class ScopedSpan {
 public:
#if PQE_ENABLE_TRACING
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  void AttrUint(const char* key, uint64_t value);
  void AttrInt(const char* key, int64_t value);
  void AttrFloat(const char* key, double value);
  void AttrText(const char* key, std::string value);
  bool active() const { return node_ != nullptr; }

 private:
  TraceSpan* node_ = nullptr;
  uint64_t open_ns_ = 0;
#else
  explicit ScopedSpan(const char*) {}
  void AttrUint(const char*, uint64_t) {}
  void AttrInt(const char*, int64_t) {}
  void AttrFloat(const char*, double) {}
  void AttrText(const char*, std::string) {}
  bool active() const { return false; }
#endif

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

/// Attach an attribute to the innermost open span of the calling thread's
/// session (the root span when no PQE_TRACE_SPAN is open). No-ops without an
/// active session; compiled out entirely with PQE_ENABLE_TRACING=0.
#if PQE_ENABLE_TRACING
void SpanAttrUint(const char* key, uint64_t value);
void SpanAttrInt(const char* key, int64_t value);
void SpanAttrFloat(const char* key, double value);
void SpanAttrText(const char* key, std::string value);
#else
inline void SpanAttrUint(const char*, uint64_t) {}
inline void SpanAttrInt(const char*, int64_t) {}
inline void SpanAttrFloat(const char*, double) {}
inline void SpanAttrText(const char*, std::string) {}
#endif

}  // namespace obs
}  // namespace pqe

#define PQE_OBS_CONCAT_INNER(a, b) a##b
#define PQE_OBS_CONCAT(a, b) PQE_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope as a span named `name` (a string literal, by
/// convention "module.stage", e.g. "hd.decompose").
#define PQE_TRACE_SPAN(name) \
  ::pqe::obs::ScopedSpan PQE_OBS_CONCAT(pqe_obs_span_, __LINE__)(name)

/// Same, but binds the guard to `var` so attributes can be attached.
#define PQE_TRACE_SPAN_VAR(var, name) ::pqe::obs::ScopedSpan var(name)

#endif  // PQE_OBS_TRACE_H_
