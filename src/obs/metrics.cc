#include "obs/metrics.h"

#include <bit>
#include <cstring>

namespace pqe {
namespace obs {

uint64_t Gauge::Encode(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::Decode(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void Histogram::Observe(uint64_t sample) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  buckets_[static_cast<size_t>(std::bit_width(sample))].fetch_add(
      1, std::memory_order_relaxed);
}

uint64_t Histogram::BucketUpperBound(size_t bucket) {
  if (bucket >= 64) return ~uint64_t{0};
  return (uint64_t{1} << bucket) - 1;
}

uint64_t Histogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return uint64_t{1} << 63;
  return uint64_t{1} << (bucket - 1);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double MetricsSnapshot::HistogramEntry::Quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  // Rank of the q-quantile sample, 1-based: ⌈q·count⌉ clamped into [1, count].
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (const auto& [le, bucket_count] : buckets) {
    cumulative += bucket_count;
    if (cumulative >= rank) {
      // Linearly interpolate inside the bucket's inclusive [lower, le] range
      // by the rank's position among this bucket's samples.
      const double lower =
          le == 0 ? 0.0 : static_cast<double>(le) / 2.0 + 0.5;  // (le+1)/2
      const uint64_t rank_in_bucket = rank - (cumulative - bucket_count);
      const double frac = bucket_count <= 1
                              ? 1.0
                              : static_cast<double>(rank_in_bucket - 1) /
                                    static_cast<double>(bucket_count - 1);
      return lower + frac * (static_cast<double>(le) - lower);
    }
  }
  return static_cast<double>(buckets.back().first);
}

MetricsSnapshot::HistogramEntry MetricsSnapshot::SnapshotHistogram(
    std::string name, const Histogram& histogram) {
  HistogramEntry e;
  e.name = std::move(name);
  e.count = histogram.Count();
  e.sum = histogram.Sum();
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t c = histogram.BucketCount(b);
    if (c > 0) e.buckets.emplace_back(Histogram::BucketUpperBound(b), c);
  }
  return e;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterEntry& e : counters) {
    if (e.name == name) return e.value;
  }
  return 0;
}

const MetricsSnapshot::HistogramEntry* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramEntry& e : histograms) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter& MetricRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.push_back(
        MetricsSnapshot::SnapshotHistogram(name, *hist));
  }
  return snap;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed
  return *registry;
}

}  // namespace obs
}  // namespace pqe
