#ifndef PQE_OBS_METRICS_H_
#define PQE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pqe {
namespace obs {

/// A monotonically increasing counter. Increments are relaxed atomic adds —
/// cheap enough for per-run (not per-sample) accounting on the hot path.
/// Handles returned by MetricRegistry stay valid for the registry's
/// lifetime, so call sites can cache them in function-local statics.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-written-wins double value (configuration echoes, sizes, rates).
class Gauge {
 public:
  void Set(double value) { bits_.store(Encode(value), std::memory_order_relaxed); }
  double Value() const { return Decode(bits_.load(std::memory_order_relaxed)); }
  void Reset() { Set(0.0); }

 private:
  // Stored as bit-cast uint64 so plain atomic loads/stores suffice.
  static uint64_t Encode(double v);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

/// A log2-bucketed histogram of uint64 samples: bucket i counts samples
/// whose bit width is i (bucket 0 holds the sample 0, bucket i covers
/// [2^(i-1), 2^i)). Fixed storage, lock-free observes.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  void Observe(uint64_t sample);
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of a bucket (2^bucket − 1).
  static uint64_t BucketUpperBound(size_t bucket);
  /// Inclusive lower bound of a bucket (0, then 2^(bucket−1)).
  static uint64_t BucketLowerBound(size_t bucket);
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// A point-in-time copy of every registered metric, safe to serialize or
/// diff while the pipeline keeps running.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    /// (inclusive upper bound, count) for non-empty buckets only.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;

    /// The q-quantile (q ∈ [0, 1]) extracted exactly from the bucket data:
    /// the bucket holding rank ⌈q·count⌉ is located by exact integer
    /// cumulative counts, then the value is linearly interpolated between
    /// the bucket's inclusive bounds (the only information the log2 buckets
    /// retain). Returns 0 for an empty histogram; q ≥ 1 returns the top
    /// bucket's upper bound.
    double Quantile(double q) const;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  /// Copies one histogram into snapshot form (non-empty buckets only) —
  /// the same representation MetricRegistry::Snapshot uses, reusable for
  /// free-standing Histogram members (see serve::ServiceTelemetry).
  static HistogramEntry SnapshotHistogram(std::string name,
                                          const Histogram& histogram);

  /// Lookup helpers for tests and tools; 0 / nullptr when absent.
  uint64_t CounterValue(std::string_view name) const;
  const HistogramEntry* FindHistogram(std::string_view name) const;
};

/// A registry of named metrics. Registration (first GetX for a name) takes a
/// mutex; subsequent use of the returned handle is lock-free. Names are
/// dotted lowercase paths, e.g. "pqe.count_nfta.attempts".
///
/// Concurrency contract (relaxed atomics, by design): Snapshot() and
/// Reset() are safe to call at any time while hot-path Add()/Observe()/Set()
/// calls race with them on other threads — every individual load/store is an
/// atomic on one word, so values are never torn and no call ever blocks an
/// Add(). What the relaxed ordering does NOT give:
///   - Snapshot() is not a point-in-time cut across metrics (or across one
///     histogram's count/sum/buckets): increments landing while the copy
///     runs may appear in some entries and not others, so a mid-traffic
///     histogram snapshot can transiently show count ≠ Σ bucket counts.
///   - Reset() concurrent with Add() may zero before or after that add
///     lands; the increment is either kept or dropped whole, never split.
/// Quiesce the workload first when an exact cut matters (tests, bench
/// cells); monitoring readers get monotonic counters and bounded staleness,
/// which is what an exposition endpoint needs. Covered under TSan by
/// obs_test's SnapshotAndResetRaceWithHotPathAdds.
class MetricRegistry {
 public:
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Copies every metric, sorted by name. See the class contract for what a
  /// concurrent snapshot does and does not guarantee.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric. Handles remain valid; safe to interleave with
  /// concurrent Add()/Observe() (see the class contract).
  void Reset();

  /// The process-wide registry used by the library's instrumentation.
  static MetricRegistry& Global();

 private:
  mutable std::mutex mu_;
  // Node-based maps: handle addresses are stable across registration.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace pqe

#endif  // PQE_OBS_METRICS_H_
