#ifndef PQE_OBS_METRICS_H_
#define PQE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pqe {
namespace obs {

/// A monotonically increasing counter. Increments are relaxed atomic adds —
/// cheap enough for per-run (not per-sample) accounting on the hot path.
/// Handles returned by MetricRegistry stay valid for the registry's
/// lifetime, so call sites can cache them in function-local statics.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-written-wins double value (configuration echoes, sizes, rates).
class Gauge {
 public:
  void Set(double value) { bits_.store(Encode(value), std::memory_order_relaxed); }
  double Value() const { return Decode(bits_.load(std::memory_order_relaxed)); }
  void Reset() { Set(0.0); }

 private:
  // Stored as bit-cast uint64 so plain atomic loads/stores suffice.
  static uint64_t Encode(double v);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

/// A log2-bucketed histogram of uint64 samples: bucket i counts samples
/// whose bit width is i (bucket 0 holds the sample 0, bucket i covers
/// [2^(i-1), 2^i)). Fixed storage, lock-free observes.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  void Observe(uint64_t sample);
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of a bucket (2^bucket − 1).
  static uint64_t BucketUpperBound(size_t bucket);
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// A point-in-time copy of every registered metric, safe to serialize or
/// diff while the pipeline keeps running.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    /// (inclusive upper bound, count) for non-empty buckets only.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  /// Lookup helpers for tests and tools; 0 / nullptr when absent.
  uint64_t CounterValue(std::string_view name) const;
  const HistogramEntry* FindHistogram(std::string_view name) const;
};

/// A registry of named metrics. Registration (first GetX for a name) takes a
/// mutex; subsequent use of the returned handle is lock-free. Names are
/// dotted lowercase paths, e.g. "pqe.count_nfta.attempts".
class MetricRegistry {
 public:
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Copies every metric, sorted by name.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric. Handles remain valid.
  void Reset();

  /// The process-wide registry used by the library's instrumentation.
  static MetricRegistry& Global();

 private:
  mutable std::mutex mu_;
  // Node-based maps: handle addresses are stable across registration.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace pqe

#endif  // PQE_OBS_METRICS_H_
