#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace pqe {
namespace obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.boolean_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

namespace {

// Recursive-descent parser over a bounded view. Depth is capped so a hostile
// document cannot overflow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    PQE_ASSIGN_OR_RETURN(JsonValue v, Value(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  Result<JsonValue> Value(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"': {
        PQE_ASSIGN_OR_RETURN(std::string s, String());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        PQE_RETURN_IF_ERROR(Literal("true"));
        return JsonValue::MakeBool(true);
      case 'f':
        PQE_RETURN_IF_ERROR(Literal("false"));
        return JsonValue::MakeBool(false);
      case 'n':
        PQE_RETURN_IF_ERROR(Literal("null"));
        return JsonValue::MakeNull();
      default:
        return Number();
    }
  }

  Result<JsonValue> Object(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue::MakeObject(std::move(members));
    }
    while (true) {
      SkipWs();
      if (Peek() != '"') return Error("expected object key");
      PQE_ASSIGN_OR_RETURN(std::string key, String());
      SkipWs();
      if (Peek() != ':') return Error("expected ':' after object key");
      ++pos_;
      SkipWs();
      PQE_ASSIGN_OR_RETURN(JsonValue v, Value(depth + 1));
      members.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return JsonValue::MakeObject(std::move(members));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> Array(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue::MakeArray(std::move(items));
    }
    while (true) {
      SkipWs();
      PQE_ASSIGN_OR_RETURN(JsonValue v, Value(depth + 1));
      items.push_back(std::move(v));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return JsonValue::MakeArray(std::move(items));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> String() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Error("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          PQE_ASSIGN_OR_RETURN(uint32_t cp, HexQuad());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            PQE_ASSIGN_OR_RETURN(uint32_t low, HexQuad());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<uint32_t> HexQuad() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return Error("truncated \\u escape");
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<JsonValue> Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("invalid number");
    }
    // RFC 8259: the integer part is "0" or a nonzero digit followed by
    // digits — no leading zeros.
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    // The slice is a valid JSON number, which is also a valid strtod input;
    // strtod gives correctly-rounded doubles, so max_digits10 output from
    // JsonWriter::Double round-trips bit-exactly.
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::MakeNumber(std::strtod(token.c_str(), nullptr));
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    return Status::OK();
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace obs
}  // namespace pqe
