#ifndef PQE_UTIL_STATUS_H_
#define PQE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace pqe {

/// Error categories used across the library. Modelled on the Arrow/RocksDB
/// status idiom: library code never throws; fallible operations return a
/// Status (or Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotSupported,      // input outside the supported fragment (e.g. self-joins)
  kNotFound,          // lookup miss (relation, vertex, ...)
  kOutOfRange,        // numeric/positional overflow
  kResourceExhausted, // configured budget exceeded (width, states, samples)
  kDeadlineExceeded,  // cooperative cancellation: deadline hit mid-run
  kUnavailable,       // a serving shard/transport was unreachable (retryable)
  kPartialResult,     // some answers of a merged result were lost with their
                      // shard; the surviving ones are complete and exact
  kInternal,          // invariant violation: indicates a library bug
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success/error value. The OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status PartialResult(std::string msg) {
    return Status(StatusCode::kPartialResult, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace pqe

/// Propagates a non-OK status to the caller. Usable in functions returning
/// Status or Result<T> (Result is constructible from Status).
#define PQE_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::pqe::Status _st = (expr);               \
    if (!_st.ok()) return _st;                \
  } while (false)

#endif  // PQE_UTIL_STATUS_H_
