#ifndef PQE_UTIL_BIGINT_H_
#define PQE_UTIL_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace pqe {

struct BigUintDivMod;

/// Arbitrary-precision unsigned integer. Used for the exact arithmetic in the
/// PQE reduction (Section 5 of the paper): the common denominator d = Π d_i
/// and the tree-count scaling factors can be astronomically large, far beyond
/// any fixed-width type.
///
/// Representation: little-endian vector of 32-bit limbs with no trailing zero
/// limbs; the value zero is the empty vector.
class BigUint {
 public:
  /// Constructs zero.
  BigUint() = default;
  /// Constructs from a machine word.
  explicit BigUint(uint64_t value);

  BigUint(const BigUint&) = default;
  BigUint& operator=(const BigUint&) = default;
  BigUint(BigUint&&) = default;
  BigUint& operator=(BigUint&&) = default;

  /// Parses a non-empty base-10 digit string.
  static Result<BigUint> FromDecimalString(const std::string& s);

  /// Returns 2^exponent.
  static BigUint PowerOfTwo(uint64_t exponent);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOne() const { return limbs_.size() == 1 && limbs_[0] == 1; }

  /// Number of significant bits (0 for zero).
  size_t BitLength() const;

  /// Value of bit i (i < BitLength()).
  bool Bit(size_t i) const;

  /// Three-way comparison: negative/zero/positive as *this <,==,> other.
  int Compare(const BigUint& other) const;

  BigUint Add(const BigUint& other) const;
  /// Requires *this >= other (checked).
  BigUint Sub(const BigUint& other) const;
  BigUint Mul(const BigUint& other) const;
  BigUint MulU64(uint64_t other) const;
  BigUint ShiftLeft(size_t bits) const;
  BigUint ShiftRight(size_t bits) const;

  /// Long division; requires divisor non-zero (checked). Returns {quotient,
  /// remainder}.
  BigUintDivMod DivMod(const BigUint& divisor) const;

  /// Greatest common divisor (Euclid). Gcd(0, x) == x.
  static BigUint Gcd(BigUint a, BigUint b);

  /// Lossy conversion; returns +inf if the value exceeds double range.
  double ToDouble() const;

  /// Fits in uint64? If yes ToU64 is exact.
  bool FitsUint64() const { return limbs_.size() <= 2; }
  uint64_t ToU64() const;

  /// Base-10 rendering ("0" for zero).
  std::string ToDecimalString() const;

  bool operator==(const BigUint& o) const { return Compare(o) == 0; }
  bool operator!=(const BigUint& o) const { return Compare(o) != 0; }
  bool operator<(const BigUint& o) const { return Compare(o) < 0; }
  bool operator<=(const BigUint& o) const { return Compare(o) <= 0; }
  bool operator>(const BigUint& o) const { return Compare(o) > 0; }
  bool operator>=(const BigUint& o) const { return Compare(o) >= 0; }

 private:
  void Trim();

  std::vector<uint32_t> limbs_;
};

/// Quotient and remainder of BigUint::DivMod.
struct BigUintDivMod {
  BigUint quotient;
  BigUint remainder;
};

/// Computes the ratio a / b as a double without materializing the quotient;
/// correct to ~52 bits even when both operands have millions of bits.
/// b must be non-zero (checked).
double BigRatioToDouble(const BigUint& a, const BigUint& b);

/// Non-negative arbitrary-precision rational. Used for exact probabilities
/// (the paper assumes rational fact labels w_i / d_i) and for exact
/// possible-world sums in the test oracles.
class BigRational {
 public:
  /// Constructs zero (0/1).
  BigRational() : num_(), den_(1) {}
  /// num/den; den must be non-zero (checked). Not normalized automatically;
  /// call Normalize() or use the comparison helpers which cross-multiply.
  BigRational(BigUint num, BigUint den);
  /// Convenience for small rationals.
  BigRational(uint64_t num, uint64_t den);

  static BigRational Zero() { return BigRational(); }
  static BigRational One() { return BigRational(1, 1); }

  const BigUint& numerator() const { return num_; }
  const BigUint& denominator() const { return den_; }

  bool IsZero() const { return num_.IsZero(); }

  BigRational Add(const BigRational& o) const;
  /// Requires *this >= other as rationals (checked).
  BigRational Sub(const BigRational& o) const;
  BigRational Mul(const BigRational& o) const;
  /// Requires o non-zero (checked).
  BigRational Div(const BigRational& o) const;

  /// Three-way comparison by cross-multiplication.
  int Compare(const BigRational& o) const;

  /// Divides numerator and denominator by their gcd.
  BigRational Normalized() const;

  double ToDouble() const { return BigRatioToDouble(num_, den_); }

  /// "num/den".
  std::string ToString() const;

  bool operator==(const BigRational& o) const { return Compare(o) == 0; }
  bool operator!=(const BigRational& o) const { return Compare(o) != 0; }
  bool operator<(const BigRational& o) const { return Compare(o) < 0; }
  bool operator<=(const BigRational& o) const { return Compare(o) <= 0; }

 private:
  BigUint num_;
  BigUint den_;
};

}  // namespace pqe

#endif  // PQE_UTIL_BIGINT_H_
