#ifndef PQE_UTIL_CANCEL_H_
#define PQE_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace pqe {

/// Cooperative cancellation handle shared between a request owner and the
/// sampling loops doing its work (CountNFA/CountNFTA strata, Karp–Luby
/// shards). Workers poll Expired() at loop granularity — a few hundred
/// attempts or samples — and abort with StatusCode::kDeadlineExceeded; the
/// token never preempts anything, so a non-cooperating code path simply runs
/// to completion.
///
/// A token is safe to share across threads: the cancelled flag and the
/// progress counter are atomics, and the deadline is immutable after
/// construction. Expired() latches — once it has returned true it keeps
/// returning true, even if the clock could no longer agree — so every worker
/// of a run observes the same verdict.
///
/// Progress accounting: workers call AddProgress() for each completed unit
/// (stratum, sample block), giving the request owner a cheap partial-work
/// figure to report alongside a deadline-exceeded status. Units are
/// layer-defined and only meaningful relative to the same run.
class CancelToken {
 public:
  /// A token with no deadline; expires only via Cancel() (or its parent).
  CancelToken() = default;

  /// A token expiring `budget` from now on the steady clock. `parent`, when
  /// set, chains an outer token: this token is also expired whenever the
  /// parent is. The parent must outlive this token.
  explicit CancelToken(std::chrono::nanoseconds budget,
                       const CancelToken* parent = nullptr)
      : deadline_ns_(NowNanos() + budget.count()), parent_(parent) {}

  static CancelToken AfterMillis(uint64_t ms,
                                 const CancelToken* parent = nullptr) {
    return CancelToken(std::chrono::milliseconds(ms), parent);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation explicitly (thread-safe, idempotent).
  void Cancel() const { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once the token is cancelled, its deadline has passed, or its
  /// parent has expired. Latching: the first true is sticky.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (parent_ != nullptr && parent_->Expired()) {
      Cancel();
      return true;
    }
    if (deadline_ns_ != 0 && NowNanos() >= deadline_ns_) {
      Cancel();
      return true;
    }
    return false;
  }

  /// Records `n` completed work units (thread-safe).
  void AddProgress(uint64_t n) const {
    progress_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Work units completed so far across all workers.
  uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }

  /// True when the token was constructed with a deadline.
  bool has_deadline() const { return deadline_ns_ != 0; }

 private:
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  mutable std::atomic<bool> cancelled_{false};
  int64_t deadline_ns_ = 0;  // steady-clock ns; 0 = no deadline
  const CancelToken* parent_ = nullptr;
  mutable std::atomic<uint64_t> progress_{0};
};

}  // namespace pqe

#endif  // PQE_UTIL_CANCEL_H_
