#include "util/extfloat.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace pqe {

void ExtFloat::Normalize() {
  if (mantissa_ == 0.0) {
    exponent_ = 0;
    return;
  }
  int exp = 0;
  mantissa_ = std::frexp(mantissa_, &exp);  // mantissa in [0.5, 1)
  mantissa_ *= 2.0;                         // [1, 2)
  exponent_ += exp - 1;
}

ExtFloat ExtFloat::FromDouble(double value) {
  PQE_CHECK(std::isfinite(value) && value >= 0.0);
  ExtFloat out(value, 0);
  out.Normalize();
  return out;
}

ExtFloat ExtFloat::FromUint64(uint64_t value) {
  return FromDouble(static_cast<double>(value));
}

ExtFloat ExtFloat::FromBigUint(const BigUint& value) {
  if (value.IsZero()) return ExtFloat();
  const size_t bits = value.BitLength();
  if (bits <= 62) return FromUint64(value.ToU64());
  const size_t shift = bits - 62;
  ExtFloat out = FromUint64(value.ShiftRight(shift).ToU64());
  out.exponent_ += static_cast<int64_t>(shift);
  return out;
}

ExtFloat ExtFloat::Mul(const ExtFloat& o) const {
  if (IsZero() || o.IsZero()) return ExtFloat();
  ExtFloat out(mantissa_ * o.mantissa_, exponent_ + o.exponent_);
  out.Normalize();
  return out;
}

ExtFloat ExtFloat::Div(const ExtFloat& o) const {
  PQE_CHECK(!o.IsZero());
  if (IsZero()) return ExtFloat();
  ExtFloat out(mantissa_ / o.mantissa_, exponent_ - o.exponent_);
  out.Normalize();
  return out;
}

ExtFloat ExtFloat::Add(const ExtFloat& o) const {
  if (IsZero()) return o;
  if (o.IsZero()) return *this;
  // Align to the larger exponent; beyond ~64 bits the smaller term vanishes.
  const ExtFloat& hi = exponent_ >= o.exponent_ ? *this : o;
  const ExtFloat& lo = exponent_ >= o.exponent_ ? o : *this;
  int64_t diff = hi.exponent_ - lo.exponent_;
  if (diff > 80) return hi;
  ExtFloat out(hi.mantissa_ + std::ldexp(lo.mantissa_,
                                         -static_cast<int>(diff)),
               hi.exponent_);
  out.Normalize();
  return out;
}

ExtFloat ExtFloat::Scale(double factor) const {
  PQE_CHECK(std::isfinite(factor) && factor >= 0.0);
  if (IsZero() || factor == 0.0) return ExtFloat();
  ExtFloat out(mantissa_ * factor, exponent_);
  out.Normalize();
  return out;
}

int ExtFloat::Compare(const ExtFloat& o) const {
  if (IsZero() && o.IsZero()) return 0;
  if (IsZero()) return -1;
  if (o.IsZero()) return 1;
  if (exponent_ != o.exponent_) return exponent_ < o.exponent_ ? -1 : 1;
  if (mantissa_ != o.mantissa_) return mantissa_ < o.mantissa_ ? -1 : 1;
  return 0;
}

double ExtFloat::ToDouble() const {
  if (IsZero()) return 0.0;
  if (exponent_ > 1023) return HUGE_VAL;
  if (exponent_ < -1073) return 0.0;
  return std::ldexp(mantissa_, static_cast<int>(exponent_));
}

double ExtFloat::Log2() const {
  if (IsZero()) return -HUGE_VAL;
  return std::log2(mantissa_) + static_cast<double>(exponent_);
}

std::string ExtFloat::ToString() const {
  std::ostringstream out;
  if (exponent_ >= -30 && exponent_ <= 62) {
    out << ToDouble();
  } else {
    out << mantissa_ << "*2^" << exponent_;
  }
  return out.str();
}

}  // namespace pqe
