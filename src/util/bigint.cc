#include "util/bigint.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pqe {

namespace {
constexpr uint64_t kLimbBase = 1ULL << 32;
}  // namespace

BigUint::BigUint(uint64_t value) {
  if (value > 0) limbs_.push_back(static_cast<uint32_t>(value & 0xffffffffu));
  if (value >> 32) limbs_.push_back(static_cast<uint32_t>(value >> 32));
}

void BigUint::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Result<BigUint> BigUint::FromDecimalString(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty decimal string");
  BigUint out;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-digit in decimal string: " + s);
    }
    out = out.MulU64(10).Add(BigUint(static_cast<uint64_t>(c - '0')));
  }
  return out;
}

BigUint BigUint::PowerOfTwo(uint64_t exponent) {
  BigUint out;
  size_t limb = static_cast<size_t>(exponent / 32);
  out.limbs_.assign(limb + 1, 0);
  out.limbs_[limb] = 1u << (exponent % 32);
  return out;
}

size_t BigUint::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUint::Bit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

int BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::Add(const BigUint& other) const {
  BigUint out;
  const size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.reserve(n + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_.push_back(static_cast<uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<uint32_t>(carry));
  return out;
}

BigUint BigUint::Sub(const BigUint& other) const {
  PQE_CHECK(Compare(other) >= 0);
  BigUint out;
  out.limbs_.reserve(limbs_.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) diff -= other.limbs_[i];
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<uint32_t>(diff));
  }
  PQE_CHECK(borrow == 0);
  out.Trim();
  return out;
}

BigUint BigUint::Mul(const BigUint& other) const {
  if (IsZero() || other.IsZero()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t a = limbs_[i];
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + a * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + other.limbs_.size();
    while (carry) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

BigUint BigUint::MulU64(uint64_t other) const { return Mul(BigUint(other)); }

BigUint BigUint::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigUint out = *this;
    return out;
  }
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v & 0xffffffffu);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigUint BigUint::ShiftRight(size_t bits) const {
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift > 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Trim();
  return out;
}

BigUintDivMod BigUint::DivMod(const BigUint& divisor) const {
  PQE_CHECK(!divisor.IsZero());
  BigUintDivMod result;
  if (Compare(divisor) < 0) {
    result.remainder = *this;
    return result;
  }
  // Schoolbook binary long division: scan bits of the dividend from the most
  // significant down, shifting the remainder left and subtracting the divisor
  // when it fits. O(bits * limbs) — adequate for the sizes this library sees.
  const size_t nbits = BitLength();
  BigUint quotient;
  quotient.limbs_.assign((nbits + 31) / 32, 0);
  BigUint rem;
  for (size_t i = nbits; i-- > 0;) {
    rem = rem.ShiftLeft(1);
    if (Bit(i)) {
      if (rem.limbs_.empty()) rem.limbs_.push_back(0);
      rem.limbs_[0] |= 1u;
    }
    if (rem.Compare(divisor) >= 0) {
      rem = rem.Sub(divisor);
      quotient.limbs_[i / 32] |= 1u << (i % 32);
    }
  }
  quotient.Trim();
  result.quotient = std::move(quotient);
  result.remainder = std::move(rem);
  return result;
}

BigUint BigUint::Gcd(BigUint a, BigUint b) {
  while (!b.IsZero()) {
    BigUint r = a.DivMod(b).remainder;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

double BigUint::ToDouble() const {
  double out = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * static_cast<double>(kLimbBase) + static_cast<double>(limbs_[i]);
    if (!std::isfinite(out)) return out;
  }
  return out;
}

uint64_t BigUint::ToU64() const {
  PQE_CHECK(FitsUint64());
  uint64_t out = 0;
  if (limbs_.size() >= 2) out = static_cast<uint64_t>(limbs_[1]) << 32;
  if (limbs_.size() >= 1) out |= limbs_[0];
  return out;
}

std::string BigUint::ToDecimalString() const {
  if (IsZero()) return "0";
  // Repeated division by 10^9 (fits in a limb-sized chunk loop).
  std::vector<uint32_t> work(limbs_.begin(), limbs_.end());
  std::string out;
  while (!work.empty()) {
    uint64_t rem = 0;
    for (size_t i = work.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<uint32_t>(cur / 1000000000ULL);
      rem = cur % 1000000000ULL;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < 9; ++d) {
      out.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  std::reverse(out.begin(), out.end());
  return out;
}

double BigRatioToDouble(const BigUint& a, const BigUint& b) {
  PQE_CHECK(!b.IsZero());
  if (a.IsZero()) return 0.0;
  // Align both operands so their top ~62 bits become machine words, then
  // divide; exponent difference restores the scale.
  const size_t abits = a.BitLength();
  const size_t bbits = b.BitLength();
  auto Top64 = [](const BigUint& x, size_t bits) -> double {
    size_t shift = bits > 62 ? bits - 62 : 0;
    return x.ShiftRight(shift).ToDouble();
  };
  const double atop = Top64(a, abits);
  const double btop = Top64(b, bbits);
  const int64_t aexp = abits > 62 ? static_cast<int64_t>(abits) - 62 : 0;
  const int64_t bexp = bbits > 62 ? static_cast<int64_t>(bbits) - 62 : 0;
  return (atop / btop) * std::exp2(static_cast<double>(aexp - bexp));
}

BigRational::BigRational(BigUint num, BigUint den)
    : num_(std::move(num)), den_(std::move(den)) {
  PQE_CHECK(!den_.IsZero());
}

BigRational::BigRational(uint64_t num, uint64_t den)
    : num_(num), den_(den) {
  PQE_CHECK(den != 0);
}

BigRational BigRational::Add(const BigRational& o) const {
  return BigRational(num_.Mul(o.den_).Add(o.num_.Mul(den_)),
                     den_.Mul(o.den_));
}

BigRational BigRational::Sub(const BigRational& o) const {
  BigUint lhs = num_.Mul(o.den_);
  BigUint rhs = o.num_.Mul(den_);
  return BigRational(lhs.Sub(rhs), den_.Mul(o.den_));
}

BigRational BigRational::Mul(const BigRational& o) const {
  return BigRational(num_.Mul(o.num_), den_.Mul(o.den_));
}

BigRational BigRational::Div(const BigRational& o) const {
  PQE_CHECK(!o.num_.IsZero());
  return BigRational(num_.Mul(o.den_), den_.Mul(o.num_));
}

int BigRational::Compare(const BigRational& o) const {
  return num_.Mul(o.den_).Compare(o.num_.Mul(den_));
}

BigRational BigRational::Normalized() const {
  if (num_.IsZero()) return BigRational();
  BigUint g = BigUint::Gcd(num_, den_);
  if (g.IsOne()) return *this;
  return BigRational(num_.DivMod(g).quotient, den_.DivMod(g).quotient);
}

std::string BigRational::ToString() const {
  return num_.ToDecimalString() + "/" + den_.ToDecimalString();
}

}  // namespace pqe
