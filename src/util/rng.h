#ifndef PQE_UTIL_RNG_H_
#define PQE_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pqe {

/// Deterministic, seedable pseudo-random generator (xoshiro256**). Every
/// randomized component of the library takes an explicit Rng (or seed); there
/// is no global RNG state, so runs are reproducible.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection to avoid
  /// modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i] (weights must be non-negative, not all zero).
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Derives an independent child generator (for parallel-safe splitting).
  Rng Split();

  /// Seed of the `index`-th independent stream derived from `base` (golden-
  /// ratio stride — the same spacing splitmix64 uses internally, so the
  /// seeds land in distinct splitmix sequences). This is THE seed-derivation
  /// rule of the library: median-of-R repetitions and parallel sample shards
  /// all seed their own generator as Rng(Rng::DeriveSeed(seed, index)), so
  /// every stream is fixed by (seed, index) alone — never by thread count or
  /// scheduling (the determinism contract of docs/parallelism.md).
  static constexpr uint64_t DeriveSeed(uint64_t base, uint64_t index) {
    return base + 0x9e3779b97f4a7c15ULL * (index + 1);
  }

 private:
  uint64_t s_[4];
};

}  // namespace pqe

#endif  // PQE_UTIL_RNG_H_
