#ifndef PQE_UTIL_RNG_H_
#define PQE_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/span.h"

namespace pqe {

/// Deterministic, seedable pseudo-random generator (xoshiro256**). Every
/// randomized component of the library takes an explicit Rng (or seed); there
/// is no global RNG state, so runs are reproducible.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection to avoid
  /// modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fills `out[0..count)` with the next `count` raw 64-bit values — the
  /// exact words `count` successive Next() calls would return, so switching
  /// a loop between per-draw Next() and block generation never changes the
  /// stream. Batched kernels use this to amortize the out-of-line call and
  /// keep their randomness in one contiguous, cache-resident buffer.
  void FillBlock(uint64_t* out, size_t count);

  /// The uniform double in [0, 1) that NextDouble() derives from a raw
  /// word (53 mantissa bits). Lets block consumers map FillBlock output to
  /// the same doubles the scalar path would draw.
  static double DoubleFromWord(uint64_t word) {
    return static_cast<double>(word >> 11) * 0x1.0p-53;
  }

  /// Branch-free map of a raw word to [0, bound) via the multiply-shift
  /// reduction (Lemire 2019): floor(word * bound / 2^64). Not the same
  /// value NextBounded() yields from that word (and negligibly biased for
  /// bound << 2^64), so this is for the statistically-equivalent fast
  /// kernels only — the exact path keeps rejection sampling.
  static uint64_t BoundedFromWord(uint64_t word, uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(word) * bound) >> 64);
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i] (weights must be non-negative, not all zero).
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Derives an independent child generator (for parallel-safe splitting).
  Rng Split();

  /// Seed of the `index`-th independent stream derived from `base` (golden-
  /// ratio stride — the same spacing splitmix64 uses internally, so the
  /// seeds land in distinct splitmix sequences). This is THE seed-derivation
  /// rule of the library: median-of-R repetitions and parallel sample shards
  /// all seed their own generator as Rng(Rng::DeriveSeed(seed, index)), so
  /// every stream is fixed by (seed, index) alone — never by thread count or
  /// scheduling (the determinism contract of docs/parallelism.md).
  static constexpr uint64_t DeriveSeed(uint64_t base, uint64_t index) {
    return base + 0x9e3779b97f4a7c15ULL * (index + 1);
  }

 private:
  uint64_t s_[4];
};

/// Read-only view presenting a block of raw RNG words as uniform doubles in
/// [0, 1) — the bridge between Rng::FillBlock buffers and kernels that want
/// uniforms. Does not own the words; the underlying buffer must outlive it.
class DoubleBlock {
 public:
  explicit DoubleBlock(Span<uint64_t> words) : words_(words) {}

  double operator[](size_t i) const {
    return Rng::DoubleFromWord(words_[i]);
  }
  size_t size() const { return words_.size(); }

 private:
  Span<uint64_t> words_;
};

}  // namespace pqe

#endif  // PQE_UTIL_RNG_H_
