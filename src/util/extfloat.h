#ifndef PQE_UTIL_EXTFLOAT_H_
#define PQE_UTIL_EXTFLOAT_H_

#include <cstdint>
#include <string>

#include "util/bigint.h"

namespace pqe {

/// A non-negative floating-point number with an extended exponent range:
/// value = mantissa · 2^exponent with mantissa ∈ [1, 2) (or exactly 0).
/// Tree/string counts reach |Σ|^n and overflow IEEE doubles long before the
/// benchmarks' instance sizes do; all counting estimates use ExtFloat.
class ExtFloat {
 public:
  /// Zero.
  ExtFloat() : mantissa_(0.0), exponent_(0) {}

  /// From a finite non-negative double.
  static ExtFloat FromDouble(double value);
  /// From an unsigned integer.
  static ExtFloat FromUint64(uint64_t value);
  /// From a BigUint (rounded to 53 bits).
  static ExtFloat FromBigUint(const BigUint& value);

  bool IsZero() const { return mantissa_ == 0.0; }

  ExtFloat Mul(const ExtFloat& o) const;
  /// o must be non-zero (checked).
  ExtFloat Div(const ExtFloat& o) const;
  ExtFloat Add(const ExtFloat& o) const;
  /// Multiplication by a plain double factor (must be finite, >= 0).
  ExtFloat Scale(double factor) const;

  /// Three-way comparison.
  int Compare(const ExtFloat& o) const;

  /// Lossy conversion; +inf/0 on overflow/underflow of the double range.
  double ToDouble() const;

  /// log2 of the value; -inf for zero.
  double Log2() const;

  /// Scientific-style rendering "m*2^e" (or a plain decimal when it fits).
  std::string ToString() const;

  bool operator<(const ExtFloat& o) const { return Compare(o) < 0; }
  bool operator==(const ExtFloat& o) const { return Compare(o) == 0; }

 private:
  ExtFloat(double mantissa, int64_t exponent)
      : mantissa_(mantissa), exponent_(exponent) {}
  void Normalize();

  double mantissa_;   // in [1, 2), or 0
  int64_t exponent_;
};

}  // namespace pqe

#endif  // PQE_UTIL_EXTFLOAT_H_
