#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace pqe {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&sm);
  // Avoid the all-zero state (cannot occur after splitmix, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PQE_CHECK(bound > 0);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

void Rng::FillBlock(uint64_t* out, size_t count) {
  // Hoist the state into locals so the generator loop stays in registers;
  // same recurrence as Next(), word for word.
  uint64_t s0 = s_[0], s1 = s_[1], s2 = s_[2], s3 = s_[3];
  for (size_t i = 0; i < count; ++i) {
    out[i] = Rotl(s1 * 5, 7) * 9;
    const uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = Rotl(s3, 45);
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  PQE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    PQE_CHECK(w >= 0.0 && std::isfinite(w));
    total += w;
  }
  PQE_CHECK(total > 0.0);
  double x = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  // Floating-point edge: return the last index with non-zero weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Split() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace pqe
