#ifndef PQE_UTIL_THREAD_POOL_H_
#define PQE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pqe {

/// A fixed-size fork/join worker pool for the library's embarrassingly
/// parallel layers (median-of-R repetitions, sample-loop shards). Zero
/// dependencies beyond <thread>; no per-task queue allocation — a batch is
/// one shared atomic task cursor that participants drain.
///
/// Determinism contract (see docs/parallelism.md): the pool only decides
/// *which thread* runs a task, never *what* the task computes. Callers keep
/// results bit-identical across thread counts by (a) deriving per-task seeds
/// from (seed, task index) — Rng::DeriveSeed — (b) fixing task/shard
/// boundaries by configuration, and (c) writing into per-task slots that are
/// merged in fixed task order after RunBatch returns.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads. 0 is valid: every batch then runs
  /// inline on the calling thread.
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Runs fn(i) exactly once for every i in [0, num_tasks), then returns.
  /// At most `max_parallelism` threads execute tasks concurrently (the
  /// calling thread always participates, so up to max_parallelism − 1
  /// workers join). Rethrows the first task exception after the batch
  /// drains; remaining unstarted tasks are skipped on error. The pool is
  /// reusable across batches but not reentrant: a task must not call
  /// RunBatch on the pool that is running it.
  void RunBatch(size_t num_tasks, size_t max_parallelism,
                const std::function<void(size_t)>& fn);

  /// Resolves an effective thread count from configuration: `configured` if
  /// > 0, else the PQE_THREADS environment variable if set to a positive
  /// integer, else 1 (serial).
  static size_t ResolveNumThreads(size_t configured);

  /// The process-wide pool shared by all parallel layers. Sized
  /// max(hardware_concurrency, 8) − 1 workers, so determinism tests and
  /// TSan runs exercise real threads even on small machines; RunBatch's
  /// max_parallelism caps how many participate in any one batch.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();
  /// Drains the current batch's task cursor on the calling thread.
  void RunTasks(const std::function<void(size_t)>& fn, size_t num_tasks);

  // Serializes whole batches (two caller threads queue politely).
  std::mutex batch_mu_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  uint64_t generation_ = 0;       // bumped per batch, wakes the workers
  const std::function<void(size_t)>* fn_ = nullptr;  // guarded by mu_
  size_t num_tasks_ = 0;          // guarded by mu_
  size_t worker_budget_ = 0;      // workers still allowed to join the batch
  size_t working_ = 0;            // workers currently running tasks
  std::atomic<size_t> next_{0};   // shared task cursor
  std::exception_ptr error_;      // first task exception, guarded by mu_

  std::vector<std::thread> workers_;
};

/// Convenience fork/join loop: runs fn(i) for i in [0, num_tasks]. With
/// num_threads <= 1 (or a single task) the loop runs inline — no pool, no
/// synchronization, spans attach as usual; otherwise it fans out over
/// ThreadPool::Shared() capped at num_threads. `num_threads` is an
/// already-resolved count (pass through ThreadPool::ResolveNumThreads).
void ParallelFor(size_t num_threads, size_t num_tasks,
                 const std::function<void(size_t)>& fn);

/// Removes a `--threads=N` argument from argv (if present), exports it as
/// PQE_THREADS so every num_threads == 0 (auto) config picks it up, and
/// returns N (0 when absent). Call before other flag parsing; shared by the
/// bench binaries (pqe_cli plumbs its own --threads flag through
/// PqeEngine::Options instead).
size_t ConsumeThreadsFlag(int* argc, char** argv);

}  // namespace pqe

#endif  // PQE_UTIL_THREAD_POOL_H_
