#ifndef PQE_UTIL_RESULT_H_
#define PQE_UTIL_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "util/status.h"

namespace pqe {

/// Result<T> holds either a value of type T or a non-OK Status. This is the
/// return type of every fallible value-producing API in the library (the
/// Arrow `Result` / absl `StatusOr` idiom).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return my_t;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error: `return Status::InvalidArgument(..)`.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      // An OK status carries no value; this is a caller bug.
      std::cerr << "Result<T> constructed from OK status" << std::endl;
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error (OK if a value is held).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Accessors; must only be called when ok(). Checked, aborts otherwise
  /// (library-bug class of failure, like a failed assert).
  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out; must only be called when ok().
  T MoveValue() {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::value() on error result: "
                << std::get<Status>(repr_).ToString() << std::endl;
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

}  // namespace pqe

/// Evaluates `rexpr` (a Result<T>); on error returns the status to the
/// caller, otherwise assigns the moved value to `lhs`. `lhs` may be a
/// declaration: PQE_ASSIGN_OR_RETURN(auto x, MakeX());
#define PQE_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  PQE_ASSIGN_OR_RETURN_IMPL_(                                     \
      PQE_RESULT_CONCAT_(_pqe_result_, __LINE__), lhs, rexpr)

#define PQE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).MoveValue()

#define PQE_RESULT_CONCAT_(a, b) PQE_RESULT_CONCAT_IMPL_(a, b)
#define PQE_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // PQE_UTIL_RESULT_H_
