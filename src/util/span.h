#ifndef PQE_UTIL_SPAN_H_
#define PQE_UTIL_SPAN_H_

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace pqe {

/// A lightweight read-only view over a contiguous run of T (the library
/// targets C++17, so no std::span). Used by the automata to expose
/// CSR-flattened storage (children arenas, adjacency index lists) through
/// the same call-site syntax the old per-object std::vector members had:
/// `t.children.size()`, `t.children[i]`, range-for, `.empty()` all keep
/// working. operator[] is unchecked — spans are hot-path accessors; use
/// at() at API boundaries.
template <typename T>
class Span {
 public:
  using value_type = T;
  using const_iterator = const T*;

  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  /// View of a vector (lifetime is the caller's problem, as with any
  /// reference accessor). Explicit so that braced-init-list call sites keep
  /// resolving to std::vector overloads unambiguously.
  explicit Span(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

  /// Unchecked element access (hot paths).
  constexpr const T& operator[](size_t i) const { return data_[i]; }
  /// Bounds-checked element access (API boundaries).
  const T& at(size_t i) const {
    PQE_CHECK(i < size_);
    return data_[i];
  }
  const T& front() const { return at(0); }
  const T& back() const { return at(size_ - 1); }

  /// Materializes an owning copy (for call sites that need a vector, e.g.
  /// feeding one automaton's children into another's AddTransition).
  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

  friend bool operator==(const Span& a, const Span& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }
  friend bool operator==(const Span& a, const std::vector<T>& b) {
    return a == Span(b.data(), b.size());
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace pqe

#endif  // PQE_UTIL_SPAN_H_
