#ifndef PQE_UTIL_CHECK_H_
#define PQE_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>

#include "util/status.h"

/// Aborts with a message if `cond` is false. For invariants whose violation
/// indicates a bug in this library (not bad user input — use Status there).
#define PQE_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::cerr << __FILE__ << ":" << __LINE__ << " PQE_CHECK failed: "     \
                << #cond << std::endl;                                      \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// Aborts if a Status-returning expression fails. For examples, benchmarks,
/// and tests where an error is unrecoverable.
#define PQE_CHECK_OK(expr)                                                  \
  do {                                                                      \
    ::pqe::Status _st = (expr);                                             \
    if (!_st.ok()) {                                                        \
      std::cerr << __FILE__ << ":" << __LINE__ << " PQE_CHECK_OK failed: "  \
                << _st.ToString() << std::endl;                             \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#endif  // PQE_UTIL_CHECK_H_
