#include "util/status.h"

namespace pqe {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kPartialResult:
      return "PartialResult";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pqe
