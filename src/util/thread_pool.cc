#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

namespace pqe {

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunTasks(const std::function<void(size_t)>& fn,
                          size_t num_tasks) {
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_tasks) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      // Skip the remaining unstarted tasks; in-flight ones finish.
      next_.store(num_tasks, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    if (worker_budget_ == 0) continue;  // batch full (or already drained)
    --worker_budget_;
    ++working_;
    const std::function<void(size_t)>* fn = fn_;
    const size_t num_tasks = num_tasks_;
    lock.unlock();
    RunTasks(*fn, num_tasks);
    lock.lock();
    if (--working_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::RunBatch(size_t num_tasks, size_t max_parallelism,
                          const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (max_parallelism <= 1 || num_tasks == 1 || workers_.empty()) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    worker_budget_ = std::min(max_parallelism - 1, workers_.size());
    working_ = 0;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  RunTasks(fn, num_tasks);  // the caller always participates
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // No further workers may join (a late waker would only find an empty
    // cursor anyway); wait for the ones that did to drain.
    worker_budget_ = 0;
    done_cv_.wait(lock, [&] { return working_ == 0; });
    error = error_;
    fn_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

size_t ThreadPool::ResolveNumThreads(size_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("PQE_THREADS")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  return 1;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool([] {
    const size_t hw = std::thread::hardware_concurrency();
    return std::max<size_t>(hw, 8) - 1;
  }());
  return pool;
}

void ParallelFor(size_t num_threads, size_t num_tasks,
                 const std::function<void(size_t)>& fn) {
  if (num_threads <= 1 || num_tasks <= 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  ThreadPool::Shared().RunBatch(num_tasks, num_threads, fn);
}

size_t ConsumeThreadsFlag(int* argc, char** argv) {
  static constexpr char kPrefix[] = "--threads=";
  size_t threads = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, sizeof(kPrefix) - 1) == 0) {
      const char* value = argv[i] + sizeof(kPrefix) - 1;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(value, &end, 10);
      if (end != value && *end == '\0' && v > 0) {
        threads = static_cast<size_t>(v);
        setenv("PQE_THREADS", value, /*overwrite=*/1);
        continue;  // consumed
      }
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return threads;
}

}  // namespace pqe
