#ifndef PQE_UTIL_PARSE_H_
#define PQE_UTIL_PARSE_H_

#include <cstdint>
#include <string_view>

namespace pqe {

/// Strict base-10 uint64 parsing for token grammars: accepts exactly a
/// non-empty run of ASCII digits — no leading whitespace, no '+'/'-' sign,
/// no trailing junk, no overflow. std::stoull/strtoull accept all four
/// ("-1" wraps to 18446744073709551615, which is how a negative rational
/// would silently become a huge numerator), so token parsers that mean
/// "an unsigned integer, exactly" must use this instead.
inline bool ParseStrictUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace pqe

#endif  // PQE_UTIL_PARSE_H_
