#include "rpq/eval.h"

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace pqe {
namespace rpq {

std::optional<ConjunctiveQuery> LowerToPathQuery(const RpqQuery& query,
                                                 const Schema& schema) {
  std::vector<std::string> labels;
  if (!query.IsLinearChain(&labels) || labels.empty()) return std::nullopt;
  std::unordered_set<std::string> distinct(labels.begin(), labels.end());
  if (distinct.size() != labels.size()) return std::nullopt;  // self-join
  for (const std::string& label : labels) {
    if (!schema.HasRelation(label)) return std::nullopt;
    const auto rel = schema.FindRelation(label);
    if (!rel.ok() || schema.Arity(rel.value()) != 2) return std::nullopt;
  }
  ConjunctiveQuery::Builder builder(&schema);
  for (size_t i = 0; i < labels.size(); ++i) {
    const Status s = builder.AddAtom(
        labels[i],
        {"x" + std::to_string(i + 1), "x" + std::to_string(i + 2)});
    if (!s.ok()) return std::nullopt;
  }
  auto built = builder.Build();
  if (!built.ok()) return std::nullopt;
  return std::move(built).value();
}

Result<PathPqeSkeleton> CompileRpqSkeleton(const RpqQuery& query,
                                           const Database& db,
                                           RpqCompileStats* stats) {
  if (stats != nullptr) *stats = RpqCompileStats{};
  if (std::optional<ConjunctiveQuery> lowered =
          LowerToPathQuery(query, db.schema())) {
    PQE_ASSIGN_OR_RETURN(PathPqeSkeleton skeleton,
                         BuildPathPqeSkeleton(*lowered, db));
    if (stats != nullptr) stats->query_states = lowered->NumAtoms() + 1;
    return skeleton;
  }
  return BuildRpqSkeleton(query, db, stats);
}

Result<PathPqeResult> RpqEstimate(const RpqQuery& query,
                                  const ProbabilisticDatabase& pdb,
                                  const EstimatorConfig& config) {
  // Lowered regexes reuse PathPqeEstimate itself (not just its tail) so the
  // trace spans — and the bits — match a directly-issued path query.
  if (std::optional<ConjunctiveQuery> lowered =
          LowerToPathQuery(query, pdb.database().schema())) {
    return PathPqeEstimate(*lowered, pdb, config);
  }
  PQE_TRACE_SPAN_VAR(span, "rpq.estimate");
  span.AttrUint("facts", pdb.NumFacts());
  RpqCompileStats stats;
  PQE_ASSIGN_OR_RETURN(PathPqeSkeleton skeleton,
                       BuildRpqSkeleton(query, pdb.database(), &stats));
  span.AttrUint("query_states", stats.query_states);
  span.AttrUint("useful_edges", stats.useful_edges);
  span.AttrUint("scan_constraints", stats.scan_constraints);
  return EstimatePathSkeleton(skeleton, pdb, config);
}

Result<BigRational> RpqExact(const RpqQuery& query,
                             const ProbabilisticDatabase& pdb) {
  if (std::optional<ConjunctiveQuery> lowered =
          LowerToPathQuery(query, pdb.database().schema())) {
    return PathPqeExact(*lowered, pdb);
  }
  PQE_ASSIGN_OR_RETURN(PathPqeSkeleton skeleton,
                       BuildRpqSkeleton(query, pdb.database(), nullptr));
  return ExactPathSkeleton(skeleton, pdb);
}

}  // namespace rpq
}  // namespace pqe
