#ifndef PQE_RPQ_REGEX_H_
#define PQE_RPQ_REGEX_H_

#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace pqe {
namespace rpq {

/// Node kinds of a regular path query expression. Inverse navigation (the
/// 2RPQ `^label` of SPARQL property paths, written label⁻ in the literature)
/// is normalized away at parse time: `^` over a composite expression is
/// pushed down to the labels (reversing concatenations), so a parsed tree
/// carries inversion only on kLabel nodes.
enum class RegexKind {
  kLabel,   // an edge label, forward (`a`) or inverse (`^a`)
  kConcat,  // e1 / e2 / ... (2+ children)
  kAlt,     // e1 | e2 | ... (2+ children)
  kStar,    // e*  (1 child)
  kPlus,    // e+  (1 child)
  kOpt,     // e?  (1 child)
};

/// One node of the parsed expression tree. Immutable after parsing; shared
/// ownership keeps RpqQuery cheaply copyable.
struct RegexNode {
  RegexKind kind = RegexKind::kLabel;
  std::string label;     // kLabel only
  bool inverse = false;  // kLabel only: traverse the edge target -> source
  std::vector<std::shared_ptr<const RegexNode>> children;
};

using RegexPtr = std::shared_ptr<const RegexNode>;

/// A regular path query over binary edge relations, in SPARQL property-path
/// style syntax:
///
///   path     := alt
///   alt      := concat ('|' concat)*
///   concat   := postfix ('/' postfix)*
///   postfix  := primary ('*' | '+' | '?')*
///   primary  := '^' primary | '(' alt ')' | label
///   label    := [A-Za-z_][A-Za-z0-9_]*
///
/// Whitespace is insignificant. `^e` is inverse traversal (2RPQ); it
/// distributes over composite operands at parse time. The query is Boolean:
/// it asks for the existence of vertices x, y and a path x ->* y whose label
/// word (with orientation) matches the expression.
class RpqQuery {
 public:
  /// Parses `text`; syntax errors come back as InvalidArgument naming the
  /// 1-based column of the offending character.
  static Result<RpqQuery> Parse(const std::string& text);

  const RegexNode& root() const { return *root_; }
  const RegexPtr& root_ptr() const { return root_; }

  /// The text as given to Parse (diagnostics; not canonical).
  const std::string& text() const { return text_; }

  /// Canonical rendering with minimal parentheses. Stable under re-parsing:
  /// Parse(Canonical()) renders back to the same string — the round-trip
  /// property the parser tests pin down, and the content-key input of the
  /// serving layer.
  std::string Canonical() const;

  /// Distinct edge labels, in first-occurrence order.
  std::vector<std::string> Labels() const;

  /// True iff the expression is a plain concatenation of forward labels with
  /// no repetition operators, alternation, or inverses — the degenerate case
  /// that is exactly a linear path query. Fills `labels` (in order) when
  /// non-null. Repeated labels still return true here (the caller decides
  /// whether a self-join-free lowering applies).
  bool IsLinearChain(std::vector<std::string>* labels = nullptr) const;

 private:
  RpqQuery(std::string text, RegexPtr root)
      : text_(std::move(text)), root_(std::move(root)) {}

  std::string text_;
  RegexPtr root_;
};

}  // namespace rpq
}  // namespace pqe

#endif  // PQE_RPQ_REGEX_H_
