#ifndef PQE_RPQ_PRODUCT_H_
#define PQE_RPQ_PRODUCT_H_

#include <cstddef>
#include <vector>

#include "core/path_pqe.h"
#include "lineage/lineage.h"
#include "pdb/database.h"
#include "pdb/probabilistic_database.h"
#include "rpq/automaton.h"
#include "rpq/regex.h"
#include "util/bigint.h"
#include "util/result.h"

namespace pqe {
namespace rpq {

/// The product of the (projected) data graph with the query automaton:
/// nodes are (vertex, query state) pairs, edges are data facts consumed
/// forward or inverse as the automaton directs. This is the object every RPQ
/// route evaluates over — the string-automaton skeleton, the DNF lineage,
/// and the world-satisfaction oracle are all read off it.
struct RpqProduct {
  QueryNfa query;

  /// The database restricted to the regex's edge relations; facts renumbered
  /// densely, `original_fact` mapping back (see core/projection.h). Starts
  /// empty-schema'd; BuildRpqProduct move-assigns the projection in.
  Database db{Schema{}};
  std::vector<FactId> original_fact;
  size_t dropped_facts = 0;

  /// Product node id = vertex * query.num_states + state, over the projected
  /// database's interned values.
  size_t num_nodes = 0;
  struct Edge {
    uint32_t from = 0;
    uint32_t to = 0;
    FactId fact = 0;  // projected FactId consumed by this step
  };
  std::vector<Edge> edges;  // sorted by (fact, from, to), deduplicated

  std::vector<uint8_t> is_initial;    // (v, initial state) for every vertex
  std::vector<uint8_t> is_accepting;  // (v, accepting state)
  std::vector<uint8_t> reachable;     // from some initial node, over edges
  std::vector<uint8_t> coreachable;   // to some accepting node

  /// The regex matches the empty path and the full database has a non-empty
  /// active domain: every world satisfies the query (probability 1), no
  /// matter which facts are present.
  bool trivially_true = false;

  bool Useful(uint32_t node) const {
    return reachable[node] != 0 && coreachable[node] != 0;
  }
  bool UsefulEdge(const Edge& e) const {
    return reachable[e.from] != 0 && coreachable[e.to] != 0;
  }
};

/// Builds the product. Fails with InvalidArgument when a label is not a
/// binary relation of `db`'s schema.
Result<RpqProduct> BuildRpqProduct(const RpqQuery& query, const Database& db);

/// Compilation figures, reported by BuildRpqSkeletonFromProduct.
struct RpqCompileStats {
  size_t query_states = 0;
  size_t product_edges = 0;
  size_t useful_edges = 0;
  size_t scan_constraints = 0;  // precedence constraints between facts
};

/// The Section 3-style string skeleton of an RPQ instance: an NFA whose
/// accepted length-|D'| words over fact literals are exactly the satisfying
/// subinstances of the projected database, read in a scan order σ chosen by
/// topologically sorting the per-fact precedence constraints of the useful
/// product edges. The result plugs into the entire path-query machinery
/// unchanged (BindPathPqeNfa gadgets, CountNFA, prepared binds, delta
/// rebinds) — the word length and literal encoding contracts are identical.
///
/// Fails with NotSupported when no scan order exists (a precedence cycle, or
/// a walk reusing one fact twice — cyclic instances); callers fall back to
/// the exact simple-path lineage (BuildRpqLineage below).
Result<PathPqeSkeleton> BuildRpqSkeletonFromProduct(
    const RpqProduct& product, RpqCompileStats* stats = nullptr);

/// Convenience: product + skeleton in one call.
Result<PathPqeSkeleton> BuildRpqSkeleton(const RpqQuery& query,
                                         const Database& db,
                                         RpqCompileStats* stats = nullptr);

/// The exact DNF lineage of the RPQ over *original* FactIds: one clause per
/// node-simple initial→accepting product path, truncated at its first
/// accepting node. Correct for every instance (cyclic ones included): any
/// satisfying walk shortcut to a node-simple path with a subset fact set, so
/// the DNF is equivalent to the query. `trivially_true` products yield the
/// single empty clause (the constant-true DNF). Fails with ResourceExhausted
/// beyond `max_clauses` clauses (or 64 × max_clauses DFS expansions).
Result<DnfLineage> BuildRpqLineage(const RpqProduct& product,
                                   size_t max_clauses);

/// World-satisfaction oracle: does the subinstance of the *projected*
/// database given by `present` satisfy the query? BFS over product edges
/// whose fact is present.
bool RpqSatisfiedInWorld(const RpqProduct& product,
                         const std::vector<bool>& present);

/// Exact probability by 2^|D'| world enumeration (facts outside the regex's
/// relations marginalize away). Test oracle; fails with InvalidArgument when
/// the projected database exceeds `max_facts`.
Result<BigRational> ExactRpqProbabilityByEnumeration(
    const RpqQuery& query, const ProbabilisticDatabase& pdb,
    size_t max_facts = 25);

}  // namespace rpq
}  // namespace pqe

#endif  // PQE_RPQ_PRODUCT_H_
