#ifndef PQE_RPQ_EVAL_H_
#define PQE_RPQ_EVAL_H_

#include <optional>

#include "core/path_pqe.h"
#include "counting/config.h"
#include "cq/query.h"
#include "pdb/probabilistic_database.h"
#include "rpq/product.h"
#include "rpq/regex.h"
#include "util/bigint.h"
#include "util/result.h"

namespace pqe {
namespace rpq {

/// Lowers an RPQ to the equivalent linear path query when one exists: a
/// plain concatenation of distinct forward labels, each a binary relation of
/// `schema`, becomes R1(x1,x2), ..., Rn(xn,xn+1). nullopt when the regex is
/// not of that shape (repetition, alternation, inverse, a repeated label —
/// self-join — or a label outside the schema).
///
/// Lowered queries route through the *identical* BuildPathPqeSkeleton /
/// PathPqeEstimate code path as a directly-issued path query, which is what
/// makes RPQ answers on concatenation-only regexes bit-identical to the
/// legacy path_pqe route.
std::optional<ConjunctiveQuery> LowerToPathQuery(const RpqQuery& query,
                                                 const Schema& schema);

/// Compiles an RPQ to a string-automaton skeleton: the path lowering when it
/// applies, the product construction (BuildRpqSkeleton) otherwise. This is
/// the single compile entry the one-shot engine route and the prepared
/// serving route share — both therefore produce the same skeleton and the
/// same bits. Fails with NotSupported when the instance is not
/// scan-orderable (callers fall back to the lineage route).
Result<PathPqeSkeleton> CompileRpqSkeleton(const RpqQuery& query,
                                           const Database& db,
                                           RpqCompileStats* stats = nullptr);

/// FPRAS for Pr(D ⊨ query): compile (CompileRpqSkeleton) + the shared
/// bind/count tail (EstimatePathSkeleton). Fails with NotSupported when the
/// instance is not scan-orderable.
Result<PathPqeResult> RpqEstimate(const RpqQuery& query,
                                  const ProbabilisticDatabase& pdb,
                                  const EstimatorConfig& config);

/// Exact companion of RpqEstimate via exact string counting (test oracle;
/// exponential worst case). Same NotSupported contract.
Result<BigRational> RpqExact(const RpqQuery& query,
                             const ProbabilisticDatabase& pdb);

}  // namespace rpq
}  // namespace pqe

#endif  // PQE_RPQ_EVAL_H_
