#include "rpq/regex.h"

#include <cctype>
#include <utility>

namespace pqe {
namespace rpq {

namespace {

RegexPtr MakeLabel(std::string name, bool inverse) {
  auto n = std::make_shared<RegexNode>();
  n->kind = RegexKind::kLabel;
  n->label = std::move(name);
  n->inverse = inverse;
  return n;
}

RegexPtr MakeNary(RegexKind kind, std::vector<RegexPtr> children) {
  if (children.size() == 1) return std::move(children[0]);
  auto n = std::make_shared<RegexNode>();
  n->kind = kind;
  n->children = std::move(children);
  return n;
}

RegexPtr MakeUnary(RegexKind kind, RegexPtr child) {
  auto n = std::make_shared<RegexNode>();
  n->kind = kind;
  n->children.push_back(std::move(child));
  return n;
}

/// The inverse of an expression, pushed down to the labels: reverse(e1/e2) =
/// reverse(e2)/reverse(e1), reverse distributes over | * + ?, and a label
/// flips its orientation.
RegexPtr Invert(const RegexPtr& node) {
  switch (node->kind) {
    case RegexKind::kLabel:
      return MakeLabel(node->label, !node->inverse);
    case RegexKind::kConcat: {
      std::vector<RegexPtr> rev;
      rev.reserve(node->children.size());
      for (auto it = node->children.rbegin(); it != node->children.rend();
           ++it) {
        rev.push_back(Invert(*it));
      }
      return MakeNary(RegexKind::kConcat, std::move(rev));
    }
    case RegexKind::kAlt: {
      std::vector<RegexPtr> inv;
      inv.reserve(node->children.size());
      for (const RegexPtr& c : node->children) inv.push_back(Invert(c));
      return MakeNary(RegexKind::kAlt, std::move(inv));
    }
    case RegexKind::kStar:
    case RegexKind::kPlus:
    case RegexKind::kOpt:
      return MakeUnary(node->kind, Invert(node->children[0]));
  }
  return node;  // unreachable
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<RegexPtr> Run() {
    SkipSpace();
    if (AtEnd()) {
      return Error("empty regular path query");
    }
    PQE_ASSIGN_OR_RETURN(RegexPtr root, ParseAlt());
    SkipSpace();
    if (!AtEnd()) {
      return Error(std::string("unexpected '") + text_[pos_] + "'");
    }
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("rpq regex: " + what + " at column " +
                                   std::to_string(pos_ + 1));
  }

  Result<RegexPtr> ParseAlt() {
    std::vector<RegexPtr> arms;
    PQE_ASSIGN_OR_RETURN(RegexPtr first, ParseConcat());
    arms.push_back(std::move(first));
    SkipSpace();
    while (!AtEnd() && Peek() == '|') {
      ++pos_;
      PQE_ASSIGN_OR_RETURN(RegexPtr arm, ParseConcat());
      arms.push_back(std::move(arm));
      SkipSpace();
    }
    return MakeNary(RegexKind::kAlt, std::move(arms));
  }

  Result<RegexPtr> ParseConcat() {
    std::vector<RegexPtr> parts;
    PQE_ASSIGN_OR_RETURN(RegexPtr first, ParsePostfix());
    parts.push_back(std::move(first));
    SkipSpace();
    while (!AtEnd() && Peek() == '/') {
      ++pos_;
      PQE_ASSIGN_OR_RETURN(RegexPtr part, ParsePostfix());
      parts.push_back(std::move(part));
      SkipSpace();
    }
    return MakeNary(RegexKind::kConcat, std::move(parts));
  }

  Result<RegexPtr> ParsePostfix() {
    PQE_ASSIGN_OR_RETURN(RegexPtr node, ParsePrimary());
    SkipSpace();
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '*') {
        node = MakeUnary(RegexKind::kStar, std::move(node));
      } else if (c == '+') {
        node = MakeUnary(RegexKind::kPlus, std::move(node));
      } else if (c == '?') {
        node = MakeUnary(RegexKind::kOpt, std::move(node));
      } else {
        break;
      }
      ++pos_;
      SkipSpace();
    }
    return node;
  }

  Result<RegexPtr> ParsePrimary() {
    SkipSpace();
    if (AtEnd()) {
      return Error("expected label, '(' or '^'");
    }
    const char c = Peek();
    if (c == '^') {
      ++pos_;
      PQE_ASSIGN_OR_RETURN(RegexPtr inner, ParsePrimary());
      return Invert(inner);
    }
    if (c == '(') {
      ++pos_;
      PQE_ASSIGN_OR_RETURN(RegexPtr inner, ParseAlt());
      SkipSpace();
      if (AtEnd() || Peek() != ')') {
        return Error("expected ')'");
      }
      ++pos_;
      return inner;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = pos_;
      while (!AtEnd() &&
             (std::isalnum(static_cast<unsigned char>(Peek())) ||
              Peek() == '_')) {
        ++pos_;
      }
      return MakeLabel(text_.substr(start, pos_ - start), false);
    }
    return Error(std::string("expected label, '(' or '^', got '") + c + "'");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Precedence tiers for minimal-parenthesis rendering.
int Precedence(const RegexNode& node) {
  switch (node.kind) {
    case RegexKind::kAlt:
      return 1;
    case RegexKind::kConcat:
      return 2;
    case RegexKind::kStar:
    case RegexKind::kPlus:
    case RegexKind::kOpt:
      return 3;
    case RegexKind::kLabel:
      return 4;
  }
  return 4;
}

void Render(const RegexNode& node, int parent_prec, std::string* out) {
  const int prec = Precedence(node);
  const bool parens = prec < parent_prec;
  if (parens) out->push_back('(');
  switch (node.kind) {
    case RegexKind::kLabel:
      if (node.inverse) out->push_back('^');
      out->append(node.label);
      break;
    case RegexKind::kConcat:
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out->push_back('/');
        Render(*node.children[i], prec + 1, out);
      }
      break;
    case RegexKind::kAlt:
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out->push_back('|');
        Render(*node.children[i], prec + 1, out);
      }
      break;
    case RegexKind::kStar:
    case RegexKind::kPlus:
    case RegexKind::kOpt:
      // Postfix operators bind to an already-postfix-or-atomic operand, so
      // `prec` (not prec + 1) keeps stacked operators like `a*?` flat.
      Render(*node.children[0], prec, out);
      out->push_back(node.kind == RegexKind::kStar   ? '*'
                     : node.kind == RegexKind::kPlus ? '+'
                                                     : '?');
      break;
  }
  if (parens) out->push_back(')');
}

void CollectLabels(const RegexNode& node, std::vector<std::string>* out) {
  if (node.kind == RegexKind::kLabel) {
    for (const std::string& seen : *out) {
      if (seen == node.label) return;
    }
    out->push_back(node.label);
    return;
  }
  for (const RegexPtr& c : node.children) CollectLabels(*c, out);
}

}  // namespace

Result<RpqQuery> RpqQuery::Parse(const std::string& text) {
  Parser parser(text);
  PQE_ASSIGN_OR_RETURN(RegexPtr root, parser.Run());
  return RpqQuery(text, std::move(root));
}

std::string RpqQuery::Canonical() const {
  std::string out;
  Render(*root_, 0, &out);
  return out;
}

std::vector<std::string> RpqQuery::Labels() const {
  std::vector<std::string> out;
  CollectLabels(*root_, &out);
  return out;
}

bool RpqQuery::IsLinearChain(std::vector<std::string>* labels) const {
  if (labels != nullptr) labels->clear();
  auto take = [labels](const RegexNode& leaf) {
    if (leaf.kind != RegexKind::kLabel || leaf.inverse) return false;
    if (labels != nullptr) labels->push_back(leaf.label);
    return true;
  };
  if (root_->kind == RegexKind::kLabel) return take(*root_);
  if (root_->kind != RegexKind::kConcat) return false;
  for (const RegexPtr& c : root_->children) {
    if (!take(*c)) {
      if (labels != nullptr) labels->clear();
      return false;
    }
  }
  return true;
}

}  // namespace rpq
}  // namespace pqe
