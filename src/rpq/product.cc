#include "rpq/product.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "automata/augmented_nfta.h"  // literal encoding helpers
#include "core/projection.h"

namespace pqe {
namespace rpq {

namespace {

/// Out-adjacency over product edges: per node, indices into product.edges in
/// the edges' (fact, from, to) order — deterministic iteration everywhere.
std::vector<std::vector<uint32_t>> OutAdjacency(const RpqProduct& product) {
  std::vector<std::vector<uint32_t>> out(product.num_nodes);
  for (uint32_t e = 0; e < product.edges.size(); ++e) {
    out[product.edges[e].from].push_back(e);
  }
  return out;
}

std::vector<uint8_t> ForwardReachable(const RpqProduct& product) {
  std::vector<uint8_t> seen(product.num_nodes, 0);
  std::vector<uint32_t> frontier;
  for (uint32_t u = 0; u < product.num_nodes; ++u) {
    if (product.is_initial[u]) {
      seen[u] = 1;
      frontier.push_back(u);
    }
  }
  std::vector<std::vector<uint32_t>> adj = OutAdjacency(product);
  while (!frontier.empty()) {
    const uint32_t u = frontier.back();
    frontier.pop_back();
    for (uint32_t e : adj[u]) {
      const uint32_t v = product.edges[e].to;
      if (!seen[v]) {
        seen[v] = 1;
        frontier.push_back(v);
      }
    }
  }
  return seen;
}

std::vector<uint8_t> BackwardCoreachable(const RpqProduct& product) {
  std::vector<uint8_t> seen(product.num_nodes, 0);
  std::vector<uint32_t> frontier;
  for (uint32_t u = 0; u < product.num_nodes; ++u) {
    if (product.is_accepting[u]) {
      seen[u] = 1;
      frontier.push_back(u);
    }
  }
  std::vector<std::vector<uint32_t>> in(product.num_nodes);
  for (uint32_t e = 0; e < product.edges.size(); ++e) {
    in[product.edges[e].to].push_back(e);
  }
  while (!frontier.empty()) {
    const uint32_t u = frontier.back();
    frontier.pop_back();
    for (uint32_t e : in[u]) {
      const uint32_t v = product.edges[e].from;
      if (!seen[v]) {
        seen[v] = 1;
        frontier.push_back(v);
      }
    }
  }
  return seen;
}

}  // namespace

Result<RpqProduct> BuildRpqProduct(const RpqQuery& query, const Database& db) {
  RpqProduct out;
  PQE_ASSIGN_OR_RETURN(out.query, CompileRegex(query));

  // Resolve the regex's labels against the schema: every label must name a
  // binary (edge) relation.
  std::vector<RelationId> label_relation(out.query.labels.size());
  for (size_t i = 0; i < out.query.labels.size(); ++i) {
    const std::string& name = out.query.labels[i];
    if (!db.schema().HasRelation(name)) {
      return Status::InvalidArgument("rpq regex mentions unknown relation '" +
                                     name + "'");
    }
    PQE_ASSIGN_OR_RETURN(label_relation[i], db.schema().FindRelation(name));
    if (db.schema().Arity(label_relation[i]) != 2) {
      return Status::InvalidArgument("rpq label '" + name +
                                     "' is not a binary relation");
    }
  }

  // ε ∈ L(regex) and the (full) active domain is non-empty: every world
  // contains an empty path, so the query holds with probability 1.
  out.trivially_true = out.query.accepts_epsilon && db.NumValues() > 0;

  // Facts over other relations marginalize away, exactly as in Theorem 3's
  // projection step for CQs.
  PQE_ASSIGN_OR_RETURN(ProjectedDatabase proj,
                       ProjectDatabaseToRelations(db, label_relation));
  out.db = std::move(proj.db);
  out.original_fact = std::move(proj.original_fact);
  out.dropped_facts = proj.dropped_facts;

  const uint32_t num_states = out.query.num_states;
  out.num_nodes = out.db.NumValues() * static_cast<size_t>(num_states);
  out.is_initial.assign(out.num_nodes, 0);
  out.is_accepting.assign(out.num_nodes, 0);
  for (ValueId v = 0; v < out.db.NumValues(); ++v) {
    out.is_initial[static_cast<size_t>(v) * num_states] = 1;  // state 0
    for (uint32_t a : out.query.accepting) {
      out.is_accepting[static_cast<size_t>(v) * num_states + a] = 1;
    }
  }

  // Query edges grouped by label, to expand each fact once per matching edge.
  std::vector<std::vector<uint32_t>> edges_of_label(out.query.labels.size());
  for (uint32_t e = 0; e < out.query.edges.size(); ++e) {
    edges_of_label[out.query.edges[e].label].push_back(e);
  }
  std::unordered_map<RelationId, uint32_t> label_of_relation;
  for (uint32_t i = 0; i < label_relation.size(); ++i) {
    label_of_relation.emplace(label_relation[i], i);
  }

  for (FactId f = 0; f < out.db.NumFacts(); ++f) {
    const Fact& fact = out.db.fact(f);
    const uint32_t label = label_of_relation.at(fact.relation);
    const uint32_t src = fact.args[0];
    const uint32_t dst = fact.args[1];
    for (uint32_t e : edges_of_label[label]) {
      const QueryEdge& qe = out.query.edges[e];
      // Forward traversal consumes the fact source -> target; inverse (2RPQ)
      // consumes it target -> source.
      const uint32_t from_v = qe.inverse ? dst : src;
      const uint32_t to_v = qe.inverse ? src : dst;
      out.edges.push_back(
          {from_v * num_states + qe.from, to_v * num_states + qe.to, f});
    }
  }
  std::sort(out.edges.begin(), out.edges.end(),
            [](const RpqProduct::Edge& a, const RpqProduct::Edge& b) {
              if (a.fact != b.fact) return a.fact < b.fact;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end(),
                              [](const RpqProduct::Edge& a,
                                 const RpqProduct::Edge& b) {
                                return a.fact == b.fact && a.from == b.from &&
                                       a.to == b.to;
                              }),
                  out.edges.end());

  out.reachable = ForwardReachable(out);
  out.coreachable = BackwardCoreachable(out);
  return out;
}

Result<PathPqeSkeleton> BuildRpqSkeletonFromProduct(const RpqProduct& product,
                                                    RpqCompileStats* stats) {
  const size_t n = product.db.NumFacts();
  if (stats != nullptr) {
    *stats = RpqCompileStats{};
    stats->query_states = product.query.num_states;
    stats->product_edges = product.edges.size();
  }

  PathPqeSkeleton out;
  out.original_fact = product.original_fact;
  out.base.word_length = n;
  out.base.dropped_facts = product.dropped_facts;
  Nfa& nfa = out.base.nfa;
  nfa.EnsureAlphabetSize(2 * n);

  if (product.trivially_true) {
    // Every subinstance satisfies the query: the all-accept chain over the
    // identity scan order. Routing the ε case through the same counting
    // pipeline keeps answers bit-identical between the one-shot engine path
    // and the prepared serving path.
    std::vector<StateId> chain(n + 1);
    for (size_t i = 0; i <= n; ++i) chain[i] = nfa.AddState();
    nfa.MarkInitial(chain[0]);
    nfa.MarkAccepting(chain[n]);
    for (FactId f = 0; f < n; ++f) {
      nfa.AddTransition(chain[f], PositiveLiteral(f), chain[f + 1]);
      nfa.AddTransition(chain[f], NegativeLiteral(f), chain[f + 1]);
    }
    return out;
  }

  // Lanes: the useful product nodes. Every initial→accepting walk stays in
  // them, so the skeleton only tracks those.
  std::vector<uint32_t> lane(product.num_nodes, UINT32_MAX);
  std::vector<uint32_t> lane_node;
  for (uint32_t u = 0; u < product.num_nodes; ++u) {
    if (product.Useful(u)) {
      lane[u] = static_cast<uint32_t>(lane_node.size());
      lane_node.push_back(u);
    }
  }
  const size_t L = lane_node.size();

  // Scan-order constraints: whenever a walk can consume fact g right after
  // fact f (a useful in-edge meeting a useful out-edge at one node), the scan
  // must visit f before g. An acyclic constraint digraph yields a total order
  // σ under which *every* useful walk consumes facts at strictly increasing
  // scan positions — the property that makes the position-indexed automaton
  // below recognize exactly the satisfying subinstances. A cycle (including
  // a fact following itself) means no such order exists; callers fall back
  // to the exact lineage route.
  std::vector<std::vector<uint32_t>> in_at(product.num_nodes);
  std::vector<std::vector<uint32_t>> out_at(product.num_nodes);
  size_t useful_edges = 0;
  for (uint32_t e = 0; e < product.edges.size(); ++e) {
    if (!product.UsefulEdge(product.edges[e])) continue;
    ++useful_edges;
    in_at[product.edges[e].to].push_back(e);
    out_at[product.edges[e].from].push_back(e);
  }
  if (stats != nullptr) stats->useful_edges = useful_edges;

  std::vector<std::vector<FactId>> succ(n);
  std::vector<size_t> indegree(n, 0);
  std::unordered_set<uint64_t> seen_constraints;
  for (uint32_t y = 0; y < product.num_nodes; ++y) {
    if (in_at[y].empty() || out_at[y].empty()) continue;
    for (uint32_t ein : in_at[y]) {
      const FactId f = product.edges[ein].fact;
      for (uint32_t eout : out_at[y]) {
        const FactId g = product.edges[eout].fact;
        if (f == g) {
          return Status::NotSupported(
              "rpq instance is not scan-orderable: a walk can consume fact " +
              product.db.FactToString(f) + " twice in a row");
        }
        const uint64_t key = (static_cast<uint64_t>(f) << 32) | g;
        if (!seen_constraints.insert(key).second) continue;
        succ[f].push_back(g);
        ++indegree[g];
      }
    }
  }
  if (stats != nullptr) stats->scan_constraints = seen_constraints.size();

  // Kahn toposort, smallest FactId first: σ is a deterministic function of
  // the product alone.
  std::vector<FactId> sigma;
  sigma.reserve(n);
  std::priority_queue<FactId, std::vector<FactId>, std::greater<FactId>> ready;
  for (FactId f = 0; f < n; ++f) {
    if (indegree[f] == 0) ready.push(f);
  }
  while (!ready.empty()) {
    const FactId f = ready.top();
    ready.pop();
    sigma.push_back(f);
    for (FactId g : succ[f]) {
      if (--indegree[g] == 0) ready.push(g);
    }
  }
  if (sigma.size() < n) {
    return Status::NotSupported(
        "rpq instance is not scan-orderable: the fact-precedence constraints "
        "contain a cycle (cyclic data reachable under the regex)");
  }
  std::vector<size_t> position(n, 0);
  for (size_t i = 0; i < n; ++i) position[sigma[i]] = i;

  // Position-indexed automaton: state (i, l) = "scanned the first i facts of
  // σ; some walk over witnessed facts ends at lane l". Scanning σ(i) either
  // skips it (any lane, both literals) or witnesses it (its useful product
  // edges, positive literal only).
  for (size_t i = 0; i <= n; ++i) {
    for (size_t l = 0; l < L; ++l) nfa.AddState();
  }
  for (size_t i = 0; i < n; ++i) {
    const FactId f = sigma[i];
    const SymbolId pos = PositiveLiteral(f);
    const SymbolId neg = NegativeLiteral(f);
    for (size_t l = 0; l < L; ++l) {
      const StateId from = static_cast<StateId>(i * L + l);
      const StateId to = static_cast<StateId>((i + 1) * L + l);
      nfa.AddTransition(from, pos, to);
      nfa.AddTransition(from, neg, to);
    }
  }
  for (const RpqProduct::Edge& e : product.edges) {
    if (!product.UsefulEdge(e)) continue;
    const size_t i = position[e.fact];
    nfa.AddTransition(static_cast<StateId>(i * L + lane[e.from]),
                      PositiveLiteral(e.fact),
                      static_cast<StateId>((i + 1) * L + lane[e.to]));
  }
  for (size_t l = 0; l < L; ++l) {
    const uint32_t u = lane_node[l];
    if (product.is_initial[u]) nfa.MarkInitial(static_cast<StateId>(l));
    if (product.is_accepting[u]) {
      nfa.MarkAccepting(static_cast<StateId>(n * L + l));
    }
  }
  nfa.Trim();
  return out;
}

Result<PathPqeSkeleton> BuildRpqSkeleton(const RpqQuery& query,
                                         const Database& db,
                                         RpqCompileStats* stats) {
  PQE_ASSIGN_OR_RETURN(RpqProduct product, BuildRpqProduct(query, db));
  return BuildRpqSkeletonFromProduct(product, stats);
}

Result<DnfLineage> BuildRpqLineage(const RpqProduct& product,
                                   size_t max_clauses) {
  DnfLineage out;
  out.num_facts = product.db.NumFacts() + product.dropped_facts;
  if (product.trivially_true) {
    out.clauses.push_back({});  // the constant-true DNF
    return out;
  }
  const size_t max_expansions = 64 * max_clauses;
  size_t expansions = 0;

  // Per-node out-edges in (fact, to) order — product.edges is already sorted
  // that way, so pushing in edge order keeps DFS deterministic. Dead ends
  // (non-coreachable targets) are pruned up front.
  std::vector<std::vector<uint32_t>> adj(product.num_nodes);
  for (uint32_t e = 0; e < product.edges.size(); ++e) {
    if (product.UsefulEdge(product.edges[e])) {
      adj[product.edges[e].from].push_back(e);
    }
  }

  std::vector<uint8_t> on_path(product.num_nodes, 0);
  std::vector<FactId> path_facts;
  struct Frame {
    uint32_t node;
    size_t next_edge;
  };
  std::vector<Frame> stack;

  auto emit = [&]() -> Status {
    std::vector<FactId> clause;
    clause.reserve(path_facts.size());
    for (FactId f : path_facts) clause.push_back(product.original_fact[f]);
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    out.clauses.push_back(std::move(clause));
    if (out.clauses.size() > max_clauses) {
      return Status::ResourceExhausted(
          "rpq lineage exceeds the clause budget");
    }
    return Status::OK();
  };

  for (uint32_t s = 0; s < product.num_nodes; ++s) {
    if (!product.is_initial[s] || !product.Useful(s)) continue;
    // An accepting initial node would mean ε-acceptance, which the
    // trivially_true branch owns; node-simple DFS from here, emitting at the
    // first accepting node of each path prefix.
    on_path[s] = 1;
    stack.push_back({s, 0});
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next_edge >= adj[top.node].size()) {
        on_path[top.node] = 0;
        if (stack.size() > 1) path_facts.pop_back();
        stack.pop_back();
        continue;
      }
      const RpqProduct::Edge& e = product.edges[adj[top.node][top.next_edge]];
      ++top.next_edge;
      if (on_path[e.to]) continue;
      if (++expansions > max_expansions) {
        return Status::ResourceExhausted(
            "rpq lineage DFS exceeds the expansion budget");
      }
      path_facts.push_back(e.fact);
      if (product.is_accepting[e.to]) {
        // Truncating at the first accepting node is complete: any longer
        // walk through e.to has this prefix as a clause-subset witness.
        PQE_RETURN_IF_ERROR(emit());
        path_facts.pop_back();
        continue;
      }
      on_path[e.to] = 1;
      stack.push_back({e.to, 0});
    }
  }
  std::sort(out.clauses.begin(), out.clauses.end());
  out.clauses.erase(std::unique(out.clauses.begin(), out.clauses.end()),
                    out.clauses.end());
  return out;
}

bool RpqSatisfiedInWorld(const RpqProduct& product,
                         const std::vector<bool>& present) {
  if (product.trivially_true) return true;
  std::vector<std::vector<uint32_t>> adj(product.num_nodes);
  for (uint32_t e = 0; e < product.edges.size(); ++e) {
    if (present[product.edges[e].fact]) {
      adj[product.edges[e].from].push_back(e);
    }
  }
  std::vector<uint8_t> seen(product.num_nodes, 0);
  std::vector<uint32_t> frontier;
  for (uint32_t u = 0; u < product.num_nodes; ++u) {
    if (product.is_initial[u]) {
      if (product.is_accepting[u]) return true;
      seen[u] = 1;
      frontier.push_back(u);
    }
  }
  while (!frontier.empty()) {
    const uint32_t u = frontier.back();
    frontier.pop_back();
    for (uint32_t e : adj[u]) {
      const uint32_t v = product.edges[e].to;
      if (seen[v]) continue;
      if (product.is_accepting[v]) return true;
      seen[v] = 1;
      frontier.push_back(v);
    }
  }
  return false;
}

Result<BigRational> ExactRpqProbabilityByEnumeration(
    const RpqQuery& query, const ProbabilisticDatabase& pdb,
    size_t max_facts) {
  PQE_ASSIGN_OR_RETURN(RpqProduct product,
                       BuildRpqProduct(query, pdb.database()));
  const size_t m = product.db.NumFacts();
  if (m > max_facts) {
    return Status::InvalidArgument(
        "ExactRpqProbabilityByEnumeration: projected database too large for "
        "world enumeration");
  }
  BigRational total = BigRational::Zero();
  std::vector<bool> present(m, false);
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    for (size_t i = 0; i < m; ++i) present[i] = ((mask >> i) & 1) != 0;
    if (!RpqSatisfiedInWorld(product, present)) continue;
    BigRational term = BigRational::One();
    for (size_t i = 0; i < m; ++i) {
      const Probability p = pdb.probability(product.original_fact[i]);
      term = term.Mul(present[i] ? BigRational(p.num, p.den)
                                 : BigRational(p.den - p.num, p.den));
    }
    total = total.Add(term);
  }
  return total.Normalized();
}

}  // namespace rpq
}  // namespace pqe
