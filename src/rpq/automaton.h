#ifndef PQE_RPQ_AUTOMATON_H_
#define PQE_RPQ_AUTOMATON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rpq/regex.h"
#include "util/result.h"

namespace pqe {
namespace rpq {

/// One labeled transition of a query NFA. `label` indexes QueryNfa::labels;
/// `inverse` marks 2RPQ backward traversal (consume an edge target -> source).
struct QueryEdge {
  uint32_t from = 0;
  uint32_t label = 0;
  bool inverse = false;
  uint32_t to = 0;
};

/// The query automaton of a regular path query: Thompson construction over
/// the parsed expression followed by ε-elimination, so the result has
/// labeled transitions only. State 0 is the unique initial state; states are
/// renumbered densely over the ε-free reachable core, and transitions are
/// sorted (from, label, inverse, to) — the compilation is a deterministic
/// function of the canonical regex, which the serving content keys rely on.
struct QueryNfa {
  uint32_t num_states = 0;
  std::vector<std::string> labels;  // distinct, first-occurrence order
  std::vector<QueryEdge> edges;
  std::vector<uint32_t> accepting;  // sorted state ids
  /// True iff the expression matches the empty path (ε ∈ L): the query is
  /// then satisfied by every world over a non-empty active domain.
  bool accepts_epsilon = false;

  bool IsAccepting(uint32_t s) const {
    for (uint32_t a : accepting) {
      if (a == s) return true;
    }
    return false;
  }
};

/// Compiles the parsed expression. Never fails for a parsed RpqQuery today;
/// the Result guards future resource limits.
Result<QueryNfa> CompileRegex(const RpqQuery& query);

/// Test oracle: does the automaton accept the word of (label index, inverse)
/// steps? Plain subset simulation.
bool AcceptsSteps(const QueryNfa& nfa,
                  const std::vector<std::pair<uint32_t, bool>>& steps);

}  // namespace rpq
}  // namespace pqe

#endif  // PQE_RPQ_AUTOMATON_H_
