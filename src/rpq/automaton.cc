#include "rpq/automaton.h"

#include <algorithm>
#include <queue>

namespace pqe {
namespace rpq {

namespace {

/// Thompson construction scratch: states with ε-edges and labeled edges,
/// one (start, accept) pair per compiled fragment.
struct Thompson {
  struct Edge {
    uint32_t from;
    uint32_t label;
    bool inverse;
    uint32_t to;
  };
  std::vector<std::vector<uint32_t>> eps;  // adjacency
  std::vector<Edge> edges;
  std::vector<std::string> labels;

  uint32_t AddState() {
    eps.emplace_back();
    return static_cast<uint32_t>(eps.size() - 1);
  }
  void AddEps(uint32_t from, uint32_t to) { eps[from].push_back(to); }
  uint32_t InternLabel(const std::string& name) {
    for (uint32_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == name) return i;
    }
    labels.push_back(name);
    return static_cast<uint32_t>(labels.size() - 1);
  }

  struct Frag {
    uint32_t start;
    uint32_t accept;
  };

  Frag Compile(const RegexNode& node) {
    switch (node.kind) {
      case RegexKind::kLabel: {
        const uint32_t s = AddState();
        const uint32_t t = AddState();
        edges.push_back({s, InternLabel(node.label), node.inverse, t});
        return {s, t};
      }
      case RegexKind::kConcat: {
        Frag acc = Compile(*node.children[0]);
        for (size_t i = 1; i < node.children.size(); ++i) {
          const Frag next = Compile(*node.children[i]);
          AddEps(acc.accept, next.start);
          acc.accept = next.accept;
        }
        return acc;
      }
      case RegexKind::kAlt: {
        const uint32_t s = AddState();
        const uint32_t t = AddState();
        for (const RegexPtr& c : node.children) {
          const Frag arm = Compile(*c);
          AddEps(s, arm.start);
          AddEps(arm.accept, t);
        }
        return {s, t};
      }
      case RegexKind::kStar: {
        const uint32_t s = AddState();
        const uint32_t t = AddState();
        const Frag body = Compile(*node.children[0]);
        AddEps(s, body.start);
        AddEps(s, t);
        AddEps(body.accept, body.start);
        AddEps(body.accept, t);
        return {s, t};
      }
      case RegexKind::kPlus: {
        const uint32_t s = AddState();
        const uint32_t t = AddState();
        const Frag body = Compile(*node.children[0]);
        AddEps(s, body.start);
        AddEps(body.accept, body.start);
        AddEps(body.accept, t);
        return {s, t};
      }
      case RegexKind::kOpt: {
        const uint32_t s = AddState();
        const uint32_t t = AddState();
        const Frag body = Compile(*node.children[0]);
        AddEps(s, body.start);
        AddEps(s, t);
        AddEps(body.accept, t);
        return {s, t};
      }
    }
    return {AddState(), AddState()};  // unreachable
  }

  /// Sorted ε-closure of one state.
  std::vector<uint32_t> Closure(uint32_t s) const {
    std::vector<uint32_t> out;
    std::vector<bool> seen(eps.size(), false);
    std::vector<uint32_t> stack = {s};
    seen[s] = true;
    while (!stack.empty()) {
      const uint32_t u = stack.back();
      stack.pop_back();
      out.push_back(u);
      for (uint32_t v : eps[u]) {
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

}  // namespace

Result<QueryNfa> CompileRegex(const RpqQuery& query) {
  Thompson t;
  const Thompson::Frag frag = t.Compile(query.root());

  // ε-elimination: s --a--> u for every u reachable as closure(s) --a--> u.
  // Acceptance: closure(s) hits the Thompson accept state.
  const size_t n = t.eps.size();
  std::vector<std::vector<uint32_t>> closure(n);
  for (uint32_t s = 0; s < n; ++s) closure[s] = t.Closure(s);

  // Labeled out-edges grouped by source, for the closure expansion.
  std::vector<std::vector<uint32_t>> out_edges(n);
  for (uint32_t e = 0; e < t.edges.size(); ++e) {
    out_edges[t.edges[e].from].push_back(e);
  }

  auto eps_free_edges = [&](uint32_t s) {
    std::vector<QueryEdge> out;
    for (uint32_t c : closure[s]) {
      for (uint32_t e : out_edges[c]) {
        const Thompson::Edge& edge = t.edges[e];
        out.push_back({s, edge.label, edge.inverse, edge.to});
      }
    }
    return out;
  };
  auto accepting_state = [&](uint32_t s) {
    return std::binary_search(closure[s].begin(), closure[s].end(),
                              frag.accept);
  };

  // Keep only states reachable from the start via ε-free edges (the start
  // itself always survives), renumbered densely in BFS-discovery order with
  // the start as state 0 — a deterministic function of the expression tree.
  std::vector<uint32_t> dense(n, UINT32_MAX);
  std::vector<uint32_t> order;
  dense[frag.start] = 0;
  order.push_back(frag.start);
  for (size_t head = 0; head < order.size(); ++head) {
    for (const QueryEdge& e : eps_free_edges(order[head])) {
      if (dense[e.to] == UINT32_MAX) {
        dense[e.to] = static_cast<uint32_t>(order.size());
        order.push_back(e.to);
      }
    }
  }

  QueryNfa out;
  out.num_states = static_cast<uint32_t>(order.size());
  out.labels = t.labels;
  out.accepts_epsilon = accepting_state(frag.start);
  for (uint32_t s : order) {
    if (accepting_state(s)) out.accepting.push_back(dense[s]);
    for (const QueryEdge& e : eps_free_edges(s)) {
      out.edges.push_back({dense[e.from], e.label, e.inverse, dense[e.to]});
    }
  }
  std::sort(out.accepting.begin(), out.accepting.end());
  std::sort(out.edges.begin(), out.edges.end(),
            [](const QueryEdge& a, const QueryEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.label != b.label) return a.label < b.label;
              if (a.inverse != b.inverse) return a.inverse < b.inverse;
              return a.to < b.to;
            });
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end(),
                              [](const QueryEdge& a, const QueryEdge& b) {
                                return a.from == b.from && a.label == b.label &&
                                       a.inverse == b.inverse && a.to == b.to;
                              }),
                  out.edges.end());
  return out;
}

bool AcceptsSteps(const QueryNfa& nfa,
                  const std::vector<std::pair<uint32_t, bool>>& steps) {
  std::vector<bool> active(nfa.num_states, false);
  if (nfa.num_states == 0) return false;
  active[0] = true;
  for (const auto& [label, inverse] : steps) {
    std::vector<bool> next(nfa.num_states, false);
    for (const QueryEdge& e : nfa.edges) {
      if (e.label == label && e.inverse == inverse && active[e.from]) {
        next[e.to] = true;
      }
    }
    active = std::move(next);
  }
  for (uint32_t a : nfa.accepting) {
    if (active[a]) return true;
  }
  return false;
}

}  // namespace rpq
}  // namespace pqe
