#include "serve/prepared_cache.h"

#include <chrono>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "rpq/regex.h"

namespace pqe {
namespace serve {

namespace {

void MixBytes(uint64_t* h, const std::string& s) {
  for (unsigned char c : s) {
    *h ^= c;
    *h *= 1099511628211ull;
  }
  // Delimit fields so concatenations can't alias across boundaries.
  *h ^= 0xffu;
  *h *= 1099511628211ull;
}

void MixU64(uint64_t* h, uint64_t v) {
  *h ^= v;
  *h *= 1099511628211ull;
}

}  // namespace

uint64_t PreparedCache::ContentKey(const ConjunctiveQuery& query,
                                   const Database& db, size_t max_width) {
  uint64_t h = 1469598103934665603ull;
  MixBytes(&h, query.ToString(db.schema()));
  MixU64(&h, db.NumFacts());
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    MixBytes(&h, db.FactToString(f));
  }
  MixU64(&h, max_width);
  return h;
}

uint64_t PreparedCache::RpqContentKey(const rpq::RpqQuery& query,
                                      const Database& db) {
  uint64_t h = 1469598103934665603ull;
  // The tag keeps an RPQ and a CQ that happen to render identically from
  // colliding by construction.
  MixBytes(&h, "rpq");
  MixBytes(&h, query.Canonical());
  MixU64(&h, db.NumFacts());
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    MixBytes(&h, db.FactToString(f));
  }
  return h;
}

PreparedCache::PreparedCache(size_t capacity, size_t bind_cache_capacity)
    : capacity_(capacity < 1 ? 1 : capacity),
      bind_cache_capacity_(bind_cache_capacity < 1 ? 1
                                                   : bind_cache_capacity) {}

Result<std::shared_ptr<const PreparedQuery>> PreparedCache::GetOrPrepare(
    const ConjunctiveQuery& query, const Database& db,
    const UrConstructionOptions& options, LookupResult* lookup) {
  return GetOrPrepareImpl(
      ContentKey(query, db, options.max_width),
      [&]() {
        return PreparedQuery::Prepare(query, db, options,
                                      bind_cache_capacity_);
      },
      lookup);
}

Result<std::shared_ptr<const PreparedQuery>> PreparedCache::GetOrPrepareRpq(
    const rpq::RpqQuery& query, const Database& db, LookupResult* lookup) {
  return GetOrPrepareImpl(
      RpqContentKey(query, db),
      [&]() {
        return PreparedQuery::PrepareRpq(query, db, bind_cache_capacity_);
      },
      lookup);
}

Result<std::shared_ptr<const PreparedQuery>> PreparedCache::GetOrPrepareImpl(
    uint64_t key,
    const std::function<Result<std::shared_ptr<const PreparedQuery>>()>&
        compile,
    LookupResult* lookup) {
  std::shared_ptr<Slot> slot;
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Touch: move to the MRU end.
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second = lru_.begin();
      slot = it->second->second;
    } else {
      slot = std::make_shared<Slot>();
      lru_.emplace_front(key, slot);
      index_[key] = lru_.begin();
      inserted = true;
      while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
        obs::MetricRegistry::Global()
            .GetCounter("serve.cache_evictions")
            .Increment();
      }
    }
  }
  if (inserted) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricRegistry::Global().GetCounter("serve.cache_misses").Increment();
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricRegistry::Global().GetCounter("serve.cache_hits").Increment();
  }
  if (lookup != nullptr) lookup->hit = !inserted;

  // Compile outside the cache lock; concurrent requests for this key all
  // block here and share the one build.
  std::call_once(slot->once, [&]() {
    const auto compile_start = std::chrono::steady_clock::now();
    auto prepared = compile();
    if (prepared.ok()) {
      slot->prepared = std::move(*prepared);
    } else {
      slot->status = prepared.status();
    }
    slot->ready.store(true, std::memory_order_release);
    if (lookup != nullptr) {
      lookup->compile_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - compile_start)
              .count());
    }
  });
  if (!slot->status.ok()) {
    // Don't retain failures: drop the slot (if it's still ours) so a later
    // request retries instead of replaying a stale error forever.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end() && it->second->second == slot) {
      lru_.erase(it->second);
      index_.erase(it);
    }
    return slot->status;
  }
  return slot->prepared;
}

PreparedCache::Stats PreparedCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

size_t PreparedCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::vector<std::shared_ptr<const PreparedQuery>> PreparedCache::Snapshot()
    const {
  std::vector<std::shared_ptr<const PreparedQuery>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(lru_.size());
  for (const auto& entry : lru_) {
    const Slot& slot = *entry.second;
    if (!slot.ready.load(std::memory_order_acquire)) continue;
    if (slot.prepared != nullptr) out.push_back(slot.prepared);
  }
  return out;
}

}  // namespace serve
}  // namespace pqe
