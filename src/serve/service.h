#ifndef PQE_SERVE_SERVICE_H_
#define PQE_SERVE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "serve/prepared_cache.h"
#include "serve/telemetry.h"
#include "serve/workload.h"

namespace pqe {
namespace serve {

/// The prepared-query serving facade: accepts EvalRequest batches, serves
/// kFpras-routed conjunctive queries through the PreparedCache (compile
/// once, rebind per labelling), and delegates every other target/method to
/// an embedded PqeEngine. Responses never come back as exceptions or hangs:
/// per-request deadlines (EvalRequest::deadline_ms) are enforced
/// cooperatively inside the sampling loops, and an expired request returns
/// a kDeadlineExceeded status with its partial progress.
///
/// Determinism: a request's answer depends only on the request itself
/// (inputs, effective seed) — never on batch size, batch order, or the
/// serving thread count. Requests without an explicit seed get
/// Rng::DeriveSeed(engine.seed, request_id), so re-submitting the same
/// request reproduces the same answer bit for bit, alone or in any batch.
///
/// Thread-safe; one service instance is meant to be shared.
class PqeService {
 public:
  struct Options {
    /// Defaults applied to every request (per-request optionals override).
    PqeEngine::Options engine;
    /// Maximum prepared (query, database) skeletons retained.
    size_t cache_capacity = 32;
    /// Bound labellings each prepared query retains (LRU, min 1). Depth >1
    /// is what makes alternating labellings and delta rebinds cheap.
    size_t bind_cache_capacity = 4;
    /// Threads used to fan a batch out (0 = auto: $PQE_THREADS, else 1).
    /// When a batch runs on >1 threads, each request's inner sampling runs
    /// single-threaded — the shared pool is not reentrant — which changes
    /// nothing about the answers (see docs/parallelism.md).
    size_t num_threads = 0;
    /// Opt-in workload capture: when non-empty, every request is appended
    /// to this JSONL file (see serve/workload.h). Open failures are
    /// reported once via capture_status() and disable capture.
    std::string capture_path;
    /// Entries retained in the slow-query log (0 disables it).
    size_t slow_log_capacity = 8;
  };

  explicit PqeService(Options options);
  PqeService() : PqeService(Options{}) {}

  PqeService(const PqeService&) = delete;
  PqeService& operator=(const PqeService&) = delete;

  /// Serves one request (request_id 0 stays 0; no batch index to borrow).
  EvalResponse Evaluate(const EvalRequest& request) const;

  /// Serves a batch, fanning out over the shared thread pool. Response i
  /// answers request i. Requests with request_id == 0 get their batch index
  /// as effective id (seeds stay per-request deterministic).
  std::vector<EvalResponse> EvaluateBatch(
      const std::vector<EvalRequest>& requests) const;

  const Options& options() const { return options_; }
  const PreparedCache& cache() const { return *cache_; }

  /// Aggregated request telemetry: counts by outcome and cache class,
  /// per-stage latency quantiles (p50/p95/p99), and the slow-query log.
  /// Lock-cheap; safe to call while requests are in flight (relaxed-atomics
  /// contract, see obs::MetricRegistry).
  ServiceStats StatsSnapshot() const { return telemetry_.Snapshot(); }

  /// Zeroes the telemetry aggregates (counts, stage histograms, slow-query
  /// log and its admission floor). Epoch boundary for long-lived services:
  /// warmup traffic stops polluting steady-state quantiles.
  void ResetStats() const { telemetry_.Reset(); }

  /// OK when capture is off or the capture file opened; the open error
  /// otherwise (requests still serve, they just aren't recorded).
  const Status& capture_status() const { return capture_status_; }

  /// Outcome of one ApplyUpdate call, aggregated over every resident
  /// prepared query.
  struct UpdateStats {
    size_t facts = 0;             // delta entries written into the pdb
    size_t prepared_visited = 0;  // prepared queries the delta was pushed to
    size_t delta_rebinds = 0;     // binds refreshed by the in-place patch
    size_t full_rebinds = 0;      // binds that fell back to full expansion
    size_t untouched = 0;         // queries with nothing to refresh (never
                                  // bound, or already bound to the result)
  };

  /// Applies a fact-probability delta: writes the new probabilities into
  /// `pdb` (the database later requests will carry), then pushes the delta
  /// to every resident prepared query so its bind is refreshed eagerly —
  /// by the in-place gadget patch when the labelling's denominators are
  /// unchanged, by a full rebind otherwise. After ApplyUpdate returns, a
  /// request over the updated pdb is a warm bind hit, and its answer is
  /// bit-identical to a cold evaluation of the updated database (the
  /// determinism contract; enforced by delta_rebind_test and E14).
  /// Registered watchers are notified synchronously before returning.
  Result<UpdateStats> ApplyUpdate(ProbabilisticDatabase* pdb,
                                  const LabelDelta& delta) const;

  /// Minimal subscription stub over ApplyUpdate: `callback` runs
  /// synchronously inside every subsequent ApplyUpdate, after the delta has
  /// been applied and the resident binds refreshed — so the callback can
  /// evaluate immediately and hit the warm (already patched) bind, no
  /// polling. Returns a token for Unwatch. A full Watch(query) API with
  /// per-query filtering and push evaluation is future work (ROADMAP);
  /// this hook is its substrate.
  using WatchCallback =
      std::function<void(const LabelDelta&, const UpdateStats&)>;
  uint64_t Watch(WatchCallback callback) const;
  /// Removes a watcher; false when the token is unknown.
  bool Unwatch(uint64_t token) const;

 private:
  /// `inner_threads_override` > 0 pins the request's sampling thread count
  /// (batch fan-out pins 1; 0 means inherit the engine options).
  EvalResponse EvaluateOne(const EvalRequest& request, uint64_t effective_id,
                           size_t inner_threads_override) const;

  /// The prepared fast path; only called for kQuery requests whose method
  /// resolves to kFpras. Mirrors PqeEngine::EvaluateRequest's envelope
  /// (deadline token, status mapping, elapsed/progress accounting).
  /// Fills `telemetry`'s stage timings and cache class as it goes.
  EvalResponse EvaluatePrepared(const EvalRequest& request,
                                uint64_t effective_id,
                                const PqeEngine::Options& opts,
                                RequestTelemetry* telemetry) const;

  void CaptureRequest(const EvalRequest& request, uint64_t effective_id,
                      const PqeEngine::Options& opts,
                      const EvalResponse& resp) const;

  Options options_;
  PqeEngine engine_;
  std::unique_ptr<PreparedCache> cache_;
  mutable ServiceTelemetry telemetry_;
  std::unique_ptr<WorkloadRecorder> recorder_;
  Status capture_status_;

  mutable std::mutex watch_mu_;
  mutable uint64_t next_watch_token_ = 1;
  mutable std::list<std::pair<uint64_t, WatchCallback>> watchers_;
};

}  // namespace serve
}  // namespace pqe

#endif  // PQE_SERVE_SERVICE_H_
