#include "serve/faultsim.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "cq/builders.h"
#include "rpq/regex.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace serve {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void Mix(uint64_t* h, uint64_t v) {
  *h ^= v;
  *h *= kFnvPrime;
}

uint64_t ProbabilityBits(const EvalResponse& resp) {
  uint64_t bits = 0;
  std::memcpy(&bits, &resp.answer.probability, sizeof(bits));
  return bits;
}

}  // namespace

FaultDecision DecideFault(uint64_t seed, const ShardCall& call,
                          const FaultSpec& spec) {
  // One derived generator per call identity: the stream is fixed by the
  // (seed, shard, request, attempt) tuple alone, so decisions commute with
  // any call ordering — the precondition for exact replay.
  const uint64_t call_key =
      Rng::DeriveSeed(Rng::DeriveSeed(seed, call.shard),
                      call.request_id * 64 + call.attempt);
  Rng rng(call_key);
  FaultDecision d;
  const double coin = rng.NextDouble();
  if (coin < spec.crash_rate) {
    d.crash = true;
  } else if (coin < spec.crash_rate + spec.drop_rate) {
    d.drop = true;
  }
  if (spec.delay_rate > 0.0 && rng.NextDouble() < spec.delay_rate &&
      spec.max_delay_ms > 0) {
    d.delay_ms = 1 + rng.NextBounded(spec.max_delay_ms);
  }
  return d;
}

FaultInjectingTransport::FaultInjectingTransport(
    uint64_t seed, const FaultSpec& spec, ShardCluster* cluster,
    std::unique_ptr<ShardTransport> base)
    : seed_(seed), spec_(spec), cluster_(cluster), base_(std::move(base)) {}

Result<EvalResponse> FaultInjectingTransport::Call(
    const ShardCall& call, const EvalRequest& request) {
  const FaultDecision d = DecideFault(seed_, call, spec_);
  if (d.delay_ms > 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
  }
  if (d.crash) {
    // The shard dies mid-call: whatever work it did is lost with it, and
    // every later call routed there sees a dead shard.
    crashes_.fetch_add(1, std::memory_order_relaxed);
    cluster_->shard(call.shard).Crash();
    return Status::Unavailable("injected crash of shard " +
                               std::to_string(call.shard));
  }
  if (d.drop) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected message drop to shard " +
                               std::to_string(call.shard));
  }
  return base_->Call(call, request);
}

FaultInjectingTransport::Counts FaultInjectingTransport::counts() const {
  Counts c;
  c.crashes = crashes_.load(std::memory_order_relaxed);
  c.drops = drops_.load(std::memory_order_relaxed);
  c.delays = delays_.load(std::memory_order_relaxed);
  return c;
}

std::string FaultSimReport::Summary() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "faultsim seed=%llu: %zu requests, %zu answered, %zu lost, %zu failed"
      " | injected crashes=%llu drops=%llu delays=%llu"
      " | retries=%llu hedges=%llu shards_dead=%zu"
      " | survivors %s, replay %s",
      static_cast<unsigned long long>(seed), requests, answered, lost, failed,
      static_cast<unsigned long long>(crashes),
      static_cast<unsigned long long>(drops),
      static_cast<unsigned long long>(delays),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(hedges), shards_dead,
      mismatched == 0 ? "bit-identical"
                      : (std::to_string(mismatched) + " MISMATCHED").c_str(),
      replay_identical ? "exact" : "DIVERGED");
  return buf;
}

namespace {

// One experiment's workload: the (query, database) variants must outlive
// the requests referencing them.
struct Workload {
  std::vector<QueryInstance> queries;
  std::vector<ProbabilisticDatabase> pdbs;
  std::vector<rpq::RpqQuery> rpqs;        // share rpq_pdb
  std::vector<ProbabilisticDatabase> rpq_pdbs;
  std::vector<EvalRequest> requests;
};

Result<Workload> BuildWorkload(const FaultSimOptions& options) {
  Workload w;
  const size_t variants = options.variants == 0 ? 1 : options.variants;
  w.queries.reserve(variants);
  w.pdbs.reserve(variants);
  for (size_t v = 0; v < variants; ++v) {
    // Path lengths 2..4 over differently-seeded layered graphs: distinct
    // content keys, so the workload spreads across the shards.
    PQE_ASSIGN_OR_RETURN(QueryInstance qi,
                         MakePathQuery(2 + static_cast<uint32_t>(v % 3)));
    LayeredGraphOptions gopt;
    gopt.width = 3;
    gopt.density = 0.6;
    gopt.seed = Rng::DeriveSeed(options.seed, 100 + v);
    PQE_ASSIGN_OR_RETURN(Database db, MakeLayeredPathDatabase(qi, gopt));
    ProbabilityModel pm;
    pm.max_denominator = 8;
    pm.seed = Rng::DeriveSeed(options.seed, 200 + v);
    w.pdbs.push_back(AttachProbabilities(std::move(db), pm));
    w.queries.push_back(std::move(qi));
  }
  // An RPQ leg rides the same fault schedule: regular path queries over a
  // labelled knowledge graph, routed by RPQ content key like any client
  // request. Facts of the layered KG arrive in topological order, so these
  // stay on the prepared FPRAS route under the forced-kFpras router config.
  KgReachabilityOptions kopt;
  kopt.layers = 3;
  kopt.width = 3;
  kopt.density = 0.6;
  kopt.seed = Rng::DeriveSeed(options.seed, 300);
  PQE_ASSIGN_OR_RETURN(Database kg, MakeKgReachabilityDatabase(kopt));
  ProbabilityModel kpm;
  kpm.max_denominator = 8;
  kpm.seed = Rng::DeriveSeed(options.seed, 301);
  w.rpq_pdbs.push_back(AttachProbabilities(std::move(kg), kpm));
  for (const char* text : {"a/(a|b)*/a", "(a|b)+"}) {
    PQE_ASSIGN_OR_RETURN(rpq::RpqQuery rq, rpq::RpqQuery::Parse(text));
    w.rpqs.push_back(std::move(rq));
  }
  w.requests.reserve(options.requests);
  for (size_t i = 0; i < options.requests; ++i) {
    EvalRequest r = [&] {
      if (i % 8 == 7) {  // every 8th request exercises the RPQ target
        return EvalRequest::ForRpq(w.rpqs[(i / 8) % w.rpqs.size()],
                                   w.rpq_pdbs[0]);
      }
      const size_t v = i % variants;
      return EvalRequest::ForQuery(w.queries[v].query, w.pdbs[v]);
    }();
    r.request_id = i + 1;
    // Explicit per-request seeds: the answer is a pure function of the
    // request, independent of which shard (or run) computes it.
    r.seed = Rng::DeriveSeed(options.seed ^ 0x5eedfa57ull, i);
    w.requests.push_back(r);
  }
  return w;
}

ShardRouter::Options RouterOptions(const FaultSimOptions& options) {
  ShardRouter::Options ropt;
  ropt.num_shards = options.num_shards;
  ropt.max_attempts = options.max_attempts;
  ropt.hedge_fraction = 0.5;
  // Sequential fan-out: the order calls hit the transport — and therefore
  // the order crashes take effect relative to later requests — is part of
  // the seed's schedule, so a failing seed replays exactly.
  ropt.num_threads = 1;
  auto engine = PqeEngine::Options::Builder()
                    .Method(PqeMethod::kFpras)
                    .Epsilon(0.3)
                    .Seed(0xfa5e ^ options.seed)
                    .PoolSize(32)
                    .Repetitions(1)
                    .NumThreads(1)
                    .Build();
  if (engine.ok()) ropt.service.engine = *engine;
  ropt.service.num_threads = 1;
  ropt.service.slow_log_capacity = 0;
  return ropt;
}

struct FaultedOutcome {
  ShardRouter::BatchResult batch;
  FaultInjectingTransport::Counts counts;
  ShardRouter::Stats stats;
  size_t shards_dead = 0;
  uint64_t fingerprint = 0;
};

FaultedOutcome RunFaulted(const FaultSimOptions& options,
                          const Workload& workload) {
  FaultInjectingTransport* transport = nullptr;
  ShardRouter router(
      RouterOptions(options), [&](ShardCluster* cluster) {
        auto t = std::make_unique<FaultInjectingTransport>(
            options.seed, options.faults, cluster,
            std::make_unique<DirectTransport>(cluster));
        transport = t.get();
        return t;
      });
  FaultedOutcome out;
  out.batch = router.EvaluateBatch(workload.requests);
  out.counts = transport->counts();
  out.stats = router.stats();
  out.shards_dead = router.cluster().size() - router.cluster().alive_count();
  // The outcome fingerprint: per-request statuses and answer bits, then the
  // injected-event and reaction counters. Two runs of one seed must agree
  // on every term.
  uint64_t h = kFnvOffset;
  for (const EvalResponse& resp : out.batch.responses) {
    Mix(&h, static_cast<uint64_t>(resp.status.code()));
    Mix(&h, resp.status.ok() ? ProbabilityBits(resp) : 0);
  }
  Mix(&h, out.counts.crashes);
  Mix(&h, out.counts.drops);
  Mix(&h, out.counts.delays);
  Mix(&h, out.stats.retries);
  Mix(&h, out.stats.hedges);
  Mix(&h, out.stats.lost);
  Mix(&h, out.shards_dead);
  out.fingerprint = h;
  return out;
}

}  // namespace

Result<FaultSimReport> RunFaultSim(const FaultSimOptions& options) {
  if (options.requests == 0) {
    return Status::InvalidArgument("faultsim: requests must be > 0");
  }
  PQE_ASSIGN_OR_RETURN(Workload workload, BuildWorkload(options));

  // The unfaulted truth: same router configuration, no interposition.
  ShardRouter baseline_router(RouterOptions(options));
  const ShardRouter::BatchResult baseline =
      baseline_router.EvaluateBatch(workload.requests);

  const FaultedOutcome faulted = RunFaulted(options, workload);
  const FaultedOutcome replay = RunFaulted(options, workload);

  FaultSimReport report;
  report.seed = options.seed;
  report.requests = workload.requests.size();
  report.answered = faulted.batch.answered;
  report.lost = faulted.batch.lost;
  report.failed = faulted.batch.failed;
  report.crashes = faulted.counts.crashes;
  report.drops = faulted.counts.drops;
  report.delays = faulted.counts.delays;
  report.retries = faulted.stats.retries;
  report.hedges = faulted.stats.hedges;
  report.shards_dead = faulted.shards_dead;
  report.replay_identical = faulted.fingerprint == replay.fingerprint;

  for (size_t i = 0; i < workload.requests.size(); ++i) {
    const EvalResponse& survived = faulted.batch.responses[i];
    if (!survived.status.ok()) continue;
    const EvalResponse& truth = baseline.responses[i];
    const bool identical =
        truth.status.ok() &&
        std::memcmp(&survived.answer.probability, &truth.answer.probability,
                    sizeof(double)) == 0;
    if (!identical) ++report.mismatched;
    if (options.verbose) {
      std::printf("  [%zu] %s p=%.17g %s\n", i + 1,
                  StatusCodeToString(survived.status.code()),
                  survived.answer.probability,
                  identical ? "== baseline" : "!= BASELINE");
    }
  }
  if (options.verbose) {
    for (size_t i = 0; i < workload.requests.size(); ++i) {
      const EvalResponse& resp = faulted.batch.responses[i];
      if (resp.status.ok()) continue;
      std::printf("  [%zu] %s\n", i + 1, resp.status.ToString().c_str());
    }
  }
  return report;
}

}  // namespace serve
}  // namespace pqe
