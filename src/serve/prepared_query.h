#ifndef PQE_SERVE_PREPARED_QUERY_H_
#define PQE_SERVE_PREPARED_QUERY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/path_pqe.h"
#include "core/pqe.h"
#include "core/ur_construction.h"
#include "counting/config.h"
#include "cq/query.h"
#include "pdb/database.h"
#include "pdb/probabilistic_database.h"
#include "util/result.h"

namespace pqe {
namespace serve {

/// A batch of fact-probability updates, in ORIGINAL-database FactIds (the
/// ids ProbabilisticDatabase::SetProbability takes). `facts` and `new_probs`
/// are parallel vectors. Facts a query's projection dropped are simply
/// untouched for that query — a delta can safely carry updates that only
/// some prepared queries care about.
struct LabelDelta {
  std::vector<FactId> facts;
  std::vector<Probability> new_probs;
};

/// A query compiled once per (query, database) pair and served many times.
///
/// Exploits the Theorem 1 split the core layer exposes: the hypertree
/// decomposition and Proposition 1 automaton depend only on the query and
/// the plain facts (the *skeleton*), while the §5.1 multiplier gadgets
/// depend on the probability labels (the *bind*). Prepare() pays for the
/// skeleton; each evaluation only rebinds — and rebinding is itself cached
/// in a small LRU of bound labellings, so serving a recent labelling again
/// reuses the gadget-expanded, CSR-warmed automaton outright.
///
/// Incremental maintenance: binds use the value-stable gadget layout
/// (core/pqe.h PqeBindLayout), so when a new labelling differs from a
/// cached one only in numerators, the bind is produced by *patching* the
/// prior bound automaton in place of its changed gadget slots (a delta
/// rebind) instead of re-running the whole gadget expansion. Structure
/// never changes — only transition targets inside touched gadgets — so the
/// warm CSR indexes keyed on (from, symbol) survive the patch and only the
/// target-keyed index is rebuilt. Denominator changes fall back to a full
/// rebind transparently.
///
/// Route selection mirrors PqeEngine's kFpras branch exactly: self-join-free
/// path queries stay in string automata (Section 3 + string gadgets),
/// everything else takes the generic tree pipeline. EvaluateFpras assembles
/// the same PqeAnswer the engine's cold path produces, bit for bit — the
/// skeleton/bind composition is the cold path (see core/pqe.cc), and the
/// counting layer is seeded identically.
///
/// Thread-safe after construction: concurrent EvaluateFpras calls share
/// bound automata behind a mutex-guarded LRU with per-slot once-flags
/// (concurrent misses on the same labelling block on one build — single
/// flight — instead of racing), and automata are warmed (run index /
/// adjacency CSR) before publication so const traversals from many threads
/// race on nothing.
class PreparedQuery {
 public:
  /// Compiles the probability-independent skeleton. Fails like the cold
  /// path would (NotSupported for self-joins, width overflow, ...).
  /// `db` must hold the same facts later evaluations' pdb wraps — the
  /// serving cache keys on that content (see PreparedCache).
  /// `bind_cache_capacity` bounds the LRU of bound labellings (min 1).
  /// Returned by shared_ptr because the object carries its own
  /// synchronization (mutex + bind slots) and is meant to be shared across
  /// serving threads.
  static Result<std::shared_ptr<const PreparedQuery>> Prepare(
      const ConjunctiveQuery& query, const Database& db,
      const UrConstructionOptions& options, size_t bind_cache_capacity = 4);

  /// Compiles a regular path query's skeleton (rpq::CompileRpqSkeleton): the
  /// degenerate concatenation-only case lowers to the linear path skeleton
  /// outright, everything else goes through the product construction. The
  /// result is a PathPqeSkeleton either way, so binds, delta rebinds, the
  /// bind LRU, and the answer memo all work unchanged. Fails like the
  /// engine's kFpras RPQ route would (NotSupported when the instance is not
  /// scan-orderable — the service falls back to the engine's lineage
  /// cascade).
  static Result<std::shared_ptr<const PreparedQuery>> PrepareRpq(
      const rpq::RpqQuery& query, const Database& db,
      size_t bind_cache_capacity = 4);

  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  /// True when the query serves through the Section 3 string specialization.
  bool is_path_route() const { return path_.has_value(); }

  /// Projected→original fact map of the skeleton: projected index j carries
  /// the probability of original fact original_fact()[j].
  const std::vector<FactId>& original_fact() const {
    return path_.has_value() ? path_->original_fact : tree_->original_fact;
  }

  /// Per-call work accounting for the serving telemetry plane. Timings are
  /// steady_clock (present in every build); fields for stages that did not
  /// run stay 0/false.
  struct EvalBreakdown {
    uint64_t bind_ns = 0;      // GetBound time (lookup or gadget expansion)
    uint64_t estimate_ns = 0;  // counting-layer sampling time
    bool bind_reused = false;      // a cached bind served this call
    bool bind_delta = false;       // this call's bind was a delta patch
    bool answer_memo_hit = false;  // the answer memo served this call
    uint64_t samples = 0;  // rejection-sampling attempts of the answer
  };

  /// Evaluates Pr_H(Q) over `pdb` with the combined FPRAS, rebinding the
  /// cached skeleton (or reusing a cached bind when `pdb`'s probability
  /// labels match a recent call's). The answer is bit-identical to
  /// PqeEngine's cold kFpras evaluation at equal (query, pdb, config).
  /// `config.cancel` is honored by the counting loops (kDeadlineExceeded).
  /// A repeat call with the same labels and the same draw-steering config
  /// returns the memoized previous answer (see Bound) — still bit-identical
  /// to the cold path, just without re-running the sampler.
  Result<PqeAnswer> EvaluateFpras(const ProbabilisticDatabase& pdb,
                                  const EstimatorConfig& config,
                                  EvalBreakdown* breakdown = nullptr) const;

  /// Outcome of one Rebind() call.
  struct RebindStats {
    bool reused = false;        // the labelling was already bound
    bool delta = false;         // bind produced by patching a prior bound
    size_t patched_slots = 0;   // gadget slots rewritten (delta path only)
    size_t untouched = 0;       // delta facts outside this query's projection
  };

  /// Applies `delta` on top of the most recently bound labelling and binds
  /// the result, preferring the in-place gadget patch. The new bound enters
  /// the LRU as MRU, so the next EvaluateFpras carrying the updated pdb is
  /// a warm bind hit. Fails with kNotFound when nothing has been bound yet
  /// (there is no labelling to apply the delta to — the caller should just
  /// evaluate, paying the ordinary first bind).
  Result<RebindStats> Rebind(const LabelDelta& delta) const;

  /// Number of EvaluateFpras calls that reused a cached bind outright.
  uint64_t bind_hits() const;
  /// Number of binds that ran the full gadget expansion.
  uint64_t rebinds() const;
  /// Number of binds served by patching a prior bound in place.
  uint64_t delta_rebinds() const;
  /// Number of calls that joined another thread's in-flight bind instead of
  /// duplicating it (single-flight savings).
  uint64_t avoided_rebinds() const;
  /// Number of bound labellings evicted from the bind LRU.
  uint64_t bind_evictions() const;
  /// Number of EvaluateFpras calls answered from a per-bind answer memo.
  uint64_t answer_hits() const;

 private:
  /// One probability labelling's bound artifact, shared across requests.
  /// Carries a small answer memo: the counting layer is a deterministic
  /// function of (bound automaton, estimator config) — bit-identical at
  /// every thread count — so a repeated request provably reproduces its
  /// previous answer and the memo can serve it without re-sampling. The key
  /// hashes exactly the config fields that steer the draws (num_threads and
  /// cancel excluded); only fully completed runs are memoized.
  ///
  /// Memo invalidation under updates is by construction: a delta rebind
  /// produces a NEW Bound (fresh, empty memo) for the new labelling, while
  /// the prior labelling's Bound — and its memo — stays valid in the LRU.
  /// Memos are keyed by the labelling they were computed under, so an
  /// update can never serve a stale answer.
  struct Bound {
    uint64_t probs_hash = 0;
    std::vector<Probability> probs;         // the bound labelling (delta seed)
    std::optional<BoundPqeAutomaton> tree;  // generic route
    std::optional<BoundPathNfa> path;       // string route
    size_t patched_slots = 0;               // 0 unless built by delta patch
    bool delta_patched = false;             // built by patching a prior bound
    mutable std::mutex memo_mu;
    mutable std::unordered_map<uint64_t, PqeAnswer> memo;
  };

  /// One LRU entry. The once-flag makes binds single-flight: every caller
  /// that finds the slot blocks on the same build instead of duplicating
  /// it. `bound`/`status` are written exactly once under `once`; `done`
  /// (release-stored after the build) lets lock-holders distinguish a
  /// completed slot from an in-flight one without touching the flag.
  struct BindSlot {
    uint64_t probs_hash = 0;
    std::once_flag once;
    std::shared_ptr<const Bound> seed;  // delta seed, set at insert, cleared
                                        // by the builder
    std::shared_ptr<const Bound> bound;
    Status status = Status::OK();
    std::atomic<bool> done{false};
  };

  PreparedQuery() = default;

  struct BindOutcome {
    bool reused = false;
    bool delta = false;
    size_t patched_slots = 0;
  };

  /// Returns the bound artifact for `probs`, building it if no cached slot
  /// holds the labelling. The build prefers the delta patch seeded from the
  /// most recent completed bound; a labelling the layout can't patch to
  /// (denominator drift) falls back to the full gadget expansion.
  Result<std::shared_ptr<const Bound>> GetBound(
      const std::vector<Probability>& probs,
      BindOutcome* outcome = nullptr) const;

  /// The build body run under a slot's once-flag.
  void BuildBound(const std::vector<Probability>& probs, BindSlot* slot) const;

  // Exactly one of the two skeletons is set (route fixed at Prepare time).
  std::optional<PqeSkeleton> tree_;
  std::optional<PathPqeSkeleton> path_;
  size_t decomposition_width_ = 0;  // 0 on the path route
  size_t bind_cache_capacity_ = 4;

  // MRU-first bind LRU: serving workloads rebind when labels drift, re-serve
  // identical labels in bursts, and alternate between a few labellings; a
  // small LRU captures all three without holding every labelling ever seen
  // alive.
  mutable std::mutex mu_;
  mutable std::vector<std::shared_ptr<BindSlot>> bind_lru_;
  mutable std::atomic<uint64_t> bind_hits_{0};
  mutable std::atomic<uint64_t> rebinds_{0};
  mutable std::atomic<uint64_t> delta_rebinds_{0};
  mutable std::atomic<uint64_t> avoided_rebinds_{0};
  mutable std::atomic<uint64_t> bind_evictions_{0};
  mutable std::atomic<uint64_t> answer_hits_{0};
};

}  // namespace serve
}  // namespace pqe

#endif  // PQE_SERVE_PREPARED_QUERY_H_
