#ifndef PQE_SERVE_PREPARED_QUERY_H_
#define PQE_SERVE_PREPARED_QUERY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/path_pqe.h"
#include "core/pqe.h"
#include "core/ur_construction.h"
#include "counting/config.h"
#include "cq/query.h"
#include "pdb/database.h"
#include "pdb/probabilistic_database.h"
#include "util/result.h"

namespace pqe {
namespace serve {

/// A query compiled once per (query, database) pair and served many times.
///
/// Exploits the Theorem 1 split the core layer exposes: the hypertree
/// decomposition and Proposition 1 automaton depend only on the query and
/// the plain facts (the *skeleton*), while the §5.1 multiplier gadgets
/// depend on the probability labels (the *bind*). Prepare() pays for the
/// skeleton; each evaluation only rebinds — and rebinding is itself cached,
/// so serving the same probability labels again reuses the gadget-expanded,
/// trimmed, CSR-warmed automaton outright.
///
/// Route selection mirrors PqeEngine's kFpras branch exactly: self-join-free
/// path queries stay in string automata (Section 3 + string gadgets),
/// everything else takes the generic tree pipeline. EvaluateFpras assembles
/// the same PqeAnswer the engine's cold path produces, bit for bit — the
/// skeleton/bind composition is the cold path (see core/pqe.cc), and the
/// counting layer is seeded identically.
///
/// Thread-safe after construction: concurrent EvaluateFpras calls share the
/// bound automaton behind a mutex-guarded slot, and automata are warmed
/// (run index / adjacency CSR) before publication so const traversals from
/// many threads race on nothing.
class PreparedQuery {
 public:
  /// Compiles the probability-independent skeleton. Fails like the cold
  /// path would (NotSupported for self-joins, width overflow, ...).
  /// `db` must hold the same facts later evaluations' pdb wraps — the
  /// serving cache keys on that content (see PreparedCache). Returned by
  /// shared_ptr because the object carries its own synchronization (mutex +
  /// bind slot) and is meant to be shared across serving threads.
  static Result<std::shared_ptr<const PreparedQuery>> Prepare(
      const ConjunctiveQuery& query, const Database& db,
      const UrConstructionOptions& options);

  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  /// True when the query serves through the Section 3 string specialization.
  bool is_path_route() const { return path_.has_value(); }

  /// Per-call work accounting for the serving telemetry plane. Timings are
  /// steady_clock (present in every build); fields for stages that did not
  /// run stay 0/false.
  struct EvalBreakdown {
    uint64_t bind_ns = 0;      // GetBound time (lookup or gadget expansion)
    uint64_t estimate_ns = 0;  // counting-layer sampling time
    bool bind_reused = false;      // the cached bind served this call
    bool answer_memo_hit = false;  // the answer memo served this call
    uint64_t samples = 0;  // rejection-sampling attempts of the answer
  };

  /// Evaluates Pr_H(Q) over `pdb` with the combined FPRAS, rebinding the
  /// cached skeleton (or reusing the cached bind when `pdb`'s probability
  /// labels match the previous call's). The answer is bit-identical to
  /// PqeEngine's cold kFpras evaluation at equal (query, pdb, config).
  /// `config.cancel` is honored by the counting loops (kDeadlineExceeded).
  /// A repeat call with the same labels and the same draw-steering config
  /// returns the memoized previous answer (see Bound) — still bit-identical
  /// to the cold path, just without re-running the sampler.
  Result<PqeAnswer> EvaluateFpras(const ProbabilisticDatabase& pdb,
                                  const EstimatorConfig& config,
                                  EvalBreakdown* breakdown = nullptr) const;

  /// Number of EvaluateFpras calls that reused the cached bind outright.
  uint64_t bind_hits() const;
  /// Number of EvaluateFpras calls that had to run gadget expansion.
  uint64_t rebinds() const;
  /// Number of EvaluateFpras calls answered from the per-bind answer memo.
  uint64_t answer_hits() const;

 private:
  /// One probability labelling's bound artifact, shared across requests.
  /// Carries a small answer memo: the counting layer is a deterministic
  /// function of (bound automaton, estimator config) — bit-identical at
  /// every thread count — so a repeated request provably reproduces its
  /// previous answer and the memo can serve it without re-sampling. The key
  /// hashes exactly the config fields that steer the draws (num_threads and
  /// cancel excluded); only fully completed runs are memoized.
  struct Bound {
    uint64_t probs_hash = 0;
    std::optional<BoundPqeAutomaton> tree;  // generic route
    std::optional<BoundPathNfa> path;       // string route
    mutable std::mutex memo_mu;
    mutable std::unordered_map<uint64_t, PqeAnswer> memo;
  };

  PreparedQuery() = default;

  /// Returns the bound artifact for `probs`, building it if the cached slot
  /// holds a different labelling. `*reused` (optional) reports whether the
  /// cached slot served the call.
  Result<std::shared_ptr<const Bound>> GetBound(
      const std::vector<Probability>& probs, bool* reused = nullptr) const;

  // Exactly one of the two skeletons is set (route fixed at Prepare time).
  std::optional<PqeSkeleton> tree_;
  std::optional<PathPqeSkeleton> path_;
  size_t decomposition_width_ = 0;  // 0 on the path route

  // Single-slot bind cache: serving workloads rebind when labels drift and
  // re-serve identical labels in bursts; one slot captures both without
  // holding every labelling ever seen alive.
  mutable std::mutex mu_;
  mutable std::shared_ptr<const Bound> bound_;
  mutable std::atomic<uint64_t> bind_hits_{0};
  mutable std::atomic<uint64_t> rebinds_{0};
  mutable std::atomic<uint64_t> answer_hits_{0};
};

}  // namespace serve
}  // namespace pqe

#endif  // PQE_SERVE_PREPARED_QUERY_H_
