#include "serve/prepared_query.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <optional>
#include <utility>

#include "core/projection.h"
#include "counting/count_nfa.h"
#include "counting/count_nfta.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpq/eval.h"
#include "util/extfloat.h"

namespace pqe {
namespace serve {

namespace {

// FNV-1a over the probability labels; the bind cache only needs to tell
// labellings apart.
uint64_t HashProbabilities(const std::vector<Probability>& probs) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(probs.size());
  for (const Probability& p : probs) {
    mix(p.num);
    mix(p.den);
  }
  return h;
}

// Answer-memo key: FNV-1a over every EstimatorConfig field that steers the
// random draws. num_threads is deliberately excluded (estimates are
// bit-identical at every thread count — the determinism contract) and so is
// the cancel token (it can abort a run but never changes a completed one).
uint64_t HashEstimatorConfig(const EstimatorConfig& config) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  auto mix_double = [&mix](double d) {
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix_double(config.epsilon);
  mix_double(config.confidence);
  mix(config.seed);
  mix(config.pool_size);
  mix(config.min_pool_size);
  mix(config.max_pool_size);
  mix(config.attempt_factor);
  mix(config.repetitions);
  mix(config.disable_backward_pruning ? 1 : 0);
  mix(config.disable_hotpath_caches ? 1 : 0);
  mix(static_cast<uint64_t>(config.kernel_mode));
  return h;
}

// Bound answer memos beyond this many distinct configs reset (a serving
// workload repeats a handful of configs; unbounded growth is the bug).
constexpr size_t kAnswerMemoCapacity = 64;

}  // namespace

Result<std::shared_ptr<const PreparedQuery>> PreparedQuery::Prepare(
    const ConjunctiveQuery& query, const Database& db,
    const UrConstructionOptions& options, size_t bind_cache_capacity) {
  PQE_TRACE_SPAN_VAR(span, "serve.prepare");
  span.AttrUint("facts", db.NumFacts());
  // Route exactly as PqeEngine's kFpras branch does, so prepared answers
  // match cold engine answers bit for bit.
  auto prepared = std::shared_ptr<PreparedQuery>(new PreparedQuery());
  prepared->bind_cache_capacity_ =
      bind_cache_capacity < 1 ? 1 : bind_cache_capacity;
  if (query.IsPathQuery() && query.IsSelfJoinFree()) {
    PQE_ASSIGN_OR_RETURN(PathPqeSkeleton s, BuildPathPqeSkeleton(query, db));
    prepared->path_.emplace(std::move(s));
  } else {
    PQE_ASSIGN_OR_RETURN(PqeSkeleton s, BuildPqeSkeleton(query, db, options));
    prepared->decomposition_width_ = s.ur.hd.Width();
    prepared->tree_.emplace(std::move(s));
  }
  return std::shared_ptr<const PreparedQuery>(std::move(prepared));
}

Result<std::shared_ptr<const PreparedQuery>> PreparedQuery::PrepareRpq(
    const rpq::RpqQuery& query, const Database& db,
    size_t bind_cache_capacity) {
  PQE_TRACE_SPAN_VAR(span, "serve.prepare_rpq");
  span.AttrUint("facts", db.NumFacts());
  auto prepared = std::shared_ptr<PreparedQuery>(new PreparedQuery());
  prepared->bind_cache_capacity_ =
      bind_cache_capacity < 1 ? 1 : bind_cache_capacity;
  // Always the string route: CompileRpqSkeleton produces the same skeleton
  // the engine's kFpras RPQ branch evaluates over, so prepared answers match
  // cold engine answers bit for bit.
  PQE_ASSIGN_OR_RETURN(PathPqeSkeleton s, rpq::CompileRpqSkeleton(query, db));
  prepared->path_.emplace(std::move(s));
  return std::shared_ptr<const PreparedQuery>(std::move(prepared));
}

void PreparedQuery::BuildBound(const std::vector<Probability>& probs,
                               BindSlot* slot) const {
  auto bound = std::make_shared<Bound>();
  bound->probs_hash = slot->probs_hash;
  bound->probs = probs;
  const Bound* seed = slot->seed.get();
  Status status;
  if (path_.has_value()) {
    std::optional<BoundPathNfa> b;
    if (seed != nullptr && seed->path.has_value() &&
        seed->path->layout != nullptr) {
      size_t patched = 0;
      auto delta = RebindPathPqeNfa(*seed->path, seed->probs, probs, &patched);
      if (delta.ok()) {
        b.emplace(std::move(*delta));
        bound->delta_patched = true;
        bound->patched_slots = patched;
      }
      // On failure (denominator drift) fall through to the full expansion.
    }
    if (!b.has_value() && status.ok()) {
      auto full = BindPathPqeNfa(*path_, probs);
      if (full.ok()) {
        b.emplace(std::move(*full));
      } else {
        status = full.status();
      }
    }
    if (status.ok()) {
      // Warm the lazily built adjacency CSR before the artifact is shared:
      // const traversals from concurrent requests must not race on it. A
      // delta patch carried the out-CSR over from its seed and invalidated
      // only the target-keyed half, so this rebuilds just that.
      b->nfa.WarmAdjacency();
      bound->path.emplace(std::move(*b));
    }
  } else {
    std::optional<BoundPqeAutomaton> b;
    if (seed != nullptr && seed->tree.has_value() &&
        seed->tree->layout != nullptr) {
      size_t patched = 0;
      auto delta =
          RebindPqeAutomaton(*seed->tree, seed->probs, probs, &patched);
      if (delta.ok()) {
        b.emplace(std::move(*delta));
        bound->delta_patched = true;
        bound->patched_slots = patched;
      }
    }
    if (!b.has_value() && status.ok()) {
      auto full = BindPqeAutomaton(*tree_, probs);
      if (full.ok()) {
        b.emplace(std::move(*full));
      } else {
        status = full.status();
      }
    }
    if (status.ok()) {
      b->weighted.WarmRunIndex();
      bound->tree.emplace(std::move(*b));
    }
  }
  slot->seed.reset();
  if (status.ok()) {
    auto& counter = bound->delta_patched ? delta_rebinds_ : rebinds_;
    counter.fetch_add(1, std::memory_order_relaxed);
    obs::MetricRegistry::Global()
        .GetCounter(bound->delta_patched ? "serve.delta_rebinds"
                                         : "serve.full_rebinds")
        .Increment();
    slot->bound = std::move(bound);
  } else {
    slot->status = status;
  }
  slot->done.store(true, std::memory_order_release);
}

Result<std::shared_ptr<const PreparedQuery::Bound>> PreparedQuery::GetBound(
    const std::vector<Probability>& probs, BindOutcome* outcome) const {
  const uint64_t h = HashProbabilities(probs);
  std::shared_ptr<BindSlot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < bind_lru_.size(); ++i) {
      if (bind_lru_[i]->probs_hash == h) {
        slot = bind_lru_[i];
        // Touch: move to the MRU front.
        bind_lru_.erase(bind_lru_.begin() + i);
        bind_lru_.insert(bind_lru_.begin(), slot);
        break;
      }
    }
    if (slot != nullptr) {
      // A completed slot is an outright hit; an in-flight one means we join
      // another thread's build instead of duplicating it (single flight).
      auto& counter = slot->done.load(std::memory_order_acquire)
                          ? bind_hits_
                          : avoided_rebinds_;
      counter.fetch_add(1, std::memory_order_relaxed);
    } else {
      slot = std::make_shared<BindSlot>();
      slot->probs_hash = h;
      // Seed the delta patch from the most recently completed bind.
      for (const auto& s : bind_lru_) {
        if (s->done.load(std::memory_order_acquire) && s->status.ok()) {
          slot->seed = s->bound;
          break;
        }
      }
      bind_lru_.insert(bind_lru_.begin(), slot);
      while (bind_lru_.size() > bind_cache_capacity_) {
        bind_lru_.pop_back();
        bind_evictions_.fetch_add(1, std::memory_order_relaxed);
        obs::MetricRegistry::Global()
            .GetCounter("serve.bind_evictions")
            .Increment();
      }
    }
  }
  // Build outside the lock; every caller for this labelling blocks here and
  // shares the one build.
  bool built_here = false;
  std::call_once(slot->once, [&]() {
    built_here = true;
    BuildBound(probs, slot.get());
  });
  if (!slot->status.ok()) {
    if (built_here) {
      // Don't retain failures: drop the slot (if it's still ours) so a
      // later request retries instead of replaying a stale error forever.
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < bind_lru_.size(); ++i) {
        if (bind_lru_[i] == slot) {
          bind_lru_.erase(bind_lru_.begin() + i);
          break;
        }
      }
    }
    return slot->status;
  }
  if (outcome != nullptr) {
    outcome->reused = !built_here;
    outcome->delta = built_here && slot->bound->delta_patched;
    outcome->patched_slots = built_here ? slot->bound->patched_slots : 0;
  }
  return slot->bound;
}

Result<PreparedQuery::RebindStats> PreparedQuery::Rebind(
    const LabelDelta& delta) const {
  if (delta.facts.size() != delta.new_probs.size()) {
    return Status::InvalidArgument(
        "LabelDelta: facts and new_probs must be parallel (" +
        std::to_string(delta.facts.size()) + " vs " +
        std::to_string(delta.new_probs.size()) + ")");
  }
  // The delta applies on top of the most recently bound labelling.
  std::optional<std::vector<Probability>> probs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& s : bind_lru_) {
      if (s->done.load(std::memory_order_acquire) && s->status.ok()) {
        probs = s->bound->probs;
        break;
      }
    }
  }
  if (!probs.has_value()) {
    return Status::NotFound(
        "PreparedQuery::Rebind: no bound labelling to update (evaluate once "
        "before applying deltas)");
  }
  const std::vector<FactId>& of = original_fact();
  RebindStats stats;
  for (size_t i = 0; i < delta.facts.size(); ++i) {
    bool touched = false;
    for (size_t j = 0; j < of.size(); ++j) {
      if (of[j] == delta.facts[i]) {
        (*probs)[j] = delta.new_probs[i];
        touched = true;
      }
    }
    if (!touched) ++stats.untouched;
  }
  BindOutcome outcome;
  PQE_ASSIGN_OR_RETURN(std::shared_ptr<const Bound> bound,
                       GetBound(*probs, &outcome));
  (void)bound;
  stats.reused = outcome.reused;
  stats.delta = outcome.delta;
  stats.patched_slots = outcome.patched_slots;
  return stats;
}

Result<PqeAnswer> PreparedQuery::EvaluateFpras(
    const ProbabilisticDatabase& pdb, const EstimatorConfig& config,
    EvalBreakdown* breakdown) const {
  PQE_TRACE_SPAN_VAR(span, "serve.evaluate_prepared");
  PQE_ASSIGN_OR_RETURN(std::vector<Probability> probs,
                       ProjectedFactProbabilities(original_fact(), pdb));
  BindOutcome bind_outcome;
  const auto bind_start = std::chrono::steady_clock::now();
  PQE_ASSIGN_OR_RETURN(std::shared_ptr<const Bound> bound,
                       GetBound(probs, &bind_outcome));
  if (breakdown != nullptr) {
    breakdown->bind_reused = bind_outcome.reused;
    breakdown->bind_delta = bind_outcome.delta;
    breakdown->bind_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - bind_start)
            .count());
  }

  // Identical request replay: same bind + same draw-steering config means
  // the counters would reproduce the previous run draw for draw, so the
  // memoized answer IS the re-run's answer.
  const uint64_t config_key = HashEstimatorConfig(config);
  {
    std::lock_guard<std::mutex> lock(bound->memo_mu);
    auto it = bound->memo.find(config_key);
    if (it != bound->memo.end()) {
      answer_hits_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricRegistry::Global()
          .GetCounter("serve.answer_memo_hits")
          .Increment();
      if (breakdown != nullptr) {
        breakdown->answer_memo_hit = true;
        if (it->second.count_stats.has_value()) {
          breakdown->samples = it->second.count_stats->attempts;
        }
      }
      return it->second;
    }
  }

  PqeAnswer out;
  out.method_used = PqeMethod::kFpras;
  CountEstimate count;
  double log2_d = 0.0;
  const auto estimate_start = std::chrono::steady_clock::now();
  if (bound->path.has_value()) {
    const BoundPathNfa& m = *bound->path;
    PQE_ASSIGN_OR_RETURN(count,
                         CountNfaStrings(m.nfa, m.word_length, config));
    log2_d = ExtFloat::FromBigUint(m.denominator).Log2();
    out.automaton = PqeAnswer::AutomatonStats{
        m.nfa.NumStates(), m.nfa.NumTransitions(), m.word_length,
        /*decomposition_width=*/0};
  } else {
    const BoundPqeAutomaton& m = *bound->tree;
    PQE_ASSIGN_OR_RETURN(count,
                         CountNftaTrees(m.weighted, m.tree_size, config));
    log2_d = ExtFloat::FromBigUint(m.denominator).Log2();
    out.automaton = PqeAnswer::AutomatonStats{
        m.weighted.NumStates(), m.weighted.NumTransitions(), m.tree_size,
        decomposition_width_};
  }
  if (breakdown != nullptr) {
    breakdown->estimate_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - estimate_start)
            .count());
    breakdown->samples = count.stats.attempts;
  }
  out.count_stats = count.stats;
  // Pr_H(Q) = d⁻¹ · |L_k|, projected into [0, 1] — the same arithmetic as
  // PqeEstimate / PathPqeEstimate, so answers stay bit-identical.
  out.probability = std::min(std::exp2(count.value.Log2() - log2_d), 1.0);
  {
    // Only completed runs reach this point (aborted ones returned above via
    // PQE_ASSIGN_OR_RETURN), so the memo never holds partial answers.
    std::lock_guard<std::mutex> lock(bound->memo_mu);
    if (bound->memo.size() >= kAnswerMemoCapacity) bound->memo.clear();
    bound->memo.emplace(config_key, out);
  }
  return out;
}

uint64_t PreparedQuery::bind_hits() const {
  return bind_hits_.load(std::memory_order_relaxed);
}

uint64_t PreparedQuery::rebinds() const {
  return rebinds_.load(std::memory_order_relaxed);
}

uint64_t PreparedQuery::delta_rebinds() const {
  return delta_rebinds_.load(std::memory_order_relaxed);
}

uint64_t PreparedQuery::avoided_rebinds() const {
  return avoided_rebinds_.load(std::memory_order_relaxed);
}

uint64_t PreparedQuery::bind_evictions() const {
  return bind_evictions_.load(std::memory_order_relaxed);
}

uint64_t PreparedQuery::answer_hits() const {
  return answer_hits_.load(std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace pqe
