#include "serve/prepared_query.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "core/projection.h"
#include "counting/count_nfa.h"
#include "counting/count_nfta.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/extfloat.h"

namespace pqe {
namespace serve {

namespace {

// FNV-1a over the probability labels; the bind cache only needs to tell
// "same labels as last time" apart from "different labels".
uint64_t HashProbabilities(const std::vector<Probability>& probs) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(probs.size());
  for (const Probability& p : probs) {
    mix(p.num);
    mix(p.den);
  }
  return h;
}

// Answer-memo key: FNV-1a over every EstimatorConfig field that steers the
// random draws. num_threads is deliberately excluded (estimates are
// bit-identical at every thread count — the determinism contract) and so is
// the cancel token (it can abort a run but never changes a completed one).
uint64_t HashEstimatorConfig(const EstimatorConfig& config) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  auto mix_double = [&mix](double d) {
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix_double(config.epsilon);
  mix_double(config.confidence);
  mix(config.seed);
  mix(config.pool_size);
  mix(config.min_pool_size);
  mix(config.max_pool_size);
  mix(config.attempt_factor);
  mix(config.repetitions);
  mix(config.disable_backward_pruning ? 1 : 0);
  mix(config.disable_hotpath_caches ? 1 : 0);
  mix(static_cast<uint64_t>(config.kernel_mode));
  return h;
}

// Bound answer memos beyond this many distinct configs reset (a serving
// workload repeats a handful of configs; unbounded growth is the bug).
constexpr size_t kAnswerMemoCapacity = 64;

}  // namespace

Result<std::shared_ptr<const PreparedQuery>> PreparedQuery::Prepare(
    const ConjunctiveQuery& query, const Database& db,
    const UrConstructionOptions& options) {
  PQE_TRACE_SPAN_VAR(span, "serve.prepare");
  span.AttrUint("facts", db.NumFacts());
  // Route exactly as PqeEngine's kFpras branch does, so prepared answers
  // match cold engine answers bit for bit.
  auto prepared = std::shared_ptr<PreparedQuery>(new PreparedQuery());
  if (query.IsPathQuery() && query.IsSelfJoinFree()) {
    PQE_ASSIGN_OR_RETURN(PathPqeSkeleton s, BuildPathPqeSkeleton(query, db));
    prepared->path_.emplace(std::move(s));
  } else {
    PQE_ASSIGN_OR_RETURN(PqeSkeleton s, BuildPqeSkeleton(query, db, options));
    prepared->decomposition_width_ = s.ur.hd.Width();
    prepared->tree_.emplace(std::move(s));
  }
  return std::shared_ptr<const PreparedQuery>(std::move(prepared));
}

Result<std::shared_ptr<const PreparedQuery::Bound>> PreparedQuery::GetBound(
    const std::vector<Probability>& probs, bool* reused) const {
  const uint64_t h = HashProbabilities(probs);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (bound_ != nullptr && bound_->probs_hash == h) {
      bind_hits_.fetch_add(1, std::memory_order_relaxed);
      if (reused != nullptr) *reused = true;
      return bound_;
    }
  }
  // Build outside the lock: binds are deterministic, so two threads racing
  // on the same labels produce interchangeable artifacts and the loser's
  // work is merely wasted, never wrong.
  rebinds_.fetch_add(1, std::memory_order_relaxed);
  auto bound = std::make_shared<Bound>();
  bound->probs_hash = h;
  if (path_.has_value()) {
    PQE_ASSIGN_OR_RETURN(BoundPathNfa b, BindPathPqeNfa(*path_, probs));
    // Warm the lazily built adjacency CSR before the artifact is shared:
    // const traversals from concurrent requests must not race on it.
    b.nfa.WarmAdjacency();
    bound->path.emplace(std::move(b));
  } else {
    PQE_ASSIGN_OR_RETURN(BoundPqeAutomaton b, BindPqeAutomaton(*tree_, probs));
    b.weighted.WarmRunIndex();
    bound->tree.emplace(std::move(b));
  }
  std::shared_ptr<const Bound> published = std::move(bound);
  {
    std::lock_guard<std::mutex> lock(mu_);
    bound_ = published;
  }
  return published;
}

Result<PqeAnswer> PreparedQuery::EvaluateFpras(
    const ProbabilisticDatabase& pdb, const EstimatorConfig& config,
    EvalBreakdown* breakdown) const {
  PQE_TRACE_SPAN_VAR(span, "serve.evaluate_prepared");
  const std::vector<FactId>& original_fact =
      path_.has_value() ? path_->original_fact : tree_->original_fact;
  PQE_ASSIGN_OR_RETURN(std::vector<Probability> probs,
                       ProjectedFactProbabilities(original_fact, pdb));
  bool bind_reused = false;
  const auto bind_start = std::chrono::steady_clock::now();
  PQE_ASSIGN_OR_RETURN(std::shared_ptr<const Bound> bound,
                       GetBound(probs, &bind_reused));
  if (breakdown != nullptr) {
    breakdown->bind_reused = bind_reused;
    breakdown->bind_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - bind_start)
            .count());
  }

  // Identical request replay: same bind + same draw-steering config means
  // the counters would reproduce the previous run draw for draw, so the
  // memoized answer IS the re-run's answer.
  const uint64_t config_key = HashEstimatorConfig(config);
  {
    std::lock_guard<std::mutex> lock(bound->memo_mu);
    auto it = bound->memo.find(config_key);
    if (it != bound->memo.end()) {
      answer_hits_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricRegistry::Global()
          .GetCounter("serve.answer_memo_hits")
          .Increment();
      if (breakdown != nullptr) {
        breakdown->answer_memo_hit = true;
        if (it->second.count_stats.has_value()) {
          breakdown->samples = it->second.count_stats->attempts;
        }
      }
      return it->second;
    }
  }

  PqeAnswer out;
  out.method_used = PqeMethod::kFpras;
  CountEstimate count;
  double log2_d = 0.0;
  const auto estimate_start = std::chrono::steady_clock::now();
  if (bound->path.has_value()) {
    const BoundPathNfa& m = *bound->path;
    PQE_ASSIGN_OR_RETURN(count,
                         CountNfaStrings(m.nfa, m.word_length, config));
    log2_d = ExtFloat::FromBigUint(m.denominator).Log2();
    out.automaton = PqeAnswer::AutomatonStats{
        m.nfa.NumStates(), m.nfa.NumTransitions(), m.word_length,
        /*decomposition_width=*/0};
  } else {
    const BoundPqeAutomaton& m = *bound->tree;
    PQE_ASSIGN_OR_RETURN(count,
                         CountNftaTrees(m.weighted, m.tree_size, config));
    log2_d = ExtFloat::FromBigUint(m.denominator).Log2();
    out.automaton = PqeAnswer::AutomatonStats{
        m.weighted.NumStates(), m.weighted.NumTransitions(), m.tree_size,
        decomposition_width_};
  }
  if (breakdown != nullptr) {
    breakdown->estimate_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - estimate_start)
            .count());
    breakdown->samples = count.stats.attempts;
  }
  out.count_stats = count.stats;
  // Pr_H(Q) = d⁻¹ · |L_k|, projected into [0, 1] — the same arithmetic as
  // PqeEstimate / PathPqeEstimate, so answers stay bit-identical.
  out.probability = std::min(std::exp2(count.value.Log2() - log2_d), 1.0);
  {
    // Only completed runs reach this point (aborted ones returned above via
    // PQE_ASSIGN_OR_RETURN), so the memo never holds partial answers.
    std::lock_guard<std::mutex> lock(bound->memo_mu);
    if (bound->memo.size() >= kAnswerMemoCapacity) bound->memo.clear();
    bound->memo.emplace(config_key, out);
  }
  return out;
}

uint64_t PreparedQuery::bind_hits() const {
  return bind_hits_.load(std::memory_order_relaxed);
}

uint64_t PreparedQuery::rebinds() const {
  return rebinds_.load(std::memory_order_relaxed);
}

uint64_t PreparedQuery::answer_hits() const {
  return answer_hits_.load(std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace pqe
