#ifndef PQE_SERVE_FAULTSIM_H_
#define PQE_SERVE_FAULTSIM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/router.h"
#include "serve/shard.h"
#include "util/result.h"

namespace pqe {
namespace serve {

/// Per-call fault rates of the injection schedule. Rates are probabilities
/// over the derived-seed coin of each (shard, request, attempt) call.
struct FaultSpec {
  double crash_rate = 0.04;  // target shard dies mid-call (reply lost)
  double drop_rate = 0.08;   // message lost in flight (shard survives)
  double delay_rate = 0.15;  // call delivery delayed by up to max_delay_ms
  uint64_t max_delay_ms = 2;
};

/// What the schedule injects into one call. At most one of crash/drop is
/// set; a delay can accompany either.
struct FaultDecision {
  bool crash = false;
  bool drop = false;
  uint64_t delay_ms = 0;
};

/// The fault schedule as a pure function: the decision for a call depends
/// only on (seed, call.shard, call.request_id, call.attempt) — never on
/// wall-clock time, thread interleaving, or how many calls came before it.
/// That is what makes a failing seed replay exactly: re-running the same
/// seed re-derives the same schedule, call for call.
FaultDecision DecideFault(uint64_t seed, const ShardCall& call,
                          const FaultSpec& spec);

/// A ShardTransport decorator injecting the seed-derived schedule between
/// the router and the real transport: crashes mark the target shard dead
/// and lose the reply, drops lose the message without calling, delays sleep
/// before delivery. Crashed shards stay dead (Shard::Crash), so one
/// injected crash cascades into retries/losses for every later request
/// routed there — the interesting regime for partial-answer merging.
class FaultInjectingTransport : public ShardTransport {
 public:
  /// `cluster` is not owned and must outlive the transport.
  FaultInjectingTransport(uint64_t seed, const FaultSpec& spec,
                          ShardCluster* cluster,
                          std::unique_ptr<ShardTransport> base);

  Result<EvalResponse> Call(const ShardCall& call,
                            const EvalRequest& request) override;

  struct Counts {
    uint64_t crashes = 0;
    uint64_t drops = 0;
    uint64_t delays = 0;
  };
  Counts counts() const;

 private:
  const uint64_t seed_;
  const FaultSpec spec_;
  ShardCluster* cluster_;
  std::unique_ptr<ShardTransport> base_;
  std::atomic<uint64_t> crashes_{0};
  std::atomic<uint64_t> drops_{0};
  std::atomic<uint64_t> delays_{0};
};

/// One deterministic fault-injection experiment (see docs/serving.md).
struct FaultSimOptions {
  uint64_t seed = 1;       // derives the fault schedule AND the workload seeds
  size_t num_shards = 3;
  size_t max_attempts = 2; // router retry budget
  size_t requests = 24;    // workload size (cycling over distinct queries)
  size_t variants = 4;     // distinct (query, database) pairs in the workload
  FaultSpec faults;
  bool verbose = false;    // print per-request outcomes
};

/// The verdict of one RunFaultSim experiment. The two contract bits:
///   - `mismatched == 0`: every answer that survived the injected faults is
///     memcmp-identical to the same request's answer in the unfaulted run.
///   - `replay_identical`: re-running the same seed reproduced the exact
///     outcome vector (statuses, answer bits, injected-event counts) — a
///     failing seed is a deterministic repro, not a flake.
struct FaultSimReport {
  uint64_t seed = 0;
  size_t requests = 0;
  size_t answered = 0;   // OK through the faults (possibly via retry/hedge)
  size_t lost = 0;       // kPartialResult: every attempt unavailable
  size_t failed = 0;     // other definitive errors (should be 0)
  uint64_t crashes = 0;  // injected events, first faulted run
  uint64_t drops = 0;
  uint64_t delays = 0;
  uint64_t retries = 0;  // router reactions
  uint64_t hedges = 0;
  size_t shards_dead = 0;  // shards down when the run finished
  size_t mismatched = 0;   // surviving answers not bit-identical to baseline
  bool replay_identical = false;

  bool ok() const { return mismatched == 0 && failed == 0 && replay_identical; }
  std::string Summary() const;
};

/// Runs the harness: builds a self-contained workload (path queries over
/// seeded layered databases; every request carries an explicit derived
/// seed, so its answer is a pure function of the request), evaluates it
/// unfaulted, then twice under the seed's fault schedule, and checks the
/// contract above. Requests run sequentially (num_threads = 1) so the
/// shard-death order is part of the schedule and replays exactly.
Result<FaultSimReport> RunFaultSim(const FaultSimOptions& options);

}  // namespace serve
}  // namespace pqe

#endif  // PQE_SERVE_FAULTSIM_H_
