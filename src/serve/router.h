#ifndef PQE_SERVE_ROUTER_H_
#define PQE_SERVE_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "serve/shard.h"

namespace pqe {
namespace serve {

/// Routes requests across a ShardCluster by prepared-query content key, with
/// retries and hedged retries when shards are lost or slow, and typed
/// partial-answer merging for batches.
///
/// Placement: a kQuery / kUniformReliability request is routed by
/// PreparedCache::ContentKey(query, db, max_width) — the same fingerprint
/// the prepared cache is keyed on — so equal (query, facts) requests always
/// land on the same shard and each skeleton is compiled and cached exactly
/// once cluster-wide (the cluster partitions the prepared keyspace).
/// kUnion requests have no prepared path and route by request id.
///
/// Failure handling, in order:
///   - retry: a kUnavailable transport outcome (shard down, message lost)
///     moves the attempt to the next shard, up to max_attempts shards.
///   - hedged retry: when the request carries a deadline and a backup shard
///     remains, the primary attempt only gets hedge_fraction of the
///     remaining budget; if it comes back kDeadlineExceeded with budget to
///     spare, the request is re-issued to the backup with everything left.
///     Because answers are functions of (request, seed) alone, the hedge's
///     answer is bit-identical to what the primary would eventually have
///     produced — hedging changes tail latency, never results.
///   - partial result: when every attempt is lost, the request's response
///     carries StatusCode::kPartialResult; EvaluateBatch additionally
///     reports a batch-level kPartialResult status naming how many answers
///     are missing, so callers can consume the surviving answers knowingly.
///
/// Thread-safe; one router instance is meant to be shared.
class ShardRouter {
 public:
  struct Options {
    /// Worker shards in the cluster (≥ 1).
    size_t num_shards = 4;
    /// Configuration of every shard's PqeService. When the batch fan-out
    /// runs on >1 threads the per-shard engines are pinned to 1 inner
    /// thread (same policy as PqeService::EvaluateBatch; answers are
    /// bit-identical across thread counts).
    PqeService::Options service;
    /// Shards tried per request before declaring it lost (clamped to
    /// num_shards): the content-key primary, then its successors.
    size_t max_attempts = 2;
    /// Fraction of the remaining deadline granted to a non-final attempt
    /// (hedged retry). 0 disables hedging: every attempt gets the full
    /// remaining budget.
    double hedge_fraction = 0.5;
    /// Threads used to fan a batch out (0 = auto: $PQE_THREADS, else 1).
    size_t num_threads = 0;
  };

  /// Builds its own cluster from `options`. `transport_factory`, when set,
  /// wraps/replaces the transport (the fault harness interposes here); the
  /// default is DirectTransport over the router's cluster.
  using TransportFactory =
      std::function<std::unique_ptr<ShardTransport>(ShardCluster*)>;
  explicit ShardRouter(Options options,
                       TransportFactory transport_factory = nullptr);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// The shard `request` hashes to (its primary; retries proceed from it).
  size_t Route(const EvalRequest& request) const;

  /// Serves one request through the cluster with retries/hedging. Requests
  /// with request_id 0 keep id 0 (no batch index to borrow).
  EvalResponse Evaluate(const EvalRequest& request) const;

  /// A batch outcome: every response in request order, plus the merge
  /// verdict. Responses of lost requests carry kPartialResult statuses.
  struct BatchResult {
    std::vector<EvalResponse> responses;
    size_t answered = 0;  // OK responses
    size_t failed = 0;    // definitive non-OK answers (bad input, deadline)
    size_t lost = 0;      // every attempt unavailable (shard lost)
    /// OK when nothing was lost; kPartialResult otherwise.
    Status status;
  };

  /// Serves a batch, fanning out over the shared thread pool; response i
  /// answers request i, and requests with request_id == 0 get their batch
  /// index as effective id — the same id/seed policy as
  /// PqeService::EvaluateBatch, so a sharded batch reproduces the
  /// single-service batch bit for bit.
  BatchResult EvaluateBatch(const std::vector<EvalRequest>& requests) const;

  const Options& options() const { return options_; }
  ShardCluster& cluster() { return *cluster_; }
  const ShardCluster& cluster() const { return *cluster_; }

  /// Monotonic routing counters (relaxed-atomics contract).
  struct Stats {
    uint64_t requests = 0;
    uint64_t retries = 0;  // attempts moved off an unavailable shard
    uint64_t hedges = 0;   // deadline-hedged re-issues to a backup
    uint64_t lost = 0;     // requests whose every attempt was unavailable
  };
  Stats stats() const;

 private:
  EvalResponse EvaluateOne(const EvalRequest& request,
                           uint64_t effective_id) const;

  Options options_;
  std::unique_ptr<ShardCluster> cluster_;
  std::unique_ptr<ShardTransport> transport_;

  mutable std::atomic<uint64_t> requests_{0};
  mutable std::atomic<uint64_t> retries_{0};
  mutable std::atomic<uint64_t> hedges_{0};
  mutable std::atomic<uint64_t> lost_{0};
};

}  // namespace serve
}  // namespace pqe

#endif  // PQE_SERVE_ROUTER_H_
