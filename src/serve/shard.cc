#include "serve/shard.h"

#include <string>

namespace pqe {
namespace serve {

Result<EvalResponse> Shard::Serve(const EvalRequest& request) const {
  if (!alive()) {
    return Status::Unavailable("shard " + std::to_string(index_) +
                               " is down");
  }
  EvalResponse resp = service_.Evaluate(request);
  // A crash can land while the request is in flight; the reply of a shard
  // that died mid-call is lost, exactly like a dropped message. Checking
  // again here keeps the in-process model honest about that window.
  if (!alive()) {
    return Status::Unavailable("shard " + std::to_string(index_) +
                               " died mid-request");
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  return resp;
}

ShardCluster::ShardCluster(size_t num_shards,
                           const PqeService::Options& options) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, options));
  }
}

size_t ShardCluster::alive_count() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    if (s->alive()) ++n;
  }
  return n;
}

}  // namespace serve
}  // namespace pqe
