#include "serve/telemetry.h"

#include <algorithm>
#include <utility>

#include "obs/export.h"

namespace pqe {
namespace serve {

const char* CacheClassName(CacheClass c) {
  switch (c) {
    case CacheClass::kAnswerMemo:
      return "answer_memo";
    case CacheClass::kWarmBind:
      return "warm_bind";
    case CacheClass::kDeltaRebind:
      return "delta_rebind";
    case CacheClass::kRebind:
      return "rebind";
    case CacheClass::kColdCompile:
      return "cold_compile";
    case CacheClass::kDelegated:
      return "delegated";
  }
  return "unknown";
}

const ServiceStats::StageStats* ServiceStats::FindStage(
    std::string_view stage) const {
  for (const StageStats& s : stages) {
    if (s.stage == stage) return &s;
  }
  return nullptr;
}

std::string ServiceStats::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("service_stats").BeginObject();
  w.Key("requests").Uint(requests);
  w.Key("ok").Uint(ok);
  w.Key("errors").Uint(errors);
  w.Key("deadline_exceeded").Uint(deadline_exceeded);
  w.Key("by_class").BeginObject();
  for (size_t i = 0; i < kNumCacheClasses; ++i) {
    w.Key(CacheClassName(static_cast<CacheClass>(i))).Uint(by_class[i]);
  }
  w.EndObject();
  w.Key("stages").BeginObject();
  for (const StageStats& s : stages) {
    w.Key(s.stage).BeginObject();
    w.Key("count").Uint(s.count);
    w.Key("sum_ns").Uint(s.sum_ns);
    if (s.count == 0) {
      // A stage no request ran has no distribution. Numeric 0 would read
      // as "measured at 0ns" on a dashboard; explicit nulls say "no data".
      w.Key("p50_ns").Null();
      w.Key("p95_ns").Null();
      w.Key("p99_ns").Null();
    } else {
      w.Key("p50_ns").Double(s.p50_ns);
      w.Key("p95_ns").Double(s.p95_ns);
      w.Key("p99_ns").Double(s.p99_ns);
    }
    w.EndObject();
  }
  w.EndObject();
  w.Key("slow_queries").BeginArray();
  for (const SlowQuery& q : slow_queries) {
    w.BeginObject();
    w.Key("request_id").Uint(q.request_id);
    w.Key("total_ns").Uint(q.total_ns);
    w.Key("class").String(CacheClassName(q.cache_class));
    w.Key("excerpt").String(q.span_excerpt);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  return w.Take();
}

ServiceTelemetry::ServiceTelemetry(size_t slow_log_capacity)
    : slow_capacity_(slow_log_capacity) {}

void ServiceTelemetry::Record(RequestTelemetry t) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (t.status == StatusCode::kOk) {
    ok_.fetch_add(1, std::memory_order_relaxed);
  } else if (t.deadline_exceeded) {
    deadline_.fetch_add(1, std::memory_order_relaxed);
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  by_class_[static_cast<size_t>(t.cache_class)].fetch_add(
      1, std::memory_order_relaxed);

  total_.Observe(t.total_ns);
  // Stage histograms only see requests that ran the stage, so their
  // quantiles describe the stage's cost, not its frequency (by_class covers
  // frequency).
  if (t.cache_lookup_ns > 0) cache_lookup_.Observe(t.cache_lookup_ns);
  if (t.compile_ns > 0) compile_.Observe(t.compile_ns);
  if (t.bind_ns > 0) bind_.Observe(t.bind_ns);
  if (t.estimate_ns > 0) estimate_.Observe(t.estimate_ns);

  if (slow_capacity_ == 0) return;
  // Fast path: a full log whose slowest floor beats this request means the
  // request can't enter — no lock taken.
  if (t.total_ns <= slow_floor_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(slow_mu_);
  if (slow_.size() >= slow_capacity_ && t.total_ns <= slow_.back().total_ns) {
    return;  // the floor moved while we waited for the lock
  }
  ServiceStats::SlowQuery entry;
  entry.request_id = t.request_id;
  entry.total_ns = t.total_ns;
  entry.cache_class = t.cache_class;
  entry.span_excerpt = std::move(t.span_excerpt);
  auto pos = std::upper_bound(
      slow_.begin(), slow_.end(), entry.total_ns,
      [](uint64_t ns, const ServiceStats::SlowQuery& q) {
        return ns > q.total_ns;
      });
  slow_.insert(pos, std::move(entry));
  if (slow_.size() > slow_capacity_) slow_.pop_back();
  if (slow_.size() >= slow_capacity_) {
    slow_floor_.store(slow_.back().total_ns, std::memory_order_relaxed);
  }
}

void ServiceTelemetry::Reset() {
  requests_.store(0, std::memory_order_relaxed);
  ok_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  deadline_.store(0, std::memory_order_relaxed);
  for (auto& c : by_class_) c.store(0, std::memory_order_relaxed);
  total_.Reset();
  cache_lookup_.Reset();
  compile_.Reset();
  bind_.Reset();
  estimate_.Reset();
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_.clear();
    // The floor lives and dies with the log: clearing one without the
    // other would stall admission until a request beat the stale floor.
    slow_floor_.store(0, std::memory_order_relaxed);
  }
}

namespace {

ServiceStats::StageStats StageFromHistogram(const char* stage,
                                            const obs::Histogram& h) {
  const obs::MetricsSnapshot::HistogramEntry entry =
      obs::MetricsSnapshot::SnapshotHistogram(stage, h);
  ServiceStats::StageStats s;
  s.stage = stage;
  s.count = entry.count;
  s.sum_ns = entry.sum;
  s.p50_ns = entry.Quantile(0.50);
  s.p95_ns = entry.Quantile(0.95);
  s.p99_ns = entry.Quantile(0.99);
  return s;
}

}  // namespace

ServiceStats ServiceTelemetry::Snapshot() const {
  ServiceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumCacheClasses; ++i) {
    stats.by_class[i] = by_class_[i].load(std::memory_order_relaxed);
  }
  stats.stages.push_back(StageFromHistogram("total", total_));
  stats.stages.push_back(StageFromHistogram("cache_lookup", cache_lookup_));
  stats.stages.push_back(StageFromHistogram("compile", compile_));
  stats.stages.push_back(StageFromHistogram("bind", bind_));
  stats.stages.push_back(StageFromHistogram("estimate", estimate_));
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    stats.slow_queries = slow_;
  }
  return stats;
}

}  // namespace serve
}  // namespace pqe
