#include "serve/service.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <utility>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpq/regex.h"
#include "safeplan/safe_plan.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pqe {
namespace serve {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// The slow-log line: the stage breakdown, then the first lines of the
// request's trace when one was collected.
std::string BuildSpanExcerpt(const RequestTelemetry& t,
                             const EvalResponse& resp) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "class=%s lookup=%.1fms compile=%.1fms bind=%.1fms "
                "estimate=%.1fms",
                CacheClassName(t.cache_class),
                static_cast<double>(t.cache_lookup_ns) / 1e6,
                static_cast<double>(t.compile_ns) / 1e6,
                static_cast<double>(t.bind_ns) / 1e6,
                static_cast<double>(t.estimate_ns) / 1e6);
  std::string excerpt = buf;
  if (resp.answer.trace != nullptr) {
    constexpr size_t kMaxTraceExcerpt = 240;
    std::string text = obs::RenderTraceText(*resp.answer.trace);
    if (text.size() > kMaxTraceExcerpt) {
      text.resize(kMaxTraceExcerpt);
      text += "...";
    }
    excerpt += " | ";
    excerpt += text;
  }
  return excerpt;
}

}  // namespace

PqeService::PqeService(Options options)
    : options_(std::move(options)),
      engine_(options_.engine),
      cache_(std::make_unique<PreparedCache>(options_.cache_capacity,
                                             options_.bind_cache_capacity)),
      telemetry_(options_.slow_log_capacity) {
  if (!options_.capture_path.empty()) {
    auto recorder = WorkloadRecorder::Open(options_.capture_path);
    if (recorder.ok()) {
      recorder_ = std::move(*recorder);
    } else {
      capture_status_ = recorder.status();
    }
  }
}

EvalResponse PqeService::Evaluate(const EvalRequest& request) const {
  return EvaluateOne(request, request.request_id,
                     /*inner_threads_override=*/0);
}

std::vector<EvalResponse> PqeService::EvaluateBatch(
    const std::vector<EvalRequest>& requests) const {
  std::vector<EvalResponse> out(requests.size());
  const size_t threads = ThreadPool::ResolveNumThreads(options_.num_threads);
  // The shared pool is not reentrant: when the batch itself fans out, each
  // request's inner sampling is pinned to one thread. Answers don't change
  // — every sampling layer is bit-identical across thread counts.
  const bool parallel = threads > 1 && requests.size() > 1;
  ParallelFor(threads, requests.size(), [&](size_t i) {
    const EvalRequest& req = requests[i];
    const uint64_t id =
        req.request_id != 0 ? req.request_id : static_cast<uint64_t>(i);
    out[i] = EvaluateOne(req, id, parallel ? 1 : 0);
  });
  return out;
}

EvalResponse PqeService::EvaluateOne(const EvalRequest& request,
                                     uint64_t effective_id,
                                     size_t inner_threads_override) const {
  const auto start = std::chrono::steady_clock::now();
  // Effective per-request options: request optionals override the service
  // defaults, and seedless requests get a seed derived from their id so
  // batch members are independent yet individually reproducible.
  PqeEngine::Options opts = options_.engine;
  if (request.method.has_value()) opts.method = *request.method;
  if (request.epsilon.has_value()) opts.epsilon = *request.epsilon;
  if (request.collect_trace.has_value()) {
    opts.collect_trace = *request.collect_trace;
  }
  if (request.kernels.has_value()) opts.kernel_mode = *request.kernels;
  opts.seed = request.seed.has_value()
                  ? *request.seed
                  : Rng::DeriveSeed(options_.engine.seed, effective_id);
  if (inner_threads_override > 0) opts.num_threads = inner_threads_override;

  RequestTelemetry telemetry;
  telemetry.request_id = effective_id;

  EvalResponse resp;
  // kQuery and kRpq requests whose method resolves to the combined FPRAS
  // take the prepared fast path; everything else (safe plans, enumeration,
  // lineage methods, unions, uniform reliability) delegates to a per-request
  // engine carrying the effective options.
  bool prepared_route = false;
  if (request.target == EvalRequest::Target::kQuery &&
      request.query != nullptr && request.pdb != nullptr) {
    PqeMethod method = opts.method;
    if (method == PqeMethod::kAuto) {
      if (IsSafeQuery(*request.query)) {
        method = PqeMethod::kSafePlan;
      } else if (request.pdb->NumFacts() <= opts.enumeration_threshold) {
        method = PqeMethod::kEnumeration;
      } else {
        method = PqeMethod::kFpras;
      }
    }
    prepared_route = method == PqeMethod::kFpras;
  } else if (request.target == EvalRequest::Target::kRpq &&
             request.rpq != nullptr && request.pdb != nullptr) {
    // Mirror of the engine's kRpq auto resolution (no safe-plan tier).
    PqeMethod method = opts.method;
    if (method == PqeMethod::kAuto) {
      method = request.pdb->NumFacts() <= opts.enumeration_threshold
                   ? PqeMethod::kEnumeration
                   : PqeMethod::kFpras;
    }
    prepared_route = method == PqeMethod::kFpras;
  }
  if (prepared_route) {
    resp = EvaluatePrepared(request, effective_id, opts, &telemetry);
    if (request.target == EvalRequest::Target::kRpq &&
        opts.method == PqeMethod::kAuto &&
        resp.status.code() == StatusCode::kNotSupported) {
      // Not scan-orderable: the engine's kAuto cascade falls back to the
      // lineage routes; delegate so served answers keep matching it.
      prepared_route = false;
    }
  }
  if (!prepared_route) {
    PqeEngine delegate(opts);
    EvalRequest forwarded = request;
    forwarded.request_id = effective_id;
    // Already folded into opts; clear so the delegate doesn't re-apply.
    forwarded.method.reset();
    forwarded.epsilon.reset();
    forwarded.seed.reset();
    forwarded.collect_trace.reset();
    forwarded.kernels.reset();
    resp = delegate.EvaluateRequest(forwarded);
    telemetry.cache_class = CacheClass::kDelegated;
    if (resp.answer.count_stats.has_value()) {
      telemetry.samples = resp.answer.count_stats->attempts;
    }
  }

  telemetry.status = resp.status.code();
  telemetry.deadline_exceeded = resp.deadline_exceeded;
  telemetry.progress = resp.progress;
  telemetry.total_ns = ElapsedNs(start);
  telemetry.span_excerpt = BuildSpanExcerpt(telemetry, resp);
  telemetry_.Record(std::move(telemetry));

  if (recorder_ != nullptr) CaptureRequest(request, effective_id, opts, resp);

  auto& registry = obs::MetricRegistry::Global();
  registry.GetCounter("serve.requests").Increment();
  if (resp.deadline_exceeded) {
    registry.GetCounter("serve.deadline_exceeded").Increment();
  }
  registry.GetHistogram("serve.request_ms")
      .Observe(static_cast<uint64_t>(resp.elapsed_ms));
  return resp;
}

void PqeService::CaptureRequest(const EvalRequest& request,
                                uint64_t effective_id,
                                const PqeEngine::Options& opts,
                                const EvalResponse& resp) const {
  WorkloadRecord record;
  record.request_id = effective_id;
  switch (request.target) {
    case EvalRequest::Target::kQuery:
      record.target = "query";
      break;
    case EvalRequest::Target::kUnion:
      record.target = "union";
      break;
    case EvalRequest::Target::kUniformReliability:
      record.target = "ur";
      break;
    case EvalRequest::Target::kRpq:
      record.target = "rpq";
      break;
  }
  if (request.rpq != nullptr) {
    record.query = request.rpq->Canonical();
  }
  if (request.query != nullptr) {
    if (request.pdb != nullptr) {
      record.query = request.query->ToString(request.pdb->database().schema());
    } else if (request.db != nullptr) {
      record.query = request.query->ToString(request.db->schema());
    }
  }
  if (request.pdb != nullptr) {
    record.labelling_hash = HashLabelling(*request.pdb);
  }
  // The effective (post-override) values: a replay re-creates this exact
  // evaluation by setting them explicitly, regardless of how the capture-time
  // request spelled them.
  record.config_hash = HashEngineConfig(opts);
  record.method = PqeMethodToString(opts.method);
  record.kernels = KernelModeToString(opts.kernel_mode);
  record.epsilon = opts.epsilon;
  record.seed = opts.seed;
  record.deadline_ms = request.deadline_ms;
  if (resp.status.ok()) {
    record.status = "ok";
    record.probability = resp.answer.probability;
  } else {
    record.status = resp.deadline_exceeded ? "deadline_exceeded" : "error";
  }
  recorder_->Record(record);
}

Result<PqeService::UpdateStats> PqeService::ApplyUpdate(
    ProbabilisticDatabase* pdb, const LabelDelta& delta) const {
  PQE_TRACE_SPAN_VAR(span, "serve.apply_update");
  if (pdb == nullptr) {
    return Status::InvalidArgument("ApplyUpdate: pdb must be non-null");
  }
  if (delta.facts.size() != delta.new_probs.size()) {
    return Status::InvalidArgument(
        "ApplyUpdate: facts and new_probs must be parallel");
  }
  UpdateStats stats;
  for (size_t i = 0; i < delta.facts.size(); ++i) {
    PQE_RETURN_IF_ERROR(
        pdb->SetProbability(delta.facts[i], delta.new_probs[i]));
    ++stats.facts;
  }
  // Push the delta to every resident prepared query so the next request
  // over the updated pdb lands on an already-refreshed bind.
  for (const auto& prepared : cache_->Snapshot()) {
    ++stats.prepared_visited;
    auto rebind = prepared->Rebind(delta);
    if (!rebind.ok()) {
      if (rebind.status().code() == StatusCode::kNotFound) {
        // Never bound: nothing to refresh, the first evaluation will bind.
        ++stats.untouched;
        continue;
      }
      return rebind.status();
    }
    if (rebind->reused) {
      ++stats.untouched;
    } else if (rebind->delta) {
      ++stats.delta_rebinds;
    } else {
      ++stats.full_rebinds;
    }
  }
  span.AttrUint("facts", stats.facts);
  span.AttrUint("delta_rebinds", stats.delta_rebinds);
  auto& registry = obs::MetricRegistry::Global();
  registry.GetCounter("serve.updates").Increment();
  if (recorder_ != nullptr) {
    WorkloadRecord record;
    record.target = "update";
    record.update_spec = FormatLabelDelta(delta);
    record.labelling_hash = HashLabelling(*pdb);  // post-update labels
    record.status = "ok";
    recorder_->Record(record);
  }
  std::vector<WatchCallback> callbacks;
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    callbacks.reserve(watchers_.size());
    for (const auto& w : watchers_) callbacks.push_back(w.second);
  }
  for (const WatchCallback& cb : callbacks) cb(delta, stats);
  return stats;
}

uint64_t PqeService::Watch(WatchCallback callback) const {
  std::lock_guard<std::mutex> lock(watch_mu_);
  const uint64_t token = next_watch_token_++;
  watchers_.emplace_back(token, std::move(callback));
  return token;
}

bool PqeService::Unwatch(uint64_t token) const {
  std::lock_guard<std::mutex> lock(watch_mu_);
  for (auto it = watchers_.begin(); it != watchers_.end(); ++it) {
    if (it->first == token) {
      watchers_.erase(it);
      return true;
    }
  }
  return false;
}

EvalResponse PqeService::EvaluatePrepared(
    const EvalRequest& request, uint64_t effective_id,
    const PqeEngine::Options& opts, RequestTelemetry* telemetry) const {
  const auto start = std::chrono::steady_clock::now();
  EvalResponse resp;
  resp.request_id = effective_id;

  std::optional<obs::TraceSession> session;
  if (opts.collect_trace) {
    session.emplace("serve.request");
    obs::SpanAttrUint("request_id", effective_id);
    obs::SpanAttrUint("facts", request.pdb->NumFacts());
  }

  std::optional<CancelToken> deadline;
  const CancelToken* cancel = request.cancel;
  if (request.deadline_ms > 0) {
    deadline.emplace(std::chrono::milliseconds(request.deadline_ms),
                     request.cancel);
    cancel = &*deadline;
  }

  auto FinishWith = [&](Result<PqeAnswer> result) {
    if (result.ok()) {
      resp.answer = std::move(*result);
      resp.status = Status::OK();
      if (session.has_value()) {
        obs::SpanAttrFloat("probability", resp.answer.probability);
        resp.answer.trace =
            std::make_shared<const obs::RunTrace>(session->Finish());
      }
    } else {
      resp.status = result.status();
    }
    resp.deadline_exceeded =
        resp.status.code() == StatusCode::kDeadlineExceeded;
    if (cancel != nullptr) resp.progress = cancel->progress();
    resp.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    return resp;
  };

  if (cancel != nullptr && cancel->Expired()) {
    return FinishWith(Status::DeadlineExceeded(
        "request expired before evaluation started"));
  }

  PreparedCache::LookupResult lookup;
  const auto lookup_start = std::chrono::steady_clock::now();
  Result<std::shared_ptr<const PreparedQuery>> prepared =
      [&]() -> Result<std::shared_ptr<const PreparedQuery>> {
    if (request.target == EvalRequest::Target::kRpq) {
      return cache_->GetOrPrepareRpq(*request.rpq, request.pdb->database(),
                                     &lookup);
    }
    UrConstructionOptions ur_opts;
    ur_opts.max_width = opts.max_width;
    return cache_->GetOrPrepare(*request.query, request.pdb->database(),
                                ur_opts, &lookup);
  }();
  telemetry->compile_ns = lookup.compile_ns;
  // The probe itself, with this caller's compile time (if any) carved out.
  const uint64_t lookup_elapsed = ElapsedNs(lookup_start);
  telemetry->cache_lookup_ns = lookup_elapsed > lookup.compile_ns
                                   ? lookup_elapsed - lookup.compile_ns
                                   : 0;
  if (!prepared.ok()) return FinishWith(prepared.status());

  const EstimatorConfig config = PqeEngine::MakeEstimatorConfig(opts, cancel);
  PreparedQuery::EvalBreakdown breakdown;
  Result<PqeAnswer> result =
      (*prepared)->EvaluateFpras(*request.pdb, config, &breakdown);
  telemetry->bind_ns = breakdown.bind_ns;
  telemetry->estimate_ns = breakdown.estimate_ns;
  telemetry->samples = breakdown.samples;
  // The class names the deepest stage that did real work.
  if (!lookup.hit) {
    telemetry->cache_class = CacheClass::kColdCompile;
  } else if (!breakdown.bind_reused) {
    telemetry->cache_class = breakdown.bind_delta ? CacheClass::kDeltaRebind
                                                  : CacheClass::kRebind;
  } else if (!breakdown.answer_memo_hit) {
    telemetry->cache_class = CacheClass::kWarmBind;
  } else {
    telemetry->cache_class = CacheClass::kAnswerMemo;
  }
  return FinishWith(std::move(result));
}

}  // namespace serve
}  // namespace pqe
