#include "serve/service.h"

#include <chrono>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "safeplan/safe_plan.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pqe {
namespace serve {

PqeService::PqeService(Options options)
    : options_(std::move(options)),
      engine_(options_.engine),
      cache_(std::make_unique<PreparedCache>(options_.cache_capacity)) {}

EvalResponse PqeService::Evaluate(const EvalRequest& request) const {
  return EvaluateOne(request, request.request_id,
                     /*inner_threads_override=*/0);
}

std::vector<EvalResponse> PqeService::EvaluateBatch(
    const std::vector<EvalRequest>& requests) const {
  std::vector<EvalResponse> out(requests.size());
  const size_t threads = ThreadPool::ResolveNumThreads(options_.num_threads);
  // The shared pool is not reentrant: when the batch itself fans out, each
  // request's inner sampling is pinned to one thread. Answers don't change
  // — every sampling layer is bit-identical across thread counts.
  const bool parallel = threads > 1 && requests.size() > 1;
  ParallelFor(threads, requests.size(), [&](size_t i) {
    const EvalRequest& req = requests[i];
    const uint64_t id =
        req.request_id != 0 ? req.request_id : static_cast<uint64_t>(i);
    out[i] = EvaluateOne(req, id, parallel ? 1 : 0);
  });
  return out;
}

EvalResponse PqeService::EvaluateOne(const EvalRequest& request,
                                     uint64_t effective_id,
                                     size_t inner_threads_override) const {
  // Effective per-request options: request optionals override the service
  // defaults, and seedless requests get a seed derived from their id so
  // batch members are independent yet individually reproducible.
  PqeEngine::Options opts = options_.engine;
  if (request.method.has_value()) opts.method = *request.method;
  if (request.epsilon.has_value()) opts.epsilon = *request.epsilon;
  if (request.collect_trace.has_value()) {
    opts.collect_trace = *request.collect_trace;
  }
  opts.seed = request.seed.has_value()
                  ? *request.seed
                  : Rng::DeriveSeed(options_.engine.seed, effective_id);
  if (inner_threads_override > 0) opts.num_threads = inner_threads_override;

  EvalResponse resp;
  // kQuery requests whose method resolves to the combined FPRAS take the
  // prepared fast path; everything else (safe plans, enumeration, lineage
  // methods, unions, uniform reliability) delegates to a per-request engine
  // carrying the effective options.
  bool prepared_route = false;
  if (request.target == EvalRequest::Target::kQuery &&
      request.query != nullptr && request.pdb != nullptr) {
    PqeMethod method = opts.method;
    if (method == PqeMethod::kAuto) {
      if (IsSafeQuery(*request.query)) {
        method = PqeMethod::kSafePlan;
      } else if (request.pdb->NumFacts() <= opts.enumeration_threshold) {
        method = PqeMethod::kEnumeration;
      } else {
        method = PqeMethod::kFpras;
      }
    }
    prepared_route = method == PqeMethod::kFpras;
  }
  if (prepared_route) {
    resp = EvaluatePrepared(request, effective_id, opts);
  } else {
    PqeEngine delegate(opts);
    EvalRequest forwarded = request;
    forwarded.request_id = effective_id;
    // Already folded into opts; clear so the delegate doesn't re-apply.
    forwarded.method.reset();
    forwarded.epsilon.reset();
    forwarded.seed.reset();
    forwarded.collect_trace.reset();
    resp = delegate.EvaluateRequest(forwarded);
  }

  auto& registry = obs::MetricRegistry::Global();
  registry.GetCounter("serve.requests").Increment();
  if (resp.deadline_exceeded) {
    registry.GetCounter("serve.deadline_exceeded").Increment();
  }
  registry.GetHistogram("serve.request_ms")
      .Observe(static_cast<uint64_t>(resp.elapsed_ms));
  return resp;
}

EvalResponse PqeService::EvaluatePrepared(
    const EvalRequest& request, uint64_t effective_id,
    const PqeEngine::Options& opts) const {
  const auto start = std::chrono::steady_clock::now();
  EvalResponse resp;
  resp.request_id = effective_id;

  std::optional<obs::TraceSession> session;
  if (opts.collect_trace) {
    session.emplace("serve.request");
    obs::SpanAttrUint("request_id", effective_id);
    obs::SpanAttrUint("facts", request.pdb->NumFacts());
  }

  std::optional<CancelToken> deadline;
  const CancelToken* cancel = request.cancel;
  if (request.deadline_ms > 0) {
    deadline.emplace(std::chrono::milliseconds(request.deadline_ms),
                     request.cancel);
    cancel = &*deadline;
  }

  auto FinishWith = [&](Result<PqeAnswer> result) {
    if (result.ok()) {
      resp.answer = std::move(*result);
      resp.status = Status::OK();
      if (session.has_value()) {
        obs::SpanAttrFloat("probability", resp.answer.probability);
        resp.answer.trace =
            std::make_shared<const obs::RunTrace>(session->Finish());
      }
    } else {
      resp.status = result.status();
    }
    resp.deadline_exceeded =
        resp.status.code() == StatusCode::kDeadlineExceeded;
    if (cancel != nullptr) resp.progress = cancel->progress();
    resp.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    return resp;
  };

  if (cancel != nullptr && cancel->Expired()) {
    return FinishWith(Status::DeadlineExceeded(
        "request expired before evaluation started"));
  }

  UrConstructionOptions ur_opts;
  ur_opts.max_width = opts.max_width;
  auto prepared =
      cache_->GetOrPrepare(*request.query, request.pdb->database(), ur_opts);
  if (!prepared.ok()) return FinishWith(prepared.status());
  const EstimatorConfig config = PqeEngine::MakeEstimatorConfig(opts, cancel);
  return FinishWith((*prepared)->EvaluateFpras(*request.pdb, config));
}

}  // namespace serve
}  // namespace pqe
