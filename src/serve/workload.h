#ifndef PQE_SERVE_WORKLOAD_H_
#define PQE_SERVE_WORKLOAD_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "pdb/probabilistic_database.h"
#include "serve/prepared_query.h"
#include "util/result.h"

namespace pqe {
namespace serve {

class PqeService;

/// One captured request, serialized as a single JSONL line. The record
/// carries everything a replay needs to re-execute the request bit-
/// identically against the same data (query text, effective seed/epsilon/
/// method) plus fingerprints of the inputs the file does NOT carry — the
/// probability labelling and the service's engine config — so a replay can
/// detect when it is being pointed at drifted inputs instead of silently
/// comparing incomparable runs. 64-bit hashes and seeds are stored as hex
/// strings (JSON numbers only round-trip 53 bits); doubles are written with
/// max_digits10, so the recorded probability compares bit-exactly.
struct WorkloadRecord {
  uint64_t request_id = 0;
  /// "query" | "rpq" | "union" | "ur" | "update"
  std::string target = "query";
  /// Rendered text ("" when not renderable): ConjunctiveQuery::ToString for
  /// "query", the canonical regex (RpqQuery::Canonical) for "rpq".
  std::string query;
  /// For target == "update": the applied delta as "FACT=NUM/DEN,..."
  /// (FormatLabelDelta). labelling_hash then fingerprints the labels AFTER
  /// the update, so a replay can verify it reproduced the same state.
  std::string update_spec;
  uint64_t labelling_hash = 0;   // HashLabelling of the request's pdb
  uint64_t config_hash = 0;      // HashEngineConfig of the serving defaults
  std::string method;            // effective method ("auto" = engine resolves)
  std::string kernels = "exact"; // effective kernel mode ("exact" | "fast")
  double epsilon = 0.0;          // effective epsilon
  uint64_t seed = 0;             // effective seed (explicit or derived)
  uint64_t deadline_ms = 0;
  std::string status = "ok";     // "ok" | "deadline_exceeded" | "error"
  double probability = 0.0;      // the recorded answer (valid when "ok")
};

/// One JSONL line (no trailing newline).
std::string FormatWorkloadRecord(const WorkloadRecord& record);

/// Parses one JSONL line produced by FormatWorkloadRecord.
Result<WorkloadRecord> ParseWorkloadRecord(std::string_view line);

/// Loads every record of a capture file (blank lines skipped).
Result<std::vector<WorkloadRecord>> LoadWorkloadFile(const std::string& path);

/// Renders a LabelDelta as "FACT=NUM/DEN,FACT=NUM/DEN,..." — the update
/// spec stored in capture files and accepted by pqe_cli --update.
std::string FormatLabelDelta(const LabelDelta& delta);

/// Parses a FormatLabelDelta spec back into a LabelDelta.
Result<LabelDelta> ParseLabelDeltaSpec(std::string_view spec);

/// FNV-1a over the pdb's per-fact probabilities (num, den in FactId order).
/// Identifies a labelling: equal hashes mean the replay binds the same
/// weights the capture did.
uint64_t HashLabelling(const ProbabilisticDatabase& pdb);

/// FNV-1a over the engine options that steer an evaluation but are NOT
/// recorded per line (max_width, enumeration_threshold, pool sizing,
/// repetitions). method/kernels/epsilon/seed are excluded — each record
/// carries its own effective values. num_threads and tracing are excluded by
/// the determinism contract (they never change answers).
uint64_t HashEngineConfig(const PqeEngine::Options& options);

/// Thread-safe JSONL appender; one line per Record() call, flushed eagerly
/// so captures survive a crash of the serving process.
class WorkloadRecorder {
 public:
  static Result<std::unique_ptr<WorkloadRecorder>> Open(
      const std::string& path);
  ~WorkloadRecorder();

  WorkloadRecorder(const WorkloadRecorder&) = delete;
  WorkloadRecorder& operator=(const WorkloadRecorder&) = delete;

  void Record(const WorkloadRecord& record);

 private:
  explicit WorkloadRecorder(std::FILE* file) : file_(file) {}
  std::mutex mu_;
  std::FILE* file_;
};

/// The outcome of replaying a capture. `mismatched == 0` (with `replayed >
/// 0`) is the whole-pipeline regression oracle: the determinism contract
/// says a replayed request must reproduce its recorded answer bit for bit,
/// so any mismatch means the pipeline changed behavior.
struct ReplayReport {
  size_t total = 0;            // records in the file
  size_t replayed = 0;         // re-executed and compared
  size_t matched = 0;          // probability bit-identical to the record
  size_t mismatched = 0;
  size_t skipped_status = 0;   // recorded status wasn't "ok"
  size_t skipped_target = 0;   // non-replayable targets ("union", "ur")
  size_t labelling_drift = 0;  // pdb labels differ from the capture's
  size_t config_drift = 0;     // engine defaults differ; ran, not compared
  size_t parse_failures = 0;   // query text no longer parses
  size_t updates_applied = 0;  // "update" records replayed through
                               // PqeService::ApplyUpdate
  size_t update_failures = 0;  // update specs that failed to parse or apply
  /// Human-readable descriptions of the first few mismatches.
  std::vector<std::string> mismatch_details;

  bool Clean() const {
    return mismatched == 0 && parse_failures == 0 && update_failures == 0;
  }
  std::string Summary() const;
};

/// Re-executes a capture against `service` + `pdb` (deadlines stripped —
/// replay measures answers, not timeouts) and bit-compares each answered
/// probability with its record. "update" records segment the replay: the
/// queries before each update run as one batch against the labels in force,
/// the update is applied through PqeService::ApplyUpdate to a private copy
/// of `pdb` (the caller's object is never mutated), and later queries see
/// the updated labels — so update-heavy captures replay bit-identically
/// too. Records whose labelling or config fingerprints don't match the
/// replay environment are counted as drift: config-drifted records still
/// run (their per-record seed/epsilon make them mostly comparable, but they
/// are not counted as matches), while labelling-drifted records are not
/// compared at all.
Result<ReplayReport> ReplayWorkload(const PqeService& service,
                                    const ProbabilisticDatabase& pdb,
                                    const std::vector<WorkloadRecord>& records);

}  // namespace serve
}  // namespace pqe

#endif  // PQE_SERVE_WORKLOAD_H_
