#include "serve/workload.h"

#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <optional>
#include <utility>

#include "cq/parser.h"
#include "obs/export.h"
#include "obs/json.h"
#include "rpq/regex.h"
#include "serve/service.h"
#include "util/parse.h"

namespace pqe {
namespace serve {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void Mix(uint64_t* h, uint64_t v) {
  *h ^= v;
  *h *= kFnvPrime;
}

std::string ToHex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

uint64_t FromHex(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

// Missing keys come back as the zero value — old captures with fewer fields
// stay loadable.
std::string GetString(const obs::JsonValue& obj, std::string_view key) {
  const obs::JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : std::string();
}

double GetNumber(const obs::JsonValue& obj, std::string_view key) {
  const obs::JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : 0.0;
}

uint64_t GetHex(const obs::JsonValue& obj, std::string_view key) {
  const obs::JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_string() ? FromHex(v->AsString()) : 0;
}

Result<PqeMethod> MethodFromString(const std::string& name) {
  for (PqeMethod m : kAllPqeMethods) {
    if (name == PqeMethodToString(m)) return m;
  }
  return Status::InvalidArgument("unknown method in workload record: " +
                                 name);
}

}  // namespace

std::string FormatWorkloadRecord(const WorkloadRecord& record) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("request_id").Uint(record.request_id);
  w.Key("target").String(record.target);
  w.Key("query").String(record.query);
  if (!record.update_spec.empty()) {
    w.Key("update_spec").String(record.update_spec);
  }
  w.Key("labelling_hash").String(ToHex(record.labelling_hash));
  w.Key("config_hash").String(ToHex(record.config_hash));
  w.Key("method").String(record.method);
  w.Key("kernels").String(record.kernels);
  w.Key("epsilon").Double(record.epsilon);
  w.Key("seed").String(ToHex(record.seed));
  w.Key("deadline_ms").Uint(record.deadline_ms);
  w.Key("status").String(record.status);
  w.Key("probability").Double(record.probability);
  w.EndObject();
  return w.Take();
}

Result<WorkloadRecord> ParseWorkloadRecord(std::string_view line) {
  PQE_ASSIGN_OR_RETURN(obs::JsonValue doc, obs::ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("workload record is not a JSON object");
  }
  WorkloadRecord r;
  r.request_id = doc.Find("request_id") != nullptr
                     ? doc.Find("request_id")->AsUint()
                     : 0;
  r.target = GetString(doc, "target");
  if (r.target.empty()) r.target = "query";
  r.query = GetString(doc, "query");
  r.update_spec = GetString(doc, "update_spec");
  r.labelling_hash = GetHex(doc, "labelling_hash");
  r.config_hash = GetHex(doc, "config_hash");
  r.method = GetString(doc, "method");
  // Pre-kernel-mode captures carry no "kernels" key; they recorded the
  // then-only exact tier.
  r.kernels = GetString(doc, "kernels");
  if (r.kernels.empty()) r.kernels = "exact";
  r.epsilon = GetNumber(doc, "epsilon");
  r.seed = GetHex(doc, "seed");
  r.deadline_ms =
      static_cast<uint64_t>(GetNumber(doc, "deadline_ms"));
  r.status = GetString(doc, "status");
  r.probability = GetNumber(doc, "probability");
  return r;
}

Result<std::vector<WorkloadRecord>> LoadWorkloadFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::InvalidArgument("cannot open workload file: " + path);
  }
  std::vector<WorkloadRecord> records;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto record = ParseWorkloadRecord(line);
    if (!record.ok()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(lineno) + ": " +
          record.status().message());
    }
    records.push_back(std::move(*record));
  }
  return records;
}

std::string FormatLabelDelta(const LabelDelta& delta) {
  std::string out;
  for (size_t i = 0; i < delta.facts.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(delta.facts[i]);
    out += '=';
    out += std::to_string(delta.new_probs[i].num);
    out += '/';
    out += std::to_string(delta.new_probs[i].den);
  }
  return out;
}

Result<LabelDelta> ParseLabelDeltaSpec(std::string_view spec) {
  LabelDelta delta;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string entry(spec.substr(pos, end - pos));
    const size_t eq = entry.find('=');
    const size_t slash = entry.find('/', eq == std::string::npos ? 0 : eq);
    if (eq == std::string::npos || slash == std::string::npos) {
      return Status::InvalidArgument(
          "bad update entry '" + entry + "' (expected FACT=NUM/DEN)");
    }
    // Strict digit runs for all three fields: strtoull would accept
    // "-1" (wrapping to 2^64-1) and leading whitespace or trailing junk,
    // turning a typo'd spec into a silent huge fact id or numerator.
    uint64_t fact_raw = 0;
    Probability p;
    if (!ParseStrictUint64(entry.substr(0, eq), &fact_raw) ||
        !ParseStrictUint64(entry.substr(eq + 1, slash - eq - 1), &p.num) ||
        !ParseStrictUint64(entry.substr(slash + 1), &p.den)) {
      return Status::InvalidArgument(
          "bad update entry '" + entry +
          "' (FACT, NUM, DEN must be plain unsigned integers)");
    }
    const FactId fact = static_cast<FactId>(fact_raw);
    if (p.den == 0 || p.num > p.den) {
      return Status::InvalidArgument("bad probability in update entry '" +
                                     entry + "'");
    }
    delta.facts.push_back(fact);
    delta.new_probs.push_back(p);
    pos = end + 1;
  }
  if (delta.facts.empty()) {
    return Status::InvalidArgument("empty update spec");
  }
  return delta;
}

uint64_t HashLabelling(const ProbabilisticDatabase& pdb) {
  uint64_t h = kFnvOffset;
  Mix(&h, pdb.NumFacts());
  for (FactId f = 0; f < pdb.NumFacts(); ++f) {
    const Probability p = pdb.probability(f);
    Mix(&h, p.num);
    Mix(&h, p.den);
  }
  return h;
}

uint64_t HashEngineConfig(const PqeEngine::Options& options) {
  uint64_t h = kFnvOffset;
  Mix(&h, options.max_width);
  Mix(&h, options.enumeration_threshold);
  Mix(&h, options.pool_size);
  Mix(&h, options.max_pool_size);
  Mix(&h, options.repetitions);
  Mix(&h, options.rpq_clause_budget);
  return h;
}

Result<std::unique_ptr<WorkloadRecorder>> WorkloadRecorder::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open capture file: " + path);
  }
  return std::unique_ptr<WorkloadRecorder>(new WorkloadRecorder(f));
}

WorkloadRecorder::~WorkloadRecorder() {
  if (file_ != nullptr) std::fclose(file_);
}

void WorkloadRecorder::Record(const WorkloadRecord& record) {
  const std::string line = FormatWorkloadRecord(record);
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

std::string ReplayReport::Summary() const {
  std::string out;
  out += "replay: " + std::to_string(total) + " records, " +
         std::to_string(replayed) + " replayed, " +
         std::to_string(matched) + " matched, " +
         std::to_string(mismatched) + " mismatched";
  if (skipped_status > 0) {
    out += ", " + std::to_string(skipped_status) + " skipped (status)";
  }
  if (skipped_target > 0) {
    out += ", " + std::to_string(skipped_target) + " skipped (target)";
  }
  if (labelling_drift > 0) {
    out += ", " + std::to_string(labelling_drift) + " labelling drift";
  }
  if (config_drift > 0) {
    out += ", " + std::to_string(config_drift) + " config drift";
  }
  if (parse_failures > 0) {
    out += ", " + std::to_string(parse_failures) + " parse failures";
  }
  if (updates_applied > 0) {
    out += ", " + std::to_string(updates_applied) + " updates applied";
  }
  if (update_failures > 0) {
    out += ", " + std::to_string(update_failures) + " update failures";
  }
  return out;
}

Result<ReplayReport> ReplayWorkload(
    const PqeService& service, const ProbabilisticDatabase& pdb,
    const std::vector<WorkloadRecord>& records) {
  constexpr size_t kMaxMismatchDetails = 8;
  ReplayReport report;
  report.total = records.size();

  // Updates mutate labels as the capture replays; they apply to a private
  // copy so the caller's pdb is never touched. Requests point at this one
  // object — SetProbability mutates in place, so the address is stable.
  ProbabilisticDatabase current = pdb;
  uint64_t labelling = HashLabelling(current);
  const uint64_t config = HashEngineConfig(service.options().engine);

  // Queries live in deques (stable addresses) for the whole replay; the
  // parallel index maps each request back to its record.
  std::deque<ConjunctiveQuery> queries;
  std::deque<rpq::RpqQuery> rpqs;
  std::vector<EvalRequest> requests;
  std::vector<const WorkloadRecord*> request_records;
  std::vector<bool> comparable;

  // Runs the queries accumulated since the last update as one batch and
  // bit-compares each answer with its record.
  auto FlushBatch = [&]() {
    if (requests.empty()) return;
    const std::vector<EvalResponse> responses =
        service.EvaluateBatch(requests);
    for (size_t i = 0; i < responses.size(); ++i) {
      if (!comparable[i]) continue;
      const WorkloadRecord& r = *request_records[i];
      const EvalResponse& resp = responses[i];
      ++report.replayed;
      // Bit-exact comparison (memcmp, not ==): the determinism contract is
      // about bit patterns, and it must hold for ±0.0 and NaN too.
      if (resp.status.ok() &&
          std::memcmp(&resp.answer.probability, &r.probability,
                      sizeof(double)) == 0) {
        ++report.matched;
      } else {
        ++report.mismatched;
        if (report.mismatch_details.size() < kMaxMismatchDetails) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "request %llu: recorded %.17g, replayed %.17g (%s)",
                        static_cast<unsigned long long>(r.request_id),
                        r.probability,
                        resp.status.ok() ? resp.answer.probability : 0.0,
                        resp.status.ok() ? "answer mismatch"
                                         : resp.status.message().c_str());
          report.mismatch_details.push_back(buf);
        }
      }
    }
    requests.clear();
    request_records.clear();
    comparable.clear();
  };

  for (const WorkloadRecord& r : records) {
    if (r.target == "update") {
      // Updates segment the replay: everything captured before the update
      // must run against the pre-update labels.
      FlushBatch();
      auto ApplyOne = [&]() -> Status {
        PQE_ASSIGN_OR_RETURN(LabelDelta delta,
                             ParseLabelDeltaSpec(r.update_spec));
        PQE_ASSIGN_OR_RETURN(PqeService::UpdateStats stats,
                             service.ApplyUpdate(&current, delta));
        (void)stats;
        return Status::OK();
      };
      const Status applied = ApplyOne();
      if (!applied.ok()) {
        ++report.update_failures;
        if (report.mismatch_details.size() < kMaxMismatchDetails) {
          report.mismatch_details.push_back("update record failed: " +
                                            applied.message());
        }
        continue;
      }
      ++report.updates_applied;
      labelling = HashLabelling(current);
      // The capture recorded the post-update labels; drift here means the
      // replay diverged from the captured update sequence.
      if (r.labelling_hash != 0 && r.labelling_hash != labelling) {
        ++report.labelling_drift;
      }
      continue;
    }
    if (r.target != "query" && r.target != "rpq") {
      ++report.skipped_target;
      continue;
    }
    if (r.status != "ok") {
      ++report.skipped_status;
      continue;
    }
    if (r.labelling_hash != labelling) {
      ++report.labelling_drift;
      continue;
    }
    std::optional<EvalRequest> parsed;
    if (r.target == "rpq") {
      auto rq = rpq::RpqQuery::Parse(r.query);
      if (rq.ok()) {
        rpqs.push_back(rq.MoveValue());
        parsed = EvalRequest::ForRpq(rpqs.back(), current);
      } else {
        ++report.parse_failures;
        if (report.mismatch_details.size() < kMaxMismatchDetails) {
          report.mismatch_details.push_back(
              "request " + std::to_string(r.request_id) +
              ": rpq no longer parses: " + rq.status().message());
        }
        continue;
      }
    } else {
      auto query = ParseQuery(current.database().schema(), r.query);
      if (!query.ok()) {
        ++report.parse_failures;
        if (report.mismatch_details.size() < kMaxMismatchDetails) {
          report.mismatch_details.push_back(
              "request " + std::to_string(r.request_id) +
              ": query no longer parses: " + query.status().message());
        }
        continue;
      }
      queries.push_back(std::move(*query));
      parsed = EvalRequest::ForQuery(queries.back(), current);
    }
    bool is_comparable = true;
    if (r.config_hash != config) {
      ++report.config_drift;
      is_comparable = false;
    }
    EvalRequest req = *parsed;
    req.request_id = r.request_id;
    req.seed = r.seed;
    req.epsilon = r.epsilon;
    if (!r.method.empty()) {
      PQE_ASSIGN_OR_RETURN(PqeMethod m, MethodFromString(r.method));
      req.method = m;
    }
    if (!r.kernels.empty()) {
      PQE_ASSIGN_OR_RETURN(KernelMode km, KernelModeFromString(r.kernels));
      req.kernels = km;
    }
    // No deadline: replay verifies answers, not timing.
    requests.push_back(req);
    request_records.push_back(&r);
    comparable.push_back(is_comparable);
  }
  FlushBatch();
  return report;
}

}  // namespace serve
}  // namespace pqe
