#ifndef PQE_SERVE_TELEMETRY_H_
#define PQE_SERVE_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace pqe {
namespace serve {

/// How much of the prepared pipeline a request actually ran, named by the
/// deepest stage that did real work. Doubles as the cache-effectiveness
/// taxonomy: a healthy steady-state workload is mostly kAnswerMemo /
/// kWarmBind, with kColdCompile only on first sight of a (query, facts)
/// pair.
enum class CacheClass {
  kAnswerMemo,    // bind and config both warm: answer served from the memo
  kWarmBind,      // skeleton + bind reused; only the sampler ran
  kDeltaRebind,   // skeleton reused; labels drifted but the bind was patched
                  // in place from a prior labelling (delta rebind)
  kRebind,        // skeleton reused; labels drifted, gadgets re-expanded
  kColdCompile,   // skeleton compiled this request (deepest work)
  kDelegated,     // non-prepared route (safe plan, enumeration, lineage, ...)
};

inline constexpr size_t kNumCacheClasses = 6;

const char* CacheClassName(CacheClass c);

/// Everything the service learns about one request, populated inside
/// PqeService::EvaluateOne. Stage timings are steady_clock measurements, so
/// they exist even in PQE_ENABLE_TRACING=0 builds; stages a request did not
/// run stay 0.
struct RequestTelemetry {
  uint64_t request_id = 0;
  CacheClass cache_class = CacheClass::kDelegated;
  StatusCode status = StatusCode::kOk;
  bool deadline_exceeded = false;

  uint64_t total_ns = 0;
  uint64_t cache_lookup_ns = 0;  // PreparedCache probe (minus compile time)
  uint64_t compile_ns = 0;       // skeleton compile, when this request paid it
  uint64_t bind_ns = 0;          // probability bind (gadget expansion)
  uint64_t estimate_ns = 0;      // CountNFA/CountNFTA sampling

  uint64_t samples = 0;   // rejection-sampling attempts of the answer
  uint64_t progress = 0;  // strata finished before completion or expiry

  /// One-line description for the slow-query log: the stage breakdown, plus
  /// a trace excerpt when the request collected one.
  std::string span_excerpt;
};

/// A point-in-time aggregate of every request the service has served.
struct ServiceStats {
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;  // non-OK, non-deadline statuses
  uint64_t deadline_exceeded = 0;
  /// Requests per CacheClass, indexed by the enum's value.
  std::array<uint64_t, kNumCacheClasses> by_class{};

  /// Latency distribution of one pipeline stage, quantiles extracted from
  /// the log2 histogram buckets (obs::MetricsSnapshot::HistogramEntry).
  struct StageStats {
    std::string stage;  // "total", "cache_lookup", "compile", "bind", "estimate"
    uint64_t count = 0;   // requests that ran the stage
    uint64_t sum_ns = 0;
    double p50_ns = 0.0;
    double p95_ns = 0.0;
    double p99_ns = 0.0;
  };
  std::vector<StageStats> stages;

  struct SlowQuery {
    uint64_t request_id = 0;
    uint64_t total_ns = 0;
    CacheClass cache_class = CacheClass::kDelegated;
    std::string span_excerpt;
  };
  /// The slowest requests seen, slowest first, bounded by the service's
  /// slow_log_capacity.
  std::vector<SlowQuery> slow_queries;

  const StageStats* FindStage(std::string_view stage) const;

  /// JSON rendering for the CLI and dashboards:
  /// {"service_stats": {"requests": ..., "by_class": {...},
  ///  "stages": {name: {count, sum_ns, p50_ns, p95_ns, p99_ns}},
  ///  "slow_queries": [...]}}.
  std::string ToJson() const;
};

/// The lock-cheap aggregation behind PqeService::StatsSnapshot(). Record()
/// is a handful of relaxed atomic adds plus histogram observes; the mutex is
/// only taken when a request is slow enough to enter the bounded slow-query
/// log (an atomic floor check skips it for the fast majority). Snapshot()
/// follows the same relaxed contract as obs::MetricRegistry — see the
/// contract note there.
class ServiceTelemetry {
 public:
  explicit ServiceTelemetry(size_t slow_log_capacity);

  ServiceTelemetry(const ServiceTelemetry&) = delete;
  ServiceTelemetry& operator=(const ServiceTelemetry&) = delete;

  void Record(RequestTelemetry t);
  ServiceStats Snapshot() const;

  /// Zeroes every aggregate: counts, stage histograms, and the slow-query
  /// log TOGETHER WITH its admission floor. The floor must fall with the
  /// log — a floor left at the old tail would silently reject every
  /// post-reset request faster than the pre-reset slowest, leaving the
  /// fresh log empty forever. Safe to interleave with concurrent Record()
  /// calls under the relaxed-atomics contract (see obs::MetricRegistry);
  /// quiesce first when an exact cut matters.
  void Reset();

 private:
  const size_t slow_capacity_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> deadline_{0};
  std::array<std::atomic<uint64_t>, kNumCacheClasses> by_class_{};

  obs::Histogram total_;
  obs::Histogram cache_lookup_;
  obs::Histogram compile_;
  obs::Histogram bind_;
  obs::Histogram estimate_;

  // Smallest total_ns currently held by a full slow log; requests at or
  // below it can't enter and skip the mutex entirely.
  std::atomic<uint64_t> slow_floor_{0};
  mutable std::mutex slow_mu_;
  std::vector<ServiceStats::SlowQuery> slow_;  // sorted slowest-first
};

}  // namespace serve
}  // namespace pqe

#endif  // PQE_SERVE_TELEMETRY_H_
