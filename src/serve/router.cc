#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "serve/prepared_cache.h"
#include "util/thread_pool.h"

namespace pqe {
namespace serve {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ShardRouter::ShardRouter(Options options, TransportFactory transport_factory)
    : options_(std::move(options)) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.max_attempts == 0) options_.max_attempts = 1;
  PqeService::Options service = options_.service;
  // When the router fans a batch out in parallel, each shard's inner
  // evaluation is pinned to one thread (the shared pool is not reentrant).
  // Nothing about the answers changes — every sampling layer is
  // bit-identical across thread counts (docs/parallelism.md).
  if (ThreadPool::ResolveNumThreads(options_.num_threads) > 1) {
    service.engine.num_threads = 1;
    service.num_threads = 1;
  }
  cluster_ = std::make_unique<ShardCluster>(options_.num_shards, service);
  transport_ = transport_factory
                   ? transport_factory(cluster_.get())
                   : std::make_unique<DirectTransport>(cluster_.get());
}

size_t ShardRouter::Route(const EvalRequest& request) const {
  const size_t n = cluster_->size();
  // Prepared-cache affinity: the routing key IS the prepared cache's
  // content key, so equal (query, facts) requests share one shard's cache.
  // Requests without a conjunctive query + database (unions) have no
  // prepared path; they spread by request id.
  uint64_t key = request.request_id;
  if (request.rpq != nullptr && request.pdb != nullptr) {
    key = PreparedCache::RpqContentKey(*request.rpq, request.pdb->database());
  } else if (request.query != nullptr) {
    const Database* db = nullptr;
    if (request.pdb != nullptr) {
      db = &request.pdb->database();
    } else if (request.db != nullptr) {
      db = request.db;
    }
    if (db != nullptr) {
      key = PreparedCache::ContentKey(*request.query, *db,
                                      options_.service.engine.max_width);
    }
  }
  return static_cast<size_t>(key % n);
}

EvalResponse ShardRouter::Evaluate(const EvalRequest& request) const {
  return EvaluateOne(request, request.request_id);
}

EvalResponse ShardRouter::EvaluateOne(const EvalRequest& request,
                                      uint64_t effective_id) const {
  const auto start = std::chrono::steady_clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricRegistry::Global().GetCounter("serve.router.requests")
      .Increment();

  const size_t n = cluster_->size();
  const size_t attempts = std::min(options_.max_attempts, n);
  const size_t primary = Route(request);
  Status last_loss = Status::Unavailable("no shard attempted");

  for (size_t a = 0; a < attempts; ++a) {
    const size_t shard = (primary + a) % n;
    EvalRequest attempt = request;
    attempt.request_id = effective_id;
    bool hedge_capped = false;
    if (request.deadline_ms > 0) {
      const double elapsed = MillisSince(start);
      if (elapsed >= static_cast<double>(request.deadline_ms)) {
        EvalResponse resp;
        resp.request_id = effective_id;
        resp.status = Status::DeadlineExceeded(
            "router: deadline exhausted after " + std::to_string(a) +
            " attempt(s)");
        resp.deadline_exceeded = true;
        resp.elapsed_ms = elapsed;
        return resp;
      }
      const uint64_t remaining = request.deadline_ms -
                                 static_cast<uint64_t>(elapsed);
      attempt.deadline_ms = remaining;
      // Hedged retry: a non-final attempt only gets a slice of the budget;
      // if it expires with budget to spare, the backup gets the rest.
      if (options_.hedge_fraction > 0.0 && a + 1 < attempts) {
        uint64_t slice = static_cast<uint64_t>(
            static_cast<double>(remaining) * options_.hedge_fraction);
        if (slice == 0) slice = 1;
        if (slice < remaining) {
          attempt.deadline_ms = slice;
          hedge_capped = true;
        }
      }
    }

    ShardCall call;
    call.shard = shard;
    call.request_id = effective_id;
    call.attempt = static_cast<uint32_t>(a);
    Result<EvalResponse> r = transport_->Call(call, attempt);

    if (r.ok()) {
      EvalResponse resp = std::move(*r);
      resp.request_id = effective_id;
      if (resp.deadline_exceeded && hedge_capped &&
          MillisSince(start) < static_cast<double>(request.deadline_ms)) {
        // The hedge slice ran out but the real budget didn't: re-issue to
        // the next shard with everything left. Same request, same seed —
        // the backup's answer is bit-identical to what the primary would
        // have produced, so hedging affects latency only.
        hedges_.fetch_add(1, std::memory_order_relaxed);
        obs::MetricRegistry::Global().GetCounter("serve.router.hedges")
            .Increment();
        continue;
      }
      resp.elapsed_ms = MillisSince(start);  // end-to-end, retries included
      return resp;
    }

    if (r.status().code() == StatusCode::kUnavailable) {
      last_loss = r.status();
      if (a + 1 < attempts) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        obs::MetricRegistry::Global().GetCounter("serve.router.retries")
            .Increment();
      }
      continue;
    }

    // Any other transport-level error is definitive; report it as-is.
    EvalResponse resp;
    resp.request_id = effective_id;
    resp.status = r.status();
    resp.elapsed_ms = MillisSince(start);
    return resp;
  }

  // Every attempt was lost with its shard: a typed partial-result outcome —
  // the caller's batch keeps its surviving answers, this one is missing.
  lost_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricRegistry::Global().GetCounter("serve.router.lost").Increment();
  EvalResponse resp;
  resp.request_id = effective_id;
  resp.status = Status::PartialResult(
      "request " + std::to_string(effective_id) + " lost: " +
      std::to_string(attempts) + " shard attempt(s) unavailable (" +
      last_loss.message() + ")");
  resp.elapsed_ms = MillisSince(start);
  return resp;
}

ShardRouter::BatchResult ShardRouter::EvaluateBatch(
    const std::vector<EvalRequest>& requests) const {
  BatchResult out;
  out.responses.resize(requests.size());
  const size_t threads = ThreadPool::ResolveNumThreads(options_.num_threads);
  ParallelFor(threads, requests.size(), [&](size_t i) {
    const EvalRequest& req = requests[i];
    // Same effective-id policy as PqeService::EvaluateBatch, so a sharded
    // batch derives the same per-request seeds as a single-service batch.
    const uint64_t id =
        req.request_id != 0 ? req.request_id : static_cast<uint64_t>(i);
    out.responses[i] = EvaluateOne(req, id);
  });
  for (const EvalResponse& resp : out.responses) {
    if (resp.status.ok()) {
      ++out.answered;
    } else if (resp.status.code() == StatusCode::kPartialResult) {
      ++out.lost;
    } else {
      ++out.failed;
    }
  }
  if (out.lost == 0) {
    out.status = Status::OK();
  } else {
    out.status = Status::PartialResult(
        std::to_string(out.lost) + " of " +
        std::to_string(out.responses.size()) +
        " answers lost with their shards (" + std::to_string(out.answered) +
        " answered, " + std::to_string(out.failed) + " failed)");
  }
  return out;
}

ShardRouter::Stats ShardRouter::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.hedges = hedges_.load(std::memory_order_relaxed);
  s.lost = lost_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace serve
}  // namespace pqe
