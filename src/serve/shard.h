#ifndef PQE_SERVE_SHARD_H_
#define PQE_SERVE_SHARD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/service.h"
#include "util/result.h"

namespace pqe {
namespace serve {

/// Identity of one call the router hands to the transport: which shard is
/// targeted, for which attempt of which request. Fault injection keys its
/// decisions off this triple alone (never off wall-clock or arrival order),
/// so a seed's fault schedule is a pure function and replays exactly.
struct ShardCall {
  size_t shard = 0;
  uint64_t request_id = 0;
  uint32_t attempt = 0;
};

/// One worker shard of the serving cluster: a PqeService with its own
/// PreparedCache — the cluster partitions the prepared-query keyspace, so
/// each skeleton is compiled and retained on exactly the shard its content
/// key routes to — plus a liveness flag the fault harness (and, later, real
/// process supervision) can flip.
///
/// Determinism note: every shard is constructed from the same service
/// options, and per-request seeds depend only on (engine seed, request id)
/// — so WHICH shard serves a request never changes the answer. That is the
/// property retries, hedging, and the fault harness all lean on.
class Shard {
 public:
  Shard(size_t index, const PqeService::Options& options)
      : index_(index), service_(options) {}

  size_t index() const { return index_; }
  const PqeService& service() const { return service_; }

  bool alive() const { return alive_.load(std::memory_order_acquire); }
  /// Marks the shard lost. Irreversible for the cluster's lifetime — a
  /// crashed worker's in-memory caches are gone; a real deployment would
  /// replace the process, which here is "build a new cluster".
  void Crash() { alive_.store(false, std::memory_order_release); }

  /// Serves one request, or kUnavailable when the shard is down.
  Result<EvalResponse> Serve(const EvalRequest& request) const;

  /// Requests this shard has answered (load accounting for tests/benches).
  uint64_t served() const { return served_.load(std::memory_order_relaxed); }

 private:
  const size_t index_;
  PqeService service_;
  std::atomic<bool> alive_{true};
  mutable std::atomic<uint64_t> served_{0};
};

/// A fixed-size set of in-process worker shards sharing one configuration.
class ShardCluster {
 public:
  /// `num_shards` ≥ 1 services, each built from `options`.
  ShardCluster(size_t num_shards, const PqeService::Options& options);

  ShardCluster(const ShardCluster&) = delete;
  ShardCluster& operator=(const ShardCluster&) = delete;

  size_t size() const { return shards_.size(); }
  Shard& shard(size_t i) { return *shards_[i]; }
  const Shard& shard(size_t i) const { return *shards_[i]; }
  size_t alive_count() const;

 private:
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// The boundary between the router and the shards: the router never touches
/// a Shard directly, it issues Calls through this interface. The default
/// implementation (DirectTransport) invokes the target shard's service in
/// process; FaultInjectingTransport (faultsim.h) wraps one to inject
/// crashes, delays, and message drops. Implementations must be thread-safe.
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  /// Delivers `request` to `call.shard` and returns its response, or
  /// kUnavailable when the shard is down or the message was lost.
  virtual Result<EvalResponse> Call(const ShardCall& call,
                                    const EvalRequest& request) = 0;
};

/// In-process delivery: a Call is a method call on the shard's service.
class DirectTransport : public ShardTransport {
 public:
  /// `cluster` is not owned and must outlive the transport.
  explicit DirectTransport(ShardCluster* cluster) : cluster_(cluster) {}

  Result<EvalResponse> Call(const ShardCall& call,
                            const EvalRequest& request) override {
    return cluster_->shard(call.shard).Serve(request);
  }

 private:
  ShardCluster* cluster_;
};

}  // namespace serve
}  // namespace pqe

#endif  // PQE_SERVE_SHARD_H_
