#ifndef PQE_SERVE_PREPARED_CACHE_H_
#define PQE_SERVE_PREPARED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/ur_construction.h"
#include "cq/query.h"
#include "pdb/database.h"
#include "serve/prepared_query.h"
#include "util/result.h"

namespace pqe {
namespace serve {

/// A bounded, thread-safe LRU cache of PreparedQuery objects, keyed by the
/// *content* of the (query, database, max_width) triple — not by object
/// identity — so two requests carrying equal queries over equal fact sets
/// share one compiled skeleton no matter which objects they hold.
///
/// Concurrency: a key's slot is inserted under the cache lock, but the
/// (possibly expensive) compile runs outside it under the slot's own
/// once-flag — concurrent misses on the same key block on one build instead
/// of compiling in parallel, and misses on different keys never serialize.
/// Eviction drops the cache's reference only; in-flight evaluations keep
/// their PreparedQuery alive through shared_ptr.
class PreparedCache {
 public:
  /// `capacity` = maximum number of prepared entries retained (≥ 1).
  /// `bind_cache_capacity` = per-entry bound-labelling LRU depth, forwarded
  /// to PreparedQuery::Prepare.
  explicit PreparedCache(size_t capacity, size_t bind_cache_capacity = 4);

  PreparedCache(const PreparedCache&) = delete;
  PreparedCache& operator=(const PreparedCache&) = delete;

  /// Per-call outcome for telemetry. `hit` is false for the caller whose
  /// probe inserted the slot; `compile_ns` is the skeleton compile time that
  /// caller paid (0 on hits — a hit may still briefly block on another
  /// caller's in-flight compile, which shows up as lookup time).
  struct LookupResult {
    bool hit = false;
    uint64_t compile_ns = 0;
  };

  /// Returns the cached PreparedQuery for the triple's content, compiling
  /// and inserting it on miss. A failed compile is returned to every caller
  /// of that slot and is not retained (the next request retries).
  Result<std::shared_ptr<const PreparedQuery>> GetOrPrepare(
      const ConjunctiveQuery& query, const Database& db,
      const UrConstructionOptions& options, LookupResult* lookup = nullptr);

  /// Regular-path-query companion of GetOrPrepare: same cache, same slots,
  /// keyed by RpqContentKey. Compiles through PreparedQuery::PrepareRpq on
  /// miss.
  Result<std::shared_ptr<const PreparedQuery>> GetOrPrepareRpq(
      const rpq::RpqQuery& query, const Database& db,
      LookupResult* lookup = nullptr);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  Stats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Every successfully prepared query currently retained, MRU first.
  /// In-flight compiles are skipped (their slots aren't ready yet) — the
  /// caller that triggered the compile will see its own entry. Used by
  /// PqeService::ApplyUpdate to push a delta to every resident query.
  std::vector<std::shared_ptr<const PreparedQuery>> Snapshot() const;

  /// The content key: FNV-1a over the rendered query, every fact of the
  /// database in FactId order, and the width budget. 64-bit fingerprints,
  /// so distinct workloads collide with negligible probability; a collision
  /// would serve the colliding key the other key's skeleton.
  static uint64_t ContentKey(const ConjunctiveQuery& query,
                             const Database& db, size_t max_width);

  /// The RPQ content key: FNV-1a over an "rpq" tag, the canonical regex
  /// rendering (RpqQuery::Canonical — deterministic, so equal regexes agree
  /// no matter how they were spelled), and every fact of the database. No
  /// width term: the string route has no decomposition.
  static uint64_t RpqContentKey(const rpq::RpqQuery& query, const Database& db);

 private:
  /// The shared probe/insert/compile body: `compile` runs under the slot's
  /// once-flag on miss.
  Result<std::shared_ptr<const PreparedQuery>> GetOrPrepareImpl(
      uint64_t key,
      const std::function<Result<std::shared_ptr<const PreparedQuery>>()>&
          compile,
      LookupResult* lookup);
  struct Slot {
    std::once_flag once;
    // Written once under `once`, then read-only. `ready` is release-stored
    // after the build so Snapshot() can read `prepared` without touching
    // the once-flag.
    std::shared_ptr<const PreparedQuery> prepared;
    Status status = Status::OK();
    std::atomic<bool> ready{false};
  };

  const size_t capacity_;
  const size_t bind_cache_capacity_;

  mutable std::mutex mu_;
  // MRU-first recency list; the map points into it for O(1) touch/evict.
  std::list<std::pair<uint64_t, std::shared_ptr<Slot>>> lru_;
  std::unordered_map<uint64_t, decltype(lru_)::iterator> index_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace serve
}  // namespace pqe

#endif  // PQE_SERVE_PREPARED_CACHE_H_
