#include "tools/fact_file.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/parse.h"

namespace pqe {

namespace {

struct ParsedFact {
  std::string relation;
  std::vector<std::string> constants;
  Probability probability = Probability::Half();
};

// Parses "w/d" or a decimal like "0.75" into an exact rational.
Result<Probability> ParseProbability(const std::string& token, int line_no) {
  auto fail = [&](const std::string& why) {
    return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                   why + ": '" + token + "'");
  };
  const size_t slash = token.find('/');
  if (slash != std::string::npos) {
    // Strict digit runs on both sides: stoull would accept "-1/2" (the
    // numerator wraps to 2^64-2) and " 1/2" or "1a/2" (junk ignored).
    uint64_t num = 0, den = 0;
    if (!ParseStrictUint64(token.substr(0, slash), &num) ||
        !ParseStrictUint64(token.substr(slash + 1), &den)) {
      return fail("malformed rational probability");
    }
    auto p = Probability::Make(num, den);
    if (!p.ok()) return fail(p.status().message());
    return p;
  }
  // Decimal: integer part must be 0 or 1.
  const size_t dot = token.find('.');
  std::string int_part = dot == std::string::npos ? token
                                                  : token.substr(0, dot);
  std::string frac = dot == std::string::npos ? "" : token.substr(dot + 1);
  if (int_part != "0" && int_part != "1") {
    return fail("probability must be in [0, 1]");
  }
  if (frac.size() > 18) frac = frac.substr(0, 18);
  uint64_t den = 1;
  uint64_t num = 0;
  for (char c : frac) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return fail("malformed decimal probability");
    }
    den *= 10;
    num = num * 10 + static_cast<uint64_t>(c - '0');
  }
  if (int_part == "1") {
    if (num != 0) return fail("probability must be in [0, 1]");
    return Probability::One();
  }
  if (den == 1) return Probability::Zero();  // "0"
  auto p = Probability::Make(num, den);
  if (!p.ok()) return fail(p.status().message());
  return p;
}

Result<ParsedFact> ParseLine(const std::string& line, int line_no) {
  auto fail = [&](const std::string& why) {
    return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                   why);
  };
  ParsedFact out;
  size_t pos = 0;
  auto skip_space = [&] {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
  };
  skip_space();
  size_t start = pos;
  while (pos < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[pos])) ||
          line[pos] == '_')) {
    ++pos;
  }
  if (pos == start) return fail("expected relation name");
  out.relation = line.substr(start, pos - start);
  skip_space();
  if (pos >= line.size() || line[pos] != '(') return fail("expected '('");
  ++pos;
  for (;;) {
    skip_space();
    start = pos;
    while (pos < line.size() && line[pos] != ',' && line[pos] != ')') ++pos;
    if (pos >= line.size()) return fail("unterminated fact");
    std::string constant = line.substr(start, pos - start);
    while (!constant.empty() &&
           std::isspace(static_cast<unsigned char>(constant.back()))) {
      constant.pop_back();
    }
    if (constant.empty()) return fail("empty constant");
    out.constants.push_back(std::move(constant));
    if (line[pos] == ')') {
      ++pos;
      break;
    }
    ++pos;  // ','
  }
  skip_space();
  if (pos < line.size()) {
    std::string token = line.substr(pos);
    while (!token.empty() &&
           std::isspace(static_cast<unsigned char>(token.back()))) {
      token.pop_back();
    }
    if (!token.empty()) {
      PQE_ASSIGN_OR_RETURN(out.probability,
                           ParseProbability(token, line_no));
    }
  }
  return out;
}

}  // namespace

Result<ProbabilisticDatabase> ParseFactText(const std::string& text) {
  Schema schema;
  std::vector<ParsedFact> facts;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;
    PQE_ASSIGN_OR_RETURN(ParsedFact f, ParseLine(line, line_no));
    if (!schema.HasRelation(f.relation)) {
      PQE_RETURN_IF_ERROR(
          schema
              .AddRelation(f.relation,
                           static_cast<uint32_t>(f.constants.size()))
              .status());
    }
    facts.push_back(std::move(f));
  }
  Database db(schema);
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  for (const ParsedFact& f : facts) {
    PQE_RETURN_IF_ERROR(
        pdb.AddFact(f.relation, f.constants, f.probability).status());
  }
  return pdb;
}

Result<ProbabilisticDatabase> LoadFactFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open fact file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseFactText(buffer.str());
}

}  // namespace pqe
