#ifndef PQE_TOOLS_FACT_FILE_H_
#define PQE_TOOLS_FACT_FILE_H_

#include <string>

#include "pdb/probabilistic_database.h"
#include "util/result.h"

namespace pqe {

/// Parses the textual probabilistic-database format used by the CLI and
/// examples. One fact per line:
///
///     Follows(ann, bob) 9/10
///     Likes(bob, jazz) 0.75
///     Edge(a, b)               # probability defaults to 1/2
///
/// Probabilities may be rationals "w/d" or decimals (converted exactly to
/// w/10^k). '#' starts a comment; blank lines are ignored. Relations are
/// added to the schema on first use with the observed arity.
Result<ProbabilisticDatabase> ParseFactText(const std::string& text);

/// Reads `path` and parses it with ParseFactText.
Result<ProbabilisticDatabase> LoadFactFile(const std::string& path);

}  // namespace pqe

#endif  // PQE_TOOLS_FACT_FILE_H_
