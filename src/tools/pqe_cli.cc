// pqe_cli — evaluate the probability of a Boolean conjunctive query over a
// tuple-independent probabilistic database given as a text file.
//
//   pqe_cli --data facts.txt --query "Follows(x,y), Likes(y,z)"
//           [--method auto|fpras|safe-plan|enumeration|karp-luby|
//            exact-lineage|monte-carlo]
//           [--epsilon 0.1] [--seed 42] [--max-width 3] [--threads 4]
//           [--ur] [--sample K] [--trace | --trace=json]
//           [--metrics | --metrics=prom] [--capture F] [--replay F]
//           [--update SPEC] [--stats]
//           [--faultsim-seed N | --faultsim-sweep K] [--faultsim-verbose]
//
// With --ur the uniform reliability UR(Q, D) is reported instead (fact
// probabilities in the file are ignored). With --sample K, K posterior
// worlds conditioned on the query holding are printed. --trace prints the
// evaluation's span tree (--trace=json as JSON); --metrics dumps the global
// metric registry after evaluation (JSON, or OpenMetrics text with
// --metrics=prom). --capture records served requests to a JSONL workload
// file; --replay re-executes a capture through the service and verifies the
// answers are bit-identical; --update (with --server-batch) applies a fact-
// probability delta between two rounds of the batch, exercising the
// delta-rebind path; --stats prints the service's telemetry snapshot
// (per-stage latency quantiles, cache classes, slow queries).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/sampling.h"
#include "cq/parser.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/faultsim.h"
#include "serve/service.h"
#include "serve/workload.h"
#include "tools/fact_file.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: pqe_cli --data FILE --query 'R(x,y), S(y,z)' [options]\n"
      "  --method auto|fpras|safe-plan|enumeration|karp-luby|exact-lineage\n"
      "  --epsilon E      target relative error (default 0.2)\n"
      "  --seed N         RNG seed (default 42)\n"
      "  --max-width W    hypertree width budget (default 3)\n"
      "  --threads N      worker threads for the sampling loops (default:\n"
      "                   $PQE_THREADS, else 1; results do not depend on N)\n"
      "  --kernels M      sampling kernels: exact (default; bit-identical\n"
      "                   golden path) or fast (batched alias-table kernels,\n"
      "                   statistically equivalent)\n"
      "  --ur             report uniform reliability instead of probability\n"
      "  --sample K       print K sampled worlds conditioned on Q holding\n"
      "  --server-batch F serve the queries in file F (one per line; # and\n"
      "                   blank lines skipped) through the prepared-query\n"
      "                   serving layer as one batch; --query is ignored\n"
      "  --deadline-ms N  per-request wall-clock budget; an expired request\n"
      "                   returns a typed DeadlineExceeded status\n"
      "  --trace          print the evaluation's span tree (timings)\n"
      "  --trace=json     same, as a JSON document on stdout\n"
      "  --metrics        dump the global metric registry as JSON\n"
      "  --metrics=prom   same, in OpenMetrics/Prometheus text format\n"
      "  --capture F      (with --server-batch) append every served request\n"
      "                   to workload file F (JSONL)\n"
      "  --update SPEC    (with --server-batch) after the first round, apply\n"
      "                   the fact-probability delta SPEC (FACT=NUM/DEN,...)\n"
      "                   via the serving layer's incremental rebind and\n"
      "                   serve the batch again over the updated database\n"
      "  --replay F       re-execute workload file F through the serving\n"
      "                   layer and verify bit-identical answers\n"
      "  --stats          print the service stats snapshot as JSON\n"
      "                   (server-batch and replay modes)\n"
      "  --faultsim-seed N   run the sharded-serving fault-injection harness\n"
      "                   with seed N (self-contained; --data not needed):\n"
      "                   crashes/drops/delays are injected from the seed's\n"
      "                   derived schedule, surviving answers are checked\n"
      "                   bit-for-bit against the unfaulted run, and the\n"
      "                   seed is re-run to prove it replays exactly\n"
      "  --faultsim-sweep K  run the harness for seeds 1..K (default 1);\n"
      "                   exit status is non-zero if any seed fails\n"
      "  --faultsim-verbose  print per-request outcomes of the faulted run\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pqe;
  std::string data_path;
  std::string query_text;
  std::string method = "auto";
  std::string kernels = "exact";
  double epsilon = 0.2;
  uint64_t seed = 42;
  size_t max_width = 3;
  size_t num_threads = 0;
  bool uniform_reliability = false;
  size_t sample_worlds = 0;
  std::string server_batch_path;
  std::string capture_path;
  std::string replay_path;
  std::string update_spec;
  uint64_t deadline_ms = 0;
  bool faultsim = false;
  uint64_t faultsim_seed = 1;
  size_t faultsim_sweep = 0;
  bool faultsim_verbose = false;
  bool trace_text = false;
  bool trace_json = false;
  bool dump_metrics = false;
  bool metrics_prom = false;
  bool print_stats = false;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--data") == 0) {
      data_path = need_value("--data");
    } else if (std::strcmp(argv[i], "--query") == 0) {
      query_text = need_value("--query");
    } else if (std::strcmp(argv[i], "--method") == 0) {
      method = need_value("--method");
    } else if (std::strcmp(argv[i], "--kernels") == 0) {
      kernels = need_value("--kernels");
    } else if (std::strncmp(argv[i], "--kernels=", 10) == 0) {
      kernels = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--epsilon") == 0) {
      epsilon = std::atof(need_value("--epsilon"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-width") == 0) {
      max_width = std::strtoull(need_value("--max-width"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      num_threads = std::strtoull(need_value("--threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--ur") == 0) {
      uniform_reliability = true;
    } else if (std::strcmp(argv[i], "--sample") == 0) {
      sample_worlds = std::strtoull(need_value("--sample"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--server-batch") == 0) {
      server_batch_path = need_value("--server-batch");
    } else if (std::strcmp(argv[i], "--capture") == 0) {
      capture_path = need_value("--capture");
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replay_path = need_value("--replay");
    } else if (std::strncmp(argv[i], "--replay=", 9) == 0) {
      replay_path = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--update") == 0) {
      update_spec = need_value("--update");
    } else if (std::strncmp(argv[i], "--update=", 9) == 0) {
      update_spec = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      deadline_ms = std::strtoull(need_value("--deadline-ms"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--faultsim-seed") == 0) {
      faultsim = true;
      faultsim_seed = std::strtoull(need_value("--faultsim-seed"), nullptr, 10);
    } else if (std::strncmp(argv[i], "--faultsim-seed=", 16) == 0) {
      faultsim = true;
      faultsim_seed = std::strtoull(argv[i] + 16, nullptr, 10);
    } else if (std::strcmp(argv[i], "--faultsim-sweep") == 0) {
      faultsim = true;
      faultsim_sweep =
          std::strtoull(need_value("--faultsim-sweep"), nullptr, 10);
    } else if (std::strncmp(argv[i], "--faultsim-sweep=", 17) == 0) {
      faultsim = true;
      faultsim_sweep = std::strtoull(argv[i] + 17, nullptr, 10);
    } else if (std::strcmp(argv[i], "--faultsim-verbose") == 0) {
      faultsim_verbose = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_text = true;
    } else if (std::strcmp(argv[i], "--trace=json") == 0) {
      trace_json = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else if (std::strcmp(argv[i], "--metrics=prom") == 0) {
      dump_metrics = true;
      metrics_prom = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      print_stats = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
  }
  // Faultsim mode is self-contained: the harness generates its own workload
  // (path queries over seeded layered databases), so no --data is needed.
  if (faultsim) {
    bool all_ok = true;
    const uint64_t first = faultsim_sweep > 0 ? 1 : faultsim_seed;
    const uint64_t last = faultsim_sweep > 0 ? faultsim_sweep : faultsim_seed;
    for (uint64_t s = first; s <= last; ++s) {
      serve::FaultSimOptions fopt;
      fopt.seed = s;
      fopt.verbose = faultsim_verbose;
      auto report = serve::RunFaultSim(fopt);
      if (!report.ok()) {
        std::fprintf(stderr, "faultsim seed=%llu: %s\n",
                     static_cast<unsigned long long>(s),
                     report.status().ToString().c_str());
        return 1;
      }
      std::printf("%s\n", report->Summary().c_str());
      all_ok = all_ok && report->ok();
    }
    return all_ok ? 0 : 1;
  }

  if (data_path.empty() || (query_text.empty() && server_batch_path.empty() &&
                            replay_path.empty())) {
    Usage();
    return 2;
  }

  auto DumpMetrics = [metrics_prom]() {
    const obs::MetricsSnapshot snapshot =
        obs::MetricRegistry::Global().Snapshot();
    if (metrics_prom) {
      std::printf("%s", obs::MetricsToOpenMetrics(snapshot).c_str());
    } else {
      std::printf("%s\n", obs::MetricsToJson(snapshot).c_str());
    }
  };

  auto pdb_or = LoadFactFile(data_path);
  if (!pdb_or.ok()) {
    std::fprintf(stderr, "error loading data: %s\n",
                 pdb_or.status().ToString().c_str());
    return 1;
  }
  ProbabilisticDatabase pdb = pdb_or.MoveValue();

  // The query parser needs the schema from the data file; relations used
  // only in the query get added with inferred arities.
  Schema schema = pdb.schema();

  PqeEngine::Options::Builder builder;
  builder.Epsilon(epsilon)
      .Seed(seed)
      .MaxWidth(max_width)
      .NumThreads(num_threads)
      .CollectTrace(trace_text || trace_json);
  if (method == "auto") {
    builder.Method(PqeMethod::kAuto);
  } else if (method == "fpras") {
    builder.Method(PqeMethod::kFpras);
  } else if (method == "safe-plan") {
    builder.Method(PqeMethod::kSafePlan);
  } else if (method == "enumeration") {
    builder.Method(PqeMethod::kEnumeration);
  } else if (method == "karp-luby") {
    builder.Method(PqeMethod::kKarpLubyLineage);
  } else if (method == "exact-lineage") {
    builder.Method(PqeMethod::kExactLineage);
  } else if (method == "monte-carlo") {
    builder.Method(PqeMethod::kMonteCarlo);
  } else {
    std::fprintf(stderr, "unknown method: %s\n", method.c_str());
    return 2;
  }
  auto kernel_mode_or = KernelModeFromString(kernels);
  if (!kernel_mode_or.ok()) {
    std::fprintf(stderr, "%s\n",
                 kernel_mode_or.status().ToString().c_str());
    return 2;
  }
  builder.Kernels(*kernel_mode_or);
  auto opts_or = builder.Build();
  if (!opts_or.ok()) {
    std::fprintf(stderr, "invalid options: %s\n",
                 opts_or.status().ToString().c_str());
    return 2;
  }

  // Replay mode: re-execute a captured workload through the serving layer
  // and verify the determinism contract — every replayed answer must equal
  // its recorded one bit for bit.
  if (!replay_path.empty()) {
    auto records = serve::LoadWorkloadFile(replay_path);
    if (!records.ok()) {
      std::fprintf(stderr, "error loading workload: %s\n",
                   records.status().ToString().c_str());
      return 1;
    }
    serve::PqeService::Options sopts;
    sopts.engine = *opts_or;
    sopts.num_threads = num_threads;
    serve::PqeService service(sopts);
    auto report = serve::ReplayWorkload(service, pdb, *records);
    if (!report.ok()) {
      std::fprintf(stderr, "replay error: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", report->Summary().c_str());
    for (const std::string& detail : report->mismatch_details) {
      std::printf("  %s\n", detail.c_str());
    }
    if (print_stats) {
      std::printf("%s\n", service.StatsSnapshot().ToJson().c_str());
    }
    if (dump_metrics) DumpMetrics();
    return report->Clean() ? 0 : 1;
  }

  // Batch serving mode: every line of the file is a query evaluated over
  // the shared database through the prepared-query cache.
  if (!server_batch_path.empty()) {
    std::ifstream in(server_batch_path);
    if (!in) {
      std::fprintf(stderr, "error opening %s\n", server_batch_path.c_str());
      return 1;
    }
    std::vector<ConjunctiveQuery> queries;
    std::string line;
    while (std::getline(in, line)) {
      const size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      auto q = ParseQuery(schema, line);
      if (!q.ok()) {
        std::fprintf(stderr, "error parsing batch query \"%s\": %s\n",
                     line.c_str(), q.status().ToString().c_str());
        return 1;
      }
      queries.push_back(q.MoveValue());
    }
    std::vector<EvalRequest> requests;
    requests.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EvalRequest r = EvalRequest::ForQuery(queries[i], pdb);
      r.request_id = i + 1;
      r.deadline_ms = deadline_ms;
      requests.push_back(r);
    }
    serve::PqeService::Options sopts;
    sopts.engine = *opts_or;
    sopts.num_threads = num_threads;
    sopts.capture_path = capture_path;
    serve::PqeService service(sopts);
    if (!service.capture_status().ok()) {
      std::fprintf(stderr, "capture disabled: %s\n",
                   service.capture_status().ToString().c_str());
    }
    std::printf("serving %zu requests over %zu facts\n", requests.size(),
                pdb.NumFacts());
    int failures = 0;
    auto ServeRound = [&]() {
      const std::vector<EvalResponse> responses =
          service.EvaluateBatch(requests);
      for (size_t i = 0; i < responses.size(); ++i) {
        const EvalResponse& resp = responses[i];
        if (resp.status.ok()) {
          std::printf("[%llu] Pr(Q) %s %.6f  [%s]  %.1fms  %s\n",
                      static_cast<unsigned long long>(resp.request_id),
                      resp.answer.is_exact ? "=" : "~",
                      resp.answer.probability,
                      PqeMethodToString(resp.answer.method_used),
                      resp.elapsed_ms,
                      queries[i].ToString(schema).c_str());
        } else if (resp.deadline_exceeded) {
          std::printf("[%llu] DEADLINE_EXCEEDED after %.1fms (progress=%llu)"
                      "  %s\n",
                      static_cast<unsigned long long>(resp.request_id),
                      resp.elapsed_ms,
                      static_cast<unsigned long long>(resp.progress),
                      queries[i].ToString(schema).c_str());
        } else {
          std::printf("[%llu] ERROR %s\n",
                      static_cast<unsigned long long>(resp.request_id),
                      resp.status.ToString().c_str());
          ++failures;
        }
      }
    };
    ServeRound();
    if (!update_spec.empty()) {
      auto delta = serve::ParseLabelDeltaSpec(update_spec);
      if (!delta.ok()) {
        std::fprintf(stderr, "bad --update spec: %s\n",
                     delta.status().ToString().c_str());
        return 2;
      }
      auto ustats = service.ApplyUpdate(&pdb, *delta);
      if (!ustats.ok()) {
        std::fprintf(stderr, "update failed: %s\n",
                     ustats.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "update: %zu facts, %zu prepared visited, delta_rebinds=%zu "
          "full_rebinds=%zu untouched=%zu\n",
          ustats->facts, ustats->prepared_visited, ustats->delta_rebinds,
          ustats->full_rebinds, ustats->untouched);
      // Second round over the updated database: the requests point at the
      // same pdb object, so they see the new labels and land on the binds
      // ApplyUpdate refreshed.
      ServeRound();
    }
    const serve::PreparedCache::Stats cs = service.cache().stats();
    std::printf("cache: hits=%llu misses=%llu evictions=%llu\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.evictions));
    if (print_stats) {
      std::printf("%s\n", service.StatsSnapshot().ToJson().c_str());
    }
    if (dump_metrics) DumpMetrics();
    return failures == 0 ? 0 : 1;
  }

  auto query_or = ParseQuery(schema, query_text);
  if (!query_or.ok()) {
    std::fprintf(stderr, "error parsing query: %s\n",
                 query_or.status().ToString().c_str());
    return 1;
  }
  ConjunctiveQuery query = query_or.MoveValue();
  PqeEngine engine(*opts_or);

  std::printf("query:    %s\n", query.ToString(schema).c_str());
  std::printf("database: %zu facts (|H| = %zu bits)\n", pdb.NumFacts(),
              pdb.SizeInBits());
  if (uniform_reliability) {
    auto ur = engine.EvaluateUniformReliability(query, pdb.database());
    if (!ur.ok()) {
      std::fprintf(stderr, "error: %s\n", ur.status().ToString().c_str());
      return 1;
    }
    std::printf("UR(Q, D) ~ %.6g of 2^%zu subinstances\n", *ur,
                pdb.NumFacts());
    return 0;
  }
  EvalRequest request = EvalRequest::ForQuery(query, pdb);
  request.deadline_ms = deadline_ms;
  const EvalResponse response = engine.EvaluateRequest(request);
  if (!response.status.ok()) {
    if (response.deadline_exceeded) {
      std::fprintf(stderr,
                   "DEADLINE_EXCEEDED after %.1fms (progress=%llu): %s\n",
                   response.elapsed_ms,
                   static_cast<unsigned long long>(response.progress),
                   response.status.ToString().c_str());
    } else {
      std::fprintf(stderr, "error: %s\n",
                   response.status.ToString().c_str());
    }
    return 1;
  }
  const PqeAnswer& answer = response.answer;
  std::printf("Pr(Q) %s %.6f   [%s]\n", answer.is_exact ? "=" : "~",
              answer.probability, PqeMethodToString(answer.method_used));
  const std::string diagnostics = RenderDiagnostics(answer);
  if (!diagnostics.empty()) {
    std::printf("  %s\n", diagnostics.c_str());
  }
  if (answer.trace != nullptr) {
    if (trace_json) {
      std::printf("%s\n", obs::TraceToJson(*answer.trace).c_str());
    } else if (trace_text) {
      std::printf("\ntrace:\n%s", obs::RenderTraceText(*answer.trace).c_str());
    }
  }
  if (dump_metrics) DumpMetrics();

  if (sample_worlds > 0) {
    EstimatorConfig cfg;
    cfg.epsilon = epsilon;
    cfg.seed = seed;
    cfg.num_threads = num_threads;
    cfg.kernel_mode = *kernel_mode_or;
    UrConstructionOptions uropts;
    uropts.max_width = max_width;
    auto worlds =
        SampleConditionedWorlds(query, pdb, cfg, sample_worlds, uropts);
    if (!worlds.ok()) {
      std::fprintf(stderr, "sampling error: %s\n",
                   worlds.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%zu sampled worlds conditioned on Q (facts present):\n",
                worlds->worlds.size());
    for (const auto& world : worlds->worlds) {
      std::printf("  {");
      bool first = true;
      for (size_t f = 0; f < world.size(); ++f) {
        if (!world[f]) continue;
        std::printf("%s%s", first ? "" : ", ",
                    worlds->projected_db.FactToString(
                        static_cast<FactId>(f)).c_str());
        first = false;
      }
      std::printf("}\n");
    }
  }
  return 0;
}
