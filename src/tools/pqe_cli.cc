// pqe_cli — evaluate the probability of a Boolean query over a
// tuple-independent probabilistic database given as a text file. The query
// is either a conjunctive query (--query) or a regular path query (--rpq).
//
//   pqe_cli --data facts.txt --query "Follows(x,y), Likes(y,z)"
//   pqe_cli --data graph.txt --rpq "Follows+ / Likes"
//
// Every flag is declared once in kFlags below; the parser and the --help
// text are both generated from that table, so they cannot drift apart.
// Run `pqe_cli --help` for the full list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/sampling.h"
#include "cq/parser.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "rpq/regex.h"
#include "serve/faultsim.h"
#include "serve/service.h"
#include "serve/workload.h"
#include "tools/fact_file.h"

namespace {

// Every CLI-settable option, defaults included. One struct so the flag
// table's setters can be captureless function pointers.
struct CliOptions {
  std::string data_path;
  std::string query_text;
  std::string rpq_text;
  std::string method = "auto";
  std::string kernels = "exact";
  double epsilon = 0.2;
  uint64_t seed = 42;
  size_t max_width = 3;
  size_t num_threads = 0;
  bool uniform_reliability = false;
  size_t sample_worlds = 0;
  std::string server_batch_path;
  std::string capture_path;
  std::string replay_path;
  std::string update_spec;
  uint64_t deadline_ms = 0;
  bool faultsim = false;
  uint64_t faultsim_seed = 1;
  size_t faultsim_sweep = 0;
  bool faultsim_verbose = false;
  bool trace_text = false;
  bool trace_json = false;
  bool dump_metrics = false;
  bool metrics_prom = false;
  bool print_stats = false;
  bool help = false;
};

// One flag: its spelling, its value placeholder (nullptr for booleans), the
// help text (embedded '\n' continues on an indented line), and the setter.
// Value flags accept both `--flag V` and `--flag=V`.
struct FlagSpec {
  const char* name;
  const char* metavar;  // nullptr: boolean, setter receives nullptr
  const char* help;
  void (*set)(CliOptions&, const char*);
};

const FlagSpec kFlags[] = {
    {"--data", "FILE", "probabilistic database fact file (required)",
     [](CliOptions& o, const char* v) { o.data_path = v; }},
    {"--query", "Q", "Boolean conjunctive query, e.g. 'R(x,y), S(y,z)'",
     [](CliOptions& o, const char* v) { o.query_text = v; }},
    {"--rpq", "REGEX",
     "regular path query over edge labels, e.g. 'a/(b|c)*/d'\n"
     "(SPARQL property-path style: / concat, | alt, * + ?,\n"
     "^label inverse); evaluated instead of --query",
     [](CliOptions& o, const char* v) { o.rpq_text = v; }},
    {"--method", "M",
     "auto|fpras|safe-plan|enumeration|karp-luby|\n"
     "exact-lineage|monte-carlo (default auto)",
     [](CliOptions& o, const char* v) { o.method = v; }},
    {"--epsilon", "E", "target relative error (default 0.2)",
     [](CliOptions& o, const char* v) { o.epsilon = std::atof(v); }},
    {"--seed", "N", "RNG seed (default 42)",
     [](CliOptions& o, const char* v) {
       o.seed = std::strtoull(v, nullptr, 10);
     }},
    {"--max-width", "W", "hypertree width budget (default 3)",
     [](CliOptions& o, const char* v) {
       o.max_width = std::strtoull(v, nullptr, 10);
     }},
    {"--threads", "N",
     "worker threads for the sampling loops (default:\n"
     "$PQE_THREADS, else 1; results do not depend on N)",
     [](CliOptions& o, const char* v) {
       o.num_threads = std::strtoull(v, nullptr, 10);
     }},
    {"--kernels", "M",
     "sampling kernels: exact (default; bit-identical\n"
     "golden path) or fast (batched alias-table kernels,\n"
     "statistically equivalent)",
     [](CliOptions& o, const char* v) { o.kernels = v; }},
    {"--ur", nullptr, "report uniform reliability instead of probability",
     [](CliOptions& o, const char*) { o.uniform_reliability = true; }},
    {"--sample", "K", "print K sampled worlds conditioned on Q holding",
     [](CliOptions& o, const char* v) {
       o.sample_worlds = std::strtoull(v, nullptr, 10);
     }},
    {"--server-batch", "F",
     "serve the queries in file F (one per line; # and\n"
     "blank lines skipped; 'rpq:' prefix marks a regular\n"
     "path query) through the prepared-query serving\n"
     "layer as one batch; --query is ignored",
     [](CliOptions& o, const char* v) { o.server_batch_path = v; }},
    {"--deadline-ms", "N",
     "per-request wall-clock budget; an expired request\n"
     "returns a typed DeadlineExceeded status",
     [](CliOptions& o, const char* v) {
       o.deadline_ms = std::strtoull(v, nullptr, 10);
     }},
    {"--trace", nullptr, "print the evaluation's span tree (timings)",
     [](CliOptions& o, const char*) { o.trace_text = true; }},
    {"--trace=json", nullptr, "same, as a JSON document on stdout",
     [](CliOptions& o, const char*) { o.trace_json = true; }},
    {"--metrics", nullptr, "dump the global metric registry as JSON",
     [](CliOptions& o, const char*) { o.dump_metrics = true; }},
    {"--metrics=prom", nullptr, "same, in OpenMetrics/Prometheus text format",
     [](CliOptions& o, const char*) {
       o.dump_metrics = true;
       o.metrics_prom = true;
     }},
    {"--capture", "F",
     "(with --server-batch) append every served request\n"
     "to workload file F (JSONL)",
     [](CliOptions& o, const char* v) { o.capture_path = v; }},
    {"--update", "SPEC",
     "(with --server-batch) after the first round, apply\n"
     "the fact-probability delta SPEC (FACT=NUM/DEN,...)\n"
     "via the serving layer's incremental rebind and\n"
     "serve the batch again over the updated database",
     [](CliOptions& o, const char* v) { o.update_spec = v; }},
    {"--replay", "F",
     "re-execute workload file F through the serving\n"
     "layer and verify bit-identical answers",
     [](CliOptions& o, const char* v) { o.replay_path = v; }},
    {"--stats", nullptr,
     "print the service stats snapshot as JSON\n"
     "(server-batch and replay modes)",
     [](CliOptions& o, const char*) { o.print_stats = true; }},
    {"--faultsim-seed", "N",
     "run the sharded-serving fault-injection harness\n"
     "with seed N (self-contained; --data not needed):\n"
     "crashes/drops/delays are injected from the seed's\n"
     "derived schedule, surviving answers are checked\n"
     "bit-for-bit against the unfaulted run, and the\n"
     "seed is re-run to prove it replays exactly",
     [](CliOptions& o, const char* v) {
       o.faultsim = true;
       o.faultsim_seed = std::strtoull(v, nullptr, 10);
     }},
    {"--faultsim-sweep", "K",
     "run the harness for seeds 1..K (default 1);\n"
     "exit status is non-zero if any seed fails",
     [](CliOptions& o, const char* v) {
       o.faultsim = true;
       o.faultsim_sweep = std::strtoull(v, nullptr, 10);
     }},
    {"--faultsim-verbose", nullptr,
     "print per-request outcomes of the faulted run",
     [](CliOptions& o, const char*) { o.faultsim_verbose = true; }},
    {"--help", nullptr, "print this help",
     [](CliOptions& o, const char*) { o.help = true; }},
};

void Usage() {
  std::fprintf(stderr,
               "usage: pqe_cli --data FILE (--query 'R(x,y), S(y,z)' | "
               "--rpq 'a/b*') [options]\n");
  for (const FlagSpec& f : kFlags) {
    std::string head = f.name;
    if (f.metavar != nullptr) {
      head += ' ';
      head += f.metavar;
    }
    // First help line after the flag, continuations aligned beneath it.
    const char* text = f.help;
    bool first = true;
    while (*text != '\0') {
      const char* nl = std::strchr(text, '\n');
      const size_t len = nl != nullptr ? static_cast<size_t>(nl - text)
                                       : std::strlen(text);
      std::fprintf(stderr, "  %-18s %.*s\n", first ? head.c_str() : "",
                   static_cast<int>(len), text);
      text += len + (nl != nullptr ? 1 : 0);
      first = false;
    }
  }
}

// Parses argv against kFlags. Returns false (after printing a diagnostic and
// the usage text) on an unknown flag or a missing value.
bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const FlagSpec* match = nullptr;
    const char* value = nullptr;
    for (const FlagSpec& f : kFlags) {
      if (std::strcmp(arg, f.name) == 0) {
        match = &f;
        if (f.metavar != nullptr) {
          if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", f.name);
            Usage();
            return false;
          }
          value = argv[++i];
        }
        break;
      }
      const size_t n = std::strlen(f.name);
      if (f.metavar != nullptr && std::strncmp(arg, f.name, n) == 0 &&
          arg[n] == '=') {
        match = &f;
        value = arg + n + 1;
        break;
      }
    }
    if (match == nullptr) {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      Usage();
      return false;
    }
    match->set(*out, value);
  }
  return true;
}

// One line of a --server-batch file: either a conjunctive query or (with the
// 'rpq:' prefix) a regular path query. Parsed up front; the request vector
// points into this storage, which is stable once parsing finishes.
struct BatchEntry {
  std::string text;  // raw line, for printing
  std::optional<pqe::ConjunctiveQuery> cq;
  std::optional<pqe::rpq::RpqQuery> rpq;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pqe;
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return 2;
  if (cli.help) {
    Usage();
    return 0;
  }

  // Faultsim mode is self-contained: the harness generates its own workload
  // (path queries over seeded layered databases), so no --data is needed.
  if (cli.faultsim) {
    bool all_ok = true;
    const uint64_t first = cli.faultsim_sweep > 0 ? 1 : cli.faultsim_seed;
    const uint64_t last =
        cli.faultsim_sweep > 0 ? cli.faultsim_sweep : cli.faultsim_seed;
    for (uint64_t s = first; s <= last; ++s) {
      serve::FaultSimOptions fopt;
      fopt.seed = s;
      fopt.verbose = cli.faultsim_verbose;
      auto report = serve::RunFaultSim(fopt);
      if (!report.ok()) {
        std::fprintf(stderr, "faultsim seed=%llu: %s\n",
                     static_cast<unsigned long long>(s),
                     report.status().ToString().c_str());
        return 1;
      }
      std::printf("%s\n", report->Summary().c_str());
      all_ok = all_ok && report->ok();
    }
    return all_ok ? 0 : 1;
  }

  if (cli.data_path.empty() ||
      (cli.query_text.empty() && cli.rpq_text.empty() &&
       cli.server_batch_path.empty() && cli.replay_path.empty())) {
    Usage();
    return 2;
  }
  if (!cli.rpq_text.empty() &&
      (cli.uniform_reliability || cli.sample_worlds > 0)) {
    std::fprintf(stderr, "--rpq does not combine with --ur or --sample\n");
    return 2;
  }

  auto DumpMetrics = [&cli]() {
    const obs::MetricsSnapshot snapshot =
        obs::MetricRegistry::Global().Snapshot();
    if (cli.metrics_prom) {
      std::printf("%s", obs::MetricsToOpenMetrics(snapshot).c_str());
    } else {
      std::printf("%s\n", obs::MetricsToJson(snapshot).c_str());
    }
  };

  auto pdb_or = LoadFactFile(cli.data_path);
  if (!pdb_or.ok()) {
    std::fprintf(stderr, "error loading data: %s\n",
                 pdb_or.status().ToString().c_str());
    return 1;
  }
  ProbabilisticDatabase pdb = pdb_or.MoveValue();

  // The query parser needs the schema from the data file; relations used
  // only in the query get added with inferred arities.
  Schema schema = pdb.schema();

  PqeEngine::Options::Builder builder;
  builder.Epsilon(cli.epsilon)
      .Seed(cli.seed)
      .MaxWidth(cli.max_width)
      .NumThreads(cli.num_threads)
      .CollectTrace(cli.trace_text || cli.trace_json);
  if (cli.method == "auto") {
    builder.Method(PqeMethod::kAuto);
  } else if (cli.method == "fpras") {
    builder.Method(PqeMethod::kFpras);
  } else if (cli.method == "safe-plan") {
    builder.Method(PqeMethod::kSafePlan);
  } else if (cli.method == "enumeration") {
    builder.Method(PqeMethod::kEnumeration);
  } else if (cli.method == "karp-luby") {
    builder.Method(PqeMethod::kKarpLubyLineage);
  } else if (cli.method == "exact-lineage") {
    builder.Method(PqeMethod::kExactLineage);
  } else if (cli.method == "monte-carlo") {
    builder.Method(PqeMethod::kMonteCarlo);
  } else {
    std::fprintf(stderr, "unknown method: %s\n", cli.method.c_str());
    return 2;
  }
  auto kernel_mode_or = KernelModeFromString(cli.kernels);
  if (!kernel_mode_or.ok()) {
    std::fprintf(stderr, "%s\n", kernel_mode_or.status().ToString().c_str());
    return 2;
  }
  builder.Kernels(*kernel_mode_or);
  auto opts_or = builder.Build();
  if (!opts_or.ok()) {
    std::fprintf(stderr, "invalid options: %s\n",
                 opts_or.status().ToString().c_str());
    return 2;
  }

  // Replay mode: re-execute a captured workload through the serving layer
  // and verify the determinism contract — every replayed answer must equal
  // its recorded one bit for bit.
  if (!cli.replay_path.empty()) {
    auto records = serve::LoadWorkloadFile(cli.replay_path);
    if (!records.ok()) {
      std::fprintf(stderr, "error loading workload: %s\n",
                   records.status().ToString().c_str());
      return 1;
    }
    serve::PqeService::Options sopts;
    sopts.engine = *opts_or;
    sopts.num_threads = cli.num_threads;
    serve::PqeService service(sopts);
    auto report = serve::ReplayWorkload(service, pdb, *records);
    if (!report.ok()) {
      std::fprintf(stderr, "replay error: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", report->Summary().c_str());
    for (const std::string& detail : report->mismatch_details) {
      std::printf("  %s\n", detail.c_str());
    }
    if (cli.print_stats) {
      std::printf("%s\n", service.StatsSnapshot().ToJson().c_str());
    }
    if (cli.dump_metrics) DumpMetrics();
    return report->Clean() ? 0 : 1;
  }

  // Batch serving mode: every line of the file is a query evaluated over
  // the shared database through the prepared-query cache. Lines with the
  // 'rpq:' prefix are regular path queries; the rest are CQs.
  if (!cli.server_batch_path.empty()) {
    std::ifstream in(cli.server_batch_path);
    if (!in) {
      std::fprintf(stderr, "error opening %s\n",
                   cli.server_batch_path.c_str());
      return 1;
    }
    std::vector<BatchEntry> entries;
    std::string line;
    while (std::getline(in, line)) {
      const size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      BatchEntry entry;
      entry.text = line;
      if (line.compare(first, 4, "rpq:") == 0) {
        auto q = rpq::RpqQuery::Parse(line.substr(first + 4));
        if (!q.ok()) {
          std::fprintf(stderr, "error parsing batch rpq \"%s\": %s\n",
                       line.c_str(), q.status().ToString().c_str());
          return 1;
        }
        entry.rpq = q.MoveValue();
      } else {
        auto q = ParseQuery(schema, line);
        if (!q.ok()) {
          std::fprintf(stderr, "error parsing batch query \"%s\": %s\n",
                       line.c_str(), q.status().ToString().c_str());
          return 1;
        }
        entry.cq = q.MoveValue();
      }
      entries.push_back(std::move(entry));
    }
    std::vector<EvalRequest> requests;
    requests.reserve(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      EvalRequest r = entries[i].rpq.has_value()
                          ? EvalRequest::ForRpq(*entries[i].rpq, pdb)
                          : EvalRequest::ForQuery(*entries[i].cq, pdb);
      r.request_id = i + 1;
      r.deadline_ms = cli.deadline_ms;
      requests.push_back(r);
    }
    serve::PqeService::Options sopts;
    sopts.engine = *opts_or;
    sopts.num_threads = cli.num_threads;
    sopts.capture_path = cli.capture_path;
    serve::PqeService service(sopts);
    if (!service.capture_status().ok()) {
      std::fprintf(stderr, "capture disabled: %s\n",
                   service.capture_status().ToString().c_str());
    }
    std::printf("serving %zu requests over %zu facts\n", requests.size(),
                pdb.NumFacts());
    int failures = 0;
    auto ServeRound = [&]() {
      const std::vector<EvalResponse> responses =
          service.EvaluateBatch(requests);
      for (size_t i = 0; i < responses.size(); ++i) {
        const EvalResponse& resp = responses[i];
        if (resp.status.ok()) {
          std::printf("[%llu] Pr(Q) %s %.6f  [%s]  %.1fms  %s\n",
                      static_cast<unsigned long long>(resp.request_id),
                      resp.answer.is_exact ? "=" : "~",
                      resp.answer.probability,
                      PqeMethodToString(resp.answer.method_used),
                      resp.elapsed_ms, entries[i].text.c_str());
        } else if (resp.deadline_exceeded) {
          std::printf("[%llu] DEADLINE_EXCEEDED after %.1fms (progress=%llu)"
                      "  %s\n",
                      static_cast<unsigned long long>(resp.request_id),
                      resp.elapsed_ms,
                      static_cast<unsigned long long>(resp.progress),
                      entries[i].text.c_str());
        } else {
          std::printf("[%llu] ERROR %s\n",
                      static_cast<unsigned long long>(resp.request_id),
                      resp.status.ToString().c_str());
          ++failures;
        }
      }
    };
    ServeRound();
    if (!cli.update_spec.empty()) {
      auto delta = serve::ParseLabelDeltaSpec(cli.update_spec);
      if (!delta.ok()) {
        std::fprintf(stderr, "bad --update spec: %s\n",
                     delta.status().ToString().c_str());
        return 2;
      }
      auto ustats = service.ApplyUpdate(&pdb, *delta);
      if (!ustats.ok()) {
        std::fprintf(stderr, "update failed: %s\n",
                     ustats.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "update: %zu facts, %zu prepared visited, delta_rebinds=%zu "
          "full_rebinds=%zu untouched=%zu\n",
          ustats->facts, ustats->prepared_visited, ustats->delta_rebinds,
          ustats->full_rebinds, ustats->untouched);
      // Second round over the updated database: the requests point at the
      // same pdb object, so they see the new labels and land on the binds
      // ApplyUpdate refreshed.
      ServeRound();
    }
    const serve::PreparedCache::Stats cs = service.cache().stats();
    std::printf("cache: hits=%llu misses=%llu evictions=%llu\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.evictions));
    if (cli.print_stats) {
      std::printf("%s\n", service.StatsSnapshot().ToJson().c_str());
    }
    if (cli.dump_metrics) DumpMetrics();
    return failures == 0 ? 0 : 1;
  }

  // Single-query mode. Parse whichever query form was given and build the
  // one request everything below serves.
  std::optional<ConjunctiveQuery> cq;
  std::optional<rpq::RpqQuery> rq;
  if (!cli.rpq_text.empty()) {
    auto q = rpq::RpqQuery::Parse(cli.rpq_text);
    if (!q.ok()) {
      std::fprintf(stderr, "error parsing rpq: %s\n",
                   q.status().ToString().c_str());
      return 1;
    }
    rq = q.MoveValue();
    std::printf("rpq:      %s\n", rq->Canonical().c_str());
  } else {
    auto q = ParseQuery(schema, cli.query_text);
    if (!q.ok()) {
      std::fprintf(stderr, "error parsing query: %s\n",
                   q.status().ToString().c_str());
      return 1;
    }
    cq = q.MoveValue();
    std::printf("query:    %s\n", cq->ToString(schema).c_str());
  }
  PqeEngine engine(*opts_or);
  std::printf("database: %zu facts (|H| = %zu bits)\n", pdb.NumFacts(),
              pdb.SizeInBits());

  if (cli.uniform_reliability) {
    const EvalResponse ur = engine.EvaluateRequest(
        EvalRequest::ForUniformReliability(*cq, pdb.database()));
    if (!ur.status.ok()) {
      std::fprintf(stderr, "error: %s\n", ur.status.ToString().c_str());
      return 1;
    }
    std::printf("UR(Q, D) ~ %.6g of 2^%zu subinstances\n",
                ur.answer.probability, pdb.NumFacts());
    return 0;
  }
  EvalRequest request = rq.has_value() ? EvalRequest::ForRpq(*rq, pdb)
                                       : EvalRequest::ForQuery(*cq, pdb);
  request.deadline_ms = cli.deadline_ms;
  const EvalResponse response = engine.EvaluateRequest(request);
  if (!response.status.ok()) {
    if (response.deadline_exceeded) {
      std::fprintf(stderr,
                   "DEADLINE_EXCEEDED after %.1fms (progress=%llu): %s\n",
                   response.elapsed_ms,
                   static_cast<unsigned long long>(response.progress),
                   response.status.ToString().c_str());
    } else {
      std::fprintf(stderr, "error: %s\n", response.status.ToString().c_str());
    }
    return 1;
  }
  const PqeAnswer& answer = response.answer;
  std::printf("Pr(Q) %s %.6f   [%s]\n", answer.is_exact ? "=" : "~",
              answer.probability, PqeMethodToString(answer.method_used));
  const std::string diagnostics = RenderDiagnostics(answer);
  if (!diagnostics.empty()) {
    std::printf("  %s\n", diagnostics.c_str());
  }
  if (answer.trace != nullptr) {
    if (cli.trace_json) {
      std::printf("%s\n", obs::TraceToJson(*answer.trace).c_str());
    } else if (cli.trace_text) {
      std::printf("\ntrace:\n%s", obs::RenderTraceText(*answer.trace).c_str());
    }
  }
  if (cli.dump_metrics) DumpMetrics();

  if (cli.sample_worlds > 0) {
    EstimatorConfig cfg;
    cfg.epsilon = cli.epsilon;
    cfg.seed = cli.seed;
    cfg.num_threads = cli.num_threads;
    cfg.kernel_mode = *kernel_mode_or;
    UrConstructionOptions uropts;
    uropts.max_width = cli.max_width;
    auto worlds =
        SampleConditionedWorlds(*cq, pdb, cfg, cli.sample_worlds, uropts);
    if (!worlds.ok()) {
      std::fprintf(stderr, "sampling error: %s\n",
                   worlds.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%zu sampled worlds conditioned on Q (facts present):\n",
                worlds->worlds.size());
    for (const auto& world : worlds->worlds) {
      std::printf("  {");
      bool first = true;
      for (size_t f = 0; f < world.size(); ++f) {
        if (!world[f]) continue;
        std::printf("%s%s", first ? "" : ", ",
                    worlds->projected_db.FactToString(
                        static_cast<FactId>(f)).c_str());
        first = false;
      }
      std::printf("}\n");
    }
  }
  return 0;
}
