// bench_compare — the perf-regression gate. Diffs a fresh bench metrics
// JSON (as written by --metrics_out) against a committed BENCH_*.json
// baseline and fails when any shared speedup gauge regressed by more than
// the threshold.
//
//   bench_compare --baseline BENCH_serving.json --fresh /tmp/fresh.json
//                 [--threshold 0.25] [--advisory] [--update-baselines]
//
// Only gauges whose name contains "speedup" are gated: they are
// ratio-of-medians within one run of one binary, so they are stable across
// machines in a way raw millisecond gauges are not. A speedup gauge present
// in the baseline but absent from the fresh run is reported as MISSING and
// fails the gate — a renamed or dropped gauge must be acknowledged by
// regenerating the baseline, not silently shrink the gated set. Comparing
// two files with no baseline speedup gauge at all is an error (a silent
// empty intersection would pass forever). --advisory prints the comparison
// but always exits 0
// (used by the sanitizer CI stages, where timings are meaningless).
// --update-baselines copies the fresh metrics file over the baseline path
// after printing the comparison — regenerating a committed BENCH_*.json
// after an intentional perf change is one command instead of hand-editing —
// and exits 0 (an update acknowledges the change instead of gating on it).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

struct GaugeReading {
  std::string name;
  double value = 0.0;
};

// Pulls {"metrics":{"gauges":{...}}} out of a metrics-export document.
pqe::Result<std::vector<GaugeReading>> LoadGauges(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return pqe::Status::InvalidArgument("cannot open " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  PQE_ASSIGN_OR_RETURN(pqe::obs::JsonValue doc,
                       pqe::obs::ParseJson(buffer.str()));
  const pqe::obs::JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr) {
    return pqe::Status::InvalidArgument(path + ": no \"metrics\" object");
  }
  const pqe::obs::JsonValue* gauges = metrics->Find("gauges");
  if (gauges == nullptr || !gauges->is_object()) {
    return pqe::Status::InvalidArgument(path + ": no \"gauges\" object");
  }
  std::vector<GaugeReading> out;
  for (const auto& [name, value] : gauges->Members()) {
    if (!value.is_number()) continue;
    out.push_back({name, value.AsNumber()});
  }
  return out;
}

const GaugeReading* Find(const std::vector<GaugeReading>& gauges,
                         const std::string& name) {
  for (const GaugeReading& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

void Usage() {
  std::fprintf(stderr,
               "usage: bench_compare --baseline FILE --fresh FILE\n"
               "                     [--threshold R] [--advisory]\n"
               "                     [--update-baselines]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  double threshold = 0.25;
  bool advisory = false;
  bool update_baselines = false;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline_path = need_value("--baseline");
    } else if (std::strcmp(argv[i], "--fresh") == 0) {
      fresh_path = need_value("--fresh");
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      threshold = std::atof(need_value("--threshold"));
    } else if (std::strcmp(argv[i], "--advisory") == 0) {
      advisory = true;
    } else if (std::strcmp(argv[i], "--update-baselines") == 0) {
      update_baselines = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      Usage();
      return 2;
    }
  }
  if (baseline_path.empty() || fresh_path.empty()) {
    Usage();
    return 2;
  }

  auto baseline = LoadGauges(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 2;
  }
  auto fresh = LoadGauges(fresh_path);
  if (!fresh.ok()) {
    std::fprintf(stderr, "%s\n", fresh.status().ToString().c_str());
    return 2;
  }

  size_t compared = 0;
  size_t regressed = 0;
  size_t missing = 0;
  for (const GaugeReading& base : *baseline) {
    if (base.name.find("speedup") == std::string::npos) continue;
    const GaugeReading* now = Find(*fresh, base.name);
    if (now == nullptr) {
      ++missing;
      std::printf("MISSING %s: baseline %.2f, absent from fresh run\n",
                  base.name.c_str(), base.value);
      continue;
    }
    ++compared;
    const double floor = base.value * (1.0 - threshold);
    const bool bad = base.value > 0.0 && now->value < floor;
    std::printf("%s %s: baseline %.2f, fresh %.2f (floor %.2f)\n",
                bad ? "REGRESSED" : "ok", base.name.c_str(), base.value,
                now->value, floor);
    if (bad) ++regressed;
  }

  if (compared == 0 && missing == 0) {
    std::fprintf(stderr,
                 "bench_compare: no speedup gauges in baseline %s "
                 "— wrong baseline file?\n",
                 baseline_path.c_str());
    return 2;
  }
  std::printf("bench_compare: %zu gauges compared, %zu regressed, "
              "%zu missing from fresh (threshold %.0f%%)%s\n",
              compared, regressed, missing, threshold * 100.0,
              advisory ? " [advisory]" : "");
  if (update_baselines) {
    std::ifstream src(fresh_path, std::ios::binary);
    std::ofstream dst(baseline_path, std::ios::binary | std::ios::trunc);
    if (!src.is_open() || !dst.is_open()) {
      std::fprintf(stderr, "bench_compare: cannot copy %s -> %s\n",
                   fresh_path.c_str(), baseline_path.c_str());
      return 2;
    }
    dst << src.rdbuf();
    if (!dst.good()) {
      std::fprintf(stderr, "bench_compare: write to %s failed\n",
                   baseline_path.c_str());
      return 2;
    }
    std::printf("bench_compare: baseline %s updated from %s\n",
                baseline_path.c_str(), fresh_path.c_str());
    return 0;
  }
  if (advisory) return 0;
  return regressed == 0 && missing == 0 ? 0 : 1;
}
