#ifndef PQE_SAFEPLAN_SAFE_PLAN_H_
#define PQE_SAFEPLAN_SAFE_PLAN_H_

#include "cq/query.h"
#include "pdb/probabilistic_database.h"
#include "util/result.h"

namespace pqe {

/// True iff the extensional (safe-plan) evaluator applies: the query is
/// self-join-free and hierarchical — exactly the Dalvi–Suciu "safe" SJF
/// queries (the FP rows of the paper's Table 1).
bool IsSafeQuery(const ConjunctiveQuery& query);

/// Exact Pr_H(Q) for a safe (self-join-free, hierarchical) query via the
/// Dalvi–Suciu extensional plan: independent joins across connected
/// components and ground atoms, independent projects over root variables.
/// Polynomial in |Q| and |H|. Fails with NotSupported on unsafe queries
/// (a connected multi-atom component without a root variable).
///
/// Arithmetic is IEEE double; results are exact up to floating-point
/// rounding (the plan performs only +, ×, and 1−x on probabilities).
Result<double> SafePlanProbability(const ConjunctiveQuery& query,
                                   const ProbabilisticDatabase& pdb);

}  // namespace pqe

#endif  // PQE_SAFEPLAN_SAFE_PLAN_H_
