#include "safeplan/safe_plan.h"

#include <algorithm>
#include <set>
#include <vector>

#include "obs/trace.h"
#include "util/check.h"

namespace pqe {

namespace {

constexpr int64_t kFree = -1;

// Facts of `atom`'s relation consistent with the partial assignment σ.
std::vector<FactId> MatchingFacts(const ProbabilisticDatabase& pdb,
                                  const ConjunctiveQuery& query,
                                  uint32_t atom,
                                  const std::vector<int64_t>& sigma) {
  std::vector<FactId> out;
  const Atom& a = query.atom(atom);
  for (FactId fid : pdb.database().FactsOf(a.relation)) {
    const Fact& f = pdb.database().fact(fid);
    bool ok = true;
    // Consistency with σ and with repeated variables inside the atom.
    std::vector<int64_t> local = sigma;
    for (size_t i = 0; i < a.vars.size() && ok; ++i) {
      const int64_t val = static_cast<int64_t>(f.args[i]);
      if (local[a.vars[i]] == kFree) {
        local[a.vars[i]] = val;
      } else if (local[a.vars[i]] != val) {
        ok = false;
      }
    }
    if (ok) out.push_back(fid);
  }
  return out;
}

class SafePlanEvaluator {
 public:
  SafePlanEvaluator(const ConjunctiveQuery& query,
                    const ProbabilisticDatabase& pdb)
      : query_(query), pdb_(pdb) {}

  Result<double> Evaluate() {
    std::vector<uint32_t> atoms(query_.NumAtoms());
    for (uint32_t a = 0; a < atoms.size(); ++a) atoms[a] = a;
    std::vector<int64_t> sigma(query_.NumVars(), kFree);
    return EvalConjunction(atoms, sigma);
  }

 private:
  // P(∧ atoms | σ): independent across ground atoms and connected
  // components (distinct relations by self-join-freeness).
  Result<double> EvalConjunction(const std::vector<uint32_t>& atoms,
                                 const std::vector<int64_t>& sigma) {
    double p = 1.0;
    std::vector<uint32_t> open;
    for (uint32_t a : atoms) {
      if (IsGround(a, sigma)) {
        p *= GroundProbability(a, sigma);
        if (p == 0.0) return 0.0;
      } else {
        open.push_back(a);
      }
    }
    // Connected components via shared free variables.
    std::vector<bool> used(open.size(), false);
    for (size_t i = 0; i < open.size(); ++i) {
      if (used[i]) continue;
      std::vector<uint32_t> comp;
      std::vector<size_t> stack = {i};
      used[i] = true;
      while (!stack.empty()) {
        size_t cur = stack.back();
        stack.pop_back();
        comp.push_back(open[cur]);
        for (size_t j = 0; j < open.size(); ++j) {
          if (used[j]) continue;
          if (ShareFreeVar(open[cur], open[j], sigma)) {
            used[j] = true;
            stack.push_back(j);
          }
        }
      }
      PQE_ASSIGN_OR_RETURN(double cp, EvalComponent(comp, sigma));
      p *= cp;
      if (p == 0.0) return 0.0;
    }
    return p;
  }

  // P(component | σ): single atom → independent-or over matching facts;
  // otherwise independent-project over a root variable.
  Result<double> EvalComponent(const std::vector<uint32_t>& comp,
                               const std::vector<int64_t>& sigma) {
    if (comp.size() == 1 && CountFreeVars(comp[0], sigma) >= 1) {
      // ∃ free vars: the event is an OR over independent matching facts
      // (distinct facts of one relation are independent tuples).
      double none = 1.0;
      for (FactId fid : MatchingFacts(pdb_, query_, comp[0], sigma)) {
        none *= 1.0 - pdb_.probability(fid).ToDouble();
      }
      return 1.0 - none;
    }
    // Root variable: free and occurring in every atom of the component.
    int64_t root = -1;
    for (VarId v = 0; v < query_.NumVars(); ++v) {
      if (sigma[v] != kFree) continue;
      bool in_all = true;
      for (uint32_t a : comp) {
        const auto& vars = query_.atom(a).vars;
        if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
          in_all = false;
          break;
        }
      }
      if (in_all) {
        root = static_cast<int64_t>(v);
        break;
      }
    }
    if (root < 0) {
      return Status::NotSupported(
          "query is unsafe: connected component without a root variable "
          "(non-hierarchical)");
    }
    // Independent project: values of the root variable partition the
    // relevant facts into independent groups.
    std::set<int64_t> domain;
    for (uint32_t a : comp) {
      const auto& vars = query_.atom(a).vars;
      for (FactId fid : MatchingFacts(pdb_, query_, a, sigma)) {
        const Fact& f = pdb_.database().fact(fid);
        for (size_t i = 0; i < vars.size(); ++i) {
          if (vars[i] == static_cast<VarId>(root)) {
            domain.insert(static_cast<int64_t>(f.args[i]));
          }
        }
      }
    }
    double none = 1.0;
    for (int64_t value : domain) {
      std::vector<int64_t> extended = sigma;
      extended[root] = value;
      PQE_ASSIGN_OR_RETURN(double pc, EvalConjunction(comp, extended));
      none *= 1.0 - pc;
    }
    return 1.0 - none;
  }

  bool IsGround(uint32_t atom, const std::vector<int64_t>& sigma) const {
    for (VarId v : query_.atom(atom).vars) {
      if (sigma[v] == kFree) return false;
    }
    return true;
  }

  size_t CountFreeVars(uint32_t atom,
                       const std::vector<int64_t>& sigma) const {
    std::set<VarId> free;
    for (VarId v : query_.atom(atom).vars) {
      if (sigma[v] == kFree) free.insert(v);
    }
    return free.size();
  }

  double GroundProbability(uint32_t atom,
                           const std::vector<int64_t>& sigma) const {
    const Atom& a = query_.atom(atom);
    Fact f;
    f.relation = a.relation;
    for (VarId v : a.vars) {
      f.args.push_back(static_cast<ValueId>(sigma[v]));
    }
    const int64_t fid = pdb_.database().FindFact(f);
    if (fid < 0) return 0.0;
    return pdb_.probability(static_cast<FactId>(fid)).ToDouble();
  }

  bool ShareFreeVar(uint32_t a, uint32_t b,
                    const std::vector<int64_t>& sigma) const {
    for (VarId va : query_.atom(a).vars) {
      if (sigma[va] != kFree) continue;
      const auto& vars = query_.atom(b).vars;
      if (std::find(vars.begin(), vars.end(), va) != vars.end()) return true;
    }
    return false;
  }

  const ConjunctiveQuery& query_;
  const ProbabilisticDatabase& pdb_;
};

}  // namespace

bool IsSafeQuery(const ConjunctiveQuery& query) {
  return query.IsSelfJoinFree() && query.IsHierarchical();
}

Result<double> SafePlanProbability(const ConjunctiveQuery& query,
                                   const ProbabilisticDatabase& pdb) {
  if (!query.IsSelfJoinFree()) {
    return Status::NotSupported(
        "safe-plan evaluation requires a self-join-free query");
  }
  for (const Atom& a : query.atoms()) {
    if (a.relation >= pdb.schema().NumRelations() ||
        a.vars.size() != pdb.schema().Arity(a.relation)) {
      return Status::InvalidArgument("query/schema mismatch");
    }
  }
  PQE_TRACE_SPAN_VAR(span, "safeplan.evaluate");
  span.AttrUint("atoms", query.NumAtoms());
  span.AttrUint("facts", pdb.NumFacts());
  SafePlanEvaluator evaluator(query, pdb);
  return evaluator.Evaluate();
}

}  // namespace pqe
