#include "counting/exact.h"

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "util/check.h"

namespace pqe {

Result<BigUint> ExactCountNfaStrings(const Nfa& nfa, size_t n,
                                     size_t max_subsets) {
  using StateSet = std::vector<bool>;
  // memo[l] : subset -> number of accepted completions of length l.
  std::vector<std::map<StateSet, BigUint>> memo(n + 1);
  size_t subsets = 0;

  // Transition table grouped by symbol for the subset step.
  std::vector<std::vector<const Nfa::Transition*>> by_symbol(
      nfa.AlphabetSize());
  for (const Nfa::Transition& t : nfa.transitions()) {
    by_symbol[t.symbol].push_back(&t);
  }

  std::function<Result<BigUint>(const StateSet&, size_t)> count =
      [&](const StateSet& states, size_t remaining) -> Result<BigUint> {
    auto it = memo[remaining].find(states);
    if (it != memo[remaining].end()) return it->second;
    if (++subsets > max_subsets) {
      return Status::ResourceExhausted(
          "exact NFA counting exceeded subset budget");
    }
    BigUint total;
    if (remaining == 0) {
      bool accepted = false;
      for (StateId q = 0; q < nfa.NumStates(); ++q) {
        if (states[q] && nfa.IsAccepting(q)) accepted = true;
      }
      total = accepted ? BigUint(1) : BigUint();
    } else {
      for (SymbolId a = 0; a < nfa.AlphabetSize(); ++a) {
        StateSet next(nfa.NumStates(), false);
        bool any = false;
        for (const Nfa::Transition* t : by_symbol[a]) {
          if (states[t->from]) {
            next[t->to] = true;
            any = true;
          }
        }
        if (!any) continue;
        PQE_ASSIGN_OR_RETURN(BigUint sub, count(next, remaining - 1));
        total = total.Add(sub);
      }
    }
    memo[remaining].emplace(states, total);
    return total;
  };

  StateSet initial(nfa.NumStates(), false);
  for (StateId q : nfa.initial_states()) initial[q] = true;
  return count(initial, n);
}

Result<BigUint> ExactCountNftaTrees(const Nfta& nfta, size_t n,
                                    size_t max_entries) {
  if (nfta.HasLambdaTransitions()) {
    return Status::InvalidArgument(
        "ExactCountNftaTrees requires a λ-free NFTA");
  }
  using StateSet = std::vector<bool>;
  // trees[s] : exact run-state-set -> number of distinct trees of size s.
  std::vector<std::map<StateSet, BigUint>> trees(n + 1);
  size_t entries = 0;

  // Group transitions by (symbol, arity).
  std::map<std::pair<SymbolId, size_t>, std::vector<uint32_t>> groups;
  for (uint32_t tau = 0; tau < nfta.NumTransitions(); ++tau) {
    const Nfta::Transition& t = nfta.transition(tau);
    groups[{t.symbol, t.children.size()}].push_back(tau);
  }

  for (size_t s = 1; s <= n; ++s) {
    for (const auto& [key, taus] : groups) {
      const size_t arity = key.second;
      if (s < 1 + arity) continue;  // each child subtree needs >= 1 node
      // Forest DP: alive[j] : (alive transition subset of `taus`, used size)
      // -> forest count. Alive = transitions whose first j child states
      // accept the respective child subtrees.
      using AliveKey = std::pair<std::vector<bool>, size_t>;
      std::map<AliveKey, BigUint> alive;
      alive[{std::vector<bool>(taus.size(), true), 0}] = BigUint(1);
      for (size_t j = 0; j < arity; ++j) {
        std::map<AliveKey, BigUint> next;
        for (const auto& [akey, cnt] : alive) {
          const auto& [mask, used] = akey;
          // Child j+1 can take any size s_c with enough room for the rest.
          const size_t remaining_children = arity - j - 1;
          for (size_t sc = 1; used + sc + remaining_children <= s - 1; ++sc) {
            for (const auto& [child_set, child_cnt] : trees[sc]) {
              std::vector<bool> new_mask(taus.size(), false);
              bool any = false;
              for (size_t ti = 0; ti < taus.size(); ++ti) {
                if (!mask[ti]) continue;
                const Nfta::Transition& t = nfta.transition(taus[ti]);
                if (child_set[t.children[j]]) {
                  new_mask[ti] = true;
                  any = true;
                }
              }
              if (!any) continue;
              AliveKey nk{std::move(new_mask), used + sc};
              auto [it, inserted] = next.emplace(nk, BigUint());
              it->second = it->second.Add(cnt.Mul(child_cnt));
              if (inserted && ++entries > max_entries) {
                return Status::ResourceExhausted(
                    "exact NFTA counting exceeded entry budget");
              }
            }
          }
        }
        alive = std::move(next);
      }
      // Fold finished forests into tree counts.
      for (const auto& [akey, cnt] : alive) {
        const auto& [mask, used] = akey;
        if (used != s - 1) continue;
        StateSet run_set(nfta.NumStates(), false);
        for (size_t ti = 0; ti < taus.size(); ++ti) {
          if (mask[ti]) run_set[nfta.transition(taus[ti]).from] = true;
        }
        auto [it, inserted] = trees[s].emplace(run_set, BigUint());
        it->second = it->second.Add(cnt);
        if (inserted && ++entries > max_entries) {
          return Status::ResourceExhausted(
              "exact NFTA counting exceeded entry budget");
        }
      }
    }
  }

  BigUint total;
  for (const auto& [run_set, cnt] : trees[n]) {
    if (run_set[nfta.initial_state()]) total = total.Add(cnt);
  }
  return total;
}

}  // namespace pqe
