#include "counting/config.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pqe {

size_t EstimatorConfig::ResolvePoolSize(size_t n) const {
  if (pool_size > 0) return pool_size;
  const double eps = std::min(std::max(epsilon, 1e-3), 1.0);
  double m = 8.0 * static_cast<double>(std::max<size_t>(n, 1)) / (eps * eps);
  size_t resolved = static_cast<size_t>(std::ceil(m));
  resolved = std::max(resolved, min_pool_size);
  if (max_pool_size > 0) resolved = std::min(resolved, max_pool_size);
  return resolved;
}

std::string CountStats::ToString() const {
  std::ostringstream out;
  out << "strata=" << strata_live << "/" << strata_total
      << " pool_entries=" << pool_entries << " attempts=" << attempts
      << " accepted=" << accepted << " forced=" << forced_samples
      << " membership_checks=" << membership_checks;
  return out.str();
}

}  // namespace pqe
