#include "counting/config.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pqe {

const char* KernelModeToString(KernelMode mode) {
  switch (mode) {
    case KernelMode::kExact:
      return "exact";
    case KernelMode::kFast:
      return "fast";
  }
  return "unknown";
}

Result<KernelMode> KernelModeFromString(std::string_view name) {
  if (name == "exact") return KernelMode::kExact;
  if (name == "fast") return KernelMode::kFast;
  return Status::InvalidArgument("unknown kernel mode: '" + std::string(name) +
                                 "' (expected exact|fast)");
}

void RecordCountRun(const char* prefix, const CountStats& stats,
                    bool hotpath_cached, KernelMode kernel_mode,
                    obs::ScopedSpan* span) {
  stats.ForEachField([&](const char* name, uint64_t value) {
    span->AttrUint(name, value);
  });
  span->AttrUint("canonical_rejections", stats.attempts - stats.accepted);
  span->AttrText("hotpath", hotpath_cached ? "cached" : "legacy");
  span->AttrText("kernels", KernelModeToString(kernel_mode));
  auto& metrics = obs::MetricRegistry::Global();
  metrics.GetCounter(std::string(prefix) + ".runs").Increment();
  stats.ForEachField([&](const char* name, uint64_t value) {
    metrics.GetCounter(std::string(prefix) + "." + name).Add(value);
  });
  metrics.GetHistogram(std::string(prefix) + ".strata_live")
      .Observe(stats.strata_live);
  // Cross-counter hot-path counters (shared namespace so dashboards see one
  // series regardless of which counter — NFA, NFTA, Karp–Luby — ran).
  metrics.GetCounter("counting.picker_builds").Add(stats.picker_builds);
  metrics.GetCounter("counting.alias_builds").Add(stats.alias_builds);
  metrics.GetCounter("counting.batch_draws").Add(stats.batch_draws);
  metrics.GetCounter("counting.runstates_memo_hits")
      .Add(stats.runstates_memo_hits);
  metrics.GetCounter("counting.runstates_memo_misses")
      .Add(stats.runstates_memo_misses);
}

size_t EstimatorConfig::ResolvePoolSize(size_t n) const {
  if (pool_size > 0) return pool_size;
  const double eps = std::min(std::max(epsilon, 1e-3), 1.0);
  double m = 8.0 * static_cast<double>(std::max<size_t>(n, 1)) / (eps * eps);
  size_t resolved = static_cast<size_t>(std::ceil(m));
  resolved = std::max(resolved, min_pool_size);
  if (max_pool_size > 0) resolved = std::min(resolved, max_pool_size);
  return resolved;
}

std::string CountStats::ToString() const {
  std::ostringstream out;
  bool first = true;
  ForEachField([&](const char* name, uint64_t value) {
    if (!first) out << ' ';
    out << name << '=' << value;
    first = false;
  });
  return out.str();
}

}  // namespace pqe
