#ifndef PQE_COUNTING_CONFIG_H_
#define PQE_COUNTING_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/cancel.h"
#include "util/extfloat.h"
#include "util/result.h"

namespace pqe {

/// Sampling-kernel selection for the counting core and the lineage
/// estimators (EstimatorConfig / KarpLubyConfig / MonteCarloConfig
/// `kernel_mode`). The two-tier determinism contract
/// (docs/performance.md "Kernel modes"):
enum class KernelMode : uint8_t {
  /// Scalar draws: rejection-sampled bounded picks, cumulative-table
  /// pickers, one RNG word at a time. Bit-identical across thread counts
  /// and versions — the golden path every capture/replay oracle runs on.
  kExact = 0,
  /// Batched SoA kernels: O(1) alias-table picks, block-generated RNG,
  /// multiply-shift bounded draws over contiguous reusable arenas.
  /// Statistically equivalent to kExact (χ²- and exact-oracle-gated in
  /// fast_kernels_test) and fixed-seed reproducible within a build, but
  /// not bit-identical to kExact or across versions.
  kFast = 1,
};

const char* KernelModeToString(KernelMode mode);
Result<KernelMode> KernelModeFromString(std::string_view name);

/// Tuning knobs for the CountNFA / CountNFTA estimators.
///
/// The implementations follow the Arenas–Croquevielle–Jayaram–Riveros
/// framework: per-stratum cardinality estimates plus uniform sample pools,
/// combined with Karp–Luby union estimation (canonical-witness rejection).
/// The theoretical polynomial sample bounds of the original papers are far
/// too large to run (as the paper's Section 6 concedes); `pool_size` (or the
/// auto-sizing rule) trades accuracy for time the way any practical FPRAS
/// implementation must. The estimator's guarantee degrades gracefully: more
/// samples → tighter (1±ε).
struct EstimatorConfig {
  /// Target relative error ε ∈ (0, 1).
  double epsilon = 0.2;
  /// Informational confidence level (1 − δ); used by the auto-sizing rule.
  double confidence = 0.9;
  /// RNG seed; all randomness derives from it (runs are reproducible).
  uint64_t seed = 0x5eed;
  /// Per-stratum sample pool size. 0 = auto: ~8·n/ε², clamped to
  /// [min_pool_size, max_pool_size].
  size_t pool_size = 0;
  size_t min_pool_size = 48;
  /// Practical cap on the auto-sized pool (0 = uncapped "theory mode").
  size_t max_pool_size = 768;
  /// Rejection-sampling attempt budget: attempts <= attempt_factor * pool
  /// target (+ a small constant).
  size_t attempt_factor = 24;
  /// Median-of-R amplification: the counter runs `repetitions` independent
  /// estimates (seeds derived from `seed`) and returns the median — the
  /// standard FPRAS confidence boost. 1 = single run.
  size_t repetitions = 1;
  /// Worker threads for the parallel layers (the median-of-R repetitions
  /// run on separate workers). 0 = auto: $PQE_THREADS when set, else 1
  /// (serial). Estimates and stats are bit-identical for every value —
  /// seeds derive from (seed, repetition), merges are order-fixed (see
  /// docs/parallelism.md).
  size_t num_threads = 0;
  /// Ablation switch: disable the backward-usefulness pruning of strata
  /// (forward feasibility is load-bearing and always on). With pruning off,
  /// every (state, size) stratum with a non-empty language is processed,
  /// even those that cannot occur inside an accepted object of size n.
  bool disable_backward_pruning = false;
  /// Ablation switch: fall back to the pre-optimization hot path — per-draw
  /// PickWeightedIndex (no reusable pickers) and materialize-then-simulate
  /// membership checks (no run-state memo). Draw-for-draw identical to the
  /// cached path by construction (docs/performance.md), so estimates match
  /// bit for bit; bench_counting_hotpath uses it as the in-binary baseline.
  bool disable_hotpath_caches = false;
  /// Sampling-kernel tier (see KernelMode). kFast implies the cached hot
  /// path; it is independent of `disable_hotpath_caches`, which only
  /// ablates the kExact tier.
  KernelMode kernel_mode = KernelMode::kExact;
  /// Cooperative cancellation (optional, not owned; must outlive the run).
  /// The counters poll the token once per processed stratum and every few
  /// hundred rejection attempts; when it expires they abort with
  /// StatusCode::kDeadlineExceeded instead of completing the sweep, and
  /// record per-stratum progress on the token (see util/cancel.h). nullptr
  /// (the default) never cancels. The token is polled by every median-of-R
  /// repetition, so a run aborts promptly at any thread count.
  const CancelToken* cancel = nullptr;

  /// Resolves the pool size for a run of target size n.
  size_t ResolvePoolSize(size_t n) const;
};

/// The single source of truth for CountStats' fields. Every serializer
/// (ToString, obs::StatsToJson, trace attributes) iterates this list via
/// ForEachField, so a field added here is exported everywhere at once — and
/// the static_assert below makes it impossible to add a field to the struct
/// without adding it here.
#define PQE_COUNT_STATS_FIELDS(X) \
  X(strata_total)                 \
  X(strata_live)                  \
  X(pool_entries)                 \
  X(attempts)                     \
  X(accepted)                     \
  X(forced_samples)               \
  X(membership_checks)            \
  X(picker_builds)                \
  X(alias_builds)                 \
  X(batch_draws)                  \
  X(runstates_memo_hits)          \
  X(runstates_memo_misses)

/// Run statistics reported by the counters (for benchmarks and diagnostics).
struct CountStats {
  size_t strata_total = 0;      // all (state, size) strata
  size_t strata_live = 0;       // strata surviving feasibility pruning
  size_t pool_entries = 0;      // samples stored across all pools
  size_t attempts = 0;          // rejection-sampling attempts
  size_t accepted = 0;          // accepted (canonical) samples
  size_t forced_samples = 0;    // zero-accept fallbacks (should be rare)
  size_t membership_checks = 0; // exact membership oracle invocations
  size_t picker_builds = 0;     // WeightedPicker cumulative-table builds
  size_t alias_builds = 0;      // AliasPicker table builds (fast kernels)
  size_t batch_draws = 0;       // block-RNG batches drawn (fast kernels)
  size_t runstates_memo_hits = 0;    // membership answered from the memo
  size_t runstates_memo_misses = 0;  // membership computed and memoized

  /// Visits (name, value) for every field, in declaration order.
  template <typename Fn>
  void ForEachField(Fn&& fn) const {
#define PQE_COUNT_STATS_VISIT(field) fn(#field, uint64_t{field});
    PQE_COUNT_STATS_FIELDS(PQE_COUNT_STATS_VISIT)
#undef PQE_COUNT_STATS_VISIT
  }

  /// "field=value" pairs for every field (via ForEachField).
  std::string ToString() const;
};

namespace internal {
#define PQE_COUNT_STATS_PLUS_ONE(field) +1
inline constexpr size_t kCountStatsFieldCount =
    0 PQE_COUNT_STATS_FIELDS(PQE_COUNT_STATS_PLUS_ONE);
#undef PQE_COUNT_STATS_PLUS_ONE
}  // namespace internal

// Serialization-completeness guard: adding a size_t field to CountStats
// without listing it in PQE_COUNT_STATS_FIELDS fails this assert, so a field
// can never be silently dropped from ToString()/JSON export.
static_assert(sizeof(CountStats) ==
                  internal::kCountStatsFieldCount * sizeof(size_t),
              "CountStats field added without updating "
              "PQE_COUNT_STATS_FIELDS (ToString/JSON export would drop it)");

/// An approximate count with its run statistics.
struct CountEstimate {
  ExtFloat value;
  CountStats stats;
};

namespace obs {
class ScopedSpan;
}  // namespace obs

/// Observability hook shared by CountNFA/CountNFTA: attaches every
/// CountStats field (plus the derived canonical_rejections, the
/// `hotpath` = "cached"/"legacy" mode marker and the `kernels` =
/// "exact"/"fast" tier) to `span` and folds the run into the global metric
/// registry under `prefix` (e.g. "pqe.count_nfta"), plus the cross-counter
/// `counting.picker_builds` / `counting.alias_builds` /
/// `counting.batch_draws` / `counting.runstates_memo_{hits,misses}`
/// hot-path counters. One call per counter run, not per sample.
void RecordCountRun(const char* prefix, const CountStats& stats,
                    bool hotpath_cached, KernelMode kernel_mode,
                    obs::ScopedSpan* span);

}  // namespace pqe

#endif  // PQE_COUNTING_CONFIG_H_
