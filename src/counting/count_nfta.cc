#include "counting/count_nfta.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "automata/tree.h"
#include "counting/weighted_pick.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pqe {

namespace {

// Derivation reference for a pooled tree sample of A(q, s): the transition
// taken at the root and the forest sample index in F(τ, arity, s−1).
struct TreeSample {
  uint32_t transition = 0;
  uint32_t forest = 0;
};

// Derivation reference for a pooled forest sample of F(τ, j, s): the prefix
// forest sample in F(τ, j−1, s − split) and the tree sample in
// A(child_j(τ), split).
struct ForestSample {
  uint32_t prefix = 0;
  uint32_t tree = 0;
  uint32_t split = 0;  // size of the j-th child tree
};

class NftaCounter {
 public:
  NftaCounter(const Nfta& nfta, size_t n, const EstimatorConfig& config)
      : nfta_(nfta),
        n_(n),
        config_(config),
        rng_(config.seed),
        cached_(!config.disable_hotpath_caches),
        cancel_(config.cancel) {}

  Result<CountEstimate> Run() {
    if (nfta_.HasLambdaTransitions()) {
      return Status::InvalidArgument(
          "CountNftaTrees requires a λ-free NFTA (run EliminateLambda)");
    }
    if (n_ == 0) return CountEstimate{ExtFloat(), stats_};
    if (Cancelled()) return DeadlineError(0);
    pool_target_ = config_.ResolvePoolSize(n_);

    ComputeForwardFeasibility();
    ComputeBackwardUsefulness();

    // Strata accounting, folded into the processing sweep below (the sweep
    // already visits every stratum to test liveness; a dedicated counting
    // pass would re-walk O(|Q|·n + |Δ|·a·n) entries). strata_total is a
    // closed form: A-strata are |Q|·n (sizes 1..n), F-strata arity·(n+1)
    // per transition (sizes 0..n). The sweep skips forest size 0, which is
    // never live (a child tree has size >= 1), so the live count matches.
    stats_.strata_total = nfta_.NumStates() * n_;
    for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
      stats_.strata_total += nfta_.transition(tau).children.size() * (n_ + 1);
    }

    AllocateTables();
    for (size_t s = 1; s <= n_; ++s) {
      // One cancellation poll per size stratum, plus finer-grained polls in
      // the rejection loops (a single stratum's attempt budget can be large).
      if (Cancelled()) return DeadlineError(s);
      for (StateId q = 0; q < nfta_.NumStates(); ++q) {
        if (LiveA(q, s)) {
          ++stats_.strata_live;
          ProcessTreeStratum(q, s);
        }
      }
      for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
        const size_t arity = nfta_.transition(tau).children.size();
        for (size_t j = 1; j <= arity; ++j) {
          if (LiveF(tau, j, s)) {
            ++stats_.strata_live;
            ProcessForestStratum(tau, j, s);
          }
        }
      }
      if (cancel_ != nullptr) cancel_->AddProgress(1);
    }
    // A rejection loop may have bailed out mid-stratum on an expired token;
    // the partial tables must not be read as an estimate.
    if (Cancelled()) return DeadlineError(n_);
    CountEstimate out;
    out.value = EstA(nfta_.initial_state(), n_);
    out.stats = stats_;
    return out;
  }

  // Materializes `count` (near-uniform) accepted trees of size n_ from the
  // root stratum's sample pool. Must be called after Run(); returns fewer
  // trees (possibly none) when the language is empty.
  std::vector<LabeledTree> SampleAccepted(size_t count) {
    std::vector<LabeledTree> out;
    const auto& pool = TreePool(pool_a_[nfta_.initial_state()], n_);
    if (pool.empty()) return out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const uint32_t idx =
          static_cast<uint32_t>(rng_.NextBounded(pool.size()));
      out.push_back(MaterializeTree(nfta_.initial_state(), n_, idx));
    }
    return out;
  }

 private:
  // --- Feasibility -----------------------------------------------------

  // fwd_a_[q][s]: A(q, s) non-empty; fwd_f_[τ][j][s]: F(τ, j, s) non-empty.
  // Alongside the bitvectors, sparse sorted lists of feasible sizes are kept
  // per stratum: gadget-expanded automata are size-determined (one or two
  // live sizes per stratum), and the naive split loops would cost
  // O(n²·|Δ|).
  void ComputeForwardFeasibility() {
    const size_t S = nfta_.NumStates();
    fwd_a_.assign(S, std::vector<bool>(n_ + 1, false));
    fwd_a_sizes_.assign(S, {});
    fwd_f_.resize(nfta_.NumTransitions());
    fwd_f_sizes_.resize(nfta_.NumTransitions());
    for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
      const size_t arity = nfta_.transition(tau).children.size();
      fwd_f_[tau].assign(arity + 1, std::vector<bool>(n_ + 1, false));
      fwd_f_sizes_[tau].assign(arity + 1, {});
      fwd_f_[tau][0][0] = true;
      fwd_f_sizes_[tau][0].push_back(0);
    }
    for (size_t s = 1; s <= n_; ++s) {
      for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
        const Nfta::Transition& t = nfta_.transition(tau);
        if (fwd_f_[tau][t.children.size()][s - 1] && !fwd_a_[t.from][s]) {
          fwd_a_[t.from][s] = true;
          fwd_a_sizes_[t.from].push_back(static_cast<uint32_t>(s));
        }
      }
      for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
        const Nfta::Transition& t = nfta_.transition(tau);
        for (size_t j = 1; j <= t.children.size(); ++j) {
          // s = prev + split over the sparse feasible prev sizes.
          for (uint32_t prev : fwd_f_sizes_[tau][j - 1]) {
            if (prev >= s) break;
            if (fwd_a_[t.children[j - 1]][s - prev]) {
              fwd_f_[tau][j][s] = true;
              fwd_f_sizes_[tau][j].push_back(static_cast<uint32_t>(s));
              break;
            }
          }
        }
      }
    }
  }

  // bwd_a_/bwd_f_: the stratum can occur inside some accepted tree of total
  // size n. Seeded at (initial, n) and propagated down through transitions
  // and feasible splits.
  void ComputeBackwardUsefulness() {
    const size_t S = nfta_.NumStates();
    bwd_a_.assign(S, std::vector<bool>(n_ + 1, false));
    bwd_f_.resize(nfta_.NumTransitions());
    for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
      const size_t arity = nfta_.transition(tau).children.size();
      bwd_f_[tau].assign(arity + 1, std::vector<bool>(n_ + 1, false));
    }
    if (config_.disable_backward_pruning) {
      // Ablation mode: everything forward-feasible counts as useful.
      bwd_a_ = fwd_a_;
      bwd_f_ = fwd_f_;
      return;
    }
    bwd_a_[nfta_.initial_state()][n_] = true;
    // Process A-strata from large sizes down; each A(q, s) marks the full
    // forests F(τ, m, s−1), and each F(τ, j, s) marks its feasible splits.
    for (size_t s = n_ + 1; s-- > 1;) {
      for (StateId q = 0; q < S; ++q) {
        if (!bwd_a_[q][s] || !fwd_a_[q][s]) continue;
        for (uint32_t tau_idx : nfta_.OutTransitions(q)) {
          const Nfta::Transition& t = nfta_.transition(tau_idx);
          const size_t m = t.children.size();
          if (fwd_f_[tau_idx][m][s - 1]) bwd_f_[tau_idx][m][s - 1] = true;
        }
      }
      // Forest strata at sizes <= s−1 get marked by the loop below once all
      // A-strata of larger size were handled; process forest sizes equal to
      // s−1 now (they only feed A-strata of size s which are all done).
      const size_t fs = s - 1;
      for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
        const Nfta::Transition& t = nfta_.transition(tau);
        for (size_t j = t.children.size(); j >= 1; --j) {
          if (!bwd_f_[tau][j][fs] || !fwd_f_[tau][j][fs]) continue;
          // Feasible splits via the sparse prev-size lists.
          for (uint32_t prev : fwd_f_sizes_[tau][j - 1]) {
            if (prev > fs) break;
            const size_t split = fs - prev;
            if (split >= 1 && fwd_a_[t.children[j - 1]][split]) {
              bwd_f_[tau][j - 1][prev] = true;
              bwd_a_[t.children[j - 1]][split] = true;
            }
          }
        }
      }
    }
  }

  bool LiveA(StateId q, size_t s) const {
    return fwd_a_[q][s] && bwd_a_[q][s];
  }
  bool LiveF(uint32_t tau, size_t j, size_t s) const {
    return fwd_f_[tau][j][s] && bwd_f_[tau][j][s];
  }

  // --- Tables -----------------------------------------------------------

  // Tables are sparse: gadget-expanded automata are size-determined, so only
  // a handful of sizes per stratum are live; dense (state x size) tables
  // would dominate memory.
  void AllocateTables() {
    est_a_.resize(nfta_.NumStates());
    pool_a_.resize(nfta_.NumStates());
    if (cached_) root_memo_.resize(nfta_.NumStates());
    est_f_.resize(nfta_.NumTransitions());
    pool_f_.resize(nfta_.NumTransitions());
    for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
      const size_t arity = nfta_.transition(tau).children.size();
      est_f_[tau].resize(arity + 1);
      pool_f_[tau].resize(arity + 1);
      est_f_[tau][0].emplace(0, ExtFloat::FromUint64(1));
    }
  }

  ExtFloat EstA(StateId q, size_t s) const {
    auto it = est_a_[q].find(static_cast<uint32_t>(s));
    return it == est_a_[q].end() ? ExtFloat() : it->second;
  }
  ExtFloat EstF(uint32_t tau, size_t j, size_t s) const {
    auto it = est_f_[tau][j].find(static_cast<uint32_t>(s));
    return it == est_f_[tau][j].end() ? ExtFloat() : it->second;
  }
  static const std::vector<TreeSample>& TreePool(
      const std::unordered_map<uint32_t, std::vector<TreeSample>>& m,
      size_t s) {
    static const std::vector<TreeSample> kEmptyTrees;
    auto it = m.find(static_cast<uint32_t>(s));
    return it == m.end() ? kEmptyTrees : it->second;
  }
  static const std::vector<ForestSample>& ForestPool(
      const std::unordered_map<uint32_t, std::vector<ForestSample>>& m,
      size_t s) {
    static const std::vector<ForestSample> kEmptyForests;
    auto it = m.find(static_cast<uint32_t>(s));
    return it == m.end() ? kEmptyForests : it->second;
  }

  // --- Materialization ---------------------------------------------------

  // Appends the forest sample pool_f_[tau][j][s][idx] as children of
  // `parent` in `out` (left to right).
  void MaterializeForest(uint32_t tau, size_t j, size_t s, uint32_t idx,
                         LabeledTree* out, uint32_t parent) const {
    if (j == 0) return;  // empty forest
    const ForestSample& ref = ForestPool(pool_f_[tau][j], s)[idx];
    MaterializeForest(tau, j - 1, s - ref.split, ref.prefix, out, parent);
    const Nfta::Transition& t = nfta_.transition(tau);
    MaterializeTreeInto(t.children[j - 1], ref.split, ref.tree, out, parent);
  }

  // Appends the tree sample pool_a_[q][s][idx] as a child of `parent`
  // (or as the root when parent == kNoParent).
  static constexpr uint32_t kNoParent = 0xffffffffu;
  void MaterializeTreeInto(StateId q, size_t s, uint32_t idx,
                           LabeledTree* out, uint32_t parent) const {
    const TreeSample& ref = TreePool(pool_a_[q], s)[idx];
    const Nfta::Transition& t = nfta_.transition(ref.transition);
    uint32_t node;
    if (parent == kNoParent) {
      node = out->root();
    } else {
      node = out->AddChild(parent, t.symbol);
    }
    MaterializeForest(ref.transition, t.children.size(), s - 1, ref.forest,
                      out, node);
  }

  LabeledTree MaterializeTree(StateId q, size_t s, uint32_t idx) const {
    const TreeSample& ref = TreePool(pool_a_[q], s)[idx];
    const Nfta::Transition& t = nfta_.transition(ref.transition);
    LabeledTree out(t.symbol);
    MaterializeForest(ref.transition, t.children.size(), s - 1, ref.forest,
                      &out, out.root());
    return out;
  }

  // --- Strata processing --------------------------------------------------

  // A(q, s) = ∪_{τ ∈ out(q)} { α_τ-rooted trees with child forest in
  // F(τ, m_τ, s−1) }. Transitions with distinct symbols generate disjoint
  // tree sets, so the union decomposes into an exact sum over symbol groups;
  // the Karp–Luby canonical-witness estimator is only needed *within* a
  // group of same-symbol transitions (rare outside witness-choice states).
  void ProcessTreeStratum(StateId q, size_t s) {
    // Group candidate transitions by symbol.
    struct Group {
      std::vector<uint32_t> taus;
      std::vector<ExtFloat> weights;
      ExtFloat weight_sum;
      ExtFloat estimate;
      std::vector<TreeSample> accepted;  // only for multi-τ groups
    };
    std::map<SymbolId, Group> groups;
    for (uint32_t tau_idx : nfta_.OutTransitions(q)) {
      const Nfta::Transition& t = nfta_.transition(tau_idx);
      const ExtFloat w = EstF(tau_idx, t.children.size(), s - 1);
      if (w.IsZero()) continue;
      Group& g = groups[t.symbol];
      g.taus.push_back(tau_idx);
      g.weights.push_back(w);
      g.weight_sum = g.weight_sum.Add(w);
    }
    if (groups.empty()) return;

    // Draws a candidate sample for transition tau (random forest ref);
    // returns false if the forest pool is empty.
    auto DrawCandidate = [&](uint32_t tau_idx, TreeSample* out) {
      const Nfta::Transition& t = nfta_.transition(tau_idx);
      out->transition = tau_idx;
      out->forest = 0;
      if (!t.children.empty()) {
        const auto& fpool =
            ForestPool(pool_f_[tau_idx][t.children.size()], s - 1);
        if (fpool.empty()) return false;
        out->forest = static_cast<uint32_t>(rng_.NextBounded(fpool.size()));
      }
      return true;
    };

    // Per-group estimates: exact for singleton groups, Karp–Luby within
    // overlapping (same-symbol) groups.
    ExtFloat total_estimate;
    for (auto& [symbol, g] : groups) {
      (void)symbol;
      if (g.taus.size() == 1) {
        g.estimate = g.weight_sum;
        total_estimate = total_estimate.Add(g.estimate);
        continue;
      }
      // One picker build per group, reused across the whole rejection loop
      // (the legacy ablation path redoes the scan-and-scale work per draw;
      // both consume one NextDouble per pick, so draws are bit-identical).
      if (cached_) {
        picker_.Build(g.weights);
        ++stats_.picker_builds;
      }
      auto PickTau = [&]() {
        return cached_ ? picker_.Pick(&rng_)
                       : PickWeightedIndex(&rng_, g.weights);
      };
      const size_t target = pool_target_;
      const size_t max_attempts = config_.attempt_factor * target + 64;
      size_t attempts = 0;
      while (g.accepted.size() < target && attempts < max_attempts) {
        ++attempts;
        if ((attempts & 255u) == 0 && Cancelled()) break;
        const size_t pick = PickTau();
        TreeSample candidate;
        if (!DrawCandidate(g.taus[pick], &candidate)) continue;
        if (CanonicalTransition(q, s, candidate) == candidate.transition) {
          g.accepted.push_back(candidate);
        }
      }
      stats_.attempts += attempts;
      stats_.accepted += g.accepted.size();
      if (g.accepted.empty()) {
        // Statistically negligible when attempts >> group size (acceptance
        // is >= 1/|group|); force one biased sample so a live stratum never
        // reports a false zero.
        ++stats_.forced_samples;
        const size_t pick = PickTau();
        TreeSample forced;
        if (DrawCandidate(g.taus[pick], &forced)) {
          g.accepted.push_back(forced);
          g.estimate = g.weight_sum.Scale(
              1.0 / static_cast<double>(attempts + 1));
        }
      } else {
        g.estimate = g.weight_sum.Scale(static_cast<double>(g.accepted.size()) /
                                        static_cast<double>(attempts));
      }
      total_estimate = total_estimate.Add(g.estimate);
    }
    est_a_[q].emplace(static_cast<uint32_t>(s), total_estimate);
    if (total_estimate.IsZero()) return;

    // Pool: a mixture over groups proportional to their estimates. Samples
    // from singleton groups are drawn fresh; overlapping groups resample
    // their accepted (canonical) candidates.
    std::vector<const Group*> group_list;
    std::vector<ExtFloat> group_weights;
    for (const auto& [symbol, g] : groups) {
      (void)symbol;
      if (g.estimate.IsZero()) continue;
      group_list.push_back(&g);
      group_weights.push_back(g.estimate);
    }
    if (cached_ && group_list.size() > 1) {
      picker_.Build(group_weights);
      ++stats_.picker_builds;
    }
    auto& pool = pool_a_[q][static_cast<uint32_t>(s)];
    pool.reserve(pool_target_);
    for (size_t i = 0; i < pool_target_; ++i) {
      const Group& g =
          group_list.size() == 1
              ? *group_list[0]
              : *group_list[cached_
                                ? picker_.Pick(&rng_)
                                : PickWeightedIndex(&rng_, group_weights)];
      if (g.taus.size() == 1) {
        TreeSample sample;
        if (DrawCandidate(g.taus[0], &sample)) pool.push_back(sample);
      } else if (!g.accepted.empty()) {
        pool.push_back(g.accepted[rng_.NextBounded(g.accepted.size())]);
      }
    }
    stats_.pool_entries += pool.size();
  }

  // A pooled subtree reference: the tree sample pool_a_[state][split][tree].
  struct ChildRef {
    StateId state;
    uint32_t split;
    uint32_t tree;
  };

  // Resolves the forest sample pool_f_[tau][j][s][idx] into its j child
  // subtree references, left to right, without materializing anything.
  void ResolveForest(uint32_t tau, size_t j, size_t s, uint32_t idx,
                     std::vector<ChildRef>* out) const {
    const Nfta::Transition& t = nfta_.transitions()[tau];
    out->resize(j);
    uint32_t cur_idx = idx;
    size_t cur_s = s;
    while (j > 0) {
      const ForestSample& ref = ForestPool(pool_f_[tau][j], cur_s)[cur_idx];
      (*out)[j - 1] = ChildRef{t.children[j - 1], ref.split, ref.tree};
      cur_s -= ref.split;
      cur_idx = ref.prefix;
      --j;
    }
  }

  // Memoized run-state oracle: the sorted set of states from which the
  // pooled tree pool_a_[q][s][idx] can be generated, computed recursively
  // from the derivation references (shared subtrees are simulated once; the
  // legacy path re-runs Nfta::RunStates over the whole materialized tree per
  // check). Pools referenced by a sample live in strictly smaller, already
  // finalized strata, so memo entries never invalidate within a run. Every
  // run-state set contains the pool's own state q, so an empty vector
  // doubles as the "uncomputed" sentinel. The per-node candidate enumeration
  // mirrors Nfta::RunStates exactly (same dense index, same order).
  const std::vector<StateId>& RootStates(StateId q, size_t s, uint32_t idx) {
    auto& level = root_memo_[q][static_cast<uint32_t>(s)];
    const auto& pool = TreePool(pool_a_[q], s);
    if (level.size() < pool.size()) level.resize(pool.size());
    if (!level[idx].empty()) {
      ++stats_.runstates_memo_hits;
      return level[idx];
    }
    ++stats_.runstates_memo_misses;
    const Nfta::Transition* trans = nfta_.transitions().data();
    const TreeSample& ref = pool[idx];
    const Nfta::Transition& t = trans[ref.transition];
    const size_t m = t.children.size();
    std::vector<StateId> out;
    if (m == 0) {
      for (uint32_t tau2 : nfta_.LeafTransitions(t.symbol)) {
        out.push_back(trans[tau2].from);
      }
    } else {
      // Locals (not scratch members): RootStates recurses through children.
      std::vector<ChildRef> kids;
      ResolveForest(ref.transition, m, s - 1, ref.forest, &kids);
      std::vector<const std::vector<StateId>*> sets(m);
      for (size_t i = 0; i < m; ++i) {
        // unordered_map references are stable under insertion, and the
        // level vector of a (q, s) stratum is only resized on entry for
        // that stratum — strictly-smaller recursive strata never alias it.
        sets[i] = &RootStates(kids[i].state, kids[i].split, kids[i].tree);
      }
      for (StateId first_child_state : *sets[0]) {
        for (uint32_t tau2 :
             nfta_.TransitionsWithSymbolChild0(t.symbol, first_child_state)) {
          const Nfta::Transition& cand = trans[tau2];
          if (cand.children.size() != m) continue;
          bool ok = true;
          for (size_t i = 1; i < m && ok; ++i) {
            ok = std::binary_search(sets[i]->begin(), sets[i]->end(),
                                    cand.children[i]);
          }
          if (ok) out.push_back(cand.from);
        }
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    level[idx] = std::move(out);
    return level[idx];
  }

  // The canonical generating transition for the tree denoted by `candidate`
  // at stratum (q, s): the smallest-index τ' ∈ out(q) whose symbol and arity
  // match and whose child states accept the respective subtrees (decided
  // exactly by bottom-up simulation — memoized over the candidate's pooled
  // child subtrees, or from scratch on the ablation path).
  uint32_t CanonicalTransition(StateId q, size_t s,
                               const TreeSample& candidate) {
    ++stats_.membership_checks;
    if (!cached_) return CanonicalTransitionLegacy(q, s, candidate);
    const Nfta::Transition* trans = nfta_.transitions().data();
    const Nfta::Transition& t = trans[candidate.transition];
    const size_t m = t.children.size();
    // The candidate's child subtrees are pooled samples of smaller strata;
    // their run-state sets come from the memo. Scratch reused across draws
    // (only the recursion inside RootStates needs locals).
    ResolveForest(candidate.transition, m, s - 1, candidate.forest,
                  &child_scratch_);
    set_scratch_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      set_scratch_[i] = &RootStates(child_scratch_[i].state,
                                    child_scratch_[i].split,
                                    child_scratch_[i].tree);
    }
    for (uint32_t tau_idx : nfta_.OutTransitions(q)) {
      const Nfta::Transition& cand = trans[tau_idx];
      if (cand.symbol != t.symbol || cand.children.size() != m) continue;
      bool ok = true;
      for (size_t i = 0; i < m && ok; ++i) {
        ok = std::binary_search(set_scratch_[i]->begin(),
                                set_scratch_[i]->end(), cand.children[i]);
      }
      if (ok) return tau_idx;
    }
    // The candidate itself always matches; unreachable.
    PQE_CHECK(false);
    return candidate.transition;
  }

  uint32_t CanonicalTransitionLegacy(StateId q, size_t s,
                                     const TreeSample& candidate) {
    LabeledTree tree = [&] {
      const Nfta::Transition& t = nfta_.transition(candidate.transition);
      LabeledTree out(t.symbol);
      MaterializeForest(candidate.transition, t.children.size(), s - 1,
                        candidate.forest, &out, out.root());
      return out;
    }();
    const std::vector<std::vector<StateId>> run = nfta_.RunStates(tree);
    const auto& kids = tree.children(tree.root());
    const SymbolId label = tree.label(tree.root());
    for (uint32_t tau_idx : nfta_.OutTransitions(q)) {
      const Nfta::Transition& t = nfta_.transition(tau_idx);
      if (t.symbol != label || t.children.size() != kids.size()) continue;
      bool ok = true;
      for (size_t i = 0; i < kids.size() && ok; ++i) {
        const auto& child_states = run[kids[i]];
        ok = std::binary_search(child_states.begin(), child_states.end(),
                                t.children[i]);
      }
      if (ok) return tau_idx;
    }
    // The candidate itself always matches; unreachable.
    PQE_CHECK(false);
    return candidate.transition;
  }

  // F(τ, j, s) = ⊎_split F(τ, j−1, s−split) × A(child_j, split): exact
  // disjoint sum of products; samples compose without rejection.
  void ProcessForestStratum(uint32_t tau, size_t j, size_t s) {
    const Nfta::Transition& t = nfta_.transition(tau);
    const StateId child = t.children[j - 1];
    std::vector<uint32_t> splits;
    std::vector<ExtFloat> weights;
    ExtFloat total;
    for (size_t split = 1; split <= s; ++split) {
      const ExtFloat prev = EstF(tau, j - 1, s - split);
      const ExtFloat sub = EstA(child, split);
      if (prev.IsZero() || sub.IsZero()) continue;
      ExtFloat w = prev.Mul(sub);
      splits.push_back(static_cast<uint32_t>(split));
      weights.push_back(w);
      total = total.Add(w);
    }
    est_f_[tau][j].emplace(static_cast<uint32_t>(s), total);
    if (splits.empty()) return;

    if (cached_ && splits.size() > 1) {
      picker_.Build(weights);
      ++stats_.picker_builds;
    }
    auto& pool = pool_f_[tau][j][static_cast<uint32_t>(s)];
    pool.reserve(pool_target_);
    for (size_t i = 0; i < pool_target_; ++i) {
      const uint32_t split =
          splits.size() == 1
              ? splits[0]
              : splits[cached_ ? picker_.Pick(&rng_)
                               : PickWeightedIndex(&rng_, weights)];
      uint32_t prefix_idx = 0;
      if (j - 1 > 0) {
        const auto& prev_pool = ForestPool(pool_f_[tau][j - 1], s - split);
        if (prev_pool.empty()) continue;
        prefix_idx =
            static_cast<uint32_t>(rng_.NextBounded(prev_pool.size()));
      }
      const auto& tree_pool = TreePool(pool_a_[child], split);
      if (tree_pool.empty()) continue;
      const uint32_t tree_idx =
          static_cast<uint32_t>(rng_.NextBounded(tree_pool.size()));
      pool.push_back(ForestSample{prefix_idx, tree_idx, split});
    }
    stats_.pool_entries += pool.size();
  }

  // --- Cancellation -------------------------------------------------------

  bool Cancelled() const { return cancel_ != nullptr && cancel_->Expired(); }

  Status DeadlineError(size_t s) const {
    return Status::DeadlineExceeded(
        "count_nfta: cancelled at size stratum " + std::to_string(s) + "/" +
        std::to_string(n_));
  }

  const Nfta& nfta_;
  const size_t n_;
  const EstimatorConfig& config_;
  Rng rng_;
  const bool cached_;  // hot-path caches on (off = ablation baseline)
  const CancelToken* cancel_;
  size_t pool_target_ = 0;
  CountStats stats_;

  // Hot-path scratch, reused across draws and strata.
  WeightedPicker picker_;
  std::vector<ChildRef> child_scratch_;
  std::vector<const std::vector<StateId>*> set_scratch_;
  // root_memo_[q]{s}[pool idx] -> sorted run-state set of the pooled tree.
  std::vector<std::unordered_map<uint32_t, std::vector<std::vector<StateId>>>>
      root_memo_;

  std::vector<std::vector<bool>> fwd_a_;                // [q][s]
  std::vector<std::vector<uint32_t>> fwd_a_sizes_;      // sparse live sizes
  std::vector<std::vector<std::vector<bool>>> fwd_f_;   // [τ][j][s]
  std::vector<std::vector<std::vector<uint32_t>>> fwd_f_sizes_;
  std::vector<std::vector<bool>> bwd_a_;
  std::vector<std::vector<std::vector<bool>>> bwd_f_;
  // Sparse per-stratum tables, keyed by size.
  std::vector<std::unordered_map<uint32_t, ExtFloat>> est_a_;  // [q]{s}
  std::vector<std::unordered_map<uint32_t, std::vector<TreeSample>>> pool_a_;
  std::vector<std::vector<std::unordered_map<uint32_t, ExtFloat>>>
      est_f_;  // [τ][j]{s}
  std::vector<std::vector<
      std::unordered_map<uint32_t, std::vector<ForestSample>>>>
      pool_f_;
};

}  // namespace

Result<NftaSampleResult> CountAndSampleNftaTrees(
    const Nfta& nfta, size_t n, const EstimatorConfig& config,
    size_t num_samples) {
  if (config.epsilon <= 0.0 || config.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  PQE_TRACE_SPAN_VAR(span, "count.nfta");
  span.AttrUint("states", nfta.NumStates());
  span.AttrUint("transitions", nfta.NumTransitions());
  span.AttrUint("tree_size", n);
  span.AttrUint("samples_requested", num_samples);
  NftaCounter counter(nfta, n, config);
  NftaSampleResult out;
  PQE_ASSIGN_OR_RETURN(out.estimate, counter.Run());
  out.samples = counter.SampleAccepted(num_samples);
  RecordCountRun("pqe.count_nfta", out.estimate.stats,
                 !config.disable_hotpath_caches, &span);
  return out;
}

Result<CountEstimate> CountNftaTrees(const Nfta& nfta, size_t n,
                                     const EstimatorConfig& config) {
  if (config.epsilon <= 0.0 || config.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  const size_t reps = std::max<size_t>(config.repetitions, 1);
  PQE_TRACE_SPAN_VAR(span, "count.nfta");
  span.AttrUint("states", nfta.NumStates());
  span.AttrUint("transitions", nfta.NumTransitions());
  span.AttrUint("tree_size", n);
  span.AttrUint("repetitions", reps);
  if (reps == 1) {
    NftaCounter counter(nfta, n, config);
    PQE_ASSIGN_OR_RETURN(CountEstimate est, counter.Run());
    RecordCountRun("pqe.count_nfta", est.stats,
                   !config.disable_hotpath_caches, &span);
    return est;
  }
  // Median-of-R amplification over independent seeds — the standard FPRAS
  // confidence boost. Repetitions are independent (per-rep seed, per-rep
  // counter state), so they fan out over the shared pool; each rep writes
  // its own slot and the merge below runs in fixed rep order, keeping the
  // median and the aggregate stats bit-identical across thread counts.
  const size_t threads =
      std::min(ThreadPool::ResolveNumThreads(config.num_threads), reps);
  span.AttrUint("threads", threads);
  // The membership oracle's lazy index must exist before the const automaton
  // is shared across workers (building it mutates `mutable` members).
  nfta.WarmRunIndex();
  std::vector<CountEstimate> runs(reps);
  std::vector<Status> rep_status(reps, Status::OK());
  auto& rep_hist =
      obs::MetricRegistry::Global().GetHistogram("pqe.count_nfta.rep_ns");
  ParallelFor(threads, reps, [&](size_t r) {
    // Per-rep spans only on the serial path: sessions are thread-local, so
    // worker-run reps would attach nothing, and the caller-participating
    // parallel path would trace a scheduling-dependent subset. Parallel
    // runs record per-rep timings through the (atomic) histogram instead.
    std::optional<obs::ScopedSpan> rep_span;
    if (threads == 1) {
      rep_span.emplace("count.nfta.rep");
      rep_span->AttrUint("rep", r);
    }
    const auto start = std::chrono::steady_clock::now();
    EstimatorConfig rep_config = config;
    rep_config.repetitions = 1;
    rep_config.seed = Rng::DeriveSeed(config.seed, r);
    NftaCounter counter(nfta, n, rep_config);
    Result<CountEstimate> est = counter.Run();
    if (!est.ok()) {
      rep_status[r] = est.status();
      return;
    }
    if (rep_span) rep_span->AttrFloat("log2_value", est->value.Log2());
    runs[r] = est.MoveValue();
    rep_hist.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  });
  for (const Status& st : rep_status) PQE_RETURN_IF_ERROR(st);
  CountStats aggregate;
  for (const CountEstimate& est : runs) {
    aggregate.strata_total = est.stats.strata_total;
    aggregate.strata_live = est.stats.strata_live;
    aggregate.pool_entries += est.stats.pool_entries;
    aggregate.attempts += est.stats.attempts;
    aggregate.accepted += est.stats.accepted;
    aggregate.forced_samples += est.stats.forced_samples;
    aggregate.membership_checks += est.stats.membership_checks;
    aggregate.picker_builds += est.stats.picker_builds;
    aggregate.runstates_memo_hits += est.stats.runstates_memo_hits;
    aggregate.runstates_memo_misses += est.stats.runstates_memo_misses;
  }
  std::sort(runs.begin(), runs.end(),
            [](const CountEstimate& a, const CountEstimate& b) {
              return a.value < b.value;
            });
  CountEstimate out = runs[runs.size() / 2];
  out.stats = aggregate;
  RecordCountRun("pqe.count_nfta", out.stats,
                 !config.disable_hotpath_caches, &span);
  return out;
}

}  // namespace pqe
