#include "counting/count_nfta.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "automata/tree.h"
#include "counting/weighted_pick.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pqe {

namespace {

// Attempts drawn per block-RNG batch in the fast kernels (see the NFA twin
// in count_nfa.cc): 2–3 raw words per attempt, so a batch stays L1-resident
// while the acceptance pass runs over it.
constexpr size_t kDrawBatch = 256;

// Derivation reference for a pooled tree sample of A(q, s): the transition
// taken at the root and the forest sample index in F(τ, arity, s−1).
struct TreeSample {
  uint32_t transition = 0;
  uint32_t forest = 0;
};

// Derivation reference for a pooled forest sample of F(τ, j, s): the prefix
// forest sample in F(τ, j−1, s − split) and the tree sample in
// A(child_j(τ), split).
struct ForestSample {
  uint32_t prefix = 0;
  uint32_t tree = 0;
  uint32_t split = 0;  // size of the j-th child tree
};

class NftaCounter {
 public:
  NftaCounter(const Nfta& nfta, size_t n, const EstimatorConfig& config)
      : nfta_(nfta),
        n_(n),
        config_(config),
        rng_(config.seed),
        fast_(config.kernel_mode == KernelMode::kFast),
        cached_(fast_ || !config.disable_hotpath_caches),
        cancel_(config.cancel) {}

  Result<CountEstimate> Run() {
    if (nfta_.HasLambdaTransitions()) {
      return Status::InvalidArgument(
          "CountNftaTrees requires a λ-free NFTA (run EliminateLambda)");
    }
    if (n_ == 0) return CountEstimate{ExtFloat(), stats_};
    if (Cancelled()) return DeadlineError(0);
    pool_target_ = config_.ResolvePoolSize(n_);

    ComputeForwardFeasibility();
    ComputeBackwardUsefulness();
    BuildLiveLists();

    // Strata accounting, folded into the processing sweep below (the sweep
    // already visits every stratum to test liveness; a dedicated counting
    // pass would re-walk O(|Q|·n + |Δ|·a·n) entries). strata_total is a
    // closed form: A-strata are |Q|·n (sizes 1..n), F-strata arity·(n+1)
    // per transition (sizes 0..n). The sweep skips forest size 0, which is
    // never live (a child tree has size >= 1), so the live count matches.
    stats_.strata_total = nfta_.NumStates() * n_;
    for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
      stats_.strata_total += nfta_.transition(tau).children.size() * (n_ + 1);
    }

    AllocateTables();
    for (size_t s = 1; s <= n_; ++s) {
      // One cancellation poll per size stratum, plus finer-grained polls in
      // the rejection loops (a single stratum's attempt budget can be large).
      if (Cancelled()) return DeadlineError(s);
      // The live lists replay the dense scan's visit order exactly (states
      // ascending, then transitions ascending with positions ascending), so
      // the processing — and with it every RNG draw — is unchanged.
      for (StateId q : live_a_by_s_[s]) {
        ++stats_.strata_live;
        ProcessTreeStratum(q, s);
      }
      for (const auto& [tau, j] : live_f_by_s_[s]) {
        ++stats_.strata_live;
        ProcessForestStratum(tau, j, s);
      }
      if (cancel_ != nullptr) cancel_->AddProgress(1);
    }
    // A rejection loop may have bailed out mid-stratum on an expired token;
    // the partial tables must not be read as an estimate.
    if (Cancelled()) return DeadlineError(n_);
    CountEstimate out;
    out.value = EstA(nfta_.initial_state(), n_);
    out.stats = stats_;
    return out;
  }

  // Materializes `count` (near-uniform) accepted trees of size n_ from the
  // root stratum's sample pool. Must be called after Run(); returns fewer
  // trees (possibly none) when the language is empty.
  std::vector<LabeledTree> SampleAccepted(size_t count) {
    std::vector<LabeledTree> out;
    const auto& pool = TreePool(pool_a_[nfta_.initial_state()], n_);
    if (pool.empty()) return out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const uint32_t idx =
          static_cast<uint32_t>(rng_.NextBounded(pool.size()));
      out.push_back(MaterializeTree(nfta_.initial_state(), n_, idx));
    }
    return out;
  }

 private:
  // --- Feasibility -----------------------------------------------------

  // Feasibility-propagation events, packed into one word so the per-size
  // buckets are flat u64 vectors: tree strata carry the state, forest
  // strata the transition and prefix length (positions fit 24 bits — an
  // arity cannot exceed the tree size bound).
  static constexpr uint64_t kTreeEvent = uint64_t{1} << 63;
  static uint64_t EncodeForest(uint32_t tau, size_t j) {
    return (static_cast<uint64_t>(tau) << 24) | static_cast<uint64_t>(j);
  }
  static uint32_t ForestEventTau(uint64_t e) {
    return static_cast<uint32_t>(e >> 24);
  }
  static uint32_t ForestEventJ(uint64_t e) {
    return static_cast<uint32_t>(e & 0xffffff);
  }

  // fwd_a_[q][s]: A(q, s) non-empty; fwd_f_[τ][j][s]: F(τ, j, s) non-empty.
  // Alongside the bitvectors, sparse sorted lists of feasible sizes are kept
  // per stratum: gadget-expanded automata are size-determined (one or two
  // live sizes per stratum), and the naive split loops would cost
  // O(n²·|Δ|).
  //
  // The closure is computed semi-naively: instead of re-scanning every
  // transition at every size (O(n·|Δ|·a) bit probes, which dwarfs the
  // handful of live strata on gadget-expanded automata), newly feasible
  // strata are queued into per-size buckets and each one cascades once —
  // a new tree size pairs against the recorded prefix-forest sizes, a new
  // forest size pairs against the recorded child-tree sizes. Every
  // (prefix, child) pair is seen by whichever side is processed later, so
  // the fixed point — and with it every downstream table — is identical to
  // the dense scan's; buckets drain in ascending size order, which keeps
  // the recorded size lists sorted exactly as before.
  void ComputeForwardFeasibility() {
    const size_t S = nfta_.NumStates();
    fwd_a_.assign(S, std::vector<bool>(n_ + 1, false));
    fwd_a_sizes_.assign(S, {});
    fwd_f_.resize(nfta_.NumTransitions());
    fwd_f_sizes_.resize(nfta_.NumTransitions());
    for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
      const size_t arity = nfta_.transition(tau).children.size();
      fwd_f_[tau].assign(arity + 1, std::vector<bool>(n_ + 1, false));
      fwd_f_sizes_[tau].assign(arity + 1, {});
      fwd_f_[tau][0][0] = true;
      fwd_f_sizes_[tau][0].push_back(0);
    }

    // Reverse child index (CSR): state q -> occurrences (τ, j) with
    // child_j(τ) == q, the pairs a new tree size of q can extend.
    std::vector<uint32_t> rev_offsets(S + 1, 0);
    size_t total_arity = 0;
    for (const Nfta::Transition& t : nfta_.transitions()) {
      for (StateId c : t.children) ++rev_offsets[c + 1];
      total_arity += t.children.size();
    }
    for (size_t i = 0; i < S; ++i) rev_offsets[i + 1] += rev_offsets[i];
    std::vector<uint64_t> rev_pairs(total_arity);
    {
      std::vector<uint32_t> cursor(rev_offsets.begin(), rev_offsets.end() - 1);
      for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
        const Nfta::Transition& t = nfta_.transition(tau);
        for (size_t j = 1; j <= t.children.size(); ++j) {
          rev_pairs[cursor[t.children[j - 1]]++] = EncodeForest(tau, j);
        }
      }
    }

    std::vector<std::vector<uint64_t>> buckets(n_ + 1);
    // Seeds: an arity-0 transition's (empty) full forest makes a size-1
    // tree; arity-≥1 transitions wait for their first child sizes.
    for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
      if (nfta_.transition(tau).children.empty() && n_ >= 1) {
        buckets[1].push_back(kTreeEvent | nfta_.transition(tau).from);
      }
    }
    for (size_t s = 1; s <= n_; ++s) {
      // Index drain: processing can append same-size events (a tree of
      // size s extends an empty prefix forest to a forest of size s).
      for (size_t i = 0; i < buckets[s].size(); ++i) {
        const uint64_t e = buckets[s][i];
        if (e & kTreeEvent) {
          const StateId q = static_cast<StateId>(e & ~kTreeEvent);
          if (fwd_a_[q][s]) continue;
          fwd_a_[q][s] = true;
          fwd_a_sizes_[q].push_back(static_cast<uint32_t>(s));
          for (uint32_t r = rev_offsets[q]; r < rev_offsets[q + 1]; ++r) {
            const uint32_t tau = ForestEventTau(rev_pairs[r]);
            const uint32_t j = ForestEventJ(rev_pairs[r]);
            for (uint32_t prev : fwd_f_sizes_[tau][j - 1]) {
              if (prev + s > n_) break;
              buckets[prev + s].push_back(EncodeForest(tau, j));
            }
          }
        } else {
          const uint32_t tau = ForestEventTau(e);
          const uint32_t j = ForestEventJ(e);
          if (fwd_f_[tau][j][s]) continue;
          fwd_f_[tau][j][s] = true;
          fwd_f_sizes_[tau][j].push_back(static_cast<uint32_t>(s));
          const Nfta::Transition& t = nfta_.transition(tau);
          if (j == t.children.size()) {
            if (s + 1 <= n_) buckets[s + 1].push_back(kTreeEvent | t.from);
          } else {
            for (uint32_t split : fwd_a_sizes_[t.children[j]]) {
              if (s + split > n_) break;
              buckets[s + split].push_back(EncodeForest(tau, j + 1));
            }
          }
        }
      }
      buckets[s].clear();
      buckets[s].shrink_to_fit();
    }
  }

  // bwd_a_/bwd_f_: the stratum can occur inside some accepted tree of total
  // size n. Seeded at (initial, n) and propagated down through transitions
  // and feasible splits.
  void ComputeBackwardUsefulness() {
    const size_t S = nfta_.NumStates();
    bwd_a_.assign(S, std::vector<bool>(n_ + 1, false));
    bwd_f_.resize(nfta_.NumTransitions());
    for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
      const size_t arity = nfta_.transition(tau).children.size();
      bwd_f_[tau].assign(arity + 1, std::vector<bool>(n_ + 1, false));
    }
    if (config_.disable_backward_pruning) {
      // Ablation mode: everything forward-feasible counts as useful.
      bwd_a_ = fwd_a_;
      bwd_f_ = fwd_f_;
      return;
    }
    // Semi-naive marking, mirroring the forward pass: a seed at
    // (initial, n) cascades down, each marked stratum processed once.
    // A(q, s) marks the full forests F(τ, m, s−1); F(τ, j, s) marks its
    // feasible splits F(τ, j−1, prev) and A(child_j, s−prev). Marks only
    // ever target strictly smaller (size, position), so draining buckets
    // from large sizes down — re-scanning a bucket for the same-size marks
    // a forest stratum makes on its shorter prefixes — reaches the same
    // fixed point as the dense descending scan.
    std::vector<std::vector<uint64_t>> buckets(n_ + 1);
    buckets[n_].push_back(kTreeEvent | nfta_.initial_state());
    for (size_t s = n_ + 1; s-- > 1;) {
      for (size_t i = 0; i < buckets[s].size(); ++i) {
        const uint64_t e = buckets[s][i];
        if (e & kTreeEvent) {
          const StateId q = static_cast<StateId>(e & ~kTreeEvent);
          if (bwd_a_[q][s]) continue;
          bwd_a_[q][s] = true;
          if (!fwd_a_[q][s]) continue;  // The seed may be infeasible.
          for (uint32_t tau_idx : nfta_.OutTransitions(q)) {
            const size_t m = nfta_.transition(tau_idx).children.size();
            if (fwd_f_[tau_idx][m][s - 1]) {
              buckets[s - 1].push_back(EncodeForest(tau_idx, m));
            }
          }
        } else {
          const uint32_t tau = ForestEventTau(e);
          const uint32_t j = ForestEventJ(e);
          if (bwd_f_[tau][j][s]) continue;
          bwd_f_[tau][j][s] = true;
          if (j == 0) continue;
          const Nfta::Transition& t = nfta_.transition(tau);
          for (uint32_t prev : fwd_f_sizes_[tau][j - 1]) {
            if (prev > s) break;
            const size_t split = s - prev;
            if (split >= 1 && fwd_a_[t.children[j - 1]][split]) {
              buckets[prev].push_back(EncodeForest(tau, j - 1));
              buckets[split].push_back(kTreeEvent | t.children[j - 1]);
            }
          }
        }
      }
      buckets[s].clear();
      buckets[s].shrink_to_fit();
    }
    // Size-0 forest events (empty prefixes of useful forests) land in
    // bucket 0; they carry no further cascade, just the mark.
    for (const uint64_t e : buckets[0]) {
      bwd_f_[ForestEventTau(e)][ForestEventJ(e)][0] = true;
    }
  }

  bool LiveA(StateId q, size_t s) const {
    return fwd_a_[q][s] && bwd_a_[q][s];
  }
  bool LiveF(uint32_t tau, size_t j, size_t s) const {
    return fwd_f_[tau][j][s] && bwd_f_[tau][j][s];
  }

  // Per-size lists of live strata, distilled from the sparse forward size
  // lists once both pruning passes are done. The main sweep then visits
  // exactly the live strata instead of re-testing every (state, size) and
  // (transition, position, size) combination per size — the dense scan is
  // O(n·(|Q| + |Δ|·a)) of bit probes, which on gadget-expanded automata
  // (tens of thousands of states, a handful of live sizes each) costs more
  // than all the liveness hits it finds. Build order replays the dense
  // scan's visit order, so processing order is unchanged.
  void BuildLiveLists() {
    live_a_by_s_.assign(n_ + 1, {});
    live_f_by_s_.assign(n_ + 1, {});
    for (StateId q = 0; q < nfta_.NumStates(); ++q) {
      for (uint32_t s : fwd_a_sizes_[q]) {
        if (bwd_a_[q][s]) live_a_by_s_[s].push_back(q);
      }
    }
    for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
      const size_t arity = nfta_.transition(tau).children.size();
      for (size_t j = 1; j <= arity; ++j) {
        for (uint32_t s : fwd_f_sizes_[tau][j]) {
          if (bwd_f_[tau][j][s]) {
            live_f_by_s_[s].push_back({tau, static_cast<uint32_t>(j)});
          }
        }
      }
    }
  }

  // --- Tables -----------------------------------------------------------

  // Tables are sparse: gadget-expanded automata are size-determined, so only
  // a handful of sizes per stratum are live; dense (state x size) tables
  // would dominate memory.
  void AllocateTables() {
    est_a_.resize(nfta_.NumStates());
    pool_a_.resize(nfta_.NumStates());
    if (fast_) {
      fast_memo_.resize(nfta_.NumStates());
      child0_index_.resize(nfta_.AlphabetSize());
      // One scratch row per possible recursion depth (a child stratum is
      // strictly smaller, so depth < n); sized up front because the
      // recursion holds references into these rows while it descends.
      fast_out_scratch_.resize(n_ + 1);
      fast_kids_scratch_.resize(n_ + 1);
      fast_sets_scratch_.resize(n_ + 1);
    } else if (cached_) {
      root_memo_.resize(nfta_.NumStates());
    }
    est_f_.resize(nfta_.NumTransitions());
    pool_f_.resize(nfta_.NumTransitions());
    for (uint32_t tau = 0; tau < nfta_.NumTransitions(); ++tau) {
      const size_t arity = nfta_.transition(tau).children.size();
      est_f_[tau].resize(arity + 1);
      pool_f_[tau].resize(arity + 1);
      est_f_[tau][0].emplace(0, ExtFloat::FromUint64(1));
    }
  }

  ExtFloat EstA(StateId q, size_t s) const {
    auto it = est_a_[q].find(static_cast<uint32_t>(s));
    return it == est_a_[q].end() ? ExtFloat() : it->second;
  }
  ExtFloat EstF(uint32_t tau, size_t j, size_t s) const {
    auto it = est_f_[tau][j].find(static_cast<uint32_t>(s));
    return it == est_f_[tau][j].end() ? ExtFloat() : it->second;
  }
  static const std::vector<TreeSample>& TreePool(
      const std::unordered_map<uint32_t, std::vector<TreeSample>>& m,
      size_t s) {
    static const std::vector<TreeSample> kEmptyTrees;
    auto it = m.find(static_cast<uint32_t>(s));
    return it == m.end() ? kEmptyTrees : it->second;
  }
  static const std::vector<ForestSample>& ForestPool(
      const std::unordered_map<uint32_t, std::vector<ForestSample>>& m,
      size_t s) {
    static const std::vector<ForestSample> kEmptyForests;
    auto it = m.find(static_cast<uint32_t>(s));
    return it == m.end() ? kEmptyForests : it->second;
  }

  // --- Materialization ---------------------------------------------------

  // Appends the forest sample pool_f_[tau][j][s][idx] as children of
  // `parent` in `out` (left to right).
  void MaterializeForest(uint32_t tau, size_t j, size_t s, uint32_t idx,
                         LabeledTree* out, uint32_t parent) const {
    if (j == 0) return;  // empty forest
    const ForestSample& ref = ForestPool(pool_f_[tau][j], s)[idx];
    MaterializeForest(tau, j - 1, s - ref.split, ref.prefix, out, parent);
    const Nfta::Transition& t = nfta_.transition(tau);
    MaterializeTreeInto(t.children[j - 1], ref.split, ref.tree, out, parent);
  }

  // Appends the tree sample pool_a_[q][s][idx] as a child of `parent`
  // (or as the root when parent == kNoParent).
  static constexpr uint32_t kNoParent = 0xffffffffu;
  void MaterializeTreeInto(StateId q, size_t s, uint32_t idx,
                           LabeledTree* out, uint32_t parent) const {
    const TreeSample& ref = TreePool(pool_a_[q], s)[idx];
    const Nfta::Transition& t = nfta_.transition(ref.transition);
    uint32_t node;
    if (parent == kNoParent) {
      node = out->root();
    } else {
      node = out->AddChild(parent, t.symbol);
    }
    MaterializeForest(ref.transition, t.children.size(), s - 1, ref.forest,
                      out, node);
  }

  LabeledTree MaterializeTree(StateId q, size_t s, uint32_t idx) const {
    const TreeSample& ref = TreePool(pool_a_[q], s)[idx];
    const Nfta::Transition& t = nfta_.transition(ref.transition);
    LabeledTree out(t.symbol);
    MaterializeForest(ref.transition, t.children.size(), s - 1, ref.forest,
                      &out, out.root());
    return out;
  }

  // --- Strata processing --------------------------------------------------

  // A same-symbol group of candidate transitions (see ProcessTreeStratum).
  struct Group {
    std::vector<uint32_t> taus;
    std::vector<ExtFloat> weights;
    ExtFloat weight_sum;
    ExtFloat estimate;
    std::vector<TreeSample> accepted;  // only for multi-τ groups
  };

  // The drawer mode every weighted pick in this counter routes through —
  // the single kernel-mode dispatch point.
  IndexDrawer::Mode DrawMode() const {
    if (fast_) return IndexDrawer::Mode::kAlias;
    return cached_ ? IndexDrawer::Mode::kCached : IndexDrawer::Mode::kLegacy;
  }

  obs::Histogram& BatchSizeHist() {
    if (batch_hist_ == nullptr) {
      batch_hist_ = &obs::MetricRegistry::Global().GetHistogram(
          "counting.batch_size_hist");
    }
    return *batch_hist_;
  }

  // Sentinel in a hoisted forest-pool size list: the transition is a leaf,
  // so no forest index is drawn (as opposed to 0, an empty pool).
  static constexpr size_t kLeafPool = static_cast<size_t>(-1);

  // Fast-kernel batch for the tree-stratum rejection loop: fills the SoA
  // candidate arenas with `batch` draws — one alias pick over the group's
  // transitions plus one multiply-shift forest index each — from a single
  // contiguous block of raw RNG words. cand_valid_[i] is 0 when the picked
  // transition's forest pool is empty (still counted as an attempt,
  // matching the scalar loop's `continue`). `fpool_sizes` is the hoisted
  // per-transition forest-pool size (the pools live in smaller, finalized
  // strata, so one lookup per group replaces one per trial).
  void DrawTreeBatch(const Group& g, const std::vector<size_t>& fpool_sizes,
                     size_t batch) {
    words_.resize(2 * batch);
    rng_.FillBlock(words_.data(), 2 * batch);
    ++stats_.batch_draws;
    BatchSizeHist().Observe(batch);
    cand_tau_.resize(batch);
    cand_forest_.resize(batch);
    cand_valid_.assign(batch, 0);
    for (size_t i = 0; i < batch; ++i) {
      const size_t pick =
          drawer_.DrawFromDouble(Rng::DoubleFromWord(words_[2 * i]));
      const size_t fpool_size = fpool_sizes[pick];
      uint32_t forest = 0;
      if (fpool_size != kLeafPool) {
        if (fpool_size == 0) continue;
        forest = static_cast<uint32_t>(
            Rng::BoundedFromWord(words_[2 * i + 1], fpool_size));
      }
      cand_tau_[i] = g.taus[pick];
      cand_forest_[i] = forest;
      cand_valid_[i] = 1;
    }
  }

  // A(q, s) = ∪_{τ ∈ out(q)} { α_τ-rooted trees with child forest in
  // F(τ, m_τ, s−1) }. Transitions with distinct symbols generate disjoint
  // tree sets, so the union decomposes into an exact sum over symbol groups;
  // the Karp–Luby canonical-witness estimator is only needed *within* a
  // group of same-symbol transitions (rare outside witness-choice states).
  void ProcessTreeStratum(StateId q, size_t s) {
    std::map<SymbolId, Group> groups;
    for (uint32_t tau_idx : nfta_.OutTransitions(q)) {
      const Nfta::Transition& t = nfta_.transition(tau_idx);
      const ExtFloat w = EstF(tau_idx, t.children.size(), s - 1);
      if (w.IsZero()) continue;
      Group& g = groups[t.symbol];
      g.taus.push_back(tau_idx);
      g.weights.push_back(w);
      g.weight_sum = g.weight_sum.Add(w);
    }
    if (groups.empty()) return;

    // Draws a candidate sample for transition tau (random forest ref);
    // returns false if the forest pool is empty.
    auto DrawCandidate = [&](uint32_t tau_idx, TreeSample* out) {
      const Nfta::Transition& t = nfta_.transition(tau_idx);
      out->transition = tau_idx;
      out->forest = 0;
      if (!t.children.empty()) {
        const auto& fpool =
            ForestPool(pool_f_[tau_idx][t.children.size()], s - 1);
        if (fpool.empty()) return false;
        out->forest = static_cast<uint32_t>(rng_.NextBounded(fpool.size()));
      }
      return true;
    };

    // Per-group estimates: exact for singleton groups, Karp–Luby within
    // overlapping (same-symbol) groups.
    ExtFloat total_estimate;
    for (auto& [symbol, g] : groups) {
      (void)symbol;
      if (g.taus.size() == 1) {
        g.estimate = g.weight_sum;
        total_estimate = total_estimate.Add(g.estimate);
        continue;
      }
      // One drawer build per group, reused across the whole rejection loop
      // (the legacy ablation path redoes the scan-and-scale work per draw;
      // legacy and cached both consume one NextDouble per pick, so their
      // draws are bit-identical; the alias mode is the fast tier).
      drawer_.Prepare(DrawMode(), g.weights, &stats_);
      const size_t target = pool_target_;
      const size_t max_attempts = config_.attempt_factor * target + 64;
      size_t attempts = 0;
      if (fast_) {
        // Batched SoA kernel (see the NFA twin): the whole batch counts as
        // attempts even when the target is crossed mid-batch — extra
        // canonical hits just enrich the resample pool.
        fast_fpool_sizes_.resize(g.taus.size());
        for (size_t k = 0; k < g.taus.size(); ++k) {
          const Nfta::Transition& t = nfta_.transition(g.taus[k]);
          fast_fpool_sizes_[k] =
              t.children.empty()
                  ? kLeafPool
                  : ForestPool(pool_f_[g.taus[k]][t.children.size()], s - 1)
                        .size();
        }
        while (g.accepted.size() < target && attempts < max_attempts) {
          if (Cancelled()) break;
          const size_t batch = std::min(kDrawBatch, max_attempts - attempts);
          DrawTreeBatch(g, fast_fpool_sizes_, batch);
          for (size_t i = 0; i < batch; ++i) {
            if (cand_valid_[i] == 0) continue;
            const TreeSample candidate{cand_tau_[i], cand_forest_[i]};
            if (CanonicalTransition(q, s, candidate) ==
                candidate.transition) {
              g.accepted.push_back(candidate);
            }
          }
          attempts += batch;
        }
      } else {
        while (g.accepted.size() < target && attempts < max_attempts) {
          ++attempts;
          if ((attempts & 255u) == 0 && Cancelled()) break;
          const size_t pick = drawer_.Draw(&rng_);
          TreeSample candidate;
          if (!DrawCandidate(g.taus[pick], &candidate)) continue;
          if (CanonicalTransition(q, s, candidate) == candidate.transition) {
            g.accepted.push_back(candidate);
          }
        }
      }
      stats_.attempts += attempts;
      stats_.accepted += g.accepted.size();
      if (g.accepted.empty()) {
        // Statistically negligible when attempts >> group size (acceptance
        // is >= 1/|group|); force one biased sample so a live stratum never
        // reports a false zero.
        ++stats_.forced_samples;
        const size_t pick = drawer_.Draw(&rng_);
        TreeSample forced;
        if (DrawCandidate(g.taus[pick], &forced)) {
          g.accepted.push_back(forced);
          g.estimate = g.weight_sum.Scale(
              1.0 / static_cast<double>(attempts + 1));
        }
      } else {
        g.estimate = g.weight_sum.Scale(static_cast<double>(g.accepted.size()) /
                                        static_cast<double>(attempts));
      }
      total_estimate = total_estimate.Add(g.estimate);
    }
    est_a_[q].emplace(static_cast<uint32_t>(s), total_estimate);
    if (total_estimate.IsZero()) return;

    // Pool: a mixture over groups proportional to their estimates. Samples
    // from singleton groups are drawn fresh; overlapping groups resample
    // their accepted (canonical) candidates.
    std::vector<const Group*> group_list;
    std::vector<ExtFloat> group_weights;
    for (const auto& [symbol, g] : groups) {
      (void)symbol;
      if (g.estimate.IsZero()) continue;
      group_list.push_back(&g);
      group_weights.push_back(g.estimate);
    }
    if (group_list.size() > 1) {
      drawer_.Prepare(DrawMode(), group_weights, &stats_);
    }
    auto& pool = pool_a_[q][static_cast<uint32_t>(s)];
    pool.reserve(pool_target_);
    if (fast_) {
      // Hoisted per-group draw bound: fresh-draw forest-pool size for
      // singleton groups (kLeafPool when no forest is drawn), accepted-pool
      // size otherwise — one lookup per group instead of one per entry.
      fast_fpool_sizes_.resize(group_list.size());
      for (size_t k = 0; k < group_list.size(); ++k) {
        const Group& g = *group_list[k];
        if (g.taus.size() == 1) {
          const Nfta::Transition& t = nfta_.transition(g.taus[0]);
          fast_fpool_sizes_[k] =
              t.children.empty()
                  ? kLeafPool
                  : ForestPool(pool_f_[g.taus[0]][t.children.size()], s - 1)
                        .size();
        } else {
          fast_fpool_sizes_[k] = g.accepted.size();
        }
      }
      // Batched mixture: one word for the group pick, one for the index
      // within the group (fresh forest ref for singleton groups,
      // canonical-hit resample otherwise), drawn block-at-a-time.
      for (size_t done = 0; done < pool_target_;) {
        const size_t batch = std::min(kDrawBatch, pool_target_ - done);
        words_.resize(2 * batch);
        rng_.FillBlock(words_.data(), 2 * batch);
        ++stats_.batch_draws;
        BatchSizeHist().Observe(batch);
        for (size_t i = 0; i < batch; ++i) {
          const size_t gpick =
              group_list.size() == 1
                  ? 0
                  : drawer_.DrawFromDouble(Rng::DoubleFromWord(words_[2 * i]));
          const Group& g = *group_list[gpick];
          const size_t bound = fast_fpool_sizes_[gpick];
          const uint64_t word = words_[2 * i + 1];
          if (g.taus.size() == 1) {
            uint32_t forest = 0;
            if (bound != kLeafPool) {
              if (bound == 0) continue;
              forest = static_cast<uint32_t>(Rng::BoundedFromWord(word, bound));
            }
            pool.push_back(TreeSample{g.taus[0], forest});
          } else if (bound != 0) {
            pool.push_back(g.accepted[Rng::BoundedFromWord(word, bound)]);
          }
        }
        done += batch;
      }
    } else {
      for (size_t i = 0; i < pool_target_; ++i) {
        const Group& g = group_list.size() == 1
                             ? *group_list[0]
                             : *group_list[drawer_.Draw(&rng_)];
        if (g.taus.size() == 1) {
          TreeSample sample;
          if (DrawCandidate(g.taus[0], &sample)) pool.push_back(sample);
        } else if (!g.accepted.empty()) {
          pool.push_back(g.accepted[rng_.NextBounded(g.accepted.size())]);
        }
      }
    }
    stats_.pool_entries += pool.size();
  }

  // A pooled subtree reference: the tree sample pool_a_[state][split][tree].
  struct ChildRef {
    StateId state;
    uint32_t split;
    uint32_t tree;
  };

  // Resolves the forest sample pool_f_[tau][j][s][idx] into its j child
  // subtree references, left to right, without materializing anything.
  void ResolveForest(uint32_t tau, size_t j, size_t s, uint32_t idx,
                     std::vector<ChildRef>* out) const {
    const Nfta::Transition& t = nfta_.transitions()[tau];
    out->resize(j);
    uint32_t cur_idx = idx;
    size_t cur_s = s;
    while (j > 0) {
      const ForestSample& ref = ForestPool(pool_f_[tau][j], cur_s)[cur_idx];
      (*out)[j - 1] = ChildRef{t.children[j - 1], ref.split, ref.tree};
      cur_s -= ref.split;
      cur_idx = ref.prefix;
      --j;
    }
  }

  // Memoized run-state oracle: the sorted set of states from which the
  // pooled tree pool_a_[q][s][idx] can be generated, computed recursively
  // from the derivation references (shared subtrees are simulated once; the
  // legacy path re-runs Nfta::RunStates over the whole materialized tree per
  // check). Pools referenced by a sample live in strictly smaller, already
  // finalized strata, so memo entries never invalidate within a run. Every
  // run-state set contains the pool's own state q, so an empty vector
  // doubles as the "uncomputed" sentinel. The per-node candidate enumeration
  // mirrors Nfta::RunStates exactly (same dense index, same order).
  const std::vector<StateId>& RootStates(StateId q, size_t s, uint32_t idx) {
    auto& level = root_memo_[q][static_cast<uint32_t>(s)];
    const auto& pool = TreePool(pool_a_[q], s);
    if (level.size() < pool.size()) level.resize(pool.size());
    if (!level[idx].empty()) {
      ++stats_.runstates_memo_hits;
      return level[idx];
    }
    ++stats_.runstates_memo_misses;
    const Nfta::Transition* trans = nfta_.transitions().data();
    const TreeSample& ref = pool[idx];
    const Nfta::Transition& t = trans[ref.transition];
    const size_t m = t.children.size();
    std::vector<StateId> out;
    if (m == 0) {
      for (uint32_t tau2 : nfta_.LeafTransitions(t.symbol)) {
        out.push_back(trans[tau2].from);
      }
    } else {
      // Locals (not scratch members): RootStates recurses through children.
      std::vector<ChildRef> kids;
      ResolveForest(ref.transition, m, s - 1, ref.forest, &kids);
      std::vector<const std::vector<StateId>*> sets(m);
      for (size_t i = 0; i < m; ++i) {
        // unordered_map references are stable under insertion, and the
        // level vector of a (q, s) stratum is only resized on entry for
        // that stratum — strictly-smaller recursive strata never alias it.
        sets[i] = &RootStates(kids[i].state, kids[i].split, kids[i].tree);
      }
      for (StateId first_child_state : *sets[0]) {
        for (uint32_t tau2 :
             nfta_.TransitionsWithSymbolChild0(t.symbol, first_child_state)) {
          const Nfta::Transition& cand = trans[tau2];
          if (cand.children.size() != m) continue;
          bool ok = true;
          for (size_t i = 1; i < m && ok; ++i) {
            ok = std::binary_search(sets[i]->begin(), sets[i]->end(),
                                    cand.children[i]);
          }
          if (ok) out.push_back(cand.from);
        }
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    level[idx] = std::move(out);
    return level[idx];
  }

  // --- Fast-tier membership kernel ---------------------------------------
  //
  // The fast tier answers the same run-state queries as RootStates but over
  // SoA storage: memoized sets live back to back in one contiguous StateId
  // arena (per-slot offset/length instead of one heap vector per pooled
  // sample), and the per-node candidate enumeration replaces the global
  // (symbol, child0) binary search — ~log|Δ| cache-missing probes per
  // active state — with an O(1) lookup into a per-symbol CSR index built
  // lazily on first use. Results are identical to RootStates; only the
  // constants change.

  // Arity-≥1 transitions carrying one symbol, CSR-grouped by first child
  // state (counting sort, so taus stay ascending within a child0 bucket).
  struct Child0Index {
    std::vector<uint32_t> offsets;  // NumStates() + 1 entries
    std::vector<uint32_t> taus;
  };

  const Child0Index& EnsureChild0Index(SymbolId symbol) {
    std::unique_ptr<Child0Index>& slot = child0_index_[symbol];
    if (slot != nullptr) return *slot;
    slot = std::make_unique<Child0Index>();
    const size_t S = nfta_.NumStates();
    const Nfta::Transition* trans = nfta_.transitions().data();
    slot->offsets.assign(S + 1, 0);
    size_t total = 0;
    for (uint32_t tau : nfta_.TransitionsWithSymbol(symbol)) {
      if (trans[tau].children.empty()) continue;
      ++slot->offsets[trans[tau].children[0] + 1];
      ++total;
    }
    for (size_t i = 0; i < S; ++i) slot->offsets[i + 1] += slot->offsets[i];
    slot->taus.resize(total);
    std::vector<uint32_t> cursor(slot->offsets.begin(),
                                 slot->offsets.end() - 1);
    for (uint32_t tau : nfta_.TransitionsWithSymbol(symbol)) {
      if (trans[tau].children.empty()) continue;
      slot->taus[cursor[trans[tau].children[0]]++] = tau;
    }
    return *slot;
  }

  // A memoized set is (offset, length) into memo_arena_; appends never move
  // earlier entries' offsets, so views taken after a recursive call stay
  // valid. kUnsetOff marks an uncomputed slot (a computed-but-empty set
  // stores a real offset with length 0).
  static constexpr uint32_t kUnsetOff = 0xffffffffu;
  using SetRef = std::pair<uint32_t, uint32_t>;

  // Fast-tier twin of RootStates: same memo keying, same recursion over the
  // derivation refs, same resulting sorted set. `depth` indexes reusable
  // scratch rows so the recursion allocates nothing in steady state.
  SetRef FastRootStates(StateId q, size_t s, uint32_t idx, size_t depth) {
    auto& level = fast_memo_[q][static_cast<uint32_t>(s)];
    const auto& pool = TreePool(pool_a_[q], s);
    if (level.off.size() < pool.size()) {
      level.off.resize(pool.size(), kUnsetOff);
      level.len.resize(pool.size(), 0);
    }
    if (level.off[idx] != kUnsetOff) {
      ++stats_.runstates_memo_hits;
      return {level.off[idx], level.len[idx]};
    }
    ++stats_.runstates_memo_misses;
    const Nfta::Transition* trans = nfta_.transitions().data();
    const TreeSample& ref = pool[idx];
    const Nfta::Transition& t = trans[ref.transition];
    const size_t m = t.children.size();
    std::vector<StateId>& out = fast_out_scratch_[depth];
    out.clear();
    if (m == 0) {
      for (uint32_t tau2 : nfta_.LeafTransitions(t.symbol)) {
        out.push_back(trans[tau2].from);
      }
    } else {
      std::vector<ChildRef>& kids = fast_kids_scratch_[depth];
      ResolveForest(ref.transition, m, s - 1, ref.forest, &kids);
      std::vector<SetRef>& sets = fast_sets_scratch_[depth];
      sets.resize(m);
      for (size_t i = 0; i < m; ++i) {
        sets[i] = FastRootStates(kids[i].state, kids[i].split, kids[i].tree,
                                 depth + 1);
      }
      const Child0Index& index = EnsureChild0Index(t.symbol);
      // Arena pointer taken after all recursion: appends are done.
      const StateId* arena = memo_arena_.data();
      const StateId* child0 = arena + sets[0].first;
      for (uint32_t k = 0; k < sets[0].second; ++k) {
        const StateId first_child_state = child0[k];
        const uint32_t begin = index.offsets[first_child_state];
        const uint32_t end = index.offsets[first_child_state + 1];
        for (uint32_t o = begin; o < end; ++o) {
          const Nfta::Transition& cand = trans[index.taus[o]];
          if (cand.children.size() != m) continue;
          bool ok = true;
          for (size_t i = 1; i < m && ok; ++i) {
            const StateId* b = arena + sets[i].first;
            ok = std::binary_search(b, b + sets[i].second, cand.children[i]);
          }
          if (ok) out.push_back(cand.from);
        }
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    const uint32_t off = static_cast<uint32_t>(memo_arena_.size());
    memo_arena_.insert(memo_arena_.end(), out.begin(), out.end());
    // `level` references the unordered_map's mapped node: stable under the
    // insertions the recursion performed (and same-(q, s) re-entry cannot
    // have resized the slot vectors — child strata are strictly smaller).
    level.off[idx] = off;
    level.len[idx] = static_cast<uint32_t>(out.size());
    return {off, level.len[idx]};
  }

  uint32_t CanonicalTransitionFast(StateId q, size_t s,
                                   const TreeSample& candidate) {
    const Nfta::Transition* trans = nfta_.transitions().data();
    const Nfta::Transition& t = trans[candidate.transition];
    const size_t m = t.children.size();
    ResolveForest(candidate.transition, m, s - 1, candidate.forest,
                  &child_scratch_);
    fast_top_sets_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      fast_top_sets_[i] = FastRootStates(child_scratch_[i].state,
                                         child_scratch_[i].split,
                                         child_scratch_[i].tree, 0);
    }
    const StateId* arena = memo_arena_.data();
    for (uint32_t tau_idx : nfta_.OutTransitions(q)) {
      const Nfta::Transition& cand = trans[tau_idx];
      if (cand.symbol != t.symbol || cand.children.size() != m) continue;
      bool ok = true;
      for (size_t i = 0; i < m && ok; ++i) {
        const StateId* b = arena + fast_top_sets_[i].first;
        ok = std::binary_search(b, b + fast_top_sets_[i].second,
                                cand.children[i]);
      }
      if (ok) return tau_idx;
    }
    // The candidate itself always matches; unreachable.
    PQE_CHECK(false);
    return candidate.transition;
  }

  // The canonical generating transition for the tree denoted by `candidate`
  // at stratum (q, s): the smallest-index τ' ∈ out(q) whose symbol and arity
  // match and whose child states accept the respective subtrees (decided
  // exactly by bottom-up simulation — memoized over the candidate's pooled
  // child subtrees, or from scratch on the ablation path).
  uint32_t CanonicalTransition(StateId q, size_t s,
                               const TreeSample& candidate) {
    ++stats_.membership_checks;
    if (!cached_) return CanonicalTransitionLegacy(q, s, candidate);
    if (fast_) return CanonicalTransitionFast(q, s, candidate);
    const Nfta::Transition* trans = nfta_.transitions().data();
    const Nfta::Transition& t = trans[candidate.transition];
    const size_t m = t.children.size();
    // The candidate's child subtrees are pooled samples of smaller strata;
    // their run-state sets come from the memo. Scratch reused across draws
    // (only the recursion inside RootStates needs locals).
    ResolveForest(candidate.transition, m, s - 1, candidate.forest,
                  &child_scratch_);
    set_scratch_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      set_scratch_[i] = &RootStates(child_scratch_[i].state,
                                    child_scratch_[i].split,
                                    child_scratch_[i].tree);
    }
    for (uint32_t tau_idx : nfta_.OutTransitions(q)) {
      const Nfta::Transition& cand = trans[tau_idx];
      if (cand.symbol != t.symbol || cand.children.size() != m) continue;
      bool ok = true;
      for (size_t i = 0; i < m && ok; ++i) {
        ok = std::binary_search(set_scratch_[i]->begin(),
                                set_scratch_[i]->end(), cand.children[i]);
      }
      if (ok) return tau_idx;
    }
    // The candidate itself always matches; unreachable.
    PQE_CHECK(false);
    return candidate.transition;
  }

  uint32_t CanonicalTransitionLegacy(StateId q, size_t s,
                                     const TreeSample& candidate) {
    LabeledTree tree = [&] {
      const Nfta::Transition& t = nfta_.transition(candidate.transition);
      LabeledTree out(t.symbol);
      MaterializeForest(candidate.transition, t.children.size(), s - 1,
                        candidate.forest, &out, out.root());
      return out;
    }();
    const std::vector<std::vector<StateId>> run = nfta_.RunStates(tree);
    const auto& kids = tree.children(tree.root());
    const SymbolId label = tree.label(tree.root());
    for (uint32_t tau_idx : nfta_.OutTransitions(q)) {
      const Nfta::Transition& t = nfta_.transition(tau_idx);
      if (t.symbol != label || t.children.size() != kids.size()) continue;
      bool ok = true;
      for (size_t i = 0; i < kids.size() && ok; ++i) {
        const auto& child_states = run[kids[i]];
        ok = std::binary_search(child_states.begin(), child_states.end(),
                                t.children[i]);
      }
      if (ok) return tau_idx;
    }
    // The candidate itself always matches; unreachable.
    PQE_CHECK(false);
    return candidate.transition;
  }

  // F(τ, j, s) = ⊎_split F(τ, j−1, s−split) × A(child_j, split): exact
  // disjoint sum of products; samples compose without rejection.
  void ProcessForestStratum(uint32_t tau, size_t j, size_t s) {
    const Nfta::Transition& t = nfta_.transition(tau);
    const StateId child = t.children[j - 1];
    std::vector<uint32_t> splits;
    std::vector<ExtFloat> weights;
    ExtFloat total;
    for (size_t split = 1; split <= s; ++split) {
      const ExtFloat prev = EstF(tau, j - 1, s - split);
      const ExtFloat sub = EstA(child, split);
      if (prev.IsZero() || sub.IsZero()) continue;
      ExtFloat w = prev.Mul(sub);
      splits.push_back(static_cast<uint32_t>(split));
      weights.push_back(w);
      total = total.Add(w);
    }
    est_f_[tau][j].emplace(static_cast<uint32_t>(s), total);
    if (splits.empty()) return;

    if (splits.size() > 1) {
      drawer_.Prepare(DrawMode(), weights, &stats_);
    }
    auto& pool = pool_f_[tau][j][static_cast<uint32_t>(s)];
    pool.reserve(pool_target_);
    if (fast_) {
      // The pools a draw composes from are per-split invariants of the
      // stratum (they belong to strictly smaller strata, complete by now),
      // and only their sizes are read — hoist them out of the batch loop
      // instead of re-doing two hash lookups per trial.
      fast_prev_sizes_.resize(splits.size());
      fast_tree_sizes_.resize(splits.size());
      for (size_t k = 0; k < splits.size(); ++k) {
        fast_prev_sizes_[k] =
            j - 1 > 0 ? ForestPool(pool_f_[tau][j - 1], s - splits[k]).size()
                      : 0;
        fast_tree_sizes_[k] = TreePool(pool_a_[child], splits[k]).size();
      }
      // Batched composition: one word for the split pick, one for the
      // prefix-forest index, one for the child-tree index.
      for (size_t done = 0; done < pool_target_;) {
        const size_t batch = std::min(kDrawBatch, pool_target_ - done);
        words_.resize(3 * batch);
        rng_.FillBlock(words_.data(), 3 * batch);
        ++stats_.batch_draws;
        BatchSizeHist().Observe(batch);
        for (size_t i = 0; i < batch; ++i) {
          const size_t pick =
              splits.size() == 1
                  ? 0
                  : drawer_.DrawFromDouble(Rng::DoubleFromWord(words_[3 * i]));
          uint32_t prefix_idx = 0;
          if (j - 1 > 0) {
            if (fast_prev_sizes_[pick] == 0) continue;
            prefix_idx = static_cast<uint32_t>(Rng::BoundedFromWord(
                words_[3 * i + 1], fast_prev_sizes_[pick]));
          }
          if (fast_tree_sizes_[pick] == 0) continue;
          const uint32_t tree_idx = static_cast<uint32_t>(
              Rng::BoundedFromWord(words_[3 * i + 2], fast_tree_sizes_[pick]));
          pool.push_back(ForestSample{prefix_idx, tree_idx, splits[pick]});
        }
        done += batch;
      }
    } else {
      for (size_t i = 0; i < pool_target_; ++i) {
        const uint32_t split = splits.size() == 1
                                   ? splits[0]
                                   : splits[drawer_.Draw(&rng_)];
        uint32_t prefix_idx = 0;
        if (j - 1 > 0) {
          const auto& prev_pool = ForestPool(pool_f_[tau][j - 1], s - split);
          if (prev_pool.empty()) continue;
          prefix_idx =
              static_cast<uint32_t>(rng_.NextBounded(prev_pool.size()));
        }
        const auto& tree_pool = TreePool(pool_a_[child], split);
        if (tree_pool.empty()) continue;
        const uint32_t tree_idx =
            static_cast<uint32_t>(rng_.NextBounded(tree_pool.size()));
        pool.push_back(ForestSample{prefix_idx, tree_idx, split});
      }
    }
    stats_.pool_entries += pool.size();
  }

  // --- Cancellation -------------------------------------------------------

  bool Cancelled() const { return cancel_ != nullptr && cancel_->Expired(); }

  Status DeadlineError(size_t s) const {
    return Status::DeadlineExceeded(
        "count_nfta: cancelled at size stratum " + std::to_string(s) + "/" +
        std::to_string(n_));
  }

  const Nfta& nfta_;
  const size_t n_;
  const EstimatorConfig& config_;
  Rng rng_;
  const bool fast_;    // batched fast kernels (kernel_mode = kFast)
  const bool cached_;  // hot-path caches on (off = ablation baseline)
  const CancelToken* cancel_;
  size_t pool_target_ = 0;
  CountStats stats_;

  // Hot-path scratch, reused across draws and strata.
  IndexDrawer drawer_;
  std::vector<ChildRef> child_scratch_;
  std::vector<const std::vector<StateId>*> set_scratch_;
  // Fast-kernel SoA arenas, sized to one batch and reused across batches.
  std::vector<uint64_t> words_;        // raw block-RNG output
  std::vector<uint32_t> cand_tau_;     // candidate transition per attempt
  std::vector<uint32_t> cand_forest_;  // candidate forest index per attempt
  std::vector<uint8_t> cand_valid_;    // 0 = the forest pool was empty
  obs::Histogram* batch_hist_ = nullptr;  // lazy counting.batch_size_hist
  // root_memo_[q]{s}[pool idx] -> sorted run-state set of the pooled tree.
  std::vector<std::unordered_map<uint32_t, std::vector<std::vector<StateId>>>>
      root_memo_;
  // Fast-tier membership kernel state (see FastRootStates): the SoA memo —
  // per-slot (offset, length) views into one shared arena — plus the lazy
  // per-symbol candidate indexes and the per-depth recursion scratch rows.
  struct FastMemoLevel {
    std::vector<uint32_t> off;  // kUnsetOff = uncomputed
    std::vector<uint32_t> len;
  };
  std::vector<std::unordered_map<uint32_t, FastMemoLevel>> fast_memo_;
  std::vector<StateId> memo_arena_;
  std::vector<std::unique_ptr<Child0Index>> child0_index_;  // [symbol]
  std::vector<std::vector<StateId>> fast_out_scratch_;      // [depth]
  std::vector<std::vector<ChildRef>> fast_kids_scratch_;    // [depth]
  std::vector<std::vector<SetRef>> fast_sets_scratch_;      // [depth]
  std::vector<SetRef> fast_top_sets_;
  // Hoisted per-stratum pool sizes for the batched trial loops (see
  // kLeafPool); scratch reused across strata.
  std::vector<size_t> fast_fpool_sizes_;
  std::vector<size_t> fast_prev_sizes_;
  std::vector<size_t> fast_tree_sizes_;

  std::vector<std::vector<bool>> fwd_a_;                // [q][s]
  std::vector<std::vector<uint32_t>> fwd_a_sizes_;      // sparse live sizes
  std::vector<std::vector<std::vector<bool>>> fwd_f_;   // [τ][j][s]
  std::vector<std::vector<std::vector<uint32_t>>> fwd_f_sizes_;
  std::vector<std::vector<bool>> bwd_a_;
  std::vector<std::vector<std::vector<bool>>> bwd_f_;
  // Live strata per size, in the dense scan's visit order (BuildLiveLists).
  std::vector<std::vector<StateId>> live_a_by_s_;
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> live_f_by_s_;
  // Sparse per-stratum tables, keyed by size.
  std::vector<std::unordered_map<uint32_t, ExtFloat>> est_a_;  // [q]{s}
  std::vector<std::unordered_map<uint32_t, std::vector<TreeSample>>> pool_a_;
  std::vector<std::vector<std::unordered_map<uint32_t, ExtFloat>>>
      est_f_;  // [τ][j]{s}
  std::vector<std::vector<
      std::unordered_map<uint32_t, std::vector<ForestSample>>>>
      pool_f_;
};

}  // namespace

Result<NftaSampleResult> CountAndSampleNftaTrees(
    const Nfta& nfta, size_t n, const EstimatorConfig& config,
    size_t num_samples) {
  if (config.epsilon <= 0.0 || config.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  PQE_TRACE_SPAN_VAR(span, "count.nfta");
  span.AttrUint("states", nfta.NumStates());
  span.AttrUint("transitions", nfta.NumTransitions());
  span.AttrUint("tree_size", n);
  span.AttrUint("samples_requested", num_samples);
  NftaCounter counter(nfta, n, config);
  NftaSampleResult out;
  PQE_ASSIGN_OR_RETURN(out.estimate, counter.Run());
  out.samples = counter.SampleAccepted(num_samples);
  RecordCountRun("pqe.count_nfta", out.estimate.stats,
                 !config.disable_hotpath_caches, config.kernel_mode, &span);
  return out;
}

Result<CountEstimate> CountNftaTrees(const Nfta& nfta, size_t n,
                                     const EstimatorConfig& config) {
  if (config.epsilon <= 0.0 || config.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  const size_t reps = std::max<size_t>(config.repetitions, 1);
  PQE_TRACE_SPAN_VAR(span, "count.nfta");
  span.AttrUint("states", nfta.NumStates());
  span.AttrUint("transitions", nfta.NumTransitions());
  span.AttrUint("tree_size", n);
  span.AttrUint("repetitions", reps);
  if (reps == 1) {
    NftaCounter counter(nfta, n, config);
    PQE_ASSIGN_OR_RETURN(CountEstimate est, counter.Run());
    RecordCountRun("pqe.count_nfta", est.stats,
                   !config.disable_hotpath_caches, config.kernel_mode, &span);
    return est;
  }
  // Median-of-R amplification over independent seeds — the standard FPRAS
  // confidence boost. Repetitions are independent (per-rep seed, per-rep
  // counter state), so they fan out over the shared pool; each rep writes
  // its own slot and the merge below runs in fixed rep order, keeping the
  // median and the aggregate stats bit-identical across thread counts.
  const size_t threads =
      std::min(ThreadPool::ResolveNumThreads(config.num_threads), reps);
  span.AttrUint("threads", threads);
  // The membership oracle's lazy index must exist before the const automaton
  // is shared across workers (building it mutates `mutable` members).
  nfta.WarmRunIndex();
  std::vector<CountEstimate> runs(reps);
  std::vector<Status> rep_status(reps, Status::OK());
  auto& rep_hist =
      obs::MetricRegistry::Global().GetHistogram("pqe.count_nfta.rep_ns");
  ParallelFor(threads, reps, [&](size_t r) {
    // Per-rep spans only on the serial path: sessions are thread-local, so
    // worker-run reps would attach nothing, and the caller-participating
    // parallel path would trace a scheduling-dependent subset. Parallel
    // runs record per-rep timings through the (atomic) histogram instead.
    std::optional<obs::ScopedSpan> rep_span;
    if (threads == 1) {
      rep_span.emplace("count.nfta.rep");
      rep_span->AttrUint("rep", r);
    }
    const auto start = std::chrono::steady_clock::now();
    EstimatorConfig rep_config = config;
    rep_config.repetitions = 1;
    rep_config.seed = Rng::DeriveSeed(config.seed, r);
    NftaCounter counter(nfta, n, rep_config);
    Result<CountEstimate> est = counter.Run();
    if (!est.ok()) {
      rep_status[r] = est.status();
      return;
    }
    if (rep_span) rep_span->AttrFloat("log2_value", est->value.Log2());
    runs[r] = est.MoveValue();
    rep_hist.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  });
  for (const Status& st : rep_status) PQE_RETURN_IF_ERROR(st);
  CountStats aggregate;
  for (const CountEstimate& est : runs) {
    aggregate.strata_total = est.stats.strata_total;
    aggregate.strata_live = est.stats.strata_live;
    aggregate.pool_entries += est.stats.pool_entries;
    aggregate.attempts += est.stats.attempts;
    aggregate.accepted += est.stats.accepted;
    aggregate.forced_samples += est.stats.forced_samples;
    aggregate.membership_checks += est.stats.membership_checks;
    aggregate.picker_builds += est.stats.picker_builds;
    aggregate.alias_builds += est.stats.alias_builds;
    aggregate.batch_draws += est.stats.batch_draws;
    aggregate.runstates_memo_hits += est.stats.runstates_memo_hits;
    aggregate.runstates_memo_misses += est.stats.runstates_memo_misses;
  }
  std::sort(runs.begin(), runs.end(),
            [](const CountEstimate& a, const CountEstimate& b) {
              return a.value < b.value;
            });
  CountEstimate out = runs[runs.size() / 2];
  out.stats = aggregate;
  RecordCountRun("pqe.count_nfta", out.stats,
                 !config.disable_hotpath_caches, config.kernel_mode, &span);
  return out;
}

}  // namespace pqe
