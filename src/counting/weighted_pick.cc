#include "counting/weighted_pick.h"

#include <cmath>

#include "util/check.h"

namespace pqe {

ExtFloat SumExtFloats(const std::vector<ExtFloat>& weights) {
  ExtFloat sum;
  for (const ExtFloat& w : weights) sum = sum.Add(w);
  return sum;
}

size_t PickWeightedIndex(Rng* rng, const std::vector<ExtFloat>& weights) {
  PQE_CHECK(!weights.empty());
  // Renormalize by the maximum weight so the double conversions are stable.
  size_t max_idx = 0;
  for (size_t i = 1; i < weights.size(); ++i) {
    if (weights[max_idx] < weights[i]) max_idx = i;
  }
  PQE_CHECK(!weights[max_idx].IsZero());
  const double max_log = weights[max_idx].Log2();
  std::vector<double> scaled(weights.size(), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i].IsZero()) continue;
    const double rel = weights[i].Log2() - max_log;
    scaled[i] = rel < -512.0 ? 0.0 : std::exp2(rel);
  }
  return rng->NextDiscrete(scaled);
}

}  // namespace pqe
