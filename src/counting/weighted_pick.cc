#include "counting/weighted_pick.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pqe {

ExtFloat SumExtFloats(const std::vector<ExtFloat>& weights) {
  ExtFloat sum;
  for (const ExtFloat& w : weights) sum = sum.Add(w);
  return sum;
}

size_t PickWeightedIndex(Rng* rng, const std::vector<ExtFloat>& weights) {
  PQE_CHECK(!weights.empty());
  // Renormalize by the maximum weight so the double conversions are stable.
  size_t max_idx = 0;
  for (size_t i = 1; i < weights.size(); ++i) {
    if (weights[max_idx] < weights[i]) max_idx = i;
  }
  PQE_CHECK(!weights[max_idx].IsZero());
  const double max_log = weights[max_idx].Log2();
  std::vector<double> scaled(weights.size(), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i].IsZero()) continue;
    const double rel = weights[i].Log2() - max_log;
    scaled[i] = rel < -512.0 ? 0.0 : std::exp2(rel);
  }
  return rng->NextDiscrete(scaled);
}

void WeightedPicker::Build(const std::vector<ExtFloat>& weights) {
  PQE_CHECK(!weights.empty());
  // Identical renormalization to PickWeightedIndex: scale by the maximum
  // weight so the double conversions are stable.
  size_t max_idx = 0;
  for (size_t i = 1; i < weights.size(); ++i) {
    if (weights[max_idx] < weights[i]) max_idx = i;
  }
  PQE_CHECK(!weights[max_idx].IsZero());
  const double max_log = weights[max_idx].Log2();
  cum_.clear();
  cum_.reserve(weights.size());
  last_nonzero_ = weights.size() - 1;
  // The running sum accumulates the scaled weights in index order — the
  // same operation sequence Rng::NextDiscrete performs per draw, so the
  // partial sums (and therefore every pick) match it bit for bit.
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    double scaled = 0.0;
    if (!weights[i].IsZero()) {
      const double rel = weights[i].Log2() - max_log;
      scaled = rel < -512.0 ? 0.0 : std::exp2(rel);
      PQE_CHECK(scaled >= 0.0 && std::isfinite(scaled));
      if (scaled > 0.0) last_nonzero_ = i;
    }
    acc += scaled;
    cum_.push_back(acc);
  }
  total_ = acc;
  PQE_CHECK(total_ > 0.0);
}

size_t WeightedPicker::Pick(Rng* rng) const {
  PQE_CHECK(!cum_.empty());
  const double x = rng->NextDouble() * total_;
  // First index whose inclusive prefix sum exceeds x — the same index the
  // legacy linear scan (`first i with x < acc`) returns.
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), x);
  if (it != cum_.end()) {
    return static_cast<size_t>(it - cum_.begin());
  }
  // Floating-point edge (x >= total despite NextDouble < 1): match the
  // legacy fallback to the last index with non-zero weight.
  return last_nonzero_;
}

}  // namespace pqe
