#include "counting/weighted_pick.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "counting/config.h"
#include "util/result.h"
#include "util/check.h"

namespace pqe {

namespace {

// Index of the maximum weight, or InvalidArgument naming `context` when the
// table is empty or all-zero — the shared precondition of every sampler
// here (a draw from an all-zero table has no defined distribution).
Result<size_t> MaxWeightIndex(const std::vector<ExtFloat>& weights,
                              const char* context) {
  if (weights.empty()) {
    return Status::InvalidArgument(std::string(context) +
                                   ": empty weight table");
  }
  size_t max_idx = 0;
  for (size_t i = 1; i < weights.size(); ++i) {
    if (weights[max_idx] < weights[i]) max_idx = i;
  }
  if (weights[max_idx].IsZero()) {
    return Status::InvalidArgument(std::string(context) + ": all " +
                                   std::to_string(weights.size()) +
                                   " weights are zero");
  }
  return max_idx;
}

}  // namespace

ExtFloat SumExtFloats(const std::vector<ExtFloat>& weights) {
  ExtFloat sum;
  for (const ExtFloat& w : weights) sum = sum.Add(w);
  return sum;
}

size_t PickWeightedIndex(Rng* rng, const std::vector<ExtFloat>& weights) {
  PQE_CHECK(!weights.empty());
  // Renormalize by the maximum weight so the double conversions are stable.
  size_t max_idx = 0;
  for (size_t i = 1; i < weights.size(); ++i) {
    if (weights[max_idx] < weights[i]) max_idx = i;
  }
  PQE_CHECK(!weights[max_idx].IsZero());
  const double max_log = weights[max_idx].Log2();
  std::vector<double> scaled(weights.size(), 0.0);
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i].IsZero()) continue;
    const double rel = weights[i].Log2() - max_log;
    scaled[i] = rel < -512.0 ? 0.0 : std::exp2(rel);
  }
  return rng->NextDiscrete(scaled);
}

void WeightedPicker::Build(const std::vector<ExtFloat>& weights,
                           const char* context) {
  PQE_CHECK_OK(TryBuild(weights, context));
}

Status WeightedPicker::TryBuild(const std::vector<ExtFloat>& weights,
                                const char* context) {
  cum_.clear();
  total_ = 0.0;
  last_nonzero_ = 0;
  // Identical renormalization to PickWeightedIndex: scale by the maximum
  // weight so the double conversions are stable.
  PQE_ASSIGN_OR_RETURN(const size_t max_idx, MaxWeightIndex(weights, context));
  const double max_log = weights[max_idx].Log2();
  cum_.reserve(weights.size());
  last_nonzero_ = weights.size() - 1;
  // The running sum accumulates the scaled weights in index order — the
  // same operation sequence Rng::NextDiscrete performs per draw, so the
  // partial sums (and therefore every pick) match it bit for bit.
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    double scaled = 0.0;
    if (!weights[i].IsZero()) {
      const double rel = weights[i].Log2() - max_log;
      scaled = rel < -512.0 ? 0.0 : std::exp2(rel);
      PQE_CHECK(scaled >= 0.0 && std::isfinite(scaled));
      if (scaled > 0.0) last_nonzero_ = i;
    }
    acc += scaled;
    cum_.push_back(acc);
  }
  total_ = acc;
  max_log_ = max_log;
  PQE_CHECK(total_ > 0.0);
  return Status();
}

Status WeightedPicker::UpdateWeight(const std::vector<ExtFloat>& weights,
                                    size_t index) {
  static const char* kContext = "WeightedPicker::UpdateWeight";
  if (weights.size() != cum_.size()) {
    return Status::InvalidArgument(
        std::string(kContext) + ": table size " +
        std::to_string(weights.size()) + " != built size " +
        std::to_string(cum_.size()));
  }
  if (index >= weights.size()) {
    return Status::InvalidArgument(std::string(kContext) + ": index " +
                                   std::to_string(index) + " out of range");
  }
  PQE_ASSIGN_OR_RETURN(const size_t max_idx,
                       MaxWeightIndex(weights, kContext));
  const double max_log = weights[max_idx].Log2();
  if (max_log != max_log_) {
    // The renormalization scale changed: every scaled weight moves, so the
    // prefix sums before `index` are stale too — full rebuild.
    return TryBuild(weights, kContext);
  }
  // Same scale: prefix sums before `index` are exactly what a full TryBuild
  // would recompute, so resume the running sum there and replay Build's
  // summation (same formula, same order) over the suffix. The resulting
  // table is bit-identical to TryBuild over the updated weights.
  double acc = index == 0 ? 0.0 : cum_[index - 1];
  for (size_t i = index; i < weights.size(); ++i) {
    double scaled = 0.0;
    if (!weights[i].IsZero()) {
      const double rel = weights[i].Log2() - max_log;
      scaled = rel < -512.0 ? 0.0 : std::exp2(rel);
      PQE_CHECK(scaled >= 0.0 && std::isfinite(scaled));
    }
    acc += scaled;
    cum_[i] = acc;
  }
  total_ = acc;
  // Replay Build's last_nonzero_ rule over the whole table: scaled > 0 iff
  // the weight is non-zero and above the exp2 underflow cutoff (exp2 of any
  // rel >= -512 is strictly positive).
  last_nonzero_ = weights.size() - 1;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!weights[i].IsZero() && weights[i].Log2() - max_log >= -512.0) {
      last_nonzero_ = i;
    }
  }
  PQE_CHECK(total_ > 0.0);
  return Status();
}

size_t WeightedPicker::Pick(Rng* rng) const {
  PQE_CHECK(!cum_.empty());
  const double x = rng->NextDouble() * total_;
  // First index whose inclusive prefix sum exceeds x — the same index the
  // legacy linear scan (`first i with x < acc`) returns.
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), x);
  if (it != cum_.end()) {
    return static_cast<size_t>(it - cum_.begin());
  }
  // Floating-point edge (x >= total despite NextDouble < 1): match the
  // legacy fallback to the last index with non-zero weight.
  return last_nonzero_;
}

void AliasPicker::Build(const std::vector<ExtFloat>& weights,
                        const char* context) {
  PQE_CHECK_OK(TryBuild(weights, context));
}

Status AliasPicker::TryBuild(const std::vector<ExtFloat>& weights,
                             const char* context) {
  prob_.clear();
  alias_.clear();
  PQE_ASSIGN_OR_RETURN(const size_t max_idx, MaxWeightIndex(weights, context));
  PQE_CHECK(weights.size() <= UINT32_MAX);  // alias_ stores 32-bit indexes
  const double max_log = weights[max_idx].Log2();
  const size_t n = weights.size();
  // Scaled weights (same max-renormalization as WeightedPicker), then
  // normalized in place so prob_[i] = n * w[i] / Σw — the Vose "column
  // height" against a uniform grid of n columns.
  prob_.resize(n, 0.0);
  alias_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double scaled = 0.0;
    if (!weights[i].IsZero()) {
      const double rel = weights[i].Log2() - max_log;
      scaled = rel < -512.0 ? 0.0 : std::exp2(rel);
    }
    prob_[i] = scaled;
    total += scaled;
  }
  PQE_CHECK(total > 0.0);
  const double norm = static_cast<double>(n) / total;
  for (size_t i = 0; i < n; ++i) prob_[i] *= norm;

  // Vose construction: pair each under-full column with an over-full donor.
  // Zero-weight columns enter `small` with height 0, get an alias, and are
  // never selected directly (frac < 0 is impossible).
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (prob_[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    alias_[s] = l;
    // Donor keeps whatever height the under-full column did not take.
    prob_[l] = (prob_[l] + prob_[s]) - 1.0;
    (prob_[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are full columns up to floating-point drift: they accept
  // themselves always.
  for (const uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (const uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  return Status();
}

void IndexDrawer::Prepare(Mode mode, const std::vector<ExtFloat>& weights,
                          CountStats* stats) {
  mode_ = mode;
  weights_ = &weights;
  switch (mode) {
    case Mode::kCached:
      picker_.Build(weights);
      if (stats != nullptr) ++stats->picker_builds;
      break;
    case Mode::kAlias:
      alias_.Build(weights);
      if (stats != nullptr) ++stats->alias_builds;
      break;
    case Mode::kLegacy:
      break;
  }
}

}  // namespace pqe
