#ifndef PQE_COUNTING_COUNT_NFA_H_
#define PQE_COUNTING_COUNT_NFA_H_

#include <cstddef>

#include "automata/nfa.h"
#include "counting/config.h"
#include "util/result.h"

namespace pqe {

/// CountNFA (Section 2, citing Arenas et al., JACM '21): approximates
/// |L_n(M)|, the number of strings of length exactly n accepted by the NFA,
/// within (1 ± ε) with high probability, in time poly(n, |M|, 1/ε).
///
/// Implementation: length-stratified dynamic programming. For each state q
/// and length l, the algorithm maintains an estimate of |A(q, l)| (strings of
/// length l that can drive some initial state to q) together with a pool of
/// (near-)uniform samples. A(q, l) = ∪_{(p,a,q)∈δ} A(p, l−1)·a is a union of
/// overlapping sets, estimated Karp–Luby style: sample a predecessor
/// transition proportional to its estimate, extend a pooled sample, and
/// accept iff the chosen transition is the *canonical* one for the resulting
/// string — decided exactly by subset simulation (membership in A(p, l−1) is
/// "p is reachable on the prefix", a poly-time oracle). The final answer
/// applies the same estimator to the union over accepting states.
Result<CountEstimate> CountNfaStrings(const Nfa& nfa, size_t n,
                                      const EstimatorConfig& config);

}  // namespace pqe

#endif  // PQE_COUNTING_COUNT_NFA_H_
