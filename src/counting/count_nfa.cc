#include "counting/count_nfa.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <vector>

#include "counting/weighted_pick.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pqe {

namespace {

// Attempts drawn per block-RNG batch in the fast kernels: 2 raw words per
// attempt (one for the weighted pick, one for the prefix index), so a batch
// is a 4 KiB buffer — resident in L1 while the acceptance pass runs.
constexpr size_t kDrawBatch = 256;

// A pooled sample of A(q, l), stored as a derivation reference: the incoming
// transition taken and the index of the prefix sample in the predecessor
// stratum's pool. Strings are materialized on demand (O(l)), so pools cost
// O(1) memory per sample.
struct SampleRef {
  uint32_t transition = 0;  // index into nfa.transitions()
  uint32_t prefix = 0;      // index into pool[from][l-1]
};

class NfaCounter {
 public:
  NfaCounter(const Nfa& nfa, size_t n, const EstimatorConfig& config)
      : nfa_(nfa),
        n_(n),
        config_(config),
        rng_(config.seed),
        fast_(config.kernel_mode == KernelMode::kFast),
        cached_(fast_ || !config.disable_hotpath_caches),
        cancel_(config.cancel) {}

  Result<CountEstimate> Run() {
    const size_t S = nfa_.NumStates();
    if (nfa_.initial_states().empty()) {
      return CountEstimate{ExtFloat(), stats_};
    }
    if (Cancelled()) return DeadlineError(0);
    pool_target_ = config_.ResolvePoolSize(n_);
    if (cached_) reach_memo_.assign(n_ + 1, MemoLevel(S));

    ComputeFeasibility();

    est_.assign(n_ + 1, std::vector<ExtFloat>(S));
    pools_.assign(n_ + 1, std::vector<std::vector<SampleRef>>(S));
    // Level 0: A(q, 0) = {λ} iff q is initial.
    for (StateId q = 0; q < S; ++q) {
      if (nfa_.IsInitial(q) && live_[0][q]) {
        est_[0][q] = ExtFloat::FromUint64(1);
        pools_[0][q].push_back(SampleRef{});  // the empty string
      }
    }
    for (size_t l = 1; l <= n_; ++l) {
      // One cancellation poll per length stratum, plus finer-grained polls
      // in the rejection loops (an attempt budget can dominate a stratum).
      if (Cancelled()) return DeadlineError(l);
      for (StateId q = 0; q < S; ++q) {
        if (live_[l][q]) ProcessStratum(q, l);
      }
      if (cancel_ != nullptr) cancel_->AddProgress(1);
    }
    // A rejection loop may have bailed out mid-stratum on an expired token;
    // the partial tables must not be read as an estimate.
    if (Cancelled()) return DeadlineError(n_);
    return Finalize();
  }

 private:
  // live_[l][q]: A(q, l) is non-empty AND the stratum can still contribute to
  // an accepting state at length n (forward-feasible ∧ backward-useful).
  void ComputeFeasibility() {
    const size_t S = nfa_.NumStates();
    std::vector<std::vector<bool>> fwd(n_ + 1, std::vector<bool>(S, false));
    for (StateId q : nfa_.initial_states()) fwd[0][q] = true;
    for (size_t l = 1; l <= n_; ++l) {
      for (const Nfa::Transition& t : nfa_.transitions()) {
        if (fwd[l - 1][t.from]) fwd[l][t.to] = true;
      }
    }
    std::vector<std::vector<bool>> bwd(n_ + 1, std::vector<bool>(S, false));
    if (config_.disable_backward_pruning) {
      bwd = fwd;  // ablation mode: no usefulness pruning
    } else {
      for (StateId q = 0; q < S; ++q) {
        if (nfa_.IsAccepting(q)) bwd[n_][q] = true;
      }
      for (size_t l = n_; l-- > 0;) {
        for (const Nfa::Transition& t : nfa_.transitions()) {
          if (bwd[l + 1][t.to]) bwd[l][t.from] = true;
        }
      }
    }
    live_.assign(n_ + 1, std::vector<bool>(S, false));
    for (size_t l = 0; l <= n_; ++l) {
      for (StateId q = 0; q < S; ++q) {
        live_[l][q] = fwd[l][q] && bwd[l][q];
        ++stats_.strata_total;
        if (live_[l][q]) ++stats_.strata_live;
      }
    }
  }

  // Materializes the string of pools_[l][q][idx] (length l).
  std::vector<SymbolId> Materialize(StateId q, size_t l, uint32_t idx) const {
    std::vector<SymbolId> out(l);
    size_t cur_l = l;
    StateId cur_q = q;
    uint32_t cur_idx = idx;
    while (cur_l > 0) {
      const SampleRef& ref = pools_[cur_l][cur_q][cur_idx];
      const Nfa::Transition& t = nfa_.transitions()[ref.transition];
      out[cur_l - 1] = t.symbol;
      cur_q = t.from;
      cur_idx = ref.prefix;
      --cur_l;
    }
    return out;
  }

  // Memoized membership oracle: the sorted set of states the automaton can
  // be in after reading the string of pools_[l][q][idx], keyed by the
  // derivation reference itself — pools are append-only and only finalized
  // strata are referenced, so entries never invalidate within a run. Shared
  // prefixes across draws (and across strata: every ref chain ends in the
  // same low strata) are simulated once instead of per check. Every reach
  // set contains q, so an empty vector doubles as the "uncomputed" sentinel.
  const std::vector<StateId>& ReachStates(StateId q, size_t l, uint32_t idx) {
    const Nfa::Transition* trans = nfa_.transitions().data();
    // Walk the ref chain down to the first memoized suffix (or level 0),
    // recording the uncomputed links.
    chain_.clear();
    size_t cur_l = l;
    StateId cur_q = q;
    uint32_t cur_idx = idx;
    while (true) {
      std::vector<std::vector<StateId>>& slots = reach_memo_[cur_l][cur_q];
      if (slots.size() < pools_[cur_l][cur_q].size()) {
        slots.resize(pools_[cur_l][cur_q].size());
      }
      if (cur_l == 0) {
        if (slots[cur_idx].empty()) {
          ++stats_.runstates_memo_misses;
          std::vector<StateId> base = nfa_.initial_states();
          std::sort(base.begin(), base.end());
          slots[cur_idx] = std::move(base);
        } else {
          ++stats_.runstates_memo_hits;
        }
        break;
      }
      if (!slots[cur_idx].empty()) {
        ++stats_.runstates_memo_hits;
        break;
      }
      ++stats_.runstates_memo_misses;
      chain_.push_back(ChainLink{cur_l, cur_q, cur_idx});
      const SampleRef& ref = pools_[cur_l][cur_q][cur_idx];
      const Nfa::Transition& t = trans[ref.transition];
      cur_q = t.from;
      cur_idx = ref.prefix;
      --cur_l;
    }
    // Replay upward: one subset-simulation step per uncomputed link.
    for (size_t i = chain_.size(); i-- > 0;) {
      const ChainLink& link = chain_[i];
      const SampleRef& ref = pools_[link.l][link.q][link.idx];
      const Nfa::Transition& t = trans[ref.transition];
      const std::vector<StateId>& prev =
          reach_memo_[link.l - 1][t.from][ref.prefix];
      nfa_.ActiveStep(prev, t.symbol, &step_scratch_);
      reach_memo_[link.l][link.q][link.idx] = step_scratch_;
    }
    return reach_memo_[l][q][idx];
  }

  // A same-symbol group of incoming transitions (see ProcessStratum).
  struct Group {
    std::vector<uint32_t> transitions;
    std::vector<ExtFloat> weights;
    ExtFloat weight_sum;
    ExtFloat estimate;
    std::vector<SampleRef> accepted;
  };

  // The drawer mode every weighted pick in this counter routes through —
  // the single kernel-mode dispatch point.
  IndexDrawer::Mode DrawMode() const {
    if (fast_) return IndexDrawer::Mode::kAlias;
    return cached_ ? IndexDrawer::Mode::kCached : IndexDrawer::Mode::kLegacy;
  }

  // Canonical check: the chosen transition must be the first (by transition
  // index) in the group whose predecessor state can be reached on the
  // sampled prefix — decided exactly by simulation (memoized over the
  // derivation ref; the legacy ablation path re-simulates the materialized
  // prefix from scratch).
  bool IsCanonical(const Group& g, const SampleRef& candidate, size_t l) {
    const Nfa::Transition* trans = nfa_.transitions().data();
    const Nfa::Transition& t = trans[candidate.transition];
    ++stats_.membership_checks;
    std::vector<StateId> reach_storage;
    const std::vector<StateId>* reach;
    if (cached_) {
      reach = &ReachStates(t.from, l - 1, candidate.prefix);
    } else {
      reach_storage = nfa_.ActiveStatesAfter(
          Materialize(t.from, l - 1, candidate.prefix));
      reach = &reach_storage;
    }
    uint32_t canonical = candidate.transition;
    for (uint32_t other_idx : g.transitions) {
      const Nfa::Transition& o = trans[other_idx];
      if (std::binary_search(reach->begin(), reach->end(), o.from)) {
        canonical = other_idx;
        break;
      }
    }
    return canonical == candidate.transition;
  }

  // Fast-kernel batch: fills the SoA candidate arenas with `batch` draws —
  // one alias pick plus one multiply-shift prefix index each — from a single
  // contiguous block of raw RNG words. cand_valid_[i] is 0 when the picked
  // transition's predecessor pool is empty (still counted as an attempt,
  // matching the scalar loop's `continue`).
  void DrawCandidateBatch(const std::vector<uint32_t>& transitions,
                          size_t batch, size_t l) {
    const Nfa::Transition* trans = nfa_.transitions().data();
    words_.resize(2 * batch);
    rng_.FillBlock(words_.data(), 2 * batch);
    ++stats_.batch_draws;
    BatchSizeHist().Observe(batch);
    cand_trans_.resize(batch);
    cand_prefix_.resize(batch);
    cand_valid_.assign(batch, 0);
    for (size_t i = 0; i < batch; ++i) {
      const size_t pick =
          drawer_.DrawFromDouble(Rng::DoubleFromWord(words_[2 * i]));
      const uint32_t trans_idx = transitions[pick];
      const auto& prev_pool = pools_[l - 1][trans[trans_idx].from];
      if (prev_pool.empty()) continue;
      cand_trans_[i] = trans_idx;
      cand_prefix_[i] = static_cast<uint32_t>(
          Rng::BoundedFromWord(words_[2 * i + 1], prev_pool.size()));
      cand_valid_[i] = 1;
    }
  }

  obs::Histogram& BatchSizeHist() {
    if (batch_hist_ == nullptr) {
      batch_hist_ = &obs::MetricRegistry::Global().GetHistogram(
          "counting.batch_size_hist");
    }
    return *batch_hist_;
  }

  // Stratum estimate for A(q, l) = ∪_t A(from(t), l−1)·symbol(t).
  // Transitions with distinct symbols append distinct last characters, so
  // the union decomposes into an exact sum over symbol groups; only within
  // a group of same-symbol incoming transitions is the Karp–Luby canonical-
  // witness estimator (with its exact prefix-membership oracle) needed.
  void ProcessStratum(StateId q, size_t l) {
    const Nfa::Transition* trans = nfa_.transitions().data();
    std::map<SymbolId, Group> groups;
    for (uint32_t idx : nfa_.InTransitions(q)) {
      const Nfa::Transition& t = trans[idx];
      if (!live_[l - 1][t.from]) continue;
      const ExtFloat& w = est_[l - 1][t.from];
      if (w.IsZero()) continue;
      Group& g = groups[t.symbol];
      g.transitions.push_back(idx);
      g.weights.push_back(w);
      g.weight_sum = g.weight_sum.Add(w);
    }
    if (groups.empty()) return;  // estimate stays 0

    auto DrawRef = [&](uint32_t trans_idx, SampleRef* out) {
      const Nfa::Transition& t = trans[trans_idx];
      const auto& prev_pool = pools_[l - 1][t.from];
      if (prev_pool.empty()) return false;
      out->transition = trans_idx;
      out->prefix =
          static_cast<uint32_t>(rng_.NextBounded(prev_pool.size()));
      return true;
    };

    ExtFloat total_estimate;
    for (auto& [symbol, g] : groups) {
      (void)symbol;
      if (g.transitions.size() == 1) {
        g.estimate = g.weight_sum;  // no overlap possible
        total_estimate = total_estimate.Add(g.estimate);
        continue;
      }
      // One drawer build per group, reused across the whole rejection loop
      // (the legacy ablation path redoes the scan-and-scale work per draw;
      // legacy and cached both consume one NextDouble per pick, so their
      // draws are bit-identical; the alias mode is the fast tier).
      drawer_.Prepare(DrawMode(), g.weights, &stats_);
      const size_t max_attempts = config_.attempt_factor * pool_target_ + 64;
      size_t attempts = 0;
      if (fast_) {
        // Batched SoA kernel: draw a block of candidates at once, then run
        // the acceptance pass over the contiguous arenas. The whole batch
        // counts as attempts even when the pool target is crossed mid-batch
        // — the extra canonical hits just enrich the resample pool, and
        // accepted/attempts stays a per-attempt acceptance-rate estimate.
        while (g.accepted.size() < pool_target_ && attempts < max_attempts) {
          if (Cancelled()) break;
          const size_t batch = std::min(kDrawBatch, max_attempts - attempts);
          DrawCandidateBatch(g.transitions, batch, l);
          for (size_t i = 0; i < batch; ++i) {
            if (cand_valid_[i] == 0) continue;
            const SampleRef candidate{cand_trans_[i], cand_prefix_[i]};
            if (IsCanonical(g, candidate, l)) g.accepted.push_back(candidate);
          }
          attempts += batch;
        }
      } else {
        while (g.accepted.size() < pool_target_ && attempts < max_attempts) {
          ++attempts;
          if ((attempts & 255u) == 0 && Cancelled()) break;
          const size_t pick = drawer_.Draw(&rng_);
          SampleRef candidate;
          if (!DrawRef(g.transitions[pick], &candidate)) continue;
          if (IsCanonical(g, candidate, l)) g.accepted.push_back(candidate);
        }
      }
      stats_.attempts += attempts;
      stats_.accepted += g.accepted.size();
      if (g.accepted.empty()) {
        // Statistically negligible when attempts >> group size (acceptance
        // is >= 1/|group|); force one biased sample so a live stratum never
        // reports a false zero.
        ++stats_.forced_samples;
        const size_t pick = drawer_.Draw(&rng_);
        SampleRef forced;
        if (DrawRef(g.transitions[pick], &forced)) {
          g.accepted.push_back(forced);
          g.estimate = g.weight_sum.Scale(
              1.0 / static_cast<double>(attempts + 1));
        }
      } else {
        g.estimate = g.weight_sum.Scale(
            static_cast<double>(g.accepted.size()) /
            static_cast<double>(attempts));
      }
      total_estimate = total_estimate.Add(g.estimate);
    }
    est_[l][q] = total_estimate;
    if (total_estimate.IsZero()) return;

    // Pool: mixture over groups proportional to their estimates; singleton
    // groups draw fresh, overlapping groups resample their canonical hits.
    std::vector<const Group*> group_list;
    std::vector<ExtFloat> group_weights;
    for (const auto& [symbol, g] : groups) {
      (void)symbol;
      if (g.estimate.IsZero()) continue;
      group_list.push_back(&g);
      group_weights.push_back(g.estimate);
    }
    if (group_list.size() > 1) {
      drawer_.Prepare(DrawMode(), group_weights, &stats_);
    }
    auto& pool = pools_[l][q];
    pool.reserve(pool_target_);
    if (fast_) {
      // Batched mixture: one word for the group pick, one for the index
      // within the group (fresh prefix for singleton groups, canonical-hit
      // resample otherwise), drawn block-at-a-time.
      for (size_t done = 0; done < pool_target_;) {
        const size_t batch = std::min(kDrawBatch, pool_target_ - done);
        words_.resize(2 * batch);
        rng_.FillBlock(words_.data(), 2 * batch);
        ++stats_.batch_draws;
        BatchSizeHist().Observe(batch);
        for (size_t i = 0; i < batch; ++i) {
          const Group& g =
              group_list.size() == 1
                  ? *group_list[0]
                  : *group_list[drawer_.DrawFromDouble(
                        Rng::DoubleFromWord(words_[2 * i]))];
          const uint64_t word = words_[2 * i + 1];
          if (g.transitions.size() == 1) {
            const auto& prev_pool =
                pools_[l - 1][trans[g.transitions[0]].from];
            if (prev_pool.empty()) continue;
            pool.push_back(SampleRef{
                g.transitions[0],
                static_cast<uint32_t>(
                    Rng::BoundedFromWord(word, prev_pool.size()))});
          } else if (!g.accepted.empty()) {
            pool.push_back(g.accepted[Rng::BoundedFromWord(
                word, g.accepted.size())]);
          }
        }
        done += batch;
      }
    } else {
      for (size_t i = 0; i < pool_target_; ++i) {
        const Group& g = group_list.size() == 1
                             ? *group_list[0]
                             : *group_list[drawer_.Draw(&rng_)];
        if (g.transitions.size() == 1) {
          SampleRef sample;
          if (DrawRef(g.transitions[0], &sample)) pool.push_back(sample);
        } else if (!g.accepted.empty()) {
          pool.push_back(g.accepted[rng_.NextBounded(g.accepted.size())]);
        }
      }
    }
    stats_.pool_entries += pool.size();
  }

  // |L_n| = |∪_{q ∈ F} A(q, n)| via the same canonical-witness estimator
  // (canonical = smallest accepting state reachable on the string).
  Result<CountEstimate> Finalize() {
    std::vector<StateId> finals;
    std::vector<ExtFloat> weights;
    for (StateId q = 0; q < nfa_.NumStates(); ++q) {
      if (!nfa_.IsAccepting(q) || !live_[n_][q]) continue;
      if (est_[n_][q].IsZero()) continue;
      finals.push_back(q);
      weights.push_back(est_[n_][q]);
    }
    if (finals.empty()) {
      return CountEstimate{ExtFloat(), stats_};
    }
    const ExtFloat total = SumExtFloats(weights);
    if (finals.size() == 1) {
      return CountEstimate{total, stats_};
    }
    const size_t target = pool_target_;
    const size_t max_attempts = config_.attempt_factor * target + 64;
    size_t attempts = 0;
    size_t accepted = 0;
    drawer_.Prepare(DrawMode(), weights, &stats_);
    // Canonical check for one (accepting state, pool index) draw: q must be
    // the smallest accepting state reachable on the sampled string.
    auto AcceptsCanonically = [&](StateId q, uint32_t idx) {
      ++stats_.membership_checks;
      std::vector<StateId> reach_storage;
      const std::vector<StateId>* reach;
      if (cached_) {
        reach = &ReachStates(q, n_, idx);
      } else {
        reach_storage = nfa_.ActiveStatesAfter(Materialize(q, n_, idx));
        reach = &reach_storage;
      }
      StateId canonical = q;
      for (StateId other : finals) {
        if (std::binary_search(reach->begin(), reach->end(), other)) {
          canonical = other;
          break;
        }
      }
      return canonical == q;
    };
    if (fast_) {
      while (attempts < max_attempts && accepted < target) {
        if (Cancelled()) break;
        const size_t batch = std::min(kDrawBatch, max_attempts - attempts);
        words_.resize(2 * batch);
        rng_.FillBlock(words_.data(), 2 * batch);
        ++stats_.batch_draws;
        BatchSizeHist().Observe(batch);
        for (size_t i = 0; i < batch; ++i) {
          const size_t pick =
              drawer_.DrawFromDouble(Rng::DoubleFromWord(words_[2 * i]));
          const StateId q = finals[pick];
          const auto& pool = pools_[n_][q];
          if (pool.empty()) continue;
          const uint32_t idx = static_cast<uint32_t>(
              Rng::BoundedFromWord(words_[2 * i + 1], pool.size()));
          if (AcceptsCanonically(q, idx)) ++accepted;
        }
        attempts += batch;
      }
    } else {
      while (attempts < max_attempts && accepted < target) {
        ++attempts;
        if ((attempts & 255u) == 0 && Cancelled()) break;
        const size_t pick = drawer_.Draw(&rng_);
        const StateId q = finals[pick];
        const auto& pool = pools_[n_][q];
        if (pool.empty()) continue;
        const uint32_t idx =
            static_cast<uint32_t>(rng_.NextBounded(pool.size()));
        if (AcceptsCanonically(q, idx)) ++accepted;
      }
    }
    stats_.attempts += attempts;
    stats_.accepted += accepted;
    if (Cancelled()) return DeadlineError(n_);
    if (accepted == 0) {
      ++stats_.forced_samples;
      accepted = 1;
    }
    ExtFloat value = total.Scale(static_cast<double>(accepted) /
                                 static_cast<double>(attempts));
    return CountEstimate{value, stats_};
  }

  // --- Cancellation -------------------------------------------------------

  bool Cancelled() const { return cancel_ != nullptr && cancel_->Expired(); }

  Status DeadlineError(size_t l) const {
    return Status::DeadlineExceeded(
        "count_nfa: cancelled at length stratum " + std::to_string(l) + "/" +
        std::to_string(n_));
  }

  const Nfa& nfa_;
  const size_t n_;
  const EstimatorConfig& config_;
  Rng rng_;
  const bool fast_;    // batched fast kernels (kernel_mode = kFast)
  const bool cached_;  // hot-path caches on (off = ablation baseline)
  const CancelToken* cancel_;
  size_t pool_target_ = 0;
  CountStats stats_;
  std::vector<std::vector<bool>> live_;                       // [l][q]
  std::vector<std::vector<ExtFloat>> est_;                    // [l][q]
  std::vector<std::vector<std::vector<SampleRef>>> pools_;    // [l][q]

  // Hot-path scratch, reused across draws and strata.
  using MemoLevel = std::vector<std::vector<std::vector<StateId>>>;
  struct ChainLink {
    size_t l;
    StateId q;
    uint32_t idx;
  };
  IndexDrawer drawer_;
  std::vector<MemoLevel> reach_memo_;  // [l][q][pool idx] -> sorted states
  std::vector<ChainLink> chain_;
  std::vector<StateId> step_scratch_;
  // Fast-kernel SoA arenas, sized to one batch and reused across batches.
  std::vector<uint64_t> words_;       // raw block-RNG output
  std::vector<uint32_t> cand_trans_;  // candidate transition per attempt
  std::vector<uint32_t> cand_prefix_; // candidate prefix index per attempt
  std::vector<uint8_t> cand_valid_;   // 0 = predecessor pool was empty
  obs::Histogram* batch_hist_ = nullptr;  // lazy counting.batch_size_hist
};

}  // namespace

Result<CountEstimate> CountNfaStrings(const Nfa& nfa, size_t n,
                                      const EstimatorConfig& config) {
  if (config.epsilon <= 0.0 || config.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  const size_t reps = std::max<size_t>(config.repetitions, 1);
  PQE_TRACE_SPAN_VAR(span, "count.nfa");
  span.AttrUint("states", nfa.NumStates());
  span.AttrUint("transitions", nfa.transitions().size());
  span.AttrUint("word_length", n);
  span.AttrUint("repetitions", reps);
  if (reps == 1) {
    NfaCounter counter(nfa, n, config);
    PQE_ASSIGN_OR_RETURN(CountEstimate est, counter.Run());
    RecordCountRun("pqe.count_nfa", est.stats, !config.disable_hotpath_caches,
                   config.kernel_mode, &span);
    return est;
  }
  // Median-of-R amplification over independent seeds. Reps are independent
  // (per-rep derived seed, per-rep counter), so they fan out over the shared
  // pool; per-rep slots plus the fixed-order merge below keep the median and
  // aggregate stats bit-identical across thread counts.
  const size_t threads =
      std::min(ThreadPool::ResolveNumThreads(config.num_threads), reps);
  span.AttrUint("threads", threads);
  // The CSR adjacency is a lazily-built mutable index; build it before the
  // reps share the const Nfa across workers (docs/parallelism.md).
  nfa.WarmAdjacency();
  std::vector<CountEstimate> runs(reps);
  std::vector<Status> rep_status(reps, Status::OK());
  auto& rep_hist =
      obs::MetricRegistry::Global().GetHistogram("pqe.count_nfa.rep_ns");
  ParallelFor(threads, reps, [&](size_t r) {
    // Spans only on the serial path (sessions are thread-local; parallel
    // reps record timings via the atomic histogram instead).
    std::optional<obs::ScopedSpan> rep_span;
    if (threads == 1) {
      rep_span.emplace("count.nfa.rep");
      rep_span->AttrUint("rep", r);
    }
    const auto start = std::chrono::steady_clock::now();
    EstimatorConfig rep_config = config;
    rep_config.repetitions = 1;
    rep_config.seed = Rng::DeriveSeed(config.seed, r);
    NfaCounter counter(nfa, n, rep_config);
    Result<CountEstimate> est = counter.Run();
    if (!est.ok()) {
      rep_status[r] = est.status();
      return;
    }
    runs[r] = est.MoveValue();
    rep_hist.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  });
  for (const Status& st : rep_status) PQE_RETURN_IF_ERROR(st);
  CountStats aggregate;
  for (const CountEstimate& est : runs) {
    aggregate.strata_total = est.stats.strata_total;
    aggregate.strata_live = est.stats.strata_live;
    aggregate.pool_entries += est.stats.pool_entries;
    aggregate.attempts += est.stats.attempts;
    aggregate.accepted += est.stats.accepted;
    aggregate.forced_samples += est.stats.forced_samples;
    aggregate.membership_checks += est.stats.membership_checks;
    aggregate.picker_builds += est.stats.picker_builds;
    aggregate.alias_builds += est.stats.alias_builds;
    aggregate.batch_draws += est.stats.batch_draws;
    aggregate.runstates_memo_hits += est.stats.runstates_memo_hits;
    aggregate.runstates_memo_misses += est.stats.runstates_memo_misses;
  }
  std::sort(runs.begin(), runs.end(),
            [](const CountEstimate& a, const CountEstimate& b) {
              return a.value < b.value;
            });
  CountEstimate out = runs[runs.size() / 2];
  out.stats = aggregate;
  RecordCountRun("pqe.count_nfa", out.stats, !config.disable_hotpath_caches,
                 config.kernel_mode, &span);
  return out;
}

}  // namespace pqe
