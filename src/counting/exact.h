#ifndef PQE_COUNTING_EXACT_H_
#define PQE_COUNTING_EXACT_H_

#include <cstddef>

#include "automata/nfa.h"
#include "automata/nfta.h"
#include "util/bigint.h"
#include "util/result.h"

namespace pqe {

/// Exact |L_n(M)| by on-the-fly determinization: DP over (reachable state
/// subset, remaining length) with memoization. Worst-case exponential in
/// |M| (exact #NFA is #P-hard) — intended as a test oracle. Fails with
/// ResourceExhausted if more than `max_subsets` distinct subsets arise.
Result<BigUint> ExactCountNfaStrings(const Nfa& nfa, size_t n,
                                     size_t max_subsets = 2'000'000);

/// Exact |L_n(T)| for a λ-free NFTA by bottom-up determinization: for each
/// size s it tabulates, per exact run-state-set S, the number of distinct
/// trees of size s whose set of generating states is S; forests are combined
/// through per-(symbol, arity) alive-transition-set DP. Worst-case
/// exponential — a test oracle. Fails with ResourceExhausted if the tables
/// exceed `max_entries`.
Result<BigUint> ExactCountNftaTrees(const Nfta& nfta, size_t n,
                                    size_t max_entries = 2'000'000);

}  // namespace pqe

#endif  // PQE_COUNTING_EXACT_H_
