#ifndef PQE_COUNTING_WEIGHTED_PICK_H_
#define PQE_COUNTING_WEIGHTED_PICK_H_

#include <vector>

#include "util/extfloat.h"
#include "util/rng.h"

namespace pqe {

/// Sum of extended-range weights.
ExtFloat SumExtFloats(const std::vector<ExtFloat>& weights);

/// Samples an index with probability proportional to the extended-range
/// weights (at least one must be non-zero). Weights are renormalized by the
/// maximum before conversion to double, so huge exponents are safe.
///
/// One-shot path: rescans for the maximum, converts every weight, and
/// heap-allocates a scratch vector per draw. Hot loops that draw from the
/// same distribution repeatedly should build a WeightedPicker instead.
size_t PickWeightedIndex(Rng* rng, const std::vector<ExtFloat>& weights);

/// Precomputed weighted sampler over a fixed distribution: the normalized
/// cumulative table is built once and every Pick() is one NextDouble plus a
/// binary search — no per-draw allocation, no rescans.
///
/// Draw-identical to PickWeightedIndex: for the same weights and the same
/// Rng state, Pick() consumes exactly one NextDouble and returns exactly the
/// index PickWeightedIndex would (same renormalization, same partial-sum
/// order, same floating-point edge fallback), so replacing per-draw
/// PickWeightedIndex calls with a shared picker leaves estimates
/// bit-identical (docs/performance.md).
class WeightedPicker {
 public:
  WeightedPicker() = default;
  explicit WeightedPicker(const std::vector<ExtFloat>& weights) {
    Build(weights);
  }

  /// (Re)builds the cumulative table. Reuses the table's capacity, so a
  /// picker owned by a counter's scratch state allocates only on growth.
  /// Requires at least one non-zero weight.
  void Build(const std::vector<ExtFloat>& weights);

  /// Draws an index ~ weights. Requires Build() was called.
  size_t Pick(Rng* rng) const;

  size_t size() const { return cum_.size(); }
  bool empty() const { return cum_.empty(); }

 private:
  std::vector<double> cum_;  // inclusive prefix sums of the scaled weights
  double total_ = 0.0;       // == cum_.back()
  size_t last_nonzero_ = 0;  // fallback when x lands past total_ (fp edge)
};

}  // namespace pqe

#endif  // PQE_COUNTING_WEIGHTED_PICK_H_
