#ifndef PQE_COUNTING_WEIGHTED_PICK_H_
#define PQE_COUNTING_WEIGHTED_PICK_H_

#include <cstdint>
#include <vector>

#include "util/extfloat.h"
#include "util/rng.h"
#include "util/status.h"

namespace pqe {

struct CountStats;

/// Sum of extended-range weights.
ExtFloat SumExtFloats(const std::vector<ExtFloat>& weights);

/// Samples an index with probability proportional to the extended-range
/// weights (at least one must be non-zero). Weights are renormalized by the
/// maximum before conversion to double, so huge exponents are safe.
///
/// One-shot path: rescans for the maximum, converts every weight, and
/// heap-allocates a scratch vector per draw. Hot loops that draw from the
/// same distribution repeatedly should build a WeightedPicker instead.
size_t PickWeightedIndex(Rng* rng, const std::vector<ExtFloat>& weights);

/// Precomputed weighted sampler over a fixed distribution: the normalized
/// cumulative table is built once and every Pick() is one NextDouble plus a
/// binary search — no per-draw allocation, no rescans.
///
/// Draw-identical to PickWeightedIndex: for the same weights and the same
/// Rng state, Pick() consumes exactly one NextDouble and returns exactly the
/// index PickWeightedIndex would (same renormalization, same partial-sum
/// order, same floating-point edge fallback), so replacing per-draw
/// PickWeightedIndex calls with a shared picker leaves estimates
/// bit-identical (docs/performance.md).
class WeightedPicker {
 public:
  WeightedPicker() = default;
  explicit WeightedPicker(const std::vector<ExtFloat>& weights) {
    Build(weights);
  }

  /// (Re)builds the cumulative table. Reuses the table's capacity, so a
  /// picker owned by a counter's scratch state allocates only on growth.
  /// Requires at least one non-zero weight; aborts with a message naming
  /// `context` otherwise (use TryBuild for a typed error instead).
  void Build(const std::vector<ExtFloat>& weights,
             const char* context = "WeightedPicker::Build");

  /// Build() with bad input reported as a typed Status instead of an
  /// abort: InvalidArgument naming `context` (e.g. the symbol group being
  /// sampled) when `weights` is empty or all-zero. On error the picker is
  /// left empty.
  Status TryBuild(const std::vector<ExtFloat>& weights, const char* context);

  /// Draws an index ~ weights. Requires Build() was called.
  size_t Pick(Rng* rng) const;

  /// Incremental rebuild after one entry changed: `weights` is the full
  /// updated table (same size as the built one) and `index` the changed
  /// entry. When the renormalization scale (the maximum weight) is
  /// unchanged, only the prefix sums from `index` on are recomputed —
  /// O(n − index) instead of a full table scan with exp2 per entry; when
  /// the maximum changed, falls back to a full TryBuild. Either way the
  /// resulting picker state is bit-identical to TryBuild over the updated
  /// table, so draws stay draw-identical to the legacy path.
  Status UpdateWeight(const std::vector<ExtFloat>& weights, size_t index);

  size_t size() const { return cum_.size(); }
  bool empty() const { return cum_.empty(); }

 private:
  std::vector<double> cum_;  // inclusive prefix sums of the scaled weights
  double total_ = 0.0;       // == cum_.back()
  size_t last_nonzero_ = 0;  // fallback when x lands past total_ (fp edge)
  double max_log_ = 0.0;     // build-time renormalization scale (log2)
};

/// O(1)-per-draw weighted sampler: a Walker/Vose alias table with the same
/// ExtFloat max-renormalization as WeightedPicker::Build, so huge exponents
/// are safe. Each draw consumes one uniform: the integer part selects a
/// column, the fractional part decides column-vs-alias.
///
/// NOT draw-identical to PickWeightedIndex/WeightedPicker — each index is
/// still returned with exactly probability w[i]/Σw, but the uniform is
/// consumed differently, so estimates shift within their statistical
/// envelope. Used only by kernel_mode=fast (two-tier determinism contract,
/// docs/performance.md "Kernel modes"); χ²-gated against the exact
/// proportions in fast_kernels_test.
class AliasPicker {
 public:
  AliasPicker() = default;
  explicit AliasPicker(const std::vector<ExtFloat>& weights) {
    Build(weights);
  }

  /// (Re)builds the alias table, reusing capacity. Requires at least one
  /// non-zero weight; aborts with a message naming `context` otherwise.
  void Build(const std::vector<ExtFloat>& weights,
             const char* context = "AliasPicker::Build");

  /// Build() with bad input reported as InvalidArgument naming `context`.
  /// On error the picker is left empty.
  Status TryBuild(const std::vector<ExtFloat>& weights, const char* context);

  /// Draws an index ~ weights, consuming one NextDouble.
  size_t Pick(Rng* rng) const { return PickFromDouble(rng->NextDouble()); }

  /// Maps one uniform u ∈ [0, 1) to an index ~ weights — the block-RNG
  /// entry point the batched kernels feed from DoubleBlock buffers.
  size_t PickFromDouble(double u) const {
    const double scaled = u * static_cast<double>(prob_.size());
    size_t col = static_cast<size_t>(scaled);
    // u can round up to size() at the top of the range.
    if (col >= prob_.size()) col = prob_.size() - 1;
    const double frac = scaled - static_cast<double>(col);
    return frac < prob_[col] ? col : alias_[col];
  }

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;     // acceptance threshold per column, in [0,1]
  std::vector<uint32_t> alias_;  // index taken when the column rejects
};

/// Per-table draw dispatcher owned by a counter's scratch state: Prepare()
/// once per weight table, Draw() per sample. Every weighted draw in a
/// counter routes through here, so the kernel-mode choice — legacy one-shot
/// scan, cached cumulative picker, or O(1) alias table — lives in exactly
/// one place per counter instead of at each call site.
class IndexDrawer {
 public:
  enum class Mode : uint8_t {
    kLegacy,  // per-draw PickWeightedIndex (disable_hotpath_caches)
    kCached,  // WeightedPicker — draw-identical to kLegacy (exact tier)
    kAlias,   // AliasPicker — statistically equivalent (fast tier)
  };

  /// Points the drawer at `weights` (which must outlive the draws and stay
  /// unchanged). kCached/kAlias build their tables now, reusing capacity,
  /// and bump `stats` (picker_builds / alias_builds) when non-null; kLegacy
  /// just keeps the pointer and rescans per draw.
  void Prepare(Mode mode, const std::vector<ExtFloat>& weights,
               CountStats* stats);

  /// Draws an index ~ the prepared weights, consuming exactly one
  /// NextDouble in every mode.
  size_t Draw(Rng* rng) const {
    switch (mode_) {
      case Mode::kCached:
        return picker_.Pick(rng);
      case Mode::kAlias:
        return alias_.Pick(rng);
      case Mode::kLegacy:
        break;
    }
    return PickWeightedIndex(rng, *weights_);
  }

  /// Batched entry: maps a pre-generated uniform to an index. Valid only
  /// in kAlias mode (the fast kernels are the only block consumers).
  size_t DrawFromDouble(double u) const { return alias_.PickFromDouble(u); }

  Mode mode() const { return mode_; }
  size_t size() const { return weights_ == nullptr ? 0 : weights_->size(); }

 private:
  Mode mode_ = Mode::kLegacy;
  const std::vector<ExtFloat>* weights_ = nullptr;
  WeightedPicker picker_;
  AliasPicker alias_;
};

}  // namespace pqe

#endif  // PQE_COUNTING_WEIGHTED_PICK_H_
