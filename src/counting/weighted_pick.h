#ifndef PQE_COUNTING_WEIGHTED_PICK_H_
#define PQE_COUNTING_WEIGHTED_PICK_H_

#include <vector>

#include "util/extfloat.h"
#include "util/rng.h"

namespace pqe {

/// Sum of extended-range weights.
ExtFloat SumExtFloats(const std::vector<ExtFloat>& weights);

/// Samples an index with probability proportional to the extended-range
/// weights (at least one must be non-zero). Weights are renormalized by the
/// maximum before conversion to double, so huge exponents are safe.
size_t PickWeightedIndex(Rng* rng, const std::vector<ExtFloat>& weights);

}  // namespace pqe

#endif  // PQE_COUNTING_WEIGHTED_PICK_H_
