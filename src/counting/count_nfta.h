#ifndef PQE_COUNTING_COUNT_NFTA_H_
#define PQE_COUNTING_COUNT_NFTA_H_

#include <cstddef>

#include <vector>

#include "automata/nfta.h"
#include "automata/tree.h"
#include "counting/config.h"
#include "util/result.h"

namespace pqe {

/// CountNFTA (Section 2, citing Arenas et al., STOC '21): approximates
/// |L_n(T)|, the number of labelled trees of size exactly n accepted by the
/// (λ-free) top-down NFTA T, within (1 ± ε) with high probability, in time
/// poly(n, |T|, 1/ε).
///
/// Implementation: size-stratified dynamic programming over two families of
/// strata:
///   A(q, s)     — trees of size s generable from state q;
///   F(τ, j, s)  — ordered forests for the first j children of transition τ
///                 with total size s.
/// F-strata combine by an exact disjoint product rule (the size of the last
/// child determines the split), so their estimates multiply and their
/// samples compose without rejection. A-strata are overlapping unions over
/// the out-transitions of q and use the Karp–Luby canonical-witness
/// estimator; membership of a subtree in A(q', s') is decided exactly by
/// bottom-up simulation (Nfta::RunStates). Samples are stored as O(1)
/// derivation references and materialized on demand.
///
/// Fails with InvalidArgument if the automaton still has λ-transitions
/// (call Nfta::EliminateLambda first).
Result<CountEstimate> CountNftaTrees(const Nfta& nfta, size_t n,
                                     const EstimatorConfig& config);

/// A count estimate together with (near-)uniform samples of accepted trees —
/// the counting pools double as samplers (the "uniform generation" half of
/// the Arenas et al. results). `samples` is empty when the language is.
struct NftaSampleResult {
  CountEstimate estimate;
  std::vector<LabeledTree> samples;
};
Result<NftaSampleResult> CountAndSampleNftaTrees(
    const Nfta& nfta, size_t n, const EstimatorConfig& config,
    size_t num_samples);

}  // namespace pqe

#endif  // PQE_COUNTING_COUNT_NFTA_H_
