#include "workload/generators.h"

#include <string>
#include <vector>

#include "util/rng.h"

namespace pqe {

namespace {

std::string LayerNode(uint32_t layer, uint32_t index) {
  return "n" + std::to_string(layer) + "_" + std::to_string(index);
}

}  // namespace

Result<Database> MakeLayeredPathDatabase(const QueryInstance& path_query,
                                         const LayeredGraphOptions& options) {
  if (!path_query.query.IsPathQuery()) {
    return Status::InvalidArgument(
        "MakeLayeredPathDatabase expects a path query instance");
  }
  if (options.width == 0) {
    return Status::InvalidArgument("layer width must be >= 1");
  }
  const uint32_t n = static_cast<uint32_t>(path_query.query.NumAtoms());
  Database db(path_query.schema);
  Rng rng(options.seed);
  for (uint32_t i = 0; i < n; ++i) {
    const std::string rel =
        path_query.schema.Name(path_query.query.atom(i).relation);
    for (uint32_t a = 0; a < options.width; ++a) {
      for (uint32_t b = 0; b < options.width; ++b) {
        const bool forced =
            options.ensure_path && a == 0 && b == 0;  // spine edge
        if (forced || rng.NextBernoulli(options.density)) {
          PQE_RETURN_IF_ERROR(
              db.AddFactByName(rel, {LayerNode(i, a), LayerNode(i + 1, b)})
                  .status());
        }
      }
    }
  }
  return db;
}

Result<Database> MakeKgReachabilityDatabase(
    const KgReachabilityOptions& options) {
  if (options.layers == 0 || options.width == 0) {
    return Status::InvalidArgument("kg layers and width must be >= 1");
  }
  if (options.labels.empty()) {
    return Status::InvalidArgument("kg needs at least one edge label");
  }
  Schema schema;
  for (const std::string& label : options.labels) {
    PQE_RETURN_IF_ERROR(schema.AddRelation(label, 2).status());
  }
  Database db(schema);
  Rng rng(options.seed);
  const size_t num_labels = options.labels.size();
  for (uint32_t i = 0; i < options.layers; ++i) {
    for (uint32_t a = 0; a < options.width; ++a) {
      for (uint32_t b = 0; b < options.width; ++b) {
        const bool forced =
            options.ensure_chain && a == 0 && b == 0;  // spine edge
        if (forced) {
          // The spine cycles through the labels so every label appears on a
          // guaranteed chain.
          PQE_RETURN_IF_ERROR(
              db.AddFactByName(options.labels[i % num_labels],
                               {LayerNode(i, a), LayerNode(i + 1, b)})
                  .status());
        } else if (rng.NextBernoulli(options.density)) {
          PQE_RETURN_IF_ERROR(
              db.AddFactByName(options.labels[rng.NextBounded(num_labels)],
                               {LayerNode(i, a), LayerNode(i + 1, b)})
                  .status());
        }
      }
    }
  }
  return db;
}

Result<Database> MakeRandomDatabase(const Schema& schema,
                                    const RandomDatabaseOptions& options) {
  if (options.domain_size == 0) {
    return Status::InvalidArgument("domain size must be >= 1");
  }
  Database db(schema);
  Rng rng(options.seed);
  for (RelationId r = 0; r < schema.NumRelations(); ++r) {
    const uint32_t arity = schema.Arity(r);
    for (uint32_t f = 0; f < options.facts_per_relation; ++f) {
      std::vector<std::string> args;
      args.reserve(arity);
      for (uint32_t i = 0; i < arity; ++i) {
        args.push_back(
            "c" + std::to_string(rng.NextBounded(options.domain_size)));
      }
      PQE_RETURN_IF_ERROR(
          db.AddFactByName(schema.Name(r), args).status());
    }
  }
  return db;
}

Result<Database> MakeStarDatabase(const QueryInstance& star_query,
                                  const StarDataOptions& options) {
  if (options.hubs == 0 || options.spokes_per_hub == 0) {
    return Status::InvalidArgument("hubs and spokes must be >= 1");
  }
  Database db(star_query.schema);
  Rng rng(options.seed);
  for (const Atom& atom : star_query.query.atoms()) {
    if (atom.vars.size() != 2) {
      return Status::InvalidArgument(
          "MakeStarDatabase expects binary star atoms");
    }
    const std::string rel = star_query.schema.Name(atom.relation);
    for (uint32_t h = 0; h < options.hubs; ++h) {
      bool any = false;
      for (uint32_t s = 0; s < options.spokes_per_hub; ++s) {
        if (rng.NextBernoulli(options.density)) {
          any = true;
          PQE_RETURN_IF_ERROR(
              db.AddFactByName(rel, {"hub" + std::to_string(h),
                                     "leaf" + std::to_string(h) + "_" +
                                         std::to_string(s) + "_" + rel})
                  .status());
        }
      }
      // Keep every hub usable so star benchmarks have non-trivial answers.
      if (!any) {
        PQE_RETURN_IF_ERROR(
            db.AddFactByName(rel, {"hub" + std::to_string(h),
                                   "leaf" + std::to_string(h) + "_0_" + rel})
                .status());
      }
    }
  }
  return db;
}

ProbabilisticDatabase AttachProbabilities(Database db,
                                          const ProbabilityModel& model) {
  const size_t n = db.NumFacts();
  std::vector<Probability> probs;
  probs.reserve(n);
  Rng rng(model.seed);
  for (size_t i = 0; i < n; ++i) {
    switch (model.kind) {
      case ProbabilityModel::Kind::kUniformHalf:
        probs.push_back(Probability::Half());
        break;
      case ProbabilityModel::Kind::kFixed:
        probs.push_back(model.fixed);
        break;
      case ProbabilityModel::Kind::kSkewed: {
        const uint64_t den = model.max_denominator < 2
                                 ? 2
                                 : model.max_denominator;
        if (rng.NextBernoulli(0.8)) {
          probs.push_back(Probability{den - 1, den});
        } else {
          probs.push_back(Probability{1, den});
        }
        break;
      }
      case ProbabilityModel::Kind::kRandomRational: {
        const uint64_t max_den = model.max_denominator < 2
                                     ? 2
                                     : model.max_denominator;
        const uint64_t den = 2 + rng.NextBounded(max_den - 1);
        const uint64_t num = 1 + rng.NextBounded(den - 1);
        probs.push_back(Probability{num, den});
        break;
      }
    }
  }
  auto result = ProbabilisticDatabase::Make(std::move(db), std::move(probs));
  // Construction cannot fail: probabilities are valid by construction.
  return result.MoveValue();
}

Result<Database> MakeSnowflakeDatabase(const QueryInstance& snowflake_query,
                                       uint32_t arms, uint32_t depth,
                                       const SnowflakeDataOptions& options) {
  if (options.hubs == 0 || options.fanout == 0) {
    return Status::InvalidArgument("hubs and fanout must be >= 1");
  }
  Database db(snowflake_query.schema);
  Rng rng(options.seed);
  for (uint32_t a = 1; a <= arms; ++a) {
    // Entities at level d of arm a: hubs * fanout^d names.
    uint32_t level_size = options.hubs;
    std::vector<std::string> level;
    for (uint32_t h = 0; h < options.hubs; ++h) {
      level.push_back("hub" + std::to_string(h));
    }
    for (uint32_t d = 1; d <= depth; ++d) {
      const std::string rel =
          "R" + std::to_string(a) + "_" + std::to_string(d);
      std::vector<std::string> next;
      for (uint32_t p = 0; p < level.size(); ++p) {
        bool any = false;
        for (uint32_t c = 0; c < options.fanout; ++c) {
          const std::string child = "a" + std::to_string(a) + "d" +
                                    std::to_string(d) + "n" +
                                    std::to_string(p * options.fanout + c);
          if (rng.NextBernoulli(options.density) || (!any && c + 1 ==
                                                     options.fanout)) {
            any = true;
            PQE_RETURN_IF_ERROR(
                db.AddFactByName(rel, {level[p], child}).status());
            next.push_back(child);
          }
        }
      }
      level = std::move(next);
      level_size *= options.fanout;
      (void)level_size;
      if (level.empty()) break;
    }
  }
  return db;
}

}  // namespace pqe
