#ifndef PQE_WORKLOAD_GENERATORS_H_
#define PQE_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cq/builders.h"
#include "pdb/database.h"
#include "pdb/probabilistic_database.h"
#include "util/result.h"

namespace pqe {

/// Seeded layered graph for path queries: layer 0..n of `width` nodes each;
/// an R_i edge between consecutive layers is present independently with
/// probability `density`. Guarantees at least one complete source-to-sink
/// path when `ensure_path` is set, so benchmarks never degenerate to
/// probability 0.
struct LayeredGraphOptions {
  uint32_t width = 4;       // nodes per layer
  double density = 0.5;     // edge inclusion probability
  bool ensure_path = true;
  uint64_t seed = 1;
};
Result<Database> MakeLayeredPathDatabase(const QueryInstance& path_query,
                                         const LayeredGraphOptions& options);

/// Seeded edge-labelled knowledge graph for RPQ workloads: a layered DAG of
/// `layers` edge layers over `width`-node levels, where each present edge
/// carries one of `labels` (each label is a binary relation of the schema).
/// Facts are inserted in source-layer order, so FactIds are topological along
/// every walk — the order the RPQ scan-order construction needs, keeping
/// generated workloads on the FPRAS route. `ensure_chain` forces one complete
/// spine whose edge labels cycle through `labels` in order, so reachability
/// RPQs like (a|b)+ never degenerate to probability 0.
struct KgReachabilityOptions {
  uint32_t layers = 3;      // edge layers (node levels = layers + 1)
  uint32_t width = 3;       // nodes per level
  std::vector<std::string> labels = {"a", "b"};
  double density = 0.5;     // edge inclusion probability
  bool ensure_chain = true;
  uint64_t seed = 1;
};
Result<Database> MakeKgReachabilityDatabase(
    const KgReachabilityOptions& options);

/// Random facts for an arbitrary schema: for each relation, `facts_per_rel`
/// tuples drawn uniformly (with replacement, then deduplicated) over a
/// domain of `domain_size` constants shared across relations.
struct RandomDatabaseOptions {
  uint32_t domain_size = 8;
  uint32_t facts_per_relation = 12;
  uint64_t seed = 1;
};
Result<Database> MakeRandomDatabase(const Schema& schema,
                                    const RandomDatabaseOptions& options);

/// Star-shaped data for star queries: `hubs` hub constants; each hub gets
/// `spokes_per_hub` leaf edges per relation with probability `density`.
struct StarDataOptions {
  uint32_t hubs = 3;
  uint32_t spokes_per_hub = 3;
  double density = 0.7;
  uint64_t seed = 1;
};
Result<Database> MakeStarDatabase(const QueryInstance& star_query,
                                  const StarDataOptions& options);

/// Probability models for turning a Database into a tuple-independent
/// probabilistic database.
struct ProbabilityModel {
  enum class Kind {
    kUniformHalf,     // every fact 1/2 (uniform reliability)
    kFixed,           // every fact `fixed`
    kRandomRational,  // w/d with d uniform in [2, max_denominator],
                      // w uniform in [1, d-1]
    kSkewed,          // extraction-like: 80% high-confidence facts
                      // ((d-1)/d), 20% low-confidence (1/d), d =
                      // max_denominator
  };
  Kind kind = Kind::kRandomRational;
  Probability fixed = Probability::Half();
  uint64_t max_denominator = 16;
  uint64_t seed = 7;
};
ProbabilisticDatabase AttachProbabilities(Database db,
                                          const ProbabilityModel& model);

/// Snowflake-shaped data for MakeSnowflakeQuery instances: `hubs` central
/// constants; each relation R_{a,d} links level d-1 to level d entities with
/// `fanout` children per parent, each edge kept with probability `density`.
struct SnowflakeDataOptions {
  uint32_t hubs = 2;
  uint32_t fanout = 2;
  double density = 0.8;
  uint64_t seed = 1;
};
Result<Database> MakeSnowflakeDatabase(const QueryInstance& snowflake_query,
                                       uint32_t arms, uint32_t depth,
                                       const SnowflakeDataOptions& options);

}  // namespace pqe

#endif  // PQE_WORKLOAD_GENERATORS_H_
