#ifndef PQE_CORE_SAMPLING_H_
#define PQE_CORE_SAMPLING_H_

#include <cstddef>
#include <vector>

#include "core/ur_construction.h"
#include "counting/config.h"
#include "cq/query.h"
#include "pdb/database.h"
#include "pdb/probabilistic_database.h"
#include "util/result.h"

namespace pqe {

/// Sampled worlds from the Proposition 1 / Theorem 1 automata: the counting
/// pools double as (near-)uniform generators, so conditioning on "Q holds"
/// comes for free. Worlds are bitvectors over the *projected* database D'
/// (facts over the query's relations, in projected FactId order); facts over
/// other relations are unconstrained by Q and can be resampled independently
/// by the caller.
struct WorldSampleResult {
  /// The projected database the bitvectors index into.
  Database projected_db;
  /// Maps projected FactIds back to the input database's FactIds.
  std::vector<FactId> original_fact;
  /// Sampled subinstances; each satisfies Q by construction.
  std::vector<std::vector<bool>> worlds;
};

/// Samples `num_samples` near-uniform satisfying subinstances of D
/// (conditioned models of the uniform-reliability distribution). Returns
/// fewer (possibly zero) worlds when Q is unsatisfiable on D.
Result<WorldSampleResult> SampleSatisfyingSubinstances(
    const ConjunctiveQuery& query, const Database& db,
    const EstimatorConfig& config, size_t num_samples,
    const UrConstructionOptions& options = {});

/// Samples `num_samples` worlds approximately distributed as
/// Pr_H(D' | D' ⊨ Q) — the posterior world distribution conditioned on the
/// query holding — via the Theorem 1 multiplier automaton.
Result<WorldSampleResult> SampleConditionedWorlds(
    const ConjunctiveQuery& query, const ProbabilisticDatabase& pdb,
    const EstimatorConfig& config, size_t num_samples,
    const UrConstructionOptions& options = {});

}  // namespace pqe

#endif  // PQE_CORE_SAMPLING_H_
