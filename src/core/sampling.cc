#include "core/sampling.h"

#include "automata/augmented_nfta.h"  // literal encoding helpers
#include "core/pqe.h"
#include "core/projection.h"
#include "counting/count_nfta.h"
#include "util/check.h"

namespace pqe {

namespace {

// Decodes an accepted tree into a subinstance bitvector: every literal-
// labelled node asserts the presence/absence of its fact; comparator bit
// nodes (symbols >= 2·|D'|) are gadget bookkeeping and carry no world
// information.
std::vector<bool> DecodeWorld(const LabeledTree& tree, size_t num_facts) {
  std::vector<bool> present(num_facts, false);
  for (uint32_t node = 0; node < tree.size(); ++node) {
    const SymbolId symbol = tree.label(node);
    if (symbol >= 2 * num_facts) continue;  // gadget bit symbol
    const FactId fact = LiteralBase(symbol);
    PQE_CHECK(fact < num_facts);
    if (!IsNegativeLiteral(symbol)) present[fact] = true;
  }
  return present;
}

}  // namespace

Result<WorldSampleResult> SampleSatisfyingSubinstances(
    const ConjunctiveQuery& query, const Database& db,
    const EstimatorConfig& config, size_t num_samples,
    const UrConstructionOptions& options) {
  PQE_ASSIGN_OR_RETURN(UrAutomaton automaton,
                       BuildUrAutomaton(query, db, options));
  PQE_ASSIGN_OR_RETURN(
      NftaSampleResult sampled,
      CountAndSampleNftaTrees(automaton.nfta, automaton.tree_size, config,
                              num_samples));
  PQE_ASSIGN_OR_RETURN(ProjectedDatabase proj, ProjectDatabase(db, query));
  const size_t num_facts = proj.db.NumFacts();
  WorldSampleResult out{std::move(proj.db), std::move(proj.original_fact),
                        {}};
  out.worlds.reserve(sampled.samples.size());
  for (const LabeledTree& tree : sampled.samples) {
    out.worlds.push_back(DecodeWorld(tree, num_facts));
  }
  return out;
}

Result<WorldSampleResult> SampleConditionedWorlds(
    const ConjunctiveQuery& query, const ProbabilisticDatabase& pdb,
    const EstimatorConfig& config, size_t num_samples,
    const UrConstructionOptions& options) {
  PQE_ASSIGN_OR_RETURN(PqeAutomaton automaton,
                       BuildPqeAutomaton(query, pdb, options));
  PQE_ASSIGN_OR_RETURN(
      NftaSampleResult sampled,
      CountAndSampleNftaTrees(automaton.weighted, automaton.tree_size,
                              config, num_samples));
  PQE_ASSIGN_OR_RETURN(ProjectedProbabilisticDatabase proj,
                       ProjectProbabilisticDatabase(pdb, query));
  const size_t num_facts = proj.pdb.NumFacts();
  WorldSampleResult out{proj.pdb.database(), std::move(proj.original_fact),
                        {}};
  out.worlds.reserve(sampled.samples.size());
  for (const LabeledTree& tree : sampled.samples) {
    out.worlds.push_back(DecodeWorld(tree, num_facts));
  }
  return out;
}

}  // namespace pqe
