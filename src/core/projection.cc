#include "core/projection.h"

#include <unordered_set>

namespace pqe {

namespace {

std::unordered_set<RelationId> QueryRelations(const ConjunctiveQuery& query) {
  std::unordered_set<RelationId> rels;
  for (const Atom& a : query.atoms()) rels.insert(a.relation);
  return rels;
}

}  // namespace

Result<ProjectedDatabase> ProjectDatabase(const Database& db,
                                          const ConjunctiveQuery& query) {
  std::unordered_set<RelationId> rels = QueryRelations(query);
  return ProjectDatabaseToRelations(
      db, std::vector<RelationId>(rels.begin(), rels.end()));
}

Result<ProjectedDatabase> ProjectDatabaseToRelations(
    const Database& db, const std::vector<RelationId>& relations) {
  for (RelationId r : relations) {
    if (r >= db.schema().NumRelations()) {
      return Status::InvalidArgument(
          "query mentions a relation outside the database schema");
    }
  }
  std::unordered_set<RelationId> rels(relations.begin(), relations.end());
  ProjectedDatabase out{Database(db.schema()), {}, 0};
  for (FactId fid = 0; fid < db.NumFacts(); ++fid) {
    const Fact& f = db.fact(fid);
    if (rels.count(f.relation) == 0) {
      ++out.dropped_facts;
      continue;
    }
    // Re-intern constants so the projected instance is self-contained.
    std::vector<ValueId> args;
    args.reserve(f.args.size());
    for (ValueId v : f.args) {
      args.push_back(out.db.InternValue(db.ValueName(v)));
    }
    PQE_ASSIGN_OR_RETURN(FactId nid, out.db.AddFact(f.relation, args));
    (void)nid;
    out.original_fact.push_back(fid);
  }
  return out;
}

Result<ProjectedProbabilisticDatabase> ProjectProbabilisticDatabase(
    const ProbabilisticDatabase& pdb, const ConjunctiveQuery& query) {
  PQE_ASSIGN_OR_RETURN(ProjectedDatabase proj,
                       ProjectDatabase(pdb.database(), query));
  std::vector<Probability> probs;
  probs.reserve(proj.original_fact.size());
  for (FactId orig : proj.original_fact) {
    probs.push_back(pdb.probability(orig));
  }
  PQE_ASSIGN_OR_RETURN(
      ProbabilisticDatabase ppdb,
      ProbabilisticDatabase::Make(std::move(proj.db), std::move(probs)));
  return ProjectedProbabilisticDatabase{
      std::move(ppdb), std::move(proj.original_fact), proj.dropped_facts};
}

Result<std::vector<Probability>> ProjectedFactProbabilities(
    const std::vector<FactId>& original_fact,
    const ProbabilisticDatabase& pdb) {
  std::vector<Probability> probs;
  probs.reserve(original_fact.size());
  for (FactId orig : original_fact) {
    if (orig >= pdb.NumFacts()) {
      return Status::InvalidArgument(
          "projection maps to a fact outside the probabilistic database "
          "(skeleton was built against a different instance)");
    }
    probs.push_back(pdb.probability(orig));
  }
  return probs;
}

}  // namespace pqe
