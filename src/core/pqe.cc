#include "core/pqe.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "automata/augmented_nfta.h"  // literal encoding helpers
#include "automata/multiplier_nfta.h"
#include "core/projection.h"
#include "counting/count_nfta.h"
#include "counting/exact.h"
#include "obs/trace.h"
#include "util/check.h"

namespace pqe {

namespace {

// The per-fact comparator width: both branches must contribute the same
// number of gadget nodes so that every accepted tree lands in the same size
// stratum. Branches with multiplier 0 do not exist and impose no width.
uint64_t FactGadgetWidth(const Probability& p) {
  uint64_t width = 0;
  if (p.num >= 1) {
    width = std::max(width, MultiplierNfta::GadgetDepth(p.num));
  }
  if (p.den - p.num >= 1) {
    width = std::max(width, MultiplierNfta::GadgetDepth(p.den - p.num));
  }
  return width;
}

}  // namespace

Result<PqeAutomaton> BuildPqeAutomaton(const ConjunctiveQuery& query,
                                       const ProbabilisticDatabase& pdb,
                                       const UrConstructionOptions& options) {
  PQE_TRACE_SPAN_VAR(span, "pqe.build_automaton");
  span.AttrUint("facts", pdb.NumFacts());
  PqeAutomaton out;
  // Projected probabilities (Theorem 1's WLOG: facts over relations outside
  // Q marginalize to 1 and are dropped before building d).
  PQE_ASSIGN_OR_RETURN(ProjectedProbabilisticDatabase proj,
                       ProjectProbabilisticDatabase(pdb, query));
  const ProbabilisticDatabase& ppdb = proj.pdb;

  PQE_ASSIGN_OR_RETURN(
      out.ur, BuildUrAutomaton(query, ppdb.database(), options));
  // BuildUrAutomaton projects again internally; it is a no-op here, and the
  // projected FactIds used as symbols line up with ppdb's FactIds.

  const Nfta& base = out.ur.nfta;
  MultiplierNfta mult = MultiplierNfta::FromSkeleton(base);

  // Per-fact gadget widths and the common denominator d.
  std::vector<uint64_t> width(ppdb.NumFacts(), 0);
  out.denominator = BigUint(1);
  for (FactId f = 0; f < ppdb.NumFacts(); ++f) {
    const Probability p = ppdb.probability(f);
    width[f] = FactGadgetWidth(p);
    out.denominator = out.denominator.MulU64(p.den);
  }

  // Every transition of the translated Proposition 1 automaton consumes one
  // fact literal; attach w_i to positive literals and d_i − w_i to negative
  // ones, dropping impossible (multiplier 0) branches.
  for (const Nfta::Transition& t : base.transitions()) {
    PQE_CHECK(t.symbol != Nfta::kLambdaSymbol);
    const FactId f = LiteralBase(t.symbol);
    PQE_CHECK(f < ppdb.NumFacts());
    const Probability p = ppdb.probability(f);
    const uint64_t multiplier =
        IsNegativeLiteral(t.symbol) ? (p.den - p.num) : p.num;
    if (multiplier == 0) continue;
    PQE_RETURN_IF_ERROR(
        mult.AddTransition(t.from, t.symbol, multiplier, t.children.ToVector(),
                           width[f] == 0 ? 0 : width[f]));
  }

  // k = |D'| + Σ width_i: each fact contributes its literal node plus a
  // fixed number of comparator nodes regardless of presence/absence.
  out.tree_size = out.ur.tree_size;
  for (FactId f = 0; f < ppdb.NumFacts(); ++f) {
    out.tree_size += static_cast<size_t>(width[f]);
  }

  {
    PQE_TRACE_SPAN_VAR(mult_span, "pqe.multiplier_translate");
    PQE_ASSIGN_OR_RETURN(out.weighted, mult.ToNfta());
    out.weighted.Trim();
    mult_span.AttrUint("nfta_states", out.weighted.NumStates());
    mult_span.AttrUint("nfta_transitions", out.weighted.NumTransitions());
  }
  span.AttrUint("tree_size", out.tree_size);
  return out;
}

Result<PqeEstimateResult> PqeEstimate(const ConjunctiveQuery& query,
                                      const ProbabilisticDatabase& pdb,
                                      const EstimatorConfig& config,
                                      const UrConstructionOptions& options) {
  PQE_TRACE_SPAN_VAR(span, "pqe.estimate");
  PQE_ASSIGN_OR_RETURN(PqeAutomaton automaton,
                       BuildPqeAutomaton(query, pdb, options));
  PqeEstimateResult out;
  out.tree_size = automaton.tree_size;
  out.nfta_states = automaton.weighted.NumStates();
  out.nfta_transitions = automaton.weighted.NumTransitions();
  out.decomposition_width = automaton.ur.hd.Width();
  PQE_ASSIGN_OR_RETURN(
      CountEstimate count,
      CountNftaTrees(automaton.weighted, automaton.tree_size, config));
  out.stats = count.stats;
  out.tree_count = count.value;
  // Pr_H(Q) = d⁻¹ · |L_k(T')|.
  const double log2_d =
      ExtFloat::FromBigUint(automaton.denominator).Log2();
  out.log2_probability = count.value.Log2() - log2_d;
  // Project into [0, 1]: the raw estimate can exceed 1 within its ε band,
  // and projecting a probability onto the feasible set never increases the
  // error. log2_probability stays unclamped for diagnostics.
  out.probability = std::min(std::exp2(out.log2_probability), 1.0);
  return out;
}

Result<BigRational> PqeExactViaAutomaton(const ConjunctiveQuery& query,
                                         const ProbabilisticDatabase& pdb,
                                         const UrConstructionOptions& options) {
  PQE_ASSIGN_OR_RETURN(PqeAutomaton automaton,
                       BuildPqeAutomaton(query, pdb, options));
  PQE_ASSIGN_OR_RETURN(
      BigUint count,
      ExactCountNftaTrees(automaton.weighted, automaton.tree_size));
  return BigRational(std::move(count), automaton.denominator);
}

}  // namespace pqe
