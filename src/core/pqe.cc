#include "core/pqe.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "automata/augmented_nfta.h"  // literal encoding helpers
#include "automata/multiplier_nfta.h"
#include "core/projection.h"
#include "counting/count_nfta.h"
#include "counting/exact.h"
#include "obs/trace.h"
#include "util/check.h"

namespace pqe {

Result<PqeSkeleton> BuildPqeSkeleton(const ConjunctiveQuery& query,
                                     const Database& db,
                                     const UrConstructionOptions& options) {
  PQE_TRACE_SPAN_VAR(span, "pqe.build_skeleton");
  span.AttrUint("facts", db.NumFacts());
  PqeSkeleton out;
  // Theorem 1's WLOG: facts over relations outside Q marginalize to 1 and
  // are dropped before the automaton (and later the denominator d) is built.
  PQE_ASSIGN_OR_RETURN(ProjectedDatabase proj, ProjectDatabase(db, query));
  out.original_fact = std::move(proj.original_fact);
  out.dropped_facts = proj.dropped_facts;
  PQE_ASSIGN_OR_RETURN(out.ur, BuildUrAutomaton(query, proj.db, options));
  // BuildUrAutomaton projects again internally; it is a no-op here, and the
  // projected FactIds used as symbols line up with proj.db's FactIds.
  span.AttrUint("tree_size", out.ur.tree_size);
  return out;
}

Result<BoundPqeAutomaton> BindPqeAutomaton(
    const PqeSkeleton& skeleton, const std::vector<Probability>& probs) {
  PQE_TRACE_SPAN_VAR(span, "pqe.bind");
  span.AttrUint("facts", probs.size());
  const Nfta& base = skeleton.ur.nfta;
  BoundPqeAutomaton out;
  MultiplierNfta mult = MultiplierNfta::FromSkeleton(base);

  // Per-fact gadget widths and the common denominator d. The width is
  // GadgetDepth(d_i): it covers every multiplier the fact can take
  // (0..d_i), so the translated automaton's shape depends only on the
  // denominators — never the numerators — which is what lets
  // RebindPqeAutomaton patch a new labelling into a clone in place.
  auto layout = std::make_shared<PqeBindLayout>();
  std::vector<uint64_t> width(probs.size(), 0);
  out.denominator = BigUint(1);
  layout->fact_den.resize(probs.size());
  for (FactId f = 0; f < probs.size(); ++f) {
    const Probability p = probs[f];
    if (p.den < 1 || p.num > p.den) {
      return Status::InvalidArgument(
          "BindPqeAutomaton: fact probability not a rational in [0, 1]");
    }
    width[f] = MultiplierNfta::GadgetDepth(std::max<uint64_t>(p.den, 1));
    layout->fact_den[f] = p.den;
    out.denominator = out.denominator.MulU64(p.den);
  }

  // Every transition of the translated Proposition 1 automaton consumes one
  // fact literal; attach w_i to positive literals and d_i − w_i to negative
  // ones. Impossible (multiplier 0) branches are kept as slots — the stable
  // translation routes them into its sink — so that a later delta can
  // resurrect them by patching (p→0 and 0→p updates stay patchable).
  for (const Nfta::Transition& t : base.transitions()) {
    PQE_CHECK(t.symbol != Nfta::kLambdaSymbol);
    const FactId f = LiteralBase(t.symbol);
    if (f >= probs.size()) {
      return Status::InvalidArgument(
          "BindPqeAutomaton: probability vector does not cover the "
          "skeleton's projected facts");
    }
    const Probability p = probs[f];
    const bool negative = IsNegativeLiteral(t.symbol);
    const uint64_t multiplier = negative ? (p.den - p.num) : p.num;
    layout->slot_negative.push_back(negative ? 1 : 0);
    layout->slot_fact.push_back(f);
    PQE_RETURN_IF_ERROR(mult.AddTransition(
        t.from, t.symbol, multiplier, t.children.ToVector(), width[f]));
  }

  // fact → slot CSR (counting sort, stable in slot order).
  layout->fact_offsets.assign(probs.size() + 1, 0);
  for (FactId f : layout->slot_fact) ++layout->fact_offsets[f + 1];
  for (size_t f = 0; f < probs.size(); ++f) {
    layout->fact_offsets[f + 1] += layout->fact_offsets[f];
  }
  layout->fact_slots.resize(layout->slot_fact.size());
  {
    std::vector<uint32_t> cursor(layout->fact_offsets.begin(),
                                 layout->fact_offsets.end() - 1);
    for (uint32_t s = 0; s < layout->slot_fact.size(); ++s) {
      layout->fact_slots[cursor[layout->slot_fact[s]]++] = s;
    }
  }

  // k = |D'| + Σ width_i: each fact contributes its literal node plus a
  // fixed number of comparator nodes regardless of presence/absence.
  out.tree_size = skeleton.ur.tree_size;
  for (FactId f = 0; f < probs.size(); ++f) {
    out.tree_size += static_cast<size_t>(width[f]);
  }

  {
    PQE_TRACE_SPAN_VAR(mult_span, "pqe.multiplier_translate");
    PQE_ASSIGN_OR_RETURN(out.weighted, mult.ToNftaStable(&layout->stable));
    // No Trim: the stable layout's dead branches (sink rules) are what keep
    // the shape value-independent; the counting layers' forward/backward
    // liveness pruning discards them at estimation time.
    mult_span.AttrUint("nfta_states", out.weighted.NumStates());
    mult_span.AttrUint("nfta_transitions", out.weighted.NumTransitions());
  }
  out.layout = std::move(layout);
  span.AttrUint("tree_size", out.tree_size);
  return out;
}

Result<BoundPqeAutomaton> RebindPqeAutomaton(
    const BoundPqeAutomaton& prior, const std::vector<Probability>& old_probs,
    const std::vector<Probability>& new_probs, size_t* patched_slots) {
  PQE_TRACE_SPAN_VAR(span, "pqe.delta_rebind");
  if (patched_slots != nullptr) *patched_slots = 0;
  if (prior.layout == nullptr) {
    return Status::InvalidArgument(
        "RebindPqeAutomaton: prior bind carries no layout");
  }
  const PqeBindLayout& layout = *prior.layout;
  if (old_probs.size() != layout.fact_den.size() ||
      new_probs.size() != layout.fact_den.size()) {
    return Status::InvalidArgument(
        "RebindPqeAutomaton: probability vector size mismatch");
  }
  // Validate before touching anything, so a failed rebind has no effects.
  for (FactId f = 0; f < new_probs.size(); ++f) {
    const Probability op = old_probs[f];
    const Probability np = new_probs[f];
    if (np.num == op.num && np.den == op.den) continue;
    if (np.den != layout.fact_den[f]) {
      return Status::InvalidArgument(
          "RebindPqeAutomaton: fact denominator changed — gadget widths "
          "differ, full rebind required");
    }
    if (np.num > np.den) {
      return Status::InvalidArgument(
          "RebindPqeAutomaton: fact probability not a rational in [0, 1]");
    }
  }
  BoundPqeAutomaton out;
  // Deep copy: the Nfta copy rebases child spans and keeps the warm CSR
  // adjacency; patching below only invalidates the run-state index.
  out.weighted = prior.weighted;
  out.tree_size = prior.tree_size;
  out.denominator = prior.denominator;  // dens unchanged ⇒ d unchanged
  out.layout = prior.layout;
  size_t patched = 0;
  for (FactId f = 0; f < new_probs.size(); ++f) {
    const Probability op = old_probs[f];
    const Probability np = new_probs[f];
    if (np.num == op.num && np.den == op.den) continue;
    for (uint32_t i = layout.fact_offsets[f]; i < layout.fact_offsets[f + 1];
         ++i) {
      const uint32_t slot = layout.fact_slots[i];
      const uint64_t multiplier =
          layout.slot_negative[slot] ? (np.den - np.num) : np.num;
      PatchStableNftaSlot(&out.weighted, layout.stable, slot, multiplier);
      ++patched;
    }
  }
  if (patched_slots != nullptr) *patched_slots = patched;
  span.AttrUint("patched_slots", patched);
  return out;
}

Result<PqeAutomaton> BuildPqeAutomaton(const ConjunctiveQuery& query,
                                       const ProbabilisticDatabase& pdb,
                                       const UrConstructionOptions& options) {
  PQE_TRACE_SPAN_VAR(span, "pqe.build_automaton");
  span.AttrUint("facts", pdb.NumFacts());
  // The cold path is the skeleton/bind composition, so a warm rebind of a
  // cached skeleton (src/serve/) is bit-identical to this by construction.
  PQE_ASSIGN_OR_RETURN(PqeSkeleton skeleton,
                       BuildPqeSkeleton(query, pdb.database(), options));
  PQE_ASSIGN_OR_RETURN(
      std::vector<Probability> probs,
      ProjectedFactProbabilities(skeleton.original_fact, pdb));
  PQE_ASSIGN_OR_RETURN(BoundPqeAutomaton bound,
                       BindPqeAutomaton(skeleton, probs));
  PqeAutomaton out;
  out.ur = std::move(skeleton.ur);
  out.weighted = std::move(bound.weighted);
  out.tree_size = bound.tree_size;
  out.denominator = std::move(bound.denominator);
  span.AttrUint("tree_size", out.tree_size);
  return out;
}

Result<PqeEstimateResult> PqeEstimate(const ConjunctiveQuery& query,
                                      const ProbabilisticDatabase& pdb,
                                      const EstimatorConfig& config,
                                      const UrConstructionOptions& options) {
  PQE_TRACE_SPAN_VAR(span, "pqe.estimate");
  PQE_ASSIGN_OR_RETURN(PqeAutomaton automaton,
                       BuildPqeAutomaton(query, pdb, options));
  PqeEstimateResult out;
  out.tree_size = automaton.tree_size;
  out.nfta_states = automaton.weighted.NumStates();
  out.nfta_transitions = automaton.weighted.NumTransitions();
  out.decomposition_width = automaton.ur.hd.Width();
  PQE_ASSIGN_OR_RETURN(
      CountEstimate count,
      CountNftaTrees(automaton.weighted, automaton.tree_size, config));
  out.stats = count.stats;
  out.tree_count = count.value;
  // Pr_H(Q) = d⁻¹ · |L_k(T')|.
  const double log2_d =
      ExtFloat::FromBigUint(automaton.denominator).Log2();
  out.log2_probability = count.value.Log2() - log2_d;
  // Project into [0, 1]: the raw estimate can exceed 1 within its ε band,
  // and projecting a probability onto the feasible set never increases the
  // error. log2_probability stays unclamped for diagnostics.
  out.probability = std::min(std::exp2(out.log2_probability), 1.0);
  return out;
}

Result<BigRational> PqeExactViaAutomaton(const ConjunctiveQuery& query,
                                         const ProbabilisticDatabase& pdb,
                                         const UrConstructionOptions& options) {
  PQE_ASSIGN_OR_RETURN(PqeAutomaton automaton,
                       BuildPqeAutomaton(query, pdb, options));
  PQE_ASSIGN_OR_RETURN(
      BigUint count,
      ExactCountNftaTrees(automaton.weighted, automaton.tree_size));
  return BigRational(std::move(count), automaton.denominator);
}

}  // namespace pqe
