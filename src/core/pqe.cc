#include "core/pqe.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "automata/augmented_nfta.h"  // literal encoding helpers
#include "automata/multiplier_nfta.h"
#include "core/projection.h"
#include "counting/count_nfta.h"
#include "counting/exact.h"
#include "obs/trace.h"
#include "util/check.h"

namespace pqe {

namespace {

// The per-fact comparator width: both branches must contribute the same
// number of gadget nodes so that every accepted tree lands in the same size
// stratum. Branches with multiplier 0 do not exist and impose no width.
uint64_t FactGadgetWidth(const Probability& p) {
  uint64_t width = 0;
  if (p.num >= 1) {
    width = std::max(width, MultiplierNfta::GadgetDepth(p.num));
  }
  if (p.den - p.num >= 1) {
    width = std::max(width, MultiplierNfta::GadgetDepth(p.den - p.num));
  }
  return width;
}

}  // namespace

Result<PqeSkeleton> BuildPqeSkeleton(const ConjunctiveQuery& query,
                                     const Database& db,
                                     const UrConstructionOptions& options) {
  PQE_TRACE_SPAN_VAR(span, "pqe.build_skeleton");
  span.AttrUint("facts", db.NumFacts());
  PqeSkeleton out;
  // Theorem 1's WLOG: facts over relations outside Q marginalize to 1 and
  // are dropped before the automaton (and later the denominator d) is built.
  PQE_ASSIGN_OR_RETURN(ProjectedDatabase proj, ProjectDatabase(db, query));
  out.original_fact = std::move(proj.original_fact);
  out.dropped_facts = proj.dropped_facts;
  PQE_ASSIGN_OR_RETURN(out.ur, BuildUrAutomaton(query, proj.db, options));
  // BuildUrAutomaton projects again internally; it is a no-op here, and the
  // projected FactIds used as symbols line up with proj.db's FactIds.
  span.AttrUint("tree_size", out.ur.tree_size);
  return out;
}

Result<BoundPqeAutomaton> BindPqeAutomaton(
    const PqeSkeleton& skeleton, const std::vector<Probability>& probs) {
  PQE_TRACE_SPAN_VAR(span, "pqe.bind");
  span.AttrUint("facts", probs.size());
  const Nfta& base = skeleton.ur.nfta;
  BoundPqeAutomaton out;
  MultiplierNfta mult = MultiplierNfta::FromSkeleton(base);

  // Per-fact gadget widths and the common denominator d.
  std::vector<uint64_t> width(probs.size(), 0);
  out.denominator = BigUint(1);
  for (FactId f = 0; f < probs.size(); ++f) {
    const Probability p = probs[f];
    width[f] = FactGadgetWidth(p);
    out.denominator = out.denominator.MulU64(p.den);
  }

  // Every transition of the translated Proposition 1 automaton consumes one
  // fact literal; attach w_i to positive literals and d_i − w_i to negative
  // ones, dropping impossible (multiplier 0) branches.
  for (const Nfta::Transition& t : base.transitions()) {
    PQE_CHECK(t.symbol != Nfta::kLambdaSymbol);
    const FactId f = LiteralBase(t.symbol);
    if (f >= probs.size()) {
      return Status::InvalidArgument(
          "BindPqeAutomaton: probability vector does not cover the "
          "skeleton's projected facts");
    }
    const Probability p = probs[f];
    const uint64_t multiplier =
        IsNegativeLiteral(t.symbol) ? (p.den - p.num) : p.num;
    if (multiplier == 0) continue;
    PQE_RETURN_IF_ERROR(
        mult.AddTransition(t.from, t.symbol, multiplier, t.children.ToVector(),
                           width[f] == 0 ? 0 : width[f]));
  }

  // k = |D'| + Σ width_i: each fact contributes its literal node plus a
  // fixed number of comparator nodes regardless of presence/absence.
  out.tree_size = skeleton.ur.tree_size;
  for (FactId f = 0; f < probs.size(); ++f) {
    out.tree_size += static_cast<size_t>(width[f]);
  }

  {
    PQE_TRACE_SPAN_VAR(mult_span, "pqe.multiplier_translate");
    PQE_ASSIGN_OR_RETURN(out.weighted, mult.ToNfta());
    out.weighted.Trim();
    mult_span.AttrUint("nfta_states", out.weighted.NumStates());
    mult_span.AttrUint("nfta_transitions", out.weighted.NumTransitions());
  }
  span.AttrUint("tree_size", out.tree_size);
  return out;
}

Result<PqeAutomaton> BuildPqeAutomaton(const ConjunctiveQuery& query,
                                       const ProbabilisticDatabase& pdb,
                                       const UrConstructionOptions& options) {
  PQE_TRACE_SPAN_VAR(span, "pqe.build_automaton");
  span.AttrUint("facts", pdb.NumFacts());
  // The cold path is the skeleton/bind composition, so a warm rebind of a
  // cached skeleton (src/serve/) is bit-identical to this by construction.
  PQE_ASSIGN_OR_RETURN(PqeSkeleton skeleton,
                       BuildPqeSkeleton(query, pdb.database(), options));
  PQE_ASSIGN_OR_RETURN(
      std::vector<Probability> probs,
      ProjectedFactProbabilities(skeleton.original_fact, pdb));
  PQE_ASSIGN_OR_RETURN(BoundPqeAutomaton bound,
                       BindPqeAutomaton(skeleton, probs));
  PqeAutomaton out;
  out.ur = std::move(skeleton.ur);
  out.weighted = std::move(bound.weighted);
  out.tree_size = bound.tree_size;
  out.denominator = std::move(bound.denominator);
  span.AttrUint("tree_size", out.tree_size);
  return out;
}

Result<PqeEstimateResult> PqeEstimate(const ConjunctiveQuery& query,
                                      const ProbabilisticDatabase& pdb,
                                      const EstimatorConfig& config,
                                      const UrConstructionOptions& options) {
  PQE_TRACE_SPAN_VAR(span, "pqe.estimate");
  PQE_ASSIGN_OR_RETURN(PqeAutomaton automaton,
                       BuildPqeAutomaton(query, pdb, options));
  PqeEstimateResult out;
  out.tree_size = automaton.tree_size;
  out.nfta_states = automaton.weighted.NumStates();
  out.nfta_transitions = automaton.weighted.NumTransitions();
  out.decomposition_width = automaton.ur.hd.Width();
  PQE_ASSIGN_OR_RETURN(
      CountEstimate count,
      CountNftaTrees(automaton.weighted, automaton.tree_size, config));
  out.stats = count.stats;
  out.tree_count = count.value;
  // Pr_H(Q) = d⁻¹ · |L_k(T')|.
  const double log2_d =
      ExtFloat::FromBigUint(automaton.denominator).Log2();
  out.log2_probability = count.value.Log2() - log2_d;
  // Project into [0, 1]: the raw estimate can exceed 1 within its ε band,
  // and projecting a probability onto the feasible set never increases the
  // error. log2_probability stays unclamped for diagnostics.
  out.probability = std::min(std::exp2(out.log2_probability), 1.0);
  return out;
}

Result<BigRational> PqeExactViaAutomaton(const ConjunctiveQuery& query,
                                         const ProbabilisticDatabase& pdb,
                                         const UrConstructionOptions& options) {
  PQE_ASSIGN_OR_RETURN(PqeAutomaton automaton,
                       BuildPqeAutomaton(query, pdb, options));
  PQE_ASSIGN_OR_RETURN(
      BigUint count,
      ExactCountNftaTrees(automaton.weighted, automaton.tree_size));
  return BigRational(std::move(count), automaton.denominator);
}

}  // namespace pqe
