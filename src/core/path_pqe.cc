#include "core/path_pqe.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "automata/augmented_nfta.h"  // literal encoding helpers
#include "automata/multiplier_nfa.h"
#include "core/projection.h"
#include "counting/count_nfa.h"
#include "counting/exact.h"
#include "obs/trace.h"
#include "util/check.h"

namespace pqe {

namespace {

Status ValidatePathQuery(const ConjunctiveQuery& query) {
  if (!query.IsSelfJoinFree()) {
    return Status::NotSupported(
        "the Section 3 construction requires a self-join-free query");
  }
  if (!query.IsPathQuery()) {
    return Status::NotSupported(
        "BuildPathQueryNfa requires a path query R1(x1,x2),...,Rn(xn,xn+1)");
  }
  return Status::OK();
}

}  // namespace

Result<PathQueryNfa> BuildPathQueryNfa(const ConjunctiveQuery& query,
                                       const Database& db) {
  PQE_RETURN_IF_ERROR(ValidatePathQuery(query));
  PQE_TRACE_SPAN_VAR(span, "path.build_nfa");
  span.AttrUint("atoms", query.NumAtoms());
  span.AttrUint("facts", db.NumFacts());
  PQE_ASSIGN_OR_RETURN(ProjectedDatabase proj, ProjectDatabase(db, query));
  const Database& d = proj.db;
  const size_t n = query.NumAtoms();

  PathQueryNfa out;
  out.word_length = d.NumFacts();
  out.dropped_facts = proj.dropped_facts;
  Nfa& nfa = out.nfa;
  nfa.EnsureAlphabetSize(2 * d.NumFacts());

  // Facts of each query atom's relation, in ≺_i (= FactId) order.
  std::vector<const std::vector<FactId>*> block(n);
  for (size_t i = 0; i < n; ++i) {
    block[i] = &d.FactsOf(query.atom(i).relation);
    if (block[i]->empty()) {
      // Some relation is empty: the query is unsatisfiable on every
      // subinstance, and the automaton's language is empty.
      return out;
    }
  }

  // State [i, j, k]: in atom block i, about to emit the presence/absence of
  // the j-th R_i-fact, having committed to the k-th R_i-fact as the witness
  // for atom i. Plus a single accepting end state.
  std::vector<std::vector<StateId>> state(n);  // [i][j * c_i + k]
  for (size_t i = 0; i < n; ++i) {
    const size_t c = block[i]->size();
    state[i].resize(c * c);
    for (size_t jk = 0; jk < c * c; ++jk) state[i][jk] = nfa.AddState();
  }
  const StateId s_end = nfa.AddState();
  nfa.MarkAccepting(s_end);
  for (size_t k = 0; k < block[0]->size(); ++k) {
    nfa.MarkInitial(state[0][0 * block[0]->size() + k]);
  }

  for (size_t i = 0; i < n; ++i) {
    const auto& facts = *block[i];
    const size_t c = facts.size();
    for (size_t k = 0; k < c; ++k) {
      const Fact& witness = d.fact(facts[k]);
      for (size_t j = 0; j < c; ++j) {
        const StateId from = state[i][j * c + k];
        const SymbolId pos = PositiveLiteral(facts[j]);
        const SymbolId neg = NegativeLiteral(facts[j]);
        const bool is_witness = (j == k);
        if (j + 1 < c) {
          const StateId to = state[i][(j + 1) * c + k];
          nfa.AddTransition(from, pos, to);
          if (!is_witness) nfa.AddTransition(from, neg, to);
        } else if (i + 1 < n) {
          // Block boundary: commit to a joining witness of atom i+1.
          const auto& next_facts = *block[i + 1];
          for (size_t m = 0; m < next_facts.size(); ++m) {
            const Fact& next_witness = d.fact(next_facts[m]);
            if (next_witness.args[0] != witness.args[1]) continue;
            const StateId to = state[i + 1][0 * next_facts.size() + m];
            nfa.AddTransition(from, pos, to);
            if (!is_witness) nfa.AddTransition(from, neg, to);
          }
        } else {
          nfa.AddTransition(from, pos, s_end);
          if (!is_witness) nfa.AddTransition(from, neg, s_end);
        }
      }
    }
  }
  nfa.Trim();
  span.AttrUint("nfa_states", nfa.NumStates());
  span.AttrUint("nfa_transitions", nfa.NumTransitions());
  return out;
}

Result<PathEstimateResult> PathEstimate(const ConjunctiveQuery& query,
                                        const Database& db,
                                        const EstimatorConfig& config) {
  PQE_ASSIGN_OR_RETURN(PathQueryNfa m, BuildPathQueryNfa(query, db));
  PathEstimateResult out;
  out.nfa_states = m.nfa.NumStates();
  out.nfa_transitions = m.nfa.NumTransitions();
  out.word_length = m.word_length;
  PQE_ASSIGN_OR_RETURN(CountEstimate count,
                       CountNfaStrings(m.nfa, m.word_length, config));
  out.stats = count.stats;
  // UR(Q, D) = |L_{|D'|}(M)| · 2^{|D| − |D'|}.
  out.ur = count.value.Mul(
      ExtFloat::FromBigUint(BigUint::PowerOfTwo(m.dropped_facts)));
  return out;
}

Result<BigUint> PathUniformReliabilityExact(const ConjunctiveQuery& query,
                                            const Database& db) {
  PQE_ASSIGN_OR_RETURN(PathQueryNfa m, BuildPathQueryNfa(query, db));
  PQE_ASSIGN_OR_RETURN(BigUint count,
                       ExactCountNfaStrings(m.nfa, m.word_length));
  return count.Mul(BigUint::PowerOfTwo(m.dropped_facts));
}

Result<PathPqeSkeleton> BuildPathPqeSkeleton(const ConjunctiveQuery& query,
                                             const Database& db) {
  PQE_TRACE_SPAN_VAR(span, "path.build_skeleton");
  span.AttrUint("facts", db.NumFacts());
  PathPqeSkeleton out;
  PQE_ASSIGN_OR_RETURN(ProjectedDatabase proj, ProjectDatabase(db, query));
  out.original_fact = std::move(proj.original_fact);
  PQE_ASSIGN_OR_RETURN(out.base, BuildPathQueryNfa(query, proj.db));
  // BuildPathQueryNfa projects again internally; a no-op here, and the
  // literal symbols line up with proj.db's FactIds.
  return out;
}

Result<BoundPathNfa> BindPathPqeNfa(const PathPqeSkeleton& skeleton,
                                    const std::vector<Probability>& probs) {
  PQE_TRACE_SPAN_VAR(span, "path.bind");
  span.AttrUint("facts", probs.size());
  BoundPathNfa out;
  // Width = GadgetDepth(d_i): covers every multiplier 0..d_i, so the
  // automaton's shape depends only on denominators — the precondition for
  // RebindPathPqeNfa's in-place patching (see BindPqeAutomaton).
  auto layout = std::make_shared<PathBindLayout>();
  out.denominator = BigUint(1);
  std::vector<uint64_t> width(probs.size(), 0);
  layout->fact_den.resize(probs.size());
  for (FactId f = 0; f < probs.size(); ++f) {
    const Probability p = probs[f];
    if (p.den < 1 || p.num > p.den) {
      return Status::InvalidArgument(
          "BindPathPqeNfa: fact probability not a rational in [0, 1]");
    }
    width[f] = MultiplierNfa::GadgetDepth(std::max<uint64_t>(p.den, 1));
    layout->fact_den[f] = p.den;
    out.denominator = out.denominator.MulU64(p.den);
  }
  out.word_length = skeleton.base.word_length;
  for (FactId f = 0; f < probs.size(); ++f) {
    out.word_length += static_cast<size_t>(width[f]);
  }

  MultiplierNfa mult = MultiplierNfa::FromSkeleton(skeleton.base.nfa);
  for (const Nfa::Transition& t : skeleton.base.nfa.transitions()) {
    const FactId f = LiteralBase(t.symbol);
    if (f >= probs.size()) {
      return Status::InvalidArgument(
          "BindPathPqeNfa: probability vector does not cover the skeleton's "
          "projected facts");
    }
    const Probability p = probs[f];
    const bool negative = IsNegativeLiteral(t.symbol);
    const uint64_t multiplier = negative ? (p.den - p.num) : p.num;
    // Multiplier-0 branches stay as slots (routed to the stable sink) so a
    // later delta can resurrect them by patching.
    layout->slot_negative.push_back(negative ? 1 : 0);
    layout->slot_fact.push_back(f);
    PQE_RETURN_IF_ERROR(mult.AddTransition(t.from, t.symbol, multiplier,
                                           t.to, width[f]));
  }
  // fact → slot CSR (counting sort, stable in slot order).
  layout->fact_offsets.assign(probs.size() + 1, 0);
  for (FactId f : layout->slot_fact) ++layout->fact_offsets[f + 1];
  for (size_t f = 0; f < probs.size(); ++f) {
    layout->fact_offsets[f + 1] += layout->fact_offsets[f];
  }
  layout->fact_slots.resize(layout->slot_fact.size());
  {
    std::vector<uint32_t> cursor(layout->fact_offsets.begin(),
                                 layout->fact_offsets.end() - 1);
    for (uint32_t s = 0; s < layout->slot_fact.size(); ++s) {
      layout->fact_slots[cursor[layout->slot_fact[s]]++] = s;
    }
  }
  {
    PQE_TRACE_SPAN_VAR(mult_span, "pqe.multiplier_translate");
    PQE_ASSIGN_OR_RETURN(out.nfa, mult.ToNfaStable(&layout->stable));
    // No Trim: the stable layout's sink rules keep the shape
    // value-independent; counting liveness pruning discards them.
    mult_span.AttrUint("nfa_states", out.nfa.NumStates());
    mult_span.AttrUint("nfa_transitions", out.nfa.NumTransitions());
  }
  out.layout = std::move(layout);
  return out;
}

Result<BoundPathNfa> RebindPathPqeNfa(const BoundPathNfa& prior,
                                      const std::vector<Probability>& old_probs,
                                      const std::vector<Probability>& new_probs,
                                      size_t* patched_slots) {
  PQE_TRACE_SPAN_VAR(span, "path.delta_rebind");
  if (patched_slots != nullptr) *patched_slots = 0;
  if (prior.layout == nullptr) {
    return Status::InvalidArgument(
        "RebindPathPqeNfa: prior bind carries no layout");
  }
  const PathBindLayout& layout = *prior.layout;
  if (old_probs.size() != layout.fact_den.size() ||
      new_probs.size() != layout.fact_den.size()) {
    return Status::InvalidArgument(
        "RebindPathPqeNfa: probability vector size mismatch");
  }
  for (FactId f = 0; f < new_probs.size(); ++f) {
    const Probability op = old_probs[f];
    const Probability np = new_probs[f];
    if (np.num == op.num && np.den == op.den) continue;
    if (np.den != layout.fact_den[f]) {
      return Status::InvalidArgument(
          "RebindPathPqeNfa: fact denominator changed — gadget widths "
          "differ, full rebind required");
    }
    if (np.num > np.den) {
      return Status::InvalidArgument(
          "RebindPathPqeNfa: fact probability not a rational in [0, 1]");
    }
  }
  BoundPathNfa out;
  // Deep copy; the out-CSR stays warm, patching only invalidates the in-CSR.
  out.nfa = prior.nfa;
  out.word_length = prior.word_length;
  out.denominator = prior.denominator;  // dens unchanged ⇒ d unchanged
  out.layout = prior.layout;
  size_t patched = 0;
  for (FactId f = 0; f < new_probs.size(); ++f) {
    const Probability op = old_probs[f];
    const Probability np = new_probs[f];
    if (np.num == op.num && np.den == op.den) continue;
    for (uint32_t i = layout.fact_offsets[f]; i < layout.fact_offsets[f + 1];
         ++i) {
      const uint32_t slot = layout.fact_slots[i];
      const uint64_t multiplier =
          layout.slot_negative[slot] ? (np.den - np.num) : np.num;
      PatchStableNfaSlot(&out.nfa, layout.stable, slot, multiplier);
      ++patched;
    }
  }
  if (patched_slots != nullptr) *patched_slots = patched;
  span.AttrUint("patched_slots", patched);
  return out;
}

Result<PathPqeResult> EstimatePathSkeleton(const PathPqeSkeleton& skeleton,
                                           const ProbabilisticDatabase& pdb,
                                           const EstimatorConfig& config) {
  PQE_ASSIGN_OR_RETURN(
      std::vector<Probability> probs,
      ProjectedFactProbabilities(skeleton.original_fact, pdb));
  PQE_ASSIGN_OR_RETURN(BoundPathNfa m, BindPathPqeNfa(skeleton, probs));
  PathPqeResult out;
  out.word_length = m.word_length;
  out.nfa_states = m.nfa.NumStates();
  out.nfa_transitions = m.nfa.NumTransitions();
  PQE_ASSIGN_OR_RETURN(CountEstimate count,
                       CountNfaStrings(m.nfa, m.word_length, config));
  out.stats = count.stats;
  out.string_count = count.value;
  const double log2_d = ExtFloat::FromBigUint(m.denominator).Log2();
  out.log2_probability = count.value.Log2() - log2_d;
  out.probability = std::min(std::exp2(out.log2_probability), 1.0);
  return out;
}

Result<BigRational> ExactPathSkeleton(const PathPqeSkeleton& skeleton,
                                      const ProbabilisticDatabase& pdb) {
  PQE_ASSIGN_OR_RETURN(
      std::vector<Probability> probs,
      ProjectedFactProbabilities(skeleton.original_fact, pdb));
  PQE_ASSIGN_OR_RETURN(BoundPathNfa m, BindPathPqeNfa(skeleton, probs));
  PQE_ASSIGN_OR_RETURN(BigUint count,
                       ExactCountNfaStrings(m.nfa, m.word_length));
  return BigRational(std::move(count), m.denominator);
}

Result<PathPqeResult> PathPqeEstimate(const ConjunctiveQuery& query,
                                      const ProbabilisticDatabase& pdb,
                                      const EstimatorConfig& config) {
  PQE_TRACE_SPAN_VAR(span, "path.estimate");
  // Cold estimate = skeleton + shared tail, so a warm rebind of a cached
  // skeleton (src/serve/) is bit-identical to this path.
  PQE_ASSIGN_OR_RETURN(PathPqeSkeleton skeleton,
                       BuildPathPqeSkeleton(query, pdb.database()));
  return EstimatePathSkeleton(skeleton, pdb, config);
}

Result<BigRational> PathPqeExact(const ConjunctiveQuery& query,
                                 const ProbabilisticDatabase& pdb) {
  PQE_ASSIGN_OR_RETURN(PathPqeSkeleton skeleton,
                       BuildPathPqeSkeleton(query, pdb.database()));
  return ExactPathSkeleton(skeleton, pdb);
}

}  // namespace pqe
