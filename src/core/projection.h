#ifndef PQE_CORE_PROJECTION_H_
#define PQE_CORE_PROJECTION_H_

#include <vector>

#include "cq/query.h"
#include "pdb/database.h"
#include "pdb/probabilistic_database.h"
#include "util/result.h"

namespace pqe {

/// A database restricted to the relations occurring in a query ("projected"
/// in the sense of Theorem 3's proof: facts over other relations marginalize
/// away). FactIds in `db` are dense and ordered like the originals;
/// `original_fact` maps them back.
struct ProjectedDatabase {
  Database db;
  std::vector<FactId> original_fact;  // projected FactId -> original FactId
  size_t dropped_facts = 0;           // |D| − |D'|
};

/// Restricts `db` to the relations mentioned by `query`.
Result<ProjectedDatabase> ProjectDatabase(const Database& db,
                                          const ConjunctiveQuery& query);

/// Restricts `db` to an explicit relation set — the primitive both
/// ProjectDatabase and the RPQ product construction (src/rpq/product.h,
/// which projects by the regex's edge labels rather than query atoms) are
/// built on. Fails when a relation is outside the schema.
Result<ProjectedDatabase> ProjectDatabaseToRelations(
    const Database& db, const std::vector<RelationId>& relations);

/// As above, carrying fact probabilities along.
struct ProjectedProbabilisticDatabase {
  ProbabilisticDatabase pdb;
  std::vector<FactId> original_fact;
  size_t dropped_facts = 0;
};
Result<ProjectedProbabilisticDatabase> ProjectProbabilisticDatabase(
    const ProbabilisticDatabase& pdb, const ConjunctiveQuery& query);

/// Pulls per-fact probabilities through a projection: element i is
/// pdb.probability(original_fact[i]), i.e. the label of projected fact i.
/// This is the probability-dependent half of ProjectProbabilisticDatabase;
/// binding a cached skeleton (core/pqe.h, core/path_pqe.h) needs only this
/// vector, not a re-projected database. Fails when `original_fact` mentions
/// a fact outside `pdb` (skeleton and database mismatch).
Result<std::vector<Probability>> ProjectedFactProbabilities(
    const std::vector<FactId>& original_fact,
    const ProbabilisticDatabase& pdb);

}  // namespace pqe

#endif  // PQE_CORE_PROJECTION_H_
