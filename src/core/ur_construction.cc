#include "core/ur_construction.h"

#include <algorithm>
#include <map>
#include <vector>

#include "core/projection.h"
#include "counting/count_nfta.h"
#include "counting/exact.h"
#include "obs/trace.h"
#include "util/check.h"

namespace pqe {

namespace {

// All mutually consistent witness-fact tuples for the atoms ξ(p) of one
// decomposition vertex: S(p) of Proposition 1. A tuple induces a partial
// assignment of query variables (vars(ξ(p))) to constants.
struct VertexStates {
  std::vector<std::vector<FactId>> tuples;
  std::vector<std::vector<int64_t>> assignments;  // indexed by VarId, -1 free
};

constexpr int64_t kFree = -1;

// Extends `assignment` with atom := fact; returns false on conflict.
// Records touched vars for rollback.
bool TryBind(const Atom& atom, const Fact& fact,
             std::vector<int64_t>* assignment,
             std::vector<VarId>* touched) {
  for (size_t i = 0; i < atom.vars.size(); ++i) {
    const VarId v = atom.vars[i];
    const int64_t val = static_cast<int64_t>(fact.args[i]);
    if ((*assignment)[v] == kFree) {
      (*assignment)[v] = val;
      touched->push_back(v);
    } else if ((*assignment)[v] != val) {
      return false;
    }
  }
  return true;
}

void EnumerateStates(const ConjunctiveQuery& query, const Database& db,
                     const std::vector<uint32_t>& xi, size_t pos,
                     std::vector<FactId>* tuple,
                     std::vector<int64_t>* assignment, VertexStates* out) {
  if (pos == xi.size()) {
    out->tuples.push_back(*tuple);
    out->assignments.push_back(*assignment);
    return;
  }
  const Atom& atom = query.atom(xi[pos]);
  for (FactId fid : db.FactsOf(atom.relation)) {
    std::vector<VarId> touched;
    if (TryBind(atom, db.fact(fid), assignment, &touched)) {
      tuple->push_back(fid);
      EnumerateStates(query, db, xi, pos + 1, tuple, assignment, out);
      tuple->pop_back();
    }
    for (VarId v : touched) (*assignment)[v] = kFree;
  }
}

// True iff two partial assignments agree on every variable both assign.
bool Consistent(const std::vector<int64_t>& a, const std::vector<int64_t>& b) {
  for (size_t v = 0; v < a.size(); ++v) {
    if (a[v] != kFree && b[v] != kFree && a[v] != b[v]) return false;
  }
  return true;
}

// Key of an assignment restricted to `vars` (all of which it must assign).
std::vector<int64_t> ProjectKey(const std::vector<int64_t>& assignment,
                                const std::vector<VarId>& vars) {
  std::vector<int64_t> key;
  key.reserve(vars.size());
  for (VarId v : vars) key.push_back(assignment[v]);
  return key;
}

// Sorted variables of the atoms ξ(p).
std::vector<VarId> XiVars(const ConjunctiveQuery& query,
                          const std::vector<uint32_t>& xi) {
  std::vector<VarId> vars;
  for (uint32_t a : xi) {
    for (VarId v : query.atom(a).vars) vars.push_back(v);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

}  // namespace

Result<UrAutomaton> BuildUrAutomaton(const ConjunctiveQuery& query,
                                     const Database& db,
                                     const UrConstructionOptions& options) {
  if (!query.IsSelfJoinFree()) {
    return Status::NotSupported(
        "the Proposition 1 construction requires a self-join-free query "
        "(Theorem 1's precondition)");
  }
  for (const Atom& a : query.atoms()) {
    if (a.relation >= db.schema().NumRelations() ||
        a.vars.size() != db.schema().Arity(a.relation)) {
      return Status::InvalidArgument("query/schema mismatch");
    }
  }

  PQE_TRACE_SPAN_VAR(span, "ur.build_automaton");
  UrAutomaton out;

  // 1. Project D onto the relations of Q (Theorem 3's proof step).
  PQE_ASSIGN_OR_RETURN(ProjectedDatabase proj, ProjectDatabase(db, query));
  const Database& d = proj.db;
  out.tree_size = d.NumFacts();
  out.dropped_facts = proj.dropped_facts;
  span.AttrUint("facts", d.NumFacts());
  span.AttrUint("dropped_facts", out.dropped_facts);

  // 2. Complete hypertree decomposition of width <= k; re-root at a covering
  // vertex (so the root's annotation is non-empty) and binarize (so the
  // transition relation stays polynomial).
  PQE_ASSIGN_OR_RETURN(HypertreeDecomposition hd,
                       Decompose(query, options.max_width));
  {
    std::vector<int32_t> cover = hd.MinimalCoveringVertices(query);
    bool root_covers = false;
    for (uint32_t a = 0; a < query.NumAtoms(); ++a) {
      if (cover[a] == static_cast<int32_t>(hd.root())) root_covers = true;
    }
    if (!root_covers) {
      PQE_CHECK(cover[0] >= 0);  // completeness guarantees a covering vertex
      hd.ReRoot(static_cast<uint32_t>(cover[0]));
    }
  }
  hd.Binarize();
  if (options.validate_decomposition) {
    PQE_RETURN_IF_ERROR(hd.Validate(query, /*generalized=*/true));
    if (!hd.IsComplete(query)) {
      return Status::Internal("decomposition lost completeness");
    }
  }

  // Which atoms each vertex emits: its ≺_vertices-minimal covering role.
  std::vector<int32_t> min_cover = hd.MinimalCoveringVertices(query);
  std::vector<std::vector<uint32_t>> emits(hd.NumNodes());
  for (uint32_t a = 0; a < query.NumAtoms(); ++a) {
    PQE_CHECK(min_cover[a] >= 0);
    emits[static_cast<uint32_t>(min_cover[a])].push_back(a);  // atom order
  }

  // 3. Witness states S(p) per vertex.
  std::vector<VertexStates> states(hd.NumNodes());
  {
    PQE_TRACE_SPAN_VAR(witness_span, "ur.witness_states");
    for (uint32_t p = 0; p < hd.NumNodes(); ++p) {
      std::vector<FactId> tuple;
      std::vector<int64_t> assignment(query.NumVars(), kFree);
      EnumerateStates(query, d, hd.node(p).xi, 0, &tuple, &assignment,
                      &states[p]);
      out.num_witness_states += states[p].tuples.size();
    }
    witness_span.AttrUint("witness_states", out.num_witness_states);
  }

  // 4. Assemble T⁺. State ids: per-vertex blocks, plus a super-initial state
  // that λ-dispatches to the root's witness states (the paper's s_init is
  // the whole set S(p_0)).
  AugmentedNfta& aug = out.augmented;
  aug.EnsureAlphabetSize(d.NumFacts());
  std::vector<StateId> base(hd.NumNodes());
  {
    StateId next = 0;
    for (uint32_t p = 0; p < hd.NumNodes(); ++p) {
      base[p] = next;
      for (size_t i = 0; i < states[p].tuples.size(); ++i) aug.AddState();
      next += static_cast<StateId>(states[p].tuples.size());
    }
  }
  const StateId super_init = aug.AddState();
  aug.SetInitialState(super_init);
  for (size_t i = 0; i < states[hd.root()].tuples.size(); ++i) {
    aug.AddTransition(super_init, {},
                      {static_cast<StateId>(base[hd.root()] + i)});
  }

  // The annotation string L for vertex p with witness tuple `tuple`:
  // for every atom p emits (in ≺_atoms order), all facts of its relation in
  // ≺_i order, the witness mandatory and every other fact ?-annotated.
  auto MakeAnnotation = [&](uint32_t p, const std::vector<FactId>& tuple) {
    std::vector<AnnotatedSymbol> ann;
    const auto& xi = hd.node(p).xi;
    for (uint32_t atom : emits[p]) {
      const size_t xi_pos = static_cast<size_t>(
          std::find(xi.begin(), xi.end(), atom) - xi.begin());
      PQE_CHECK(xi_pos < xi.size());
      const FactId witness = tuple[xi_pos];
      for (FactId fid : d.FactsOf(query.atom(atom).relation)) {
        ann.push_back(AnnotatedSymbol{fid, fid != witness});
      }
    }
    return ann;
  };

  // 5. Transitions: parent state × consistent child-state combinations.
  {
    PQE_TRACE_SPAN_VAR(assemble_span, "ur.assemble_transitions");
    for (uint32_t p = 0; p < hd.NumNodes(); ++p) {
      const auto& children = hd.node(p).children;
      PQE_CHECK(children.size() <= 2);
      if (children.empty()) {
        for (size_t i = 0; i < states[p].tuples.size(); ++i) {
          aug.AddTransition(static_cast<StateId>(base[p] + i),
                            MakeAnnotation(p, states[p].tuples[i]), {});
        }
        continue;
      }
      // Index child states by their assignment restricted to the variables
      // shared with the parent's state variables.
      const std::vector<VarId> pvars = XiVars(query, hd.node(p).xi);
      struct ChildIndex {
        std::vector<VarId> shared;
        std::map<std::vector<int64_t>, std::vector<size_t>> by_key;
      };
      std::vector<ChildIndex> index(children.size());
      for (size_t ci = 0; ci < children.size(); ++ci) {
        const uint32_t c = children[ci];
        const std::vector<VarId> cvars = XiVars(query, hd.node(c).xi);
        std::set_intersection(pvars.begin(), pvars.end(), cvars.begin(),
                              cvars.end(),
                              std::back_inserter(index[ci].shared));
        for (size_t si = 0; si < states[c].assignments.size(); ++si) {
          index[ci].by_key[ProjectKey(states[c].assignments[si],
                                      index[ci].shared)]
              .push_back(si);
        }
      }
      static const std::vector<size_t> kNone;
      for (size_t i = 0; i < states[p].tuples.size(); ++i) {
        const auto& passign = states[p].assignments[i];
        const std::vector<AnnotatedSymbol> ann =
            MakeAnnotation(p, states[p].tuples[i]);
        auto Lookup = [&](size_t ci) -> const std::vector<size_t>& {
          auto it = index[ci].by_key.find(ProjectKey(passign,
                                                     index[ci].shared));
          return it == index[ci].by_key.end() ? kNone : it->second;
        };
        if (children.size() == 1) {
          for (size_t s1 : Lookup(0)) {
            aug.AddTransition(static_cast<StateId>(base[p] + i), ann,
                              {static_cast<StateId>(base[children[0]] + s1)});
          }
        } else {
          const auto& left = Lookup(0);
          const auto& right = Lookup(1);
          for (size_t s1 : left) {
            for (size_t s2 : right) {
              // Cross-child consistency (Proposition 1 condition (4)).
              if (!Consistent(states[children[0]].assignments[s1],
                              states[children[1]].assignments[s2])) {
                continue;
              }
              aug.AddTransition(
                  static_cast<StateId>(base[p] + i), ann,
                  {static_cast<StateId>(base[children[0]] + s1),
                   static_cast<StateId>(base[children[1]] + s2)});
            }
          }
        }
      }
    }

    assemble_span.AttrUint("augmented_transitions",
                           aug.transitions().size());
  }

  // 6. Translate to an ordinary NFTA (Section 4.1 semantics) and trim.
  PQE_ASSIGN_OR_RETURN(out.nfta, aug.ToNfta());
  out.nfta.Trim();
  span.AttrUint("nfta_states", out.nfta.NumStates());
  span.AttrUint("nfta_transitions", out.nfta.NumTransitions());
  out.hd = std::move(hd);
  return out;
}

Result<UrEstimateResult> UrEstimate(const ConjunctiveQuery& query,
                                    const Database& db,
                                    const EstimatorConfig& config,
                                    const UrConstructionOptions& options) {
  PQE_ASSIGN_OR_RETURN(UrAutomaton automaton,
                       BuildUrAutomaton(query, db, options));
  UrEstimateResult out;
  out.nfta_states = automaton.nfta.NumStates();
  out.nfta_transitions = automaton.nfta.NumTransitions();
  out.tree_size = automaton.tree_size;
  out.decomposition_width = automaton.hd.Width();
  PQE_ASSIGN_OR_RETURN(
      CountEstimate count,
      CountNftaTrees(automaton.nfta, automaton.tree_size, config));
  out.stats = count.stats;
  out.ur = count.value.Mul(
      ExtFloat::FromBigUint(BigUint::PowerOfTwo(automaton.dropped_facts)));
  return out;
}

Result<BigUint> UrExactViaAutomaton(const ConjunctiveQuery& query,
                                    const Database& db,
                                    const UrConstructionOptions& options) {
  PQE_ASSIGN_OR_RETURN(UrAutomaton automaton,
                       BuildUrAutomaton(query, db, options));
  PQE_ASSIGN_OR_RETURN(
      BigUint count,
      ExactCountNftaTrees(automaton.nfta, automaton.tree_size));
  return count.Mul(BigUint::PowerOfTwo(automaton.dropped_facts));
}

}  // namespace pqe
