#ifndef PQE_CORE_UR_CONSTRUCTION_H_
#define PQE_CORE_UR_CONSTRUCTION_H_

#include <cstddef>
#include <vector>

#include "automata/augmented_nfta.h"
#include "automata/nfta.h"
#include "counting/config.h"
#include "cq/query.h"
#include "hypertree/decomposition.h"
#include "pdb/database.h"
#include "util/bigint.h"
#include "util/extfloat.h"
#include "util/result.h"

namespace pqe {

/// Options for the Proposition 1 construction.
struct UrConstructionOptions {
  /// Hypertree-width budget handed to the decomposer.
  size_t max_width = 3;
  /// Validate the decomposition (generalized conditions + completeness)
  /// before building; cheap insurance, on by default.
  bool validate_decomposition = true;
};

/// The Proposition 1 artifact: an augmented NFTA T⁺ whose accepted trees of
/// size |D'| are in bijection with the subinstances of the projected
/// database D' that satisfy Q, plus its ordinary-NFTA translation.
struct UrAutomaton {
  AugmentedNfta augmented;       // T⁺ as constructed
  Nfta nfta;                     // translated, λ-free, trimmed
  HypertreeDecomposition hd;     // complete, re-rooted, binarized
  size_t tree_size = 0;          // |D'|: the size stratum to count
  size_t dropped_facts = 0;      // |D| − |D'|
  size_t num_witness_states = 0; // Σ_p |S(p)| before translation
};

/// Builds the Proposition 1 augmented NFTA for a self-join-free conjunctive
/// query of hypertree width <= options.max_width over `db`. The symbols of
/// the translated NFTA are fact literals over projected FactIds
/// (PositiveLiteral / NegativeLiteral).
Result<UrAutomaton> BuildUrAutomaton(const ConjunctiveQuery& query,
                                     const Database& db,
                                     const UrConstructionOptions& options);

/// UREstimate (Theorem 3): (1±ε)-approximates UR(Q, D) by counting the
/// accepted trees of the Proposition 1 automaton with CountNFTA and
/// rescaling by 2^{|D|−|D'|}.
struct UrEstimateResult {
  ExtFloat ur;
  size_t nfta_states = 0;
  size_t nfta_transitions = 0;
  size_t tree_size = 0;
  size_t decomposition_width = 0;
  CountStats stats;
};
Result<UrEstimateResult> UrEstimate(const ConjunctiveQuery& query,
                                    const Database& db,
                                    const EstimatorConfig& config,
                                    const UrConstructionOptions& options = {});

/// Exact companion (test oracle): counts the accepted trees exactly.
/// Exponential worst case.
Result<BigUint> UrExactViaAutomaton(const ConjunctiveQuery& query,
                                    const Database& db,
                                    const UrConstructionOptions& options = {});

}  // namespace pqe

#endif  // PQE_CORE_UR_CONSTRUCTION_H_
