#ifndef PQE_CORE_PQE_H_
#define PQE_CORE_PQE_H_

#include <cstddef>
#include <vector>

#include "automata/nfta.h"
#include "core/ur_construction.h"
#include "counting/config.h"
#include "cq/query.h"
#include "pdb/database.h"
#include "pdb/probabilistic_database.h"
#include "util/bigint.h"
#include "util/extfloat.h"
#include "util/result.h"

namespace pqe {

/// The probability-independent half of the Theorem 1 construction: the
/// hypertree decomposition and the Proposition 1 automaton, built from the
/// query and the plain database only. A skeleton can be compiled once per
/// (query, database) pair and bound to any probability labelling of the same
/// facts via BindPqeAutomaton — that split is what the serving layer
/// (src/serve/) amortizes across requests.
struct PqeSkeleton {
  UrAutomaton ur;                     // Proposition 1, over the projected db
  std::vector<FactId> original_fact;  // projected FactId -> original FactId
  size_t dropped_facts = 0;           // |D| − |D'|
};

/// Builds the probability-independent skeleton for a self-join-free
/// conjunctive query of bounded hypertree width over a plain database.
Result<PqeSkeleton> BuildPqeSkeleton(const ConjunctiveQuery& query,
                                     const Database& db,
                                     const UrConstructionOptions& options);

/// The probability-dependent half: the §5.1 multiplier-gadget expansion of a
/// skeleton under concrete fact probabilities (trimmed, ready to count).
struct BoundPqeAutomaton {
  Nfta weighted;         // T' — gadget-expanded, trimmed
  size_t tree_size = 0;  // k = |D'| + Σ width_i
  BigUint denominator;   // d = Π d_i over projected facts
};

/// Attaches multiplier gadgets for `probs` (one Probability per *projected*
/// fact, in projected FactId order — see ProjectedFactProbabilities) to the
/// skeleton and trims. Deterministic: rebinding a cached skeleton yields the
/// same automaton, bit for bit, as a cold BuildPqeAutomaton at equal inputs.
Result<BoundPqeAutomaton> BindPqeAutomaton(
    const PqeSkeleton& skeleton, const std::vector<Probability>& probs);

/// The Theorem 1 artifact: the Proposition 1 automaton with the Section 5
/// multiplier gadgets attached, so that
///   Pr_H(Q) = d⁻¹ · |L_k(T')|,
/// where d = Π d_i is the common denominator of the (projected) fact labels
/// and k = |D'| + Σ_i width_i is the uniform tree size after padding.
///
/// Note on padding: the paper states k = |D| + Σ u(w_i), implicitly assuming
/// that the positive branch (multiplier w_i) and the negative branch
/// (multiplier d_i − w_i) of a fact add the same number of gadget nodes. In
/// general u(w_i) ≠ u(d_i − w_i), which would scatter the accepted trees
/// across different size strata; we therefore pad both branches of fact i to
/// a common comparator width width_i = max(u(w_i), u(d_i − w_i)) — the count
/// identity then holds exactly at stratum k.
struct PqeAutomaton {
  UrAutomaton ur;          // the underlying Proposition 1 construction
  Nfta weighted;           // T' — gadget-expanded, trimmed
  size_t tree_size = 0;    // k
  BigUint denominator;     // d = Π d_i over projected facts
};

/// Builds the Theorem 1 automaton for a self-join-free conjunctive query of
/// bounded hypertree width over a probabilistic database. Implemented as
/// BuildPqeSkeleton + BindPqeAutomaton, so cached-skeleton rebinds (the
/// serving layer's warm path) are bit-identical to this cold build.
Result<PqeAutomaton> BuildPqeAutomaton(const ConjunctiveQuery& query,
                                       const ProbabilisticDatabase& pdb,
                                       const UrConstructionOptions& options);

/// PQEEstimate (Theorem 1): (1±ε)-approximates Pr_H(Q) with high
/// probability, in time poly(|Q|, |H|, 1/ε).
struct PqeEstimateResult {
  /// The probability estimate, projected into [0, 1] (the raw count ratio
  /// can exceed 1 within its ε band; see log2_probability for the raw value).
  double probability = 0.0;
  /// log2 of the estimate (finite even when the probability underflows).
  double log2_probability = 0.0;
  ExtFloat tree_count;      // |L_k(T')| estimate
  size_t tree_size = 0;     // k
  size_t nfta_states = 0;   // of T'
  size_t nfta_transitions = 0;
  size_t decomposition_width = 0;
  CountStats stats;
};
Result<PqeEstimateResult> PqeEstimate(const ConjunctiveQuery& query,
                                      const ProbabilisticDatabase& pdb,
                                      const EstimatorConfig& config,
                                      const UrConstructionOptions& options = {});

/// Exact companion (test oracle): counts |L_k(T')| exactly and returns the
/// exact rational d⁻¹·|L_k|. Exponential worst case.
Result<BigRational> PqeExactViaAutomaton(
    const ConjunctiveQuery& query, const ProbabilisticDatabase& pdb,
    const UrConstructionOptions& options = {});

}  // namespace pqe

#endif  // PQE_CORE_PQE_H_
