#ifndef PQE_CORE_PQE_H_
#define PQE_CORE_PQE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "automata/multiplier_nfta.h"
#include "automata/nfta.h"
#include "core/ur_construction.h"
#include "counting/config.h"
#include "cq/query.h"
#include "pdb/database.h"
#include "pdb/probabilistic_database.h"
#include "util/bigint.h"
#include "util/extfloat.h"
#include "util/result.h"

namespace pqe {

/// The probability-independent half of the Theorem 1 construction: the
/// hypertree decomposition and the Proposition 1 automaton, built from the
/// query and the plain database only. A skeleton can be compiled once per
/// (query, database) pair and bound to any probability labelling of the same
/// facts via BindPqeAutomaton — that split is what the serving layer
/// (src/serve/) amortizes across requests.
struct PqeSkeleton {
  UrAutomaton ur;                     // Proposition 1, over the projected db
  std::vector<FactId> original_fact;  // projected FactId -> original FactId
  size_t dropped_facts = 0;           // |D| − |D'|
};

/// Builds the probability-independent skeleton for a self-join-free
/// conjunctive query of bounded hypertree width over a plain database.
Result<PqeSkeleton> BuildPqeSkeleton(const ConjunctiveQuery& query,
                                     const Database& db,
                                     const UrConstructionOptions& options);

/// Provenance of a stable probability bind: where each projected fact's
/// gadget slots live in the translated automaton, and the per-fact
/// denominators the slot widths were sized for. Immutable after the bind;
/// shared between a bind and every delta-rebound clone of it.
struct PqeBindLayout {
  StableNftaLayout stable;
  /// fact -> slot-index CSR (slot = StableNftaLayout::slots entry; one slot
  /// per base-automaton transition consuming one of the fact's literals).
  std::vector<uint32_t> fact_offsets;  // probs.size() + 1 entries
  std::vector<uint32_t> fact_slots;
  /// Per slot: 1 when the slot carries the fact's negative literal
  /// (multiplier d_i − w_i), 0 for the positive one (w_i).
  std::vector<uint8_t> slot_negative;
  /// Per slot: the projected fact whose probability it encodes.
  std::vector<FactId> slot_fact;
  /// Per fact: the denominator its slot widths were sized for. A delta that
  /// changes a fact's denominator changes the shape and cannot be patched.
  std::vector<uint64_t> fact_den;
};

/// The probability-dependent half: the §5.1 multiplier-gadget expansion of a
/// skeleton under concrete fact probabilities, in the value-stable slotted
/// layout (untrimmed — dead branches route into the layout's sink and are
/// discarded by the counting layers' liveness pruning), ready to count.
struct BoundPqeAutomaton {
  Nfta weighted;         // T' — gadget-expanded, value-stable layout
  size_t tree_size = 0;  // k = |D'| + Σ width_i
  BigUint denominator;   // d = Π d_i over projected facts
  /// Fact → gadget-slot provenance enabling RebindPqeAutomaton.
  std::shared_ptr<const PqeBindLayout> layout;
};

/// Attaches multiplier gadgets for `probs` (one Probability per *projected*
/// fact, in projected FactId order — see ProjectedFactProbabilities) to the
/// skeleton. Deterministic: rebinding a cached skeleton yields the same
/// automaton, bit for bit, as a cold BuildPqeAutomaton at equal inputs.
Result<BoundPqeAutomaton> BindPqeAutomaton(
    const PqeSkeleton& skeleton, const std::vector<Probability>& probs);

/// Delta rebind: clones `prior` (warm CSR adjacency survives the copy; only
/// the run-state index of patched automata is lazily rebuilt) and patches
/// the gadget slots of every fact whose probability differs between
/// `old_probs` (the labelling `prior` was bound at) and `new_probs`.
/// Bit-identical to BindPqeAutomaton(skeleton, new_probs) by construction —
/// the patch routine is the canonical writer of slot targets. Fails with
/// InvalidArgument when a changed fact's denominator differs from the one
/// the slot widths were sized for (shape change: caller falls back to a full
/// bind). `patched_slots` (optional) receives the number of gadget slots
/// rewritten.
Result<BoundPqeAutomaton> RebindPqeAutomaton(
    const BoundPqeAutomaton& prior, const std::vector<Probability>& old_probs,
    const std::vector<Probability>& new_probs,
    size_t* patched_slots = nullptr);

/// The Theorem 1 artifact: the Proposition 1 automaton with the Section 5
/// multiplier gadgets attached, so that
///   Pr_H(Q) = d⁻¹ · |L_k(T')|,
/// where d = Π d_i is the common denominator of the (projected) fact labels
/// and k = |D'| + Σ_i width_i is the uniform tree size after padding.
///
/// Note on padding: the paper states k = |D| + Σ u(w_i), implicitly assuming
/// that the positive branch (multiplier w_i) and the negative branch
/// (multiplier d_i − w_i) of a fact add the same number of gadget nodes. In
/// general u(w_i) ≠ u(d_i − w_i), which would scatter the accepted trees
/// across different size strata; we therefore pad both branches of fact i to
/// the common comparator width width_i = u(d_i) ≥ max(u(w_i), u(d_i − w_i))
/// — the count identity then holds exactly at stratum k, and the width
/// depends only on the denominator, which keeps the automaton's shape
/// labelling-value independent (the precondition for delta rebinds).
struct PqeAutomaton {
  UrAutomaton ur;          // the underlying Proposition 1 construction
  Nfta weighted;           // T' — gadget-expanded, value-stable layout
  size_t tree_size = 0;    // k
  BigUint denominator;     // d = Π d_i over projected facts
};

/// Builds the Theorem 1 automaton for a self-join-free conjunctive query of
/// bounded hypertree width over a probabilistic database. Implemented as
/// BuildPqeSkeleton + BindPqeAutomaton, so cached-skeleton rebinds (the
/// serving layer's warm path) are bit-identical to this cold build.
Result<PqeAutomaton> BuildPqeAutomaton(const ConjunctiveQuery& query,
                                       const ProbabilisticDatabase& pdb,
                                       const UrConstructionOptions& options);

/// PQEEstimate (Theorem 1): (1±ε)-approximates Pr_H(Q) with high
/// probability, in time poly(|Q|, |H|, 1/ε).
struct PqeEstimateResult {
  /// The probability estimate, projected into [0, 1] (the raw count ratio
  /// can exceed 1 within its ε band; see log2_probability for the raw value).
  double probability = 0.0;
  /// log2 of the estimate (finite even when the probability underflows).
  double log2_probability = 0.0;
  ExtFloat tree_count;      // |L_k(T')| estimate
  size_t tree_size = 0;     // k
  size_t nfta_states = 0;   // of T'
  size_t nfta_transitions = 0;
  size_t decomposition_width = 0;
  CountStats stats;
};
Result<PqeEstimateResult> PqeEstimate(const ConjunctiveQuery& query,
                                      const ProbabilisticDatabase& pdb,
                                      const EstimatorConfig& config,
                                      const UrConstructionOptions& options = {});

/// Exact companion (test oracle): counts |L_k(T')| exactly and returns the
/// exact rational d⁻¹·|L_k|. Exponential worst case.
Result<BigRational> PqeExactViaAutomaton(
    const ConjunctiveQuery& query, const ProbabilisticDatabase& pdb,
    const UrConstructionOptions& options = {});

}  // namespace pqe

#endif  // PQE_CORE_PQE_H_
