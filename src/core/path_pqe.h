#ifndef PQE_CORE_PATH_PQE_H_
#define PQE_CORE_PATH_PQE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "automata/multiplier_nfa.h"
#include "automata/nfa.h"
#include "counting/config.h"
#include "cq/query.h"
#include "pdb/database.h"
#include "pdb/probabilistic_database.h"
#include "util/bigint.h"
#include "util/extfloat.h"
#include "util/result.h"

namespace pqe {

/// The string automaton M of Section 3, together with the bookkeeping needed
/// to interpret counts over it. Strings of length `word_length` accepted by
/// `nfa` correspond one-to-one to subinstances of the projected database D'
/// that satisfy the path query; symbols are fact literals
/// (PositiveLiteral/NegativeLiteral over projected FactIds).
struct PathQueryNfa {
  Nfa nfa;
  size_t word_length = 0;     // |D'|
  size_t dropped_facts = 0;   // |D| − |D'| (facts over non-query relations)
};

/// Builds the Section 3 NFA for a self-join-free path query over a database
/// whose query relations are binary. Fails with NotSupported for non-path or
/// non-self-join-free queries.
Result<PathQueryNfa> BuildPathQueryNfa(const ConjunctiveQuery& query,
                                       const Database& db);

/// PathEstimate (Theorem 2): (1±ε)-approximates the uniform reliability
/// UR(Q, D) of a self-join-free path query by counting accepted strings of
/// the Section 3 automaton with CountNFA and rescaling by 2^{|D|−|D'|}.
struct PathEstimateResult {
  ExtFloat ur;                // the UR(Q, D) estimate
  size_t nfa_states = 0;
  size_t nfa_transitions = 0;
  size_t word_length = 0;
  CountStats stats;
};
Result<PathEstimateResult> PathEstimate(const ConjunctiveQuery& query,
                                        const Database& db,
                                        const EstimatorConfig& config);

/// Exact companion (test oracle): counts the accepted strings exactly by
/// on-the-fly determinization. Exponential worst case.
Result<BigUint> PathUniformReliabilityExact(const ConjunctiveQuery& query,
                                            const Database& db);

/// Theorem 1 specialized to path queries, entirely in *string* automata:
/// the Section 3 NFA plus string-side multiplier gadgets (the paper's
/// footnote 2 observes the Section 5.1 gadget is a degenerate path
/// automaton). Often far cheaper than the generic tree pipeline on path
/// queries; `bench_ablation`/tests compare the two.
struct PathPqeResult {
  double probability = 0.0;     // projected into [0, 1]
  double log2_probability = 0.0;
  ExtFloat string_count;        // |L_k(M')| estimate
  size_t word_length = 0;       // k = |D'| + Σ width_i
  size_t nfa_states = 0;
  size_t nfa_transitions = 0;
  CountStats stats;
};
Result<PathPqeResult> PathPqeEstimate(const ConjunctiveQuery& query,
                                      const ProbabilisticDatabase& pdb,
                                      const EstimatorConfig& config);

/// Exact companion for PathPqeEstimate (test oracle).
Result<BigRational> PathPqeExact(const ConjunctiveQuery& query,
                                 const ProbabilisticDatabase& pdb);

/// The probability-independent half of the string specialization: the
/// Section 3 NFA, built from the query and the plain database only. The
/// string-automaton analogue of PqeSkeleton (core/pqe.h); compiled once per
/// (query, database) pair and rebound per probability labelling.
struct PathPqeSkeleton {
  PathQueryNfa base;                  // Section 3 NFA over the projected db
  std::vector<FactId> original_fact;  // projected FactId -> original FactId
};

/// Builds the skeleton. Fails with NotSupported for non-path or
/// non-self-join-free queries (same contract as BuildPathQueryNfa).
Result<PathPqeSkeleton> BuildPathPqeSkeleton(const ConjunctiveQuery& query,
                                             const Database& db);

/// The probability-dependent tail of PathPqeEstimate, factored out so every
/// producer of a PathPqeSkeleton — BuildPathPqeSkeleton for linear path
/// queries, the RPQ product construction (src/rpq/product.h) for regular
/// path queries — shares one bind + count + arithmetic pipeline: looks up
/// the projected fact probabilities in `pdb`, attaches the §5.1 gadgets,
/// counts accepted strings, and converts the count to a probability.
/// PathPqeEstimate(q, pdb, c) ≡ EstimatePathSkeleton(BuildPathPqeSkeleton(q,
/// pdb.database()), pdb, c), bit for bit.
Result<PathPqeResult> EstimatePathSkeleton(const PathPqeSkeleton& skeleton,
                                           const ProbabilisticDatabase& pdb,
                                           const EstimatorConfig& config);

/// Exact companion of EstimatePathSkeleton (test oracle).
Result<BigRational> ExactPathSkeleton(const PathPqeSkeleton& skeleton,
                                      const ProbabilisticDatabase& pdb);

/// Provenance of a stable path bind — the string analogue of PqeBindLayout
/// (core/pqe.h). Immutable after the bind; shared with delta-rebound clones.
struct PathBindLayout {
  StableNfaLayout stable;
  /// fact -> slot-index CSR over StableNfaLayout::slots.
  std::vector<uint32_t> fact_offsets;  // probs.size() + 1 entries
  std::vector<uint32_t> fact_slots;
  /// Per slot: 1 for the fact's negative literal (multiplier d_i − w_i).
  std::vector<uint8_t> slot_negative;
  /// Per slot: the projected fact whose probability it encodes.
  std::vector<FactId> slot_fact;
  /// Per fact: the denominator its slot widths were sized for.
  std::vector<uint64_t> fact_den;
};

/// The weighted path automaton M' of the Theorem 1 string specialization,
/// plus the common denominator d and stratum length k. Value-stable slotted
/// layout, untrimmed (dead branches route into the layout's sink; counting
/// liveness pruning discards them).
struct BoundPathNfa {
  Nfa nfa;
  size_t word_length = 0;  // k = |D'| + Σ width_i
  BigUint denominator;     // d = Π d_i over projected facts
  /// Fact → gadget-slot provenance enabling RebindPathPqeNfa.
  std::shared_ptr<const PathBindLayout> layout;
};

/// Attaches string multiplier gadgets for `probs` (one Probability per
/// *projected* fact, in projected FactId order) to the skeleton.
/// Rebinding a cached skeleton is bit-identical to the cold path inside
/// PathPqeEstimate at equal inputs.
Result<BoundPathNfa> BindPathPqeNfa(const PathPqeSkeleton& skeleton,
                                    const std::vector<Probability>& probs);

/// Delta rebind for the path specialization: clones `prior` and patches the
/// gadget slots of facts whose probability changed between `old_probs` and
/// `new_probs`. Bit-identical to BindPathPqeNfa(skeleton, new_probs); fails
/// with InvalidArgument on a changed denominator (shape change — full rebind
/// required). See RebindPqeAutomaton (core/pqe.h) for the contract.
Result<BoundPathNfa> RebindPathPqeNfa(const BoundPathNfa& prior,
                                      const std::vector<Probability>& old_probs,
                                      const std::vector<Probability>& new_probs,
                                      size_t* patched_slots = nullptr);

}  // namespace pqe

#endif  // PQE_CORE_PATH_PQE_H_
