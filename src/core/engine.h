#ifndef PQE_CORE_ENGINE_H_
#define PQE_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>

#include "counting/config.h"
#include "cq/ucq.h"
#include "cq/query.h"
#include "lineage/karp_luby.h"
#include "obs/trace.h"
#include "pdb/probabilistic_database.h"
#include "util/result.h"

namespace pqe {

/// Evaluation strategies offered by the engine.
enum class PqeMethod {
  /// Pick automatically: safe queries run the exact extensional plan; small
  /// instances run exact enumeration; everything else runs the paper's
  /// combined FPRAS.
  kAuto,
  /// Theorem 1: hypertree decomposition → NFTA → CountNFTA (FPRAS).
  kFpras,
  /// Dalvi–Suciu extensional plan (exact; safe queries only).
  kSafePlan,
  /// Possible-world enumeration (exact; 2^|D| — tiny instances only).
  kEnumeration,
  /// Classical intensional baseline: DNF lineage + Karp–Luby (FPRAS whose
  /// lineage is exponential in |Q|).
  kKarpLubyLineage,
  /// Lineage + exact Shannon-expansion model counting (with independent-
  /// component decomposition).
  kExactLineage,
  /// Naive Monte Carlo over worlds: unbiased but only additive accuracy —
  /// included as the classical non-FPRAS contrast.
  kMonteCarlo,
};

const char* PqeMethodToString(PqeMethod method);

/// Every PqeMethod enumerator, for exhaustive iteration in tests and tools.
/// PqeMethodToString's switch has no default case, so -Wswitch flags a new
/// enumerator missing there; the exhaustiveness test in engine_test covers
/// this list staying total.
inline constexpr PqeMethod kAllPqeMethods[] = {
    PqeMethod::kAuto,           PqeMethod::kFpras,
    PqeMethod::kSafePlan,       PqeMethod::kEnumeration,
    PqeMethod::kKarpLubyLineage, PqeMethod::kExactLineage,
    PqeMethod::kMonteCarlo,
};

/// One evaluation answer with provenance. The run's numbers are carried
/// structurally (count_stats / karp_luby / automaton / trace);
/// `diagnostics` is a summary rendered from them for terminal display.
struct PqeAnswer {
  /// Size figures of the constructed evaluation artifact, when one exists.
  struct AutomatonStats {
    size_t states = 0;
    size_t transitions = 0;
    size_t tree_size = 0;           // k (word length for path queries)
    size_t decomposition_width = 0; // 0 for the string specialization
  };

  double probability = 0.0;
  PqeMethod method_used = PqeMethod::kAuto;
  bool is_exact = false;
  /// Sampler statistics when a CountNFTA/CountNFA-based FPRAS ran.
  std::optional<CountStats> count_stats;
  /// Run statistics when a Karp–Luby lineage estimator ran.
  std::optional<KarpLubyResult> karp_luby;
  /// Automaton/plan size figures when an automaton-based method ran.
  std::optional<AutomatonStats> automaton;
  /// The structured run trace, when Options::collect_trace was set. Shared
  /// so PqeAnswer stays cheaply copyable. Span instrumentation is only
  /// present when built with PQE_ENABLE_TRACING (the default); otherwise
  /// this holds just the timed root span.
  std::shared_ptr<const obs::RunTrace> trace;
  std::string diagnostics;  // human-readable summary of the above
};

/// High-level facade over every evaluation strategy in the library.
/// Thread-compatible: construct one engine per thread.
class PqeEngine {
 public:
  struct Options {
    PqeMethod method = PqeMethod::kAuto;
    /// FPRAS accuracy target and seed (also seeds Karp–Luby).
    double epsilon = 0.2;
    uint64_t seed = 0x5eed;
    /// Hypertree-width budget for the decomposer.
    size_t max_width = 3;
    /// kAuto switches to enumeration below this fact count.
    size_t enumeration_threshold = 16;
    /// Overrides forwarded to the counting estimator (0 = auto).
    size_t pool_size = 0;
    size_t max_pool_size = 768;
    /// Median-of-R amplification for the FPRAS (1 = single run).
    size_t repetitions = 3;
    /// Worker threads for the parallel sampling layers (median-of-R reps,
    /// Karp–Luby / Monte-Carlo sample shards). 0 = auto: $PQE_THREADS when
    /// set, else 1 (serial). Every estimate is bit-identical across values;
    /// see docs/parallelism.md.
    size_t num_threads = 0;
    /// Collect a structured RunTrace for each evaluation (PqeAnswer::trace).
    /// Off by default: tracing is cheap but not free, and answers stay lean.
    bool collect_trace = false;
  };

  explicit PqeEngine(Options options) : options_(options) {}
  PqeEngine() : PqeEngine(Options{}) {}

  const Options& options() const { return options_; }

  /// Evaluates Pr_H(Q) with the configured (or auto-selected) method.
  Result<PqeAnswer> Evaluate(const ConjunctiveQuery& query,
                             const ProbabilisticDatabase& pdb) const;

  /// Evaluates the uniform reliability UR(Q, D) (as a double; may be huge).
  Result<double> EvaluateUniformReliability(const ConjunctiveQuery& query,
                                            const Database& db) const;

  /// Evaluates Pr_H(Q₁ ∨ ... ∨ Q_m) for a union of CQs. The paper's FPRAS
  /// does not extend to unions; this routes through the lineage-based
  /// methods: exact decomposed model counting when the union lineage is
  /// small, Karp–Luby otherwise (enumeration below the tiny-instance
  /// threshold).
  Result<PqeAnswer> EvaluateUnion(const UnionQuery& query,
                                  const ProbabilisticDatabase& pdb) const;

 private:
  EstimatorConfig MakeEstimatorConfig() const;

  Options options_;
};

}  // namespace pqe

#endif  // PQE_CORE_ENGINE_H_
