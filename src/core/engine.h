#ifndef PQE_CORE_ENGINE_H_
#define PQE_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "counting/config.h"
#include "cq/ucq.h"
#include "cq/query.h"
#include "lineage/karp_luby.h"
#include "obs/trace.h"
#include "pdb/probabilistic_database.h"
#include "util/cancel.h"
#include "util/result.h"

namespace pqe {

namespace rpq {
class RpqQuery;
}  // namespace rpq

/// Evaluation strategies offered by the engine.
enum class PqeMethod {
  /// Pick automatically: safe queries run the exact extensional plan; small
  /// instances run exact enumeration; everything else runs the paper's
  /// combined FPRAS.
  kAuto,
  /// Theorem 1: hypertree decomposition → NFTA → CountNFTA (FPRAS).
  kFpras,
  /// Dalvi–Suciu extensional plan (exact; safe queries only).
  kSafePlan,
  /// Possible-world enumeration (exact; 2^|D| — tiny instances only).
  kEnumeration,
  /// Classical intensional baseline: DNF lineage + Karp–Luby (FPRAS whose
  /// lineage is exponential in |Q|).
  kKarpLubyLineage,
  /// Lineage + exact Shannon-expansion model counting (with independent-
  /// component decomposition).
  kExactLineage,
  /// Naive Monte Carlo over worlds: unbiased but only additive accuracy —
  /// included as the classical non-FPRAS contrast.
  kMonteCarlo,
};

const char* PqeMethodToString(PqeMethod method);

/// Every PqeMethod enumerator, for exhaustive iteration in tests and tools.
/// PqeMethodToString's switch has no default case, so -Wswitch flags a new
/// enumerator missing there; the exhaustiveness test in engine_test covers
/// this list staying total.
inline constexpr PqeMethod kAllPqeMethods[] = {
    PqeMethod::kAuto,           PqeMethod::kFpras,
    PqeMethod::kSafePlan,       PqeMethod::kEnumeration,
    PqeMethod::kKarpLubyLineage, PqeMethod::kExactLineage,
    PqeMethod::kMonteCarlo,
};

/// One evaluation answer with provenance. Every run figure is carried
/// structurally (count_stats / karp_luby / automaton / lineage /
/// monte_carlo / trace); RenderDiagnostics (below) formats a human-readable
/// summary from them on demand — nothing pre-rendered is stored.
struct PqeAnswer {
  /// Size figures of the constructed evaluation artifact, when one exists.
  struct AutomatonStats {
    size_t states = 0;
    size_t transitions = 0;
    size_t tree_size = 0;           // k (word length for path queries)
    size_t decomposition_width = 0; // 0 for the string specialization
  };
  /// Shannon/decomposition figures when an exact lineage method ran.
  struct LineageStats {
    size_t clauses = 0;
    size_t shannon_splits = 0;
    size_t component_splits = 0;
  };
  /// Sample accounting when naive Monte Carlo ran.
  struct SampleCounts {
    size_t samples = 0;
    size_t hits = 0;
  };

  double probability = 0.0;
  PqeMethod method_used = PqeMethod::kAuto;
  bool is_exact = false;
  /// Sampler statistics when a CountNFTA/CountNFA-based FPRAS ran.
  std::optional<CountStats> count_stats;
  /// Run statistics when a Karp–Luby lineage estimator ran.
  std::optional<KarpLubyResult> karp_luby;
  /// Automaton/plan size figures when an automaton-based method ran.
  std::optional<AutomatonStats> automaton;
  /// Lineage model-count figures when kExactLineage ran.
  std::optional<LineageStats> lineage;
  /// World-sample counts when kMonteCarlo ran.
  std::optional<SampleCounts> monte_carlo;
  /// |D| when kEnumeration ran (the answer enumerated 2^|D| worlds).
  std::optional<size_t> enumerated_facts;
  /// The structured run trace, when Options::collect_trace was set. Shared
  /// so PqeAnswer stays cheaply copyable. Span instrumentation is only
  /// present when built with PQE_ENABLE_TRACING (the default); otherwise
  /// this holds just the timed root span.
  std::shared_ptr<const obs::RunTrace> trace;
};

/// Renders the one-line human-readable summary of an answer from its
/// structured fields (method, automaton sizes, sampler statistics). The CLI
/// is the main consumer; library callers read the structured fields.
std::string RenderDiagnostics(const PqeAnswer& answer);

/// One evaluation request: what to evaluate plus per-request overrides of
/// the engine's configuration. Referenced objects (query/database/token) are
/// not owned and must outlive the call. Unset optionals inherit the engine's
/// Options, so a default-initialized request behaves exactly like the
/// corresponding legacy entry point.
struct EvalRequest {
  enum class Target {
    kQuery,               // Pr_H(Q) for a conjunctive query (query + pdb)
    kUnion,               // Pr_H(Q₁ ∨ ... ∨ Q_m) (union_query + pdb)
    kUniformReliability,  // UR(Q, D) (query + db); probability holds the count
    kRpq,                 // Pr_H(Q) for a regular path query (rpq + pdb)
  };

  Target target = Target::kQuery;
  const ConjunctiveQuery* query = nullptr;     // kQuery, kUniformReliability
  const UnionQuery* union_query = nullptr;     // kUnion
  const rpq::RpqQuery* rpq = nullptr;          // kRpq
  const ProbabilisticDatabase* pdb = nullptr;  // kQuery, kUnion, kRpq
  const Database* db = nullptr;                // kUniformReliability

  /// Per-request overrides; unset = inherit the engine's Options.
  std::optional<PqeMethod> method;
  std::optional<double> epsilon;
  std::optional<uint64_t> seed;
  std::optional<bool> collect_trace;
  /// Sampling-kernel tier override (see counting/config.h). kExact keeps
  /// the bit-identical golden path; kFast runs the batched alias-table
  /// kernels.
  std::optional<KernelMode> kernels;

  /// Caller-chosen identifier, echoed in the response. The serving layer
  /// derives per-request seeds from it (Rng::DeriveSeed) when `seed` is
  /// unset, so ids double as determinism anchors in batches.
  uint64_t request_id = 0;
  /// Wall-clock budget in milliseconds (0 = none). Enforced cooperatively:
  /// the sampling loops poll a deadline token and the request returns a
  /// kDeadlineExceeded status with partial progress instead of hanging.
  uint64_t deadline_ms = 0;
  /// Optional external cancellation token (not owned; composes with
  /// deadline_ms — the request aborts when either expires). Lets callers
  /// cancel explicitly, and lets tests exercise the deadline path
  /// deterministically with a pre-cancelled token.
  const CancelToken* cancel = nullptr;

  static EvalRequest ForQuery(const ConjunctiveQuery& query,
                              const ProbabilisticDatabase& pdb) {
    EvalRequest r;
    r.target = Target::kQuery;
    r.query = &query;
    r.pdb = &pdb;
    return r;
  }
  static EvalRequest ForUnion(const UnionQuery& union_query,
                              const ProbabilisticDatabase& pdb) {
    EvalRequest r;
    r.target = Target::kUnion;
    r.union_query = &union_query;
    r.pdb = &pdb;
    return r;
  }
  static EvalRequest ForUniformReliability(const ConjunctiveQuery& query,
                                           const Database& db) {
    EvalRequest r;
    r.target = Target::kUniformReliability;
    r.query = &query;
    r.db = &db;
    return r;
  }
  static EvalRequest ForRpq(const rpq::RpqQuery& rpq,
                            const ProbabilisticDatabase& pdb) {
    EvalRequest r;
    r.target = Target::kRpq;
    r.rpq = &rpq;
    r.pdb = &pdb;
    return r;
  }
};

/// The outcome of one EvalRequest. `answer` is meaningful iff `status` is
/// OK; a deadline-capped request reports `deadline_exceeded` plus the work
/// units completed before expiry (`progress`, see util/cancel.h).
struct EvalResponse {
  uint64_t request_id = 0;
  Status status;
  PqeAnswer answer;
  bool deadline_exceeded = false;
  double elapsed_ms = 0.0;
  uint64_t progress = 0;  // sampling work units finished before any expiry
};

/// High-level facade over every evaluation strategy in the library.
/// Thread-compatible: construct one engine per thread.
class PqeEngine {
 public:
  struct Options {
    PqeMethod method = PqeMethod::kAuto;
    /// FPRAS accuracy target and seed (also seeds Karp–Luby).
    double epsilon = 0.2;
    uint64_t seed = 0x5eed;
    /// Hypertree-width budget for the decomposer.
    size_t max_width = 3;
    /// kAuto switches to enumeration below this fact count.
    size_t enumeration_threshold = 16;
    /// Overrides forwarded to the counting estimator (0 = auto).
    size_t pool_size = 0;
    size_t max_pool_size = 768;
    /// Median-of-R amplification for the FPRAS (1 = single run).
    size_t repetitions = 3;
    /// Worker threads for the parallel sampling layers (median-of-R reps,
    /// Karp–Luby / Monte-Carlo sample shards). 0 = auto: $PQE_THREADS when
    /// set, else 1 (serial). Every estimate is bit-identical across values;
    /// see docs/parallelism.md.
    size_t num_threads = 0;
    /// Collect a structured RunTrace for each evaluation (PqeAnswer::trace).
    /// Off by default: tracing is cheap but not free, and answers stay lean.
    bool collect_trace = false;
    /// Sampling-kernel tier forwarded to every sampling layer (counting
    /// estimators, Karp–Luby, Monte Carlo). kExact (default) is the
    /// bit-identical golden path; kFast trades bit-for-bit stability across
    /// versions for batched alias-table kernels (statistically equivalent,
    /// fixed-seed reproducible within a build). See docs/performance.md,
    /// "Kernel modes".
    KernelMode kernel_mode = KernelMode::kExact;
    /// Clause budget for the RPQ lineage fallback: regular path queries on
    /// instances that are not scan-orderable (src/rpq/product.h) route
    /// through the exact product-path lineage + Karp–Luby, capped at this
    /// many clauses.
    size_t rpq_clause_budget = 200'000;

    class Builder;
  };

  explicit PqeEngine(Options options) : options_(options) {}
  PqeEngine() : PqeEngine(Options{}) {}

  const Options& options() const { return options_; }

  /// The single evaluation entry point: dispatches on request.target,
  /// applies per-request overrides, enforces deadline_ms/cancel
  /// cooperatively, and never throws or hangs — errors (including
  /// kDeadlineExceeded) come back in EvalResponse::status.
  EvalResponse EvaluateRequest(const EvalRequest& request) const;

  /// The EstimatorConfig the engine hands to the counting layers for these
  /// options (shared with src/serve/ so prepared evaluations and engine
  /// evaluations are configured identically). `cancel` is threaded into the
  /// config's cooperative-cancellation hook.
  static EstimatorConfig MakeEstimatorConfig(const Options& options,
                                             const CancelToken* cancel);

 private:
  // `request_id` is attached to the evaluation's trace session so batch
  // traces stay attributable per request.
  Result<PqeAnswer> EvaluateQueryImpl(const ConjunctiveQuery& query,
                                      const ProbabilisticDatabase& pdb,
                                      const Options& opts,
                                      const CancelToken* cancel,
                                      uint64_t request_id) const;
  Result<PqeAnswer> EvaluateUnionImpl(const UnionQuery& query,
                                      const ProbabilisticDatabase& pdb,
                                      const Options& opts,
                                      const CancelToken* cancel,
                                      uint64_t request_id) const;
  Result<PqeAnswer> EvaluateUrImpl(const ConjunctiveQuery& query,
                                   const Database& db, const Options& opts,
                                   const CancelToken* cancel) const;
  Result<PqeAnswer> EvaluateRpqImpl(const rpq::RpqQuery& query,
                                    const ProbabilisticDatabase& pdb,
                                    const Options& opts,
                                    const CancelToken* cancel,
                                    uint64_t request_id) const;

  Options options_;
};

/// Fluent, validating construction of engine options: range errors surface
/// as a Status at Build() time instead of being silently clamped mid-run.
class PqeEngine::Options::Builder {
 public:
  Builder() = default;
  /// Starts from an existing options value (e.g. to tweak one knob).
  explicit Builder(Options base) : opts_(base) {}

  Builder& Method(PqeMethod method) {
    opts_.method = method;
    return *this;
  }
  Builder& Epsilon(double epsilon) {
    opts_.epsilon = epsilon;
    return *this;
  }
  Builder& Seed(uint64_t seed) {
    opts_.seed = seed;
    return *this;
  }
  Builder& MaxWidth(size_t max_width) {
    opts_.max_width = max_width;
    return *this;
  }
  Builder& EnumerationThreshold(size_t threshold) {
    opts_.enumeration_threshold = threshold;
    return *this;
  }
  Builder& PoolSize(size_t pool_size) {
    opts_.pool_size = pool_size;
    return *this;
  }
  Builder& MaxPoolSize(size_t max_pool_size) {
    opts_.max_pool_size = max_pool_size;
    return *this;
  }
  Builder& Repetitions(size_t repetitions) {
    opts_.repetitions = repetitions;
    return *this;
  }
  Builder& NumThreads(size_t num_threads) {
    opts_.num_threads = num_threads;
    return *this;
  }
  Builder& CollectTrace(bool collect) {
    opts_.collect_trace = collect;
    return *this;
  }
  Builder& Kernels(KernelMode mode) {
    opts_.kernel_mode = mode;
    return *this;
  }
  Builder& RpqClauseBudget(size_t budget) {
    opts_.rpq_clause_budget = budget;
    return *this;
  }

  /// Validates ranges (epsilon ∈ (0, 1), max_width ≥ 1, repetitions ≥ 1,
  /// pool_size ≤ max_pool_size when both are set) and returns the options,
  /// or an InvalidArgument status naming the offending knob.
  Result<Options> Build() const;

 private:
  Options opts_;
};

}  // namespace pqe

#endif  // PQE_CORE_ENGINE_H_
