#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "core/path_pqe.h"
#include "core/pqe.h"
#include "core/ur_construction.h"
#include "eval/eval.h"
#include "eval/ucq_eval.h"
#include "lineage/compiled_wmc.h"
#include "lineage/lineage.h"
#include "lineage/monte_carlo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpq/eval.h"
#include "rpq/product.h"
#include "rpq/regex.h"
#include "safeplan/safe_plan.h"

namespace pqe {

namespace {

void CountMethodEvaluation(PqeMethod method) {
  obs::MetricRegistry::Global()
      .GetCounter(std::string("pqe.engine.evaluations.") +
                  PqeMethodToString(method))
      .Increment();
}

// The method-specific prefix of the diagnostics line, reconstructed from the
// structured answer fields.
std::string DiagnosticsPrefix(const PqeAnswer& answer) {
  switch (answer.method_used) {
    case PqeMethod::kSafePlan:
      return "extensional safe plan (exact)";
    case PqeMethod::kEnumeration:
      return "possible-world enumeration over 2^" +
             std::to_string(answer.enumerated_facts.value_or(0)) +
             " worlds (exact)";
    case PqeMethod::kFpras:
      // decomposition_width == 0 marks the Section 3 string specialization.
      if (answer.automaton.has_value() &&
          answer.automaton->decomposition_width == 0) {
        return "combined FPRAS (Theorem 1, string specialization):";
      }
      return "combined FPRAS (Theorem 1):";
    case PqeMethod::kKarpLubyLineage:
      return "Karp–Luby over DNF lineage:";
    case PqeMethod::kExactLineage: {
      std::string out = "decomposed model count over lineage:";
      if (answer.lineage.has_value()) {
        out += " clauses=" + std::to_string(answer.lineage->clauses) +
               " splits=" + std::to_string(answer.lineage->shannon_splits) +
               "+" + std::to_string(answer.lineage->component_splits);
      }
      return out + " (exact)";
    }
    case PqeMethod::kMonteCarlo: {
      std::string out = "naive Monte Carlo:";
      if (answer.monte_carlo.has_value()) {
        out += " " + std::to_string(answer.monte_carlo->hits) + "/" +
               std::to_string(answer.monte_carlo->samples) +
               " worlds satisfied Q";
      }
      return out;
    }
    case PqeMethod::kAuto:
      return "(unresolved method)";
  }
  return "(unknown method)";
}

}  // namespace

std::string RenderDiagnostics(const PqeAnswer& answer) {
  std::ostringstream out;
  out << DiagnosticsPrefix(answer);
  if (answer.automaton.has_value()) {
    if (answer.automaton->decomposition_width > 0) {
      out << " width=" << answer.automaton->decomposition_width;
    }
    out << " k=" << answer.automaton->tree_size
        << " states=" << answer.automaton->states
        << " transitions=" << answer.automaton->transitions;
  }
  if (answer.count_stats.has_value()) {
    out << "; " << answer.count_stats->ToString();
  }
  if (answer.karp_luby.has_value()) {
    out << " clauses=" << answer.karp_luby->clauses
        << " samples=" << answer.karp_luby->samples
        << " hits=" << answer.karp_luby->hits;
  }
  return out.str();
}

const char* PqeMethodToString(PqeMethod method) {
  switch (method) {
    case PqeMethod::kAuto:
      return "auto";
    case PqeMethod::kFpras:
      return "fpras";
    case PqeMethod::kSafePlan:
      return "safe-plan";
    case PqeMethod::kEnumeration:
      return "enumeration";
    case PqeMethod::kKarpLubyLineage:
      return "karp-luby-lineage";
    case PqeMethod::kExactLineage:
      return "exact-lineage";
    case PqeMethod::kMonteCarlo:
      return "monte-carlo";
  }
  return "unknown";
}

Result<PqeEngine::Options> PqeEngine::Options::Builder::Build() const {
  if (!(opts_.epsilon > 0.0 && opts_.epsilon < 1.0)) {
    return Status::InvalidArgument(
        "Options: epsilon must lie in (0, 1), got " +
        std::to_string(opts_.epsilon));
  }
  if (opts_.max_width < 1) {
    return Status::InvalidArgument("Options: max_width must be >= 1");
  }
  if (opts_.repetitions < 1) {
    return Status::InvalidArgument("Options: repetitions must be >= 1");
  }
  if (opts_.pool_size > 0 && opts_.max_pool_size > 0 &&
      opts_.pool_size > opts_.max_pool_size) {
    return Status::InvalidArgument(
        "Options: pool_size (" + std::to_string(opts_.pool_size) +
        ") exceeds max_pool_size (" + std::to_string(opts_.max_pool_size) +
        ")");
  }
  if (opts_.rpq_clause_budget < 1) {
    return Status::InvalidArgument("Options: rpq_clause_budget must be >= 1");
  }
  return opts_;
}

EstimatorConfig PqeEngine::MakeEstimatorConfig(const Options& options,
                                               const CancelToken* cancel) {
  EstimatorConfig cfg;
  cfg.epsilon = options.epsilon;
  cfg.seed = options.seed;
  cfg.pool_size = options.pool_size;
  cfg.max_pool_size = options.max_pool_size;
  cfg.repetitions = options.repetitions;
  cfg.num_threads = options.num_threads;
  cfg.kernel_mode = options.kernel_mode;
  cfg.cancel = cancel;
  return cfg;
}

EvalResponse PqeEngine::EvaluateRequest(const EvalRequest& request) const {
  const auto start = std::chrono::steady_clock::now();
  EvalResponse resp;
  resp.request_id = request.request_id;

  // Per-request overrides over the engine's options.
  Options opts = options_;
  if (request.method.has_value()) opts.method = *request.method;
  if (request.epsilon.has_value()) opts.epsilon = *request.epsilon;
  if (request.seed.has_value()) opts.seed = *request.seed;
  if (request.collect_trace.has_value()) {
    opts.collect_trace = *request.collect_trace;
  }
  if (request.kernels.has_value()) opts.kernel_mode = *request.kernels;
  obs::MetricRegistry::Global()
      .GetCounter(std::string("pqe.engine.kernel_mode.") +
                  KernelModeToString(opts.kernel_mode))
      .Increment();

  // The deadline token chains any external token, so the request aborts when
  // either expires; with no deadline the external token (if any) is polled
  // directly.
  std::optional<CancelToken> deadline;
  const CancelToken* cancel = request.cancel;
  if (request.deadline_ms > 0) {
    deadline.emplace(std::chrono::milliseconds(request.deadline_ms),
                     request.cancel);
    cancel = &*deadline;
  }

  auto FinishWith = [&](Result<PqeAnswer> result) {
    if (result.ok()) {
      resp.answer = std::move(*result);
      resp.status = Status::OK();
    } else {
      resp.status = result.status();
    }
    resp.deadline_exceeded =
        resp.status.code() == StatusCode::kDeadlineExceeded;
    if (resp.deadline_exceeded) {
      obs::MetricRegistry::Global()
          .GetCounter("pqe.engine.deadline_exceeded")
          .Increment();
    }
    if (cancel != nullptr) resp.progress = cancel->progress();
    resp.elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    return resp;
  };

  if (cancel != nullptr && cancel->Expired()) {
    return FinishWith(Status::DeadlineExceeded(
        "request expired before evaluation started"));
  }

  switch (request.target) {
    case EvalRequest::Target::kQuery:
      if (request.query == nullptr || request.pdb == nullptr) {
        return FinishWith(Status::InvalidArgument(
            "EvalRequest(kQuery) requires query and pdb"));
      }
      return FinishWith(EvaluateQueryImpl(*request.query, *request.pdb, opts,
                                          cancel, request.request_id));
    case EvalRequest::Target::kUnion:
      if (request.union_query == nullptr || request.pdb == nullptr) {
        return FinishWith(Status::InvalidArgument(
            "EvalRequest(kUnion) requires union_query and pdb"));
      }
      return FinishWith(EvaluateUnionImpl(*request.union_query, *request.pdb,
                                          opts, cancel, request.request_id));
    case EvalRequest::Target::kUniformReliability:
      if (request.query == nullptr || request.db == nullptr) {
        return FinishWith(Status::InvalidArgument(
            "EvalRequest(kUniformReliability) requires query and db"));
      }
      return FinishWith(
          EvaluateUrImpl(*request.query, *request.db, opts, cancel));
    case EvalRequest::Target::kRpq:
      if (request.rpq == nullptr || request.pdb == nullptr) {
        return FinishWith(Status::InvalidArgument(
            "EvalRequest(kRpq) requires rpq and pdb"));
      }
      return FinishWith(EvaluateRpqImpl(*request.rpq, *request.pdb, opts,
                                        cancel, request.request_id));
  }
  return FinishWith(Status::Internal("unknown EvalRequest target"));
}

Result<PqeAnswer> PqeEngine::EvaluateQueryImpl(
    const ConjunctiveQuery& query, const ProbabilisticDatabase& pdb,
    const Options& opts, const CancelToken* cancel,
    uint64_t request_id) const {
  PqeMethod method = opts.method;
  if (method == PqeMethod::kAuto) {
    if (IsSafeQuery(query)) {
      method = PqeMethod::kSafePlan;
    } else if (pdb.NumFacts() <= opts.enumeration_threshold) {
      method = PqeMethod::kEnumeration;
    } else {
      method = PqeMethod::kFpras;
    }
  }
  std::optional<obs::TraceSession> session;
  if (opts.collect_trace) {
    session.emplace("engine.evaluate");
    obs::SpanAttrUint("request_id", request_id);
    obs::SpanAttrText("method", PqeMethodToString(method));
    obs::SpanAttrText("kernels", KernelModeToString(opts.kernel_mode));
    obs::SpanAttrUint("facts", pdb.NumFacts());
    obs::SpanAttrFloat("epsilon", opts.epsilon);
  }
  CountMethodEvaluation(method);

  PqeAnswer out;
  out.method_used = method;
  switch (method) {
    case PqeMethod::kSafePlan: {
      PQE_ASSIGN_OR_RETURN(out.probability, SafePlanProbability(query, pdb));
      out.is_exact = true;
      break;
    }
    case PqeMethod::kEnumeration: {
      PQE_TRACE_SPAN("exact.enumeration");
      PQE_ASSIGN_OR_RETURN(
          BigRational p,
          ExactProbabilityByEnumeration(pdb, query,
                                        opts.enumeration_threshold + 8));
      out.probability = p.ToDouble();
      out.is_exact = true;
      out.enumerated_facts = pdb.NumFacts();
      break;
    }
    case PqeMethod::kFpras: {
      if (query.IsPathQuery() && query.IsSelfJoinFree()) {
        // Path queries stay in string automata end to end (Section 3 +
        // string-side multiplier gadgets) — same guarantee, cheaper.
        PQE_ASSIGN_OR_RETURN(
            PathPqeResult r,
            PathPqeEstimate(query, pdb, MakeEstimatorConfig(opts, cancel)));
        out.probability = r.probability;
        out.count_stats = r.stats;
        out.automaton = PqeAnswer::AutomatonStats{
            r.nfa_states, r.nfa_transitions, r.word_length,
            /*decomposition_width=*/0};
        break;
      }
      UrConstructionOptions ur_opts;
      ur_opts.max_width = opts.max_width;
      PQE_ASSIGN_OR_RETURN(
          PqeEstimateResult r,
          PqeEstimate(query, pdb, MakeEstimatorConfig(opts, cancel),
                      ur_opts));
      out.probability = r.probability;
      out.count_stats = r.stats;
      out.automaton = PqeAnswer::AutomatonStats{
          r.nfta_states, r.nfta_transitions, r.tree_size,
          r.decomposition_width};
      break;
    }
    case PqeMethod::kKarpLubyLineage: {
      KarpLubyConfig cfg;
      cfg.epsilon = opts.epsilon;
      cfg.seed = opts.seed;
      cfg.num_threads = opts.num_threads;
      cfg.kernel_mode = opts.kernel_mode;
      cfg.cancel = cancel;
      PQE_ASSIGN_OR_RETURN(KarpLubyResult r, KarpLubyPqe(query, pdb, cfg));
      out.probability = r.probability;
      out.karp_luby = r;
      break;
    }
    case PqeMethod::kExactLineage: {
      PQE_ASSIGN_OR_RETURN(DnfLineage lineage,
                           BuildLineage(query, pdb.database()));
      PQE_ASSIGN_OR_RETURN(CompiledWmcResult r,
                           ExactDnfProbabilityDecomposed(lineage, pdb));
      out.probability = r.probability.ToDouble();
      out.is_exact = true;
      out.lineage = PqeAnswer::LineageStats{lineage.NumClauses(),
                                            r.stats.shannon_splits,
                                            r.stats.component_splits};
      break;
    }
    case PqeMethod::kMonteCarlo: {
      MonteCarloConfig cfg;
      cfg.seed = opts.seed;
      cfg.num_samples = 20'000;
      cfg.num_threads = opts.num_threads;
      cfg.kernel_mode = opts.kernel_mode;
      PQE_ASSIGN_OR_RETURN(MonteCarloResult r,
                           MonteCarloPqe(query, pdb, cfg));
      out.probability = r.probability;
      out.monte_carlo = PqeAnswer::SampleCounts{r.samples, r.hits};
      break;
    }
    case PqeMethod::kAuto:
      return Status::Internal("auto method not resolved");
  }
  if (session.has_value()) {
    obs::SpanAttrFloat("probability", out.probability);
    out.trace = std::make_shared<const obs::RunTrace>(session->Finish());
  }
  return out;
}

Result<PqeAnswer> PqeEngine::EvaluateUnionImpl(
    const UnionQuery& query, const ProbabilisticDatabase& pdb,
    const Options& opts, const CancelToken* cancel,
    uint64_t request_id) const {
  std::optional<obs::TraceSession> session;
  if (opts.collect_trace) {
    session.emplace("engine.evaluate_union");
    obs::SpanAttrUint("request_id", request_id);
    obs::SpanAttrText("kernels", KernelModeToString(opts.kernel_mode));
    obs::SpanAttrUint("facts", pdb.NumFacts());
    obs::SpanAttrUint("disjuncts", query.NumDisjuncts());
  }
  auto Finish = [&](PqeAnswer* answer) {
    CountMethodEvaluation(answer->method_used);
    if (session.has_value()) {
      obs::SpanAttrText("method", PqeMethodToString(answer->method_used));
      obs::SpanAttrFloat("probability", answer->probability);
      answer->trace =
          std::make_shared<const obs::RunTrace>(session->Finish());
    }
  };
  PqeAnswer out;
  if (pdb.NumFacts() <= opts.enumeration_threshold) {
    PQE_TRACE_SPAN("exact.enumeration");
    PQE_ASSIGN_OR_RETURN(
        BigRational p,
        ExactUnionProbabilityByEnumeration(pdb, query,
                                           opts.enumeration_threshold + 8));
    out.probability = p.ToDouble();
    out.is_exact = true;
    out.method_used = PqeMethod::kEnumeration;
    out.enumerated_facts = pdb.NumFacts();
    Finish(&out);
    return out;
  }
  // Union lineage: exact where tractable, Karp–Luby beyond.
  constexpr size_t kExactClauseBudget = 20'000;
  auto lineage = BuildUnionLineage(query, pdb.database(),
                                   kExactClauseBudget);
  if (lineage.ok()) {
    auto exact = ExactDnfProbabilityDecomposed(*lineage, pdb);
    if (exact.ok()) {
      out.probability = exact->probability.ToDouble();
      out.is_exact = true;
      out.method_used = PqeMethod::kExactLineage;
      out.lineage = PqeAnswer::LineageStats{lineage->NumClauses(),
                                            exact->stats.shannon_splits,
                                            exact->stats.component_splits};
      Finish(&out);
      return out;
    }
  }
  KarpLubyConfig cfg;
  cfg.epsilon = opts.epsilon;
  cfg.seed = opts.seed;
  cfg.num_threads = opts.num_threads;
  cfg.kernel_mode = opts.kernel_mode;
  cfg.cancel = cancel;
  PQE_ASSIGN_OR_RETURN(KarpLubyResult r, KarpLubyUnionPqe(query, pdb, cfg));
  out.probability = r.probability;
  out.karp_luby = r;
  out.method_used = PqeMethod::kKarpLubyLineage;
  Finish(&out);
  return out;
}

Result<PqeAnswer> PqeEngine::EvaluateRpqImpl(
    const rpq::RpqQuery& query, const ProbabilisticDatabase& pdb,
    const Options& opts, const CancelToken* cancel,
    uint64_t request_id) const {
  PqeMethod method = opts.method;
  const bool was_auto = method == PqeMethod::kAuto;
  if (was_auto) {
    method = pdb.NumFacts() <= opts.enumeration_threshold
                 ? PqeMethod::kEnumeration
                 : PqeMethod::kFpras;
  }
  if (method == PqeMethod::kSafePlan || method == PqeMethod::kMonteCarlo) {
    return Status::NotSupported(
        std::string("regular path queries do not support method '") +
        PqeMethodToString(method) + "'");
  }

  std::optional<obs::TraceSession> session;
  if (opts.collect_trace) {
    session.emplace("engine.evaluate_rpq");
    obs::SpanAttrUint("request_id", request_id);
    obs::SpanAttrText("regex", query.Canonical());
    obs::SpanAttrText("kernels", KernelModeToString(opts.kernel_mode));
    obs::SpanAttrUint("facts", pdb.NumFacts());
    obs::SpanAttrFloat("epsilon", opts.epsilon);
  }
  // The FPRAS route can cascade into lineage (below), so the method counter
  // runs at the end, against the method that actually produced the answer.
  PqeAnswer out;
  auto Finish = [&](PqeAnswer* answer) {
    CountMethodEvaluation(answer->method_used);
    if (session.has_value()) {
      obs::SpanAttrText("method", PqeMethodToString(answer->method_used));
      obs::SpanAttrFloat("probability", answer->probability);
      answer->trace =
          std::make_shared<const obs::RunTrace>(session->Finish());
    }
  };

  if (method == PqeMethod::kEnumeration) {
    PQE_TRACE_SPAN("exact.enumeration");
    PQE_ASSIGN_OR_RETURN(
        BigRational p,
        rpq::ExactRpqProbabilityByEnumeration(query, pdb,
                                              opts.enumeration_threshold + 8));
    out.probability = p.ToDouble();
    out.is_exact = true;
    out.method_used = PqeMethod::kEnumeration;
    out.enumerated_facts = pdb.NumFacts();
    Finish(&out);
    return out;
  }

  if (method == PqeMethod::kFpras) {
    auto r = rpq::RpqEstimate(query, pdb, MakeEstimatorConfig(opts, cancel));
    if (r.ok()) {
      out.probability = r->probability;
      out.method_used = PqeMethod::kFpras;
      out.count_stats = r->stats;
      out.automaton = PqeAnswer::AutomatonStats{
          r->nfa_states, r->nfa_transitions, r->word_length,
          /*decomposition_width=*/0};
      Finish(&out);
      return out;
    }
    if (!was_auto || r.status().code() != StatusCode::kNotSupported) {
      return r.status();
    }
    // Not scan-orderable (cyclic data under the regex): fall through to the
    // exact product-path lineage, mirroring the union cascade.
  }

  PQE_ASSIGN_OR_RETURN(rpq::RpqProduct product,
                       rpq::BuildRpqProduct(query, pdb.database()));
  if (product.trivially_true) {
    // ε ∈ L(regex) over a non-empty domain: the lineage is the constant-true
    // DNF (one empty clause) — exactly probability 1, no sampling needed.
    out.probability = 1.0;
    out.is_exact = true;
    out.method_used = PqeMethod::kExactLineage;
    out.lineage = PqeAnswer::LineageStats{1, 0, 0};
    Finish(&out);
    return out;
  }
  if (method == PqeMethod::kExactLineage || method == PqeMethod::kFpras) {
    // Forced exact route, or the auto cascade's exact-first attempt.
    const size_t budget = method == PqeMethod::kExactLineage
                              ? opts.rpq_clause_budget
                              : std::min<size_t>(opts.rpq_clause_budget,
                                                 20'000);
    auto lineage = rpq::BuildRpqLineage(product, budget);
    if (lineage.ok()) {
      auto exact = ExactDnfProbabilityDecomposed(*lineage, pdb);
      if (exact.ok()) {
        out.probability = exact->probability.ToDouble();
        out.is_exact = true;
        out.method_used = PqeMethod::kExactLineage;
        out.lineage = PqeAnswer::LineageStats{lineage->NumClauses(),
                                              exact->stats.shannon_splits,
                                              exact->stats.component_splits};
        Finish(&out);
        return out;
      }
      if (method == PqeMethod::kExactLineage) return exact.status();
    } else if (method == PqeMethod::kExactLineage) {
      return lineage.status();
    }
  }

  PQE_ASSIGN_OR_RETURN(DnfLineage lineage,
                       rpq::BuildRpqLineage(product, opts.rpq_clause_budget));
  if (lineage.NumClauses() == 0) {
    // Unsatisfiable on every subinstance: exactly probability 0.
    out.probability = 0.0;
    out.is_exact = true;
    out.method_used = PqeMethod::kExactLineage;
    out.lineage = PqeAnswer::LineageStats{0, 0, 0};
    Finish(&out);
    return out;
  }
  KarpLubyConfig cfg;
  cfg.epsilon = opts.epsilon;
  cfg.seed = opts.seed;
  cfg.num_threads = opts.num_threads;
  cfg.kernel_mode = opts.kernel_mode;
  cfg.cancel = cancel;
  PQE_ASSIGN_OR_RETURN(KarpLubyResult r,
                       KarpLubyEstimate(lineage, pdb, cfg));
  out.probability = r.probability;
  out.karp_luby = r;
  out.method_used = PqeMethod::kKarpLubyLineage;
  Finish(&out);
  return out;
}

Result<PqeAnswer> PqeEngine::EvaluateUrImpl(const ConjunctiveQuery& query,
                                            const Database& db,
                                            const Options& opts,
                                            const CancelToken* cancel) const {
  PqeAnswer out;
  if (db.NumFacts() <= opts.enumeration_threshold) {
    PQE_ASSIGN_OR_RETURN(
        BigUint ur,
        UniformReliabilityByEnumeration(db, query,
                                        opts.enumeration_threshold + 8));
    out.probability = ur.ToDouble();
    out.is_exact = true;
    out.method_used = PqeMethod::kEnumeration;
    out.enumerated_facts = db.NumFacts();
    return out;
  }
  UrConstructionOptions ur_opts;
  ur_opts.max_width = opts.max_width;
  PQE_ASSIGN_OR_RETURN(
      UrEstimateResult r,
      UrEstimate(query, db, MakeEstimatorConfig(opts, cancel), ur_opts));
  out.probability = r.ur.ToDouble();
  out.method_used = PqeMethod::kFpras;
  out.count_stats = r.stats;
  out.automaton = PqeAnswer::AutomatonStats{r.nfta_states,
                                            r.nfta_transitions, r.tree_size,
                                            r.decomposition_width};
  return out;
}

}  // namespace pqe
