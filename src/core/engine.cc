#include "core/engine.h"

#include <optional>
#include <sstream>
#include <utility>

#include "core/path_pqe.h"
#include "core/pqe.h"
#include "core/ur_construction.h"
#include "eval/eval.h"
#include "eval/ucq_eval.h"
#include "lineage/compiled_wmc.h"
#include "lineage/lineage.h"
#include "lineage/monte_carlo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "safeplan/safe_plan.h"

namespace pqe {

namespace {

// Renders the human-readable summary line from the structured answer
// fields. `detail` carries the method-specific prefix.
std::string RenderDiagnostics(const PqeAnswer& answer, std::string detail) {
  std::ostringstream out;
  out << detail;
  if (answer.automaton.has_value()) {
    if (answer.automaton->decomposition_width > 0) {
      out << " width=" << answer.automaton->decomposition_width;
    }
    out << " k=" << answer.automaton->tree_size
        << " states=" << answer.automaton->states
        << " transitions=" << answer.automaton->transitions;
  }
  if (answer.count_stats.has_value()) {
    out << "; " << answer.count_stats->ToString();
  }
  if (answer.karp_luby.has_value()) {
    out << " clauses=" << answer.karp_luby->clauses
        << " samples=" << answer.karp_luby->samples
        << " hits=" << answer.karp_luby->hits;
  }
  return out.str();
}

void CountMethodEvaluation(PqeMethod method) {
  obs::MetricRegistry::Global()
      .GetCounter(std::string("pqe.engine.evaluations.") +
                  PqeMethodToString(method))
      .Increment();
}

}  // namespace

const char* PqeMethodToString(PqeMethod method) {
  switch (method) {
    case PqeMethod::kAuto:
      return "auto";
    case PqeMethod::kFpras:
      return "fpras";
    case PqeMethod::kSafePlan:
      return "safe-plan";
    case PqeMethod::kEnumeration:
      return "enumeration";
    case PqeMethod::kKarpLubyLineage:
      return "karp-luby-lineage";
    case PqeMethod::kExactLineage:
      return "exact-lineage";
    case PqeMethod::kMonteCarlo:
      return "monte-carlo";
  }
  return "unknown";
}

EstimatorConfig PqeEngine::MakeEstimatorConfig() const {
  EstimatorConfig cfg;
  cfg.epsilon = options_.epsilon;
  cfg.seed = options_.seed;
  cfg.pool_size = options_.pool_size;
  cfg.max_pool_size = options_.max_pool_size;
  cfg.repetitions = options_.repetitions;
  cfg.num_threads = options_.num_threads;
  return cfg;
}

Result<PqeAnswer> PqeEngine::Evaluate(const ConjunctiveQuery& query,
                                      const ProbabilisticDatabase& pdb) const {
  PqeMethod method = options_.method;
  if (method == PqeMethod::kAuto) {
    if (IsSafeQuery(query)) {
      method = PqeMethod::kSafePlan;
    } else if (pdb.NumFacts() <= options_.enumeration_threshold) {
      method = PqeMethod::kEnumeration;
    } else {
      method = PqeMethod::kFpras;
    }
  }
  std::optional<obs::TraceSession> session;
  if (options_.collect_trace) {
    session.emplace("engine.evaluate");
    obs::SpanAttrText("method", PqeMethodToString(method));
    obs::SpanAttrUint("facts", pdb.NumFacts());
    obs::SpanAttrFloat("epsilon", options_.epsilon);
  }
  CountMethodEvaluation(method);

  PqeAnswer out;
  out.method_used = method;
  std::string detail;
  switch (method) {
    case PqeMethod::kSafePlan: {
      PQE_ASSIGN_OR_RETURN(out.probability, SafePlanProbability(query, pdb));
      out.is_exact = true;
      detail = "extensional safe plan (exact)";
      break;
    }
    case PqeMethod::kEnumeration: {
      PQE_TRACE_SPAN("exact.enumeration");
      PQE_ASSIGN_OR_RETURN(
          BigRational p,
          ExactProbabilityByEnumeration(pdb, query,
                                        options_.enumeration_threshold + 8));
      out.probability = p.ToDouble();
      out.is_exact = true;
      detail = "possible-world enumeration over 2^" +
               std::to_string(pdb.NumFacts()) + " worlds (exact)";
      break;
    }
    case PqeMethod::kFpras: {
      if (query.IsPathQuery() && query.IsSelfJoinFree()) {
        // Path queries stay in string automata end to end (Section 3 +
        // string-side multiplier gadgets) — same guarantee, cheaper.
        PQE_ASSIGN_OR_RETURN(
            PathPqeResult r,
            PathPqeEstimate(query, pdb, MakeEstimatorConfig()));
        out.probability = r.probability;
        out.count_stats = r.stats;
        out.automaton = PqeAnswer::AutomatonStats{
            r.nfa_states, r.nfa_transitions, r.word_length,
            /*decomposition_width=*/0};
        detail = "combined FPRAS (Theorem 1, string specialization):";
        break;
      }
      UrConstructionOptions opts;
      opts.max_width = options_.max_width;
      PQE_ASSIGN_OR_RETURN(
          PqeEstimateResult r,
          PqeEstimate(query, pdb, MakeEstimatorConfig(), opts));
      out.probability = r.probability;
      out.count_stats = r.stats;
      out.automaton = PqeAnswer::AutomatonStats{
          r.nfta_states, r.nfta_transitions, r.tree_size,
          r.decomposition_width};
      detail = "combined FPRAS (Theorem 1):";
      break;
    }
    case PqeMethod::kKarpLubyLineage: {
      KarpLubyConfig cfg;
      cfg.epsilon = options_.epsilon;
      cfg.seed = options_.seed;
      cfg.num_threads = options_.num_threads;
      PQE_ASSIGN_OR_RETURN(KarpLubyResult r, KarpLubyPqe(query, pdb, cfg));
      out.probability = r.probability;
      out.karp_luby = r;
      detail = "Karp–Luby over DNF lineage:";
      break;
    }
    case PqeMethod::kExactLineage: {
      PQE_ASSIGN_OR_RETURN(DnfLineage lineage,
                           BuildLineage(query, pdb.database()));
      PQE_ASSIGN_OR_RETURN(CompiledWmcResult r,
                           ExactDnfProbabilityDecomposed(lineage, pdb));
      out.probability = r.probability.ToDouble();
      out.is_exact = true;
      detail = "decomposed model count over lineage: clauses=" +
               std::to_string(lineage.NumClauses()) + " splits=" +
               std::to_string(r.stats.shannon_splits) + "+" +
               std::to_string(r.stats.component_splits) + " (exact)";
      break;
    }
    case PqeMethod::kMonteCarlo: {
      MonteCarloConfig cfg;
      cfg.seed = options_.seed;
      cfg.num_samples = 20'000;
      cfg.num_threads = options_.num_threads;
      PQE_ASSIGN_OR_RETURN(MonteCarloResult r,
                           MonteCarloPqe(query, pdb, cfg));
      out.probability = r.probability;
      detail = "naive Monte Carlo: " + std::to_string(r.hits) + "/" +
               std::to_string(r.samples) + " worlds satisfied Q";
      break;
    }
    case PqeMethod::kAuto:
      return Status::Internal("auto method not resolved");
  }
  out.diagnostics = RenderDiagnostics(out, std::move(detail));
  if (session.has_value()) {
    obs::SpanAttrFloat("probability", out.probability);
    out.trace =
        std::make_shared<const obs::RunTrace>(session->Finish());
  }
  return out;
}

Result<PqeAnswer> PqeEngine::EvaluateUnion(
    const UnionQuery& query, const ProbabilisticDatabase& pdb) const {
  std::optional<obs::TraceSession> session;
  if (options_.collect_trace) {
    session.emplace("engine.evaluate_union");
    obs::SpanAttrUint("facts", pdb.NumFacts());
    obs::SpanAttrUint("disjuncts", query.NumDisjuncts());
  }
  auto Finish = [&](PqeAnswer* answer, std::string detail) {
    CountMethodEvaluation(answer->method_used);
    answer->diagnostics = RenderDiagnostics(*answer, std::move(detail));
    if (session.has_value()) {
      obs::SpanAttrText("method", PqeMethodToString(answer->method_used));
      obs::SpanAttrFloat("probability", answer->probability);
      answer->trace =
          std::make_shared<const obs::RunTrace>(session->Finish());
    }
  };
  PqeAnswer out;
  if (pdb.NumFacts() <= options_.enumeration_threshold) {
    PQE_TRACE_SPAN("exact.enumeration");
    PQE_ASSIGN_OR_RETURN(
        BigRational p,
        ExactUnionProbabilityByEnumeration(pdb, query,
                                           options_.enumeration_threshold +
                                               8));
    out.probability = p.ToDouble();
    out.is_exact = true;
    out.method_used = PqeMethod::kEnumeration;
    Finish(&out, "possible-world enumeration over 2^" +
                     std::to_string(pdb.NumFacts()) + " worlds (exact)");
    return out;
  }
  // Union lineage: exact where tractable, Karp–Luby beyond.
  constexpr size_t kExactClauseBudget = 20'000;
  auto lineage = BuildUnionLineage(query, pdb.database(),
                                   kExactClauseBudget);
  if (lineage.ok()) {
    auto exact = ExactDnfProbabilityDecomposed(*lineage, pdb);
    if (exact.ok()) {
      out.probability = exact->probability.ToDouble();
      out.is_exact = true;
      out.method_used = PqeMethod::kExactLineage;
      Finish(&out, "decomposed model count over union lineage: clauses=" +
                       std::to_string(lineage->NumClauses()) + " (exact)");
      return out;
    }
  }
  KarpLubyConfig cfg;
  cfg.epsilon = options_.epsilon;
  cfg.seed = options_.seed;
  cfg.num_threads = options_.num_threads;
  PQE_ASSIGN_OR_RETURN(KarpLubyResult r, KarpLubyUnionPqe(query, pdb, cfg));
  out.probability = r.probability;
  out.karp_luby = r;
  out.method_used = PqeMethod::kKarpLubyLineage;
  Finish(&out, "Karp–Luby over union lineage:");
  return out;
}

Result<double> PqeEngine::EvaluateUniformReliability(
    const ConjunctiveQuery& query, const Database& db) const {
  if (db.NumFacts() <= options_.enumeration_threshold) {
    PQE_ASSIGN_OR_RETURN(
        BigUint ur,
        UniformReliabilityByEnumeration(db, query,
                                        options_.enumeration_threshold + 8));
    return ur.ToDouble();
  }
  UrConstructionOptions opts;
  opts.max_width = options_.max_width;
  PQE_ASSIGN_OR_RETURN(UrEstimateResult r,
                       UrEstimate(query, db, MakeEstimatorConfig(), opts));
  return r.ur.ToDouble();
}

}  // namespace pqe
