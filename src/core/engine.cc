#include "core/engine.h"

#include <sstream>

#include "core/path_pqe.h"
#include "core/pqe.h"
#include "core/ur_construction.h"
#include "eval/eval.h"
#include "eval/ucq_eval.h"
#include "lineage/compiled_wmc.h"
#include "lineage/lineage.h"
#include "lineage/monte_carlo.h"
#include "safeplan/safe_plan.h"

namespace pqe {

const char* PqeMethodToString(PqeMethod method) {
  switch (method) {
    case PqeMethod::kAuto:
      return "auto";
    case PqeMethod::kFpras:
      return "fpras";
    case PqeMethod::kSafePlan:
      return "safe-plan";
    case PqeMethod::kEnumeration:
      return "enumeration";
    case PqeMethod::kKarpLubyLineage:
      return "karp-luby-lineage";
    case PqeMethod::kExactLineage:
      return "exact-lineage";
    case PqeMethod::kMonteCarlo:
      return "monte-carlo";
  }
  return "unknown";
}

EstimatorConfig PqeEngine::MakeEstimatorConfig() const {
  EstimatorConfig cfg;
  cfg.epsilon = options_.epsilon;
  cfg.seed = options_.seed;
  cfg.pool_size = options_.pool_size;
  cfg.max_pool_size = options_.max_pool_size;
  cfg.repetitions = options_.repetitions;
  return cfg;
}

Result<PqeAnswer> PqeEngine::Evaluate(const ConjunctiveQuery& query,
                                      const ProbabilisticDatabase& pdb) const {
  PqeMethod method = options_.method;
  if (method == PqeMethod::kAuto) {
    if (IsSafeQuery(query)) {
      method = PqeMethod::kSafePlan;
    } else if (pdb.NumFacts() <= options_.enumeration_threshold) {
      method = PqeMethod::kEnumeration;
    } else {
      method = PqeMethod::kFpras;
    }
  }
  PqeAnswer out;
  out.method_used = method;
  std::ostringstream diag;
  switch (method) {
    case PqeMethod::kSafePlan: {
      PQE_ASSIGN_OR_RETURN(out.probability, SafePlanProbability(query, pdb));
      out.is_exact = true;
      diag << "extensional safe plan (exact)";
      break;
    }
    case PqeMethod::kEnumeration: {
      PQE_ASSIGN_OR_RETURN(
          BigRational p,
          ExactProbabilityByEnumeration(pdb, query,
                                        options_.enumeration_threshold + 8));
      out.probability = p.ToDouble();
      out.is_exact = true;
      diag << "possible-world enumeration over 2^" << pdb.NumFacts()
           << " worlds (exact)";
      break;
    }
    case PqeMethod::kFpras: {
      if (query.IsPathQuery() && query.IsSelfJoinFree()) {
        // Path queries stay in string automata end to end (Section 3 +
        // string-side multiplier gadgets) — same guarantee, cheaper.
        PQE_ASSIGN_OR_RETURN(
            PathPqeResult r,
            PathPqeEstimate(query, pdb, MakeEstimatorConfig()));
        out.probability = r.probability;
        diag << "combined FPRAS (Theorem 1, string specialization): k="
             << r.word_length << " states=" << r.nfa_states
             << " transitions=" << r.nfa_transitions << "; "
             << r.stats.ToString();
        break;
      }
      UrConstructionOptions opts;
      opts.max_width = options_.max_width;
      PQE_ASSIGN_OR_RETURN(
          PqeEstimateResult r,
          PqeEstimate(query, pdb, MakeEstimatorConfig(), opts));
      out.probability = r.probability;
      diag << "combined FPRAS (Theorem 1): width=" << r.decomposition_width
           << " k=" << r.tree_size << " states=" << r.nfta_states
           << " transitions=" << r.nfta_transitions << "; "
           << r.stats.ToString();
      break;
    }
    case PqeMethod::kKarpLubyLineage: {
      KarpLubyConfig cfg;
      cfg.epsilon = options_.epsilon;
      cfg.seed = options_.seed;
      PQE_ASSIGN_OR_RETURN(KarpLubyResult r, KarpLubyPqe(query, pdb, cfg));
      out.probability = r.probability;
      diag << "Karp–Luby over DNF lineage: clauses=" << r.clauses
           << " samples=" << r.samples;
      break;
    }
    case PqeMethod::kExactLineage: {
      PQE_ASSIGN_OR_RETURN(DnfLineage lineage,
                           BuildLineage(query, pdb.database()));
      PQE_ASSIGN_OR_RETURN(CompiledWmcResult r,
                           ExactDnfProbabilityDecomposed(lineage, pdb));
      out.probability = r.probability.ToDouble();
      out.is_exact = true;
      diag << "decomposed model count over lineage: clauses="
           << lineage.NumClauses() << " splits=" << r.stats.shannon_splits
           << "+" << r.stats.component_splits << " (exact)";
      break;
    }
    case PqeMethod::kMonteCarlo: {
      MonteCarloConfig cfg;
      cfg.seed = options_.seed;
      cfg.num_samples = 20'000;
      PQE_ASSIGN_OR_RETURN(MonteCarloResult r,
                           MonteCarloPqe(query, pdb, cfg));
      out.probability = r.probability;
      diag << "naive Monte Carlo: " << r.hits << "/" << r.samples
           << " worlds satisfied Q";
      break;
    }
    case PqeMethod::kAuto:
      return Status::Internal("auto method not resolved");
  }
  out.diagnostics = diag.str();
  return out;
}

Result<PqeAnswer> PqeEngine::EvaluateUnion(
    const UnionQuery& query, const ProbabilisticDatabase& pdb) const {
  PqeAnswer out;
  std::ostringstream diag;
  if (pdb.NumFacts() <= options_.enumeration_threshold) {
    PQE_ASSIGN_OR_RETURN(
        BigRational p,
        ExactUnionProbabilityByEnumeration(pdb, query,
                                           options_.enumeration_threshold +
                                               8));
    out.probability = p.ToDouble();
    out.is_exact = true;
    out.method_used = PqeMethod::kEnumeration;
    diag << "possible-world enumeration over 2^" << pdb.NumFacts()
         << " worlds (exact)";
    out.diagnostics = diag.str();
    return out;
  }
  // Union lineage: exact where tractable, Karp–Luby beyond.
  constexpr size_t kExactClauseBudget = 20'000;
  auto lineage = BuildUnionLineage(query, pdb.database(),
                                   kExactClauseBudget);
  if (lineage.ok()) {
    auto exact = ExactDnfProbabilityDecomposed(*lineage, pdb);
    if (exact.ok()) {
      out.probability = exact->probability.ToDouble();
      out.is_exact = true;
      out.method_used = PqeMethod::kExactLineage;
      diag << "decomposed model count over union lineage: clauses="
           << lineage->NumClauses() << " (exact)";
      out.diagnostics = diag.str();
      return out;
    }
  }
  KarpLubyConfig cfg;
  cfg.epsilon = options_.epsilon;
  cfg.seed = options_.seed;
  PQE_ASSIGN_OR_RETURN(KarpLubyResult r, KarpLubyUnionPqe(query, pdb, cfg));
  out.probability = r.probability;
  out.method_used = PqeMethod::kKarpLubyLineage;
  diag << "Karp–Luby over union lineage: clauses=" << r.clauses
       << " samples=" << r.samples;
  out.diagnostics = diag.str();
  return out;
}

Result<double> PqeEngine::EvaluateUniformReliability(
    const ConjunctiveQuery& query, const Database& db) const {
  if (db.NumFacts() <= options_.enumeration_threshold) {
    PQE_ASSIGN_OR_RETURN(
        BigUint ur,
        UniformReliabilityByEnumeration(db, query,
                                        options_.enumeration_threshold + 8));
    return ur.ToDouble();
  }
  UrConstructionOptions opts;
  opts.max_width = options_.max_width;
  PQE_ASSIGN_OR_RETURN(UrEstimateResult r,
                       UrEstimate(query, db, MakeEstimatorConfig(), opts));
  return r.ur.ToDouble();
}

}  // namespace pqe
