#include "eval/ucq_eval.h"

#include <algorithm>
#include <set>

#include "eval/eval.h"
#include "lineage/compiled_wmc.h"

namespace pqe {

Result<bool> SatisfiesUnion(const Database& db, const UnionQuery& query) {
  for (const ConjunctiveQuery& q : query.disjuncts()) {
    PQE_ASSIGN_OR_RETURN(bool sat, Satisfies(db, q));
    if (sat) return true;
  }
  return false;
}

Result<BigRational> ExactUnionProbabilityByEnumeration(
    const ProbabilisticDatabase& pdb, const UnionQuery& query,
    size_t max_facts) {
  const Database& db = pdb.database();
  const size_t n = db.NumFacts();
  if (n > max_facts) {
    return Status::ResourceExhausted(
        "enumeration oracle limited to " + std::to_string(max_facts) +
        " facts, database has " + std::to_string(n));
  }
  BigUint numerator_sum;
  std::vector<bool> present(n, false);
  const uint64_t worlds = 1ULL << n;
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    for (size_t i = 0; i < n; ++i) present[i] = (mask >> i) & 1;
    bool sat = false;
    for (const ConjunctiveQuery& q : query.disjuncts()) {
      PQE_ASSIGN_OR_RETURN(sat, SatisfiesSubinstance(db, q, present));
      if (sat) break;
    }
    if (!sat) continue;
    BigUint world_num(1);
    for (size_t i = 0; i < n; ++i) {
      const Probability p = pdb.probability(static_cast<FactId>(i));
      world_num = world_num.MulU64(present[i] ? p.num : p.den - p.num);
    }
    numerator_sum = numerator_sum.Add(world_num);
  }
  return BigRational(std::move(numerator_sum), pdb.CommonDenominator());
}

Result<DnfLineage> BuildUnionLineage(const UnionQuery& query,
                                     const Database& db,
                                     size_t max_clauses) {
  DnfLineage out;
  out.num_facts = db.NumFacts();
  std::set<std::vector<FactId>> seen;
  for (const ConjunctiveQuery& q : query.disjuncts()) {
    PQE_ASSIGN_OR_RETURN(DnfLineage part, BuildLineage(q, db, max_clauses));
    for (auto& clause : part.clauses) {
      if (seen.insert(clause).second) {
        if (seen.size() > max_clauses) {
          return Status::ResourceExhausted("union lineage exceeds clause cap");
        }
        out.clauses.push_back(std::move(clause));
      }
    }
  }
  return out;
}

Result<BigRational> ExactUnionProbability(const UnionQuery& query,
                                          const ProbabilisticDatabase& pdb) {
  PQE_ASSIGN_OR_RETURN(DnfLineage lineage,
                       BuildUnionLineage(query, pdb.database()));
  PQE_ASSIGN_OR_RETURN(CompiledWmcResult result,
                       ExactDnfProbabilityDecomposed(lineage, pdb));
  return result.probability;
}

Result<KarpLubyResult> KarpLubyUnionPqe(const UnionQuery& query,
                                        const ProbabilisticDatabase& pdb,
                                        const KarpLubyConfig& config,
                                        size_t max_clauses) {
  PQE_ASSIGN_OR_RETURN(DnfLineage lineage,
                       BuildUnionLineage(query, pdb.database(), max_clauses));
  return KarpLubyEstimate(lineage, pdb, config);
}

}  // namespace pqe
