#include "eval/eval.h"

#include <algorithm>

namespace pqe {

namespace {

// Shared backtracking join engine. Visits homomorphisms of q into the facts
// of db enabled by `present` (nullptr = all facts). Returns true if the
// visitor ever returns true ("stop early").
class JoinSearch {
 public:
  JoinSearch(const Database& db, const ConjunctiveQuery& q,
             const std::vector<bool>* present)
      : db_(db), q_(q), present_(present) {
    assignment_.assign(q.NumVars(), kNoValue);
    // Atom order: greedily pick the atom sharing the most variables with
    // already-placed atoms (reduces branching on chained queries).
    std::vector<bool> used(q.NumAtoms(), false);
    std::vector<bool> bound(q.NumVars(), false);
    for (size_t step = 0; step < q.NumAtoms(); ++step) {
      size_t best = q.NumAtoms();
      int best_score = -1;
      for (size_t a = 0; a < q.NumAtoms(); ++a) {
        if (used[a]) continue;
        int score = 0;
        for (VarId v : q.atom(a).vars) score += bound[v] ? 1 : 0;
        if (score > best_score) {
          best_score = score;
          best = a;
        }
      }
      used[best] = true;
      for (VarId v : q.atom(best).vars) bound[v] = true;
      order_.push_back(best);
    }
  }

  template <typename Visitor>
  bool Run(Visitor&& visit) {
    return Recurse(0, visit);
  }

 private:
  template <typename Visitor>
  bool Recurse(size_t depth, Visitor&& visit) {
    if (depth == order_.size()) return visit(assignment_);
    const Atom& atom = q_.atom(order_[depth]);
    for (FactId fid : db_.FactsOf(atom.relation)) {
      if (present_ != nullptr && !(*present_)[fid]) continue;
      const Fact& f = db_.fact(fid);
      // Try to extend the assignment with this fact; record which variables
      // this frame binds so they can be unbound on backtrack.
      bool consistent = true;
      std::vector<VarId> newly_bound;
      for (size_t i = 0; i < atom.vars.size(); ++i) {
        VarId v = atom.vars[i];
        int64_t val = static_cast<int64_t>(f.args[i]);
        if (assignment_[v] == kNoValue) {
          assignment_[v] = val;
          newly_bound.push_back(v);
        } else if (assignment_[v] != val) {
          consistent = false;
          break;
        }
      }
      if (consistent && Recurse(depth + 1, visit)) return true;
      for (VarId v : newly_bound) assignment_[v] = kNoValue;
    }
    return false;
  }

  const Database& db_;
  const ConjunctiveQuery& q_;
  const std::vector<bool>* present_;
  Assignment assignment_;
  std::vector<size_t> order_;
};

Status ValidateQueryAgainstSchema(const Database& db,
                                  const ConjunctiveQuery& q) {
  for (const Atom& a : q.atoms()) {
    if (a.relation >= db.schema().NumRelations()) {
      return Status::InvalidArgument(
          "query mentions a relation outside the database schema");
    }
    if (a.vars.size() != db.schema().Arity(a.relation)) {
      return Status::InvalidArgument("query atom arity mismatch for relation " +
                                     db.schema().Name(a.relation));
    }
  }
  return Status::OK();
}

}  // namespace

Result<bool> Satisfies(const Database& db, const ConjunctiveQuery& q) {
  PQE_RETURN_IF_ERROR(ValidateQueryAgainstSchema(db, q));
  JoinSearch search(db, q, nullptr);
  return search.Run([](const Assignment&) { return true; });
}

Result<bool> SatisfiesSubinstance(const Database& db,
                                  const ConjunctiveQuery& q,
                                  const std::vector<bool>& present) {
  PQE_RETURN_IF_ERROR(ValidateQueryAgainstSchema(db, q));
  if (present.size() != db.NumFacts()) {
    return Status::InvalidArgument("present bitvector size != |D|");
  }
  JoinSearch search(db, q, &present);
  return search.Run([](const Assignment&) { return true; });
}

Result<WitnessResult> FindWitness(const Database& db,
                                  const ConjunctiveQuery& q) {
  PQE_RETURN_IF_ERROR(ValidateQueryAgainstSchema(db, q));
  WitnessResult out;
  JoinSearch search(db, q, nullptr);
  search.Run([&](const Assignment& a) {
    out.found = true;
    out.assignment = a;
    return true;
  });
  return out;
}

Result<std::vector<Assignment>> AllWitnesses(const Database& db,
                                             const ConjunctiveQuery& q) {
  PQE_RETURN_IF_ERROR(ValidateQueryAgainstSchema(db, q));
  std::vector<Assignment> out;
  JoinSearch search(db, q, nullptr);
  search.Run([&](const Assignment& a) {
    out.push_back(a);
    return false;
  });
  // The search can revisit the same total assignment via different atom
  // orders only when an atom repeats facts; deduplicate for a clean API.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<BigUint> UniformReliabilityByEnumeration(const Database& db,
                                                const ConjunctiveQuery& q,
                                                size_t max_facts) {
  PQE_RETURN_IF_ERROR(ValidateQueryAgainstSchema(db, q));
  const size_t n = db.NumFacts();
  if (n > max_facts) {
    return Status::ResourceExhausted(
        "enumeration oracle limited to " + std::to_string(max_facts) +
        " facts, database has " + std::to_string(n));
  }
  BigUint count;
  std::vector<bool> present(n, false);
  const uint64_t worlds = 1ULL << n;
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    for (size_t i = 0; i < n; ++i) present[i] = (mask >> i) & 1;
    JoinSearch search(db, q, &present);
    if (search.Run([](const Assignment&) { return true; })) {
      count = count.Add(BigUint(1));
    }
  }
  return count;
}

Result<BigRational> ExactProbabilityByEnumeration(
    const ProbabilisticDatabase& pdb, const ConjunctiveQuery& q,
    size_t max_facts) {
  const Database& db = pdb.database();
  PQE_RETURN_IF_ERROR(ValidateQueryAgainstSchema(db, q));
  const size_t n = db.NumFacts();
  if (n > max_facts) {
    return Status::ResourceExhausted(
        "enumeration oracle limited to " + std::to_string(max_facts) +
        " facts, database has " + std::to_string(n));
  }
  // All worlds share the common denominator d = Π d_i (Section 5.2), so the
  // sum is accumulated over numerators only: Pr_H(Q) = (Σ_world Π w_i or
  // (d_i − w_i)) / d.
  BigUint numerator_sum;
  std::vector<bool> present(n, false);
  const uint64_t worlds = 1ULL << n;
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    for (size_t i = 0; i < n; ++i) present[i] = (mask >> i) & 1;
    JoinSearch search(db, q, &present);
    if (search.Run([](const Assignment&) { return true; })) {
      BigUint world_num(1);
      for (size_t i = 0; i < n; ++i) {
        const Probability p = pdb.probability(static_cast<FactId>(i));
        world_num = world_num.MulU64(present[i] ? p.num : p.den - p.num);
      }
      numerator_sum = numerator_sum.Add(world_num);
    }
  }
  return BigRational(std::move(numerator_sum), pdb.CommonDenominator());
}

}  // namespace pqe
