#ifndef PQE_EVAL_EVAL_H_
#define PQE_EVAL_EVAL_H_

#include <cstdint>
#include <vector>

#include "cq/query.h"
#include "pdb/database.h"
#include "pdb/probabilistic_database.h"
#include "util/bigint.h"
#include "util/result.h"

namespace pqe {

/// A homomorphism from query variables to database constants; index by VarId,
/// kNoValue for unassigned.
using Assignment = std::vector<int64_t>;
inline constexpr int64_t kNoValue = -1;

/// Checks D ⊨ Q under the usual CQ semantics (existence of a homomorphism).
/// Fails if the query mentions a relation id outside the database schema or
/// with mismatched arity.
Result<bool> Satisfies(const Database& db, const ConjunctiveQuery& q);

/// Checks D' ⊨ Q for the subinstance D' ⊆ D given by `present` (bitvector
/// indexed by FactId, size |D|).
Result<bool> SatisfiesSubinstance(const Database& db,
                                  const ConjunctiveQuery& q,
                                  const std::vector<bool>& present);

/// Returns one satisfying assignment (witness) if any, as values indexed by
/// VarId; empty optional-style: `found` false means unsatisfied.
struct WitnessResult {
  bool found = false;
  Assignment assignment;
};
Result<WitnessResult> FindWitness(const Database& db,
                                  const ConjunctiveQuery& q);

/// Enumerates all witnesses (distinct homomorphisms) of Q on D. Intended for
/// tests/small inputs; the count can be |D|^|Q| in the worst case.
Result<std::vector<Assignment>> AllWitnesses(const Database& db,
                                             const ConjunctiveQuery& q);

/// Exact uniform reliability UR(Q, D) = #{D' ⊆ D : D' ⊨ Q} by enumerating
/// all 2^|D| subinstances (Section 2). Guarded: fails with ResourceExhausted
/// if |D| > max_facts (default 25).
Result<BigUint> UniformReliabilityByEnumeration(const Database& db,
                                                const ConjunctiveQuery& q,
                                                size_t max_facts = 25);

/// Exact Pr_H(Q) = Σ_{D' ⊨ Q} Pr_H(D') by enumerating possible worlds.
/// Same guard as above.
Result<BigRational> ExactProbabilityByEnumeration(
    const ProbabilisticDatabase& pdb, const ConjunctiveQuery& q,
    size_t max_facts = 25);

}  // namespace pqe

#endif  // PQE_EVAL_EVAL_H_
