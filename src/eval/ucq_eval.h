#ifndef PQE_EVAL_UCQ_EVAL_H_
#define PQE_EVAL_UCQ_EVAL_H_

#include "cq/ucq.h"
#include "lineage/karp_luby.h"
#include "lineage/lineage.h"
#include "pdb/probabilistic_database.h"
#include "util/bigint.h"
#include "util/result.h"

namespace pqe {

/// D ⊨ Q₁ ∨ ... ∨ Q_m.
Result<bool> SatisfiesUnion(const Database& db, const UnionQuery& query);

/// Exact Pr_H(∨ᵢ Qᵢ) by possible-world enumeration (2^|D|; tiny instances).
Result<BigRational> ExactUnionProbabilityByEnumeration(
    const ProbabilisticDatabase& pdb, const UnionQuery& query,
    size_t max_facts = 25);

/// The union's DNF lineage: the union of the disjuncts' lineages (clauses
/// deduplicated). Everything downstream of a DNF — Karp–Luby, Shannon
/// expansion, the decomposed model counter — works on UCQs through this.
Result<DnfLineage> BuildUnionLineage(const UnionQuery& query,
                                     const Database& db,
                                     size_t max_clauses = 5'000'000);

/// Exact Pr_H(∨ᵢ Qᵢ) via the union lineage + decomposed model counting.
Result<BigRational> ExactUnionProbability(const UnionQuery& query,
                                          const ProbabilisticDatabase& pdb);

/// (1±ε)-approximation of Pr_H(∨ᵢ Qᵢ) via Karp–Luby on the union lineage.
/// Inherits the lineage's exponential dependence on disjunct length — the
/// paper's combined-complexity FPRAS does not extend to UCQs (its self-join-
/// free single-CQ scope is exactly Table 1's boundary).
Result<KarpLubyResult> KarpLubyUnionPqe(const UnionQuery& query,
                                        const ProbabilisticDatabase& pdb,
                                        const KarpLubyConfig& config,
                                        size_t max_clauses = 5'000'000);

}  // namespace pqe

#endif  // PQE_EVAL_UCQ_EVAL_H_
