#ifndef PQE_HYPERTREE_DECOMPOSITION_H_
#define PQE_HYPERTREE_DECOMPOSITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cq/query.h"
#include "util/result.h"

namespace pqe {

/// A hypertree ⟨T, χ, ξ⟩ for a conjunctive query (Section 2): a rooted tree
/// whose nodes carry a variable label χ(p) ⊆ vars(Q) and an atom label
/// ξ(p) ⊆ atoms(Q). Atom labels are indices into query.atoms().
class HypertreeDecomposition {
 public:
  struct Node {
    std::vector<VarId> chi;        // χ(p), sorted
    std::vector<uint32_t> xi;      // ξ(p), sorted atom indices
    std::vector<uint32_t> children;
    int32_t parent = -1;           // -1 for the root
    uint32_t depth = 0;            // distance from the root
  };

  HypertreeDecomposition() = default;

  size_t NumNodes() const { return nodes_.size(); }
  const Node& node(uint32_t p) const { return nodes_.at(p); }
  uint32_t root() const { return root_; }

  /// Width of this decomposition: max_p |ξ(p)|.
  size_t Width() const;

  /// Checks the four conditions of Section 2 against `query`:
  ///   (1) every atom's variables are contained in some χ(p);
  ///   (2) each variable's nodes induce a connected subtree;
  ///   (3) χ(p) ⊆ vars(ξ(p));
  ///   (4) vars(ξ(p)) ∩ χ(T_p) ⊆ χ(p)  (the "special condition").
  /// If `generalized` is true, condition (4) is skipped (generalized HDs;
  /// the paper notes its results apply equally to bounded ghtw).
  Status Validate(const ConjunctiveQuery& query, bool generalized = false) const;

  /// True iff node p is a covering vertex for atom a: a ∈ ξ(p) and
  /// vars(a) ⊆ χ(p).
  bool IsCoveringVertex(const ConjunctiveQuery& query, uint32_t p,
                        uint32_t atom) const;

  /// True iff every atom has a covering vertex (a *complete* decomposition).
  bool IsComplete(const ConjunctiveQuery& query) const;

  /// The paper's completeness transform: for each atom A without a covering
  /// vertex, attach a fresh child p_A with χ(p_A) = vars(A), ξ(p_A) = {A}
  /// under a node whose χ contains vars(A). Recomputes depths.
  Status MakeComplete(const ConjunctiveQuery& query);

  /// Node ids ordered by non-decreasing depth (a valid ≺_vertices order for
  /// Section 4.2); ties broken by node id.
  std::vector<uint32_t> DepthOrderedVertices() const;

  /// For each atom, the ≺_vertices-minimal covering vertex, or -1 if none.
  std::vector<int32_t> MinimalCoveringVertices(
      const ConjunctiveQuery& query) const;

  /// Debug rendering.
  std::string ToString(const ConjunctiveQuery& query,
                       const Schema& schema) const;

  /// Construction API used by the decomposers. Returns the new node's id;
  /// parent == -1 designates the root (allowed exactly once).
  uint32_t AddNode(std::vector<VarId> chi, std::vector<uint32_t> xi,
                   int32_t parent);

  /// Recomputes depths from the parent links (call after manual edits).
  void RecomputeDepths();

  /// Re-roots the tree at `new_root` by reversing the parent links on the
  /// root path. All four HD conditions except the rooted condition (4) are
  /// preserved (they are undirected); used by the automaton construction,
  /// which needs the root to be a covering vertex of some atom.
  void ReRoot(uint32_t new_root);

  /// Rewrites the tree so every node has at most two children, by chaining
  /// surplus children under fresh copies of their parent (same χ and ξ).
  /// Keeps all four conditions and completeness; needed so the number of
  /// NFTA transitions built from the decomposition stays polynomial.
  void Binarize();

 private:
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
};

/// Computes a width-1 hypertree decomposition (a join tree) for an acyclic
/// query via GYO ear removal. Fails with NotSupported if the query's
/// hypergraph is cyclic.
Result<HypertreeDecomposition> DecomposeAcyclic(const ConjunctiveQuery& query);

/// Computes a complete (generalized) hypertree decomposition of width <= k
/// by recursive separator search with memoization — polynomial for constant
/// k. Tries k = 1 (GYO) first. Fails with NotSupported if no decomposition
/// of width <= k exists.
Result<HypertreeDecomposition> Decompose(const ConjunctiveQuery& query,
                                         size_t max_width);

/// Convenience: smallest width <= `max_width` for which Decompose succeeds.
Result<size_t> HypertreeWidthUpTo(const ConjunctiveQuery& query,
                                  size_t max_width);

}  // namespace pqe

#endif  // PQE_HYPERTREE_DECOMPOSITION_H_
