#include "hypertree/decomposition.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "obs/trace.h"
#include "util/check.h"

namespace pqe {

namespace {

// Sorted variable set of one atom.
std::vector<VarId> AtomVars(const ConjunctiveQuery& q, uint32_t atom) {
  std::vector<VarId> vars(q.atom(atom).vars);
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

// Sorted union of the variable sets of `atoms`.
std::vector<VarId> VarsOfAtoms(const ConjunctiveQuery& q,
                               const std::vector<uint32_t>& atoms) {
  std::set<VarId> vars;
  for (uint32_t a : atoms) {
    for (VarId v : q.atom(a).vars) vars.insert(v);
  }
  return std::vector<VarId>(vars.begin(), vars.end());
}

bool IsSubset(const std::vector<VarId>& a, const std::vector<VarId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::vector<VarId> Intersect(const std::vector<VarId>& a,
                             const std::vector<VarId>& b) {
  std::vector<VarId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<VarId> Union(const std::vector<VarId>& a,
                         const std::vector<VarId>& b) {
  std::vector<VarId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

uint32_t HypertreeDecomposition::AddNode(std::vector<VarId> chi,
                                         std::vector<uint32_t> xi,
                                         int32_t parent) {
  std::sort(chi.begin(), chi.end());
  chi.erase(std::unique(chi.begin(), chi.end()), chi.end());
  std::sort(xi.begin(), xi.end());
  xi.erase(std::unique(xi.begin(), xi.end()), xi.end());
  Node node;
  node.chi = std::move(chi);
  node.xi = std::move(xi);
  node.parent = parent;
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  if (parent < 0) {
    root_ = id;
    node.depth = 0;
  } else {
    PQE_CHECK(static_cast<size_t>(parent) < nodes_.size());
    nodes_[parent].children.push_back(id);
    node.depth = nodes_[parent].depth + 1;
  }
  nodes_.push_back(std::move(node));
  return id;
}

void HypertreeDecomposition::RecomputeDepths() {
  if (nodes_.empty()) return;
  std::vector<uint32_t> stack = {root_};
  nodes_[root_].depth = 0;
  while (!stack.empty()) {
    uint32_t p = stack.back();
    stack.pop_back();
    for (uint32_t c : nodes_[p].children) {
      nodes_[c].depth = nodes_[p].depth + 1;
      stack.push_back(c);
    }
  }
}

void HypertreeDecomposition::ReRoot(uint32_t new_root) {
  PQE_CHECK(new_root < nodes_.size());
  if (new_root == root_) return;
  // Reverse parent links along the path new_root -> old root.
  std::vector<uint32_t> path;
  int32_t cur = static_cast<int32_t>(new_root);
  while (cur >= 0) {
    path.push_back(static_cast<uint32_t>(cur));
    cur = nodes_[cur].parent;
  }
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    uint32_t child = path[i];     // becomes the parent
    uint32_t parent = path[i + 1];  // becomes the child
    // Remove `child` from parent's child list and link the other way.
    auto& siblings = nodes_[parent].children;
    siblings.erase(std::find(siblings.begin(), siblings.end(), child));
    nodes_[child].children.push_back(parent);
    nodes_[parent].parent = static_cast<int32_t>(child);
  }
  nodes_[new_root].parent = -1;
  root_ = new_root;
  RecomputeDepths();
}

void HypertreeDecomposition::Binarize() {
  // Iterate with an explicit worklist; fresh copies may themselves need
  // further splitting (they take all surplus children).
  std::vector<uint32_t> work;
  for (uint32_t p = 0; p < nodes_.size(); ++p) work.push_back(p);
  for (size_t i = 0; i < work.size(); ++i) {
    uint32_t p = work[i];
    if (nodes_[p].children.size() <= 2) continue;
    // Keep the first child; move the rest under a fresh copy of p.
    std::vector<uint32_t> surplus(nodes_[p].children.begin() + 1,
                                  nodes_[p].children.end());
    nodes_[p].children.resize(1);
    uint32_t copy = AddNode(nodes_[p].chi, nodes_[p].xi,
                            static_cast<int32_t>(p));
    for (uint32_t c : surplus) {
      nodes_[copy].children.push_back(c);
      nodes_[c].parent = static_cast<int32_t>(copy);
    }
    work.push_back(copy);
  }
  RecomputeDepths();
}

size_t HypertreeDecomposition::Width() const {
  size_t width = 0;
  for (const Node& n : nodes_) width = std::max(width, n.xi.size());
  return width;
}

Status HypertreeDecomposition::Validate(const ConjunctiveQuery& query,
                                        bool generalized) const {
  if (nodes_.empty()) return Status::InvalidArgument("empty decomposition");
  // Structural sanity: exactly one root, parent/child links consistent.
  size_t roots = 0;
  for (size_t p = 0; p < nodes_.size(); ++p) {
    if (nodes_[p].parent < 0) {
      ++roots;
      if (p != root_) return Status::Internal("root link mismatch");
    }
    for (uint32_t c : nodes_[p].children) {
      if (c >= nodes_.size() ||
          nodes_[c].parent != static_cast<int32_t>(p)) {
        return Status::Internal("child/parent link mismatch");
      }
    }
    for (uint32_t a : nodes_[p].xi) {
      if (a >= query.NumAtoms()) {
        return Status::InvalidArgument("ξ refers to a non-existent atom");
      }
    }
    for (VarId v : nodes_[p].chi) {
      if (v >= query.NumVars()) {
        return Status::InvalidArgument("χ refers to a non-existent variable");
      }
    }
  }
  if (roots != 1) return Status::Internal("decomposition must have one root");

  // Condition (1): every atom's variables inside some χ(p).
  for (uint32_t a = 0; a < query.NumAtoms(); ++a) {
    std::vector<VarId> av = AtomVars(query, a);
    bool found = false;
    for (const Node& n : nodes_) {
      if (IsSubset(av, n.chi)) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "condition 1 violated: atom " + std::to_string(a) +
          " not contained in any χ(p)");
    }
  }

  // Condition (2): nodes containing each variable induce a connected subtree.
  for (VarId v = 0; v < query.NumVars(); ++v) {
    std::vector<uint32_t> holders;
    for (uint32_t p = 0; p < nodes_.size(); ++p) {
      if (std::binary_search(nodes_[p].chi.begin(), nodes_[p].chi.end(), v)) {
        holders.push_back(p);
      }
    }
    if (holders.size() <= 1) continue;
    // The subtree is connected iff exactly one holder has a non-holder
    // parent (the subtree's top) and every other holder's parent holds v.
    size_t tops = 0;
    for (uint32_t p : holders) {
      int32_t par = nodes_[p].parent;
      bool parent_holds =
          par >= 0 && std::binary_search(nodes_[par].chi.begin(),
                                         nodes_[par].chi.end(), v);
      if (!parent_holds) ++tops;
    }
    if (tops != 1) {
      return Status::InvalidArgument(
          "condition 2 violated: variable " + query.VarName(v) +
          " does not induce a connected subtree");
    }
  }

  // Condition (3): χ(p) ⊆ vars(ξ(p)).
  for (uint32_t p = 0; p < nodes_.size(); ++p) {
    std::vector<VarId> cover_vars = VarsOfAtoms(query, nodes_[p].xi);
    if (!IsSubset(nodes_[p].chi, cover_vars)) {
      return Status::InvalidArgument(
          "condition 3 violated at node " + std::to_string(p));
    }
  }

  // Condition (4): vars(ξ(p)) ∩ χ(T_p) ⊆ χ(p).
  if (!generalized) {
    // χ(T_p) via post-order accumulation.
    std::vector<std::vector<VarId>> subtree_chi(nodes_.size());
    std::vector<uint32_t> order = DepthOrderedVertices();
    for (size_t i = order.size(); i-- > 0;) {
      uint32_t p = order[i];
      std::vector<VarId> acc = nodes_[p].chi;
      for (uint32_t c : nodes_[p].children) acc = Union(acc, subtree_chi[c]);
      subtree_chi[p] = std::move(acc);
    }
    for (uint32_t p = 0; p < nodes_.size(); ++p) {
      std::vector<VarId> cover_vars = VarsOfAtoms(query, nodes_[p].xi);
      std::vector<VarId> inter = Intersect(cover_vars, subtree_chi[p]);
      if (!IsSubset(inter, nodes_[p].chi)) {
        return Status::InvalidArgument(
            "condition 4 (special condition) violated at node " +
            std::to_string(p));
      }
    }
  }
  return Status::OK();
}

bool HypertreeDecomposition::IsCoveringVertex(const ConjunctiveQuery& query,
                                              uint32_t p,
                                              uint32_t atom) const {
  const Node& n = nodes_.at(p);
  if (!std::binary_search(n.xi.begin(), n.xi.end(), atom)) return false;
  return IsSubset(AtomVars(query, atom), n.chi);
}

bool HypertreeDecomposition::IsComplete(const ConjunctiveQuery& query) const {
  for (uint32_t a = 0; a < query.NumAtoms(); ++a) {
    bool covered = false;
    for (uint32_t p = 0; p < nodes_.size(); ++p) {
      if (IsCoveringVertex(query, p, a)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

Status HypertreeDecomposition::MakeComplete(const ConjunctiveQuery& query) {
  for (uint32_t a = 0; a < query.NumAtoms(); ++a) {
    bool covered = false;
    for (uint32_t p = 0; p < nodes_.size() && !covered; ++p) {
      covered = IsCoveringVertex(query, p, a);
    }
    if (covered) continue;
    std::vector<VarId> av = AtomVars(query, a);
    // Condition (1) guarantees a host node with vars(A) ⊆ χ(p).
    int32_t host = -1;
    for (uint32_t p = 0; p < nodes_.size(); ++p) {
      if (IsSubset(av, nodes_[p].chi)) {
        host = static_cast<int32_t>(p);
        break;
      }
    }
    if (host < 0) {
      return Status::InvalidArgument(
          "cannot complete: no node covers the variables of atom " +
          std::to_string(a) + " (condition 1 violated)");
    }
    AddNode(std::move(av), {a}, host);
  }
  RecomputeDepths();
  return Status::OK();
}

std::vector<uint32_t> HypertreeDecomposition::DepthOrderedVertices() const {
  std::vector<uint32_t> order(nodes_.size());
  for (uint32_t i = 0; i < nodes_.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return nodes_[a].depth < nodes_[b].depth;
  });
  return order;
}

std::vector<int32_t> HypertreeDecomposition::MinimalCoveringVertices(
    const ConjunctiveQuery& query) const {
  std::vector<int32_t> out(query.NumAtoms(), -1);
  std::vector<uint32_t> order = DepthOrderedVertices();
  for (uint32_t a = 0; a < query.NumAtoms(); ++a) {
    for (uint32_t p : order) {
      if (IsCoveringVertex(query, p, a)) {
        out[a] = static_cast<int32_t>(p);
        break;
      }
    }
  }
  return out;
}

std::string HypertreeDecomposition::ToString(const ConjunctiveQuery& query,
                                             const Schema& schema) const {
  std::ostringstream out;
  for (uint32_t p = 0; p < nodes_.size(); ++p) {
    const Node& n = nodes_[p];
    out << "node " << p << " (parent " << n.parent << ", depth " << n.depth
        << "): chi={";
    for (size_t i = 0; i < n.chi.size(); ++i) {
      if (i > 0) out << ",";
      out << query.VarName(n.chi[i]);
    }
    out << "} xi={";
    for (size_t i = 0; i < n.xi.size(); ++i) {
      if (i > 0) out << ",";
      out << schema.Name(query.atom(n.xi[i]).relation);
    }
    out << "}\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// GYO join-tree construction for acyclic queries.
// ---------------------------------------------------------------------------

Result<HypertreeDecomposition> DecomposeAcyclic(
    const ConjunctiveQuery& query) {
  const size_t n = query.NumAtoms();
  std::vector<std::vector<VarId>> edge_vars(n);
  for (uint32_t a = 0; a < n; ++a) edge_vars[a] = AtomVars(query, a);

  std::vector<bool> removed(n, false);
  // witness[e]: the surviving edge e was attached to when removed as an ear.
  std::vector<int32_t> witness(n, -1);
  std::vector<uint32_t> removal_order;
  size_t remaining = n;

  while (remaining > 1) {
    bool progress = false;
    for (uint32_t e = 0; e < n && !progress; ++e) {
      if (removed[e]) continue;
      // Vertices of e shared with other remaining edges.
      std::set<VarId> shared;
      for (VarId v : edge_vars[e]) {
        for (uint32_t f = 0; f < n; ++f) {
          if (f == e || removed[f]) continue;
          if (std::binary_search(edge_vars[f].begin(), edge_vars[f].end(),
                                 v)) {
            shared.insert(v);
            break;
          }
        }
      }
      std::vector<VarId> shared_vec(shared.begin(), shared.end());
      // e is an ear iff some other remaining edge contains all shared vars.
      for (uint32_t f = 0; f < n; ++f) {
        if (f == e || removed[f]) continue;
        if (IsSubset(shared_vec, edge_vars[f])) {
          removed[e] = true;
          witness[e] = static_cast<int32_t>(f);
          removal_order.push_back(e);
          --remaining;
          progress = true;
          break;
        }
      }
    }
    if (!progress) {
      return Status::NotSupported(
          "query hypergraph is cyclic: no width-1 hypertree decomposition");
    }
  }

  // The last remaining edge is the join-tree root; rebuild the tree top-down.
  uint32_t root_atom = 0;
  for (uint32_t e = 0; e < n; ++e) {
    if (!removed[e]) root_atom = e;
  }
  HypertreeDecomposition hd;
  std::vector<int32_t> node_of_atom(n, -1);
  node_of_atom[root_atom] =
      static_cast<int32_t>(hd.AddNode(edge_vars[root_atom], {root_atom}, -1));
  // Ears were removed leaves-first; adding in reverse removal order
  // guarantees each witness already has a node.
  for (size_t i = removal_order.size(); i-- > 0;) {
    uint32_t e = removal_order[i];
    int32_t w = witness[e];
    PQE_CHECK(w >= 0 && node_of_atom[w] >= 0);
    node_of_atom[e] = static_cast<int32_t>(
        hd.AddNode(edge_vars[e], {e}, node_of_atom[w]));
  }
  hd.RecomputeDepths();
  return hd;
}

// ---------------------------------------------------------------------------
// Width-k decomposer: recursive separator search (det-k-decomp style).
// ---------------------------------------------------------------------------

namespace {

// One subproblem: decompose `comp` (atom indices, sorted) whose interface to
// the already-built part is `conn` (variables, sorted).
struct Subproblem {
  std::vector<uint32_t> comp;
  std::vector<VarId> conn;
  bool operator<(const Subproblem& o) const {
    if (comp != o.comp) return comp < o.comp;
    return conn < o.conn;
  }
};

class WidthKDecomposer {
 public:
  WidthKDecomposer(const ConjunctiveQuery& query, size_t k)
      : query_(query), k_(k) {
    edge_vars_.resize(query.NumAtoms());
    for (uint32_t a = 0; a < query.NumAtoms(); ++a) {
      edge_vars_[a] = AtomVars(query, a);
    }
  }

  Result<HypertreeDecomposition> Run() {
    std::vector<uint32_t> all(query_.NumAtoms());
    for (uint32_t a = 0; a < all.size(); ++a) all[a] = a;
    HypertreeDecomposition hd;
    if (!DecomposeComponent({all, {}}, -1, &hd)) {
      if (budget_exceeded_) {
        return Status::ResourceExhausted(
            "width-k decomposition search budget exceeded");
      }
      return Status::NotSupported(
          "no (generalized) hypertree decomposition of width <= " +
          std::to_string(k_));
    }
    hd.RecomputeDepths();
    return hd;
  }

 private:
  // Tries to decompose `sub`, attaching nodes under `parent` in `hd`.
  // Returns false (and records the failure) if impossible.
  bool DecomposeComponent(const Subproblem& sub, int32_t parent,
                          HypertreeDecomposition* hd) {
    if (failed_.count(sub) > 0) return false;
    // A subproblem already on the recursion stack cannot help solve itself.
    if (!in_progress_.insert(sub).second) return false;
    if (++search_nodes_ > kSearchBudget) {
      budget_exceeded_ = true;
      in_progress_.erase(sub);
      return false;
    }

    const std::vector<VarId> comp_vars = VarsOfAtoms(query_, sub.comp);
    const std::vector<VarId> relevant = Union(comp_vars, sub.conn);

    // Candidate cover edges: any atom touching the relevant variables.
    std::vector<uint32_t> candidates;
    for (uint32_t a = 0; a < query_.NumAtoms(); ++a) {
      if (!Intersect(edge_vars_[a], relevant).empty()) candidates.push_back(a);
    }

    // Enumerate covers of size 1..k (lexicographic subsets of candidates).
    std::vector<uint32_t> cover;
    if (TryCovers(sub, comp_vars, relevant, candidates, 0, &cover, parent,
                  hd)) {
      in_progress_.erase(sub);
      return true;
    }
    in_progress_.erase(sub);
    failed_.insert(sub);
    return false;
  }

  bool TryCovers(const Subproblem& sub, const std::vector<VarId>& comp_vars,
                 const std::vector<VarId>& relevant,
                 const std::vector<uint32_t>& candidates, size_t start,
                 std::vector<uint32_t>* cover, int32_t parent,
                 HypertreeDecomposition* hd) {
    if (!cover->empty() && TryOneCover(sub, comp_vars, relevant, *cover,
                                       parent, hd)) {
      return true;
    }
    if (cover->size() == k_ || budget_exceeded_) return false;
    for (size_t i = start; i < candidates.size(); ++i) {
      cover->push_back(candidates[i]);
      if (TryCovers(sub, comp_vars, relevant, candidates, i + 1, cover,
                    parent, hd)) {
        cover->pop_back();
        return true;
      }
      cover->pop_back();
      if (budget_exceeded_) return false;
    }
    return false;
  }

  bool TryOneCover(const Subproblem& sub, const std::vector<VarId>& comp_vars,
                   const std::vector<VarId>& relevant,
                   const std::vector<uint32_t>& cover, int32_t parent,
                   HypertreeDecomposition* hd) {
    (void)comp_vars;
    std::vector<VarId> cover_vars = VarsOfAtoms(query_, cover);
    // The interface must be covered, otherwise condition (2) would break.
    if (!IsSubset(sub.conn, cover_vars)) return false;
    std::vector<VarId> chi = Intersect(cover_vars, relevant);

    // Split the uncovered part of the component by connectivity via
    // variables outside χ.
    std::vector<uint32_t> open;
    for (uint32_t e : sub.comp) {
      if (!IsSubset(edge_vars_[e], chi)) open.push_back(e);
    }

    // Union-find over `open` edges.
    std::map<uint32_t, uint32_t> uf;
    for (uint32_t e : open) uf[e] = e;
    std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
      while (uf[x] != x) x = uf[x] = uf[uf[x]];
      return x;
    };
    for (size_t i = 0; i < open.size(); ++i) {
      for (size_t j = i + 1; j < open.size(); ++j) {
        std::vector<VarId> shared =
            Intersect(edge_vars_[open[i]], edge_vars_[open[j]]);
        bool linked = false;
        for (VarId v : shared) {
          if (!std::binary_search(chi.begin(), chi.end(), v)) {
            linked = true;
            break;
          }
        }
        if (linked) uf[find(open[i])] = find(open[j]);
      }
    }
    std::map<uint32_t, std::vector<uint32_t>> comps;
    for (uint32_t e : open) comps[find(e)].push_back(e);

    // Progress requirement: either some component edge became covered, or
    // the component split. (The in-progress guard additionally prevents
    // cycling through identical subproblems with alternating interfaces.)
    if (open.size() == sub.comp.size() && comps.size() <= 1) return false;

    // Tentatively add this node, then recurse into each child component;
    // roll back on failure.
    const size_t checkpoint = hd->NumNodes();
    uint32_t node = hd->AddNode(chi, cover, parent);
    bool ok = true;
    for (auto& [rep, comp_edges] : comps) {
      (void)rep;
      std::sort(comp_edges.begin(), comp_edges.end());
      Subproblem child;
      child.comp = comp_edges;
      child.conn = Intersect(VarsOfAtoms(query_, comp_edges), chi);
      if (!DecomposeComponent(child, static_cast<int32_t>(node), hd)) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      RollbackTo(hd, checkpoint, parent);
      return false;
    }
    return true;
  }

  // Removes nodes added after `checkpoint` (they form a suffix) and detaches
  // them from `parent`'s child list.
  void RollbackTo(HypertreeDecomposition* hd, size_t checkpoint,
                  int32_t parent) {
    // HypertreeDecomposition has no removal API by design; rebuild instead.
    HypertreeDecomposition rebuilt;
    std::vector<int32_t> remap(hd->NumNodes(), -1);
    for (uint32_t p = 0; p < checkpoint; ++p) {
      const auto& n = hd->node(p);
      int32_t new_parent = n.parent < 0 ? -1 : remap[n.parent];
      remap[p] = static_cast<int32_t>(
          rebuilt.AddNode(n.chi, n.xi, new_parent));
    }
    (void)parent;
    *hd = std::move(rebuilt);
  }

  static constexpr size_t kSearchBudget = 2'000'000;

  const ConjunctiveQuery& query_;
  const size_t k_;
  std::vector<std::vector<VarId>> edge_vars_;
  std::set<Subproblem> failed_;
  std::set<Subproblem> in_progress_;
  size_t search_nodes_ = 0;
  bool budget_exceeded_ = false;
};

}  // namespace

Result<HypertreeDecomposition> Decompose(const ConjunctiveQuery& query,
                                         size_t max_width) {
  if (max_width == 0) {
    return Status::InvalidArgument("max_width must be >= 1");
  }
  PQE_TRACE_SPAN_VAR(span, "hd.decompose");
  span.AttrUint("atoms", query.NumAtoms());
  span.AttrUint("max_width", max_width);
  auto Record = [&span](const HypertreeDecomposition& hd) {
    span.AttrUint("width", hd.Width());
    span.AttrUint("nodes", hd.NumNodes());
  };
  // Width 1 first: GYO is exact and fast for acyclic queries.
  auto acyclic = DecomposeAcyclic(query);
  if (acyclic.ok()) {
    HypertreeDecomposition hd = acyclic.MoveValue();
    PQE_RETURN_IF_ERROR(hd.MakeComplete(query));
    Record(hd);
    return hd;
  }
  for (size_t k = 2; k <= max_width; ++k) {
    WidthKDecomposer decomposer(query, k);
    auto result = decomposer.Run();
    if (result.ok()) {
      HypertreeDecomposition hd = result.MoveValue();
      PQE_RETURN_IF_ERROR(hd.MakeComplete(query));
      Record(hd);
      return hd;
    }
    if (result.status().code() == StatusCode::kResourceExhausted) {
      return result.status();
    }
  }
  return Status::NotSupported(
      "no (generalized) hypertree decomposition of width <= " +
      std::to_string(max_width));
}

Result<size_t> HypertreeWidthUpTo(const ConjunctiveQuery& query,
                                  size_t max_width) {
  PQE_ASSIGN_OR_RETURN(HypertreeDecomposition hd,
                       Decompose(query, max_width));
  return hd.Width();
}

}  // namespace pqe
