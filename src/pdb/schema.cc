#include "pdb/schema.h"

namespace pqe {

Result<RelationId> Schema::AddRelation(const std::string& name,
                                       uint32_t arity) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (arity == 0) {
    return Status::InvalidArgument("relation arity must be positive: " + name);
  }
  if (by_name_.count(name) > 0) {
    return Status::InvalidArgument("duplicate relation name: " + name);
  }
  RelationId id = static_cast<RelationId>(names_.size());
  names_.push_back(name);
  arities_.push_back(arity);
  by_name_.emplace(name, id);
  return id;
}

Result<RelationId> Schema::FindRelation(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no such relation: " + name);
  }
  return it->second;
}

bool Schema::HasRelation(const std::string& name) const {
  return by_name_.count(name) > 0;
}

}  // namespace pqe
