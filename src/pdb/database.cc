#include "pdb/database.h"

#include <sstream>

namespace pqe {

size_t Database::FactHash::operator()(const Fact& f) const {
  size_t h = std::hash<uint32_t>()(f.relation);
  for (ValueId v : f.args) {
    h ^= std::hash<uint32_t>()(v) + 0x9e3779b9u + (h << 6) + (h >> 2);
  }
  return h;
}

ValueId Database::InternValue(const std::string& name) {
  auto it = values_by_name_.find(name);
  if (it != values_by_name_.end()) return it->second;
  ValueId id = static_cast<ValueId>(value_names_.size());
  value_names_.push_back(name);
  values_by_name_.emplace(name, id);
  return id;
}

Result<FactId> Database::AddFact(RelationId relation,
                                 std::vector<ValueId> args) {
  if (relation >= schema_.NumRelations()) {
    return Status::InvalidArgument("unknown relation id");
  }
  if (args.size() != schema_.Arity(relation)) {
    std::ostringstream msg;
    msg << "arity mismatch for " << schema_.Name(relation) << ": expected "
        << schema_.Arity(relation) << ", got " << args.size();
    return Status::InvalidArgument(msg.str());
  }
  for (ValueId v : args) {
    if (v >= value_names_.size()) {
      return Status::InvalidArgument("unknown value id in fact");
    }
  }
  Fact f{relation, std::move(args)};
  auto it = fact_ids_.find(f);
  if (it != fact_ids_.end()) return it->second;
  FactId id = static_cast<FactId>(facts_.size());
  facts_.push_back(f);
  fact_ids_.emplace(std::move(f), id);
  if (facts_by_relation_.size() < schema_.NumRelations()) {
    facts_by_relation_.resize(schema_.NumRelations());
  }
  facts_by_relation_[relation].push_back(id);
  return id;
}

Result<FactId> Database::AddFactByName(
    const std::string& relation, const std::vector<std::string>& constants) {
  PQE_ASSIGN_OR_RETURN(RelationId rel, schema_.FindRelation(relation));
  std::vector<ValueId> args;
  args.reserve(constants.size());
  for (const std::string& c : constants) args.push_back(InternValue(c));
  return AddFact(rel, std::move(args));
}

bool Database::Contains(const Fact& f) const {
  return fact_ids_.count(f) > 0;
}

int64_t Database::FindFact(const Fact& f) const {
  auto it = fact_ids_.find(f);
  return it == fact_ids_.end() ? -1 : static_cast<int64_t>(it->second);
}

const std::vector<FactId>& Database::FactsOf(RelationId relation) const {
  if (relation >= facts_by_relation_.size()) return empty_;
  return facts_by_relation_[relation];
}

std::string Database::FactToString(const Fact& f) const {
  std::ostringstream out;
  out << schema_.Name(f.relation) << "(";
  for (size_t i = 0; i < f.args.size(); ++i) {
    if (i > 0) out << ",";
    out << ValueName(f.args[i]);
  }
  out << ")";
  return out.str();
}

std::string Database::FactToString(FactId id) const {
  return FactToString(fact(id));
}

}  // namespace pqe
