#ifndef PQE_PDB_SCHEMA_H_
#define PQE_PDB_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace pqe {

/// Identifier of a relation name within a Schema.
using RelationId = uint32_t;

/// A relational schema: a collection of relation names, each with a fixed
/// arity (Section 2 of the paper).
class Schema {
 public:
  Schema() = default;
  Schema(const Schema&) = default;
  Schema& operator=(const Schema&) = default;
  Schema(Schema&&) = default;
  Schema& operator=(Schema&&) = default;

  /// Registers a relation. Fails if the name is already taken or empty, or
  /// the arity is zero.
  Result<RelationId> AddRelation(const std::string& name, uint32_t arity);

  /// Looks up a relation by name.
  Result<RelationId> FindRelation(const std::string& name) const;

  bool HasRelation(const std::string& name) const;

  size_t NumRelations() const { return arities_.size(); }
  uint32_t Arity(RelationId id) const { return arities_.at(id); }
  const std::string& Name(RelationId id) const { return names_.at(id); }

 private:
  std::vector<std::string> names_;
  std::vector<uint32_t> arities_;
  std::unordered_map<std::string, RelationId> by_name_;
};

}  // namespace pqe

#endif  // PQE_PDB_SCHEMA_H_
