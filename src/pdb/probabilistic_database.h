#ifndef PQE_PDB_PROBABILISTIC_DATABASE_H_
#define PQE_PDB_PROBABILISTIC_DATABASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdb/database.h"
#include "util/bigint.h"
#include "util/result.h"

namespace pqe {

/// A rational probability label w/d with 0 <= w <= d, d >= 1 (the paper
/// assumes rational labels, Section 2). Stored unreduced: the reduction of
/// Section 5 works with the numerator w and denominator d as given.
struct Probability {
  uint64_t num = 1;
  uint64_t den = 2;

  static Result<Probability> Make(uint64_t num, uint64_t den);

  /// The uniform label 1/2 used by uniform reliability.
  static Probability Half() { return Probability{1, 2}; }
  static Probability One() { return Probability{1, 1}; }
  static Probability Zero() { return Probability{0, 1}; }

  double ToDouble() const {
    return static_cast<double>(num) / static_cast<double>(den);
  }
  BigRational ToRational() const { return BigRational(num, den); }

  bool operator==(const Probability& o) const {
    // Compare as rationals (1/2 == 2/4).
    return static_cast<unsigned __int128>(num) * o.den ==
           static_cast<unsigned __int128>(o.num) * den;
  }
};

/// A tuple-independent probabilistic database instance H = (D, π): a database
/// plus an independent rational probability per fact (Section 2).
class ProbabilisticDatabase {
 public:
  /// Wraps `db`, assigning every fact the uniform probability 1/2 (so that
  /// Pr_H(Q) = UR(Q, D) / 2^|D|).
  static ProbabilisticDatabase Uniform(Database db);

  /// Wraps `db` with explicit per-fact probabilities; `probs` must have one
  /// entry per fact, indexed by FactId.
  static Result<ProbabilisticDatabase> Make(Database db,
                                            std::vector<Probability> probs);

  const Database& database() const { return db_; }
  Database& mutable_database() { return db_; }
  const Schema& schema() const { return db_.schema(); }
  size_t NumFacts() const { return db_.NumFacts(); }

  Probability probability(FactId id) const { return probs_.at(id); }

  /// Sets the probability of an existing fact.
  Status SetProbability(FactId id, Probability p);

  /// Adds a fact with its probability; see Database::AddFactByName.
  Result<FactId> AddFact(const std::string& relation,
                         const std::vector<std::string>& constants,
                         Probability p);

  /// The common denominator d = Π_i d_i over all facts (Section 5.2).
  BigUint CommonDenominator() const;

  /// Probability Pr_H(D') of the subinstance identified by `present`
  /// (bitvector over FactIds): Π_{in} π(f) · Π_{out} (1 − π(f)).
  BigRational SubinstanceProbability(const std::vector<bool>& present) const;

  /// The paper's size measure |H|: |D| plus total bits of the probability
  /// encodings.
  size_t SizeInBits() const;

 private:
  explicit ProbabilisticDatabase(Database db) : db_(std::move(db)) {}

  Database db_;
  std::vector<Probability> probs_;
};

}  // namespace pqe

#endif  // PQE_PDB_PROBABILISTIC_DATABASE_H_
