#include "pdb/probabilistic_database.h"

#include "util/check.h"

namespace pqe {

namespace {

size_t BitWidth(uint64_t v) {
  size_t bits = 0;
  do {
    ++bits;
    v >>= 1;
  } while (v);
  return bits;
}

}  // namespace

Result<Probability> Probability::Make(uint64_t num, uint64_t den) {
  if (den == 0) return Status::InvalidArgument("probability denominator is 0");
  if (num > den) {
    return Status::InvalidArgument("probability numerator exceeds denominator");
  }
  return Probability{num, den};
}

ProbabilisticDatabase ProbabilisticDatabase::Uniform(Database db) {
  ProbabilisticDatabase out(std::move(db));
  out.probs_.assign(out.db_.NumFacts(), Probability::Half());
  return out;
}

Result<ProbabilisticDatabase> ProbabilisticDatabase::Make(
    Database db, std::vector<Probability> probs) {
  if (probs.size() != db.NumFacts()) {
    return Status::InvalidArgument(
        "probability vector size does not match fact count");
  }
  for (const Probability& p : probs) {
    if (p.den == 0 || p.num > p.den) {
      return Status::InvalidArgument("invalid probability label");
    }
  }
  ProbabilisticDatabase out(std::move(db));
  out.probs_ = std::move(probs);
  return out;
}

Status ProbabilisticDatabase::SetProbability(FactId id, Probability p) {
  if (id >= probs_.size()) return Status::NotFound("no such fact");
  if (p.den == 0 || p.num > p.den) {
    return Status::InvalidArgument("invalid probability label");
  }
  probs_[id] = p;
  return Status::OK();
}

Result<FactId> ProbabilisticDatabase::AddFact(
    const std::string& relation, const std::vector<std::string>& constants,
    Probability p) {
  if (p.den == 0 || p.num > p.den) {
    return Status::InvalidArgument("invalid probability label");
  }
  PQE_ASSIGN_OR_RETURN(FactId id, db_.AddFactByName(relation, constants));
  if (id == probs_.size()) {
    probs_.push_back(p);
  } else {
    // Duplicate fact: keep the original label unless caller overrides.
    probs_[id] = p;
  }
  return id;
}

BigUint ProbabilisticDatabase::CommonDenominator() const {
  BigUint d(1);
  for (const Probability& p : probs_) d = d.MulU64(p.den);
  return d;
}

BigRational ProbabilisticDatabase::SubinstanceProbability(
    const std::vector<bool>& present) const {
  PQE_CHECK(present.size() == probs_.size());
  BigUint num(1);
  BigUint den(1);
  for (size_t i = 0; i < probs_.size(); ++i) {
    const Probability& p = probs_[i];
    num = num.MulU64(present[i] ? p.num : p.den - p.num);
    den = den.MulU64(p.den);
  }
  return BigRational(std::move(num), std::move(den));
}

size_t ProbabilisticDatabase::SizeInBits() const {
  size_t bits = db_.NumFacts();
  for (const Probability& p : probs_) {
    bits += BitWidth(p.num) + BitWidth(p.den);
  }
  return bits;
}

}  // namespace pqe
