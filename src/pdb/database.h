#ifndef PQE_PDB_DATABASE_H_
#define PQE_PDB_DATABASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdb/schema.h"
#include "util/result.h"

namespace pqe {

/// Interned constant from the universe U (Section 2). Constants are opaque;
/// the Database maps names to ids.
using ValueId = uint32_t;

/// Index of a fact within a Database (dense, stable: facts are append-only).
using FactId = uint32_t;

/// A ground fact R(c1, ..., ck).
struct Fact {
  RelationId relation = 0;
  std::vector<ValueId> args;

  bool operator==(const Fact& o) const {
    return relation == o.relation && args == o.args;
  }
};

/// A database instance: a finite set of facts over a schema. Facts are
/// deduplicated; FactIds are dense indices in insertion order, which the rest
/// of the library uses as the canonical fact identity (e.g. the fact
/// orderings ≺_i of Sections 3–4 default to FactId order).
class Database {
 public:
  /// Creates an empty instance over `schema` (copied; a Database owns its
  /// schema so instances are self-contained values).
  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  Database(const Database&) = default;
  Database& operator=(const Database&) = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const Schema& schema() const { return schema_; }

  /// Interns a constant name, returning its ValueId (idempotent).
  ValueId InternValue(const std::string& name);

  /// Name of an interned constant.
  const std::string& ValueName(ValueId v) const { return value_names_.at(v); }
  size_t NumValues() const { return value_names_.size(); }

  /// Adds the fact `relation(args...)`. Fails on arity mismatch or unknown
  /// relation. Returns the FactId (existing id if the fact is a duplicate).
  Result<FactId> AddFact(RelationId relation, std::vector<ValueId> args);

  /// Convenience: interns constants by name and adds the fact.
  Result<FactId> AddFactByName(const std::string& relation,
                               const std::vector<std::string>& constants);

  /// Number of facts |D|.
  size_t NumFacts() const { return facts_.size(); }
  const Fact& fact(FactId id) const { return facts_.at(id); }
  const std::vector<Fact>& facts() const { return facts_; }

  /// True if the exact fact is present.
  bool Contains(const Fact& f) const;

  /// FactId of the exact fact, or -1 if absent.
  int64_t FindFact(const Fact& f) const;

  /// FactIds of all facts over `relation`, in FactId (== ≺_relation) order.
  const std::vector<FactId>& FactsOf(RelationId relation) const;

  /// Renders a fact as "R(a,b)".
  std::string FactToString(FactId id) const;
  std::string FactToString(const Fact& f) const;

 private:
  struct FactHash {
    size_t operator()(const Fact& f) const;
  };

  Schema schema_;
  std::vector<std::string> value_names_;
  std::unordered_map<std::string, ValueId> values_by_name_;
  std::vector<Fact> facts_;
  std::unordered_map<Fact, FactId, FactHash> fact_ids_;
  std::vector<std::vector<FactId>> facts_by_relation_;
  std::vector<FactId> empty_;
};

}  // namespace pqe

#endif  // PQE_PDB_DATABASE_H_
