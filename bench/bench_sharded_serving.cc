// E15 — Sharded serving (docs/serving.md): routing overhead, parallel
// fan-out scaling, and degraded-mode retry cost of the ShardRouter against
// one PqeService, plus the deterministic fault-injection harness as a
// self-gating cell.
//
//   bench_sharded_serving [--smoke] [--metrics_out=BENCH_sharded_serving.json]
//
// The workload is four distinct (query, facts) pairs — distinct prepared
// content keys, so the router spreads them across the shards — each request
// carrying its own derived seed (the sampler runs every time; this measures
// serving, not memo replay). Modes, all seeded identically:
//   single   — one PqeService batch (threads = 1): the un-sharded truth.
//   sharded  — ShardRouter over 4 shards (threads = 1): same answers through
//              routing + transport; single_ms / sharded_ms is the gated
//              speedup_overhead gauge (≈ 1.0 — sharding must not tax the
//              serial path; a ratio-of-medians within one run, stable
//              across machines).
//   parallel — the same router fanning the batch over 4 threads; recorded
//              as the non-gated scaling_par ratio (machine-dependent).
//   degraded — one shard crashed up front: every request routed there is
//              retried onto its successor; all answers still arrive.
// Every sharded/parallel/degraded answer is checked bit-identical to its
// single-service twin (the determinism contract: answers are functions of
// (request, seed), never of the serving shard). The faultsim cell runs the
// full harness (crashes, drops, delays from the seed's schedule) and
// PQE_CHECKs its verdict: survivors bit-identical, replay exact.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "cq/builders.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/faultsim.h"
#include "serve/router.h"
#include "serve/service.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

PqeEngine::Options ServingOptions() {
  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .Epsilon(0.25)
                  .Seed(0xe15)
                  .PoolSize(48)
                  .Repetitions(1)
                  .NumThreads(1)
                  .Build();
  PQE_CHECK(opts.ok());
  return *opts;
}

struct Fixture {
  QueryInstance qi;
  ProbabilisticDatabase pdb;
};

void CheckIdentical(const std::vector<EvalResponse>& got,
                    const std::vector<EvalResponse>& want) {
  PQE_CHECK(got.size() == want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    PQE_CHECK(got[i].status.ok());
    PQE_CHECK(want[i].status.ok());
    PQE_CHECK(std::memcmp(&got[i].answer.probability,
                          &want[i].answer.probability, sizeof(double)) == 0);
  }
}

void MeasureCell(const std::string& cell, size_t requests, bool smoke) {
  constexpr size_t kVariants = 4;
  constexpr size_t kShards = 4;
  std::vector<Fixture> fixtures;
  for (size_t v = 0; v < kVariants; ++v) {
    auto qi = MakePathQuery(4).MoveValue();
    LayeredGraphOptions gopt;
    gopt.width = 3;
    gopt.density = 0.6;
    gopt.seed = 11 + v;
    auto db = MakeLayeredPathDatabase(qi, gopt).MoveValue();
    ProbabilityModel pm;
    pm.max_denominator = 8;
    pm.seed = 31 + v;
    fixtures.push_back({std::move(qi), AttachProbabilities(std::move(db), pm)});
  }

  const PqeEngine::Options opts = ServingOptions();
  std::vector<EvalRequest> reqs;
  reqs.reserve(requests);
  for (size_t i = 0; i < requests; ++i) {
    const Fixture& f = fixtures[i % kVariants];
    EvalRequest r = EvalRequest::ForQuery(f.qi.query, f.pdb);
    r.request_id = i + 1;
    // Per-request seeds: every request re-runs the sampler, so the cell
    // measures serving throughput, not answer-memo replays.
    r.seed = Rng::DeriveSeed(opts.seed, i + 1);
    reqs.push_back(r);
  }

  // single — the un-sharded truth.
  serve::PqeService::Options sopt;
  sopt.engine = opts;
  sopt.num_threads = 1;
  serve::PqeService single_service(sopt);
  auto t0 = std::chrono::steady_clock::now();
  const std::vector<EvalResponse> single = single_service.EvaluateBatch(reqs);
  const double single_ms = MillisSince(t0);

  auto router_options = [&](size_t threads) {
    serve::ShardRouter::Options ropt;
    ropt.num_shards = kShards;
    ropt.service = sopt;
    ropt.max_attempts = 2;
    ropt.num_threads = threads;
    return ropt;
  };

  // sharded — same batch through routing + transport, still one thread.
  serve::ShardRouter sharded_router(router_options(1));
  t0 = std::chrono::steady_clock::now();
  const serve::ShardRouter::BatchResult sharded =
      sharded_router.EvaluateBatch(reqs);
  const double sharded_ms = MillisSince(t0);
  PQE_CHECK(sharded.status.ok());
  CheckIdentical(sharded.responses, single);
  // The content-keyed placement really spreads the variants: more than one
  // shard served traffic. Remember the busiest shard — that's the one the
  // degraded cell kills, so its loss is guaranteed to force retries.
  size_t shards_used = 0, busiest = 0;
  for (size_t s = 0; s < sharded_router.cluster().size(); ++s) {
    const uint64_t served = sharded_router.cluster().shard(s).served();
    if (served > 0) ++shards_used;
    if (served > sharded_router.cluster().shard(busiest).served()) busiest = s;
  }
  PQE_CHECK(shards_used > 1);

  const double speedup_overhead = single_ms / sharded_ms;
  auto& reg = obs::MetricRegistry::Global();
  const std::string prefix = "pqe.bench.sharded_serving." + cell;
  reg.GetGauge(prefix + ".requests").Set(static_cast<double>(requests));
  reg.GetGauge(prefix + ".single_ms").Set(single_ms);
  reg.GetGauge(prefix + ".sharded_ms").Set(sharded_ms);
  reg.GetGauge(prefix + ".speedup_overhead").Set(speedup_overhead);
  reg.GetGauge(prefix + ".shards_used").Set(static_cast<double>(shards_used));

  double par_ms = 0.0, degraded_ms = 0.0;
  uint64_t retries = 0;
  if (!smoke) {
    // parallel — same router configuration fanning over 4 threads.
    serve::ShardRouter par_router(router_options(4));
    t0 = std::chrono::steady_clock::now();
    const serve::ShardRouter::BatchResult par = par_router.EvaluateBatch(reqs);
    par_ms = MillisSince(t0);
    PQE_CHECK(par.status.ok());
    CheckIdentical(par.responses, single);
    // Not named "speedup": thread scaling is machine-dependent, so this
    // gauge is recorded but never gated.
    reg.GetGauge(prefix + ".parallel_ms").Set(par_ms);
    reg.GetGauge(prefix + ".scaling_par").Set(sharded_ms / par_ms);

    // degraded — the busiest shard lost up front; retries absorb it.
    serve::ShardRouter degraded_router(router_options(1));
    degraded_router.cluster().shard(busiest).Crash();
    t0 = std::chrono::steady_clock::now();
    const serve::ShardRouter::BatchResult degraded =
        degraded_router.EvaluateBatch(reqs);
    degraded_ms = MillisSince(t0);
    PQE_CHECK(degraded.status.ok());  // max_attempts=2 covers one dead shard
    CheckIdentical(degraded.responses, single);
    retries = degraded_router.stats().retries;
    PQE_CHECK(retries > 0);  // the dead shard really was on the serving path
    reg.GetGauge(prefix + ".degraded_ms").Set(degraded_ms);
    reg.GetGauge(prefix + ".degraded_retries")
        .Set(static_cast<double>(retries));
  }

  std::printf(
      "  %-8s %6zu req  single %8.1fms  sharded %8.1fms  overhead %5.2fx"
      "  shards %zu/%zu\n",
      cell.c_str(), requests, single_ms, sharded_ms, speedup_overhead,
      shards_used, kShards);
  if (!smoke) {
    std::printf(
      "  %-8s parallel %8.1fms (x%.2f)  degraded %8.1fms (%llu retries)\n",
      "", par_ms, sharded_ms / par_ms, degraded_ms,
      static_cast<unsigned long long>(retries));
  }
}

void RunFaultSimCell(size_t seeds) {
  auto& reg = obs::MetricRegistry::Global();
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    serve::FaultSimOptions fopt;
    fopt.seed = seed;
    auto report = serve::RunFaultSim(fopt);
    PQE_CHECK(report.ok());
    // The harness verdict IS the gate: zero mismatched survivors, zero
    // definitive failures, exact replay.
    PQE_CHECK(report->ok());
    std::printf("  %s\n", report->Summary().c_str());
    reg.GetCounter("pqe.bench.sharded_serving.faultsim.seeds_ok").Increment();
  }
}

}  // namespace
}  // namespace pqe

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  using namespace pqe;
  const std::string metrics_out = obs::ConsumeMetricsOutFlag(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf(
      "E15 — sharded serving: routing overhead, scaling, degraded mode\n"
      "====================================================================="
      "\n\n%s",
      smoke ? "smoke mode: overhead cell + 2 faultsim seeds\n\n" : "\n");
  // Same cell shape in smoke and full: speedup_overhead is a within-run
  // ratio at a fixed request count, so bench_compare can gate the smoke
  // output directly against the committed full-run baseline.
  MeasureCell("e4.s4", /*requests=*/32, smoke);
  std::printf("\nfault-injection harness:\n");
  RunFaultSimCell(/*seeds=*/smoke ? 2 : 6);
  std::printf(
      "\ndeterminism: every sharded/parallel/degraded answer matched its "
      "single-service twin bit for bit;\nfaultsim survivors matched the "
      "unfaulted run and every seed replayed exactly\n");
  if (!metrics_out.empty()) {
    Status status = obs::WriteMetricsJsonFile(metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics_out: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
