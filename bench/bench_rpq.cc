// E16 — Regular path queries (docs/rpq.md): the RPQ target end to end.
//
//   bench_rpq [--smoke] [--metrics_out=BENCH_rpq.json]
//
// Four cells, all seeded and single-run deterministic:
//   linear  — a concatenation-only regex over E4 layered path data versus
//             the directly-issued path query. The lowering routes both
//             through the identical BuildPathPqeSkeleton/EstimatePathSkeleton
//             tail, so the answers must be bit-identical — checked here in
//             both kernel modes and at 1 and 4 threads.
//   reach   — a reachability regex with star + alternation, a/(a|b)*/a, over
//             a labelled knowledge graph: the product construction proper.
//             Runs both kernel modes and checks the estimate against the
//             exact string-counting oracle (RpqExact).
//   tworpq  — a 2RPQ (inverse label) on the same graph: inverse edges break
//             the scan order, so the engine's kAuto cascade lands on the
//             lineage route. The cell times the cascade and checks the
//             answer against exact world enumeration.
//   serve   — the serving regime: one RPQ arriving repeatedly. Cold
//             per-call engine evaluation versus PqeService's prepared
//             cache + answer memo; every warm answer must equal its cold
//             twin bit for bit (both routes share CompileRpqSkeleton).
// Cells are recorded as gauges pqe.bench.rpq.<cell>.*; the serving
// speedup_warm gauge is the one bench_compare gates. --smoke shrinks the
// workload for CI.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "cq/builders.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "rpq/eval.h"
#include "rpq/regex.h"
#include "serve/service.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

PqeEngine::Options RpqOptions(KernelMode kernels, size_t threads) {
  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .Epsilon(0.25)
                  .Seed(0x99e6)
                  .PoolSize(48)
                  .Repetitions(1)
                  .NumThreads(threads)
                  .Kernels(kernels)
                  .Build();
  PQE_CHECK(opts.ok());
  return *opts;
}

ProbabilisticDatabase MakeKgPdb(uint32_t layers, uint32_t width,
                                uint64_t seed) {
  KgReachabilityOptions kopt;
  kopt.layers = layers;
  kopt.width = width;
  kopt.density = 0.5;
  kopt.seed = seed;
  auto kg = MakeKgReachabilityDatabase(kopt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = seed + 1;
  return AttachProbabilities(std::move(kg), pm);
}

// Concatenation-only regex == linear path query, bit for bit: the lowering
// sends the RPQ through the same skeleton the path route builds, so the two
// answers must share every bit in both kernel modes and across thread
// counts.
void LinearCell(uint32_t width, size_t rounds) {
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions gopt;
  gopt.width = width;
  gopt.density = 0.6;
  gopt.seed = width;
  auto db = MakeLayeredPathDatabase(qi, gopt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = 100;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

  std::string text;
  for (size_t i = 0; i < qi.query.NumAtoms(); ++i) {
    if (!text.empty()) text += "/";
    text += qi.schema.Name(qi.query.atom(i).relation);
  }
  auto rq = rpq::RpqQuery::Parse(text).MoveValue();

  double rpq_ms = 0.0;
  double path_ms = 0.0;
  for (KernelMode kernels : {KernelMode::kExact, KernelMode::kFast}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      PqeEngine engine(RpqOptions(kernels, threads));
      EvalResponse via_rpq;
      EvalResponse via_path;
      auto t0 = std::chrono::steady_clock::now();
      for (size_t r = 0; r < rounds; ++r) {
        EvalRequest req = EvalRequest::ForRpq(rq, pdb);
        req.seed = Rng::DeriveSeed(0x11a3, r);
        via_rpq = engine.EvaluateRequest(req);
        PQE_CHECK(via_rpq.status.ok());
      }
      rpq_ms += MillisSince(t0);
      t0 = std::chrono::steady_clock::now();
      for (size_t r = 0; r < rounds; ++r) {
        EvalRequest req = EvalRequest::ForQuery(qi.query, pdb);
        req.seed = Rng::DeriveSeed(0x11a3, r);
        via_path = engine.EvaluateRequest(req);
        PQE_CHECK(via_path.status.ok());
      }
      path_ms += MillisSince(t0);
      // The acceptance bit: memcmp, not ==, so -0.0/NaN drift would fail.
      PQE_CHECK(std::memcmp(&via_rpq.answer.probability,
                            &via_path.answer.probability,
                            sizeof(double)) == 0);
    }
  }
  auto& reg = obs::MetricRegistry::Global();
  const std::string prefix = "pqe.bench.rpq.linear.w" + std::to_string(width);
  reg.GetGauge(prefix + ".rpq_ms").Set(rpq_ms);
  reg.GetGauge(prefix + ".path_ms").Set(path_ms);
  reg.GetGauge(prefix + ".parity").Set(1.0);
  std::printf("  %-10s %6zu rnd  rpq %8.1f ms  path %8.1f ms  bit-identical\n",
              ("linear.w" + std::to_string(width)).c_str(), rounds, rpq_ms,
              path_ms);
}

// Star + alternation over the labelled KG: the product construction, both
// kernel modes, estimate checked against the exact string-counting oracle.
void ReachCell(uint32_t layers, uint32_t width, size_t rounds) {
  ProbabilisticDatabase pdb = MakeKgPdb(layers, width, 7);
  auto rq = rpq::RpqQuery::Parse("a/(a|b)*/a").MoveValue();
  const double exact = rpq::RpqExact(rq, pdb).MoveValue().ToDouble();
  PQE_CHECK(exact > 0.0);  // the forced spine keeps the cell non-degenerate

  auto& reg = obs::MetricRegistry::Global();
  const std::string prefix = "pqe.bench.rpq.reach.kg";
  for (KernelMode kernels : {KernelMode::kExact, KernelMode::kFast}) {
    PqeEngine engine(RpqOptions(kernels, 1));
    EvalResponse resp;
    auto t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < rounds; ++r) {
      EvalRequest req = EvalRequest::ForRpq(rq, pdb);
      req.seed = Rng::DeriveSeed(0x2ea0, r);
      resp = engine.EvaluateRequest(req);
      PQE_CHECK(resp.status.ok());
    }
    const double ms = MillisSince(t0);
    const double rel_err =
        std::fabs(resp.answer.probability - exact) / exact;
    // One fixed-seed run of an (ε=0.25, δ=1/4) estimator: deterministic,
    // and this seed lands comfortably inside the accuracy band.
    PQE_CHECK(rel_err <= 0.5);
    const bool fast = kernels == KernelMode::kFast;
    reg.GetGauge(prefix + (fast ? ".fast_ms" : ".exact_ms")).Set(ms);
    reg.GetGauge(prefix + (fast ? ".fast_rel_err" : ".rel_err"))
        .Set(rel_err);
    std::printf(
        "  %-10s %6zu rnd  %s %8.1f ms  p=%.6f exact=%.6f rel_err=%.3f\n",
        "reach.kg", rounds, fast ? "fast " : "exact", ms,
        resp.answer.probability, exact, rel_err);
  }
  reg.GetGauge(prefix + ".probability_exact").Set(exact);
}

// 2RPQ: an inverse label makes consecutive product edges share a layer, so
// the scan order has no consistent topological extension and the kAuto
// cascade lands on the lineage route. Checked against world enumeration.
void TwoRpqCell(size_t rounds) {
  ProbabilisticDatabase pdb = MakeKgPdb(/*layers=*/2, /*width=*/2, 11);
  auto rq = rpq::RpqQuery::Parse("a/^a").MoveValue();
  const double exact =
      rpq::ExactRpqProbabilityByEnumeration(rq, pdb).MoveValue().ToDouble();

  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kAuto)
                  .Epsilon(0.25)
                  .Seed(0x2299)
                  .NumThreads(1)
                  .Build();
  PQE_CHECK(opts.ok());
  PqeEngine engine(*opts);
  EvalResponse resp;
  auto t0 = std::chrono::steady_clock::now();
  for (size_t r = 0; r < rounds; ++r) {
    EvalRequest req = EvalRequest::ForRpq(rq, pdb);
    req.seed = Rng::DeriveSeed(0x2290, r);
    resp = engine.EvaluateRequest(req);
    PQE_CHECK(resp.status.ok());
  }
  const double ms = MillisSince(t0);
  // The small-instance cascade resolves exactly (enumeration or exact
  // lineage), so the answer matches the oracle bit for bit.
  PQE_CHECK(std::fabs(resp.answer.probability - exact) <= 1e-12);
  auto& reg = obs::MetricRegistry::Global();
  reg.GetGauge("pqe.bench.rpq.tworpq.kg.eval_ms").Set(ms);
  reg.GetGauge("pqe.bench.rpq.tworpq.kg.probability").Set(
      resp.answer.probability);
  std::printf("  %-10s %6zu rnd  cascade %6.1f ms  p=%.6f (== enumeration)\n",
              "tworpq.kg", rounds, ms, resp.answer.probability);
}

// Serving regime: the same RPQ request over and over. Warm answers replay
// from the prepared cache + answer memo and must equal the cold engine's
// answers bit for bit (both routes share CompileRpqSkeleton + the bind/count
// tail).
void ServeCell(uint32_t layers, uint32_t width, size_t requests,
               bool gate_speedup) {
  ProbabilisticDatabase pdb = MakeKgPdb(layers, width, 13);
  auto rq = rpq::RpqQuery::Parse("a/(a|b)*/a").MoveValue();
  const PqeEngine::Options opts = RpqOptions(KernelMode::kExact, 1);

  std::vector<EvalRequest> reqs;
  reqs.reserve(requests);
  for (size_t i = 0; i < requests; ++i) {
    EvalRequest r = EvalRequest::ForRpq(rq, pdb);
    r.request_id = i + 1;
    r.seed = Rng::DeriveSeed(opts.seed, 1);  // identical requests
    reqs.push_back(r);
  }

  PqeEngine engine(opts);
  std::vector<EvalResponse> cold(requests);
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests; ++i) {
    cold[i] = engine.EvaluateRequest(reqs[i]);
  }
  const double cold_ms = MillisSince(t0);

  serve::PqeService::Options sopt;
  sopt.engine = opts;
  sopt.num_threads = 1;
  serve::PqeService service(sopt);
  t0 = std::chrono::steady_clock::now();
  const std::vector<EvalResponse> warm = service.EvaluateBatch(reqs);
  const double warm_ms = MillisSince(t0);

  for (size_t i = 0; i < requests; ++i) {
    PQE_CHECK(cold[i].status.ok());
    PQE_CHECK(warm[i].status.ok());
    PQE_CHECK(std::memcmp(&warm[i].answer.probability,
                          &cold[i].answer.probability,
                          sizeof(double)) == 0);
  }
  const serve::PreparedCache::Stats stats = service.cache().stats();
  PQE_CHECK(stats.misses == 1);  // one compile for the whole batch
  PQE_CHECK(stats.hits == requests - 1);

  const double speedup_warm = cold_ms / warm_ms;
  auto& reg = obs::MetricRegistry::Global();
  const std::string prefix = "pqe.bench.rpq.serve.kg";
  reg.GetGauge(prefix + ".cold_ms").Set(cold_ms);
  reg.GetGauge(prefix + ".warm_ms").Set(warm_ms);
  reg.GetGauge(prefix + ".speedup_warm").Set(speedup_warm);
  reg.GetGauge(prefix + ".requests").Set(static_cast<double>(requests));
  std::printf("  %-10s %6zu req  cold %8.1f ms  warm %8.1f ms  %8.2fx\n",
              "serve.kg", requests, cold_ms, warm_ms, speedup_warm);
  if (gate_speedup) {
    // Warm RPQ serving must beat cold per-call evaluation by at least 5x,
    // same bar as the conjunctive serving bench (E12).
    PQE_CHECK(speedup_warm >= 5.0);
  }
}

}  // namespace
}  // namespace pqe

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  using namespace pqe;
  const std::string metrics_out = obs::ConsumeMetricsOutFlag(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf(
      "E16 — regular path queries: lowering parity, product FPRAS, 2RPQ "
      "cascade, serving\n"
      "====================================================================="
      "\n\n%s",
      smoke ? "smoke mode: reduced rounds\n\n" : "\n");
  if (smoke) {
    LinearCell(/*width=*/3, /*rounds=*/2);
    ReachCell(/*layers=*/3, /*width=*/2, /*rounds=*/2);
    TwoRpqCell(/*rounds=*/2);
    ServeCell(/*layers=*/3, /*width=*/3, /*requests=*/24,
              /*gate_speedup=*/false);
  } else {
    LinearCell(/*width=*/3, /*rounds=*/8);
    LinearCell(/*width=*/4, /*rounds=*/8);
    ReachCell(/*layers=*/3, /*width=*/2, /*rounds=*/8);
    TwoRpqCell(/*rounds=*/8);
    ServeCell(/*layers=*/3, /*width=*/3, /*requests=*/24,
              /*gate_speedup=*/true);
  }
  std::printf(
      "\ndeterminism: every lowered/served answer matched its twin bit for "
      "bit\n");
  if (!metrics_out.empty()) {
    Status status = obs::WriteMetricsJsonFile(metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics_out: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
