// E6 — FPRAS accuracy harness (Theorem 1's (1±ε) guarantee): runs
// PQEEstimate across randomized instances at several ε targets, compares
// against the exact Shannon-expansion oracle, and prints the empirical error
// distribution. Expected shape: the bulk of runs inside the (1±ε) band.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/pqe.h"
#include "cq/builders.h"
#include "lineage/karp_luby.h"
#include "lineage/lineage.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace {

struct TrialResult {
  double relative_error = 0.0;  // estimate/truth − 1
};

QueryInstance PickFamily(Rng* rng) {
  switch (rng->NextBounded(3)) {
    case 0:
      return MakePathQuery(3).MoveValue();
    case 1:
      return MakeH0Query().MoveValue();
    default:
      return MakeCycleQuery(3).MoveValue();
  }
}

void RunBand(double epsilon, size_t trials) {
  std::vector<double> errors;
  size_t inside = 0;
  Rng rng(2024);
  size_t attempted = 0;
  uint64_t seed = 1;
  while (errors.size() < trials && attempted < trials * 4) {
    ++attempted;
    ++seed;
    QueryInstance qi = PickFamily(&rng);
    RandomDatabaseOptions ropt;
    ropt.domain_size = 3;
    ropt.facts_per_relation = 4;
    ropt.seed = seed * 13 + 5;
    auto db = MakeRandomDatabase(qi.schema, ropt).MoveValue();
    ProbabilityModel pm;
    pm.max_denominator = 12;
    pm.seed = seed * 7 + 3;
    ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

    auto lineage = BuildLineage(qi.query, pdb.database()).MoveValue();
    const double truth =
        ExactDnfProbability(lineage, pdb).MoveValue().ToDouble();
    if (truth <= 0.0) continue;  // trivially-zero instance: skip

    EstimatorConfig cfg;
    cfg.epsilon = epsilon;
    cfg.seed = seed * 31 + 1;
    // Pools scale as Θ(1/ε²) with an explicit constant so the two ε bands
    // actually differ (the auto rule would clamp both to the same cap).
    cfg.pool_size =
        static_cast<size_t>(std::ceil(24.0 / (epsilon * epsilon)));
    auto est = PqeEstimate(qi.query, pdb, cfg).MoveValue();
    const double rel = est.probability / truth - 1.0;
    errors.push_back(rel);
    if (std::abs(rel) <= epsilon) ++inside;
  }
  std::sort(errors.begin(), errors.end(),
            [](double a, double b) { return std::abs(a) < std::abs(b); });
  auto abs_quantile = [&](double q) {
    if (errors.empty()) return 0.0;
    size_t idx = static_cast<size_t>(q * (errors.size() - 1));
    return std::abs(errors[idx]);
  };
  std::printf("%-8.2f %-8zu %-12.3f %-12.3f %-12.3f %-10.1f%%\n", epsilon,
              errors.size(), abs_quantile(0.5), abs_quantile(0.9),
              abs_quantile(1.0),
              100.0 * static_cast<double>(inside) /
                  static_cast<double>(std::max<size_t>(errors.size(), 1)));
}

}  // namespace
}  // namespace pqe

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf(
      "E6 — Empirical (1±ε) accuracy of PQEEstimate vs exact oracle\n"
      "============================================================\n\n");
  std::printf("%-8s %-8s %-12s %-12s %-12s %-10s\n", "eps", "trials",
              "|err| p50", "|err| p90", "|err| max", "within band");
  pqe::RunBand(0.3, 40);
  pqe::RunBand(0.15, 40);
  std::printf(
      "\n  shape check: median and p90 relative errors sit well inside ε;\n"
      "  the within-band fraction reflects the estimator's 'with high\n"
      "  probability' guarantee (not a certainty) at practical pool sizes.\n");
  return 0;
}
