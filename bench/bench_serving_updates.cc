// E14 — delta-aware incremental rebinds (docs/serving.md "Incremental
// maintenance"): the update-heavy serving regime, where fact probabilities
// drift while a prepared query keeps serving.
//
//   bench_serving_updates [--smoke] [--metrics_out=BENCH_serving_updates.json]
//
// Two planes, both single-threaded and seeded identically:
//
//   core    — median time of a full gadget bind (BindPqeAutomaton /
//             BindPathPqeNfa) vs a delta rebind (RebindPqeAutomaton /
//             RebindPathPqeNfa) of the same labelling after a single-fact
//             numerator update. The acceptance gate: on the string route
//             (the E4/E12 serving workload) the delta patch must be at
//             least 10x faster than re-running the full expansion; the
//             tree route is floored at 2x and baselined (its clone is
//             bandwidth-bound — see MeasureTreeCell).
//   service — PqeService::ApplyUpdate pushing single-fact, multi-fact, and
//             degenerate (p -> 0, p -> 1) deltas through a resident
//             prepared query, in BOTH sampling-kernel modes. Every
//             delta-rebound answer is checked bit-identical (memcmp on the
//             probability) to a cold engine evaluation of the updated
//             database, and the captured workload — update events included
//             — is replayed through a fresh service and must come back
//             clean.
//
// Gauges: pqe.bench.serving_updates.<cell>.{full_bind_us,delta_rebind_us,
// speedup_delta_rebind,patched_slots} for the core cells (path, tree) and
// pqe.bench.serving_updates.service.<kernel>.{updates,delta_rebinds,
// full_rebinds,update_ms} for the service plane; --smoke shrinks trial
// counts for CI (cell shapes stay identical so bench_compare can gate the
// smoke output against the committed baseline).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/path_pqe.h"
#include "core/pqe.h"
#include "core/projection.h"
#include "cq/builders.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "serve/workload.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Median(std::vector<double> xs) {
  PQE_CHECK(!xs.empty());
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// A single-fact numerator update of projected fact `index`, denominator
// preserved (the patchable shape — see core/pqe.h PqeBindLayout).
std::vector<Probability> SingleFactUpdate(const std::vector<Probability>& probs,
                                          size_t index) {
  PQE_CHECK(index < probs.size());
  std::vector<Probability> next = probs;
  next[index].num = (next[index].num + 1) % (next[index].den + 1);
  return next;
}

void RecordCell(const std::string& cell, double full_us, double delta_us,
                size_t patched_slots, double gate_floor) {
  const double speedup = full_us / delta_us;
  auto& reg = obs::MetricRegistry::Global();
  const std::string prefix = "pqe.bench.serving_updates." + cell;
  reg.GetGauge(prefix + ".full_bind_us").Set(full_us);
  reg.GetGauge(prefix + ".delta_rebind_us").Set(delta_us);
  reg.GetGauge(prefix + ".speedup_delta_rebind").Set(speedup);
  reg.GetGauge(prefix + ".patched_slots")
      .Set(static_cast<double>(patched_slots));
  std::printf("  %-6s %10.1f %10.1f %8.1fx  (%zu slots patched)\n",
              cell.c_str(), full_us, delta_us, speedup, patched_slots);
  PQE_CHECK(speedup >= gate_floor);
}

// Core plane, string route: full BindPathPqeNfa vs RebindPathPqeNfa after a
// single-fact numerator update, medians over `trials` runs.
void MeasurePathCell(size_t trials) {
  // Width/length chosen from a size sweep: large enough that the full
  // gadget expansion dominates fixed costs, small enough that the delta
  // clone stays cache-resident — the regime serving workloads live in.
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions gopt;
  gopt.width = 4;
  gopt.density = 0.6;
  gopt.seed = 6;
  auto db = MakeLayeredPathDatabase(qi, gopt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = 100;
  const ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

  auto skeleton = BuildPathPqeSkeleton(qi.query, pdb.database()).MoveValue();
  auto probs =
      ProjectedFactProbabilities(skeleton.original_fact, pdb).MoveValue();
  const auto prior = BindPathPqeNfa(skeleton, probs).MoveValue();
  const std::vector<Probability> next =
      SingleFactUpdate(probs, probs.size() / 2);

  // Structural check once, outside the timing loop (DebugString allocates
  // megabytes — interleaving it with the timed calls pollutes the cache):
  // the patch is the canonical writer, so patched == fresh, structurally.
  size_t patched = 0;
  {
    auto full = BindPathPqeNfa(skeleton, next).MoveValue();
    auto delta = RebindPathPqeNfa(prior, probs, next, &patched).MoveValue();
    PQE_CHECK(delta.nfa.DebugString() == full.nfa.DebugString());
    PQE_CHECK(delta.word_length == full.word_length);
    PQE_CHECK(patched > 0);
  }
  std::vector<double> full_us, delta_us;
  for (size_t t = 0; t < trials; ++t) {
    auto t0 = std::chrono::steady_clock::now();
    auto full = BindPathPqeNfa(skeleton, next);
    full_us.push_back(MicrosSince(t0));
    PQE_CHECK(full.ok());
    t0 = std::chrono::steady_clock::now();
    auto delta = RebindPathPqeNfa(prior, probs, next, &patched);
    delta_us.push_back(MicrosSince(t0));
    PQE_CHECK(delta.ok());
  }
  // The acceptance gate: on the string route — the E4/E12 serving workload
  // whose 0.94x rebind "speedup" motivated delta rebinds — patching one
  // fact's gadget slots must beat re-running the full expansion by >= 10x.
  RecordCell("path", Median(full_us), Median(delta_us), patched,
             /*gate_floor=*/10.0);
}

// Core plane, generic tree route: full BindPqeAutomaton vs
// RebindPqeAutomaton over a star query.
void MeasureTreeCell(size_t trials) {
  auto qi = MakeStarQuery(3).MoveValue();
  StarDataOptions sopt;
  sopt.hubs = 4;
  sopt.spokes_per_hub = 4;
  sopt.density = 0.7;
  sopt.seed = 7;
  auto db = MakeStarDatabase(qi, sopt).MoveValue();
  ProbabilityModel pm;
  // Denominators up to 16 deepen the comparator gadgets: the full
  // expansion's per-transition construction cost grows faster than the
  // delta clone's flat copy, which is the asymmetry this cell measures.
  pm.max_denominator = 16;
  pm.seed = 100;
  const ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

  UrConstructionOptions uopt;
  auto skeleton = BuildPqeSkeleton(qi.query, pdb.database(), uopt).MoveValue();
  auto probs =
      ProjectedFactProbabilities(skeleton.original_fact, pdb).MoveValue();
  const auto prior = BindPqeAutomaton(skeleton, probs).MoveValue();
  const std::vector<Probability> next =
      SingleFactUpdate(probs, probs.size() / 2);

  size_t patched = 0;
  {
    auto full = BindPqeAutomaton(skeleton, next).MoveValue();
    auto delta = RebindPqeAutomaton(prior, probs, next, &patched).MoveValue();
    PQE_CHECK(delta.weighted.DebugString() == full.weighted.DebugString());
    PQE_CHECK(delta.tree_size == full.tree_size);
    PQE_CHECK(patched > 0);
  }
  std::vector<double> full_us, delta_us;
  for (size_t t = 0; t < trials; ++t) {
    auto t0 = std::chrono::steady_clock::now();
    auto full = BindPqeAutomaton(skeleton, next);
    full_us.push_back(MicrosSince(t0));
    PQE_CHECK(full.ok());
    t0 = std::chrono::steady_clock::now();
    auto delta = RebindPqeAutomaton(prior, probs, next, &patched);
    delta_us.push_back(MicrosSince(t0));
    PQE_CHECK(delta.ok());
  }
  // The generic tree route's delta rebind is clone-bandwidth-bound — the
  // Nfta copy re-bases every transition's child span into the new arena —
  // so its ratio sits near 4x rather than the string route's ~40x. The
  // hard floor here is a sanity bound; the committed baseline's
  // speedup_delta_rebind gauge (bench_compare, 25% threshold) guards the
  // actual level against regression.
  RecordCell("tree", Median(full_us), Median(delta_us), patched,
             /*gate_floor=*/2.0);
}

std::string CaptureFilePath(const char* kernel) {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
  return dir + "/pqe_bench_serving_updates_" + kernel + ".jsonl";
}

// Service plane: a resident prepared query rides through single-fact,
// multi-fact, and degenerate deltas via ApplyUpdate; every post-update
// answer must be bit-identical to a cold evaluation of the updated
// database, and the capture (updates included) must replay clean.
void ServiceUpdateCell(KernelMode kernel) {
  const char* kname = KernelModeToString(kernel);
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions gopt;
  gopt.width = 3;
  gopt.density = 0.6;
  gopt.seed = 3;
  auto db = MakeLayeredPathDatabase(qi, gopt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = 100;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  const ProbabilisticDatabase pdb0 = pdb;  // pre-update state, for replay

  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .Epsilon(0.25)
                  .Seed(0xbe7c)
                  .PoolSize(48)
                  .Repetitions(1)
                  .NumThreads(1)
                  .Kernels(kernel)
                  .Build();
  PQE_CHECK(opts.ok());

  const std::string capture_path = CaptureFilePath(kname);
  std::remove(capture_path.c_str());
  serve::PqeService::Options sopt;
  sopt.engine = *opts;
  sopt.num_threads = 1;
  sopt.capture_path = capture_path;
  serve::PqeService service(sopt);
  PQE_CHECK(service.capture_status().ok());
  PqeEngine cold_engine(*opts);

  auto serve_and_check = [&](uint64_t id) {
    EvalRequest r = EvalRequest::ForQuery(qi.query, pdb);
    r.request_id = id;
    r.seed = Rng::DeriveSeed(opts->seed, id);
    const std::vector<EvalResponse> served = service.EvaluateBatch({r});
    PQE_CHECK(served.size() == 1 && served[0].status.ok());
    const EvalResponse cold = cold_engine.EvaluateRequest(r);
    PQE_CHECK(cold.status.ok());
    // The bit-identity gate: delta-rebound serving must reproduce the cold
    // evaluation of the updated database exactly, not approximately.
    PQE_CHECK(std::memcmp(&served[0].answer.probability,
                          &cold.answer.probability, sizeof(double)) == 0);
  };

  // First serve binds the initial labelling (the delta seed).
  serve_and_check(1);

  // Single-fact, multi-fact, and degenerate (p -> 0, p -> 1) updates — all
  // denominator-preserving, so each one is served by the in-place patch.
  std::vector<serve::LabelDelta> deltas;
  {
    serve::LabelDelta single;
    const Probability p0 = pdb.probability(0);
    single.facts = {0};
    single.new_probs = {Probability{(p0.num + 1) % (p0.den + 1), p0.den}};
    deltas.push_back(single);

    serve::LabelDelta multi;
    for (FactId f = 1; f <= 3 && f < pdb.NumFacts(); ++f) {
      const Probability p = pdb.probability(f);
      multi.facts.push_back(f);
      multi.new_probs.push_back(Probability{(p.num + 2) % (p.den + 1), p.den});
    }
    deltas.push_back(multi);

    serve::LabelDelta degenerate;
    const Probability pa = pdb.probability(0);
    const Probability pb = pdb.probability(1);
    degenerate.facts = {0, 1};
    degenerate.new_probs = {Probability{0, pa.den},
                            Probability{pb.den, pb.den}};
    deltas.push_back(degenerate);
  }

  size_t delta_rebinds = 0, full_rebinds = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t k = 0; k < deltas.size(); ++k) {
    auto stats = service.ApplyUpdate(&pdb, deltas[k]);
    PQE_CHECK(stats.ok());
    delta_rebinds += stats->delta_rebinds;
    full_rebinds += stats->full_rebinds;
    serve_and_check(100 + k);
  }
  const double update_ms = MicrosSince(t0) / 1000.0;
  // Denominators never changed, so no update may have fallen back to the
  // full gadget expansion.
  PQE_CHECK(delta_rebinds == deltas.size());
  PQE_CHECK(full_rebinds == 0);

  auto& reg = obs::MetricRegistry::Global();
  const std::string prefix =
      std::string("pqe.bench.serving_updates.service.") + kname;
  reg.GetGauge(prefix + ".updates").Set(static_cast<double>(deltas.size()));
  reg.GetGauge(prefix + ".delta_rebinds")
      .Set(static_cast<double>(delta_rebinds));
  reg.GetGauge(prefix + ".full_rebinds")
      .Set(static_cast<double>(full_rebinds));
  reg.GetGauge(prefix + ".update_ms").Set(update_ms);
  std::printf(
      "  service[%s]: %zu updates in %.2f ms, delta_rebinds=%zu "
      "full_rebinds=%zu\n",
      kname, deltas.size(), update_ms, delta_rebinds, full_rebinds);

  // Replay the capture — update events included — through a fresh service
  // from the PRE-update database: the segmented replay must re-apply every
  // delta and match every answer bit for bit.
  auto records = serve::LoadWorkloadFile(capture_path);
  PQE_CHECK(records.ok());
  serve::PqeService::Options ropt = sopt;
  ropt.capture_path.clear();
  serve::PqeService replay_service(ropt);
  auto report = serve::ReplayWorkload(replay_service, pdb0, *records);
  PQE_CHECK(report.ok());
  std::printf("  service[%s]: replay %s\n", kname, report->Summary().c_str());
  for (const std::string& detail : report->mismatch_details) {
    std::printf("    %s\n", detail.c_str());
  }
  PQE_CHECK(report->updates_applied == deltas.size());
  PQE_CHECK(report->Clean());
  std::remove(capture_path.c_str());
}

}  // namespace
}  // namespace pqe

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  using namespace pqe;
  const std::string metrics_out = obs::ConsumeMetricsOutFlag(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t trials = smoke ? 9 : 25;
  std::printf(
      "E14 — delta-aware incremental rebinds: patch vs full gadget "
      "expansion\n"
      "====================================================================="
      "\n\n%s",
      smoke ? "smoke mode: reduced trial count\n\n" : "\n");
  std::printf("  %-6s %10s %10s %9s\n", "cell", "full_us", "delta_us",
              "speedup");
  MeasurePathCell(trials);
  MeasureTreeCell(trials);
  std::printf("\n");
  ServiceUpdateCell(KernelMode::kExact);
  ServiceUpdateCell(KernelMode::kFast);
  std::printf(
      "\ndeterminism: every delta-rebound answer matched its cold twin bit "
      "for bit (both kernel modes)\n");
  if (!metrics_out.empty()) {
    Status status = obs::WriteMetricsJsonFile(metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics_out: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
