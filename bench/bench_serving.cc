// E12 — Prepared-query serving (docs/serving.md): throughput of the serving
// layer's warm cache against cold per-call evaluation on the E4 workload
// (path query length 4 over layered databases).
//
//   bench_serving [--smoke] [--metrics_out=BENCH_serving.json]
//
// Three modes per cell, all single-threaded and seeded identically. The
// workload is the serving regime: the SAME request arrives over and over.
//   cold   — PqeEngine::EvaluateRequest per request: every call rebuilds the
//            decomposition, the Proposition 1 automaton, the gadget bind,
//            and re-runs the sampler.
//   warm   — PqeService::EvaluateBatch over the identical requests: the
//            first compiles + binds + counts, the rest replay from the
//            prepared cache + answer memo (sound because estimates are
//            deterministic functions of the bound automaton and config —
//            the replay IS the re-run, bit for bit).
//   rebind — a batch cycling six labellings with per-request seeds:
//            skeleton reused, bind re-resolved per request. The labellings
//            are numerator-only variants of labelling 0 (denominators
//            fixed), so every bind-LRU miss past the first is served by the
//            delta patch (RebindPqeAutomaton) instead of a full gadget
//            expansion, and six > the LRU's four slots exercises eviction.
// Every warm/rebind answer is checked bit-identical to its cold twin (the
// skeleton/bind split IS the cold path; see core/pqe.cc), and a pre-cancelled
// request demonstrates the typed deadline status. Cells are recorded as
// gauges pqe.bench.serving.<cell>.{cold_ms,warm_ms,rebind_ms,speedup_warm,
// speedup_rebind}; --smoke shrinks the workload for CI.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "cq/builders.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

PqeEngine::Options ServingOptions() {
  // Small fixed pools keep the counting phase cheap relative to compilation
  // — the regime the serving layer is built for (many requests, one query).
  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .Epsilon(0.25)
                  .Seed(0xbe7c)
                  .PoolSize(48)
                  .Repetitions(1)
                  .NumThreads(1)
                  .Build();
  PQE_CHECK(opts.ok());
  return *opts;
}

void MeasureCell(const std::string& cell, uint32_t width, size_t requests,
                 bool gate_speedup) {
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions gopt;
  gopt.width = width;
  gopt.density = 0.6;
  gopt.seed = width;

  // Six probability labellings of the same fact set: warm serves labelling
  // 0 only; rebind cycles all six. Labellings 1..5 are numerator-only
  // drifts of labelling 0 — every fact keeps its denominator — so switching
  // between them is exactly the delta-rebind regime (docs/serving.md
  // "Incremental maintenance"), and with six labellings over the
  // four-slot bind LRU the cycle also exercises eviction + re-patch.
  constexpr size_t kLabellings = 6;
  std::vector<ProbabilisticDatabase> pdbs;
  {
    auto db = MakeLayeredPathDatabase(qi, gopt).MoveValue();
    ProbabilityModel pm;
    pm.max_denominator = 8;
    pm.seed = 100;
    pdbs.push_back(AttachProbabilities(std::move(db), pm));
  }
  for (size_t j = 1; j < kLabellings; ++j) {
    ProbabilisticDatabase pdb = pdbs[0];
    for (FactId f = 0; f < pdb.NumFacts(); ++f) {
      if ((f + j) % 3 != 0) continue;
      const Probability p = pdb.probability(f);
      const Probability next{(p.num + j) % (p.den + 1), p.den};
      PQE_CHECK(pdb.SetProbability(f, next).ok());
    }
    pdbs.push_back(std::move(pdb));
  }

  const PqeEngine::Options opts = ServingOptions();
  // repeated=true is the serving workload — every request identical (same
  // labelling, same explicit seed), the shape the answer memo replays.
  // repeated=false gives each request its own derived seed, forcing fresh
  // samples per request (the rebind mode).
  auto make_requests = [&](size_t labellings, bool repeated) {
    std::vector<EvalRequest> reqs;
    reqs.reserve(requests);
    for (size_t i = 0; i < requests; ++i) {
      EvalRequest r = EvalRequest::ForQuery(qi.query, pdbs[i % labellings]);
      r.request_id = i + 1;
      // Explicit seeds so cold twins reproduce what the service would run.
      r.seed = Rng::DeriveSeed(opts.seed, repeated ? 1 : i + 1);
      reqs.push_back(r);
    }
    return reqs;
  };

  // Cold: one engine, no caching — every request rebuilds everything.
  PqeEngine engine(opts);
  const std::vector<EvalRequest> warm_reqs =
      make_requests(1, /*repeated=*/true);
  std::vector<EvalResponse> cold(requests);
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests; ++i) {
    cold[i] = engine.EvaluateRequest(warm_reqs[i]);
  }
  const double cold_ms = MillisSince(t0);

  // Warm: the batch API over the serving cache, identical requests
  // throughout — one compile + one sampler run, then answer-memo replays.
  serve::PqeService::Options sopt;
  sopt.engine = opts;
  sopt.num_threads = 1;
  serve::PqeService warm_service(sopt);
  auto& reg = obs::MetricRegistry::Global();
  const uint64_t memo_hits_before =
      reg.GetCounter("serve.answer_memo_hits").Value();
  t0 = std::chrono::steady_clock::now();
  const std::vector<EvalResponse> warm =
      warm_service.EvaluateBatch(warm_reqs);
  const double warm_ms = MillisSince(t0);

  const uint64_t warm_memo_hits =
      reg.GetCounter("serve.answer_memo_hits").Value() - memo_hits_before;

  // Rebind: fresh service, labellings cycle and seeds differ per request —
  // the skeleton is reused, recently bound labellings are LRU hits, and a
  // miss is served by patching the MRU bound's gadget slots in place (the
  // labellings differ only in numerators); every request re-runs the
  // sampler (no memo hits).
  serve::PqeService rebind_service(sopt);
  const std::vector<EvalRequest> rebind_reqs =
      make_requests(kLabellings, /*repeated=*/false);
  const uint64_t delta_before = reg.GetCounter("serve.delta_rebinds").Value();
  const uint64_t full_before = reg.GetCounter("serve.full_rebinds").Value();
  const uint64_t evict_before = reg.GetCounter("serve.bind_evictions").Value();
  t0 = std::chrono::steady_clock::now();
  const std::vector<EvalResponse> rebind =
      rebind_service.EvaluateBatch(rebind_reqs);
  const double rebind_ms = MillisSince(t0);
  const uint64_t delta_rebinds =
      reg.GetCounter("serve.delta_rebinds").Value() - delta_before;
  const uint64_t full_rebinds =
      reg.GetCounter("serve.full_rebinds").Value() - full_before;
  const uint64_t bind_evictions =
      reg.GetCounter("serve.bind_evictions").Value() - evict_before;

  // Served answers must equal their cold twins bit for bit.
  for (size_t i = 0; i < requests; ++i) {
    PQE_CHECK(cold[i].status.ok());
    PQE_CHECK(warm[i].status.ok());
    PQE_CHECK(warm[i].answer.probability == cold[i].answer.probability);
    PQE_CHECK(rebind[i].status.ok());
    const EvalResponse twin = engine.EvaluateRequest(rebind_reqs[i]);
    PQE_CHECK(rebind[i].answer.probability == twin.answer.probability);
  }

  const double speedup_warm = cold_ms / warm_ms;
  const double speedup_rebind = cold_ms / rebind_ms;
  const std::string prefix = "pqe.bench.serving." + cell;
  reg.GetGauge(prefix + ".cold_ms").Set(cold_ms);
  reg.GetGauge(prefix + ".warm_ms").Set(warm_ms);
  reg.GetGauge(prefix + ".rebind_ms").Set(rebind_ms);
  reg.GetGauge(prefix + ".speedup_warm").Set(speedup_warm);
  reg.GetGauge(prefix + ".speedup_rebind").Set(speedup_rebind);
  reg.GetGauge(prefix + ".requests").Set(static_cast<double>(requests));
  const serve::PreparedCache::Stats stats = warm_service.cache().stats();
  reg.GetGauge(prefix + ".cache_hits").Set(static_cast<double>(stats.hits));
  reg.GetGauge(prefix + ".cache_misses")
      .Set(static_cast<double>(stats.misses));
  reg.GetGauge(prefix + ".answer_memo_hits")
      .Set(static_cast<double>(warm_memo_hits));
  reg.GetGauge(prefix + ".delta_rebinds")
      .Set(static_cast<double>(delta_rebinds));
  reg.GetGauge(prefix + ".full_rebinds")
      .Set(static_cast<double>(full_rebinds));
  reg.GetGauge(prefix + ".bind_evictions")
      .Set(static_cast<double>(bind_evictions));
  std::printf("  %-8s %6zu req  %10.1f %10.1f %10.1f %8.2fx %8.2fx\n",
              cell.c_str(), requests, cold_ms, warm_ms, rebind_ms,
              speedup_warm, speedup_rebind);
  PQE_CHECK(stats.hits == requests - 1);  // one compile, then cache hits
  PQE_CHECK(warm_memo_hits == requests - 1);  // one sampler run, then replays
  // The labellings share denominators, so every bind past the first one is
  // a delta patch — the rebind cell must never fall back to a full gadget
  // expansion, and cycling six labellings through four LRU slots evicts.
  PQE_CHECK(full_rebinds == 1);
  PQE_CHECK(delta_rebinds >= kLabellings - 1);
  PQE_CHECK(bind_evictions > 0);
  if (gate_speedup) {
    // The acceptance gate: warm serving must beat cold per-call evaluation
    // by at least 5x on this workload.
    PQE_CHECK(speedup_warm >= 5.0);
  }
}

// A pre-cancelled token exercises the typed deadline path deterministically:
// the response reports kDeadlineExceeded instead of hanging or throwing.
void DemoTypedDeadline() {
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions gopt;
  gopt.width = 3;
  gopt.density = 0.6;
  gopt.seed = 3;
  auto db = MakeLayeredPathDatabase(qi, gopt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = 100;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

  serve::PqeService::Options sopt;
  sopt.engine = ServingOptions();
  sopt.num_threads = 1;
  serve::PqeService service(sopt);
  CancelToken cancelled;
  cancelled.Cancel();
  EvalRequest r = EvalRequest::ForQuery(qi.query, pdb);
  r.request_id = 1;
  r.deadline_ms = 60'000;
  r.cancel = &cancelled;
  const std::vector<EvalResponse> resp = service.EvaluateBatch({r});
  PQE_CHECK(resp.size() == 1);
  PQE_CHECK(resp[0].deadline_exceeded);
  PQE_CHECK(resp[0].status.code() == StatusCode::kDeadlineExceeded);
  std::printf("  deadline demo: typed status \"%s\"\n",
              resp[0].status.ToString().c_str());
}

}  // namespace
}  // namespace pqe

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  using namespace pqe;
  const std::string metrics_out = obs::ConsumeMetricsOutFlag(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf(
      "E12 — prepared-query serving: cold vs warm vs rebind (single "
      "thread)\n"
      "====================================================================="
      "\n\n%s",
      smoke ? "smoke mode: smallest cell only\n\n" : "\n");
  std::printf("  %-8s %9s  %10s %10s %10s %9s %9s\n", "cell", "", "cold_ms",
              "warm_ms", "rebind_ms", "warm", "rebind");
  if (smoke) {
    // 24 requests — the same cell shape as the committed full run, so
    // bench_compare can gate the smoke output directly against
    // BENCH_serving.json (speedup_warm scales with the request count).
    MeasureCell("e4.w3", /*width=*/3, /*requests=*/24,
                /*gate_speedup=*/false);
  } else {
    MeasureCell("e4.w3", /*width=*/3, /*requests=*/24,
                /*gate_speedup=*/true);
    MeasureCell("e4.w4", /*width=*/4, /*requests=*/24,
                /*gate_speedup=*/true);
  }
  DemoTypedDeadline();
  std::printf(
      "\ndeterminism: every warm/rebind answer matched its cold twin bit "
      "for bit\n");
  if (!metrics_out.empty()) {
    Status status = obs::WriteMetricsJsonFile(metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics_out: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
