// E3 — Combined-complexity headline (Theorems 1/2): FPRAS runtime as the
// query length i grows, at a fixed database shape. The paper's claim is
// poly(|Q|); classical lineage approaches are exponential in i (see E2/E8).

#include <benchmark/benchmark.h>

#include "core/path_pqe.h"
#include "core/pqe.h"
#include "cq/builders.h"
#include "util/check.h"
#include "workload/generators.h"

namespace pqe {
namespace {

EstimatorConfig ScalingConfig() {
  EstimatorConfig cfg;
  cfg.epsilon = 0.25;
  cfg.seed = 7;
  cfg.pool_size = 96;  // fixed pool: measures the structural scaling shape
  return cfg;
}

ProbabilisticDatabase MakeInstance(const QueryInstance& qi, uint32_t width,
                                   uint64_t seed) {
  LayeredGraphOptions opt;
  opt.width = width;
  opt.density = 1.0;
  opt.seed = seed;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = seed + 1;
  return AttachProbabilities(std::move(db), pm);
}

// Theorem 1 pipeline (decomposition + NFTA + multipliers + CountNFTA) as a
// function of query length.
void BM_PqeEstimateVsQueryLength(benchmark::State& state) {
  const uint32_t length = static_cast<uint32_t>(state.range(0));
  auto qi = MakePathQuery(length).MoveValue();
  ProbabilisticDatabase pdb = MakeInstance(qi, /*width=*/3, /*seed=*/length);
  double probability = 0.0;
  size_t states = 0;
  size_t tree_size = 0;
  for (auto _ : state) {
    auto est = PqeEstimate(qi.query, pdb, ScalingConfig()).MoveValue();
    probability = est.probability;
    states = est.nfta_states;
    tree_size = est.tree_size;
  }
  state.counters["query_atoms"] = length;
  state.counters["db_facts"] = static_cast<double>(pdb.NumFacts());
  state.counters["nfta_states"] = static_cast<double>(states);
  state.counters["tree_size_k"] = static_cast<double>(tree_size);
  state.counters["probability"] = probability;
}
BENCHMARK(BM_PqeEstimateVsQueryLength)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Theorem 2's string-automaton special case as a function of query length.
void BM_PathEstimateVsQueryLength(benchmark::State& state) {
  const uint32_t length = static_cast<uint32_t>(state.range(0));
  auto qi = MakePathQuery(length).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 1.0;
  opt.seed = length;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  double ur = 0.0;
  size_t states = 0;
  for (auto _ : state) {
    auto est = PathEstimate(qi.query, db, ScalingConfig()).MoveValue();
    ur = est.ur.ToDouble();
    states = est.nfa_states;
  }
  state.counters["query_atoms"] = length;
  state.counters["db_facts"] = static_cast<double>(db.NumFacts());
  state.counters["nfa_states"] = static_cast<double>(states);
  state.counters["ur_estimate"] = ur;
}
BENCHMARK(BM_PathEstimateVsQueryLength)
    ->DenseRange(2, 12, 2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace pqe
