// E9 — Construction costs (Proposition 1, Remarks 1–2): hypertree
// decomposition time, the size |T⁺| of the augmented NFTA, and the size of
// the gadget-expanded NFTA T', as functions of |Q| and |D|. Verifies the
// paper's polynomial-size claims with measured counters.

#include <benchmark/benchmark.h>

#include "core/pqe.h"
#include "core/ur_construction.h"
#include "cq/builders.h"
#include "hypertree/decomposition.h"
#include "workload/generators.h"

namespace pqe {
namespace {

void BM_DecomposeVsQueryLength(benchmark::State& state) {
  const uint32_t length = static_cast<uint32_t>(state.range(0));
  auto qi = MakeCaterpillarQuery(length).MoveValue();
  size_t width = 0;
  size_t nodes = 0;
  for (auto _ : state) {
    auto hd = Decompose(qi.query, 3).MoveValue();
    width = hd.Width();
    nodes = hd.NumNodes();
  }
  state.counters["query_atoms"] = static_cast<double>(qi.query.NumAtoms());
  state.counters["hd_nodes"] = static_cast<double>(nodes);
  state.counters["hd_width"] = static_cast<double>(width);
}
BENCHMARK(BM_DecomposeVsQueryLength)
    ->DenseRange(2, 14, 3)
    ->Unit(benchmark::kMicrosecond);

void BM_DecomposeCycleWidthTwo(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  auto qi = MakeCycleQuery(n).MoveValue();
  size_t nodes = 0;
  for (auto _ : state) {
    auto hd = Decompose(qi.query, 2).MoveValue();
    nodes = hd.NumNodes();
  }
  state.counters["cycle_len"] = n;
  state.counters["hd_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_DecomposeCycleWidthTwo)
    ->DenseRange(3, 9, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_BuildUrAutomaton(benchmark::State& state) {
  const uint32_t width = static_cast<uint32_t>(state.range(0));
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions opt;
  opt.width = width;
  opt.density = 0.6;
  opt.seed = width;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  size_t states = 0;
  size_t transitions = 0;
  size_t aug_size = 0;
  for (auto _ : state) {
    auto automaton =
        BuildUrAutomaton(qi.query, db, UrConstructionOptions{}).MoveValue();
    states = automaton.nfta.NumStates();
    transitions = automaton.nfta.NumTransitions();
    aug_size = automaton.augmented.SizeMeasure();
  }
  state.counters["db_facts"] = static_cast<double>(db.NumFacts());
  state.counters["aug_size"] = static_cast<double>(aug_size);
  state.counters["nfta_states"] = static_cast<double>(states);
  state.counters["nfta_transitions"] = static_cast<double>(transitions);
}
BENCHMARK(BM_BuildUrAutomaton)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

void BM_BuildPqeAutomaton(benchmark::State& state) {
  const uint32_t width = static_cast<uint32_t>(state.range(0));
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions opt;
  opt.width = width;
  opt.density = 0.6;
  opt.seed = width;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 64;
  pm.seed = width;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  size_t states = 0;
  size_t k = 0;
  for (auto _ : state) {
    auto automaton =
        BuildPqeAutomaton(qi.query, pdb, UrConstructionOptions{}).MoveValue();
    states = automaton.weighted.NumStates();
    k = automaton.tree_size;
  }
  state.counters["db_facts"] = static_cast<double>(pdb.NumFacts());
  state.counters["weighted_states"] = static_cast<double>(states);
  state.counters["tree_size_k"] = static_cast<double>(k);
}
BENCHMARK(BM_BuildPqeAutomaton)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pqe
