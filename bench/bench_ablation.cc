// Ablation — design-choice costs called out in DESIGN.md: what do the
// stratum-pruning passes in CountNFTA buy?
//
// Finding (kept honest): on the gadget-expanded PQE automata the *forward*
// feasibility pass already collapses the strata — every state generates
// trees of essentially one size — so disabling the *backward* usefulness
// pass changes nothing there. Backward pruning pays off on automata whose
// states generate trees of many sizes (part 2: general NFTAs), where it
// removes the strata that cannot occur inside any accepted tree of size n.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/path_pqe.h"
#include "core/pqe.h"
#include "counting/count_nfta.h"
#include "cq/builders.h"
#include "util/check.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void PqePart() {
  std::printf(
      "Part 1 — PQE pipeline automata (size-determined; expectation: no "
      "change):\n");
  std::printf("%-8s %-10s %-16s %-14s %-12s %-12s\n", "|D|", "bwd-prune",
              "live strata", "pool entries", "time(ms)", "estimate");
  for (uint32_t width : {2u, 3u, 4u}) {
    auto qi = MakePathQuery(3).MoveValue();
    LayeredGraphOptions opt;
    opt.width = width;
    opt.density = 0.7;
    opt.seed = width;
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
    ProbabilityModel pm;
    pm.max_denominator = 8;
    pm.seed = width;
    ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
    for (bool disable : {false, true}) {
      EstimatorConfig cfg;
      cfg.epsilon = 0.25;
      cfg.seed = 3;
      cfg.pool_size = 128;
      cfg.disable_backward_pruning = disable;
      auto t0 = std::chrono::steady_clock::now();
      auto est = PqeEstimate(qi.query, pdb, cfg).MoveValue();
      const double ms = MillisSince(t0);
      std::printf("%-8zu %-10s %-16zu %-14zu %-12.1f %-12.5f\n",
                  pdb.NumFacts(), disable ? "off" : "on",
                  est.stats.strata_live, est.stats.pool_entries, ms,
                  est.probability);
    }
  }
  std::printf(
      "  finding: identical strata/estimates — forward feasibility alone\n"
      "  collapses size-determined automata; backward pruning is free\n"
      "  insurance here.\n\n");
}

// A generic NFTA whose states generate trees of many sizes: leaf and binary
// rules over a few symbols. Here strata abound and usefulness pruning bites.
Nfta ManySizedNfta(uint64_t seed, size_t states) {
  Rng rng(seed);
  Nfta t;
  for (size_t i = 0; i < states; ++i) t.AddState();
  t.EnsureAlphabetSize(3);
  t.SetInitialState(0);
  for (size_t q = 0; q < states; ++q) {
    t.AddTransition(static_cast<StateId>(q),
                    static_cast<SymbolId>(rng.NextBounded(3)), {});
    for (int j = 0; j < 2; ++j) {
      t.AddTransition(
          static_cast<StateId>(q),
          static_cast<SymbolId>(rng.NextBounded(3)),
          {static_cast<StateId>(rng.NextBounded(states)),
           static_cast<StateId>(rng.NextBounded(states))});
    }
  }
  return t;
}

void GenericPart() {
  std::printf(
      "Part 2 — general NFTAs (many tree sizes per state; expectation: "
      "pruning bites):\n");
  std::printf("%-8s %-8s %-10s %-16s %-14s %-12s\n", "states", "n",
              "bwd-prune", "live strata", "pool entries", "time(ms)");
  for (size_t states : {6u, 10u}) {
    Nfta t = ManySizedNfta(17 + states, states);
    const size_t n = 21;
    for (bool disable : {false, true}) {
      EstimatorConfig cfg;
      cfg.epsilon = 0.25;
      cfg.seed = 5;
      cfg.pool_size = 128;
      cfg.disable_backward_pruning = disable;
      auto t0 = std::chrono::steady_clock::now();
      auto est = CountNftaTrees(t, n, cfg).MoveValue();
      const double ms = MillisSince(t0);
      std::printf("%-8zu %-8zu %-10s %-16zu %-14zu %-12.1f\n", states, n,
                  disable ? "off" : "on", est.stats.strata_live,
                  est.stats.pool_entries, ms);
    }
  }
  std::printf(
      "  finding: with odd/even size parities and dead-end states, the\n"
      "  backward pass removes strata that cannot reach an accepted tree of\n"
      "  size n, cutting pool work correspondingly.\n");
}

void PipelinePart() {
  std::printf(
      "Part 3 — string vs tree pipeline on path queries (same Theorem 1\n"
      "semantics; the paper's footnote 2 observes the gadget is a string\n"
      "construction):\n");
  std::printf("%-6s %-8s %-10s %-12s %-12s %-12s %-12s\n", "len", "|D|",
              "pipeline", "states", "k", "time(ms)", "P");
  for (uint32_t len : {3u, 4u, 5u}) {
    auto qi = MakePathQuery(len).MoveValue();
    LayeredGraphOptions opt;
    opt.width = 3;
    opt.density = 0.7;
    opt.seed = len;
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
    ProbabilityModel pm;
    pm.max_denominator = 8;
    pm.seed = len + 9;
    ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
    EstimatorConfig cfg;
    cfg.epsilon = 0.25;
    cfg.seed = 7;
    cfg.pool_size = 128;
    {
      auto t0 = std::chrono::steady_clock::now();
      auto est = PathPqeEstimate(qi.query, pdb, cfg).MoveValue();
      std::printf("%-6u %-8zu %-10s %-12zu %-12zu %-12.1f %-12.5f\n", len,
                  pdb.NumFacts(), "string", est.nfa_states, est.word_length,
                  MillisSince(t0), est.probability);
    }
    {
      auto t0 = std::chrono::steady_clock::now();
      auto est =
          PqeEstimate(qi.query, pdb, cfg, UrConstructionOptions{})
              .MoveValue();
      std::printf("%-6u %-8zu %-10s %-12zu %-12zu %-12.1f %-12.5f\n", len,
                  pdb.NumFacts(), "tree", est.nfta_states, est.tree_size,
                  MillisSince(t0), est.probability);
    }
  }
  std::printf(
      "  finding: both pipelines estimate the same probability; the string\n"
      "  route avoids forest strata and is the cheaper choice on paths.\n");
}

}  // namespace
}  // namespace pqe

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf(
      "Ablation — stratum pruning in CountNFTA\n"
      "=======================================\n\n");
  pqe::PqePart();
  pqe::GenericPart();
  std::printf("\n");
  pqe::PipelinePart();
  return 0;
}
