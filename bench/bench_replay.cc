// E13 — workload capture/replay (docs/serving.md): the whole-pipeline
// regression oracle. Serves a mixed batch through PqeService with capture
// enabled, then replays the captured JSONL through a fresh service and
// verifies every replayed answer equals its recorded one bit for bit — the
// determinism contract makes any mismatch a behavior change somewhere in
// the pipeline (parser, decomposition, gadgets, counting, seeding).
//
//   bench_replay [--smoke] [--metrics_out=FILE]
//
// Gauges: pqe.bench.replay.{requests,serve_ms,replay_ms,matched,mismatched}.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "cq/builders.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "serve/workload.h"
#include "util/check.h"
#include "workload/generators.h"

namespace pqe {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string CaptureFilePath() {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir = tmpdir != nullptr ? tmpdir : "/tmp";
  return dir + "/pqe_bench_replay_capture.jsonl";
}

void RunReplayBench(size_t requests) {
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions gopt;
  gopt.width = 3;
  gopt.density = 0.6;
  gopt.seed = 3;
  auto db = MakeLayeredPathDatabase(qi, gopt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = 100;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .Epsilon(0.25)
                  .Seed(0xbe7c)
                  .PoolSize(48)
                  .Repetitions(1)
                  .NumThreads(1)
                  .Build();
  PQE_CHECK(opts.ok());

  const std::string capture_path = CaptureFilePath();
  std::remove(capture_path.c_str());

  // Serve with capture on: epsilons vary across requests so the replay
  // exercises distinct estimator configurations, and seedless requests get
  // per-id derived seeds — the capture must reproduce those too.
  serve::PqeService::Options sopt;
  sopt.engine = *opts;
  sopt.num_threads = 1;
  sopt.capture_path = capture_path;
  {
    serve::PqeService service(sopt);
    PQE_CHECK(service.capture_status().ok());
    std::vector<EvalRequest> reqs;
    for (size_t i = 0; i < requests; ++i) {
      EvalRequest r = EvalRequest::ForQuery(qi.query, pdb);
      r.request_id = i + 1;
      r.epsilon = i % 2 == 0 ? 0.25 : 0.3;
      reqs.push_back(r);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<EvalResponse> responses = service.EvaluateBatch(reqs);
    const double serve_ms = MillisSince(t0);
    for (const EvalResponse& resp : responses) PQE_CHECK(resp.status.ok());
    obs::MetricRegistry::Global()
        .GetGauge("pqe.bench.replay.serve_ms")
        .Set(serve_ms);
    std::printf("  served   %zu requests in %.1f ms (captured to %s)\n",
                requests, serve_ms, capture_path.c_str());
  }

  // Replay through a FRESH service — nothing warm carries over; only the
  // determinism contract makes the answers line up.
  auto records = serve::LoadWorkloadFile(capture_path);
  PQE_CHECK(records.ok());
  PQE_CHECK(records->size() == requests);
  serve::PqeService::Options replay_opts = sopt;
  replay_opts.capture_path.clear();
  serve::PqeService replay_service(replay_opts);
  const auto t0 = std::chrono::steady_clock::now();
  auto report = serve::ReplayWorkload(replay_service, pdb, *records);
  const double replay_ms = MillisSince(t0);
  PQE_CHECK(report.ok());
  std::printf("  %s in %.1f ms\n", report->Summary().c_str(), replay_ms);
  for (const std::string& detail : report->mismatch_details) {
    std::printf("    %s\n", detail.c_str());
  }
  PQE_CHECK(report->replayed == requests);
  PQE_CHECK(report->matched == requests);
  PQE_CHECK(report->Clean());

  auto& reg = obs::MetricRegistry::Global();
  reg.GetGauge("pqe.bench.replay.requests")
      .Set(static_cast<double>(requests));
  reg.GetGauge("pqe.bench.replay.replay_ms").Set(replay_ms);
  reg.GetGauge("pqe.bench.replay.matched")
      .Set(static_cast<double>(report->matched));
  reg.GetGauge("pqe.bench.replay.mismatched")
      .Set(static_cast<double>(report->mismatched));
  std::remove(capture_path.c_str());
}

}  // namespace
}  // namespace pqe

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  using namespace pqe;
  const std::string metrics_out = obs::ConsumeMetricsOutFlag(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf(
      "E13 — workload capture/replay: bit-identical regression oracle\n"
      "==============================================================\n\n");
  RunReplayBench(smoke ? 8 : 32);
  std::printf("\ndeterminism: every replayed answer matched its capture bit "
              "for bit\n");
  if (!metrics_out.empty()) {
    Status status = obs::WriteMetricsJsonFile(metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics_out: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
