// E10 — Thread scaling of the parallel sampling layers (docs/parallelism.md):
// wall-time of the median-of-R CountNFTA loop and of a large Karp–Luby
// sample loop at 1, 2, 4, and 8 worker threads, plus a determinism
// cross-check that every thread count produced the identical estimate.
//
//   bench_parallel_scaling [--metrics_out=BENCH_parallel_scaling.json]
//
// Each (workload, threads) cell is recorded as gauges
// pqe.bench.parallel_scaling.<work>.t<N>.ms and .speedup (vs t1), with
// pqe.bench.parallel_scaling.hardware_threads capturing the host, so the
// JSON makes clear when flat speedups are a 1-core artifact rather than a
// contention problem: on a single-core container every thread count time-
// slices the same CPU and speedup ≈ 1x by construction.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "automata/nfta.h"
#include "counting/count_nfta.h"
#include "lineage/karp_luby.h"
#include "lineage/lineage.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "workload/generators.h"

namespace pqe {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void Record(const std::string& work, size_t threads, double ms,
            double base_ms) {
  const std::string prefix =
      "pqe.bench.parallel_scaling." + work + ".t" + std::to_string(threads);
  auto& reg = obs::MetricRegistry::Global();
  reg.GetGauge(prefix + ".ms").Set(ms);
  reg.GetGauge(prefix + ".speedup").Set(base_ms / ms);
}

// Median-of-8 CountNFTA on the ambiguous full-binary-tree automaton: the
// rep loop is the parallel axis (8 repetitions fan out over the pool).
void BenchCountNfta() {
  Nfta t;
  StateId q = t.AddState();
  t.SetInitialState(q);
  t.AddTransition(q, 0, {q, q});
  t.AddTransition(q, 0, {});
  t.AddTransition(q, 1, {});

  std::printf("CountNFTA, median-of-8, n=41, epsilon=0.1\n");
  std::printf("  %-8s %-12s %-10s %s\n", "threads", "ms", "speedup",
              "estimate");
  double base_ms = 0.0;
  std::string base_value;
  for (size_t threads : kThreadCounts) {
    EstimatorConfig cfg;
    cfg.epsilon = 0.1;
    cfg.seed = 0xfeed;
    cfg.repetitions = 8;
    cfg.num_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    auto est = CountNftaTrees(t, 41, cfg).MoveValue();
    const double ms = MillisSince(t0);
    if (threads == 1) {
      base_ms = ms;
      base_value = est.value.ToString();
    }
    // Determinism contract: the estimate must not change with threads.
    PQE_CHECK(est.value.ToString() == base_value);
    Record("count_nfta", threads, ms, base_ms);
    std::printf("  %-8zu %-12.1f %-10.2f %s\n", threads, ms, base_ms / ms,
                est.value.ToString().c_str());
  }
  std::printf("  determinism: all thread counts returned %s\n\n",
              base_value.c_str());
}

// A 1M-sample Karp–Luby run over a dense layered-path lineage: the sample
// shards (64 by default) are the parallel axis.
void BenchKarpLuby() {
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 4;
  opt.density = 1.0;
  opt.seed = 3;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.seed = 5;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  DnfLineage lineage = BuildLineage(qi.query, pdb.database()).MoveValue();

  std::printf("Karp-Luby, %zu clauses, 1M samples, 64 shards\n",
              lineage.NumClauses());
  std::printf("  %-8s %-12s %-10s %s\n", "threads", "ms", "speedup",
              "probability");
  double base_ms = 0.0, base_p = 0.0;
  for (size_t threads : kThreadCounts) {
    KarpLubyConfig cfg;
    cfg.seed = 0xfeed;
    cfg.num_samples = 1'000'000;
    cfg.num_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    auto kl = KarpLubyEstimate(lineage, pdb, cfg).MoveValue();
    const double ms = MillisSince(t0);
    if (threads == 1) {
      base_ms = ms;
      base_p = kl.probability;
    }
    // Determinism contract: the estimate must not change with threads.
    PQE_CHECK(kl.probability == base_p);
    Record("karp_luby", threads, ms, base_ms);
    std::printf("  %-8zu %-12.1f %-10.2f %.10f\n", threads, ms,
                base_ms / ms, kl.probability);
  }
  std::printf("  determinism: all thread counts returned %.10f\n\n", base_p);
}

}  // namespace
}  // namespace pqe

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  using namespace pqe;
  const std::string metrics_out = obs::ConsumeMetricsOutFlag(&argc, argv);
  const unsigned hw = std::thread::hardware_concurrency();
  obs::MetricRegistry::Global()
      .GetGauge("pqe.bench.parallel_scaling.hardware_threads")
      .Set(hw);
  std::printf(
      "E10 — thread scaling of the parallel sampling layers\n"
      "====================================================\n\n"
      "host hardware threads: %u%s\n\n",
      hw,
      hw <= 1 ? "  (single core: expect speedup ~= 1x at every thread "
                "count; this measures overhead + determinism, not scaling)"
              : "");
  BenchCountNfta();
  BenchKarpLuby();
  if (!metrics_out.empty()) {
    Status status = obs::WriteMetricsJsonFile(metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics_out: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
