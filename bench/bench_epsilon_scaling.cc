// E5 — Accuracy-cost tradeoff of Theorem 1: runtime as a function of the
// target relative error ε (pool sizes auto-derived from ε, uncapped so the
// ε-dependence is visible). Expected shape: poly(1/ε) — here ~1/ε² through
// the per-stratum sample pools.

#include <cmath>

#include <benchmark/benchmark.h>

#include "core/pqe.h"
#include "cq/builders.h"
#include "workload/generators.h"

namespace pqe {
namespace {

ProbabilisticDatabase Instance() {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 2;
  opt.density = 0.8;
  opt.seed = 5;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = 6;
  return AttachProbabilities(std::move(db), pm);
}

// range(0) encodes 1/ε ∈ {2, 4, 6, 8, 12}.
void BM_PqeEstimateVsEpsilon(benchmark::State& state) {
  const double inv_eps = static_cast<double>(state.range(0));
  const double epsilon = 1.0 / inv_eps;
  auto qi = MakePathQuery(3).MoveValue();
  ProbabilisticDatabase pdb = Instance();
  EstimatorConfig cfg;
  cfg.epsilon = epsilon;
  cfg.seed = 13;
  // Pools scale as Θ(1/ε²); fixed modest constant so the sweep finishes in
  // seconds while the asymptotic shape stays visible.
  cfg.pool_size = static_cast<size_t>(std::ceil(24.0 * inv_eps * inv_eps));
  double probability = 0.0;
  size_t pool_entries = 0;
  for (auto _ : state) {
    auto est = PqeEstimate(qi.query, pdb, cfg).MoveValue();
    probability = est.probability;
    pool_entries = est.stats.pool_entries;
  }
  state.counters["epsilon"] = epsilon;
  state.counters["pool_entries"] = static_cast<double>(pool_entries);
  state.counters["probability"] = probability;
}
BENCHMARK(BM_PqeEstimateVsEpsilon)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace pqe
