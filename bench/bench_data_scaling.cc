// E4 — Data-complexity side of Theorem 1: FPRAS runtime as |D| grows at a
// fixed query (path of length 4, a #P-hard 3Path member). Expected shape:
// polynomial growth in the number of facts.

#include <cmath>

#include <benchmark/benchmark.h>

#include "core/pqe.h"
#include "core/ur_construction.h"
#include "cq/builders.h"
#include "workload/generators.h"

namespace pqe {
namespace {

EstimatorConfig ScalingConfig() {
  EstimatorConfig cfg;
  cfg.epsilon = 0.25;
  cfg.seed = 11;
  cfg.pool_size = 96;
  return cfg;
}

void BM_PqeEstimateVsDatabaseSize(benchmark::State& state) {
  const uint32_t width = static_cast<uint32_t>(state.range(0));
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions opt;
  opt.width = width;
  opt.density = 0.6;
  opt.seed = width;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = width + 2;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  double probability = 0.0;
  size_t states = 0;
  for (auto _ : state) {
    auto est = PqeEstimate(qi.query, pdb, ScalingConfig()).MoveValue();
    probability = est.probability;
    states = est.nfta_states;
  }
  state.counters["db_facts"] = static_cast<double>(pdb.NumFacts());
  state.counters["nfta_states"] = static_cast<double>(states);
  state.counters["probability"] = probability;
}
BENCHMARK(BM_PqeEstimateVsDatabaseSize)
    ->DenseRange(2, 7, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Uniform reliability variant (Theorem 3) on the same sweep.
void BM_UrEstimateVsDatabaseSize(benchmark::State& state) {
  const uint32_t width = static_cast<uint32_t>(state.range(0));
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions opt;
  opt.width = width;
  opt.density = 0.6;
  opt.seed = width;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  double ur = 0.0;
  for (auto _ : state) {
    auto est =
        UrEstimate(qi.query, db, ScalingConfig(), UrConstructionOptions{})
            .MoveValue();
    ur = est.ur.ToDouble();
  }
  state.counters["db_facts"] = static_cast<double>(db.NumFacts());
  state.counters["ur_estimate_log2"] = ur > 0 ? std::log2(ur) : -1.0;
}
BENCHMARK(BM_UrEstimateVsDatabaseSize)
    ->DenseRange(2, 7, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace pqe
