// Shared main() for the google-benchmark binaries. Identical to
// benchmark_main plus two extra flags: --metrics_out=FILE dumps the global
// metric registry (pqe.count_nfta.*, pqe.engine.*, ...) as JSON after the
// run, so scaling experiments can correlate wall-time with sampler effort;
// --threads=N exports PQE_THREADS=N so every num_threads=0 (auto) estimator
// config in the benchmarks fans out over N workers (results are
// thread-count-invariant by the determinism contract).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "obs/export.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  const std::string metrics_out =
      pqe::obs::ConsumeMetricsOutFlag(&argc, argv);
  pqe::ConsumeThreadsFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    pqe::Status status = pqe::obs::WriteMetricsJsonFile(metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics_out: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
