// Shared main() for the google-benchmark binaries. Identical to
// benchmark_main plus one extra flag: --metrics_out=FILE dumps the global
// metric registry (pqe.count_nfta.*, pqe.engine.*, ...) as JSON after the
// run, so scaling experiments can correlate wall-time with sampler effort.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "obs/export.h"

int main(int argc, char** argv) {
  const std::string metrics_out =
      pqe::obs::ConsumeMetricsOutFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    pqe::Status status = pqe::obs::WriteMetricsJsonFile(metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics_out: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
