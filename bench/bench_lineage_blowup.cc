// E2 — The lineage blowup of Section 1: the DNF lineage of the path query
// Q_i has Θ(|D|^i) clauses (exponential in the query length), while the
// Proposition 1 automaton stays polynomial. Also reproduces the intro's
// "five atoms, a few hundred rows → 10^12 clauses" arithmetic.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/ur_construction.h"
#include "cq/builders.h"
#include "lineage/lineage.h"
#include "util/check.h"
#include "workload/generators.h"

namespace pqe {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void MeasuredBlowup() {
  std::printf(
      "Measured: complete layered graph, width w=4 per layer. The lineage\n"
      "of Q_i has w^(i+1) clauses; the automaton of Proposition 1 grows\n"
      "polynomially in i.\n\n");
  std::printf("%-6s %-8s %-14s %-14s %-12s %-14s %-14s\n", "i", "|D|",
              "clauses", "literals", "lineage(ms)", "nfta-states",
              "nfta-trans");
  for (uint32_t i = 2; i <= 8; ++i) {
    auto qi = MakePathQuery(i).MoveValue();
    LayeredGraphOptions opt;
    opt.width = 4;
    opt.density = 1.0;  // complete: worst-case lineage
    opt.seed = 1;
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();

    auto t0 = std::chrono::steady_clock::now();
    auto lineage = BuildLineage(qi.query, db, /*max_clauses=*/3'000'000);
    const double lineage_ms = MillisSince(t0);

    UrConstructionOptions opts;
    auto automaton = BuildUrAutomaton(qi.query, db, opts).MoveValue();

    if (lineage.ok()) {
      std::printf("%-6u %-8zu %-14zu %-14zu %-12.2f %-14zu %-14zu\n", i,
                  db.NumFacts(), lineage->NumClauses(),
                  lineage->NumLiterals(), lineage_ms,
                  automaton.nfta.NumStates(),
                  automaton.nfta.NumTransitions());
    } else {
      std::printf("%-6u %-8zu %-14s %-14s %-12.2f %-14zu %-14zu\n", i,
                  db.NumFacts(), ">3e6 (cap)", "-", lineage_ms,
                  automaton.nfta.NumStates(),
                  automaton.nfta.NumTransitions());
    }
  }
  std::printf(
      "\n  shape check: clauses multiply by w=4 per extra atom "
      "(exponential);\n"
      "  automaton states/transitions grow by a roughly constant additive\n"
      "  amount per atom (polynomial).\n\n");
}

void IntroArithmetic() {
  std::printf(
      "Analytic (intro claim): a conjunctive query of five atoms over a\n"
      "database with a few hundred rows per relation:\n\n");
  std::printf("%-22s %-10s %-22s\n", "rows/relation", "atoms",
              "lineage clauses (worst case)");
  for (double rows : {100.0, 250.0, 400.0}) {
    // A length-5 path over a complete join structure has rows^(atoms+1)/...
    // conservatively rows^atoms full witness combinations, each a clause.
    const double clauses = std::pow(rows, 5);
    std::printf("%-22.0f %-10d %-22.3e\n", rows, 5, clauses);
  }
  std::printf(
      "\n  At ~250 rows the worst-case DNF hits ~1e12 clauses — the paper's\n"
      "  'one trillion clauses' example — while the same instance's\n"
      "  Proposition 1 automaton needs only poly(|Q|,|D|) transitions.\n");
}

}  // namespace
}  // namespace pqe

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf(
      "E2 — Lineage blowup Θ(|D|^i) vs polynomial automata (Section 1, "
      "Corollary 1)\n"
      "==========================================================================\n\n");
  pqe::MeasuredBlowup();
  pqe::IntroArithmetic();
  return 0;
}
